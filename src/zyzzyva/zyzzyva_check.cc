/// Checker adapter for Zyzzyva: n=3f+1=4, speculative execution with the
/// client as commit point. The module implements the agreement protocol
/// only (no view changes), so the primary is shielded from faults and
/// schedules crash at most f backups.

#include <memory>
#include <string>

#include "check/adapters.h"
#include "crypto/signatures.h"
#include "sim/byzantine.h"
#include "zyzzyva/zyzzyva.h"

namespace consensus40::check {
namespace {

class ZyzzyvaCheckAdapter : public ProtocolAdapter {
 public:
  explicit ZyzzyvaCheckAdapter(uint64_t seed, int ops = 4)
      : registry_(seed, kN + 4), ops_(ops) {}

  const char* name() const override { return "zyzzyva"; }

  FaultBounds bounds() const override {
    FaultBounds b;
    b.first_node = 1;  // No view change: the primary must stay up.
    b.nodes = kN - 1;
    b.max_crashed = (kN - 1) / 3;
    return b;
  }

  void Build(sim::Simulation* sim) override {
    zyzzyva::ZyzzyvaOptions opts;
    opts.n = kN;
    opts.registry = &registry_;
    for (int i = 0; i < kN; ++i) {
      replicas_.push_back(sim->Spawn<zyzzyva::ZyzzyvaReplica>(opts));
    }
    client_ = sim->Spawn<zyzzyva::ZyzzyvaClient>(kN, &registry_, ops_);
  }

  bool Done() const override { return client_->done(); }

  Observation Observe() const override {
    Observation o;
    for (const zyzzyva::ZyzzyvaReplica* r : replicas_) {
      std::vector<std::string> log;
      for (const smr::Command& cmd : r->executed_commands()) {
        log.push_back(cmd.ToString());
      }
      o.logs.push_back(std::move(log));
    }
    return o;
  }

 protected:
  static constexpr int kN = 4;
  crypto::KeyRegistry registry_;
  int ops_;
  std::vector<zyzzyva::ZyzzyvaReplica*> replicas_;
  zyzzyva::ZyzzyvaClient* client_ = nullptr;
};

/// In-bounds Byzantine Zyzzyva: one of the three BACKUPS may withhold,
/// corrupt (generic interposer degradation: dropped), or replay its
/// outbound traffic. The primary stays both un-crashable AND un-Byzantine
/// — without a view-change path a lying primary is simply outside the
/// module's model, exactly like a crashed one (see the bounds-contract
/// test in tests/zyzzyva_test.cc). Speculative execution means a silent
/// backup pushes clients off the 3f+1 fast path onto the 2f+1
/// commit-certificate path, which is the transition worth hammering.
class ZyzzyvaByzantineAdapter : public ZyzzyvaCheckAdapter {
 public:
  explicit ZyzzyvaByzantineAdapter(uint64_t seed)
      : ZyzzyvaCheckAdapter(seed, /*ops=*/12) {}

  const char* name() const override { return "zyzzyva_byz"; }

  FaultBounds bounds() const override {
    FaultBounds b = ZyzzyvaCheckAdapter::bounds();
    b.max_byzantine = 1;
    b.byz_first_node = 1;  // Backups only, same window as crashes.
    b.byz_nodes = kN - 1;
    b.byz_withhold = true;
    b.byz_mutate = true;
    b.byz_replay = true;
    return b;
  }

  void Build(sim::Simulation* sim) override {
    ZyzzyvaCheckAdapter::Build(sim);
    byz_.Attach(sim);
  }

 private:
  sim::ByzantineInterposer byz_;
};

}  // namespace

AdapterFactory MakeZyzzyvaAdapter() {
  return [](uint64_t seed) {
    return std::make_unique<ZyzzyvaCheckAdapter>(seed);
  };
}

AdapterFactory MakeZyzzyvaByzantineAdapter() {
  return [](uint64_t seed) {
    return std::make_unique<ZyzzyvaByzantineAdapter>(seed);
  };
}

}  // namespace consensus40::check
