/// Checker adapter for Zyzzyva: n=3f+1=4, speculative execution with the
/// client as commit point. The module implements the agreement protocol
/// only (no view changes), so the primary is shielded from faults and
/// schedules crash at most f backups.

#include <memory>
#include <string>

#include "check/adapters.h"
#include "crypto/signatures.h"
#include "zyzzyva/zyzzyva.h"

namespace consensus40::check {
namespace {

class ZyzzyvaCheckAdapter : public ProtocolAdapter {
 public:
  explicit ZyzzyvaCheckAdapter(uint64_t seed) : registry_(seed, kN + 4) {}

  const char* name() const override { return "zyzzyva"; }

  FaultBounds bounds() const override {
    FaultBounds b;
    b.first_node = 1;  // No view change: the primary must stay up.
    b.nodes = kN - 1;
    b.max_crashed = (kN - 1) / 3;
    return b;
  }

  void Build(sim::Simulation* sim) override {
    zyzzyva::ZyzzyvaOptions opts;
    opts.n = kN;
    opts.registry = &registry_;
    for (int i = 0; i < kN; ++i) {
      replicas_.push_back(sim->Spawn<zyzzyva::ZyzzyvaReplica>(opts));
    }
    client_ = sim->Spawn<zyzzyva::ZyzzyvaClient>(kN, &registry_, kOps);
  }

  bool Done() const override { return client_->done(); }

  Observation Observe() const override {
    Observation o;
    for (const zyzzyva::ZyzzyvaReplica* r : replicas_) {
      std::vector<std::string> log;
      for (const smr::Command& cmd : r->executed_commands()) {
        log.push_back(cmd.ToString());
      }
      o.logs.push_back(std::move(log));
    }
    return o;
  }

 private:
  static constexpr int kN = 4;
  static constexpr int kOps = 4;
  crypto::KeyRegistry registry_;
  std::vector<zyzzyva::ZyzzyvaReplica*> replicas_;
  zyzzyva::ZyzzyvaClient* client_ = nullptr;
};

}  // namespace

AdapterFactory MakeZyzzyvaAdapter() {
  return [](uint64_t seed) {
    return std::make_unique<ZyzzyvaCheckAdapter>(seed);
  };
}

}  // namespace consensus40::check
