#ifndef CONSENSUS40_ZYZZYVA_ZYZZYVA_H_
#define CONSENSUS40_ZYZZYVA_ZYZZYVA_H_

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "crypto/sha256.h"
#include "crypto/signatures.h"
#include "sim/simulation.h"
#include "smr/command.h"
#include "smr/state_machine.h"

namespace consensus40::zyzzyva {

/// Configuration shared by all replicas of a Zyzzyva cluster.
struct ZyzzyvaOptions {
  /// Cluster size; must be 3f+1. Replica 0 is the primary (this module
  /// implements the speculative agreement protocol; view changes are out of
  /// scope and documented in DESIGN.md).
  int n = 4;
  const crypto::KeyRegistry* registry = nullptr;
};

/// A Zyzzyva replica (Kotla et al. 2007): replicas speculatively execute in
/// the order proposed by the primary and reply directly to the client; the
/// client is the commit point:
///   case 1 — 3f+1 matching speculative replies: done in 3 message delays;
///   case 2 — between 2f+1 and 3f matching: the client assembles a commit
///            certificate from 2f+1 replies and gathers 2f+1 local-commits.
class ZyzzyvaReplica : public sim::Process {
 public:
  explicit ZyzzyvaReplica(ZyzzyvaOptions options);

  struct RequestMsg : sim::Message {
    RequestMsg(smr::Command c, crypto::Signature s)
        : cmd(std::move(c)), client_sig(s) {}
    const char* TypeName() const override { return "zyz-request"; }
    int ByteSize() const override { return 48 + cmd.ByteSize(); }
    smr::Command cmd;
    crypto::Signature client_sig;
  };

  /// Primary -> replicas: ordered request with history binding.
  struct OrderReqMsg : sim::Message {
    const char* TypeName() const override { return "zyz-order-req"; }
    int ByteSize() const override { return 120 + cmd.ByteSize(); }
    uint64_t seq = 0;
    smr::Command cmd;
    crypto::Signature client_sig;
    crypto::Digest history{};  ///< Hash chain through this request.
    crypto::Signature primary_sig;
  };

  /// Replica -> client: speculative response.
  struct SpecResponseMsg : sim::Message {
    const char* TypeName() const override { return "zyz-spec-response"; }
    int ByteSize() const override {
      return 120 + static_cast<int>(result.size());
    }
    uint64_t seq = 0;
    uint64_t client_seq = 0;
    crypto::Digest history{};
    std::string result;
    int32_t replica = -1;
    crypto::Signature sig;  ///< Over (seq, history, result digest).

    crypto::Digest SigningDigest() const;
  };

  /// Client -> replicas: commit certificate (case 2).
  struct CommitMsg : sim::Message {
    const char* TypeName() const override { return "zyz-commit"; }
    int ByteSize() const override {
      return 32 + static_cast<int>(certificate.size()) * 104;
    }
    uint64_t seq = 0;
    crypto::Digest history{};
    /// 2f+1 matching speculative-response signatures.
    std::vector<crypto::Signature> certificate;
    std::vector<int32_t> signers;
  };

  /// Replica -> client: acknowledgment of a valid commit certificate.
  struct LocalCommitMsg : sim::Message {
    const char* TypeName() const override { return "zyz-local-commit"; }
    int ByteSize() const override { return 48; }
    uint64_t seq = 0;
    uint64_t client_seq = 0;
    int32_t replica = -1;
  };

  bool IsPrimary() const { return id() == 0; }
  uint64_t max_committed_certificate() const { return max_cc_; }
  const crypto::Digest& history() const { return history_; }
  const smr::KvStore& kv() const { return kv_; }
  const std::vector<smr::Command>& executed_commands() const {
    return executed_commands_;
  }

  void OnMessage(sim::NodeId from, const sim::Message& msg) override;

 protected:
  /// Adversary hook for tests.
  virtual bool MaybeActMaliciouslyOnRequest(const smr::Command& cmd,
                                            const crypto::Signature& sig);

  ZyzzyvaOptions options_;
  int f_;

 private:
  void SpeculativelyExecute(const OrderReqMsg& order);

  uint64_t next_seq_ = 1;       ///< Primary's order counter.
  uint64_t expected_seq_ = 1;   ///< Replica-side next sequence.
  crypto::Digest history_{};    ///< Running history hash.
  /// Buffered out-of-order order-requests.
  std::map<uint64_t, std::shared_ptr<const OrderReqMsg>> pending_orders_;
  /// (client, client_seq) -> assigned seq at primary.
  std::map<std::pair<int32_t, uint64_t>, uint64_t> assigned_;
  std::map<uint64_t, std::shared_ptr<const OrderReqMsg>> sent_orders_;
  /// Cached speculative responses for retransmission.
  std::map<std::pair<int32_t, uint64_t>, std::shared_ptr<SpecResponseMsg>>
      spec_cache_;
  uint64_t max_cc_ = 0;  ///< Highest sequence covered by a commit cert.

  smr::KvStore kv_;
  smr::DedupingExecutor dedup_;
  std::vector<smr::Command> executed_commands_;
};

/// Zyzzyva client: the commitment point of the protocol.
class ZyzzyvaClient : public sim::Process {
 public:
  ZyzzyvaClient(int n, const crypto::KeyRegistry* registry, int ops,
                std::string key = "x",
                sim::Duration commit_timeout = 60 * sim::kMillisecond,
                sim::Duration retry = 500 * sim::kMillisecond);

  int completed() const { return completed_; }
  bool done() const { return completed_ >= ops_; }
  const std::vector<std::string>& results() const { return results_; }
  /// How many requests completed via case 1 / case 2.
  int case1_completions() const { return case1_; }
  int case2_completions() const { return case2_; }

  void OnStart() override;
  void OnMessage(sim::NodeId from, const sim::Message& msg) override;

 private:
  struct ResponseKey {
    uint64_t seq;
    crypto::Digest history;
    std::string result;
    bool operator<(const ResponseKey& o) const {
      if (seq != o.seq) return seq < o.seq;
      if (history != o.history) return history < o.history;
      return result < o.result;
    }
  };

  void SendCurrent();
  void Finish(const std::string& result, bool case1);

  int n_;
  const crypto::KeyRegistry* registry_;
  int f_;
  int ops_;
  std::string key_;
  sim::Duration commit_timeout_;
  sim::Duration retry_;
  int completed_ = 0;
  uint64_t seq_ = 0;
  uint64_t retry_timer_ = 0;
  uint64_t commit_timer_ = 0;
  bool commit_sent_ = false;
  std::map<ResponseKey,
           std::map<sim::NodeId, std::shared_ptr<const ZyzzyvaReplica::SpecResponseMsg>>>
      responses_;
  std::set<sim::NodeId> local_commits_;
  std::string committing_result_;
  int case1_ = 0;
  int case2_ = 0;
  std::vector<std::string> results_;
};

}  // namespace consensus40::zyzzyva

#endif  // CONSENSUS40_ZYZZYVA_ZYZZYVA_H_
