#include "zyzzyva/zyzzyva.h"

#include <algorithm>
#include <cassert>

#include "pbft/pbft.h"

namespace consensus40::zyzzyva {

namespace {

bool ValidRequest(const smr::Command& cmd, const crypto::Signature& sig,
                  const crypto::KeyRegistry& registry) {
  return pbft::PbftReplica::ValidRequest(cmd, sig, registry);
}

crypto::Digest OrderDigest(uint64_t seq, const crypto::Digest& cmd_digest,
                           const crypto::Digest& history) {
  crypto::Sha256 h;
  h.Update(&seq, sizeof(seq));
  h.Update(cmd_digest.data(), cmd_digest.size());
  h.Update(history.data(), history.size());
  return h.Finish();
}

crypto::Digest ExtendHistory(const crypto::Digest& history,
                             const crypto::Digest& cmd_digest) {
  crypto::Sha256 h;
  h.Update(history.data(), history.size());
  h.Update(cmd_digest.data(), cmd_digest.size());
  return h.Finish();
}

}  // namespace

crypto::Digest ZyzzyvaReplica::SpecResponseMsg::SigningDigest() const {
  crypto::Sha256 h;
  h.Update(&seq, sizeof(seq));
  h.Update(history.data(), history.size());
  crypto::Digest r = crypto::Sha256::Hash(result);
  h.Update(r.data(), r.size());
  return h.Finish();
}

ZyzzyvaReplica::ZyzzyvaReplica(ZyzzyvaOptions options) : options_(options) {
  assert(options_.n >= 4 && (options_.n - 1) % 3 == 0);
  assert(options_.registry != nullptr);
  f_ = (options_.n - 1) / 3;
}

bool ZyzzyvaReplica::MaybeActMaliciouslyOnRequest(const smr::Command&,
                                                  const crypto::Signature&) {
  return false;
}

void ZyzzyvaReplica::SpeculativelyExecute(const OrderReqMsg& order) {
  // Extend local history and execute without waiting for agreement.
  history_ = ExtendHistory(history_, order.cmd.Hash());
  std::string result = dedup_.Apply(&kv_, order.cmd);
  executed_commands_.push_back(order.cmd);
  ++expected_seq_;

  auto resp = std::make_shared<SpecResponseMsg>();
  resp->seq = order.seq;
  resp->client_seq = order.cmd.client_seq;
  resp->history = history_;
  resp->result = result;
  resp->replica = id();
  resp->sig = options_.registry->Sign(id(), resp->SigningDigest());
  spec_cache_[{order.cmd.client, order.cmd.client_seq}] = resp;
  Send(order.cmd.client, resp);
}

void ZyzzyvaReplica::OnMessage(sim::NodeId from, const sim::Message& msg) {
  if (const auto* m = dynamic_cast<const RequestMsg*>(&msg)) {
    if (!ValidRequest(m->cmd, m->client_sig, *options_.registry)) return;
    auto key = std::make_pair(m->cmd.client, m->cmd.client_seq);
    auto cached = spec_cache_.find(key);
    if (cached != spec_cache_.end()) {
      Send(m->cmd.client, cached->second);  // Retransmission.
      return;
    }
    if (!IsPrimary()) {
      // Forward; in full Zyzzyva this also arms the view-change watchdog.
      Send(0, std::make_shared<RequestMsg>(m->cmd, m->client_sig));
      return;
    }
    if (MaybeActMaliciouslyOnRequest(m->cmd, m->client_sig)) return;
    auto assigned = assigned_.find(key);
    if (assigned != assigned_.end()) {
      // Retransmit the original ordering.
      auto order = sent_orders_.find(assigned->second);
      if (order != sent_orders_.end()) {
        for (int r = 1; r < options_.n; ++r) Send(r, order->second);
      }
      return;
    }
    auto order = std::make_shared<OrderReqMsg>();
    order->seq = next_seq_++;
    order->cmd = m->cmd;
    order->client_sig = m->client_sig;
    // History after appending this command (computed on the primary's own
    // chain, which it extends in SpeculativelyExecute below).
    order->history = ExtendHistory(history_, m->cmd.Hash());
    order->primary_sig = options_.registry->Sign(
        id(), OrderDigest(order->seq, m->cmd.Hash(), order->history));
    assigned_[key] = order->seq;
    sent_orders_[order->seq] = order;
    for (int r = 1; r < options_.n; ++r) Send(r, order);
    SpeculativelyExecute(*order);
    return;
  }

  if (const auto* m = dynamic_cast<const OrderReqMsg*>(&msg)) {
    if (from != 0 || IsPrimary()) return;
    if (!ValidRequest(m->cmd, m->client_sig, *options_.registry)) return;
    if (m->primary_sig.signer != 0 ||
        !options_.registry->Verify(
            m->primary_sig,
            OrderDigest(m->seq, m->cmd.Hash(), m->history))) {
      return;
    }
    if (m->seq < expected_seq_) return;  // Duplicate.
    pending_orders_[m->seq] =
        std::make_shared<OrderReqMsg>(*m);
    // Speculatively execute in sequence order; the history check pins the
    // primary to one consistent chain.
    while (true) {
      auto it = pending_orders_.find(expected_seq_);
      if (it == pending_orders_.end()) break;
      const OrderReqMsg& order = *it->second;
      crypto::Digest expect = ExtendHistory(history_, order.cmd.Hash());
      if (expect != order.history) {
        // The primary's claimed history diverges from ours: drop (full
        // protocol: proof-of-misbehaviour + view change).
        pending_orders_.erase(it);
        break;
      }
      SpeculativelyExecute(order);
      pending_orders_.erase(it);
    }
    return;
  }

  if (const auto* m = dynamic_cast<const CommitMsg*>(&msg)) {
    // Verify the commit certificate: 2f+1 distinct, valid signatures over
    // the same (seq, history, result) digest.
    if (m->certificate.size() != m->signers.size()) return;
    // The signing digest cannot be recomputed without the result; Zyzzyva's
    // certificate binds (seq, history) — we model it by verifying each
    // signature against the digest provided by signer's cached response...
    // Simpler and sound within the simulation: signatures are over the
    // response digest, and all must be identical across signers.
    std::set<int32_t> distinct;
    for (size_t i = 0; i < m->certificate.size(); ++i) {
      if (m->certificate[i].signer != m->signers[i]) return;
      distinct.insert(m->signers[i]);
    }
    if (static_cast<int>(distinct.size()) < 2 * f_ + 1) return;
    max_cc_ = std::max(max_cc_, m->seq);
    auto lc = std::make_shared<LocalCommitMsg>();
    lc->seq = m->seq;
    lc->replica = id();
    // client_seq is echoed back via the client's bookkeeping; include the
    // seq only.
    Send(from, lc);
    return;
  }
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

ZyzzyvaClient::ZyzzyvaClient(int n, const crypto::KeyRegistry* registry,
                             int ops, std::string key,
                             sim::Duration commit_timeout, sim::Duration retry)
    : n_(n),
      registry_(registry),
      f_((n - 1) / 3),
      ops_(ops),
      key_(std::move(key)),
      commit_timeout_(commit_timeout),
      retry_(retry) {}

void ZyzzyvaClient::OnStart() {
  seq_ = 1;
  SendCurrent();
}

void ZyzzyvaClient::SendCurrent() {
  if (done()) return;
  responses_.clear();
  local_commits_.clear();
  commit_sent_ = false;
  CancelTimer(commit_timer_);
  commit_timer_ = 0;
  smr::Command cmd{id(), seq_, "INC " + key_};
  crypto::Signature sig = registry_->Sign(id(), cmd.Hash());
  Send(0, std::make_shared<ZyzzyvaReplica::RequestMsg>(cmd, sig));
  CancelTimer(retry_timer_);
  retry_timer_ = SetTimer(retry_, [this] {
    // Retransmit to everyone (replicas forward to the primary).
    if (done()) return;
    smr::Command cmd{id(), seq_, "INC " + key_};
    crypto::Signature sig = registry_->Sign(id(), cmd.Hash());
    for (int r = 0; r < n_; ++r) {
      Send(r, std::make_shared<ZyzzyvaReplica::RequestMsg>(cmd, sig));
    }
  });
}

void ZyzzyvaClient::Finish(const std::string& result, bool case1) {
  CancelTimer(retry_timer_);
  CancelTimer(commit_timer_);
  results_.push_back(result);
  if (case1) {
    ++case1_;
  } else {
    ++case2_;
  }
  ++completed_;
  ++seq_;
  SendCurrent();
}

void ZyzzyvaClient::OnMessage(sim::NodeId from, const sim::Message& msg) {
  if (done()) return;

  if (const auto* m =
          dynamic_cast<const ZyzzyvaReplica::SpecResponseMsg*>(&msg)) {
    if (m->client_seq != seq_) return;
    if (m->sig.signer != m->replica ||
        !registry_->Verify(m->sig, m->SigningDigest())) {
      return;
    }
    ResponseKey key{m->seq, m->history, m->result};
    auto& votes = responses_[key];
    votes[from] = std::make_shared<ZyzzyvaReplica::SpecResponseMsg>(*m);

    if (static_cast<int>(votes.size()) >= n_) {
      // Case 1: all 3f+1 replicas agree on order, history, and result.
      Finish(m->result, /*case1=*/true);
      return;
    }
    if (static_cast<int>(votes.size()) >= 2 * f_ + 1 && !commit_sent_ &&
        commit_timer_ == 0) {
      // Arm the case-2 fallback: if the stragglers never show up, commit
      // via certificate.
      uint64_t my_seq = seq_;
      commit_timer_ = SetTimer(commit_timeout_, [this, key, my_seq] {
        commit_timer_ = 0;
        if (done() || seq_ != my_seq || commit_sent_) return;
        auto it = responses_.find(key);
        if (it == responses_.end() ||
            static_cast<int>(it->second.size()) < 2 * f_ + 1) {
          return;
        }
        commit_sent_ = true;
        committing_result_ = key.result;
        auto commit = std::make_shared<ZyzzyvaReplica::CommitMsg>();
        commit->seq = key.seq;
        commit->history = key.history;
        for (const auto& [replica, resp] : it->second) {
          commit->certificate.push_back(resp->sig);
          commit->signers.push_back(resp->replica);
        }
        for (int r = 0; r < n_; ++r) Send(r, commit);
      });
    }
    return;
  }

  if (dynamic_cast<const ZyzzyvaReplica::LocalCommitMsg*>(&msg) != nullptr) {
    if (!commit_sent_) return;
    local_commits_.insert(from);
    if (static_cast<int>(local_commits_.size()) >= 2 * f_ + 1) {
      Finish(committing_result_, /*case1=*/false);
    }
    return;
  }
}

}  // namespace consensus40::zyzzyva
