#ifndef CONSENSUS40_RANDOMIZED_BENOR_H_
#define CONSENSUS40_RANDOMIZED_BENOR_H_

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "sim/simulation.h"

namespace consensus40::randomized {

/// Configuration for a Ben-Or node.
struct BenOrOptions {
  /// Cluster size; tolerates f < n/2 crash faults under full asynchrony.
  int n = 0;
};

/// Ben-Or's randomized binary consensus (1983): the classic answer to FLP.
/// The FLP theorem rules out *deterministic* asynchronous consensus with
/// one crash fault; Ben-Or sacrifices determinism (the deck's first
/// circumvention) and terminates with probability 1:
///
///   round r, phase 1 (report):  broadcast R(r, value); await n-f reports;
///       propose v if > n/2 reports carry v, else propose ⊥;
///   round r, phase 2 (propose): broadcast P(r, proposal); await n-f;
///       - >= f+1 non-⊥ agreeing proposals: DECIDE that value;
///       - >= 1 non-⊥ proposal: adopt it for round r+1;
///       - none: flip a coin for round r+1.
class BenOrNode : public sim::Process {
 public:
  BenOrNode(BenOrOptions options, int initial_value);

  struct ReportMsg : sim::Message {
    const char* TypeName() const override { return "benor-report"; }
    int ByteSize() const override { return 20; }
    int round = 0;
    int value = 0;
  };
  struct ProposeMsg : sim::Message {
    const char* TypeName() const override { return "benor-propose"; }
    int ByteSize() const override { return 20; }
    int round = 0;
    int proposal = -1;  ///< -1 encodes ⊥.
  };
  struct DecideMsg : sim::Message {
    const char* TypeName() const override { return "benor-decide"; }
    int ByteSize() const override { return 16; }
    int value = 0;
  };

  const std::optional<int>& decided() const { return decided_; }
  int round() const { return round_; }

  void OnStart() override;
  void OnMessage(sim::NodeId from, const sim::Message& msg) override;

 private:
  void StartRound();
  void MaybeFinishPhase1();
  void MaybeFinishPhase2();
  void Decide(int value);
  std::vector<sim::NodeId> Everyone() const;

  BenOrOptions options_;
  int f_;
  int value_;
  int round_ = 1;
  int phase_ = 1;
  /// Buffered per-round messages (asynchrony delivers across rounds).
  std::map<int, std::map<sim::NodeId, int>> reports_;
  std::map<int, std::map<sim::NodeId, int>> proposals_;
  std::optional<int> decided_;
  bool decide_broadcast_ = false;
};

}  // namespace consensus40::randomized

#endif  // CONSENSUS40_RANDOMIZED_BENOR_H_
