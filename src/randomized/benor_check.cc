/// Checker adapter for Ben-Or randomized consensus: n=5, f=2 crash faults
/// under asynchrony. Delay spikes are fair game (the protocol is
/// asynchronous); partitions are not injected because dropped round
/// messages are never retransmitted, which turns any cut into a trivial
/// liveness failure rather than an interesting schedule.

#include <memory>
#include <string>

#include "check/adapters.h"
#include "randomized/benor.h"

namespace consensus40::check {
namespace {

class BenOrCheckAdapter : public ProtocolAdapter {
 public:
  const char* name() const override { return "benor"; }

  FaultBounds bounds() const override {
    FaultBounds b;
    b.nodes = kN;
    b.max_crashed = 2;  // f < n/2.
    return b;
  }

  void Build(sim::Simulation* sim) override {
    sim_ = sim;
    benor_options_.n = kN;
    const int initial[kN] = {0, 1, 0, 1, 1};
    for (int i = 0; i < kN; ++i) {
      nodes_.push_back(
          sim->Spawn<randomized::BenOrNode>(benor_options_, initial[i]));
    }
  }

  bool Done() const override {
    for (const randomized::BenOrNode* node : nodes_) {
      if (!sim_->IsCrashed(node->id()) && !node->decided().has_value()) {
        return false;
      }
    }
    return true;
  }

  Observation Observe() const override {
    Observation o;
    o.allowed = {"0", "1"};
    for (const randomized::BenOrNode* node : nodes_) {
      if (node->decided().has_value()) {
        o.decided["0"][node->id()] = std::to_string(*node->decided());
      }
    }
    return o;
  }

 private:
  static constexpr int kN = 5;
  sim::Simulation* sim_ = nullptr;
  randomized::BenOrOptions benor_options_;
  std::vector<randomized::BenOrNode*> nodes_;
};

}  // namespace

AdapterFactory MakeBenOrAdapter() {
  return [](uint64_t) { return std::make_unique<BenOrCheckAdapter>(); };
}

}  // namespace consensus40::check
