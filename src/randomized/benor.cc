#include "randomized/benor.h"

#include <cassert>

namespace consensus40::randomized {

BenOrNode::BenOrNode(BenOrOptions options, int initial_value)
    : options_(options), value_(initial_value) {
  assert(options_.n > 0);
  assert(initial_value == 0 || initial_value == 1);
  f_ = (options_.n - 1) / 2;
}

std::vector<sim::NodeId> BenOrNode::Everyone() const {
  std::vector<sim::NodeId> all;
  for (int i = 0; i < options_.n; ++i) all.push_back(i);
  return all;
}

void BenOrNode::OnStart() { StartRound(); }

void BenOrNode::StartRound() {
  phase_ = 1;
  auto report = std::make_shared<ReportMsg>();
  report->round = round_;
  report->value = value_;
  Multicast(Everyone(), report);
  MaybeFinishPhase1();
}

void BenOrNode::MaybeFinishPhase1() {
  if (phase_ != 1 || decided_) return;
  auto& reports = reports_[round_];
  if (static_cast<int>(reports.size()) < options_.n - f_) return;
  int zeros = 0, ones = 0;
  for (const auto& [node, value] : reports) {
    (value == 0 ? zeros : ones)++;
  }
  int proposal = -1;
  if (2 * zeros > options_.n) proposal = 0;
  if (2 * ones > options_.n) proposal = 1;

  phase_ = 2;
  auto propose = std::make_shared<ProposeMsg>();
  propose->round = round_;
  propose->proposal = proposal;
  Multicast(Everyone(), propose);
  MaybeFinishPhase2();
}

void BenOrNode::MaybeFinishPhase2() {
  if (phase_ != 2 || decided_) return;
  auto& proposals = proposals_[round_];
  if (static_cast<int>(proposals.size()) < options_.n - f_) return;
  int count[2] = {0, 0};
  for (const auto& [node, proposal] : proposals) {
    if (proposal == 0 || proposal == 1) count[proposal]++;
  }
  for (int v = 0; v < 2; ++v) {
    if (count[v] >= f_ + 1) {
      Decide(v);
      return;
    }
  }
  if (count[0] > 0) {
    value_ = 0;
  } else if (count[1] > 0) {
    value_ = 1;
  } else {
    value_ = static_cast<int>(rng().NextBounded(2));  // The coin.
  }
  ++round_;
  StartRound();
}

void BenOrNode::Decide(int value) {
  if (decided_) return;
  decided_ = value;
  if (!decide_broadcast_) {
    decide_broadcast_ = true;
    auto decide = std::make_shared<DecideMsg>();
    decide->value = value;
    Multicast(Everyone(), decide);
  }
}

void BenOrNode::OnMessage(sim::NodeId from, const sim::Message& msg) {
  if (decided_) {
    // Help laggards: answer any message with the decision.
    if (dynamic_cast<const DecideMsg*>(&msg) == nullptr) {
      auto decide = std::make_shared<DecideMsg>();
      decide->value = *decided_;
      Send(from, decide);
    }
    return;
  }

  if (const auto* m = dynamic_cast<const ReportMsg*>(&msg)) {
    reports_[m->round][from] = m->value;
    if (m->round == round_) MaybeFinishPhase1();
    return;
  }
  if (const auto* m = dynamic_cast<const ProposeMsg*>(&msg)) {
    proposals_[m->round][from] = m->proposal;
    if (m->round == round_) MaybeFinishPhase2();
    return;
  }
  if (const auto* m = dynamic_cast<const DecideMsg*>(&msg)) {
    Decide(m->value);
    return;
  }
}

}  // namespace consensus40::randomized
