#ifndef CONSENSUS40_SEEMORE_SEEMORE_H_
#define CONSENSUS40_SEEMORE_SEEMORE_H_

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "crypto/sha256.h"
#include "crypto/signatures.h"
#include "sim/simulation.h"
#include "smr/command.h"
#include "smr/state_machine.h"

namespace consensus40::seemore {

/// SeeMoRe's three operating modes (Amiri et al. 2019).
enum class SeeMoReMode {
  /// Trusted primary in the private cloud, centralized decision making:
  /// 2 phases, O(n) messages, quorum 2m+c+1 over all nodes.
  kMode1,
  /// Trusted primary, decentralized decision making among 3m+1 public
  /// proxies: 2 phases, O(n^2) proxy gossip, quorum 2m+1.
  kMode2,
  /// Untrusted primary in the public cloud: adds a validation phase —
  /// 3 phases, O(n^2), quorum 2m+1 among proxies.
  kMode3,
};

const char* ToString(SeeMoReMode mode);

/// Cluster layout: nodes 0..private_n-1 live in the private (crash-only)
/// cloud, the rest in the public (Byzantine) cloud. Total = 3m + 2c + 1.
struct SeeMoReOptions {
  int m = 1;  ///< Max Byzantine faults (public cloud).
  int c = 1;  ///< Max crash faults (private cloud).
  SeeMoReMode mode = SeeMoReMode::kMode1;
  const crypto::KeyRegistry* registry = nullptr;

  int n() const { return 3 * m + 2 * c + 1; }
  /// Private cloud hosts the 2c crash-prone trusted nodes; the public cloud
  /// holds the remaining 3m+1 — exactly the proxy set of modes 2/3.
  /// Modes 1/2 need c >= 1 (a trusted primary must exist).
  int private_n() const { return 2 * c; }
  /// Proxies (modes 2/3): the 3m+1 public-cloud nodes.
  int proxy_count() const { return 3 * m + 1; }
};

/// A SeeMoRe replica. All three modes share the same class; the mode picks
/// the primary's location, the decision quorum, and the phase structure.
/// View changes are out of scope (documented in DESIGN.md) — the module
/// reproduces the deck's per-mode message-flow, quorum, and load figures.
class SeeMoReReplica : public sim::Process {
 public:
  explicit SeeMoReReplica(SeeMoReOptions options);

  struct RequestMsg : sim::Message {
    RequestMsg(smr::Command c, crypto::Signature s)
        : cmd(std::move(c)), client_sig(s) {}
    const char* TypeName() const override { return "smr-request"; }
    int ByteSize() const override { return 48 + cmd.ByteSize(); }
    smr::Command cmd;
    crypto::Signature client_sig;
  };
  struct ReplyMsg : sim::Message {
    const char* TypeName() const override { return "smr-reply"; }
    int ByteSize() const override {
      return 24 + static_cast<int>(result.size());
    }
    uint64_t client_seq = 0;
    int32_t replica = -1;
    std::string result;
  };
  struct ProposeMsg : sim::Message {
    const char* TypeName() const override { return "smr-propose"; }
    int ByteSize() const override { return 96 + cmd.ByteSize(); }
    uint64_t seq = 0;
    smr::Command cmd;
    crypto::Signature client_sig;
    crypto::Signature primary_sig;
  };
  /// Mode 3 validation votes (proxies agree the primary did not
  /// equivocate on this sequence number).
  struct ValidateMsg : sim::Message {
    const char* TypeName() const override { return "smr-validate"; }
    int ByteSize() const override { return 88; }
    uint64_t seq = 0;
    crypto::Digest digest{};
    int32_t replica = -1;
    crypto::Signature sig;
  };
  /// Acceptance votes (phase 2): to the primary in mode 1, among proxies
  /// in modes 2/3.
  struct AcceptMsg : sim::Message {
    const char* TypeName() const override { return "smr-accept"; }
    int ByteSize() const override { return 88; }
    uint64_t seq = 0;
    crypto::Digest digest{};
    int32_t replica = -1;
    crypto::Signature sig;
  };
  /// Decision propagation.
  struct CommitMsg : sim::Message {
    const char* TypeName() const override { return "smr-commit"; }
    int ByteSize() const override { return 56 + cmd.ByteSize(); }
    uint64_t seq = 0;
    smr::Command cmd;
  };

  bool IsPrivate() const { return id() < options_.private_n(); }
  bool IsProxy() const;
  sim::NodeId Primary() const;
  bool IsPrimary() const { return id() == Primary(); }
  int DecisionQuorum() const;
  uint64_t executed() const {
    return static_cast<uint64_t>(executed_commands_.size());
  }
  const smr::KvStore& kv() const { return kv_; }
  const std::vector<smr::Command>& executed_commands() const {
    return executed_commands_;
  }
  /// Messages this replica has sent (private-cloud load metric).
  uint64_t messages_sent() const { return messages_sent_; }

  void OnMessage(sim::NodeId from, const sim::Message& msg) override;

 protected:
  /// Adversary hook for mode-3 tests.
  virtual bool MaybeActMaliciouslyOnRequest(const smr::Command& cmd,
                                            const crypto::Signature& sig);

  /// Counting wrapper around Process::Send.
  void CountedSend(sim::NodeId to, sim::MessagePtr msg);
  void CountedMulticast(const std::vector<sim::NodeId>& targets,
                        const sim::MessagePtr& msg);

  SeeMoReOptions options_;

 private:
  struct Slot {
    bool proposed = false;
    smr::Command cmd;
    crypto::Signature client_sig;
    crypto::Digest digest{};
    std::set<sim::NodeId> validations;
    bool validated = false;
    bool sent_accept = false;
    std::set<sim::NodeId> accepts;
    bool decided = false;
    bool executed = false;
  };

  std::vector<sim::NodeId> Proxies() const;
  std::vector<sim::NodeId> Everyone() const;
  void Decide(uint64_t seq, const smr::Command& cmd);
  void MaybeExecute();
  void SendAccept(uint64_t seq, Slot& slot);

  uint64_t next_seq_ = 1;
  uint64_t exec_cursor_ = 1;
  std::map<uint64_t, Slot> slots_;

  smr::KvStore kv_;
  smr::DedupingExecutor dedup_;
  std::vector<smr::Command> executed_commands_;
  std::map<std::pair<int32_t, uint64_t>, std::string> results_;
  uint64_t messages_sent_ = 0;

  /// Commit adoption votes for non-deciding nodes (modes 2/3).
  std::map<uint64_t, std::map<crypto::Digest, std::set<sim::NodeId>>>
      commit_votes_;
  std::map<uint64_t, smr::Command> commit_cmds_;
};

/// SeeMoRe client: m+1 matching replies guarantee one correct reporter.
class SeeMoReClient : public sim::Process {
 public:
  SeeMoReClient(SeeMoReOptions options, int ops, std::string key = "x",
                sim::Duration retry = 500 * sim::kMillisecond);

  int completed() const { return completed_; }
  bool done() const { return completed_ >= ops_; }
  const std::vector<std::string>& results() const { return results_; }

  void OnStart() override;
  void OnMessage(sim::NodeId from, const sim::Message& msg) override;

 private:
  void SendCurrent(bool broadcast);
  sim::NodeId Primary() const;

  SeeMoReOptions options_;
  int ops_;
  std::string key_;
  sim::Duration retry_;
  int completed_ = 0;
  uint64_t seq_ = 0;
  uint64_t retry_timer_ = 0;
  std::map<std::string, std::set<sim::NodeId>> reply_votes_;
  std::vector<std::string> results_;
};

}  // namespace consensus40::seemore

#endif  // CONSENSUS40_SEEMORE_SEEMORE_H_
