#include "seemore/seemore.h"

#include <algorithm>
#include <cassert>

#include "pbft/pbft.h"

namespace consensus40::seemore {

namespace {

bool ValidRequest(const smr::Command& cmd, const crypto::Signature& sig,
                  const crypto::KeyRegistry& registry) {
  return pbft::PbftReplica::ValidRequest(cmd, sig, registry);
}

crypto::Digest SlotDigest(uint64_t seq, const smr::Command& cmd) {
  crypto::Sha256 h;
  h.Update(&seq, sizeof(seq));
  crypto::Digest d = cmd.Hash();
  h.Update(d.data(), d.size());
  return h.Finish();
}

}  // namespace

const char* ToString(SeeMoReMode mode) {
  switch (mode) {
    case SeeMoReMode::kMode1:
      return "mode1(trusted primary, centralized)";
    case SeeMoReMode::kMode2:
      return "mode2(trusted primary, decentralized)";
    case SeeMoReMode::kMode3:
      return "mode3(untrusted primary, decentralized)";
  }
  return "?";
}

SeeMoReReplica::SeeMoReReplica(SeeMoReOptions options) : options_(options) {
  assert(options_.m >= 1 && options_.c >= 0);
  assert(options_.registry != nullptr);
  // Modes 1/2 place the trusted primary in the private cloud.
  assert(options_.mode == SeeMoReMode::kMode3 || options_.private_n() >= 1);
}

sim::NodeId SeeMoReReplica::Primary() const {
  // Modes 1/2: a trusted (private-cloud) primary; mode 3: the first
  // public-cloud node.
  return options_.mode == SeeMoReMode::kMode3 ? options_.private_n() : 0;
}

bool SeeMoReReplica::IsProxy() const {
  if (options_.mode == SeeMoReMode::kMode1) return true;  // All decide.
  int first = options_.private_n();
  return id() >= first && id() < first + options_.proxy_count();
}

int SeeMoReReplica::DecisionQuorum() const {
  return options_.mode == SeeMoReMode::kMode1
             ? 2 * options_.m + options_.c + 1
             : 2 * options_.m + 1;
}

std::vector<sim::NodeId> SeeMoReReplica::Proxies() const {
  std::vector<sim::NodeId> proxies;
  if (options_.mode == SeeMoReMode::kMode1) {
    for (int i = 0; i < options_.n(); ++i) proxies.push_back(i);
  } else {
    int first = options_.private_n();
    for (int i = 0; i < options_.proxy_count(); ++i) {
      proxies.push_back(first + i);
    }
  }
  return proxies;
}

std::vector<sim::NodeId> SeeMoReReplica::Everyone() const {
  std::vector<sim::NodeId> all;
  for (int i = 0; i < options_.n(); ++i) all.push_back(i);
  return all;
}

bool SeeMoReReplica::MaybeActMaliciouslyOnRequest(const smr::Command&,
                                                  const crypto::Signature&) {
  return false;
}

void SeeMoReReplica::CountedSend(sim::NodeId to, sim::MessagePtr msg) {
  ++messages_sent_;
  Send(to, std::move(msg));
}

void SeeMoReReplica::CountedMulticast(const std::vector<sim::NodeId>& targets,
                                      const sim::MessagePtr& msg) {
  messages_sent_ += targets.size();
  Multicast(targets, msg);
}

void SeeMoReReplica::Decide(uint64_t seq, const smr::Command& cmd) {
  Slot& slot = slots_[seq];
  if (slot.decided) return;
  slot.decided = true;
  slot.cmd = cmd;
  slot.proposed = true;
  MaybeExecute();
}

void SeeMoReReplica::MaybeExecute() {
  while (true) {
    auto it = slots_.find(exec_cursor_);
    if (it == slots_.end() || !it->second.decided) break;
    Slot& slot = it->second;
    if (!slot.executed) {
      slot.executed = true;
      auto key = std::make_pair(slot.cmd.client, slot.cmd.client_seq);
      std::string result;
      if (results_.count(key) > 0) {
        result = results_[key];
      } else {
        result = dedup_.Apply(&kv_, slot.cmd);
        results_[key] = result;
        executed_commands_.push_back(slot.cmd);
      }
      auto reply = std::make_shared<ReplyMsg>();
      reply->client_seq = slot.cmd.client_seq;
      reply->replica = id();
      reply->result = result;
      CountedSend(slot.cmd.client, reply);
    }
    ++exec_cursor_;
  }
}

void SeeMoReReplica::SendAccept(uint64_t seq, Slot& slot) {
  if (slot.sent_accept) return;
  slot.sent_accept = true;
  auto accept = std::make_shared<AcceptMsg>();
  accept->seq = seq;
  accept->digest = slot.digest;
  accept->replica = id();
  accept->sig = options_.registry->Sign(id(), slot.digest);
  if (options_.mode == SeeMoReMode::kMode1) {
    // Centralized decision making: accepts flow back to the primary.
    CountedSend(Primary(), accept);
  } else {
    // Decentralized: proxies gossip accepts among themselves.
    CountedMulticast(Proxies(), accept);
  }
  slot.accepts.insert(id());
}

void SeeMoReReplica::OnMessage(sim::NodeId from, const sim::Message& msg) {
  if (const auto* m = dynamic_cast<const RequestMsg*>(&msg)) {
    if (!ValidRequest(m->cmd, m->client_sig, *options_.registry)) return;
    auto key = std::make_pair(m->cmd.client, m->cmd.client_seq);
    auto done = results_.find(key);
    if (done != results_.end()) {
      auto reply = std::make_shared<ReplyMsg>();
      reply->client_seq = m->cmd.client_seq;
      reply->replica = id();
      reply->result = done->second;
      CountedSend(m->cmd.client, reply);
      return;
    }
    if (!IsPrimary()) {
      CountedSend(Primary(),
                  std::make_shared<RequestMsg>(m->cmd, m->client_sig));
      return;
    }
    if (MaybeActMaliciouslyOnRequest(m->cmd, m->client_sig)) return;
    for (const auto& [seq, slot] : slots_) {
      if (slot.cmd.client == m->cmd.client &&
          slot.cmd.client_seq == m->cmd.client_seq) {
        return;  // In flight.
      }
    }
    auto propose = std::make_shared<ProposeMsg>();
    propose->seq = next_seq_++;
    propose->cmd = m->cmd;
    propose->client_sig = m->client_sig;
    propose->primary_sig = options_.registry->Sign(
        id(), SlotDigest(propose->seq, m->cmd));
    // The proposal reaches every node (so the private cloud stays in sync)
    // in all modes.
    CountedMulticast(Everyone(), propose);
    return;
  }

  if (const auto* m = dynamic_cast<const ProposeMsg*>(&msg)) {
    if (from != Primary()) return;
    if (!ValidRequest(m->cmd, m->client_sig, *options_.registry)) return;
    crypto::Digest digest = SlotDigest(m->seq, m->cmd);
    if (m->primary_sig.signer != Primary() ||
        !options_.registry->Verify(m->primary_sig, digest)) {
      return;
    }
    Slot& slot = slots_[m->seq];
    if (slot.proposed && !(slot.digest == digest)) return;  // Equivocation.
    slot.proposed = true;
    slot.cmd = m->cmd;
    slot.client_sig = m->client_sig;
    slot.digest = digest;

    switch (options_.mode) {
      case SeeMoReMode::kMode1:
        // Every node accepts straight back to the trusted primary.
        SendAccept(m->seq, slot);
        break;
      case SeeMoReMode::kMode2:
        // The primary is trusted: proxies accept without validation.
        if (IsProxy()) SendAccept(m->seq, slot);
        break;
      case SeeMoReMode::kMode3: {
        // Untrusted primary: proxies first cross-validate the proposal.
        if (!IsProxy()) break;
        auto validate = std::make_shared<ValidateMsg>();
        validate->seq = m->seq;
        validate->digest = digest;
        validate->replica = id();
        validate->sig = options_.registry->Sign(id(), digest);
        CountedMulticast(Proxies(), validate);
        slot.validations.insert(id());
        break;
      }
    }
    return;
  }

  if (const auto* m = dynamic_cast<const ValidateMsg*>(&msg)) {
    if (options_.mode != SeeMoReMode::kMode3 || !IsProxy()) return;
    if (m->sig.signer != from ||
        !options_.registry->Verify(m->sig, m->digest)) {
      return;
    }
    Slot& slot = slots_[m->seq];
    if (slot.proposed && !(slot.digest == m->digest)) return;
    slot.validations.insert(from);
    if (slot.proposed && !slot.validated &&
        static_cast<int>(slot.validations.size()) >= DecisionQuorum()) {
      slot.validated = true;
      SendAccept(m->seq, slot);
    }
    return;
  }

  if (const auto* m = dynamic_cast<const AcceptMsg*>(&msg)) {
    if (m->sig.signer != from ||
        !options_.registry->Verify(m->sig, m->digest)) {
      return;
    }
    Slot& slot = slots_[m->seq];
    if (slot.proposed && !(slot.digest == m->digest)) return;
    slot.accepts.insert(from);
    if (slot.proposed && !slot.decided &&
        static_cast<int>(slot.accepts.size()) >= DecisionQuorum()) {
      // Decision reached; propagate asynchronously to everyone.
      auto commit = std::make_shared<CommitMsg>();
      commit->seq = m->seq;
      commit->cmd = slot.cmd;
      CountedMulticast(Everyone(), commit);
      Decide(m->seq, slot.cmd);
    }
    return;
  }

  if (const auto* m = dynamic_cast<const CommitMsg*>(&msg)) {
    // In modes 2/3 the private cloud learns decisions through commits from
    // the deciding proxies; accept after m+1 agreeing senders (at least one
    // correct). Mode 1 commits come from the trusted primary directly.
    if (options_.mode == SeeMoReMode::kMode1) {
      if (from == Primary()) Decide(m->seq, m->cmd);
      return;
    }
    Slot& slot = slots_[m->seq];
    (void)slot;
    commit_votes_[m->seq][m->cmd.Hash()].insert(from);
    commit_cmds_[m->seq] = m->cmd;
    if (static_cast<int>(
            commit_votes_[m->seq][m->cmd.Hash()].size()) >= options_.m + 1) {
      Decide(m->seq, m->cmd);
    }
    return;
  }
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

SeeMoReClient::SeeMoReClient(SeeMoReOptions options, int ops, std::string key,
                             sim::Duration retry)
    : options_(options), ops_(ops), key_(std::move(key)), retry_(retry) {}

sim::NodeId SeeMoReClient::Primary() const {
  return options_.mode == SeeMoReMode::kMode3 ? options_.private_n() : 0;
}

void SeeMoReClient::OnStart() {
  seq_ = 1;
  SendCurrent(false);
}

void SeeMoReClient::SendCurrent(bool broadcast) {
  if (done()) return;
  smr::Command cmd{id(), seq_, "INC " + key_};
  crypto::Signature sig = options_.registry->Sign(id(), cmd.Hash());
  if (broadcast) {
    for (int i = 0; i < options_.n(); ++i) {
      Send(i, std::make_shared<SeeMoReReplica::RequestMsg>(cmd, sig));
    }
  } else {
    Send(Primary(), std::make_shared<SeeMoReReplica::RequestMsg>(cmd, sig));
  }
  CancelTimer(retry_timer_);
  retry_timer_ = SetTimer(retry_, [this] { SendCurrent(true); });
}

void SeeMoReClient::OnMessage(sim::NodeId from, const sim::Message& msg) {
  const auto* m = dynamic_cast<const SeeMoReReplica::ReplyMsg*>(&msg);
  if (m == nullptr || m->client_seq != seq_ || done()) return;
  reply_votes_[m->result].insert(from);
  if (static_cast<int>(reply_votes_[m->result].size()) >= options_.m + 1) {
    results_.push_back(m->result);
    reply_votes_.clear();
    ++completed_;
    ++seq_;
    if (done()) {
      CancelTimer(retry_timer_);
    } else {
      SendCurrent(false);
    }
  }
}

}  // namespace consensus40::seemore
