#ifndef CONSENSUS40_AGREEMENT_INTERACTIVE_CONSISTENCY_H_
#define CONSENSUS40_AGREEMENT_INTERACTIVE_CONSISTENCY_H_

#include <functional>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace consensus40::agreement {

/// The UNKNOWN marker from the deck's result vectors.
inline constexpr const char* kUnknown = "\x01UNKNOWN";

/// Result vector computed by one correct process: element i is process i's
/// value, or kUnknown when no majority emerged.
using ResultVector = std::vector<std::string>;

/// How a faulty process lies. Called once per (receiver, element) when the
/// faulty process relays data; the return value is what the receiver gets.
/// round 1 = own-value broadcast, round 2 = vector relay.
using ByzantineBehavior = std::function<std::string(
    int faulty, int receiver, int round, int element)>;

/// Default adversary: sends a distinct garbage value to every receiver —
/// the x/y/z and (a,b,c,d) pattern in the deck's figures.
ByzantineBehavior DefaultLiar();

/// A crash-style adversary: sends nothing (modelled as empty strings).
ByzantineBehavior Silent();

/// Runs the Pease–Shostak–Lamport interactive-consistency exchange for one
/// round of value broadcast plus one round of vector relay (the deck's
/// 4-step construction, sufficient for f = 1):
///
///   1. every process sends its value to the others;
///   2. each collects the received values in a vector;
///   3. every process passes its vector to every other process;
///   4. element i of the result is the majority over the relayed vectors,
///      or UNKNOWN if no value has a majority.
///
/// Returns one ResultVector per process (entries for faulty processes are
/// computed but meaningless). `values[i]` is process i's private value.
///
/// The deck's theorem: with n >= 3f+1 the correct processes' result vectors
/// (a) agree with each other and (b) contain every correct process's true
/// value; with n = 3 and f = 1 they degrade to UNKNOWN.
std::vector<ResultVector> RunInteractiveConsistency(
    int n, const std::vector<std::string>& values,
    const std::set<int>& faulty, const ByzantineBehavior& behavior);

/// Checks property (a): all correct processes computed identical vectors.
bool VectorsAgree(const std::vector<ResultVector>& results,
                  const std::set<int>& faulty);

/// Checks property (b): every correct process's value is correctly present
/// in every correct process's vector.
bool CorrectValuesRecovered(const std::vector<ResultVector>& results,
                            const std::vector<std::string>& values,
                            const std::set<int>& faulty);

}  // namespace consensus40::agreement

#endif  // CONSENSUS40_AGREEMENT_INTERACTIVE_CONSISTENCY_H_
