/// Checker adapter for FloodSet. FloodSet runs in lockstep rounds rather
/// than on the event simulator, so this adapter runs "direct": it maps the
/// fault schedule's crash actions onto a CrashPlan (crash time scales to a
/// round; the generator's aux randomness picks how far the dying broadcast
/// reached) and evaluates the result. The in-bounds adapter runs the
/// algorithm's full f+1 rounds; the out-of-bounds one stops at f rounds,
/// where a crash chain can hide a value from part of the cluster.

#include <memory>
#include <string>

#include "agreement/floodset.h"
#include "check/adapters.h"

namespace consensus40::check {
namespace {

class FloodSetCheckAdapter : public ProtocolAdapter {
 public:
  FloodSetCheckAdapter(std::vector<std::string> values, int max_crashed,
                       int rounds, const char* label)
      : values_(std::move(values)),
        max_crashed_(max_crashed),
        rounds_(rounds),
        label_(label) {}

  const char* name() const override { return label_; }

  FaultBounds bounds() const override {
    FaultBounds b;
    b.nodes = static_cast<int>(values_.size());
    b.max_crashed = max_crashed_;
    b.delay_spikes = false;  // Lockstep rounds have no delay model.
    return b;
  }

  void Build(sim::Simulation*) override {}
  bool Done() const override { return true; }

  bool RunsDirect() const override { return true; }

  Observation RunDirect(const FaultSchedule& schedule) override {
    const int n = static_cast<int>(values_.size());
    const FaultBounds b = bounds();
    agreement::CrashPlan plan;
    plan.crash_round.assign(n, rounds_ + 1);
    plan.reach.assign(n, n);
    for (const FaultAction& a : schedule.actions) {
      if (a.kind != FaultKind::kCrash) continue;
      int round = 1 + static_cast<int>((a.at * rounds_) / (b.horizon + 1));
      if (round > rounds_) round = rounds_;
      plan.crash_round[a.node] = round;
      plan.reach[a.node] = static_cast<int>(a.aux % (n + 1));
    }

    agreement::FloodSetResult result =
        agreement::RunFloodSet(values_, plan, rounds_);
    Observation o;
    o.allowed = values_;
    for (int i = 0; i < n; ++i) {
      if (plan.crash_round[i] <= rounds_) continue;  // Crashed: no decision.
      o.decided["0"][i] = result.decisions[i];
    }
    return o;
  }

  Observation Observe() const override { return {}; }

 private:
  std::vector<std::string> values_;
  int max_crashed_;
  int rounds_;
  const char* label_;
};

}  // namespace

AdapterFactory MakeFloodSetAdapter() {
  // n=5, f=2, the algorithm's f+1 rounds: agreement must hold.
  return [](uint64_t) {
    return std::make_unique<FloodSetCheckAdapter>(
        std::vector<std::string>{"b", "a", "c", "d", "e"}, 2, 3, "floodset");
  };
}

AdapterFactory MakeFloodSetOutOfBoundsAdapter() {
  // n=3, f=1 but only f rounds: one mid-broadcast crash of the node
  // holding the minimum value splits the survivors.
  return [](uint64_t) {
    return std::make_unique<FloodSetCheckAdapter>(
        std::vector<std::string>{"a", "b", "c"}, 1, 1, "floodset-f-rounds");
  };
}

}  // namespace consensus40::check
