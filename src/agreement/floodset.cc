#include "agreement/floodset.h"

#include <algorithm>

namespace consensus40::agreement {

FloodSetResult RunFloodSet(const std::vector<std::string>& values,
                           const CrashPlan& plan, int rounds) {
  int n = static_cast<int>(values.size());
  std::vector<std::set<std::string>> sets(n);
  for (int i = 0; i < n; ++i) sets[i] = {values[i]};

  for (int round = 1; round <= rounds; ++round) {
    // Gather all broadcasts of this round first (synchronous semantics: no
    // message of round r depends on another round-r message).
    std::vector<std::set<std::string>> incoming(n);
    for (int sender = 0; sender < n; ++sender) {
      if (plan.crash_round[sender] < round) continue;  // Already dead.
      bool crashing_now = plan.crash_round[sender] == round;
      for (int receiver = 0; receiver < n; ++receiver) {
        if (receiver == sender) continue;
        if (plan.crash_round[receiver] < round) continue;
        if (crashing_now && receiver >= plan.reach[sender]) continue;
        incoming[receiver].insert(sets[sender].begin(), sets[sender].end());
      }
    }
    for (int receiver = 0; receiver < n; ++receiver) {
      if (plan.crash_round[receiver] <= round) continue;
      sets[receiver].insert(incoming[receiver].begin(),
                            incoming[receiver].end());
    }
  }

  FloodSetResult result;
  result.sets = sets;
  result.decisions.resize(n);
  for (int i = 0; i < n; ++i) {
    if (plan.crash_round[i] <= rounds) continue;  // Crashed: no decision.
    // Deterministic rule: decide the minimum value seen.
    result.decisions[i] = *std::min_element(sets[i].begin(), sets[i].end());
  }
  return result;
}

bool FloodSetAgreement(const FloodSetResult& result, const CrashPlan& plan,
                       int rounds) {
  std::string decided;
  for (size_t i = 0; i < result.decisions.size(); ++i) {
    if (plan.crash_round[i] <= rounds) continue;
    if (decided.empty()) {
      decided = result.decisions[i];
    } else if (result.decisions[i] != decided) {
      return false;
    }
  }
  return true;
}

}  // namespace consensus40::agreement
