#ifndef CONSENSUS40_AGREEMENT_FLOODSET_H_
#define CONSENSUS40_AGREEMENT_FLOODSET_H_

#include <functional>
#include <set>
#include <string>
#include <vector>

namespace consensus40::agreement {

/// FloodSet: the classic synchronous crash-fault consensus algorithm and
/// the deck's "synchronous system" aspect made executable. In each of
/// f+1 rounds every live process broadcasts the set of values it has seen;
/// after f+1 rounds all correct processes hold the same set and decide
/// deterministically (minimum value here).
///
/// Why f+1 rounds: a crashing process may deliver its value to only some
/// peers, but it can disrupt at most one round; with f faults there is at
/// least one "clean" round in any f+1, after which the sets are equal.
struct FloodSetResult {
  /// Decision of each process (empty string = crashed before deciding).
  std::vector<std::string> decisions;
  /// Value sets after the final round, for inspection.
  std::vector<std::set<std::string>> sets;
};

/// Crash schedule: CrashPlan(process, round) returns the set of receivers
/// that still get this process's round broadcast before it dies; a process
/// is considered crashed from round r onward if it was scheduled to crash
/// in round r. Return std::nullopt-like behaviour is modelled by
/// `crash_round[i] > rounds` (never crashes) and `partial_delivery`.
struct CrashPlan {
  /// crash_round[i] = round in which process i crashes (1-based); a value
  /// greater than the number of rounds means it never crashes.
  std::vector<int> crash_round;
  /// During its crash round the process reaches only receivers with index
  /// < reach[i] (models "crash mid-broadcast").
  std::vector<int> reach;
};

/// Runs FloodSet for `rounds` rounds over `values`. Correct processes are
/// those whose crash_round exceeds `rounds`.
FloodSetResult RunFloodSet(const std::vector<std::string>& values,
                           const CrashPlan& plan, int rounds);

/// True iff every surviving process decided the same value.
bool FloodSetAgreement(const FloodSetResult& result, const CrashPlan& plan,
                       int rounds);

}  // namespace consensus40::agreement

#endif  // CONSENSUS40_AGREEMENT_FLOODSET_H_
