#include "agreement/interactive_consistency.h"

#include <map>

namespace consensus40::agreement {

ByzantineBehavior DefaultLiar() {
  return [](int faulty, int receiver, int round, int element) {
    return "garble-f" + std::to_string(faulty) + "-r" +
           std::to_string(receiver) + "-" + std::to_string(round) + "." +
           std::to_string(element);
  };
}

ByzantineBehavior Silent() {
  return [](int, int, int, int) { return std::string(); };
}

std::vector<ResultVector> RunInteractiveConsistency(
    int n, const std::vector<std::string>& values,
    const std::set<int>& faulty, const ByzantineBehavior& behavior) {
  // Round 1: everyone sends its value; got[p][i] = what p received as i's
  // value (p's own slot holds its own value).
  std::vector<std::vector<std::string>> got(n, std::vector<std::string>(n));
  for (int p = 0; p < n; ++p) {
    for (int i = 0; i < n; ++i) {
      if (i == p) {
        got[p][i] = values[p];
      } else if (faulty.count(i) > 0) {
        got[p][i] = behavior(i, p, /*round=*/1, /*element=*/i);
      } else {
        got[p][i] = values[i];
      }
    }
  }

  // Round 2: everyone relays its vector; relayed[p][q][i] = element i of
  // the vector p received from q.
  std::vector<std::vector<std::vector<std::string>>> relayed(
      n, std::vector<std::vector<std::string>>(n));
  for (int p = 0; p < n; ++p) {
    for (int q = 0; q < n; ++q) {
      if (q == p) continue;
      relayed[p][q].resize(n);
      for (int i = 0; i < n; ++i) {
        if (faulty.count(q) > 0) {
          relayed[p][q][i] = behavior(q, p, /*round=*/2, i);
        } else {
          relayed[p][q][i] = got[q][i];
        }
      }
    }
  }

  // Step 4: majority vote per element over the n-1 relayed vectors.
  std::vector<ResultVector> results(n);
  for (int p = 0; p < n; ++p) {
    results[p].resize(n);
    for (int i = 0; i < n; ++i) {
      if (i == p) {
        results[p][i] = values[p];
        continue;
      }
      std::map<std::string, int> counts;
      int voters = 0;
      for (int q = 0; q < n; ++q) {
        if (q == p || q == i) continue;  // i's own relay of itself is direct.
        ++counts[relayed[p][q][i]];
        ++voters;
      }
      // Include what i itself claimed directly in round 1.
      ++counts[got[p][i]];
      ++voters;
      std::string winner = kUnknown;
      for (const auto& [value, count] : counts) {
        if (2 * count > voters) winner = value;
      }
      results[p][i] = winner;
    }
  }
  return results;
}

bool VectorsAgree(const std::vector<ResultVector>& results,
                  const std::set<int>& faulty) {
  const ResultVector* reference = nullptr;
  for (size_t p = 0; p < results.size(); ++p) {
    if (faulty.count(static_cast<int>(p)) > 0) continue;
    if (reference == nullptr) {
      reference = &results[p];
      continue;
    }
    // Correct processes must agree on every element belonging to another
    // process (element p of each vector is that process's own value, which
    // trivially differs across processes — compare all i not owned by
    // either vector's holder).
    for (size_t i = 0; i < results[p].size(); ++i) {
      size_t ref_owner = reference - results.data();
      if (i == p || i == ref_owner) continue;
      if (results[p][i] != (*reference)[i]) return false;
    }
  }
  return true;
}

bool CorrectValuesRecovered(const std::vector<ResultVector>& results,
                            const std::vector<std::string>& values,
                            const std::set<int>& faulty) {
  for (size_t p = 0; p < results.size(); ++p) {
    if (faulty.count(static_cast<int>(p)) > 0) continue;
    for (size_t i = 0; i < results[p].size(); ++i) {
      if (faulty.count(static_cast<int>(i)) > 0) continue;
      if (results[p][i] != values[i]) return false;
    }
  }
  return true;
}

}  // namespace consensus40::agreement
