#include "agreement/approximate.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace consensus40::agreement {

int RoundsForSpread(double spread, double epsilon) {
  assert(epsilon > 0);
  int rounds = 0;
  while (spread > epsilon) {
    spread /= 2;
    ++rounds;
  }
  return rounds;
}

struct ApproxAgreementNode::ValueMsg : sim::Message {
  const char* TypeName() const override { return "approx-value"; }
  int ByteSize() const override { return 20; }
  int round = 0;
  double value = 0;
};

ApproxAgreementNode::ApproxAgreementNode(ApproxOptions options,
                                         double initial_value,
                                         int rounds_to_run)
    : options_(options), value_(initial_value), rounds_to_run_(rounds_to_run) {
  assert(options_.n > 0);
  f_ = (options_.n - 1) / 3;
}

std::vector<sim::NodeId> ApproxAgreementNode::Everyone() const {
  std::vector<sim::NodeId> all;
  for (int i = 0; i < options_.n; ++i) all.push_back(i);
  return all;
}

void ApproxAgreementNode::OnStart() { StartRound(); }

void ApproxAgreementNode::StartRound() {
  if (round_ > rounds_to_run_ || round_ > options_.max_rounds) {
    halted_ = true;
    return;
  }
  auto msg = std::make_shared<ValueMsg>();
  msg->round = round_;
  msg->value = value_;
  Multicast(Everyone(), msg);
  MaybeFinishRound();
}

void ApproxAgreementNode::MaybeFinishRound() {
  if (halted_) return;
  auto& received = received_[round_];
  if (static_cast<int>(received.size()) < options_.n - f_) return;
  std::vector<double> values;
  values.reserve(received.size());
  for (const auto& [node, v] : received) values.push_back(v);
  std::sort(values.begin(), values.end());
  // Discard the f smallest and f largest (possible faulty extremes), then
  // take the midpoint of what survives.
  double lo = values[f_];
  double hi = values[values.size() - 1 - f_];
  value_ = (lo + hi) / 2;
  ++round_;
  StartRound();
}

void ApproxAgreementNode::OnMessage(sim::NodeId from,
                                    const sim::Message& msg) {
  const auto* m = dynamic_cast<const ValueMsg*>(&msg);
  if (m == nullptr) return;
  received_[m->round][from] = m->value;
  if (m->round == round_) MaybeFinishRound();
}

}  // namespace consensus40::agreement
