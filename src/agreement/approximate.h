#ifndef CONSENSUS40_AGREEMENT_APPROXIMATE_H_
#define CONSENSUS40_AGREEMENT_APPROXIMATE_H_

#include <map>
#include <optional>
#include <vector>

#include "sim/simulation.h"

namespace consensus40::agreement {

/// Configuration for an approximate-agreement node.
struct ApproxOptions {
  /// Cluster size; tolerates f < n/3 crash faults in this asynchronous
  /// variant (the mean-of-middle reduction needs 2f+1 <= collected).
  int n = 0;
  /// Convergence threshold: nodes halt once their value is provably within
  /// epsilon of every other correct node's.
  double epsilon = 0.01;
  /// Upper bound on rounds (safety net for tests).
  int max_rounds = 64;
};

/// Asynchronous approximate agreement (Dolev, Lynch, Pinter, Stark, Weihl
/// 1986 — the deck's fourth FLP circumvention: "change the problem
/// domain"). Exact agreement is impossible deterministically under
/// asynchrony, but agreement *to within epsilon* is solvable: each round a
/// node broadcasts its value, collects n-f, discards the f lowest and f
/// highest, and averages the rest. The spread of correct values at least
/// halves per round, so ceil(log2(spread/epsilon)) rounds suffice.
class ApproxAgreementNode : public sim::Process {
 public:
  ApproxAgreementNode(ApproxOptions options, double initial_value,
                      int rounds_to_run);

  double value() const { return value_; }
  bool halted() const { return halted_; }
  int round() const { return round_; }

  void OnStart() override;
  void OnMessage(sim::NodeId from, const sim::Message& msg) override;

 private:
  struct ValueMsg;

  void StartRound();
  void MaybeFinishRound();
  std::vector<sim::NodeId> Everyone() const;

  ApproxOptions options_;
  int f_;
  double value_;
  int rounds_to_run_;
  int round_ = 1;
  bool halted_ = false;
  /// round -> sender -> value (asynchrony delivers across rounds).
  std::map<int, std::map<sim::NodeId, double>> received_;
};

/// The number of rounds that provably brings an initial spread down to
/// epsilon: each averaging round at least halves the correct-value range.
int RoundsForSpread(double spread, double epsilon);

}  // namespace consensus40::agreement

#endif  // CONSENSUS40_AGREEMENT_APPROXIMATE_H_
