#ifndef CONSENSUS40_SIM_SIMULATION_H_
#define CONSENSUS40_SIM_SIMULATION_H_

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <queue>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/interner.h"
#include "common/rng.h"
#include "common/slab.h"

namespace consensus40::sim {

/// Identifier of a simulated process. Ids are dense, assigned in spawn order.
using NodeId = int;
constexpr NodeId kInvalidNode = -1;

/// Virtual time in microseconds since simulation start.
using Time = int64_t;
using Duration = int64_t;

constexpr Duration kMicrosecond = 1;
constexpr Duration kMillisecond = 1000;
constexpr Duration kSecond = 1000 * 1000;

/// Base class of every message exchanged between simulated processes.
/// Protocols define subclasses carrying their payloads; the simulator only
/// needs a type name (for per-type statistics and flow traces) and a size
/// estimate (for byte accounting).
struct Message {
  virtual ~Message() = default;

  /// Stable name used in statistics and message-flow traces, e.g. "prepare".
  /// The returned pointer must stay valid (and its contents constant) for
  /// the lifetime of the simulation; returning a string literal, as every
  /// protocol here does, satisfies that for free.
  virtual const char* TypeName() const = 0;

  /// Approximate wire size in bytes, used only for accounting.
  virtual int ByteSize() const { return 64; }
};

using MessagePtr = std::shared_ptr<const Message>;

/// A message in flight: sender, receiver, payload, and send timestamp.
struct Envelope {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  MessagePtr msg;
  Time send_time = 0;
  uint64_t id = 0;  ///< Unique per simulation, in send order.
};

/// Aggregate network statistics, maintained by the simulation.
///
/// Accounting rules:
///   - `messages_sent` / `bytes_sent` / `sent_by_type` count only *admitted*
///     sends: those the link rules (partitions, blocked links) let onto the
///     network at send time. A send rejected outright by the topology counts
///     one `messages_dropped` and nothing else.
///   - A message the delay model discards (drop_rate or a negative DelayFn
///     return) or that is dropped at delivery time (destination crashed or
///     restarted, topology changed while in flight) counts as sent *and*
///     dropped.
///
/// Zero the counters mid-run with Reset(), not by assigning a fresh struct:
/// the simulation keeps fast-path cursors into `sent_by_type` that only
/// Reset() invalidates.
struct NetStats {
  uint64_t messages_sent = 0;
  uint64_t messages_delivered = 0;
  uint64_t messages_dropped = 0;
  uint64_t bytes_sent = 0;
  std::map<std::string, uint64_t> sent_by_type;

  void Reset() {
    messages_sent = messages_delivered = messages_dropped = bytes_sent = 0;
    sent_by_type.clear();
    ++reset_count_;
  }

  /// Internal: bumped by Reset() so the simulation can detect stale cursors.
  uint64_t reset_count() const { return reset_count_; }

 private:
  uint64_t reset_count_ = 0;
};

/// Message-delay model. The default is a partially-synchronous network:
/// uniform random delay in [min_delay, max_delay] plus an optional drop rate.
///
/// When `bytes_per_ms` is positive the network also charges a
/// *serialization* delay on every send: each sender owns one egress port
/// that puts `ByteSize()` bytes on the wire at `bytes_per_ms`, so a burst
/// of large sends queues behind itself (delivery = egress-queue drain +
/// serialization + propagation). The default (0) is an infinite-bandwidth
/// network: no serialization charge, no egress queue, and — critically —
/// no extra rng draws, so every pre-existing seeded run is bit-identical.
/// `link_bytes_per_ms` overrides the rate for individual (from, to) links
/// (0 in an override = infinite for that link).
struct NetworkOptions {
  Duration min_delay = 1 * kMillisecond;
  Duration max_delay = 5 * kMillisecond;
  double drop_rate = 0.0;
  double bytes_per_ms = 0.0;  ///< 0 = infinite bandwidth (default).
  std::map<std::pair<NodeId, NodeId>, double> link_bytes_per_ms;

  /// True when any serialization charge applies (the bandwidth model is on).
  bool HasBandwidth() const {
    return bytes_per_ms > 0 || !link_bytes_per_ms.empty();
  }
};

class Simulation;
class ByzantineInterposer;

/// A simulated process (replica, client, miner, ...). Protocol code derives
/// from Process and reacts to OnStart / OnMessage / timers. All interaction
/// with the outside world goes through the protected helpers, which keeps
/// every protocol implementation deterministic and wall-clock-free.
class Process {
 public:
  virtual ~Process() = default;

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  /// This process's id within its simulation.
  NodeId id() const { return id_; }

  /// True while the process is crashed (between Crash() and Restart()).
  bool crashed() const { return crashed_; }

  /// Called once when the simulation starts (or when the process is spawned
  /// into an already-running simulation).
  virtual void OnStart() {}

  /// Called for every delivered message.
  virtual void OnMessage(NodeId from, const Message& msg) = 0;

  /// Called when the process restarts after a crash. Volatile state should
  /// be reset here; state the protocol persists to "stable storage" may be
  /// kept (each protocol documents what it persists).
  virtual void OnRestart() {}

 protected:
  Process() = default;

  /// The owning simulation. Only valid after the process has been spawned.
  Simulation& sim() const { return *sim_; }

  /// Current virtual time.
  Time Now() const;

  /// Per-process deterministic random stream.
  Rng& rng() { return *rng_; }

  /// Sends a message to another process (or to self) through the simulated
  /// network.
  void Send(NodeId to, MessagePtr msg);

  /// Sends a copy of the message to every process in `targets`. The
  /// simulator builds the envelope once and shares the payload across the
  /// fan-out; per-target work is limited to the delay draw and one queued
  /// event.
  void Multicast(const std::vector<NodeId>& targets, const MessagePtr& msg);

  /// Schedules `fn` to run on this process after `delay`. The timer is
  /// silently discarded if the process crashes before it fires or if it is
  /// cancelled. Returns a cancellation handle.
  uint64_t SetTimer(Duration delay, std::function<void()> fn);

  /// Cancels a pending timer. Cancelling an already-fired (or already
  /// cancelled) timer is a no-op and leaves no bookkeeping residue.
  void CancelTimer(uint64_t timer_id);

 private:
  friend class Simulation;

  Simulation* sim_ = nullptr;
  NodeId id_ = kInvalidNode;
  bool crashed_ = false;
  uint64_t epoch_ = 0;  ///< Bumped on crash *and* restart; in-flight
                        ///< deliveries and timers check it.
  std::unique_ptr<Rng> rng_;
};

/// Deterministic discrete-event simulator: a virtual clock, an event queue,
/// a set of processes, and a configurable lossy network between them.
/// All protocol executions, fault injections, and benchmarks in this
/// repository run inside a Simulation.
///
/// The event queue is built for throughput: events live in a slab (tagged
/// variant of message-delivery / process-timer / sim-callback, recycled
/// through a free list) and are ordered by a calendar of per-timestamp FIFO
/// buckets, so the steady state allocates nothing per event and same-time
/// events cost O(1) each instead of a binary-heap reshuffle. Per-type
/// statistics go through interned TypeIds (common/interner.h) — a vector
/// index per send, not a string-keyed map lookup.
class Simulation {
 public:
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Constructs a process of type T in place and registers it. Returns a
  /// non-owning pointer valid for the lifetime of the simulation. Spawning
  /// while a partition is in effect is allowed: the new node starts isolated
  /// (group -1) until the next Partition()/Heal() call.
  template <typename T, typename... Args>
  T* Spawn(Args&&... args) {
    auto owned = std::make_unique<T>(std::forward<Args>(args)...);
    T* raw = owned.get();
    Register(std::move(owned));
    return raw;
  }

  /// Process lookup; id must be valid.
  Process* process(NodeId id) const { return processes_[id].get(); }
  int num_processes() const { return static_cast<int>(processes_.size()); }

  Time now() const { return now_; }
  Rng& rng() { return rng_; }
  NetStats& stats() { return stats_; }
  const NetworkOptions& options() const { return options_; }

  /// Replaces the network options mid-run. This is the injection hook used
  /// by fault schedules for delay spikes: messages sent after the call use
  /// the new delay/drop model (in-flight messages keep their old delivery
  /// times). Always goes through here rather than mutating options()
  /// directly so the fixed-delay fast-path cache stays coherent.
  void SetNetworkOptions(const NetworkOptions& o) {
    options_ = o;
    fixed_delay_ = delay_fn_ ? -1 : FixedDelayFor(options_);
  }

  /// Calls OnStart on every process that has not been started yet. Safe to
  /// call repeatedly (e.g. after spawning more processes).
  void Start();

  /// Executes the next pending event. Returns false if the queue is empty.
  bool Step();

  /// Runs until the virtual clock reaches now()+d (events at the boundary
  /// included). The clock always ends at exactly now()+d.
  void RunFor(Duration d);

  /// Runs until the predicate holds (checked after every event) or the
  /// virtual clock passes `deadline`. Returns true if the predicate held.
  /// On failure the clock advances to `deadline` (mirroring RunFor), so a
  /// timed-out wait leaves now() at the deadline rather than at the last
  /// executed event.
  bool RunUntil(const std::function<bool()>& pred, Time deadline);

  /// Crashes a process: pending deliveries and timers for it are dropped —
  /// including messages already in flight, even if the process restarts
  /// before their delivery time — and future deliveries are dropped until
  /// Restart. (Each delivery carries the destination's epoch from send
  /// time; crash and restart both bump the epoch, so nothing sent to an
  /// earlier incarnation is ever delivered to a later one.)
  void Crash(NodeId id);

  /// Restarts a crashed process (calls OnRestart).
  void Restart(NodeId id);

  bool IsCrashed(NodeId id) const { return processes_[id]->crashed_; }

  /// How far ahead of the clock `id`'s egress port is booked, i.e. how long
  /// a zero-byte send from `id` would wait before starting to serialize.
  /// Always 0 under infinite bandwidth. This is the observable the adaptive
  /// Crossword controller feeds on: a growing backlog means the sender is
  /// pushing more bytes than its links drain.
  Duration EgressBacklog(NodeId id) const {
    const Time free_at =
        static_cast<size_t>(id) < egress_free_.size() ? egress_free_[id] : 0;
    return free_at > now_ ? free_at - now_ : 0;
  }

  /// Marks a process as Byzantine for bookkeeping/assertion purposes. The
  /// malicious behaviour itself lives in protocol-specific adversary
  /// subclasses of Process.
  void MarkByzantine(NodeId id) { byzantine_.insert(id); }
  bool IsByzantine(NodeId id) const { return byzantine_.count(id) > 0; }

  /// Cuts the network into groups; messages across groups are dropped (both
  /// at send and at delivery time). Nodes absent from all groups are
  /// isolated from everyone.
  void Partition(const std::vector<std::vector<NodeId>>& groups);

  /// Removes any partition.
  void Heal();

  /// Blocks / unblocks a directed link independent of partitions.
  void BlockLink(NodeId from, NodeId to);
  void UnblockLink(NodeId from, NodeId to);

  /// Overrides the delay model. The function returns the delivery delay for
  /// an envelope, or a negative value to drop it. Pass nullptr to restore
  /// the default model. This hook is how adversarial schedulers (FLP-style)
  /// take control of message ordering.
  using DelayFn = std::function<Duration(const Envelope&)>;
  void SetDelayFn(DelayFn fn) {
    delay_fn_ = std::move(fn);
    fixed_delay_ = delay_fn_ ? -1 : FixedDelayFor(options_);
  }

  /// Observation hook invoked at every successful delivery, used to record
  /// message-flow traces for the paper's figures.
  using TraceFn = std::function<void(const Envelope&, Time deliver_time)>;
  /// Install before running: messages already in flight when the hook is
  /// set are reported with envelope id / send_time 0.
  void SetTraceFn(TraceFn fn) { trace_fn_ = std::move(fn); }

  /// Sender-side interposition hook, the substrate for reusable Byzantine
  /// behaviour (sim/byzantine.h): called once per outbound unicast target
  /// BEFORE the message enters the network. Return the original to pass it
  /// through, a substitute to equivocate/corrupt, or nullptr to withhold it
  /// (counted as one messages_dropped). Self-sends bypass the hook, and so
  /// do sends issued from inside the hook itself (so an interposer can
  /// inject extra traffic, e.g. replayed stale messages, without recursing).
  /// While a hook is installed, Multicast degrades to per-target unicasts so
  /// the hook can split the fan-out; the shared-payload fast path is
  /// untouched when no hook is set.
  using InterposeFn =
      std::function<MessagePtr(NodeId from, NodeId to, const MessagePtr&)>;
  void SetInterposeFn(InterposeFn fn) { interpose_fn_ = std::move(fn); }

  /// The attached ByzantineInterposer, if any (set by its Attach). Lets
  /// fault-schedule injection arm Byzantine windows without the checker
  /// and the interposer knowing about each other's construction order.
  void SetByzantineInterposer(ByzantineInterposer* b) { byz_interposer_ = b; }
  ByzantineInterposer* byzantine_interposer() const { return byz_interposer_; }

  /// Schedules a simulation-level (not process-owned) callback.
  void ScheduleAt(Time t, std::function<void()> fn);
  void ScheduleAfter(Duration d, std::function<void()> fn);

  /// Fluent construction of a fully-configured simulation: network shape,
  /// delay distribution, trace hooks, process topology (Setup), and
  /// scheduled fault hooks (At) in one expression:
  ///
  ///   auto sim = sim::Simulation::Builder(seed)
  ///                  .Delay(1 * kMillisecond, 5 * kMillisecond)
  ///                  .Setup([&](Simulation& s) { /* spawn processes */ })
  ///                  .At(200 * kMillisecond,
  ///                      [](Simulation& s) { s.Crash(0); })
  ///                  .Build();
  ///
  /// Build() applies everything in a fixed order — options, delay model,
  /// trace hook, Setup hooks (registration order), At hooks, Start() —
  /// so construction is as deterministic as the simulation itself.
  /// The Builder is the only way to construct a Simulation; the
  /// constructor is private.
  class Builder {
   public:
    explicit Builder(uint64_t seed) : seed_(seed) {}

    /// Uniform message delay in [min, max].
    Builder& Delay(Duration min, Duration max) {
      options_.min_delay = min;
      options_.max_delay = max;
      return *this;
    }

    /// Probability that the network drops any given message.
    Builder& DropRate(double rate) {
      options_.drop_rate = rate;
      return *this;
    }

    /// Finite per-sender egress bandwidth in bytes per millisecond
    /// (0 = infinite; see NetworkOptions::bytes_per_ms).
    Builder& Bandwidth(double bytes_per_ms) {
      options_.bytes_per_ms = bytes_per_ms;
      return *this;
    }

    /// Wholesale network options (overwrites Delay/DropRate).
    Builder& Network(const NetworkOptions& options) {
      options_ = options;
      return *this;
    }

    /// Adversarial delay model (see SetDelayFn).
    Builder& DelayModel(DelayFn fn) {
      delay_fn_ = std::move(fn);
      return *this;
    }

    /// Message-flow trace hook (see SetTraceFn).
    Builder& Trace(TraceFn fn) {
      trace_fn_ = std::move(fn);
      return *this;
    }

    /// Topology hook: spawns processes / wires groups. Hooks run against
    /// the freshly built simulation in registration order.
    Builder& Setup(std::function<void(Simulation&)> fn) {
      setup_.push_back(std::move(fn));
      return *this;
    }

    /// Fault hook: `fn` runs at virtual time `t` (crash, partition, delay
    /// spike, ...). Scheduled before Start, so t=0 hooks still precede
    /// the first delivery.
    Builder& At(Time t, std::function<void(Simulation&)> fn) {
      at_.emplace_back(t, std::move(fn));
      return *this;
    }

    /// Whether Build() calls Start() (default true). Disable when the
    /// caller wants to spawn more processes before the clock moves.
    Builder& AutoStart(bool start) {
      auto_start_ = start;
      return *this;
    }

    std::unique_ptr<Simulation> Build() {
      // make_unique can't reach the private constructor; Builder can.
      auto sim = std::unique_ptr<Simulation>(new Simulation(seed_, options_));
      if (delay_fn_) sim->SetDelayFn(delay_fn_);
      if (trace_fn_) sim->SetTraceFn(trace_fn_);
      for (auto& fn : setup_) fn(*sim);
      for (auto& [t, fn] : at_) {
        Simulation* raw = sim.get();
        sim->ScheduleAt(t, [raw, fn = std::move(fn)] { fn(*raw); });
      }
      if (auto_start_) sim->Start();
      return sim;
    }

   private:
    uint64_t seed_;
    NetworkOptions options_;
    DelayFn delay_fn_;
    TraceFn trace_fn_;
    std::vector<std::function<void(Simulation&)>> setup_;
    std::vector<std::pair<Time, std::function<void(Simulation&)>>> at_;
    bool auto_start_ = true;
  };

  /// Internal: used by Process::Send.
  void SendMessage(NodeId from, NodeId to, MessagePtr msg);

  /// Internal: used by Process::Multicast. Interns the type and sizes the
  /// payload once, then fans out one event per admitted target sharing a
  /// single payload slot.
  void MulticastMessage(NodeId from, const std::vector<NodeId>& targets,
                        const MessagePtr& msg);

  /// Internal: used by Process::SetTimer / CancelTimer.
  uint64_t SetProcessTimer(NodeId owner, Duration delay,
                           std::function<void()> fn);
  void CancelProcessTimer(uint64_t timer_id);

 private:
  /// Creates a simulation whose entire behaviour is a function of `seed`.
  /// Private: all construction goes through Simulation::Builder, which
  /// also covers delay models, trace hooks, topology setup, and scheduled
  /// faults.
  explicit Simulation(uint64_t seed, NetworkOptions options = NetworkOptions());

  static constexpr uint32_t kNilIndex = 0xFFFFFFFFu;

  enum class EventKind : uint8_t { kMessage, kTimer, kCallback };

  /// One pending event, as a tagged variant living in a slab slot. Message
  /// deliveries reference a shared MessagePayload; timers and callbacks point
  /// into the callback slab. Keeping the closure out of line keeps the slot
  /// a single cache line, and slots are recycled through the slab free
  /// list, so the steady state allocates nothing per event.
  struct EventSlot {
    NodeId from = kInvalidNode;      ///< Message sender.
    NodeId to = kInvalidNode;        ///< Message destination / timer owner.
    uint32_t payload = kNilIndex;    ///< Multicast payload slot for
                                     ///< messages, callback slot for timers
                                     ///< and callbacks; kNil for unicast.
    uint32_t next = kNilIndex;       ///< FIFO chain within a time bucket.
    uint32_t trace = kNilIndex;      ///< TraceInfo slot; messages only, and
                                     ///< only while a trace hook is set.
    EventKind kind = EventKind::kCallback;
    bool cancelled = false;          ///< Timers only; set by CancelTimer.
    uint64_t epoch = 0;              ///< Destination/owner epoch at schedule.
    MessagePtr msg;                  ///< Unicast payload (payload == kNil).
    uint64_t pad_ = 0;               ///< Rounds the slab entry (slot + its
                                     ///< generation bookkeeping) to exactly
                                     ///< one 64-byte cache line.
  };

  /// Envelope metadata a delivery only needs when a trace hook is watching:
  /// kept out of EventSlot so the common case stays one cache line per slot.
  struct TraceInfo {
    uint64_t envelope_id = 0;
    Time send_time = 0;
  };

  /// A message payload shared by every delivery event of one Send/Multicast:
  /// the fan-out copies the shared_ptr once, not once per target.
  struct MessagePayload {
    MessagePtr msg;
    uint32_t refs = 0;
  };

  /// FIFO bucket of events scheduled for the same timestamp. The queue is a
  /// min-heap over *buckets* (ordered by time, then creation order), so a
  /// burst of same-time events — a multicast fan-out, a synchronous round —
  /// costs one heap operation total instead of one per event.
  struct TimeBucket {
    Time time = 0;
    uint32_t head = kNilIndex;
    uint32_t tail = kNilIndex;
    uint64_t seq = 0;  ///< Creation order; ties broken FIFO by this.
  };
  struct BucketRef {
    Time time;
    uint64_t seq;
    uint32_t bucket;
  };
  struct BucketAfter {
    bool operator()(const BucketRef& a, const BucketRef& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  /// Direct-mapped cache of recently-used (time -> live bucket) entries so
  /// clustered schedules append in O(1) without touching the heap. An entry
  /// always points at the *newest* bucket for its time, which preserves
  /// global FIFO order among same-time events.
  static constexpr size_t kTimeCacheSize = 64;
  static constexpr Time kNoCachedTime = INT64_MIN;
  struct TimeCacheEntry {
    Time time = kNoCachedTime;
    uint32_t bucket = 0;
  };
  static size_t TimeCacheIndex(Time t) {
    return static_cast<size_t>(
        (static_cast<uint64_t>(t) * 0x9E3779B97F4A7C15ull) >> 58);
  }

  void Register(std::unique_ptr<Process> p);
  bool LinkAllowed(NodeId from, NodeId to) const;
  double BandwidthFor(NodeId from, NodeId to) const;
  Duration SerializationDelay(NodeId from, NodeId to, int bytes);
  Duration DefaultDelay(NodeId from, NodeId to);
  Duration DelayFor(NodeId from, NodeId to, const MessagePtr& msg,
                    uint64_t envelope_id);
  void CountSentBatch(TypeId type, int bytes, uint64_t n);
  uint32_t AllocateTrace(uint64_t envelope_id);
  void QueueMessageEvent(NodeId from, NodeId to, uint32_t payload,
                         uint64_t envelope_id, Duration delay);
  void ScheduleSlot(Time t, uint32_t index);
  void ReleasePayload(uint32_t payload);
  void Dispatch(uint32_t index);

  Rng rng_;
  NetworkOptions options_;
  /// min_delay when every send's delay is that constant (no delay hook, no
  /// loss, min == max) so the hot path skips the per-send delay logic;
  /// -1 when delays must be computed per send.
  Duration fixed_delay_ = -1;

  static Duration FixedDelayFor(const NetworkOptions& o) {
    // A finite-bandwidth network's delay depends on payload size and the
    // sender's egress backlog, so the constant-delay fast path must stay off.
    if (o.HasBandwidth()) return -1;
    return (o.drop_rate <= 0 && o.max_delay <= o.min_delay) ? o.min_delay : -1;
  }
  Time now_ = 0;
  uint64_t next_envelope_id_ = 0;
  uint64_t next_bucket_seq_ = 0;

  Slab<EventSlot> events_;
  Slab<TraceInfo> traces_;
  Slab<MessagePayload> payloads_;
  Slab<std::function<void()>> callbacks_;  ///< Timer / callback bodies.
  Slab<TimeBucket> buckets_;
  std::priority_queue<BucketRef, std::vector<BucketRef>, BucketAfter>
      bucket_heap_;
  std::array<TimeCacheEntry, kTimeCacheSize> time_cache_;

  StringInterner type_names_;
  std::vector<uint64_t*> type_counters_;  ///< TypeId -> &sent_by_type[name].
  uint64_t counters_reset_count_ = 0;

  /// Direct-mapped cache in front of the interner: TypeName() returns the
  /// same literal pointer on every call, so a send usually resolves its
  /// TypeId with one pointer compare instead of a hash lookup.
  struct TypeCacheEntry {
    const void* ptr = nullptr;
    TypeId id = 0;
  };
  std::array<TypeCacheEntry, 8> type_cache_;
  TypeId InternType(const char* name) {
    TypeCacheEntry& e =
        type_cache_[(reinterpret_cast<uintptr_t>(name) >> 4) & 7];
    if (e.ptr == name) return e.id;
    const TypeId id = type_names_.Intern(name);
    e = TypeCacheEntry{name, id};
    return id;
  }

  std::vector<std::unique_ptr<Process>> processes_;
  std::vector<uint64_t> epochs_;  ///< Flat mirror of Process::epoch_, so the
                                  ///< send path avoids a pointer chase.
  std::vector<Time> egress_free_;  ///< Per-sender: when its egress port next
                                   ///< idles. Only consulted under finite
                                   ///< bandwidth; stays all-zero otherwise.
  size_t started_ = 0;
  std::set<NodeId> byzantine_;
  std::vector<int> partition_group_;  ///< -1 = isolated; empty = no partition.
  std::vector<std::pair<NodeId, NodeId>> blocked_links_;  ///< Sorted, unique.
  bool topology_restricted_ = false;  ///< Any partition or blocked link live.
  NetStats stats_;
  DelayFn delay_fn_;
  TraceFn trace_fn_;
  InterposeFn interpose_fn_;
  bool in_interpose_ = false;  ///< Reentrancy guard: hook-injected sends
                               ///< are not themselves interposed.
  ByzantineInterposer* byz_interposer_ = nullptr;
};

}  // namespace consensus40::sim

#endif  // CONSENSUS40_SIM_SIMULATION_H_
