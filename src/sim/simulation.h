#ifndef CONSENSUS40_SIM_SIMULATION_H_
#define CONSENSUS40_SIM_SIMULATION_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <queue>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"

namespace consensus40::sim {

/// Identifier of a simulated process. Ids are dense, assigned in spawn order.
using NodeId = int;
constexpr NodeId kInvalidNode = -1;

/// Virtual time in microseconds since simulation start.
using Time = int64_t;
using Duration = int64_t;

constexpr Duration kMicrosecond = 1;
constexpr Duration kMillisecond = 1000;
constexpr Duration kSecond = 1000 * 1000;

/// Base class of every message exchanged between simulated processes.
/// Protocols define subclasses carrying their payloads; the simulator only
/// needs a type name (for per-type statistics and flow traces) and a size
/// estimate (for byte accounting).
struct Message {
  virtual ~Message() = default;

  /// Stable name used in statistics and message-flow traces, e.g. "prepare".
  virtual const char* TypeName() const = 0;

  /// Approximate wire size in bytes, used only for accounting.
  virtual int ByteSize() const { return 64; }
};

using MessagePtr = std::shared_ptr<const Message>;

/// A message in flight: sender, receiver, payload, and send timestamp.
struct Envelope {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  MessagePtr msg;
  Time send_time = 0;
  uint64_t id = 0;  ///< Unique per simulation, in send order.
};

/// Aggregate network statistics, maintained by the simulation.
struct NetStats {
  uint64_t messages_sent = 0;
  uint64_t messages_delivered = 0;
  uint64_t messages_dropped = 0;
  uint64_t bytes_sent = 0;
  std::map<std::string, uint64_t> sent_by_type;

  void Reset() { *this = NetStats(); }
};

/// Message-delay model. The default is a partially-synchronous network:
/// uniform random delay in [min_delay, max_delay] plus an optional drop rate.
struct NetworkOptions {
  Duration min_delay = 1 * kMillisecond;
  Duration max_delay = 5 * kMillisecond;
  double drop_rate = 0.0;
};

class Simulation;

/// A simulated process (replica, client, miner, ...). Protocol code derives
/// from Process and reacts to OnStart / OnMessage / timers. All interaction
/// with the outside world goes through the protected helpers, which keeps
/// every protocol implementation deterministic and wall-clock-free.
class Process {
 public:
  virtual ~Process() = default;

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  /// This process's id within its simulation.
  NodeId id() const { return id_; }

  /// True while the process is crashed (between Crash() and Restart()).
  bool crashed() const { return crashed_; }

  /// Called once when the simulation starts (or when the process is spawned
  /// into an already-running simulation).
  virtual void OnStart() {}

  /// Called for every delivered message.
  virtual void OnMessage(NodeId from, const Message& msg) = 0;

  /// Called when the process restarts after a crash. Volatile state should
  /// be reset here; state the protocol persists to "stable storage" may be
  /// kept (each protocol documents what it persists).
  virtual void OnRestart() {}

 protected:
  Process() = default;

  /// The owning simulation. Only valid after the process has been spawned.
  Simulation& sim() const { return *sim_; }

  /// Current virtual time.
  Time Now() const;

  /// Per-process deterministic random stream.
  Rng& rng() { return *rng_; }

  /// Sends a message to another process (or to self) through the simulated
  /// network.
  void Send(NodeId to, MessagePtr msg);

  /// Sends a copy of the message to every process in `targets`.
  void Multicast(const std::vector<NodeId>& targets, const MessagePtr& msg);

  /// Schedules `fn` to run on this process after `delay`. The timer is
  /// silently discarded if the process crashes before it fires or if it is
  /// cancelled. Returns a cancellation handle.
  uint64_t SetTimer(Duration delay, std::function<void()> fn);

  /// Cancels a pending timer. Cancelling an already-fired timer is a no-op.
  void CancelTimer(uint64_t timer_id);

 private:
  friend class Simulation;

  Simulation* sim_ = nullptr;
  NodeId id_ = kInvalidNode;
  bool crashed_ = false;
  uint64_t epoch_ = 0;  ///< Bumped on crash; stale timers check it.
  std::unique_ptr<Rng> rng_;
};

/// Deterministic discrete-event simulator: a virtual clock, an event queue,
/// a set of processes, and a configurable lossy network between them.
/// All protocol executions, fault injections, and benchmarks in this
/// repository run inside a Simulation.
class Simulation {
 public:
  /// Creates a simulation whose entire behaviour is a function of `seed`.
  explicit Simulation(uint64_t seed, NetworkOptions options = NetworkOptions());
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Constructs a process of type T in place and registers it. Returns a
  /// non-owning pointer valid for the lifetime of the simulation.
  template <typename T, typename... Args>
  T* Spawn(Args&&... args) {
    auto owned = std::make_unique<T>(std::forward<Args>(args)...);
    T* raw = owned.get();
    Register(std::move(owned));
    return raw;
  }

  /// Process lookup; id must be valid.
  Process* process(NodeId id) const { return processes_[id].get(); }
  int num_processes() const { return static_cast<int>(processes_.size()); }

  Time now() const { return now_; }
  Rng& rng() { return rng_; }
  NetStats& stats() { return stats_; }
  const NetworkOptions& options() const { return options_; }
  NetworkOptions& mutable_options() { return options_; }

  /// Calls OnStart on every process that has not been started yet. Safe to
  /// call repeatedly (e.g. after spawning more processes).
  void Start();

  /// Executes the next pending event. Returns false if the queue is empty.
  bool Step();

  /// Runs until the virtual clock reaches now()+d (events at the boundary
  /// included).
  void RunFor(Duration d);

  /// Runs until the predicate holds (checked after every event) or the
  /// virtual clock passes `deadline`. Returns true if the predicate held.
  bool RunUntil(const std::function<bool()>& pred, Time deadline);

  /// Crashes a process: pending and future deliveries and timers for it are
  /// dropped until Restart.
  void Crash(NodeId id);

  /// Restarts a crashed process (calls OnRestart).
  void Restart(NodeId id);

  bool IsCrashed(NodeId id) const { return processes_[id]->crashed_; }

  /// Marks a process as Byzantine for bookkeeping/assertion purposes. The
  /// malicious behaviour itself lives in protocol-specific adversary
  /// subclasses of Process.
  void MarkByzantine(NodeId id) { byzantine_.insert(id); }
  bool IsByzantine(NodeId id) const { return byzantine_.count(id) > 0; }

  /// Cuts the network into groups; messages across groups are dropped (both
  /// at send and at delivery time). Nodes absent from all groups are
  /// isolated from everyone.
  void Partition(const std::vector<std::vector<NodeId>>& groups);

  /// Removes any partition.
  void Heal();

  /// Blocks / unblocks a directed link independent of partitions.
  void BlockLink(NodeId from, NodeId to);
  void UnblockLink(NodeId from, NodeId to);

  /// Overrides the delay model. The function returns the delivery delay for
  /// an envelope, or a negative value to drop it. Pass nullptr to restore
  /// the default model. This hook is how adversarial schedulers (FLP-style)
  /// take control of message ordering.
  using DelayFn = std::function<Duration(const Envelope&)>;
  void SetDelayFn(DelayFn fn) { delay_fn_ = std::move(fn); }

  /// Observation hook invoked at every successful delivery, used to record
  /// message-flow traces for the paper's figures.
  using TraceFn = std::function<void(const Envelope&, Time deliver_time)>;
  void SetTraceFn(TraceFn fn) { trace_fn_ = std::move(fn); }

  /// Schedules a simulation-level (not process-owned) callback.
  void ScheduleAt(Time t, std::function<void()> fn);
  void ScheduleAfter(Duration d, std::function<void()> fn);

  /// Internal: used by Process::Send.
  void SendMessage(NodeId from, NodeId to, MessagePtr msg);

  /// Internal: used by Process::SetTimer / CancelTimer.
  uint64_t SetProcessTimer(NodeId owner, Duration delay,
                           std::function<void()> fn);
  void CancelProcessTimer(uint64_t timer_id);

 private:
  struct Event {
    Time time;
    uint64_t seq;  ///< Tie-breaker: FIFO among same-time events.
    std::function<void()> fn;
  };
  struct EventCmp {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void Register(std::unique_ptr<Process> p);
  bool LinkAllowed(NodeId from, NodeId to) const;
  Duration DefaultDelay(const Envelope& e);

  Rng rng_;
  NetworkOptions options_;
  Time now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t next_envelope_id_ = 0;
  uint64_t next_timer_id_ = 1;
  std::priority_queue<Event, std::vector<Event>, EventCmp> queue_;
  std::vector<std::unique_ptr<Process>> processes_;
  size_t started_ = 0;
  std::set<NodeId> byzantine_;
  std::set<uint64_t> cancelled_timers_;
  std::vector<int> partition_group_;  ///< -1 = isolated; empty = no partition.
  std::set<std::pair<NodeId, NodeId>> blocked_links_;
  NetStats stats_;
  DelayFn delay_fn_;
  TraceFn trace_fn_;
};

}  // namespace consensus40::sim

#endif  // CONSENSUS40_SIM_SIMULATION_H_
