#include "sim/simulation.h"

#include <cassert>

namespace consensus40::sim {

Time Process::Now() const { return sim_->now(); }

void Process::Send(NodeId to, MessagePtr msg) {
  sim_->SendMessage(id_, to, std::move(msg));
}

void Process::Multicast(const std::vector<NodeId>& targets,
                        const MessagePtr& msg) {
  for (NodeId t : targets) sim_->SendMessage(id_, t, msg);
}

uint64_t Process::SetTimer(Duration delay, std::function<void()> fn) {
  return sim_->SetProcessTimer(id_, delay, std::move(fn));
}

void Process::CancelTimer(uint64_t timer_id) {
  sim_->CancelProcessTimer(timer_id);
}

Simulation::Simulation(uint64_t seed, NetworkOptions options)
    : rng_(seed), options_(options) {}

Simulation::~Simulation() = default;

void Simulation::Register(std::unique_ptr<Process> p) {
  p->sim_ = this;
  p->id_ = static_cast<NodeId>(processes_.size());
  p->rng_ = std::make_unique<Rng>(rng_.Fork());
  processes_.push_back(std::move(p));
}

void Simulation::Start() {
  // OnStart may spawn further processes; iterate by index.
  for (; started_ < processes_.size(); ++started_) {
    if (!processes_[started_]->crashed_) processes_[started_]->OnStart();
  }
}

bool Simulation::Step() {
  if (queue_.empty()) return false;
  Event ev = queue_.top();
  queue_.pop();
  assert(ev.time >= now_);
  now_ = ev.time;
  ev.fn();
  return true;
}

void Simulation::RunFor(Duration d) {
  Time end = now_ + d;
  while (!queue_.empty() && queue_.top().time <= end) Step();
  now_ = end;
}

bool Simulation::RunUntil(const std::function<bool()>& pred, Time deadline) {
  if (pred()) return true;
  while (!queue_.empty() && queue_.top().time <= deadline) {
    Step();
    if (pred()) return true;
  }
  return false;
}

void Simulation::Crash(NodeId id) {
  Process* p = processes_[id].get();
  if (p->crashed_) return;
  p->crashed_ = true;
  p->epoch_++;
}

void Simulation::Restart(NodeId id) {
  Process* p = processes_[id].get();
  if (!p->crashed_) return;
  p->crashed_ = false;
  p->epoch_++;
  p->OnRestart();
}

void Simulation::Partition(const std::vector<std::vector<NodeId>>& groups) {
  partition_group_.assign(processes_.size(), -1);
  for (size_t g = 0; g < groups.size(); ++g) {
    for (NodeId id : groups[g]) partition_group_[id] = static_cast<int>(g);
  }
}

void Simulation::Heal() { partition_group_.clear(); }

void Simulation::BlockLink(NodeId from, NodeId to) {
  blocked_links_.insert({from, to});
}

void Simulation::UnblockLink(NodeId from, NodeId to) {
  blocked_links_.erase({from, to});
}

bool Simulation::LinkAllowed(NodeId from, NodeId to) const {
  if (blocked_links_.count({from, to}) > 0) return false;
  if (!partition_group_.empty()) {
    int gf = partition_group_[from];
    int gt = partition_group_[to];
    if (gf < 0 || gt < 0 || gf != gt) return from == to;
  }
  return true;
}

Duration Simulation::DefaultDelay(const Envelope& e) {
  if (e.from == e.to) return 0;  // Self-messages are immediate.
  if (options_.drop_rate > 0 && rng_.Bernoulli(options_.drop_rate)) return -1;
  if (options_.max_delay <= options_.min_delay) return options_.min_delay;
  return options_.min_delay +
         static_cast<Duration>(
             rng_.NextBounded(options_.max_delay - options_.min_delay + 1));
}

void Simulation::ScheduleAt(Time t, std::function<void()> fn) {
  assert(t >= now_);
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

void Simulation::ScheduleAfter(Duration d, std::function<void()> fn) {
  ScheduleAt(now_ + d, std::move(fn));
}

void Simulation::SendMessage(NodeId from, NodeId to, MessagePtr msg) {
  assert(to >= 0 && to < num_processes());
  Envelope env{from, to, std::move(msg), now_, next_envelope_id_++};
  stats_.messages_sent++;
  stats_.bytes_sent += env.msg->ByteSize();
  stats_.sent_by_type[env.msg->TypeName()]++;

  if (!LinkAllowed(from, to)) {
    stats_.messages_dropped++;
    return;
  }
  Duration delay = delay_fn_ ? delay_fn_(env) : DefaultDelay(env);
  if (delay < 0) {
    stats_.messages_dropped++;
    return;
  }
  ScheduleAt(now_ + delay, [this, env = std::move(env)]() {
    Process* dst = processes_[env.to].get();
    if (dst->crashed_ || !LinkAllowed(env.from, env.to)) {
      stats_.messages_dropped++;
      return;
    }
    stats_.messages_delivered++;
    if (trace_fn_) trace_fn_(env, now_);
    dst->OnMessage(env.from, *env.msg);
  });
}

uint64_t Simulation::SetProcessTimer(NodeId owner, Duration delay,
                                     std::function<void()> fn) {
  uint64_t timer_id = next_timer_id_++;
  Process* p = processes_[owner].get();
  uint64_t epoch = p->epoch_;
  ScheduleAt(now_ + delay, [this, owner, epoch, timer_id, fn = std::move(fn)]() {
    if (cancelled_timers_.erase(timer_id) > 0) return;
    Process* p = processes_[owner].get();
    if (p->crashed_ || p->epoch_ != epoch) return;
    fn();
  });
  return timer_id;
}

void Simulation::CancelProcessTimer(uint64_t timer_id) {
  cancelled_timers_.insert(timer_id);
}

}  // namespace consensus40::sim
