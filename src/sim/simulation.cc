#include "sim/simulation.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace consensus40::sim {

Time Process::Now() const { return sim_->now(); }

void Process::Send(NodeId to, MessagePtr msg) {
  sim_->SendMessage(id_, to, std::move(msg));
}

void Process::Multicast(const std::vector<NodeId>& targets,
                        const MessagePtr& msg) {
  sim_->MulticastMessage(id_, targets, msg);
}

uint64_t Process::SetTimer(Duration delay, std::function<void()> fn) {
  return sim_->SetProcessTimer(id_, delay, std::move(fn));
}

void Process::CancelTimer(uint64_t timer_id) {
  sim_->CancelProcessTimer(timer_id);
}

Simulation::Simulation(uint64_t seed, NetworkOptions options)
    : rng_(seed), options_(options), fixed_delay_(FixedDelayFor(options)) {}

Simulation::~Simulation() = default;

void Simulation::Register(std::unique_ptr<Process> p) {
  p->sim_ = this;
  p->id_ = static_cast<NodeId>(processes_.size());
  p->rng_ = std::make_unique<Rng>(rng_.Fork());
  processes_.push_back(std::move(p));
  epochs_.push_back(0);
  egress_free_.push_back(0);
  // Keep the partition map covering every process: a node spawned while a
  // partition is in effect starts isolated rather than reading past the end.
  if (!partition_group_.empty()) partition_group_.push_back(-1);
}

void Simulation::Start() {
  // OnStart may spawn further processes; iterate by index.
  for (; started_ < processes_.size(); ++started_) {
    if (!processes_[started_]->crashed_) processes_[started_]->OnStart();
  }
}

bool Simulation::Step() {
  if (bucket_heap_.empty()) return false;
  const BucketRef top = bucket_heap_.top();
  TimeBucket& bucket = buckets_[top.bucket];
  const uint32_t index = bucket.head;
  bucket.head = events_[index].next;
  assert(top.time >= now_);
  now_ = top.time;
  if (bucket.head == kNilIndex) {
    bucket_heap_.pop();
    TimeCacheEntry& cached = time_cache_[TimeCacheIndex(top.time)];
    if (cached.time == top.time && cached.bucket == top.bucket) {
      cached.time = kNoCachedTime;
    }
    buckets_.Free(top.bucket);
  }
  Dispatch(index);
  return true;
}

void Simulation::Dispatch(uint32_t index) {
  // Copy everything out of the slot and free it before running any handler:
  // handlers re-enter the scheduler and may reuse (or grow) the slab.
  EventSlot& slot = events_[index];
  const EventKind kind = slot.kind;

  if (kind == EventKind::kMessage) {
    const NodeId from = slot.from;
    const NodeId to = slot.to;
    const uint32_t payload = slot.payload;
    const uint32_t trace = slot.trace;
    const uint64_t epoch = slot.epoch;
    TraceInfo trace_info;
    if (trace != kNilIndex) {
      trace_info = traces_[trace];
      traces_.Free(trace);
    }
    // Unicast carries its payload inline (moved out here, so Free leaves no
    // owning fields behind); multicast deliveries share a payload slot and
    // the inline field stays empty.
    MessagePtr unicast_msg;
    if (payload == kNilIndex) unicast_msg = std::move(slot.msg);
    events_.Free(index);

    Process* dst = processes_[to].get();
    if (dst->crashed_ || dst->epoch_ != epoch || !LinkAllowed(from, to)) {
      stats_.messages_dropped++;
      if (payload != kNilIndex) ReleasePayload(payload);
      return;
    }
    stats_.messages_delivered++;
    const Message* msg = payload == kNilIndex ? unicast_msg.get()
                                              : payloads_[payload].msg.get();
    if (trace_fn_) {
      Envelope env{from, to,
                   payload == kNilIndex ? unicast_msg : payloads_[payload].msg,
                   trace_info.send_time, trace_info.envelope_id};
      trace_fn_(env, now_);
    }
    dst->OnMessage(from, *msg);
    if (payload != kNilIndex) ReleasePayload(payload);
    return;
  }

  const bool cancelled = slot.cancelled;
  const NodeId owner = slot.to;
  const uint64_t epoch = slot.epoch;
  const uint32_t cb = slot.payload;
  events_.Free(index);
  std::function<void()> fn = std::move(callbacks_[cb]);
  callbacks_[cb] = nullptr;
  callbacks_.Free(cb);

  if (kind == EventKind::kTimer) {
    if (cancelled) return;
    Process* p = processes_[owner].get();
    if (p->crashed_ || p->epoch_ != epoch) return;
  }
  fn();
}

void Simulation::ReleasePayload(uint32_t payload) {
  MessagePayload& entry = payloads_[payload];
  if (--entry.refs == 0) {
    entry.msg.reset();
    payloads_.Free(payload);
  }
}

void Simulation::ScheduleSlot(Time t, uint32_t index) {
  assert(t >= now_);
  events_[index].next = kNilIndex;
  TimeCacheEntry& cached = time_cache_[TimeCacheIndex(t)];
  if (cached.time == t) {
    TimeBucket& bucket = buckets_[cached.bucket];
    events_[bucket.tail].next = index;
    bucket.tail = index;
    return;
  }
  const uint32_t b = buckets_.Allocate();
  TimeBucket& bucket = buckets_[b];
  bucket.time = t;
  bucket.head = bucket.tail = index;
  bucket.seq = next_bucket_seq_++;
  bucket_heap_.push(BucketRef{t, bucket.seq, b});
  cached.time = t;
  cached.bucket = b;
}

void Simulation::RunFor(Duration d) {
  const Time end = now_ + d;
  // Same semantics as repeated Step(), but the inner loop drains a whole
  // bucket without re-consulting the heap: one top()/pop() per *timestamp*
  // rather than per event.
  while (!bucket_heap_.empty()) {
    const BucketRef top = bucket_heap_.top();
    if (top.time > end) break;
    now_ = top.time;
    for (;;) {
      // Re-index the bucket each iteration: handlers may append to its tail
      // and may grow the slab under us.
      TimeBucket& bucket = buckets_[top.bucket];
      const uint32_t index = bucket.head;
      bucket.head = events_[index].next;
      if (bucket.head == kNilIndex) {
        bucket_heap_.pop();
        TimeCacheEntry& cached = time_cache_[TimeCacheIndex(top.time)];
        if (cached.time == top.time && cached.bucket == top.bucket) {
          cached.time = kNoCachedTime;
        }
        buckets_.Free(top.bucket);
        Dispatch(index);
        break;
      }
      Dispatch(index);
    }
  }
  now_ = end;
}

bool Simulation::RunUntil(const std::function<bool()>& pred, Time deadline) {
  if (pred()) return true;
  while (!bucket_heap_.empty() && bucket_heap_.top().time <= deadline) {
    Step();
    if (pred()) return true;
  }
  // Mirror RunFor: a timed-out wait still consumes the waited-for interval.
  if (now_ < deadline) now_ = deadline;
  return false;
}

void Simulation::Crash(NodeId id) {
  Process* p = processes_[id].get();
  if (p->crashed_) return;
  p->crashed_ = true;
  p->epoch_ = ++epochs_[id];
}

void Simulation::Restart(NodeId id) {
  Process* p = processes_[id].get();
  if (!p->crashed_) return;
  p->crashed_ = false;
  p->epoch_ = ++epochs_[id];
  p->OnRestart();
}

void Simulation::Partition(const std::vector<std::vector<NodeId>>& groups) {
  topology_restricted_ = true;
  partition_group_.assign(processes_.size(), -1);
  for (size_t g = 0; g < groups.size(); ++g) {
    for (NodeId id : groups[g]) partition_group_[id] = static_cast<int>(g);
  }
}

void Simulation::Heal() {
  partition_group_.clear();
  topology_restricted_ = !blocked_links_.empty();
}

void Simulation::BlockLink(NodeId from, NodeId to) {
  const auto link = std::make_pair(from, to);
  auto it = std::lower_bound(blocked_links_.begin(), blocked_links_.end(), link);
  if (it == blocked_links_.end() || *it != link) blocked_links_.insert(it, link);
  topology_restricted_ = true;
}

void Simulation::UnblockLink(NodeId from, NodeId to) {
  const auto link = std::make_pair(from, to);
  auto it = std::lower_bound(blocked_links_.begin(), blocked_links_.end(), link);
  if (it != blocked_links_.end() && *it == link) blocked_links_.erase(it);
  topology_restricted_ = !blocked_links_.empty() || !partition_group_.empty();
}

bool Simulation::LinkAllowed(NodeId from, NodeId to) const {
  if (!topology_restricted_) return true;
  if (!blocked_links_.empty() &&
      std::binary_search(blocked_links_.begin(), blocked_links_.end(),
                         std::make_pair(from, to))) {
    return false;
  }
  if (!partition_group_.empty()) {
    const int gf = partition_group_[from];
    const int gt = partition_group_[to];
    if (gf < 0 || gt < 0 || gf != gt) return from == to;
  }
  return true;
}

double Simulation::BandwidthFor(NodeId from, NodeId to) const {
  if (!options_.link_bytes_per_ms.empty()) {
    auto it = options_.link_bytes_per_ms.find({from, to});
    if (it != options_.link_bytes_per_ms.end()) return it->second;
  }
  return options_.bytes_per_ms;
}

Duration Simulation::SerializationDelay(NodeId from, NodeId to, int bytes) {
  const double bw = BandwidthFor(from, to);
  if (bw <= 0) return 0;  // This link is infinite-bandwidth.
  // The sender's egress port serializes one message at a time: this send
  // starts when the port next idles and holds it for bytes/bw. The charge
  // sticks even if the network then loses the message — the wire time was
  // spent either way.
  const Time start = egress_free_[from] > now_ ? egress_free_[from] : now_;
  const auto ser = static_cast<Duration>(
      std::ceil(static_cast<double>(bytes) * kMillisecond / bw));
  egress_free_[from] = start + ser;
  return egress_free_[from] - now_;
}

Duration Simulation::DefaultDelay(NodeId from, NodeId to) {
  if (from == to) return 0;  // Self-messages are immediate.
  if (options_.drop_rate > 0 && rng_.Bernoulli(options_.drop_rate)) return -1;
  if (options_.max_delay <= options_.min_delay) return options_.min_delay;
  return options_.min_delay +
         static_cast<Duration>(
             rng_.NextBounded(options_.max_delay - options_.min_delay + 1));
}

Duration Simulation::DelayFor(NodeId from, NodeId to, const MessagePtr& msg,
                              uint64_t envelope_id) {
  if (delay_fn_) {
    const Envelope env{from, to, msg, now_, envelope_id};
    return delay_fn_(env);
  }
  return DefaultDelay(from, to);
}

void Simulation::CountSentBatch(TypeId type, int bytes, uint64_t n) {
  stats_.messages_sent += n;
  stats_.bytes_sent += n * static_cast<uint64_t>(bytes);
  if (counters_reset_count_ != stats_.reset_count()) {
    type_counters_.assign(type_counters_.size(), nullptr);
    counters_reset_count_ = stats_.reset_count();
  }
  if (static_cast<size_t>(type) >= type_counters_.size()) {
    type_counters_.resize(type_names_.size(), nullptr);
  }
  uint64_t*& counter = type_counters_[type];
  // Map nodes are reference-stable, so resolving the per-type cursor once
  // per type (per Reset generation) is safe.
  if (counter == nullptr) {
    counter = &stats_.sent_by_type[type_names_.NameOf(type)];
  }
  *counter += n;
}

uint32_t Simulation::AllocateTrace(uint64_t envelope_id) {
  if (!trace_fn_) return kNilIndex;
  const uint32_t t = traces_.Allocate();
  traces_[t] = TraceInfo{envelope_id, now_};
  return t;
}

void Simulation::QueueMessageEvent(NodeId from, NodeId to, uint32_t payload,
                                   uint64_t envelope_id, Duration delay) {
  const uint32_t index = events_.Allocate();
  EventSlot& slot = events_[index];
  slot.kind = EventKind::kMessage;
  slot.from = from;
  slot.to = to;
  slot.payload = payload;
  slot.trace = AllocateTrace(envelope_id);
  slot.epoch = epochs_[to];  // Drop on crash/restart in flight.
  ScheduleSlot(now_ + delay, index);
}

void Simulation::SendMessage(NodeId from, NodeId to, MessagePtr msg) {
  assert(to >= 0 && to < num_processes());
  if (interpose_fn_ && !in_interpose_ && from != to) {
    in_interpose_ = true;
    MessagePtr out = interpose_fn_(from, to, msg);
    in_interpose_ = false;
    if (out == nullptr) {
      stats_.messages_dropped++;  // Withheld at the (Byzantine) sender.
      return;
    }
    msg = std::move(out);
  }
  const uint64_t envelope_id = next_envelope_id_++;
  if (!LinkAllowed(from, to)) {
    stats_.messages_dropped++;  // Rejected by the topology: never sent.
    return;
  }
  const TypeId type = InternType(msg->TypeName());
  const int bytes = msg->ByteSize();
  // Serialization is charged before the propagation draw so the egress
  // queue advances even for messages the network then loses.
  const Duration ser = options_.HasBandwidth() && to != from
                           ? SerializationDelay(from, to, bytes)
                           : 0;
  const Duration fd = fixed_delay_;
  const Duration delay =
      fd >= 0 ? (to == from ? 0 : fd) : DelayFor(from, to, msg, envelope_id);
  if (delay < 0) {
    CountSentBatch(type, bytes, 1);
    stats_.messages_dropped++;  // Admitted, then lost in the network.
    return;
  }
  CountSentBatch(type, bytes, 1);
  const uint32_t index = events_.Allocate();
  EventSlot& slot = events_[index];
  slot.kind = EventKind::kMessage;
  slot.from = from;
  slot.to = to;
  slot.payload = kNilIndex;  // Unicast: payload travels inline in the slot.
  slot.trace = AllocateTrace(envelope_id);
  slot.epoch = epochs_[to];
  slot.msg = std::move(msg);
  ScheduleSlot(now_ + ser + delay, index);
}

void Simulation::MulticastMessage(NodeId from,
                                  const std::vector<NodeId>& targets,
                                  const MessagePtr& msg) {
  if (targets.empty()) return;
  if (interpose_fn_ && !in_interpose_) {
    // The hook may substitute per target, so the fan-out cannot share a
    // payload: degrade to unicasts (each of which runs the hook itself).
    for (NodeId to : targets) SendMessage(from, to, msg);
    return;
  }
  const TypeId type = InternType(msg->TypeName());
  const int bytes = msg->ByteSize();
  // With no delay hook, no loss, and a fixed delay, the per-target delay is
  // a constant and the rng is never consulted; fixed_delay_ caches that.
  const Duration fd = fixed_delay_;
  const bool has_bw = options_.HasBandwidth();
  uint32_t payload = kNilIndex;
  uint64_t admitted = 0;
  for (NodeId to : targets) {
    assert(to >= 0 && to < num_processes());
    const uint64_t envelope_id = next_envelope_id_++;
    if (!LinkAllowed(from, to)) {
      stats_.messages_dropped++;
      continue;
    }
    // Each copy of the fan-out serializes through the sender's one egress
    // port in turn — a full-payload multicast pays n serializations, which
    // is exactly the cost erasure-coded assignment shrinks.
    const Duration ser =
        has_bw && to != from ? SerializationDelay(from, to, bytes) : 0;
    const Duration delay =
        fd >= 0 ? (to == from ? 0 : fd) : DelayFor(from, to, msg, envelope_id);
    ++admitted;  // Sent even if the network then loses it.
    if (delay < 0) {
      stats_.messages_dropped++;
      continue;
    }
    if (payload == kNilIndex) {
      payload = payloads_.Allocate();
      payloads_[payload] = MessagePayload{msg, 0};  // One shared_ptr copy.
    }
    payloads_[payload].refs++;
    QueueMessageEvent(from, to, payload, envelope_id, ser + delay);
  }
  // One stats update for the whole fan-out: the per-type cursor is resolved
  // once, not re-hashed per target.
  if (admitted > 0) CountSentBatch(type, bytes, admitted);
}

void Simulation::ScheduleAt(Time t, std::function<void()> fn) {
  assert(t >= now_);
  const uint32_t cb = callbacks_.Allocate();
  callbacks_[cb] = std::move(fn);
  const uint32_t index = events_.Allocate();
  EventSlot& slot = events_[index];
  slot.kind = EventKind::kCallback;
  slot.payload = cb;
  ScheduleSlot(t, index);
}

void Simulation::ScheduleAfter(Duration d, std::function<void()> fn) {
  ScheduleAt(now_ + d, std::move(fn));
}

uint64_t Simulation::SetProcessTimer(NodeId owner, Duration delay,
                                     std::function<void()> fn) {
  const uint32_t cb = callbacks_.Allocate();
  callbacks_[cb] = std::move(fn);
  const uint32_t index = events_.Allocate();
  EventSlot& slot = events_[index];
  slot.kind = EventKind::kTimer;
  slot.cancelled = false;
  slot.to = owner;
  slot.payload = cb;
  slot.epoch = epochs_[owner];
  ScheduleSlot(now_ + delay, index);
  return events_.HandleFor(index);
}

void Simulation::CancelProcessTimer(uint64_t timer_id) {
  // The handle goes stale the moment the timer fires (its slot is freed and
  // the generation bumps), so cancel-after-fire is a no-op with no residue.
  EventSlot* slot = events_.Resolve(timer_id);
  if (slot != nullptr && slot->kind == EventKind::kTimer) {
    slot->cancelled = true;
  }
}

}  // namespace consensus40::sim
