/// \file
/// Reusable Byzantine behaviour for simulated processes, built on
/// Simulation::SetInterposeFn. Instead of one-off adversary subclasses per
/// protocol, an attached ByzantineInterposer rewrites a marked node's
/// outbound traffic inside seed-reproducible time windows:
///
///   - equivocate: one half of the cluster (even node index) receives the
///     node's real messages, the other half receives a conflicting twin
///     built by a protocol-supplied forge hook (or nothing, when no twin
///     can be forged — silence is the generic lower bound of equivocation).
///   - withhold: a salted fraction of outbound messages is dropped for the
///     window (sender-side silence, indistinguishable from asynchrony).
///   - mutate: messages are corrupted in flight by a protocol-supplied
///     hook (e.g. a digest byte-flip that breaks the signature) or dropped.
///   - replay: captured earlier messages are re-sent alongside live
///     traffic (stale-certificate injection). Capture runs from t=0 for
///     every sender, so a window armed mid-run has history to draw from.
///
/// All decisions come from a splitmix64 stream over (salt, counter) owned
/// by the interposer — never the simulation rng — so arming or removing a
/// window does not perturb message delays, and the same (schedule, seed)
/// replays bit-for-bit.

#ifndef CONSENSUS40_SIM_BYZANTINE_H_
#define CONSENSUS40_SIM_BYZANTINE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>

#include "sim/simulation.h"

namespace consensus40::sim {

class ByzantineInterposer {
 public:
  /// Protocol-specific behaviour plugs in here; every hook is optional.
  /// With no hooks the interposer still withholds and replays (those only
  /// need validly-signed captured traffic), and equivocate/mutate degrade
  /// to withholding — the generic lower bound a protocol-blind adversary
  /// can always realize.
  struct Hooks {
    /// Sees every outbound message of every sender (Byzantine or not),
    /// whenever the interposer is attached. Forgery material is harvested
    /// here (e.g. real client-signed commands from observed proposals).
    std::function<void(NodeId from, const MessagePtr&)> observe;

    /// Builds the conflicting twin of `msg` for an equivocation window.
    /// Return a substitute to equivocate, the original to pass this
    /// message type through untouched, or nullptr to withhold it from the
    /// twin half instead.
    std::function<MessagePtr(NodeId from, const MessagePtr&)> forge_twin;

    /// Corrupts `msg` in flight for a mutate window (the result should
    /// fail verification at honest receivers). Return nullptr to drop the
    /// message instead.
    std::function<MessagePtr(NodeId from, const MessagePtr&)> corrupt;
  };

  ByzantineInterposer() = default;
  explicit ByzantineInterposer(Hooks hooks) : hooks_(std::move(hooks)) {}

  /// Installs this interposer as `sim`'s interpose hook and registers it
  /// for fault-schedule arming. The interposer must outlive the run.
  void Attach(Simulation* sim);

  /// Arm a behaviour window [now, until) on `node`. `salt` diversifies
  /// the per-message decision stream between actions; 0 is a valid salt
  /// (canonicalized schedules zero their aux draws).
  void BeginEquivocate(NodeId node, Time until, uint64_t salt);
  void BeginWithhold(NodeId node, Time until, uint64_t salt);
  void BeginMutate(NodeId node, Time until, uint64_t salt);
  void BeginReplay(NodeId node, Time until, uint64_t salt);

 private:
  struct NodeState {
    Time equivocate_until = 0;
    Time withhold_until = 0;
    Time mutate_until = 0;
    Time replay_until = 0;
    uint64_t salt = 0;
    uint64_t counter = 0;  ///< Per-node decision stream position.
    std::deque<MessagePtr> captured;  ///< Ring of recent outbound messages.
  };

  static constexpr size_t kCaptureRing = 16;

  MessagePtr Interpose(NodeId from, NodeId to, const MessagePtr& msg);
  static uint64_t Draw(NodeState& st);

  Hooks hooks_;
  Simulation* sim_ = nullptr;
  std::map<NodeId, NodeState> nodes_;
};

}  // namespace consensus40::sim

#endif  // CONSENSUS40_SIM_BYZANTINE_H_
