#include "sim/byzantine.h"

namespace consensus40::sim {

void ByzantineInterposer::Attach(Simulation* sim) {
  sim_ = sim;
  sim->SetByzantineInterposer(this);
  sim->SetInterposeFn([this](NodeId from, NodeId to, const MessagePtr& msg) {
    return Interpose(from, to, msg);
  });
}

void ByzantineInterposer::BeginEquivocate(NodeId node, Time until,
                                          uint64_t salt) {
  NodeState& st = nodes_[node];
  st.equivocate_until = until;
  st.salt = salt;
}

void ByzantineInterposer::BeginWithhold(NodeId node, Time until,
                                        uint64_t salt) {
  NodeState& st = nodes_[node];
  st.withhold_until = until;
  st.salt = salt;
}

void ByzantineInterposer::BeginMutate(NodeId node, Time until, uint64_t salt) {
  NodeState& st = nodes_[node];
  st.mutate_until = until;
  st.salt = salt;
}

void ByzantineInterposer::BeginReplay(NodeId node, Time until, uint64_t salt) {
  NodeState& st = nodes_[node];
  st.replay_until = until;
  st.salt = salt;
}

uint64_t ByzantineInterposer::Draw(NodeState& st) {
  // splitmix64 over (salt, counter): windows decide independently of the
  // simulation rng, so schedules with and without Byzantine actions see
  // identical network delays for the surviving messages.
  uint64_t x = st.salt + 0x9e3779b97f4a7c15ULL * ++st.counter;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

MessagePtr ByzantineInterposer::Interpose(NodeId from, NodeId to,
                                          const MessagePtr& msg) {
  if (hooks_.observe) hooks_.observe(from, msg);
  NodeState& st = nodes_[from];
  const Time now = sim_->now();

  // Replay is additive: alongside the live message, occasionally re-send a
  // captured stale one. The injected send bypasses interposition (the
  // simulation's reentrancy guard), so the stale copy goes out verbatim.
  if (now < st.replay_until && !st.captured.empty() && Draw(st) % 2 == 0) {
    const MessagePtr stale = st.captured[Draw(st) % st.captured.size()];
    sim_->SendMessage(from, to, stale);
  }

  // Capture runs for every sender from t=0 so that a replay window armed
  // mid-run has genuinely old material (older views, stale certificates).
  if (st.captured.size() >= kCaptureRing) st.captured.pop_front();
  st.captured.push_back(msg);

  if (now < st.withhold_until &&
      Draw(st) % 100 < 60 + st.salt % 41) {
    return nullptr;
  }

  if (now < st.mutate_until && Draw(st) % 2 == 0) {
    // No corrupt hook (or a type it cannot corrupt): drop instead —
    // garbage that honest receivers would discard anyway.
    return hooks_.corrupt ? hooks_.corrupt(from, msg) : nullptr;
  }

  if (now < st.equivocate_until && (to & 1) != 0) {
    // Split the universe by node-index parity: the even half receives the
    // real message (below), the odd half the forged twin. Parity is a
    // property of the receiver, so each half observes an internally
    // consistent sender.
    return hooks_.forge_twin ? hooks_.forge_twin(from, msg) : nullptr;
  }

  return msg;
}

}  // namespace consensus40::sim
