#ifndef CONSENSUS40_ORACLE_FAILURE_DETECTOR_H_
#define CONSENSUS40_ORACLE_FAILURE_DETECTOR_H_

#include <map>

#include "sim/simulation.h"

namespace consensus40::oracle {

/// An eventually-accurate (Diamond-S-style) failure detector built from
/// heartbeats with adaptive timeouts: a process is suspected if its last
/// heartbeat is older than its current timeout; every false suspicion
/// raises that process's timeout, so in any run with eventually-bounded
/// delays each correct process is eventually never suspected — the oracle
/// the deck lists as FLP circumvention #3.
class HeartbeatDetector {
 public:
  struct Options {
    sim::Duration initial_timeout = 50 * sim::kMillisecond;
    sim::Duration timeout_increment = 25 * sim::kMillisecond;
  };

  explicit HeartbeatDetector(Options options) : options_(options) {}
  HeartbeatDetector() : HeartbeatDetector(Options{}) {}

  /// Records a heartbeat (or any message) from `node` at time `now`.
  void Touch(sim::NodeId node, sim::Time now) { last_seen_[node] = now; }

  /// True iff `node` is currently suspected.
  bool Suspects(sim::NodeId node, sim::Time now) const {
    auto seen = last_seen_.find(node);
    if (seen == last_seen_.end()) return false;  // Never heard: be patient.
    return now - seen->second > TimeoutFor(node);
  }

  /// Call when a suspicion proved wrong (the "dead" node spoke again):
  /// permanently raises the node's timeout — the adaptation that makes
  /// accuracy *eventual*.
  void OnFalseSuspicion(sim::NodeId node) {
    timeouts_[node] = TimeoutFor(node) + options_.timeout_increment;
    ++false_suspicions_;
  }

  sim::Duration TimeoutFor(sim::NodeId node) const {
    auto it = timeouts_.find(node);
    return it == timeouts_.end() ? options_.initial_timeout : it->second;
  }

  int false_suspicions() const { return false_suspicions_; }

 private:
  Options options_;
  std::map<sim::NodeId, sim::Time> last_seen_;
  std::map<sim::NodeId, sim::Duration> timeouts_;
  int false_suspicions_ = 0;
};

}  // namespace consensus40::oracle

#endif  // CONSENSUS40_ORACLE_FAILURE_DETECTOR_H_
