#ifndef CONSENSUS40_ORACLE_CT_CONSENSUS_H_
#define CONSENSUS40_ORACLE_CT_CONSENSUS_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "oracle/failure_detector.h"
#include "sim/simulation.h"

namespace consensus40::oracle {

/// Configuration for a Chandra–Toueg-style node.
struct CtOptions {
  /// Cluster size; tolerates f < n/2 crash faults given a Diamond-S
  /// failure detector.
  int n = 0;
  HeartbeatDetector::Options detector;
  sim::Duration heartbeat_interval = 20 * sim::kMillisecond;
};

/// Rotating-coordinator consensus with an unreliable failure detector
/// (Chandra & Toueg 1996) — the deck's third way around FLP: keep the
/// system asynchronous and deterministic, but add an oracle.
///
/// Round r (coordinator = r mod n):
///   1. everyone sends its (estimate, ts) to the coordinator;
///   2. the coordinator takes a majority of estimates, adopts the one with
///      the highest ts, and proposes it;
///   3. a participant either receives the proposal (adopt, ack) or comes
///      to suspect the coordinator via the detector (nack); either way it
///      then moves to round r+1;
///   4. a coordinator with a majority of acks decides and reliably
///      broadcasts the decision.
///
/// Safety never depends on the detector (majority-ack locking, as in
/// Paxos); only termination does.
class CtNode : public sim::Process {
 public:
  CtNode(CtOptions options, std::string initial_value);

  const std::optional<std::string>& decided() const { return decided_; }
  int round() const { return round_; }
  int false_suspicions() const { return detector_.false_suspicions(); }

  void OnStart() override;
  void OnMessage(sim::NodeId from, const sim::Message& msg) override;

 private:
  struct HeartbeatMsg;
  struct EstimateMsg;
  struct ProposalMsg;
  struct AckMsg;
  struct NackMsg;
  struct DecideMsg;

  sim::NodeId CoordinatorOf(int round) const { return round % options_.n; }
  void StartRound(int round);
  void HandleProposal(int round, const std::string& value, sim::NodeId from);
  void HeartbeatTick();     ///< Recurring heartbeat + suspicion poll.
  void CheckCoordinator();  ///< Suspicion check against the detector.
  void Decide(const std::string& value);
  std::vector<sim::NodeId> Everyone() const;

  CtOptions options_;
  int majority_;
  HeartbeatDetector detector_;

  std::string estimate_;
  int ts_ = 0;  ///< Round in which estimate_ was last adopted.
  int round_ = 0;
  bool replied_this_round_ = false;

  /// Coordinator state, per round: estimates and acks.
  std::map<int, std::map<sim::NodeId, std::pair<int, std::string>>>
      estimates_;
  std::map<int, std::set<sim::NodeId>> acks_;
  std::set<int> proposed_rounds_;
  std::map<int, std::string> proposals_sent_;  ///< Round -> proposed value.
  /// Buffered proposals for rounds we have not reached yet.
  std::map<int, std::pair<sim::NodeId, std::string>> pending_proposals_;

  std::optional<std::string> decided_;
  uint64_t poll_timer_ = 0;
};

}  // namespace consensus40::oracle

#endif  // CONSENSUS40_ORACLE_CT_CONSENSUS_H_
