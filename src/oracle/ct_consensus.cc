#include "oracle/ct_consensus.h"

#include <cassert>

namespace consensus40::oracle {

// ---------------------------------------------------------------------------
// Messages
// ---------------------------------------------------------------------------

struct CtNode::HeartbeatMsg : sim::Message {
  const char* TypeName() const override { return "ct-heartbeat"; }
  int ByteSize() const override { return 8; }
};

struct CtNode::EstimateMsg : sim::Message {
  const char* TypeName() const override { return "ct-estimate"; }
  int ByteSize() const override {
    return 24 + static_cast<int>(estimate.size());
  }
  int round = 0;
  int ts = 0;
  std::string estimate;
};

struct CtNode::ProposalMsg : sim::Message {
  const char* TypeName() const override { return "ct-proposal"; }
  int ByteSize() const override { return 16 + static_cast<int>(value.size()); }
  int round = 0;
  std::string value;
};

struct CtNode::AckMsg : sim::Message {
  const char* TypeName() const override { return "ct-ack"; }
  int ByteSize() const override { return 12; }
  int round = 0;
};

struct CtNode::NackMsg : sim::Message {
  const char* TypeName() const override { return "ct-nack"; }
  int ByteSize() const override { return 12; }
  int round = 0;
};

struct CtNode::DecideMsg : sim::Message {
  const char* TypeName() const override { return "ct-decide"; }
  int ByteSize() const override { return 16 + static_cast<int>(value.size()); }
  std::string value;
};

// ---------------------------------------------------------------------------
// Node
// ---------------------------------------------------------------------------

CtNode::CtNode(CtOptions options, std::string initial_value)
    : options_(options),
      detector_(options.detector),
      estimate_(std::move(initial_value)) {
  assert(options_.n > 0);
  majority_ = options_.n / 2 + 1;
}

std::vector<sim::NodeId> CtNode::Everyone() const {
  std::vector<sim::NodeId> all;
  for (int i = 0; i < options_.n; ++i) all.push_back(i);
  return all;
}

void CtNode::OnStart() {
  // Baseline the detector at our own start time so that a peer that never
  // speaks at all is eventually suspected too.
  for (sim::NodeId peer : Everyone()) detector_.Touch(peer, Now());
  HeartbeatTick();
  StartRound(0);
}

void CtNode::HeartbeatTick() {
  if (decided_) return;
  // Heartbeats feed every peer's failure detector; the same tick polls our
  // own detector for coordinator suspicion.
  Multicast(Everyone(), std::make_shared<HeartbeatMsg>());
  CheckCoordinator();
  poll_timer_ = SetTimer(options_.heartbeat_interval,
                         [this] { HeartbeatTick(); });
}

void CtNode::StartRound(int round) {
  if (decided_ || round < round_) return;
  round_ = round;
  replied_this_round_ = false;
  auto est = std::make_shared<EstimateMsg>();
  est->round = round_;
  est->ts = ts_;
  est->estimate = estimate_;
  Send(CoordinatorOf(round_), est);
  // A proposal for this round may have arrived while we lagged behind.
  auto pending = pending_proposals_.find(round_);
  if (pending != pending_proposals_.end()) {
    std::string value = pending->second.second;
    sim::NodeId coord = pending->second.first;
    pending_proposals_.erase(pending);
    HandleProposal(round_, value, coord);
  }
}

void CtNode::HandleProposal(int round, const std::string& value,
                            sim::NodeId from) {
  if (decided_ || round != round_ || replied_this_round_) return;
  estimate_ = value;
  ts_ = round;
  replied_this_round_ = true;
  auto ack = std::make_shared<AckMsg>();
  ack->round = round;
  Send(from, ack);
  StartRound(round + 1);
}

void CtNode::CheckCoordinator() {
  if (decided_ || replied_this_round_) return;
  sim::NodeId coord = CoordinatorOf(round_);
  if (coord == id()) return;  // We answer ourselves instantly.
  if (detector_.Suspects(coord, Now())) {
    replied_this_round_ = true;
    auto nack = std::make_shared<NackMsg>();
    nack->round = round_;
    Send(coord, nack);
    StartRound(round_ + 1);
  }
}

void CtNode::Decide(const std::string& value) {
  if (decided_) return;
  decided_ = value;
  auto decide = std::make_shared<DecideMsg>();
  decide->value = value;
  Multicast(Everyone(), decide);
}

void CtNode::OnMessage(sim::NodeId from, const sim::Message& msg) {
  detector_.Touch(from, Now());

  if (dynamic_cast<const HeartbeatMsg*>(&msg) != nullptr) return;

  if (const auto* m = dynamic_cast<const DecideMsg*>(&msg)) {
    Decide(m->value);
    return;
  }
  if (decided_) {
    // Help laggards.
    auto decide = std::make_shared<DecideMsg>();
    decide->value = *decided_;
    Send(from, decide);
    return;
  }

  if (const auto* m = dynamic_cast<const EstimateMsg*>(&msg)) {
    if (CoordinatorOf(m->round) != id()) return;
    auto& ests = estimates_[m->round];
    ests[from] = {m->ts, m->estimate};
    if (static_cast<int>(ests.size()) >= majority_ &&
        proposed_rounds_.insert(m->round).second) {
      // Adopt the estimate with the highest ts: any value locked by an
      // earlier majority-ack survives (Paxos-style safety).
      int best_ts = -1;
      std::string best;
      for (const auto& [node, est] : ests) {
        if (est.first > best_ts) {
          best_ts = est.first;
          best = est.second;
        }
      }
      proposals_sent_[m->round] = best;
      auto proposal = std::make_shared<ProposalMsg>();
      proposal->round = m->round;
      proposal->value = best;
      Multicast(Everyone(), proposal);
    }
    return;
  }

  if (const auto* m = dynamic_cast<const ProposalMsg*>(&msg)) {
    if (m->round < round_ || (replied_this_round_ && m->round == round_)) {
      // A proposal from a round we already nacked/left: the coordinator
      // was alive after all — teach the detector patience.
      if (m->round < round_) detector_.OnFalseSuspicion(from);
      return;
    }
    if (m->round > round_) {
      // We lag; rounds are processed strictly in order, so buffer it.
      pending_proposals_[m->round] = {from, m->value};
      return;
    }
    HandleProposal(m->round, m->value, from);
    return;
  }

  if (const auto* m = dynamic_cast<const AckMsg*>(&msg)) {
    if (CoordinatorOf(m->round) != id()) return;
    acks_[m->round].insert(from);
    auto proposed = proposals_sent_.find(m->round);
    if (proposed != proposals_sent_.end() &&
        static_cast<int>(acks_[m->round].size()) >= majority_) {
      // A majority adopted (locked) the proposal: decide exactly it.
      Decide(proposed->second);
    }
    return;
  }

  if (dynamic_cast<const NackMsg*>(&msg) != nullptr) {
    // Round failed for someone; nothing to do — they moved on already.
    return;
  }
}

}  // namespace consensus40::oracle
