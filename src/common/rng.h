#ifndef CONSENSUS40_COMMON_RNG_H_
#define CONSENSUS40_COMMON_RNG_H_

#include <cmath>
#include <cstdint>
#include <vector>

namespace consensus40 {

/// Deterministic pseudo-random number generator (xoshiro256** seeded via
/// SplitMix64). The whole library is wall-clock-free: all randomness flows
/// from explicitly seeded Rng instances so every simulation run is exactly
/// reproducible from its seed.
class Rng {
 public:
  /// Seeds the generator. Two Rng objects built from the same seed produce
  /// identical streams.
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Exponentially distributed value with the given mean (> 0). Used for
  /// Poisson-process inter-arrival times (e.g. block mining).
  double Exponential(double mean);

  /// Returns a derived generator whose stream is independent of (but
  /// determined by) this one. Useful for giving each simulated node its own
  /// stream while preserving whole-run determinism.
  Rng Fork();

  /// Fisher-Yates shuffle of the given vector.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = NextBounded(i);
      using std::swap;
      swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Picks an index in [0, weights.size()) with probability proportional to
  /// weights[i]. Requires a non-empty vector with a positive sum. This is
  /// the primitive behind proof-of-stake leader selection.
  size_t WeightedIndex(const std::vector<double>& weights);

 private:
  uint64_t state_[4];
};

/// SplitMix64 step, exposed for hashing-style uses (e.g. deriving per-node
/// secrets from a master seed).
uint64_t SplitMix64(uint64_t* state);

}  // namespace consensus40

#endif  // CONSENSUS40_COMMON_RNG_H_
