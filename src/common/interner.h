#ifndef CONSENSUS40_COMMON_INTERNER_H_
#define CONSENSUS40_COMMON_INTERNER_H_

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>

namespace consensus40 {

/// Dense id assigned to an interned string, starting at 0 in first-use order.
using TypeId = int32_t;

/// Interns C strings into dense TypeIds so per-string bookkeeping (e.g. the
/// simulator's per-message-type statistics) becomes a vector index instead of
/// a string-keyed map lookup on every use.
///
/// The fast path is keyed on the *pointer*: callers that pass the same string
/// literal every time (the common case — Message::TypeName returns a literal)
/// pay one pointer-hash lookup after the first call. Distinct pointers with
/// equal contents map to the same id via a content-keyed fallback, so
/// interning is always by value, never by identity.
///
/// Passed pointers must stay valid and their contents constant for the
/// lifetime of the interner (trivially true for string literals).
class StringInterner {
 public:
  /// Returns the dense id for `s`, assigning the next free id on first use.
  TypeId Intern(const char* s);

  /// The canonical string for an interned id. The reference is stable for
  /// the lifetime of the interner. `id` must have come from Intern().
  const std::string& NameOf(TypeId id) const { return names_[id]; }

  /// Number of distinct strings interned so far. Ids are 0..size()-1.
  size_t size() const { return names_.size(); }

 private:
  std::unordered_map<const void*, TypeId> by_pointer_;
  std::unordered_map<std::string, TypeId> by_content_;
  std::deque<std::string> names_;  ///< deque: NameOf references stay stable.
};

}  // namespace consensus40

#endif  // CONSENSUS40_COMMON_INTERNER_H_
