#ifndef CONSENSUS40_COMMON_TABLE_H_
#define CONSENSUS40_COMMON_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace consensus40 {

/// Aligned plain-text table builder. The benchmark harness regenerates the
/// paper's comparison tables as text; this class does the formatting.
class TextTable {
 public:
  /// Creates a table with the given column headers.
  explicit TextTable(std::vector<std::string> headers);

  /// Appends one row. Rows shorter than the header are right-padded with
  /// empty cells; longer rows are truncated to the header width.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats a double with the given precision.
  static std::string Num(double v, int precision = 2);
  static std::string Int(int64_t v);

  /// Renders the table with a header underline and column alignment.
  std::string ToString() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace consensus40

#endif  // CONSENSUS40_COMMON_TABLE_H_
