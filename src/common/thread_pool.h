/// \file
/// Work-stealing thread pool for embarrassingly-parallel index loops.
///
/// Built for the checker's fault-schedule sweeps: a fixed worker set is
/// spawned once, and each ParallelFor call shards an index range into
/// contiguous chunks dealt round-robin onto per-worker deques. A worker
/// pops chunks from the bottom of its own deque (LIFO, cache-friendly)
/// and, when empty, steals from the top of the most-loaded victim's deque
/// (FIFO, so thieves take the work the owner would reach last). Chunk
/// descriptors live in a reusable per-pool buffer, so the steady-state
/// task hot path performs no heap allocation.
///
/// Determinism contract: ParallelFor guarantees `fn` is invoked exactly
/// once per index, but in an unspecified order and from unspecified
/// threads. Callers that need deterministic output (the sweep engine, the
/// speculative shrinker) must write results into per-index slots and merge
/// in index order afterwards.
///
/// A pool of size 1 runs every chunk inline on the calling thread — no
/// worker threads, no synchronization — which makes `ThreadPool(1)` the
/// serial reference implementation of the same loop.

#ifndef CONSENSUS40_COMMON_THREAD_POOL_H_
#define CONSENSUS40_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace consensus40 {

class ThreadPool {
 public:
  /// Spawns `workers - 1` persistent threads; the caller participates as
  /// worker 0 during ParallelFor, so `workers` is the true parallelism.
  /// `workers` < 1 is clamped to 1; pass Hardware() for one per core.
  explicit ThreadPool(int workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int workers() const { return workers_; }

  /// The machine's core count (>= 1), the natural default pool size.
  static int Hardware();

  /// Invokes `fn(worker, index)` exactly once for every index in [0, n),
  /// using all workers, and blocks until every invocation returned.
  /// `worker` is in [0, workers()) and identifies the executing lane —
  /// callers use it to index per-worker scratch state without locking.
  /// If any invocation throws, the first exception (in completion order)
  /// is rethrown here after all in-flight work drains; remaining chunks
  /// are abandoned. Not reentrant: ParallelFor must not be called from
  /// inside `fn`.
  void ParallelFor(uint64_t n, const std::function<void(int, uint64_t)>& fn);

  /// Total chunks executed by a thread other than the one whose deque
  /// they were dealt to, across all ParallelFor calls. Monotone; used by
  /// tests to assert stealing actually happens under skewed loads.
  uint64_t steals() const { return steals_.load(std::memory_order_relaxed); }

 private:
  /// A contiguous sub-range of the index space: the unit of stealing.
  struct Chunk {
    uint64_t begin = 0;
    uint64_t end = 0;
  };

  /// Fixed-capacity deque of chunk handles. Guarded by `mu`: the owner
  /// pushes/pops at the back, thieves pop at the front. A mutex per deque
  /// is contended only when a thief hits an owner mid-pop, which is rare
  /// with chunked ranges; the payoff is being trivially race-free (and
  /// TSan-clean) without a Chase-Lev proof.
  struct Deque {
    std::mutex mu;
    std::vector<Chunk> items;  ///< Reused across calls; no steady-state alloc.
    size_t head = 0;           ///< First live element.
    size_t tail = 0;           ///< One past the last live element.
  };

  void WorkerLoop(int worker);
  void RunChunks(int worker);
  bool PopOwn(int worker, Chunk* out);
  bool Steal(int thief, Chunk* out);

  const int workers_;
  std::vector<std::unique_ptr<Deque>> deques_;
  std::vector<std::thread> threads_;

  // One ParallelFor at a time: the calling thread arms the job, wakes the
  // workers, participates, then waits for the remaining count to hit zero
  // and every worker to leave the job. All job bookkeeping below is
  // guarded by job_mu_ — chunk retirement takes the lock, but there are at
  // most workers * 8 chunks per call, so the traffic is negligible next to
  // the simulations each chunk runs.
  std::mutex job_mu_;
  std::condition_variable job_cv_;    ///< Workers wait here for a new job.
  std::condition_variable done_cv_;   ///< Caller waits here for completion.
  uint64_t job_epoch_ = 0;            ///< Bumped per ParallelFor call.
  bool shutdown_ = false;
  const std::function<void(int, uint64_t)>* job_fn_ = nullptr;
  uint64_t remaining_ = 0;            ///< Indices not yet retired.
  int active_ = 0;                    ///< Workers currently inside the job.
  std::exception_ptr first_error_;
  std::atomic<bool> aborted_{false};  ///< Set on first exception.
  std::atomic<uint64_t> steals_{0};
};

}  // namespace consensus40

#endif  // CONSENSUS40_COMMON_THREAD_POOL_H_
