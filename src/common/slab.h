#ifndef CONSENSUS40_COMMON_SLAB_H_
#define CONSENSUS40_COMMON_SLAB_H_

#include <cassert>
#include <cstdint>
#include <vector>

namespace consensus40 {

/// Fixed-type slab allocator with a free list and generation-checked handles.
///
/// Allocate() hands out dense uint32 slot indices; Free() recycles them LIFO,
/// so a steady-state churn of N live objects touches the same N (cache-hot)
/// slots and never allocates after the high-water mark is reached. Slot
/// values are default-constructed once and *reused* — Free() does not destroy
/// the value, so callers must clear any resource-owning fields (shared_ptr,
/// std::function, ...) before freeing a slot.
///
/// HandleFor() packs (generation, index) into a uint64 that Resolve() checks:
/// a handle goes stale the moment its slot is freed, which makes dangling
/// references (e.g. cancelling an already-fired timer) detectable in O(1)
/// with no side tables. Generations are odd while a slot is live and even
/// while it is free, so a handle is never valid for a freed slot and no
/// handle is ever 0.
template <typename T>
class Slab {
 public:
  using Handle = uint64_t;
  static constexpr uint32_t kNil = 0xFFFFFFFFu;

  /// Returns the index of a live slot, reusing a freed one when possible.
  uint32_t Allocate() {
    uint32_t index;
    if (free_head_ != kNil) {
      index = free_head_;
      free_head_ = entries_[index].next_free;
    } else {
      index = static_cast<uint32_t>(entries_.size());
      entries_.emplace_back();
    }
    ++entries_[index].generation;  // Even -> odd: live.
    ++live_;
    return index;
  }

  /// Recycles a live slot. The caller has already cleared owning fields.
  void Free(uint32_t index) {
    Entry& e = entries_[index];
    assert((e.generation & 1) != 0 && "double free");
    ++e.generation;  // Odd -> even: free.
    e.next_free = free_head_;
    free_head_ = index;
    --live_;
  }

  T& operator[](uint32_t index) { return entries_[index].value; }
  const T& operator[](uint32_t index) const { return entries_[index].value; }

  /// A stable reference to a currently-live slot. Never 0.
  Handle HandleFor(uint32_t index) const {
    return (static_cast<Handle>(entries_[index].generation) << 32) | index;
  }

  /// The slot a handle refers to, or nullptr if that slot has been freed
  /// (or the handle is garbage) since the handle was minted.
  T* Resolve(Handle h) {
    const uint32_t index = static_cast<uint32_t>(h);
    const uint32_t generation = static_cast<uint32_t>(h >> 32);
    if ((generation & 1) == 0 || index >= entries_.size() ||
        entries_[index].generation != generation) {
      return nullptr;
    }
    return &entries_[index].value;
  }

  /// Live-slot count and total slots ever created (the high-water mark).
  size_t live() const { return live_; }
  size_t capacity() const { return entries_.size(); }

 private:
  struct Entry {
    T value{};
    uint32_t generation = 0;  ///< Odd = live, even = free.
    uint32_t next_free = kNil;
  };

  std::vector<Entry> entries_;
  uint32_t free_head_ = kNil;
  size_t live_ = 0;
};

}  // namespace consensus40

#endif  // CONSENSUS40_COMMON_SLAB_H_
