#include "common/interner.h"

namespace consensus40 {

TypeId StringInterner::Intern(const char* s) {
  auto fast = by_pointer_.find(s);
  if (fast != by_pointer_.end()) return fast->second;

  auto [it, inserted] =
      by_content_.try_emplace(std::string(s), static_cast<TypeId>(names_.size()));
  if (inserted) names_.emplace_back(it->first);
  by_pointer_.emplace(s, it->second);
  return it->second;
}

}  // namespace consensus40
