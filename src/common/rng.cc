#include "common/rng.h"

#include <cassert>

namespace consensus40 {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(&s);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = -bound % bound;
  while (true) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // Full 64-bit range.
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  // 53 high-quality bits into [0, 1).
  return (Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return NextDouble() < p;
}

double Rng::Exponential(double mean) {
  assert(mean > 0);
  double u = NextDouble();
  // Guard against log(0).
  if (u <= 0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

Rng Rng::Fork() { return Rng(Next()); }

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = 0;
  for (double w : weights) total += w;
  assert(total > 0);
  double x = NextDouble() * total;
  double acc = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (x < acc) return i;
  }
  return weights.size() - 1;
}

}  // namespace consensus40
