#include "common/table.h"

#include <algorithm>
#include <cstdio>

namespace consensus40 {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TextTable::Int(int64_t v) { return std::to_string(v); }

std::string TextTable::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      line += "| " + cell + std::string(widths[c] - cell.size() + 1, ' ');
    }
    line += "|\n";
    return line;
  };

  std::string out = render_row(headers_);
  std::string rule;
  for (size_t c = 0; c < headers_.size(); ++c) {
    rule += "|" + std::string(widths[c] + 2, '-');
  }
  rule += "|\n";
  out += rule;
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

}  // namespace consensus40
