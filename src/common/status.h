#ifndef CONSENSUS40_COMMON_STATUS_H_
#define CONSENSUS40_COMMON_STATUS_H_

#include <cstdint>
#include <string>
#include <utility>

namespace consensus40 {

/// RocksDB-style status object used for error propagation throughout the
/// library. The library never throws exceptions across API boundaries.
class Status {
 public:
  /// Error categories. Kept deliberately small; the message string carries
  /// the detail.
  enum class Code : uint8_t {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kAlreadyExists,
    kFailedPrecondition,
    kAborted,
    kTimedOut,
    kCorruption,
    kUnavailable,
    kInternal,
  };

  /// Default-constructed status is OK.
  Status() : code_(Code::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory functions, one per error category.
  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(Code::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(Code::kFailedPrecondition, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(Code::kAborted, std::move(msg));
  }
  static Status TimedOut(std::string msg) {
    return Status(Code::kTimedOut, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(Code::kUnavailable, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsAlreadyExists() const { return code_ == Code::kAlreadyExists; }
  bool IsFailedPrecondition() const {
    return code_ == Code::kFailedPrecondition;
  }
  bool IsAborted() const { return code_ == Code::kAborted; }
  bool IsTimedOut() const { return code_ == Code::kTimedOut; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsUnavailable() const { return code_ == Code::kUnavailable; }
  bool IsInternal() const { return code_ == Code::kInternal; }

  /// Human-readable rendering, e.g. "InvalidArgument: f must be >= 0".
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

/// A value-or-error holder in the spirit of absl::StatusOr. The library
/// returns Result<T> from any operation that can fail but also produces a
/// value on success.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success) or a non-OK status
  /// (failure) keeps call sites terse: `return value;` / `return status;`.
  Result(T value) : status_(Status::Ok()), value_(std::move(value)) {}
  Result(Status status) : status_(std::move(status)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Value accessors. Callers must check ok() first; accessing the value of
  /// a failed Result is a programming error (the value is default-
  /// constructed, never uninitialized, so the failure mode is deterministic).
  const T& value() const& { return value_; }
  T& value() & { return value_; }
  T&& value() && { return std::move(value_); }

  const T& operator*() const& { return value_; }
  T& operator*() & { return value_; }
  const T* operator->() const { return &value_; }
  T* operator->() { return &value_; }

 private:
  Status status_;
  T value_{};
};

}  // namespace consensus40

#endif  // CONSENSUS40_COMMON_STATUS_H_
