#include "common/thread_pool.h"

#include <algorithm>

namespace consensus40 {

namespace {

/// Chunks per worker per call. Higher = better load balancing when task
/// durations are skewed (a simulation that runs to its quiesce deadline
/// costs ~100x one that finishes early); lower = less deque traffic.
constexpr uint64_t kChunksPerWorker = 8;

}  // namespace

int ThreadPool::Hardware() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

ThreadPool::ThreadPool(int workers) : workers_(std::max(workers, 1)) {
  deques_.reserve(workers_);
  for (int i = 0; i < workers_; ++i) {
    deques_.push_back(std::make_unique<Deque>());
  }
  threads_.reserve(workers_ - 1);
  for (int i = 1; i < workers_; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(job_mu_);
    shutdown_ = true;
  }
  job_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::ParallelFor(uint64_t n,
                             const std::function<void(int, uint64_t)>& fn) {
  if (n == 0) return;

  if (workers_ == 1) {
    // Serial reference path: the same loop with no synchronization at all.
    for (uint64_t i = 0; i < n; ++i) fn(0, i);
    return;
  }

  // Deal contiguous chunks round-robin onto the per-worker deques before
  // arming the job: workers only wake on the epoch bump below, so no chunk
  // is popped until the job state is fully published. Chunk k covers
  // [k*size, min((k+1)*size, n)); worker w is dealt chunks w, w+W, w+2W...
  // so every lane starts near a low index and loads stay balanced even
  // when chunk durations are skewed.
  const uint64_t target_chunks =
      std::min(n, static_cast<uint64_t>(workers_) * kChunksPerWorker);
  const uint64_t chunk_size = (n + target_chunks - 1) / target_chunks;
  const uint64_t num_chunks = (n + chunk_size - 1) / chunk_size;

  for (int w = 0; w < workers_; ++w) {
    Deque& d = *deques_[w];
    std::lock_guard<std::mutex> lock(d.mu);
    d.items.clear();
    d.head = d.tail = 0;
    for (uint64_t k = w; k < num_chunks; k += workers_) {
      d.items.push_back(
          Chunk{k * chunk_size, std::min((k + 1) * chunk_size, n)});
    }
    d.tail = d.items.size();
  }

  {
    std::lock_guard<std::mutex> lock(job_mu_);
    remaining_ = n;
    aborted_.store(false, std::memory_order_relaxed);
    first_error_ = nullptr;
    job_fn_ = &fn;
    ++job_epoch_;
  }
  job_cv_.notify_all();

  // The calling thread is worker 0.
  RunChunks(0);

  // Wait for remaining == 0 (every index retired) AND active == 0 (no
  // worker still inside RunChunks). The second condition is what makes
  // the captured `fn` pointer safe: no worker can outlive this call while
  // still holding it, so the next ParallelFor never races a straggler.
  std::unique_lock<std::mutex> lock(job_mu_);
  done_cv_.wait(lock, [this] { return remaining_ == 0 && active_ == 0; });
  job_fn_ = nullptr;
  if (first_error_ != nullptr) {
    std::exception_ptr e = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(e);
  }
}

void ThreadPool::WorkerLoop(int worker) {
  uint64_t seen_epoch = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(job_mu_);
      job_cv_.wait(lock, [&] { return shutdown_ || job_epoch_ != seen_epoch; });
      if (shutdown_) return;
      seen_epoch = job_epoch_;
    }
    RunChunks(worker);
  }
}

void ThreadPool::RunChunks(int worker) {
  const std::function<void(int, uint64_t)>* fn;
  {
    std::lock_guard<std::mutex> lock(job_mu_);
    fn = job_fn_;
    if (fn == nullptr) return;  // Woke between jobs; nothing armed.
    ++active_;
  }

  Chunk c;
  while (PopOwn(worker, &c) || Steal(worker, &c)) {
    if (!aborted_.load(std::memory_order_relaxed)) {
      try {
        for (uint64_t i = c.begin; i < c.end; ++i) (*fn)(worker, i);
      } catch (...) {
        aborted_.store(true, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(job_mu_);
        if (first_error_ == nullptr) first_error_ = std::current_exception();
      }
    }
    // After an abort, chunks are retired without running so the caller's
    // completion wait still terminates.
    std::lock_guard<std::mutex> lock(job_mu_);
    remaining_ -= c.end - c.begin;
    if (remaining_ == 0) done_cv_.notify_one();
  }

  std::lock_guard<std::mutex> lock(job_mu_);
  if (--active_ == 0 && remaining_ == 0) done_cv_.notify_one();
}

bool ThreadPool::PopOwn(int worker, Chunk* out) {
  Deque& d = *deques_[worker];
  std::lock_guard<std::mutex> lock(d.mu);
  if (d.head == d.tail) return false;
  *out = d.items[--d.tail];
  return true;
}

bool ThreadPool::Steal(int thief, Chunk* out) {
  // Scan victims round-robin starting after the thief; take from the
  // front — the chunk the owner would reach last.
  for (int off = 1; off < workers_; ++off) {
    const int victim = (thief + off) % workers_;
    Deque& d = *deques_[victim];
    std::lock_guard<std::mutex> lock(d.mu);
    if (d.head == d.tail) continue;
    *out = d.items[d.head++];
    steals_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

}  // namespace consensus40
