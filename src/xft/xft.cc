#include "xft/xft.h"

#include <algorithm>
#include <cassert>

#include "pbft/pbft.h"

namespace consensus40::xft {

namespace {

bool ValidRequest(const smr::Command& cmd, const crypto::Signature& sig,
                  const crypto::KeyRegistry& registry) {
  return pbft::PbftReplica::ValidRequest(cmd, sig, registry);
}

crypto::Digest SlotDigest(int64_t view, uint64_t seq,
                          const smr::Command& cmd) {
  crypto::Sha256 h;
  h.Update(&view, sizeof(view));
  h.Update(&seq, sizeof(seq));
  crypto::Digest d = cmd.Hash();
  h.Update(d.data(), d.size());
  return h.Finish();
}

}  // namespace

bool InAnarchy(int n, int c, int m, int p) {
  return m > 0 && (c + m + p) > (n - 1) / 2;
}

XftReplica::XftReplica(XftOptions options) : options_(options) {
  assert(options_.n >= 3 && options_.n % 2 == 1);
  assert(options_.registry != nullptr);
}

std::vector<sim::NodeId> XftReplica::Everyone() const {
  std::vector<sim::NodeId> all;
  for (int i = 0; i < options_.n; ++i) all.push_back(i);
  return all;
}

std::vector<sim::NodeId> XftReplica::SyncGroup(int64_t view) const {
  std::vector<sim::NodeId> group;
  for (int k = 0; k <= f(); ++k) {
    group.push_back((view + k) % options_.n);
  }
  return group;
}

bool XftReplica::InSyncGroup() const {
  for (sim::NodeId member : SyncGroup(view_)) {
    if (member == id()) return true;
  }
  return false;
}

void XftReplica::ArmRequestTimer(const smr::Command& cmd) {
  auto key = std::make_pair(cmd.client, cmd.client_seq);
  if (request_timers_.count(key) > 0 || results_.count(key) > 0) return;
  request_timers_[key] = SetTimer(options_.request_timeout, [this, key] {
    request_timers_.erase(key);
    StartViewChange(view_ + 1);
  });
}

void XftReplica::DisarmRequestTimer(int32_t client, uint64_t client_seq) {
  auto key = std::make_pair(client, client_seq);
  auto it = request_timers_.find(key);
  if (it != request_timers_.end()) {
    CancelTimer(it->second);
    request_timers_.erase(it);
  }
}

void XftReplica::MaybeExecute() {
  while (true) {
    auto it = slots_.find(exec_cursor_);
    if (it == slots_.end() || !it->second.prepared) break;
    Slot& slot = it->second;
    // XPaxos common case: the WHOLE synchronous group must have
    // replicated (f+1 commits including the leader's implicit one).
    if (static_cast<int>(slot.commits.size()) < f() + 1) break;
    if (!slot.executed) {
      slot.executed = true;
      auto key = std::make_pair(slot.cmd.client, slot.cmd.client_seq);
      std::string result;
      if (results_.count(key) > 0) {
        result = results_[key];
      } else {
        result = dedup_.Apply(&kv_, slot.cmd);
        results_[key] = result;
        executed_commands_.push_back(slot.cmd);
      }
      DisarmRequestTimer(slot.cmd.client, slot.cmd.client_seq);
      auto reply = std::make_shared<ReplyMsg>();
      reply->view = view_;
      reply->client_seq = slot.cmd.client_seq;
      reply->replica = id();
      reply->result = result;
      Send(slot.cmd.client, reply);
      // Lazy replication outside the group.
      auto update = std::make_shared<UpdateMsg>();
      update->seq = exec_cursor_;
      update->cmd = slot.cmd;
      for (sim::NodeId r : Everyone()) {
        bool in_group = false;
        for (sim::NodeId g : SyncGroup(view_)) in_group |= (g == r);
        if (!in_group) Send(r, update);
      }
    }
    ++exec_cursor_;
  }
}

void XftReplica::StartViewChange(int64_t new_view) {
  if (new_view <= view_ || (in_view_change_ && new_view <= pending_view_)) {
    return;
  }
  in_view_change_ = true;
  pending_view_ = new_view;

  auto vc = std::make_shared<ViewChangeMsg>();
  vc->new_view = new_view;
  vc->replica = id();
  for (const auto& [seq, slot] : slots_) {
    if (slot.prepared) vc->entries.push_back({seq, slot.cmd, slot.client_sig});
  }
  crypto::Sha256 h;
  h.Update(&new_view, sizeof(new_view));
  vc->sig = options_.registry->Sign(id(), h.Finish());
  Multicast(Everyone(), vc);

  SetTimer(options_.request_timeout * 2, [this, new_view] {
    if (in_view_change_ && pending_view_ == new_view) {
      StartViewChange(new_view + 1);
    }
  });
}

void XftReplica::OnMessage(sim::NodeId from, const sim::Message& msg) {
  if (const auto* m = dynamic_cast<const RequestMsg*>(&msg)) {
    if (!ValidRequest(m->cmd, m->client_sig, *options_.registry)) return;
    auto key = std::make_pair(m->cmd.client, m->cmd.client_seq);
    auto done = results_.find(key);
    if (done != results_.end()) {
      auto reply = std::make_shared<ReplyMsg>();
      reply->view = view_;
      reply->client_seq = m->cmd.client_seq;
      reply->replica = id();
      reply->result = done->second;
      Send(m->cmd.client, reply);
      return;
    }
    if (id() == Leader(view_) && !in_view_change_) {
      for (const auto& [seq, slot] : slots_) {
        if (slot.cmd.client == m->cmd.client &&
            slot.cmd.client_seq == m->cmd.client_seq) {
          if (slot.prepare_msg != nullptr) {
            Multicast(SyncGroup(view_), slot.prepare_msg);
          }
          return;
        }
      }
      auto prepare = std::make_shared<PrepareMsg>();
      prepare->view = view_;
      prepare->seq = next_seq_++;
      prepare->cmd = m->cmd;
      prepare->client_sig = m->client_sig;
      prepare->leader_sig = options_.registry->Sign(
          id(), SlotDigest(view_, prepare->seq, m->cmd));
      slots_[prepare->seq].prepare_msg = prepare;
      Multicast(SyncGroup(view_), prepare);
    } else if (id() != Leader(view_)) {
      Send(Leader(view_), std::make_shared<RequestMsg>(m->cmd, m->client_sig));
      // Every replica (inside or outside the group) watches the request:
      // a faulty synchronous group must be replaced by the whole cluster.
      ArmRequestTimer(m->cmd);
    }
    return;
  }

  if (const auto* m = dynamic_cast<const PrepareMsg*>(&msg)) {
    // Note: a prepare for the CURRENT view is accepted even while this
    // replica campaigns for the next one — if the present leader is alive
    // after all, letting it finish is both safe (view-tagged) and the
    // fastest way back to a stable view.
    if (m->view != view_) return;
    if (from != Leader(view_) || !InSyncGroup()) return;
    if (!ValidRequest(m->cmd, m->client_sig, *options_.registry)) return;
    if (m->leader_sig.signer != Leader(view_) ||
        !options_.registry->Verify(m->leader_sig,
                                   SlotDigest(m->view, m->seq, m->cmd))) {
      return;
    }
    Slot& slot = slots_[m->seq];
    if (slot.prepared) return;
    slot.prepared = true;
    slot.cmd = m->cmd;
    slot.client_sig = m->client_sig;
    slot.commits.insert(from);  // The leader's prepare is its commit.
    DisarmRequestTimer(m->cmd.client, m->cmd.client_seq);
    ArmRequestTimer(m->cmd);  // Must commit within the timeout now.
    if (!slot.sent_commit && id() != from) {
      slot.sent_commit = true;
      auto commit = std::make_shared<CommitMsg>();
      commit->view = view_;
      commit->seq = m->seq;
      commit->digest = SlotDigest(m->view, m->seq, m->cmd);
      commit->replica = id();
      commit->sig = options_.registry->Sign(id(), commit->digest);
      Multicast(SyncGroup(view_), commit);
      slot.commits.insert(id());
    }
    MaybeExecute();
    return;
  }

  if (const auto* m = dynamic_cast<const CommitMsg*>(&msg)) {
    if (m->view != view_ || !InSyncGroup()) return;
    if (m->sig.signer != from ||
        !options_.registry->Verify(m->sig, m->digest)) {
      return;
    }
    Slot& slot = slots_[m->seq];
    if (slot.prepared &&
        SlotDigest(m->view, m->seq, slot.cmd) != m->digest) {
      return;  // Mismatched commit.
    }
    slot.commits.insert(from);
    MaybeExecute();
    return;
  }

  if (const auto* m = dynamic_cast<const UpdateMsg*>(&msg)) {
    update_votes_[m->seq][m->cmd.Hash()].insert(from);
    update_cmds_[m->seq] = m->cmd;
    // Adopt once the full group (f+1 members) confirms, in order.
    while (true) {
      auto votes = update_votes_.find(exec_cursor_);
      if (votes == update_votes_.end()) break;
      const smr::Command& cmd = update_cmds_[exec_cursor_];
      auto per_digest = votes->second.find(cmd.Hash());
      if (per_digest == votes->second.end() ||
          static_cast<int>(per_digest->second.size()) < f() + 1) {
        break;
      }
      auto key = std::make_pair(cmd.client, cmd.client_seq);
      if (results_.count(key) == 0) {
        results_[key] = dedup_.Apply(&kv_, cmd);
        executed_commands_.push_back(cmd);
      }
      ++exec_cursor_;
    }
    return;
  }

  if (const auto* m = dynamic_cast<const ViewChangeMsg*>(&msg)) {
    crypto::Sha256 h;
    h.Update(&m->new_view, sizeof(m->new_view));
    if (m->sig.signer != m->replica || m->replica != from ||
        !options_.registry->Verify(m->sig, h.Finish())) {
      return;
    }
    if (m->new_view <= view_) return;
    view_changes_[m->new_view][from] = m->entries;

    // Join once a majority-crossing set demands change.
    if (static_cast<int>(view_changes_[m->new_view].size()) >= f() + 1 &&
        (!in_view_change_ || pending_view_ < m->new_view)) {
      StartViewChange(m->new_view);
    }

    if (Leader(m->new_view) == id() &&
        static_cast<int>(view_changes_[m->new_view].size()) >= f() + 1 &&
        built_new_views_.insert(m->new_view).second) {
      std::map<uint64_t, ViewChangeMsg::Entry> merged;
      for (const auto& [r, entries] : view_changes_[m->new_view]) {
        for (const auto& entry : entries) {
          if (!ValidRequest(entry.cmd, entry.client_sig, *options_.registry)) {
            continue;
          }
          merged[entry.seq] = entry;
        }
      }
      auto nv = std::make_shared<NewViewMsg>();
      nv->view = m->new_view;
      for (const auto& [seq, entry] : merged) nv->reissue.push_back(entry);
      crypto::Sha256 nh;
      nh.Update(&nv->view, sizeof(nv->view));
      nv->sig = options_.registry->Sign(id(), nh.Finish());
      Multicast(Everyone(), nv);
    }
    return;
  }

  if (const auto* m = dynamic_cast<const NewViewMsg*>(&msg)) {
    crypto::Sha256 h;
    h.Update(&m->view, sizeof(m->view));
    if (m->sig.signer != Leader(m->view) || from != m->sig.signer ||
        !options_.registry->Verify(m->sig, h.Finish())) {
      return;
    }
    if (m->view < view_ || (m->view == view_ && !in_view_change_)) return;
    view_ = m->view;
    in_view_change_ = false;
    pending_view_ = view_;
    slots_.clear();
    exec_cursor_ = executed_commands_.size() + 1;
    view_changes_.erase(view_);
    // The new view gets fresh patience: stale per-request watchdogs from
    // the old view would immediately re-depose it.
    for (auto& [key, timer] : request_timers_) CancelTimer(timer);
    request_timers_.clear();

    if (id() == Leader(view_)) {
      next_seq_ = executed_commands_.size() + 1;
      for (const auto& entry : m->reissue) {
        auto prepare = std::make_shared<PrepareMsg>();
        prepare->view = view_;
        prepare->seq = next_seq_++;
        prepare->cmd = entry.cmd;
        prepare->client_sig = entry.client_sig;
        prepare->leader_sig = options_.registry->Sign(
            id(), SlotDigest(view_, prepare->seq, entry.cmd));
        slots_[prepare->seq].prepare_msg = prepare;
        Multicast(SyncGroup(view_), prepare);
      }
    }
    return;
  }
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

XftClient::XftClient(int n, const crypto::KeyRegistry* registry, int ops,
                     std::string key, sim::Duration retry)
    : n_(n),
      registry_(registry),
      f_((n - 1) / 2),
      ops_(ops),
      key_(std::move(key)),
      retry_(retry) {}

void XftClient::OnStart() {
  seq_ = 1;
  SendCurrent(false);
}

void XftClient::SendCurrent(bool broadcast) {
  if (done()) return;
  smr::Command cmd{id(), seq_, "INC " + key_};
  crypto::Signature sig = registry_->Sign(id(), cmd.Hash());
  if (broadcast) {
    for (int i = 0; i < n_; ++i) {
      Send(i, std::make_shared<XftReplica::RequestMsg>(cmd, sig));
    }
  } else {
    Send(leader_hint_, std::make_shared<XftReplica::RequestMsg>(cmd, sig));
  }
  CancelTimer(retry_timer_);
  retry_timer_ = SetTimer(retry_, [this] { SendCurrent(true); });
}

void XftClient::OnMessage(sim::NodeId from, const sim::Message& msg) {
  const auto* m = dynamic_cast<const XftReplica::ReplyMsg*>(&msg);
  if (m == nullptr || m->client_seq != seq_ || done()) return;
  reply_votes_[m->result].insert(from);
  leader_hint_ = m->view % n_;
  // f+1 matching replies = the whole synchronous group agrees.
  if (static_cast<int>(reply_votes_[m->result].size()) >= f_ + 1) {
    results_.push_back(m->result);
    reply_votes_.clear();
    ++completed_;
    ++seq_;
    if (done()) {
      CancelTimer(retry_timer_);
    } else {
      SendCurrent(false);
    }
  }
}

}  // namespace consensus40::xft
