#include "xft/xft.h"

#include <algorithm>
#include <cassert>

#include "pbft/pbft.h"

namespace consensus40::xft {

namespace {

bool ValidRequest(const smr::Command& cmd, const crypto::Signature& sig,
                  const crypto::KeyRegistry& registry) {
  return pbft::PbftReplica::ValidRequest(cmd, sig, registry);
}

crypto::Digest SlotDigest(int64_t view, uint64_t seq,
                          const smr::Command& cmd) {
  crypto::Sha256 h;
  h.Update(&view, sizeof(view));
  h.Update(&seq, sizeof(seq));
  crypto::Digest d = cmd.Hash();
  h.Update(d.data(), d.size());
  return h.Finish();
}

}  // namespace

bool InAnarchy(int n, int c, int m, int p) {
  return m > 0 && (c + m + p) > (n - 1) / 2;
}

XftReplica::XftReplica(XftOptions options) : options_(options) {
  assert(options_.n >= 3 && options_.n % 2 == 1);
  assert(options_.registry != nullptr);
}

std::vector<sim::NodeId> XftReplica::Everyone() const {
  std::vector<sim::NodeId> all;
  for (int i = 0; i < options_.n; ++i) all.push_back(i);
  return all;
}

std::vector<sim::NodeId> XftReplica::SyncGroup(int64_t view) const {
  std::vector<sim::NodeId> group;
  for (int k = 0; k <= f(); ++k) {
    group.push_back((view + k) % options_.n);
  }
  return group;
}

bool XftReplica::InSyncGroup() const {
  for (sim::NodeId member : SyncGroup(view_)) {
    if (member == id()) return true;
  }
  return false;
}

void XftReplica::ArmRequestTimer(const smr::Command& cmd) {
  auto key = std::make_pair(cmd.client, cmd.client_seq);
  if (request_timers_.count(key) > 0 || results_.count(key) > 0) return;
  request_timers_[key] = SetTimer(options_.request_timeout, [this, key, cmd] {
    request_timers_.erase(key);
    StartViewChange(view_ + 1);
    // Stay armed until the request settles: an armed watchdog is the
    // signal that keeps the view-change escalation alive (and its absence
    // is what lets a stale campaign stand down).
    ArmRequestTimer(cmd);
  });
}

void XftReplica::DisarmRequestTimer(int32_t client, uint64_t client_seq) {
  auto key = std::make_pair(client, client_seq);
  auto it = request_timers_.find(key);
  if (it != request_timers_.end()) {
    CancelTimer(it->second);
    request_timers_.erase(it);
  }
}

void XftReplica::MaybeExecute() {
  while (true) {
    auto it = slots_.find(exec_cursor_);
    if (it == slots_.end() || !it->second.prepared) break;
    Slot& slot = it->second;
    // XPaxos common case: the WHOLE synchronous group must have
    // replicated (f+1 commits including the leader's implicit one).
    if (static_cast<int>(slot.commits.size()) < f() + 1) break;
    if (!slot.executed) {
      slot.executed = true;
      auto key = std::make_pair(slot.cmd.client, slot.cmd.client_seq);
      std::string result;
      if (results_.count(key) > 0) {
        result = results_[key];
      } else {
        result = dedup_.Apply(&kv_, slot.cmd);
        results_[key] = result;
        executed_commands_.push_back(slot.cmd);
      }
      DisarmRequestTimer(slot.cmd.client, slot.cmd.client_seq);
      auto reply = std::make_shared<ReplyMsg>();
      reply->view = view_;
      reply->client_seq = slot.cmd.client_seq;
      reply->replica = id();
      reply->result = result;
      Send(slot.cmd.client, reply);
      // Lazy replication to every peer: non-group replicas learn the log
      // this way, and a group member that missed a commit quorum (e.g. it
      // installed the view after the quorum formed) catches up instead of
      // stalling behind a gap it can never fill. The attached commit
      // certificate makes one update sufficient: after a mid-commit crash
      // inside the group there may be fewer than f+1 live executors, so
      // counting matching senders could never reach a quorum.
      auto update = std::make_shared<UpdateMsg>();
      update->view = view_;
      update->seq = exec_cursor_;
      update->cmd = slot.cmd;
      const crypto::Digest digest =
          SlotDigest(view_, exec_cursor_, slot.cmd);
      for (const auto& [signer, sig] : slot.commit_sigs) {
        if (sig.signer == signer && options_.registry->Verify(sig, digest)) {
          update->cert.push_back(sig);
        }
      }
      for (sim::NodeId r : Everyone()) {
        if (r != id()) Send(r, update);
      }
    }
    ++exec_cursor_;
  }
}

void XftReplica::RetransmitLiveSlots() {
  // Re-multicast every slot of the current view: members answer duplicate
  // prepares by re-multicasting their commits, so both prepare gaps and
  // commit gaps at a straggling member get refilled.
  for (const auto& [seq, slot] : slots_) {
    if (slot.prepare_msg != nullptr) {
      Multicast(SyncGroup(view_), slot.prepare_msg);
    }
  }
}

void XftReplica::StartViewChange(int64_t new_view) {
  if (new_view <= view_ || (in_view_change_ && new_view <= pending_view_)) {
    return;
  }
  in_view_change_ = true;
  pending_view_ = new_view;

  auto vc = std::make_shared<ViewChangeMsg>();
  vc->new_view = new_view;
  vc->replica = id();
  for (const auto& [seq, slot] : slots_) {
    if (slot.prepared) vc->entries.push_back({seq, slot.cmd, slot.client_sig});
  }
  crypto::Sha256 h;
  h.Update(&new_view, sizeof(new_view));
  vc->sig = options_.registry->Sign(id(), h.Finish());
  Multicast(Everyone(), vc);

  CancelTimer(view_change_timer_);
  view_change_timer_ =
      SetTimer(options_.request_timeout * 2, [this, new_view] {
        if (!in_view_change_ || pending_view_ != new_view) return;
        if (request_timers_.empty()) {
          // Every request that made us suspicious has since been settled:
          // stand down instead of campaigning against a working view.
          in_view_change_ = false;
          pending_view_ = view_;
          return;
        }
        StartViewChange(new_view + 1);
      });
}

void XftReplica::OnMessage(sim::NodeId from, const sim::Message& msg) {
  if (const auto* m = dynamic_cast<const RequestMsg*>(&msg)) {
    if (!ValidRequest(m->cmd, m->client_sig, *options_.registry)) return;
    auto key = std::make_pair(m->cmd.client, m->cmd.client_seq);
    auto done = results_.find(key);
    if (done != results_.end()) {
      auto reply = std::make_shared<ReplyMsg>();
      reply->view = view_;
      reply->client_seq = m->cmd.client_seq;
      reply->replica = id();
      reply->result = done->second;
      Send(m->cmd.client, reply);
      // A retry for a request the leader already executed means some
      // group member is stuck behind a message gap and cannot reply —
      // the cached re-reply alone can never complete the client's f+1
      // quorum. Retransmit so the straggler catches up.
      if (id() == Leader(view_) && !in_view_change_) RetransmitLiveSlots();
      return;
    }
    if (id() == Leader(view_) && !in_view_change_) {
      bool known = false;
      for (const auto& [seq, slot] : slots_) {
        known |= (slot.cmd.client == m->cmd.client &&
                  slot.cmd.client_seq == m->cmd.client_seq);
      }
      if (known) {
        // A retry for a slot we already proposed means some group member
        // is stuck — possibly on an earlier slot than this request's (its
        // execution is in-order).
        RetransmitLiveSlots();
        return;
      }
      auto prepare = std::make_shared<PrepareMsg>();
      prepare->view = view_;
      prepare->seq = next_seq_++;
      prepare->cmd = m->cmd;
      prepare->client_sig = m->client_sig;
      prepare->leader_sig = options_.registry->Sign(
          id(), SlotDigest(view_, prepare->seq, m->cmd));
      slots_[prepare->seq].prepare_msg = prepare;
      Multicast(SyncGroup(view_), prepare);
    } else if (id() != Leader(view_)) {
      Send(Leader(view_), std::make_shared<RequestMsg>(m->cmd, m->client_sig));
      // Every replica (inside or outside the group) watches the request:
      // a faulty synchronous group must be replaced by the whole cluster.
      ArmRequestTimer(m->cmd);
    }
    return;
  }

  if (const auto* m = dynamic_cast<const PrepareMsg*>(&msg)) {
    // Note: a prepare for the CURRENT view is accepted even while this
    // replica campaigns for the next one — if the present leader is alive
    // after all, letting it finish is both safe (view-tagged) and the
    // fastest way back to a stable view.
    if (m->view != view_) return;
    if (from != Leader(view_) || !InSyncGroup()) return;
    if (!ValidRequest(m->cmd, m->client_sig, *options_.registry)) return;
    if (m->leader_sig.signer != Leader(view_) ||
        !options_.registry->Verify(m->leader_sig,
                                   SlotDigest(m->view, m->seq, m->cmd))) {
      return;
    }
    Slot& slot = slots_[m->seq];
    slot.commit_sigs[from] = m->leader_sig;
    if (slot.prepared) {
      // Duplicate prepare = leader-driven retransmission (client retry).
      // Re-multicast our commit: a member that installed the view after
      // the original commit round dropped those commits as wrong-view and
      // can only fill its quorum through a repeat like this.
      if (slot.sent_commit) {
        auto commit = std::make_shared<CommitMsg>();
        commit->view = view_;
        commit->seq = m->seq;
        commit->digest = SlotDigest(view_, m->seq, slot.cmd);
        commit->replica = id();
        commit->sig = options_.registry->Sign(id(), commit->digest);
        Multicast(SyncGroup(view_), commit);
      }
      return;
    }
    slot.prepared = true;
    slot.cmd = m->cmd;
    slot.client_sig = m->client_sig;
    slot.commits.insert(from);  // The leader's prepare is its commit.
    DisarmRequestTimer(m->cmd.client, m->cmd.client_seq);
    ArmRequestTimer(m->cmd);  // Must commit within the timeout now.
    if (!slot.sent_commit && id() != from) {
      slot.sent_commit = true;
      auto commit = std::make_shared<CommitMsg>();
      commit->view = view_;
      commit->seq = m->seq;
      commit->digest = SlotDigest(m->view, m->seq, m->cmd);
      commit->replica = id();
      commit->sig = options_.registry->Sign(id(), commit->digest);
      Multicast(SyncGroup(view_), commit);
      slot.commits.insert(id());
      slot.commit_sigs[id()] = commit->sig;
    }
    MaybeExecute();
    return;
  }

  if (const auto* m = dynamic_cast<const CommitMsg*>(&msg)) {
    if (m->view != view_ || !InSyncGroup()) return;
    if (m->sig.signer != from ||
        !options_.registry->Verify(m->sig, m->digest)) {
      return;
    }
    Slot& slot = slots_[m->seq];
    if (slot.prepared &&
        SlotDigest(m->view, m->seq, slot.cmd) != m->digest) {
      return;  // Mismatched commit.
    }
    slot.commits.insert(from);
    slot.commit_sigs[from] = m->sig;
    MaybeExecute();
    return;
  }

  if (const auto* m = dynamic_cast<const UpdateMsg*>(&msg)) {
    if (m->seq < exec_cursor_) return;  // Already past this position.
    // Validate the commit certificate: f+1 distinct signers over the
    // slot digest. A valid certificate proves the whole synchronous group
    // of m->view replicated this command at this position.
    const crypto::Digest digest = SlotDigest(m->view, m->seq, m->cmd);
    std::set<sim::NodeId> signers;
    for (const crypto::Signature& sig : m->cert) {
      if (sig.signer >= 0 && sig.signer < options_.n &&
          options_.registry->Verify(sig, digest)) {
        signers.insert(sig.signer);
      }
    }
    if (static_cast<int>(signers.size()) < f() + 1) return;
    PendingUpdate& pending = pending_updates_[m->seq];
    if (pending.view <= m->view) pending = {m->view, m->cmd};
    // Adopt in order; certificates from an older era are discarded (their
    // slot numbering no longer matches) and re-arrive with fresh views.
    while (true) {
      auto it = pending_updates_.find(exec_cursor_);
      if (it == pending_updates_.end()) break;
      if (it->second.view != view_) {
        pending_updates_.erase(it);
        break;
      }
      const smr::Command cmd = it->second.cmd;
      auto key = std::make_pair(cmd.client, cmd.client_seq);
      if (results_.count(key) == 0) {
        results_[key] = dedup_.Apply(&kv_, cmd);
        executed_commands_.push_back(cmd);
      }
      // The request is settled for this replica: a still-armed watchdog
      // for it would depose a view that owes us nothing.
      DisarmRequestTimer(cmd.client, cmd.client_seq);
      // Reply as well: adoption may preempt this replica's own commit
      // path (the certificate proves the same commit), and the client
      // may be waiting on this very reply for its f+1 quorum.
      auto reply = std::make_shared<ReplyMsg>();
      reply->view = view_;
      reply->client_seq = cmd.client_seq;
      reply->replica = id();
      reply->result = results_[key];
      Send(cmd.client, reply);
      pending_updates_.erase(it);
      ++exec_cursor_;
    }
    return;
  }

  if (const auto* m = dynamic_cast<const ViewChangeMsg*>(&msg)) {
    crypto::Sha256 h;
    h.Update(&m->new_view, sizeof(m->new_view));
    if (m->sig.signer != m->replica || m->replica != from ||
        !options_.registry->Verify(m->sig, h.Finish())) {
      return;
    }
    if (m->new_view <= view_) return;
    view_changes_[m->new_view][from] = m->entries;

    // Join once a majority-crossing set demands change.
    if (static_cast<int>(view_changes_[m->new_view].size()) >= f() + 1 &&
        (!in_view_change_ || pending_view_ < m->new_view)) {
      StartViewChange(m->new_view);
    }

    if (Leader(m->new_view) == id() &&
        static_cast<int>(view_changes_[m->new_view].size()) >= f() + 1 &&
        built_new_views_.insert(m->new_view).second) {
      std::map<uint64_t, ViewChangeMsg::Entry> merged;
      for (const auto& [r, entries] : view_changes_[m->new_view]) {
        for (const auto& entry : entries) {
          if (!ValidRequest(entry.cmd, entry.client_sig, *options_.registry)) {
            continue;
          }
          merged[entry.seq] = entry;
        }
      }
      auto nv = std::make_shared<NewViewMsg>();
      nv->view = m->new_view;
      // Re-number the merged suffix here, once: every group member adopts
      // these seqs verbatim at install time, so the whole group agrees on
      // the slot numbering even if their execution cursors drifted.
      uint64_t seq = executed_commands_.size() + 1;
      for (const auto& [old_seq, entry] : merged) {
        nv->reissue.push_back(entry);
        nv->reissue.back().seq = seq++;
      }
      crypto::Sha256 nh;
      nh.Update(&nv->view, sizeof(nv->view));
      nv->sig = options_.registry->Sign(id(), nh.Finish());
      Multicast(Everyone(), nv);
    }
    return;
  }

  if (const auto* m = dynamic_cast<const NewViewMsg*>(&msg)) {
    crypto::Sha256 h;
    h.Update(&m->view, sizeof(m->view));
    if (m->sig.signer != Leader(m->view) || from != m->sig.signer ||
        !options_.registry->Verify(m->sig, h.Finish())) {
      return;
    }
    if (m->view < view_ || (m->view == view_ && !in_view_change_)) return;
    // Validate the re-issued suffix before touching any state: a malformed
    // new-view (bad client signature, non-ascending seqs) is ignored whole
    // so that every group member that installs agrees on the numbering.
    uint64_t prev_seq = 0;
    for (const auto& entry : m->reissue) {
      if (entry.seq <= prev_seq ||
          !ValidRequest(entry.cmd, entry.client_sig, *options_.registry)) {
        return;
      }
      prev_seq = entry.seq;
    }
    view_ = m->view;
    in_view_change_ = false;
    pending_view_ = view_;
    CancelTimer(view_change_timer_);
    view_change_timer_ = 0;
    slots_.clear();
    exec_cursor_ = executed_commands_.size() + 1;
    view_changes_.erase(view_changes_.begin(),
                        view_changes_.upper_bound(view_));
    built_new_views_.erase(built_new_views_.begin(),
                           built_new_views_.upper_bound(view_));
    // The new view gets fresh patience: stale per-request watchdogs from
    // the old view would immediately re-depose it.
    for (auto& [key, timer] : request_timers_) CancelTimer(timer);
    request_timers_.clear();

    // Adopt the re-issued suffix straight from the (signed) new-view, so
    // the install and the re-adoption are atomic. Separate prepare
    // messages could race ahead of the new-view in the network and be
    // dropped as wrong-view, leaving a permanent gap below the execution
    // cursor that nothing retransmits.
    if (InSyncGroup()) {
      const bool leading = (id() == Leader(view_));
      if (leading) next_seq_ = executed_commands_.size() + 1;
      for (const auto& entry : m->reissue) {
        Slot& slot = slots_[entry.seq];
        slot.prepared = true;
        slot.cmd = entry.cmd;
        slot.client_sig = entry.client_sig;
        slot.commits.insert(Leader(view_));
        if (leading) {
          // Keep a signed prepare around for the client-retry
          // retransmission path; no need to multicast it now.
          auto prepare = std::make_shared<PrepareMsg>();
          prepare->view = view_;
          prepare->seq = entry.seq;
          prepare->cmd = entry.cmd;
          prepare->client_sig = entry.client_sig;
          prepare->leader_sig = options_.registry->Sign(
              id(), SlotDigest(view_, entry.seq, entry.cmd));
          slot.prepare_msg = prepare;
          next_seq_ = entry.seq + 1;
        } else {
          slot.sent_commit = true;
          auto commit = std::make_shared<CommitMsg>();
          commit->view = view_;
          commit->seq = entry.seq;
          commit->digest = SlotDigest(view_, entry.seq, entry.cmd);
          commit->replica = id();
          commit->sig = options_.registry->Sign(id(), commit->digest);
          Multicast(SyncGroup(view_), commit);
          slot.commits.insert(id());
        }
        ArmRequestTimer(entry.cmd);  // Must commit within the timeout.
      }
      MaybeExecute();
    }
    return;
  }
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

XftClient::XftClient(int n, const crypto::KeyRegistry* registry, int ops,
                     std::string key, sim::Duration retry)
    : n_(n),
      registry_(registry),
      f_((n - 1) / 2),
      ops_(ops),
      key_(std::move(key)),
      retry_(retry) {}

void XftClient::OnStart() {
  seq_ = 1;
  SendCurrent(false);
}

void XftClient::SendCurrent(bool broadcast) {
  if (done()) return;
  smr::Command cmd{id(), seq_, "INC " + key_};
  crypto::Signature sig = registry_->Sign(id(), cmd.Hash());
  if (broadcast) {
    for (int i = 0; i < n_; ++i) {
      Send(i, std::make_shared<XftReplica::RequestMsg>(cmd, sig));
    }
  } else {
    Send(leader_hint_, std::make_shared<XftReplica::RequestMsg>(cmd, sig));
  }
  CancelTimer(retry_timer_);
  retry_timer_ = SetTimer(retry_, [this] { SendCurrent(true); });
}

void XftClient::OnMessage(sim::NodeId from, const sim::Message& msg) {
  const auto* m = dynamic_cast<const XftReplica::ReplyMsg*>(&msg);
  if (m == nullptr || m->client_seq != seq_ || done()) return;
  reply_votes_[m->result].insert(from);
  leader_hint_ = m->view % n_;
  // f+1 matching replies = the whole synchronous group agrees.
  if (static_cast<int>(reply_votes_[m->result].size()) >= f_ + 1) {
    results_.push_back(m->result);
    reply_votes_.clear();
    ++completed_;
    ++seq_;
    if (done()) {
      CancelTimer(retry_timer_);
    } else {
      SendCurrent(false);
    }
  }
}

}  // namespace consensus40::xft
