#ifndef CONSENSUS40_XFT_XFT_H_
#define CONSENSUS40_XFT_XFT_H_

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "crypto/sha256.h"
#include "crypto/signatures.h"
#include "sim/simulation.h"
#include "smr/command.h"
#include "smr/state_machine.h"

namespace consensus40::xft {

/// The XFT anarchy predicate: with c crash-faulty, m Byzantine, and p
/// correct-but-partitioned replicas out of n, the system is "in anarchy"
/// iff  m > 0  AND  c + m + p > floor((n-1)/2).  XPaxos guarantees safety
/// in every execution that never enters anarchy.
bool InAnarchy(int n, int c, int m, int p);

/// Configuration shared by all replicas of an XFT (XPaxos) cluster.
struct XftOptions {
  /// Cluster size; must be 2f+1 where f bounds the SUM of crash and
  /// non-crash faults (plus partitioned nodes) tolerated outside anarchy.
  int n = 5;
  const crypto::KeyRegistry* registry = nullptr;

  /// Patience before suspecting the synchronous group.
  sim::Duration request_timeout = 300 * sim::kMillisecond;
};

/// An XPaxos replica: view v is served by the *synchronous group*
/// sg(v) = { v%n, v%n+1, ..., v%n+f } (f+1 replicas, first is the leader).
/// The common case touches only the group: prepare + commit among f+1
/// replicas, Paxos-grade cost against crash faults, Byzantine-grade
/// accountability via signatures. A fault inside the group triggers a view
/// change that installs the next group.
class XftReplica : public sim::Process {
 public:
  explicit XftReplica(XftOptions options);

  struct RequestMsg : sim::Message {
    RequestMsg(smr::Command c, crypto::Signature s)
        : cmd(std::move(c)), client_sig(s) {}
    const char* TypeName() const override { return "xft-request"; }
    int ByteSize() const override { return 48 + cmd.ByteSize(); }
    smr::Command cmd;
    crypto::Signature client_sig;
  };
  struct ReplyMsg : sim::Message {
    const char* TypeName() const override { return "xft-reply"; }
    int ByteSize() const override {
      return 24 + static_cast<int>(result.size());
    }
    int64_t view = 0;
    uint64_t client_seq = 0;
    int32_t replica = -1;
    std::string result;
  };
  struct PrepareMsg : sim::Message {
    const char* TypeName() const override { return "xft-prepare"; }
    int ByteSize() const override { return 96 + cmd.ByteSize(); }
    int64_t view = 0;
    uint64_t seq = 0;
    smr::Command cmd;
    crypto::Signature client_sig;
    crypto::Signature leader_sig;
  };
  struct CommitMsg : sim::Message {
    const char* TypeName() const override { return "xft-commit"; }
    int ByteSize() const override { return 88; }
    int64_t view = 0;
    uint64_t seq = 0;
    crypto::Digest digest{};
    int32_t replica = -1;
    crypto::Signature sig;
  };
  /// Lazy replication to replicas outside the synchronous group. Carries
  /// the commit certificate — f+1 signatures over SlotDigest(view, seq,
  /// cmd) — so a single update is self-certifying: a straggler can adopt
  /// it even when fewer than f+1 executors are still alive to vouch.
  struct UpdateMsg : sim::Message {
    const char* TypeName() const override { return "xft-update"; }
    int ByteSize() const override {
      return 56 + cmd.ByteSize() + static_cast<int>(cert.size()) * 48;
    }
    int64_t view = 0;
    uint64_t seq = 0;
    smr::Command cmd;
    std::vector<crypto::Signature> cert;
  };
  struct ViewChangeMsg : sim::Message {
    const char* TypeName() const override { return "xft-view-change"; }
    int ByteSize() const override {
      return 48 + static_cast<int>(entries.size()) * 96;
    }
    int64_t new_view = 0;
    int32_t replica = -1;
    struct Entry {
      uint64_t seq;
      smr::Command cmd;
      crypto::Signature client_sig;
    };
    std::vector<Entry> entries;  ///< Prepared log suffix.
    crypto::Signature sig;
  };
  struct NewViewMsg : sim::Message {
    const char* TypeName() const override { return "xft-new-view"; }
    int ByteSize() const override {
      return 48 + static_cast<int>(reissue.size()) * 96;
    }
    int64_t view = 0;
    std::vector<ViewChangeMsg::Entry> reissue;
    crypto::Signature sig;
  };

  int64_t view() const { return view_; }
  std::vector<sim::NodeId> SyncGroup(int64_t view) const;
  bool InSyncGroup() const;
  sim::NodeId Leader(int64_t view) const { return view % options_.n; }
  uint64_t executed() const {
    return static_cast<uint64_t>(executed_commands_.size());
  }
  const smr::KvStore& kv() const { return kv_; }
  const std::vector<smr::Command>& executed_commands() const {
    return executed_commands_;
  }

  void OnMessage(sim::NodeId from, const sim::Message& msg) override;

 private:
  struct Slot {
    bool prepared = false;
    smr::Command cmd;
    crypto::Signature client_sig;
    std::set<sim::NodeId> commits;
    /// Signatures over SlotDigest(view, seq, cmd), one per committer (the
    /// leader's comes from its prepare). Source of the update certificate.
    std::map<sim::NodeId, crypto::Signature> commit_sigs;
    bool sent_commit = false;
    bool executed = false;
    std::shared_ptr<const PrepareMsg> prepare_msg;
  };

  int f() const { return (options_.n - 1) / 2; }
  void MaybeExecute();
  void ArmRequestTimer(const smr::Command& cmd);
  void DisarmRequestTimer(int32_t client, uint64_t client_seq);
  void RetransmitLiveSlots();
  void StartViewChange(int64_t new_view);
  std::vector<sim::NodeId> Everyone() const;

  XftOptions options_;
  int64_t view_ = 0;
  bool in_view_change_ = false;
  int64_t pending_view_ = 0;
  /// Escalation timer for the in-flight view change. Tracked so a new
  /// campaign (or an install) cancels the previous generation; an
  /// orphaned escalation could otherwise fire against a healthy view.
  uint64_t view_change_timer_ = 0;
  uint64_t next_seq_ = 1;
  uint64_t exec_cursor_ = 1;
  std::map<uint64_t, Slot> slots_;

  smr::KvStore kv_;
  smr::DedupingExecutor dedup_;
  std::vector<smr::Command> executed_commands_;
  std::map<std::pair<int32_t, uint64_t>, std::string> results_;
  std::map<std::pair<int32_t, uint64_t>, uint64_t> request_timers_;

  // Passive-side update application: certified commands buffered until the
  // execution cursor reaches them. Only certificates for the current view
  // are adopted — slot numbering is per-view, so a stale-era certificate
  // could otherwise land at the wrong position.
  struct PendingUpdate {
    int64_t view = 0;
    smr::Command cmd;
  };
  std::map<uint64_t, PendingUpdate> pending_updates_;

  std::map<int64_t, std::map<sim::NodeId, std::vector<ViewChangeMsg::Entry>>>
      view_changes_;
  std::set<int64_t> built_new_views_;
};

/// XFT client: f+1 matching replies (all synchronous-group members).
class XftClient : public sim::Process {
 public:
  XftClient(int n, const crypto::KeyRegistry* registry, int ops,
            std::string key = "x",
            sim::Duration retry = 500 * sim::kMillisecond);

  int completed() const { return completed_; }
  bool done() const { return completed_ >= ops_; }
  const std::vector<std::string>& results() const { return results_; }

  void OnStart() override;
  void OnMessage(sim::NodeId from, const sim::Message& msg) override;

 private:
  void SendCurrent(bool broadcast);

  int n_;
  const crypto::KeyRegistry* registry_;
  int f_;
  int ops_;
  std::string key_;
  sim::Duration retry_;
  int completed_ = 0;
  uint64_t seq_ = 0;
  sim::NodeId leader_hint_ = 0;
  uint64_t retry_timer_ = 0;
  std::map<std::string, std::set<sim::NodeId>> reply_votes_;
  std::vector<std::string> results_;
};

}  // namespace consensus40::xft

#endif  // CONSENSUS40_XFT_XFT_H_
