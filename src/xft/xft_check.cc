/// Checker adapter for XFT (XPaxos): n=2f+1=5. The in-bounds model is
/// crash faults only — XFT's bet is that crash faults and partitions
/// together stay under f, and Byzantine-plus-partition "anarchy" is
/// outside the model — so schedules crash up to f replicas and spike
/// delays, but never cut the network.

#include <memory>
#include <string>

#include "check/adapters.h"
#include "crypto/signatures.h"
#include "sim/byzantine.h"
#include "xft/xft.h"

namespace consensus40::check {
namespace {

class XftCheckAdapter : public ProtocolAdapter {
 public:
  explicit XftCheckAdapter(uint64_t seed, int ops = 4)
      : registry_(seed, kN + 4), ops_(ops) {}

  const char* name() const override { return "xft"; }

  FaultBounds bounds() const override {
    FaultBounds b;
    b.nodes = kN;
    b.max_crashed = (kN - 1) / 2;
    return b;
  }

  void Build(sim::Simulation* sim) override {
    xft::XftOptions opts;
    opts.n = kN;
    opts.registry = &registry_;
    for (int i = 0; i < kN; ++i) {
      replicas_.push_back(sim->Spawn<xft::XftReplica>(opts));
    }
    client_ = sim->Spawn<xft::XftClient>(kN, &registry_, ops_);
  }

  bool Done() const override { return client_->done(); }

  Observation Observe() const override {
    Observation o;
    for (const xft::XftReplica* r : replicas_) {
      std::vector<std::string> log;
      for (const smr::Command& cmd : r->executed_commands()) {
        log.push_back(cmd.ToString());
      }
      o.logs.push_back(std::move(log));
    }
    return o;
  }

 protected:
  static constexpr int kN = 5;
  crypto::KeyRegistry registry_;
  int ops_;
  std::vector<xft::XftReplica*> replicas_;
  xft::XftClient* client_ = nullptr;
};

/// In-bounds Byzantine XFT: one replica may withhold or replay outbound
/// traffic — the non-anarchy slice of XFT's model, where a Byzantine
/// machine exists but the network stays connected and the combined
/// (crash + Byzantine) fault count stays under f. No mutate: a corrupted
/// message plus a delay spike is indistinguishable from the
/// partition-plus-Byzantine "anarchy" XFT explicitly does not claim.
class XftByzantineAdapter : public XftCheckAdapter {
 public:
  explicit XftByzantineAdapter(uint64_t seed)
      : XftCheckAdapter(seed, /*ops=*/12) {}

  const char* name() const override { return "xft_byz"; }

  FaultBounds bounds() const override {
    FaultBounds b = XftCheckAdapter::bounds();
    b.max_byzantine = 1;
    b.byz_first_node = 0;
    b.byz_nodes = kN;
    b.byz_withhold = true;
    b.byz_replay = true;
    return b;
  }

  void Build(sim::Simulation* sim) override {
    XftCheckAdapter::Build(sim);
    byz_.Attach(sim);
  }

 private:
  sim::ByzantineInterposer byz_;
};

}  // namespace

AdapterFactory MakeXftAdapter() {
  return [](uint64_t seed) { return std::make_unique<XftCheckAdapter>(seed); };
}

AdapterFactory MakeXftByzantineAdapter() {
  return [](uint64_t seed) {
    return std::make_unique<XftByzantineAdapter>(seed);
  };
}

}  // namespace consensus40::check
