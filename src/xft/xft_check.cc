/// Checker adapter for XFT (XPaxos): n=2f+1=5. The in-bounds model is
/// crash faults only — XFT's bet is that crash faults and partitions
/// together stay under f, and Byzantine-plus-partition "anarchy" is
/// outside the model — so schedules crash up to f replicas and spike
/// delays, but never cut the network.

#include <memory>
#include <string>

#include "check/adapters.h"
#include "crypto/signatures.h"
#include "xft/xft.h"

namespace consensus40::check {
namespace {

class XftCheckAdapter : public ProtocolAdapter {
 public:
  explicit XftCheckAdapter(uint64_t seed) : registry_(seed, kN + 4) {}

  const char* name() const override { return "xft"; }

  FaultBounds bounds() const override {
    FaultBounds b;
    b.nodes = kN;
    b.max_crashed = (kN - 1) / 2;
    return b;
  }

  void Build(sim::Simulation* sim) override {
    xft::XftOptions opts;
    opts.n = kN;
    opts.registry = &registry_;
    for (int i = 0; i < kN; ++i) {
      replicas_.push_back(sim->Spawn<xft::XftReplica>(opts));
    }
    client_ = sim->Spawn<xft::XftClient>(kN, &registry_, kOps);
  }

  bool Done() const override { return client_->done(); }

  Observation Observe() const override {
    Observation o;
    for (const xft::XftReplica* r : replicas_) {
      std::vector<std::string> log;
      for (const smr::Command& cmd : r->executed_commands()) {
        log.push_back(cmd.ToString());
      }
      o.logs.push_back(std::move(log));
    }
    return o;
  }

 private:
  static constexpr int kN = 5;
  static constexpr int kOps = 4;
  crypto::KeyRegistry registry_;
  std::vector<xft::XftReplica*> replicas_;
  xft::XftClient* client_ = nullptr;
};

}  // namespace

AdapterFactory MakeXftAdapter() {
  return [](uint64_t seed) { return std::make_unique<XftCheckAdapter>(seed); };
}

}  // namespace consensus40::check
