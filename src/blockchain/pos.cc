#include "blockchain/pos.h"

#include <algorithm>
#include <cassert>

namespace consensus40::blockchain {

size_t SelectRandomized(const std::vector<StakeAccount>& accounts, Rng* rng) {
  std::vector<double> weights;
  weights.reserve(accounts.size());
  for (const StakeAccount& account : accounts) {
    weights.push_back(std::max(account.stake, 0.0));
  }
  return rng->WeightedIndex(weights);
}

int SelectByCoinAge(const std::vector<StakeAccount>& accounts,
                    const CoinAgeOptions& options, Rng* rng) {
  std::vector<double> weights;
  weights.reserve(accounts.size());
  bool any = false;
  for (const StakeAccount& account : accounts) {
    if (account.age_days >= options.min_age_days && account.stake > 0) {
      int age = std::min(account.age_days, options.max_age_days);
      weights.push_back(account.stake * age);
      any = true;
    } else {
      weights.push_back(0);
    }
  }
  if (!any) return -1;
  return static_cast<int>(rng->WeightedIndex(weights));
}

PosSimulator::PosSimulator(std::vector<StakeAccount> accounts, Mode mode,
                           CoinAgeOptions options, uint64_t seed)
    : accounts_(std::move(accounts)),
      mode_(mode),
      options_(options),
      rng_(seed) {
  assert(!accounts_.empty());
}

int PosSimulator::Step(double reward) {
  int winner;
  if (mode_ == Mode::kRandomized) {
    winner = static_cast<int>(SelectRandomized(accounts_, &rng_));
  } else {
    winner = SelectByCoinAge(accounts_, options_, &rng_);
  }
  for (auto& account : accounts_) account.age_days += 1;
  if (winner >= 0) {
    accounts_[winner].stake += reward;
    accounts_[winner].age_days = 0;  // Winning "spends" the staked coins.
  }
  wins_.push_back(winner);
  return winner;
}

}  // namespace consensus40::blockchain
