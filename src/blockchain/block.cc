#include "blockchain/block.h"

#include <cstring>

namespace consensus40::blockchain {

Target Target::Max() {
  Target t;
  t.value.fill(0xff);
  return t;
}

Target Target::FromLeadingZeroBits(int bits) {
  Target t;
  t.value.fill(0);
  if (bits >= 256) return t;
  // Set the bit at position `bits` (counting from the most significant).
  int byte = bits / 8;
  int bit = 7 - (bits % 8);
  t.value[byte] = static_cast<uint8_t>(1u << bit);
  // Fill everything below with 0xff so the target is the full range under
  // the leading bit.
  for (size_t i = byte + 1; i < t.value.size(); ++i) t.value[i] = 0xff;
  return t;
}

Target Target::Scaled(uint64_t num, uint64_t den) const {
  // Big-endian multiply by num, then divide by den, byte at a time.
  // Intermediate uses 16-bit per byte with carries in 128-bit.
  Target out;
  if (num == 0 || den == 0) return out;

  // Multiply: process from least significant byte.
  unsigned __int128 carry = 0;
  uint8_t mul[40] = {0};  // Allow 8 bytes of overflow headroom.
  for (int i = 31; i >= 0; --i) {
    unsigned __int128 v =
        static_cast<unsigned __int128>(value[i]) * num + carry;
    mul[i + 8] = static_cast<uint8_t>(v & 0xff);
    carry = v >> 8;
  }
  for (int i = 7; i >= 0 && carry > 0; --i) {
    mul[i] = static_cast<uint8_t>(carry & 0xff);
    carry >>= 8;
  }

  // Divide the 40-byte big-endian number by den.
  unsigned __int128 rem = 0;
  uint8_t div[40] = {0};
  for (int i = 0; i < 40; ++i) {
    unsigned __int128 cur = (rem << 8) | mul[i];
    div[i] = static_cast<uint8_t>(cur / den);
    rem = cur % den;
  }

  // Saturate if anything remains in the overflow headroom.
  for (int i = 0; i < 8; ++i) {
    if (div[i] != 0) return Max();
  }
  std::memcpy(out.value.data(), div + 8, 32);
  // A zero target would make mining impossible; clamp to 1.
  bool zero = true;
  for (uint8_t b : out.value) zero &= (b == 0);
  if (zero) out.value[31] = 1;
  return out;
}

double Target::Difficulty() const {
  // max_target / target using long doubles over the leading 8 bytes.
  long double target_val = 0;
  long double max_val = 0;
  for (int i = 0; i < 32; ++i) {
    target_val = target_val * 256 + value[i];
    max_val = max_val * 256 + 0xff;
  }
  if (target_val <= 0) return 1e300;
  return static_cast<double>(max_val / target_val);
}

crypto::Digest Transaction::Hash() const {
  crypto::Sha256 h;
  h.Update(payload);
  h.Update(&amount, sizeof(amount));
  h.Update(&fee, sizeof(fee));
  return h.Finish();
}

crypto::Digest BlockHeader::Hash() const {
  uint8_t buf[4 + 32 + 32 + 4 + 32 + 8];
  size_t off = 0;
  std::memcpy(buf + off, &version, 4);
  off += 4;
  std::memcpy(buf + off, prev_hash.data(), 32);
  off += 32;
  std::memcpy(buf + off, merkle_root.data(), 32);
  off += 32;
  std::memcpy(buf + off, &timestamp, 4);
  off += 4;
  std::memcpy(buf + off, target.value.data(), 32);
  off += 32;
  std::memcpy(buf + off, &nonce, 8);
  off += 8;
  return crypto::Sha256::DoubleHash(buf, off);
}

std::vector<crypto::Digest> Block::MerkleLeaves() const {
  std::vector<crypto::Digest> leaves;
  // The coinbase (reward) transaction leads, as in Bitcoin.
  crypto::Sha256 coinbase;
  coinbase.Update(&miner, sizeof(miner));
  coinbase.Update(&reward, sizeof(reward));
  leaves.push_back(coinbase.Finish());
  for (const Transaction& tx : txs) leaves.push_back(tx.Hash());
  return leaves;
}

crypto::Digest Block::ComputeMerkleRoot() const {
  return crypto::MerkleRoot(MerkleLeaves());
}

std::optional<uint64_t> MineNonce(BlockHeader* header, uint64_t max_tries) {
  for (uint64_t nonce = 0; nonce < max_tries; ++nonce) {
    header->nonce = nonce;
    if (header->target.IsMetBy(header->Hash())) return nonce;
  }
  return std::nullopt;
}

int64_t BlockReward(uint64_t height, int64_t initial,
                    uint64_t halving_interval) {
  uint64_t halvings = height / halving_interval;
  if (halvings >= 63) return 0;
  return initial >> halvings;
}

}  // namespace consensus40::blockchain
