#ifndef CONSENSUS40_BLOCKCHAIN_MINER_H_
#define CONSENSUS40_BLOCKCHAIN_MINER_H_

#include <map>
#include <memory>
#include <vector>

#include "blockchain/chain.h"
#include "blockchain/mempool.h"
#include "sim/simulation.h"

namespace consensus40::blockchain {

/// Shared parameters of a mining network (macro simulation: block
/// discovery is a Poisson process per miner with rate proportional to
/// hash power and inversely proportional to difficulty, which is exactly
/// the stochastic behaviour of real PoW — see DESIGN.md substitutions).
struct MinerNetworkParams {
  ChainOptions chain;         ///< verify_pow is forced off.
  double initial_hash_total = 1.0;  ///< Calibration hash rate H0.
  /// The difficulty at calibration (initial target's difficulty); filled
  /// by the first miner.
  double initial_difficulty = 0.0;
  /// Max transactions per block.
  size_t block_tx_limit = 100;
};

/// A miner node: gossips transactions, mines on its view of the best
/// chain, broadcasts found blocks, adopts the longest chain it hears
/// about, re-mines on reorgs, and returns reorged-out transactions to its
/// mempool. Subclass and override the virtual hooks to build adversarial
/// miners (e.g. SelfishMiner).
class Miner : public sim::Process {
 public:
  struct BlockMsg : sim::Message {
    explicit BlockMsg(Block b) : block(std::move(b)) {}
    const char* TypeName() const override { return "block"; }
    int ByteSize() const override {
      return 120 + static_cast<int>(block.txs.size()) * 64;
    }
    Block block;
  };
  struct TxMsg : sim::Message {
    explicit TxMsg(Transaction t) : tx(std::move(t)) {}
    const char* TypeName() const override { return "tx"; }
    int ByteSize() const override {
      return 32 + static_cast<int>(tx.payload.size());
    }
    Transaction tx;
  };

  /// `params` is shared by every miner of the network and must outlive
  /// them. `hash_power` is this miner's share (any positive unit).
  Miner(MinerNetworkParams* params, int num_miners, double hash_power);

  const BlockTree& tree() const { return tree_; }
  const Mempool& mempool() const { return mempool_; }
  int blocks_mined() const { return blocks_mined_; }
  double hash_power() const { return hash_power_; }
  /// Total expected hashes this miner ground (energy proxy).
  double expected_hashes() const { return expected_hashes_; }

  /// Changes this miner's hash power (takes effect at the next schedule).
  void SetHashPower(double hash_power);

  /// Submits a client transaction at this node: pool it and gossip it.
  void SubmitTransaction(const Transaction& tx);

  void OnStart() override;
  void OnMessage(sim::NodeId from, const sim::Message& msg) override;

 protected:
  /// The block this miner currently mines on top of. Default: the best
  /// tip. A selfish miner overrides this to extend its private chain.
  virtual crypto::Digest MiningParent() const;

  /// Invoked when the Poisson clock fires: default builds a block on
  /// MiningParent(), adds it locally, and broadcasts it.
  virtual void OnBlockFound();

  /// Invoked after a received block (and any connected orphans) has been
  /// added; old_tip/new_tip allow reorg-aware strategies.
  virtual void OnChainUpdated(const crypto::Digest& old_tip,
                              const crypto::Digest& new_tip);

  /// Invoked for every external block that connected to the tree, before
  /// OnChainUpdated. Lets adversarial strategies track the public chain.
  virtual void OnExternalBlock(const Block& block) { (void)block; }

  /// Builds a candidate block on `parent` with mempool transactions.
  Block BuildBlock(const crypto::Digest& parent);

  /// Adds to the local tree and gossips to all peers.
  void PublishBlock(const Block& block);

  /// (Re)schedules the Poisson mining clock against MiningParent().
  void ScheduleMining();

  MinerNetworkParams* params_;
  int num_miners_;
  double hash_power_;
  BlockTree tree_;
  Mempool mempool_;
  int blocks_mined_ = 0;

 private:
  double MeanTimeToBlockSecs() const;
  void TryConnectOrphans();

  uint64_t mining_timer_ = 0;
  double expected_hashes_ = 0;
  sim::Time last_rate_update_ = 0;
  std::multimap<crypto::Digest, Block> orphans_;  ///< parent hash -> block.
};

/// The Eyal–Sirer selfish miner: withholds found blocks to build a private
/// lead, publishes just enough to orphan honest work. Profitable above
/// roughly a third of the network hash rate (with gamma ~ 0).
class SelfishMiner : public Miner {
 public:
  SelfishMiner(MinerNetworkParams* params, int num_miners, double hash_power)
      : Miner(params, num_miners, hash_power) {}

  int blocks_withheld_total() const { return withheld_total_; }
  int private_lead() const { return static_cast<int>(private_blocks_.size()); }

 protected:
  crypto::Digest MiningParent() const override;
  void OnBlockFound() override;
  void OnChainUpdated(const crypto::Digest& old_tip,
                      const crypto::Digest& new_tip) override;
  void OnExternalBlock(const Block& block) override;

 private:
  void PublishFront(size_t count);

  std::vector<Block> private_blocks_;  ///< Unpublished private suffix.
  uint64_t public_height_ = 0;  ///< Highest height of any published block.
  int withheld_total_ = 0;
};

}  // namespace consensus40::blockchain

#endif  // CONSENSUS40_BLOCKCHAIN_MINER_H_
