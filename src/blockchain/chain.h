#ifndef CONSENSUS40_BLOCKCHAIN_CHAIN_H_
#define CONSENSUS40_BLOCKCHAIN_CHAIN_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "blockchain/block.h"
#include "common/status.h"

namespace consensus40::blockchain {

/// Chain configuration.
struct ChainOptions {
  /// Desired seconds between blocks (600 on Bitcoin mainnet).
  uint32_t block_interval_secs = 600;
  /// Retarget every this many blocks (2016 on mainnet).
  uint64_t retarget_interval = 2016;
  /// Initial target.
  Target initial_target = Target::FromLeadingZeroBits(8);
  /// Initial block reward and halving period (50 BTC / 210,000).
  int64_t initial_reward = 50;
  uint64_t halving_interval = 210000;
  /// If false, AddBlock skips the PoW check (macro mining simulation).
  bool verify_pow = true;
};

/// A block tree with the longest-(most-work)-chain rule: tracks every
/// received block, cumulative work per tip, the best chain, forks, and
/// reorganizations; computes retargets and rewards.
class BlockTree {
 public:
  explicit BlockTree(ChainOptions options);

  /// Validates and inserts a block. Errors: unknown parent (orphan),
  /// bad PoW, wrong difficulty, bad merkle root.
  Status AddBlock(const Block& block);

  /// Hash of the best tip (genesis digest initially = zero digest).
  const crypto::Digest& BestTip() const { return best_tip_; }
  uint64_t BestHeight() const;
  double BestWork() const;

  /// The expected target for a block extending `parent_hash` (handles the
  /// retarget boundary).
  Target NextTarget(const crypto::Digest& parent_hash) const;

  /// Reward for a block at the given height.
  int64_t RewardAt(uint64_t height) const;

  /// Block lookup.
  const Block* GetBlock(const crypto::Digest& hash) const;
  uint64_t HeightOf(const crypto::Digest& hash) const;

  /// Best-chain hashes from genesis (exclusive) to the tip (inclusive).
  std::vector<crypto::Digest> BestChain() const;

  /// True iff `hash` is on the current best chain.
  bool OnBestChain(const crypto::Digest& hash) const;

  /// Number of blocks ever received that are NOT on the best chain —
  /// the fork/orphan count ("aborted" blocks in the deck).
  int StaleBlocks() const;

  /// Number of reorganizations (best-tip switches to a different branch).
  int reorgs() const { return reorgs_; }

  /// Confirmations of `hash` on the best chain (0 if off-chain).
  int Confirmations(const crypto::Digest& hash) const;

  /// Sum of coinbase rewards per miner along the best chain.
  std::map<int32_t, int64_t> RewardsByMiner() const;

  /// Builds the merkle inclusion proof for `tx_hash` inside the block
  /// `block_hash` (what a full node serves to SPV light clients). Errors:
  /// unknown block, transaction not in it.
  Result<crypto::MerkleProof> ProveInclusion(
      const crypto::Digest& block_hash, const crypto::Digest& tx_hash) const;

  /// Total number of blocks stored (including stale branches).
  size_t TotalBlocks() const { return entries_.size(); }

  const ChainOptions& options() const { return options_; }

 private:
  struct Entry {
    Block block;
    uint64_t height = 0;
    double work = 0;  ///< Cumulative work from genesis.
    uint32_t timestamp = 0;
  };

  const Entry* GetEntry(const crypto::Digest& hash) const;

  ChainOptions options_;
  std::map<crypto::Digest, Entry> entries_;
  crypto::Digest best_tip_{};  ///< Zero digest = genesis sentinel.
  int reorgs_ = 0;
};

}  // namespace consensus40::blockchain

#endif  // CONSENSUS40_BLOCKCHAIN_CHAIN_H_
