#ifndef CONSENSUS40_BLOCKCHAIN_BLOCK_H_
#define CONSENSUS40_BLOCKCHAIN_BLOCK_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "crypto/merkle.h"
#include "crypto/sha256.h"

namespace consensus40::blockchain {

/// A 256-bit proof-of-work target, big-endian. A block hash must compare
/// strictly below the target. Difficulty = max_target / target.
struct Target {
  crypto::Digest value{};

  /// The easiest target (all 0xff).
  static Target Max();

  /// A target requiring ~`bits` leading zero bits.
  static Target FromLeadingZeroBits(int bits);

  bool IsMetBy(const crypto::Digest& hash) const {
    return crypto::DigestLess(hash, value);
  }

  /// Multiplies the target by num/den (saturating at Max), the retarget
  /// operation: new_target = old_target * actual_span / expected_span.
  Target Scaled(uint64_t num, uint64_t den) const;

  /// Approximate difficulty as a double (max_target / target).
  double Difficulty() const;

  bool operator==(const Target& o) const { return value == o.value; }
};

/// A transaction. The payload is opaque to consensus; `fee` and `amount`
/// feed the reward accounting in the mining simulation.
struct Transaction {
  std::string payload;
  int64_t amount = 0;
  int64_t fee = 0;

  crypto::Digest Hash() const;
};

/// The Bitcoin-style 80-byte block header.
struct BlockHeader {
  uint32_t version = 2;
  crypto::Digest prev_hash{};
  crypto::Digest merkle_root{};
  uint32_t timestamp = 0;  ///< Seconds (virtual time).
  Target target;           ///< "Bits", expanded.
  uint64_t nonce = 0;

  /// Serializes and double-SHA256 hashes the header (Bitcoin's rule).
  crypto::Digest Hash() const;
};

/// A full block: header + coinbase (reward) + transactions.
struct Block {
  BlockHeader header;
  int32_t miner = -1;       ///< Who gets the reward.
  int64_t reward = 0;       ///< Coinbase value (halving applies).
  std::vector<Transaction> txs;

  /// Merkle leaves in canonical order: coinbase digest, then transaction
  /// digests.
  std::vector<crypto::Digest> MerkleLeaves() const;

  /// Recomputes the merkle root from the miner/reward + transactions.
  crypto::Digest ComputeMerkleRoot() const;

  crypto::Digest Hash() const { return header.Hash(); }
};

/// Grinds nonces until header.Hash() meets the target or max_tries is
/// exhausted. Returns the successful nonce. This is the real thing: each
/// try is a double SHA-256 of the serialized header.
std::optional<uint64_t> MineNonce(BlockHeader* header, uint64_t max_tries);

/// The Bitcoin reward schedule: `initial` coins halved every
/// `halving_interval` blocks (50 BTC / 210,000 in mainnet).
int64_t BlockReward(uint64_t height, int64_t initial,
                    uint64_t halving_interval);

}  // namespace consensus40::blockchain

#endif  // CONSENSUS40_BLOCKCHAIN_BLOCK_H_
