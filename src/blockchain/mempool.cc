#include "blockchain/mempool.h"

#include <algorithm>

namespace consensus40::blockchain {

bool Mempool::Add(const Transaction& tx) {
  crypto::Digest hash = tx.Hash();
  if (known_.count(hash) > 0) return false;
  known_[hash] = tx;
  if (confirmed_.count(hash) == 0) pending_[hash] = tx;
  return true;
}

std::vector<Transaction> Mempool::Select(size_t max) const {
  std::vector<Transaction> picked;
  picked.reserve(std::min(max, pending_.size()));
  for (const auto& [hash, tx] : pending_) picked.push_back(tx);
  std::sort(picked.begin(), picked.end(),
            [](const Transaction& a, const Transaction& b) {
              return a.fee > b.fee;
            });
  if (picked.size() > max) picked.resize(max);
  return picked;
}

void Mempool::SyncWithChain(const BlockTree& tree) {
  std::set<crypto::Digest> on_chain;
  for (const crypto::Digest& block_hash : tree.BestChain()) {
    const Block* block = tree.GetBlock(block_hash);
    for (const Transaction& tx : block->txs) {
      crypto::Digest hash = tx.Hash();
      on_chain.insert(hash);
      known_.emplace(hash, tx);
    }
  }
  // Newly confirmed leave the pool.
  for (const crypto::Digest& hash : on_chain) {
    confirmed_.insert(hash);
    pending_.erase(hash);
  }
  // Confirmed transactions that fell off the best chain (reorg) are
  // aborted and resubmitted: back to pending.
  for (auto it = confirmed_.begin(); it != confirmed_.end();) {
    if (on_chain.count(*it) == 0) {
      pending_[*it] = known_[*it];
      ++resubmissions_;
      it = confirmed_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace consensus40::blockchain
