#ifndef CONSENSUS40_BLOCKCHAIN_MEMPOOL_H_
#define CONSENSUS40_BLOCKCHAIN_MEMPOOL_H_

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "blockchain/block.h"
#include "blockchain/chain.h"

namespace consensus40::blockchain {

/// A miner's pending-transaction pool. Tracks which transactions are
/// confirmed on the current best chain; after a reorganization, the
/// transactions of abandoned blocks return to the pool — the deck's
/// "transactions in this block are aborted/resubmitted".
class Mempool {
 public:
  /// Adds a transaction heard from a client or a peer. Duplicates (by
  /// hash) are ignored. Returns true if newly added.
  bool Add(const Transaction& tx);

  /// Picks up to `max` pending transactions for a new block, highest fee
  /// first (the standard miner policy).
  std::vector<Transaction> Select(size_t max) const;

  /// Synchronizes with the chain after any AddBlock: marks best-chain
  /// transactions confirmed and returns abandoned ones to pending. Call
  /// with the tree after each tip change.
  void SyncWithChain(const BlockTree& tree);

  /// True if the transaction is in a best-chain block.
  bool IsConfirmed(const crypto::Digest& tx_hash) const {
    return confirmed_.count(tx_hash) > 0;
  }
  bool IsPending(const crypto::Digest& tx_hash) const {
    return pending_.count(tx_hash) > 0;
  }
  size_t pending_count() const { return pending_.size(); }
  size_t confirmed_count() const { return confirmed_.size(); }
  /// Cumulative number of transactions that fell out of the best chain in
  /// reorgs (aborted/resubmitted).
  int resubmissions() const { return resubmissions_; }

 private:
  std::map<crypto::Digest, Transaction> pending_;
  std::set<crypto::Digest> confirmed_;
  std::map<crypto::Digest, Transaction> known_;  ///< Everything ever seen.
  int resubmissions_ = 0;
};

}  // namespace consensus40::blockchain

#endif  // CONSENSUS40_BLOCKCHAIN_MEMPOOL_H_
