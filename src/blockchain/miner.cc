#include "blockchain/miner.h"

#include <cassert>

namespace consensus40::blockchain {

Miner::Miner(MinerNetworkParams* params, int num_miners, double hash_power)
    : params_(params),
      num_miners_(num_miners),
      hash_power_(hash_power),
      tree_([params] {
        ChainOptions opts = params->chain;
        opts.verify_pow = false;  // Macro simulation.
        return opts;
      }()) {
  assert(hash_power > 0);
  if (params_->initial_difficulty <= 0) {
    params_->initial_difficulty = params_->chain.initial_target.Difficulty();
  }
}

crypto::Digest Miner::MiningParent() const { return tree_.BestTip(); }

double Miner::MeanTimeToBlockSecs() const {
  // rate_i = h_i * D0 / (D * H0 * interval): calibrated so that at the
  // initial difficulty and hash rate the whole network finds one block per
  // block_interval_secs; doubling the hash power halves the interval until
  // the retarget doubles D.
  double difficulty = tree_.NextTarget(MiningParent()).Difficulty();
  double rate = hash_power_ * params_->initial_difficulty /
                (difficulty * params_->initial_hash_total *
                 params_->chain.block_interval_secs);
  return 1.0 / rate;
}

void Miner::SetHashPower(double hash_power) {
  assert(hash_power > 0);
  hash_power_ = hash_power;
  ScheduleMining();
}

void Miner::SubmitTransaction(const Transaction& tx) {
  if (!mempool_.Add(tx)) return;
  auto msg = std::make_shared<TxMsg>(tx);
  for (int peer = 0; peer < num_miners_; ++peer) {
    if (peer != id()) Send(peer, msg);
  }
}

void Miner::OnStart() { ScheduleMining(); }

void Miner::ScheduleMining() {
  // Energy proxy: hash work ground since the last schedule point.
  expected_hashes_ +=
      hash_power_ * static_cast<double>(Now() - last_rate_update_) / 1e6;
  last_rate_update_ = Now();

  CancelTimer(mining_timer_);
  double mean_secs = MeanTimeToBlockSecs();
  double delay_secs = rng().Exponential(mean_secs);
  auto delay = static_cast<sim::Duration>(delay_secs * sim::kSecond);
  if (delay < 1) delay = 1;
  mining_timer_ = SetTimer(delay, [this] { OnBlockFound(); });
}

Block Miner::BuildBlock(const crypto::Digest& parent) {
  Block block;
  block.header.prev_hash = parent;
  block.header.timestamp = static_cast<uint32_t>(Now() / sim::kSecond);
  block.header.target = tree_.NextTarget(parent);
  block.miner = id();
  block.reward = tree_.RewardAt(tree_.HeightOf(parent) + 1);
  block.txs = mempool_.Select(params_->block_tx_limit);
  block.header.merkle_root = block.ComputeMerkleRoot();
  block.header.nonce = rng().Next();  // Macro sim: PoW not re-verified.
  return block;
}

void Miner::PublishBlock(const Block& block) {
  tree_.AddBlock(block);
  mempool_.SyncWithChain(tree_);
  auto msg = std::make_shared<BlockMsg>(block);
  for (int peer = 0; peer < num_miners_; ++peer) {
    if (peer != id()) Send(peer, msg);
  }
}

void Miner::OnBlockFound() {
  Block block = BuildBlock(MiningParent());
  Status s = tree_.AddBlock(block);
  if (s.ok()) {
    ++blocks_mined_;
    mempool_.SyncWithChain(tree_);
    auto msg = std::make_shared<BlockMsg>(block);
    for (int peer = 0; peer < num_miners_; ++peer) {
      if (peer != id()) Send(peer, msg);
    }
  }
  ScheduleMining();
}

void Miner::OnChainUpdated(const crypto::Digest& old_tip,
                           const crypto::Digest& new_tip) {
  if (!(old_tip == new_tip)) {
    // Longest-chain rule: abandon the current attempt, mine on the new tip
    // (the exponential clock is memoryless, so resampling is faithful);
    // reorged-out transactions went back to the mempool in SyncWithChain.
    ScheduleMining();
  }
}

void Miner::TryConnectOrphans() {
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto it = orphans_.begin(); it != orphans_.end();) {
      if (tree_.GetBlock(it->first) != nullptr ||
          it->first == crypto::Digest{}) {
        Block block = it->second;
        it = orphans_.erase(it);
        tree_.AddBlock(block);
        progress = true;
      } else {
        ++it;
      }
    }
  }
}

void Miner::OnMessage(sim::NodeId, const sim::Message& msg) {
  if (const auto* t = dynamic_cast<const TxMsg*>(&msg)) {
    mempool_.Add(t->tx);
    return;
  }
  const auto* m = dynamic_cast<const BlockMsg*>(&msg);
  if (m == nullptr) return;
  crypto::Digest old_tip = tree_.BestTip();
  Status s = tree_.AddBlock(m->block);
  if (s.IsNotFound()) {
    // Orphan: parent still in flight.
    orphans_.insert({m->block.header.prev_hash, m->block});
    return;
  }
  TryConnectOrphans();
  mempool_.SyncWithChain(tree_);
  OnExternalBlock(m->block);
  OnChainUpdated(old_tip, tree_.BestTip());
}

// ---------------------------------------------------------------------------
// Selfish miner (Eyal & Sirer 2014)
// ---------------------------------------------------------------------------

crypto::Digest SelfishMiner::MiningParent() const {
  if (!private_blocks_.empty()) return private_blocks_.back().Hash();
  return tree_.BestTip();
}

void SelfishMiner::OnExternalBlock(const Block& block) {
  uint64_t h = tree_.HeightOf(block.Hash());
  public_height_ = std::max(public_height_, h);
}

void SelfishMiner::PublishFront(size_t count) {
  for (size_t i = 0; i < count && !private_blocks_.empty(); ++i) {
    const Block& block = private_blocks_.front();
    public_height_ =
        std::max(public_height_, tree_.HeightOf(block.Hash()));
    auto msg = std::make_shared<BlockMsg>(block);
    for (int peer = 0; peer < num_miners_; ++peer) {
      if (peer != id()) Send(peer, msg);
    }
    private_blocks_.erase(private_blocks_.begin());
  }
}

void SelfishMiner::OnBlockFound() {
  // Extend the private chain and keep the block to ourselves.
  Block block = BuildBlock(MiningParent());
  if (tree_.AddBlock(block).ok()) {
    ++blocks_mined_;
    ++withheld_total_;
    private_blocks_.push_back(block);
    mempool_.SyncWithChain(tree_);
  }
  ScheduleMining();
}

void SelfishMiner::OnChainUpdated(const crypto::Digest& /*old_tip*/,
                                  const crypto::Digest& /*new_tip*/) {
  if (private_blocks_.empty()) {
    ScheduleMining();  // Honest behaviour while we hold no lead.
    return;
  }
  uint64_t private_height = tree_.HeightOf(private_blocks_.back().Hash());
  uint64_t public_height = public_height_;

  if (private_height < public_height) {
    // The honest chain got ahead: our withheld work is worthless.
    private_blocks_.clear();
    ScheduleMining();
    return;
  }
  uint64_t lead = private_height - public_height;
  if (lead == 0) {
    // They caught up: race — publish everything and mine on our branch.
    PublishFront(private_blocks_.size() + 1);
  } else if (lead == 1) {
    // Classic selfish-mining endgame: reveal the whole private chain; it
    // is one longer than the public one, orphaning the honest block.
    PublishFront(private_blocks_.size() + 1);
  } else {
    // Comfortable lead: reveal one block to match their progress.
    PublishFront(1);
  }
  ScheduleMining();
}

}  // namespace consensus40::blockchain
