#include "blockchain/chain.h"

#include <algorithm>

namespace consensus40::blockchain {

BlockTree::BlockTree(ChainOptions options) : options_(options) {
  // Implicit genesis entry under the zero digest.
  Entry genesis;
  genesis.height = 0;
  genesis.work = 0;
  genesis.timestamp = 0;
  genesis.block.header.target = options_.initial_target;
  entries_[crypto::Digest{}] = genesis;
}

const BlockTree::Entry* BlockTree::GetEntry(const crypto::Digest& hash) const {
  auto it = entries_.find(hash);
  return it == entries_.end() ? nullptr : &it->second;
}

const Block* BlockTree::GetBlock(const crypto::Digest& hash) const {
  const Entry* e = GetEntry(hash);
  return e == nullptr ? nullptr : &e->block;
}

uint64_t BlockTree::HeightOf(const crypto::Digest& hash) const {
  const Entry* e = GetEntry(hash);
  return e == nullptr ? 0 : e->height;
}

uint64_t BlockTree::BestHeight() const { return HeightOf(best_tip_); }

double BlockTree::BestWork() const {
  const Entry* e = GetEntry(best_tip_);
  return e == nullptr ? 0 : e->work;
}

Target BlockTree::NextTarget(const crypto::Digest& parent_hash) const {
  const Entry* parent = GetEntry(parent_hash);
  if (parent == nullptr) return options_.initial_target;
  uint64_t next_height = parent->height + 1;
  Target parent_target = parent->height == 0 ? options_.initial_target
                                             : parent->block.header.target;
  if (next_height % options_.retarget_interval != 0 || parent->height == 0) {
    return parent_target;
  }
  // Retarget: compare the actual time of the last interval against the
  // expected time, clamped to [1/4, 4] as in Bitcoin.
  const Entry* span_start = parent;
  for (uint64_t i = 0; i + 1 < options_.retarget_interval; ++i) {
    const Entry* prev = GetEntry(span_start->block.header.prev_hash);
    if (prev == nullptr || prev->height == 0) break;
    span_start = prev;
  }
  uint64_t actual = parent->timestamp > span_start->timestamp
                        ? parent->timestamp - span_start->timestamp
                        : 1;
  uint64_t expected =
      options_.block_interval_secs * (options_.retarget_interval - 1);
  if (expected == 0) expected = 1;
  uint64_t lo = expected / 4, hi = expected * 4;
  actual = std::clamp<uint64_t>(actual, std::max<uint64_t>(lo, 1), hi);
  return parent_target.Scaled(actual, expected);
}

int64_t BlockTree::RewardAt(uint64_t height) const {
  return BlockReward(height, options_.initial_reward,
                     options_.halving_interval);
}

Status BlockTree::AddBlock(const Block& block) {
  crypto::Digest hash = block.Hash();
  if (entries_.count(hash) > 0) {
    return Status::AlreadyExists("duplicate block");
  }
  const Entry* parent = GetEntry(block.header.prev_hash);
  if (parent == nullptr) {
    return Status::NotFound("orphan block: unknown parent");
  }
  if (!(block.header.merkle_root == block.ComputeMerkleRoot())) {
    return Status::Corruption("merkle root mismatch");
  }
  Target expected = NextTarget(block.header.prev_hash);
  if (!(block.header.target == expected)) {
    return Status::InvalidArgument("wrong difficulty target");
  }
  if (options_.verify_pow && !block.header.target.IsMetBy(hash)) {
    return Status::InvalidArgument("insufficient proof of work");
  }
  if (block.reward != RewardAt(parent->height + 1)) {
    return Status::InvalidArgument("wrong block reward");
  }

  Entry entry;
  entry.block = block;
  entry.height = parent->height + 1;
  entry.work = parent->work + block.header.target.Difficulty();
  entry.timestamp = block.header.timestamp;
  entries_[hash] = entry;

  const Entry* best = GetEntry(best_tip_);
  if (best == nullptr || entry.work > best->work) {
    // Longest(-work) chain rule; count branch switches as reorgs.
    if (best != nullptr && best_tip_ != block.header.prev_hash &&
        !(best_tip_ == crypto::Digest{})) {
      ++reorgs_;
    }
    best_tip_ = hash;
  }
  return Status::Ok();
}

std::vector<crypto::Digest> BlockTree::BestChain() const {
  std::vector<crypto::Digest> chain;
  crypto::Digest cursor = best_tip_;
  while (!(cursor == crypto::Digest{})) {
    chain.push_back(cursor);
    const Entry* e = GetEntry(cursor);
    if (e == nullptr) break;
    cursor = e->block.header.prev_hash;
  }
  std::reverse(chain.begin(), chain.end());
  return chain;
}

bool BlockTree::OnBestChain(const crypto::Digest& hash) const {
  const Entry* target = GetEntry(hash);
  if (target == nullptr) return false;
  crypto::Digest cursor = best_tip_;
  while (!(cursor == crypto::Digest{})) {
    if (cursor == hash) return true;
    const Entry* e = GetEntry(cursor);
    if (e == nullptr || e->height < target->height) return false;
    cursor = e->block.header.prev_hash;
  }
  return hash == crypto::Digest{};
}

int BlockTree::StaleBlocks() const {
  int stale = 0;
  for (const auto& [hash, entry] : entries_) {
    if (entry.height == 0) continue;  // Genesis.
    if (!OnBestChain(hash)) ++stale;
  }
  return stale;
}

int BlockTree::Confirmations(const crypto::Digest& hash) const {
  if (!OnBestChain(hash)) return 0;
  const Entry* e = GetEntry(hash);
  return static_cast<int>(BestHeight() - e->height) + 1;
}

Result<crypto::MerkleProof> BlockTree::ProveInclusion(
    const crypto::Digest& block_hash, const crypto::Digest& tx_hash) const {
  const Block* block = GetBlock(block_hash);
  if (block == nullptr) return Status::NotFound("unknown block");
  std::vector<crypto::Digest> leaves = block->MerkleLeaves();
  for (size_t i = 0; i < block->txs.size(); ++i) {
    if (block->txs[i].Hash() == tx_hash) {
      // Leaf index i+1: the coinbase occupies leaf 0.
      return crypto::BuildMerkleProof(leaves, i + 1);
    }
  }
  return Status::NotFound("transaction not in block");
}

std::map<int32_t, int64_t> BlockTree::RewardsByMiner() const {
  std::map<int32_t, int64_t> rewards;
  for (const crypto::Digest& hash : BestChain()) {
    const Entry* e = GetEntry(hash);
    rewards[e->block.miner] += e->block.reward;
  }
  return rewards;
}

}  // namespace consensus40::blockchain
