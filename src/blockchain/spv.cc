#include "blockchain/spv.h"

namespace consensus40::blockchain {

Status SpvClient::AddHeader(const BlockHeader& header) {
  crypto::Digest hash = header.Hash();
  if (headers_.count(hash) > 0) return Status::AlreadyExists("duplicate");
  uint64_t height;
  double parent_work;
  if (header.prev_hash == crypto::Digest{}) {
    height = 1;
    parent_work = 0;
  } else {
    auto parent = headers_.find(header.prev_hash);
    if (parent == headers_.end()) {
      return Status::NotFound("orphan header: unknown parent");
    }
    height = parent->second.height + 1;
    parent_work = parent->second.work;
  }
  if (options_.verify_pow && !header.target.IsMetBy(hash)) {
    return Status::InvalidArgument("insufficient proof of work");
  }
  Entry entry{header, height, parent_work + header.target.Difficulty()};
  double best_work =
      headers_.count(best_tip_) > 0 ? headers_[best_tip_].work : 0;
  headers_[hash] = entry;
  if (entry.work > best_work) best_tip_ = hash;
  return Status::Ok();
}

uint64_t SpvClient::BestHeight() const {
  auto it = headers_.find(best_tip_);
  return it == headers_.end() ? 0 : it->second.height;
}

bool SpvClient::OnBestChain(const crypto::Digest& hash) const {
  crypto::Digest cursor = best_tip_;
  while (!(cursor == crypto::Digest{})) {
    if (cursor == hash) return true;
    auto it = headers_.find(cursor);
    if (it == headers_.end()) return false;
    cursor = it->second.header.prev_hash;
  }
  return false;
}

Status SpvClient::VerifyPayment(const crypto::Digest& tx_hash,
                                const crypto::MerkleProof& proof,
                                const crypto::Digest& block_hash) const {
  auto it = headers_.find(block_hash);
  if (it == headers_.end()) return Status::NotFound("unknown header");
  if (!OnBestChain(block_hash)) {
    return Status::FailedPrecondition("header not on the best chain");
  }
  int confirmations =
      static_cast<int>(BestHeight() - it->second.height) + 1;
  if (confirmations < options_.min_confirmations) {
    return Status::FailedPrecondition(
        "only " + std::to_string(confirmations) + " confirmations");
  }
  if (!crypto::VerifyMerkleProof(tx_hash, proof,
                                 it->second.header.merkle_root)) {
    return Status::InvalidArgument("merkle proof does not verify");
  }
  return Status::Ok();
}

}  // namespace consensus40::blockchain
