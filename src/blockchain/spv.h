#ifndef CONSENSUS40_BLOCKCHAIN_SPV_H_
#define CONSENSUS40_BLOCKCHAIN_SPV_H_

#include <map>

#include "blockchain/block.h"
#include "common/status.h"
#include "crypto/merkle.h"

namespace consensus40::blockchain {

/// A simplified-payment-verification (SPV) light client: stores ONLY the
/// 80-byte block headers, follows the most-work header chain, and verifies
/// transaction payments via merkle proofs served by full nodes — the deck's
/// "suboptimal light client support" bullet, implemented so its trade-offs
/// can be measured (header storage vs full blocks; proof trust model).
class SpvClient {
 public:
  struct Options {
    /// If true, each header's hash must actually meet its target (real
    /// micro-mined chains); macro simulations turn this off.
    bool verify_pow = true;
    /// Confirmations required before a payment is accepted.
    int min_confirmations = 6;
  };

  explicit SpvClient(Options options) : options_(options) {}
  SpvClient() : SpvClient(Options{}) {}

  /// Ingests a header whose parent is known (genesis = zero digest).
  /// Errors: orphan header, failed PoW.
  Status AddHeader(const BlockHeader& header);

  uint64_t BestHeight() const;
  const crypto::Digest& BestTip() const { return best_tip_; }
  /// Number of headers stored (the light client's entire footprint).
  size_t HeaderCount() const { return headers_.size(); }

  /// Verifies a payment: the transaction digest must prove into the merkle
  /// root of a known header that sits on the best header chain with at
  /// least min_confirmations headers on top.
  ///
  /// Returns Ok, or: NotFound (unknown header), FailedPrecondition (header
  /// off the best chain / insufficient confirmations), InvalidArgument
  /// (merkle proof does not verify).
  Status VerifyPayment(const crypto::Digest& tx_hash,
                       const crypto::MerkleProof& proof,
                       const crypto::Digest& block_hash) const;

 private:
  struct Entry {
    BlockHeader header;
    uint64_t height = 0;
    double work = 0;
  };

  bool OnBestChain(const crypto::Digest& hash) const;

  Options options_;
  std::map<crypto::Digest, Entry> headers_;
  crypto::Digest best_tip_{};
};

}  // namespace consensus40::blockchain

#endif  // CONSENSUS40_BLOCKCHAIN_SPV_H_
