#ifndef CONSENSUS40_BLOCKCHAIN_POS_H_
#define CONSENSUS40_BLOCKCHAIN_POS_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace consensus40::blockchain {

/// A proof-of-stake account.
struct StakeAccount {
  double stake = 0;
  int age_days = 0;  ///< Days since the coins last moved / last won.
};

/// Randomized block selection: "a stakeholder who has p fraction of the
/// coins creates a new block with p probability" — a weighted draw mixing
/// a random number with the stake size.
size_t SelectRandomized(const std::vector<StakeAccount>& accounts, Rng* rng);

/// Coin-age parameters from the deck: coins compete only after 30 unspent
/// days, and the age bonus saturates at 90 days.
struct CoinAgeOptions {
  int min_age_days = 30;
  int max_age_days = 90;
};

/// Coin-age-based selection: weight = stake * age, for eligible accounts
/// (age >= min). Returns the winner's index, or -1 if nobody is eligible.
int SelectByCoinAge(const std::vector<StakeAccount>& accounts,
                    const CoinAgeOptions& options, Rng* rng);

/// A proof-of-stake lottery simulator: each Step() advances one day, picks
/// a validator, pays the reward into its stake, and manages coin ages.
class PosSimulator {
 public:
  enum class Mode { kRandomized, kCoinAge };

  PosSimulator(std::vector<StakeAccount> accounts, Mode mode,
               CoinAgeOptions options, uint64_t seed);

  /// Runs one selection round (one day). Returns the winner (-1 if none).
  int Step(double reward);

  const std::vector<StakeAccount>& accounts() const { return accounts_; }
  const std::vector<int>& wins() const { return wins_; }

 private:
  std::vector<StakeAccount> accounts_;
  Mode mode_;
  CoinAgeOptions options_;
  Rng rng_;
  std::vector<int> wins_;
};

}  // namespace consensus40::blockchain

#endif  // CONSENSUS40_BLOCKCHAIN_POS_H_
