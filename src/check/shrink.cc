#include "check/shrink.h"

#include <algorithm>
#include <vector>

#include "common/thread_pool.h"

namespace consensus40::check {

FaultSchedule ShrinkSchedule(FaultSchedule schedule, const FaultBounds& bounds,
                             const ScheduleTestFn& still_violates,
                             int max_runs, ShrinkStats* stats,
                             ThreadPool* pool) {
  ShrinkStats local;
  ShrinkStats* st = stats != nullptr ? stats : &local;
  st->runs = 0;
  st->removed = 0;
  st->snapped = 0;
  st->speculative = 0;

  // Idempotent on generator output; repairs hand-built inputs up front so
  // the invariant "current schedule is closed-world" holds from run one.
  schedule = RestoreScheduleTail(std::move(schedule), bounds);

  const size_t width =
      pool != nullptr ? static_cast<size_t>(pool->workers()) : 1;

  size_t chunk = std::max<size_t>(1, schedule.actions.size() / 2);
  while (!schedule.actions.empty() && st->runs < max_runs) {
    bool removed_any = false;
    for (size_t start = 0;
         start < schedule.actions.size() && st->runs < max_runs;) {
      // Speculative batch: the next `width` deletion candidates along the
      // scan, all built against the current schedule. The serial scan
      // would evaluate them in this exact order as long as none hits.
      std::vector<size_t> starts;
      for (size_t s = start; s < schedule.actions.size() &&
                             starts.size() < width;
           s += chunk) {
        starts.push_back(s);
      }
      std::vector<FaultSchedule> candidates(starts.size());
      std::vector<char> hits(starts.size(), 0);
      auto evaluate = [&](int, uint64_t k) {
        FaultSchedule c = schedule;
        const size_t s = starts[k];
        const size_t e = std::min(s + chunk, schedule.actions.size());
        c.actions.erase(c.actions.begin() + s, c.actions.begin() + e);
        c = RestoreScheduleTail(std::move(c), bounds);
        // A deletion the repair fully re-appends (e.g. removing the tail
        // heal) cannot shrink the schedule; skip the replay.
        hits[k] = c.actions.size() < schedule.actions.size() &&
                          still_violates(c)
                      ? 1
                      : 0;
        candidates[k] = std::move(c);
      };
      if (pool != nullptr && starts.size() > 1) {
        pool->ParallelFor(starts.size(), evaluate);
      } else {
        for (size_t k = 0; k < starts.size(); ++k) evaluate(0, k);
      }

      // Commit in scan order, keeping only the first hit: the committed
      // decision sequence is byte-identical to the serial scan; whatever
      // was evaluated past the hit (or past the budget) is discarded
      // speculation.
      size_t committed = 0;
      for (size_t k = 0; k < starts.size() && st->runs < max_runs; ++k) {
        ++st->runs;
        ++committed;
        const size_t end =
            std::min(starts[k] + chunk, schedule.actions.size());
        if (hits[k]) {
          // Net of anything the tail repair re-appended.
          st->removed += static_cast<int>(schedule.actions.size() -
                                          candidates[k].actions.size());
          schedule = std::move(candidates[k]);
          removed_any = true;
          // Do not advance: the next chunk slid into `starts[k]`.
          start = starts[k];
          break;
        }
        start = end;
      }
      st->speculative += static_cast<int>(starts.size() - committed);
    }
    if (!removed_any) {
      if (chunk == 1) break;
      chunk = std::max<size_t>(1, chunk / 2);
    }
  }
  return schedule;
}

FaultSchedule CanonicalizeSchedule(FaultSchedule schedule,
                                   const FaultBounds& bounds,
                                   const ScheduleTestFn& still_violates,
                                   ShrinkStats* stats) {
  ShrinkStats local;
  ShrinkStats* st = stats != nullptr ? stats : &local;

  // Rejects (without a replay) any edit that breaks the closed-world
  // tail — snapping could otherwise move a heal ahead of its partition.
  auto well_formed = [&bounds](const FaultSchedule& c) {
    return RestoreScheduleTail(c, bounds).actions.size() == c.actions.size();
  };

  // Coarsest-first time grains: a repro that survives snapping to 100 ms
  // reads (and diffs) better than one snapped to 1 ms.
  static constexpr sim::Duration kGrains[] = {
      100 * sim::kMillisecond, 50 * sim::kMillisecond, 20 * sim::kMillisecond,
      10 * sim::kMillisecond,  5 * sim::kMillisecond,  1 * sim::kMillisecond};

  for (size_t i = 0; i < schedule.actions.size(); ++i) {
    if (schedule.actions[i].aux != 0) {
      FaultSchedule c = schedule;
      c.actions[i].aux = 0;
      ++st->runs;
      if (still_violates(c)) {
        schedule = std::move(c);
        ++st->snapped;
      }
    }
    for (sim::Duration g : kGrains) {
      const sim::Time at = schedule.actions[i].at;
      if (at % g == 0) break;  // Already round at this (or a coarser) grain.
      const sim::Time snapped = (at + g / 2) / g * g;
      FaultSchedule c = schedule;
      c.actions[i].at = snapped;
      if (!well_formed(c)) continue;  // Try the next, finer grain.
      ++st->runs;
      if (still_violates(c)) {
        schedule = std::move(c);
        ++st->snapped;
        break;
      }
    }
    // Byzantine windows snap like times: the window is a duration, so the
    // same grains apply and a canonical repro reads e.g. "(1,300ms)".
    for (sim::Duration g : kGrains) {
      const sim::Duration w = schedule.actions[i].window;
      if (w % g == 0) break;
      const sim::Duration snapped = (w + g / 2) / g * g;
      FaultSchedule c = schedule;
      c.actions[i].window = snapped;
      ++st->runs;
      if (still_violates(c)) {
        schedule = std::move(c);
        ++st->snapped;
        break;
      }
    }
  }
  return schedule;
}

}  // namespace consensus40::check
