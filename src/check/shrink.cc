#include "check/shrink.h"

#include <algorithm>

namespace consensus40::check {

FaultSchedule ShrinkSchedule(FaultSchedule schedule,
                             const ScheduleTestFn& still_violates,
                             int max_runs, ShrinkStats* stats) {
  ShrinkStats local;
  ShrinkStats* st = stats != nullptr ? stats : &local;
  st->runs = 0;
  st->removed = 0;

  size_t chunk = std::max<size_t>(1, schedule.actions.size() / 2);
  while (!schedule.actions.empty() && st->runs < max_runs) {
    bool removed_any = false;
    for (size_t start = 0;
         start < schedule.actions.size() && st->runs < max_runs;) {
      const size_t end = std::min(start + chunk, schedule.actions.size());
      FaultSchedule candidate = schedule;
      candidate.actions.erase(candidate.actions.begin() + start,
                              candidate.actions.begin() + end);
      ++st->runs;
      if (still_violates(candidate)) {
        st->removed += static_cast<int>(end - start);
        schedule = std::move(candidate);
        removed_any = true;
        // Do not advance: the next chunk slid into `start`.
      } else {
        start = end;
      }
    }
    if (!removed_any) {
      if (chunk == 1) break;
      chunk = std::max<size_t>(1, chunk / 2);
    }
  }
  return schedule;
}

}  // namespace consensus40::check
