/// \file
/// Seeded fault schedules: a reproducible sequence of crash / restart /
/// partition / heal / delay-spike actions injected into a running
/// simulation. Schedules are pure data — generating one consumes only the
/// seed, injecting one only arms sim callbacks — so a schedule can be
/// replayed, minimized by the shrinker, and printed as a repro recipe.

#ifndef CONSENSUS40_CHECK_FAULT_SCHEDULE_H_
#define CONSENSUS40_CHECK_FAULT_SCHEDULE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sim/simulation.h"

namespace consensus40::check {

/// The fault envelope a protocol declares itself safe under. The schedule
/// generator only composes actions permitted by these bounds, so the
/// in-bounds sweep exercises exactly the fault model the paper states for
/// each protocol (crash-stop vs crash-recovery, partition-tolerant or not,
/// partially-synchronous delays or lockstep rounds).
struct FaultBounds {
  /// Fault-injectable nodes are [first_node, first_node + nodes). Nodes
  /// outside the window (e.g. a Fast Paxos coordinator or an SMR client)
  /// are never touched by generated schedules.
  sim::NodeId first_node = 0;
  int nodes = 0;

  /// Maximum number of simultaneously crashed nodes (the protocol's f).
  int max_crashed = 0;

  /// Crash-recovery protocols (durable state survives OnRestart) get
  /// restart actions and every crashed node is restarted by the tail of
  /// the schedule; crash-stop protocols stay down, and at most
  /// `max_crashed` distinct nodes ever crash.
  bool restartable = false;

  /// Whether schedules may cut the network into two groups mid-run. The
  /// tail of the schedule always heals. Protocols whose stated model
  /// assumes a connected (or synchronous) network keep this off.
  bool partitionable = false;

  /// Whether schedules may temporarily replace the delay model with a
  /// much slower one (asynchrony burst). Restored by the schedule tail.
  bool delay_spikes = true;

  /// Faults are injected in (0, horizon]; the tail restore actions land
  /// at `horizon`. After that the checker grants `quiesce` additional
  /// virtual time for the protocol to finish its workload.
  sim::Duration horizon = 2 * sim::kSecond;
  sim::Duration quiesce = 20 * sim::kSecond;

  // --- Commitment-layer faults (sharded / 2PC systems) ---

  /// A distinguished transaction-coordinator process that schedules may
  /// crash INSIDE [coordinator_window_lo, coordinator_window_hi) — the
  /// classic between-prepare-and-commit window that blocks plain 2PC.
  /// kInvalidNode (the default) disables the action; the coordinator is
  /// typically outside [first_node, nodes), so the generic crash pool
  /// never touches it.
  sim::NodeId coordinator = sim::kInvalidNode;
  sim::Time coordinator_window_lo = 0;
  sim::Time coordinator_window_hi = 0;
  /// Whether the schedule tail restarts a crashed coordinator at the
  /// horizon. Leave false to model a coordinator that never comes back.
  bool coordinator_restartable = false;

  /// Replica-id groups of a sharded system. Non-empty enables
  /// shard-partition actions that isolate exactly one whole group from
  /// the rest of the world (the "minority shard cut" scenario).
  std::vector<std::vector<sim::NodeId>> shard_groups;
};

enum class FaultKind : uint8_t {
  kCrash,
  kRestart,
  kPartition,
  kHeal,
  kDelaySpike,
  kDelayRestore,
  /// Crash FaultBounds::coordinator inside its configured window.
  kCoordinatorCrash,
  /// Isolate one of FaultBounds::shard_groups from everyone else.
  kShardPartition,
};

const char* FaultKindName(FaultKind k);

struct FaultAction {
  sim::Time at = 0;
  FaultKind kind = FaultKind::kCrash;

  /// Victim for kCrash / kRestart.
  sim::NodeId node = sim::kInvalidNode;

  /// Two-group cut for kPartition (unused otherwise).
  std::vector<sim::NodeId> group_a;
  std::vector<sim::NodeId> group_b;

  /// New delay window for kDelaySpike (unused otherwise).
  sim::Duration spike_min = 0;
  sim::Duration spike_max = 0;

  /// Generator-drawn auxiliary randomness. Sim-based adapters ignore it;
  /// the FloodSet adapter uses it to derive how far a crashing process
  /// gets through its round-r broadcast.
  uint64_t aux = 0;
};

struct FaultSchedule {
  uint64_t seed = 0;
  std::vector<FaultAction> actions;

  /// Replayable dump: one line per action plus the generator seed, e.g.
  ///   schedule --seed=42: [ crash(2)@300ms restart(2)@1200ms ]
  std::string ToString() const;
};

/// Deterministically expands `seed` into a schedule within `bounds`.
/// The same (seed, bounds) pair always yields the same schedule.
FaultSchedule GenerateSchedule(uint64_t seed, const FaultBounds& bounds);

/// Arms every action as a sim callback. Call after the protocol's
/// processes are spawned and before running. Crash/restart actions on
/// already-crashed/already-live nodes degrade to no-ops, which is what
/// makes the shrinker's subset-removal sound.
void InjectSchedule(sim::Simulation* sim, const FaultSchedule& schedule);

}  // namespace consensus40::check

#endif  // CONSENSUS40_CHECK_FAULT_SCHEDULE_H_
