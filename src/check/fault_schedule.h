/// \file
/// Seeded fault schedules: a reproducible sequence of crash / restart /
/// partition / heal / delay-spike actions injected into a running
/// simulation. Schedules are pure data — generating one consumes only the
/// seed, injecting one only arms sim callbacks — so a schedule can be
/// replayed, minimized by the shrinker, and printed as a repro recipe.

#ifndef CONSENSUS40_CHECK_FAULT_SCHEDULE_H_
#define CONSENSUS40_CHECK_FAULT_SCHEDULE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sim/simulation.h"

namespace consensus40::check {

/// The fault envelope a protocol declares itself safe under. The schedule
/// generator only composes actions permitted by these bounds, so the
/// in-bounds sweep exercises exactly the fault model the paper states for
/// each protocol (crash-stop vs crash-recovery, partition-tolerant or not,
/// partially-synchronous delays or lockstep rounds).
struct FaultBounds {
  /// Fault-injectable nodes are [first_node, first_node + nodes). Nodes
  /// outside the window (e.g. a Fast Paxos coordinator or an SMR client)
  /// are never touched by generated schedules.
  sim::NodeId first_node = 0;
  int nodes = 0;

  /// Maximum number of simultaneously crashed nodes (the protocol's f).
  int max_crashed = 0;

  /// Crash-recovery protocols (durable state survives OnRestart) get
  /// restart actions and every crashed node is restarted by the tail of
  /// the schedule; crash-stop protocols stay down, and at most
  /// `max_crashed` distinct nodes ever crash.
  bool restartable = false;

  /// Whether schedules may cut the network into two groups mid-run. The
  /// tail of the schedule always heals. Protocols whose stated model
  /// assumes a connected (or synchronous) network keep this off.
  bool partitionable = false;

  /// Whether schedules may temporarily replace the delay model with a
  /// much slower one (asynchrony burst). Restored by the schedule tail.
  bool delay_spikes = true;

  /// Faults are injected in (0, horizon]; the tail restore actions land
  /// at `horizon`. After that the checker grants `quiesce` additional
  /// virtual time for the protocol to finish its workload.
  sim::Duration horizon = 2 * sim::kSecond;
  sim::Duration quiesce = 20 * sim::kSecond;

  // --- Commitment-layer faults (sharded / 2PC systems) ---

  /// A distinguished transaction-coordinator process that schedules may
  /// crash INSIDE [coordinator_window_lo, coordinator_window_hi) — the
  /// classic between-prepare-and-commit window that blocks plain 2PC.
  /// kInvalidNode (the default) disables the action; the coordinator is
  /// typically outside [first_node, nodes), so the generic crash pool
  /// never touches it.
  sim::NodeId coordinator = sim::kInvalidNode;
  sim::Time coordinator_window_lo = 0;
  sim::Time coordinator_window_hi = 0;
  /// Whether the schedule tail restarts a crashed coordinator at the
  /// horizon. Leave false to model a coordinator that never comes back.
  bool coordinator_restartable = false;

  /// Replica-id groups of a sharded system. Non-empty enables
  /// shard-partition actions that isolate exactly one whole group from
  /// the rest of the world (the "minority shard cut" scenario).
  std::vector<std::vector<sim::NodeId>> shard_groups;

  // --- Resharding faults (live shard moves; see shard/reshard.h) ---

  /// A distinguished move-coordinator process (the ShardMover) that
  /// schedules may crash INSIDE [mover_window_lo, mover_window_hi) — a
  /// window the adapter positions over the move's phase ladder, so crashes
  /// land between claim, freeze, copy, flip, and unfreeze. kInvalidNode
  /// (the default) disables the action and keeps every pre-existing
  /// bounds shape's schedule stream bit-for-bit unchanged.
  sim::NodeId mover = sim::kInvalidNode;
  sim::Time mover_window_lo = 0;
  sim::Time mover_window_hi = 0;
  /// Whether the schedule tail restarts a crashed mover at the horizon
  /// (exactly-once move recovery runs from its write-once records).
  bool mover_restartable = false;

  /// Indices into `shard_groups` naming the move's old and new owner.
  /// Both >= 0 enables owner-partition actions that cut one of the two
  /// groups off mid-migration (the copy / flip messages between them must
  /// retry through the heal). -1 (the default) disables the action.
  int move_source = -1;
  int move_dest = -1;

  // --- Byzantine faults (BFT protocols; armed via sim/byzantine.h) ---

  /// Maximum number of nodes that ever turn Byzantine in one schedule.
  /// 0 (the default) disables every Byzantine kind, which keeps schedules
  /// for all pre-existing bounds shapes bit-for-bit unchanged. A node that
  /// was ever Byzantine counts as faulty for the rest of the run, and the
  /// generator caps |crashed ∪ byzantine| at max(max_crashed,
  /// max_byzantine) — in BFT models crash and Byzantine failures draw on
  /// the same f.
  int max_byzantine = 0;

  /// Byzantine-injectable nodes are [byz_first_node, byz_first_node +
  /// byz_nodes). Independent of the crash window so an adapter can, e.g.,
  /// shield its primary from crashes but still let backups lie.
  sim::NodeId byz_first_node = 0;
  int byz_nodes = 0;

  /// Per-kind opt-in: adapters enable exactly the misbehaviours their
  /// protocol claims to tolerate (equivocation needs a protocol forge
  /// hook to be meaningful; withhold/replay are protocol-blind).
  bool byz_equivocate = false;
  bool byz_withhold = false;
  bool byz_mutate = false;
  bool byz_replay = false;

  /// Non-zero enables view-change-heavy schedules: with probability 1/2 a
  /// schedule becomes a burst that repeatedly silences the (round-robin)
  /// primary — crash+restart, or a withhold window when byz_withhold is
  /// set — spaced `view_change_period` apart, forcing consecutive view
  /// changes mid-client-burst. Requires `restartable`; burst schedules
  /// carry no other fault kinds so the fault budget is trivially honored.
  sim::Duration view_change_period = 0;
};

enum class FaultKind : uint8_t {
  kCrash,
  kRestart,
  kPartition,
  kHeal,
  kDelaySpike,
  kDelayRestore,
  /// Crash FaultBounds::coordinator inside its configured window.
  kCoordinatorCrash,
  /// Isolate one of FaultBounds::shard_groups from everyone else.
  kShardPartition,
  /// Byzantine windows (node + window duration): conflicting proposals to
  /// disjoint halves / dropped outbound messages / corrupted payloads /
  /// re-sent stale captures. Injection arms the simulation's attached
  /// ByzantineInterposer and is a no-op when none is attached.
  kEquivocate,
  kWithhold,
  kMutateDigest,
  kReplayStale,
  /// Crash FaultBounds::mover inside its configured window (the move
  /// ladder's phase boundaries).
  kMoverCrash,
  /// Isolate the move's old or new owner group (FaultBounds::move_source /
  /// move_dest) from everyone else mid-migration.
  kOwnerPartition,
};

const char* FaultKindName(FaultKind k);

struct FaultAction {
  sim::Time at = 0;
  FaultKind kind = FaultKind::kCrash;

  /// Victim for kCrash / kRestart.
  sim::NodeId node = sim::kInvalidNode;

  /// Two-group cut for kPartition (unused otherwise).
  std::vector<sim::NodeId> group_a;
  std::vector<sim::NodeId> group_b;

  /// New delay window for kDelaySpike (unused otherwise).
  sim::Duration spike_min = 0;
  sim::Duration spike_max = 0;

  /// Duration of a Byzantine behaviour window (the misbehaviour runs in
  /// [at, at + window)). Zero for every non-Byzantine kind.
  sim::Duration window = 0;

  /// Generator-drawn auxiliary randomness. Sim-based adapters ignore it;
  /// the FloodSet adapter uses it to derive how far a crashing process
  /// gets through its round-r broadcast.
  uint64_t aux = 0;
};

struct FaultSchedule {
  uint64_t seed = 0;
  std::vector<FaultAction> actions;

  /// Replayable dump: one line per action plus the generator seed, e.g.
  ///   schedule --seed=42: [ crash(2)@300ms restart(2)@1200ms ]
  std::string ToString() const;
};

/// Deterministically expands `seed` into a schedule within `bounds`.
/// The same (seed, bounds) pair always yields the same schedule.
FaultSchedule GenerateSchedule(uint64_t seed, const FaultBounds& bounds);

/// Re-establishes GenerateSchedule's closed-world tail guarantee on a
/// schedule whose actions were deleted or time-shifted: if the surviving
/// actions leave the network partitioned or delay-spiked at the end, the
/// matching heal / unspike is re-appended at the horizon, and restartable
/// protocols get their still-crashed nodes restarted there again.
/// Idempotent. The shrinker routes every candidate through this before
/// replaying: without it, a liveness violation "shrinks" to an unhealed
/// partition — a schedule the generator can never emit, under which any
/// quorum protocol blocks by construction, so the repro proves nothing.
FaultSchedule RestoreScheduleTail(FaultSchedule schedule,
                                  const FaultBounds& bounds);

/// Arms every action as a sim callback. Call after the protocol's
/// processes are spawned and before running. Crash/restart actions on
/// already-crashed/already-live nodes degrade to no-ops, which is what
/// makes the shrinker's subset-removal sound.
void InjectSchedule(sim::Simulation* sim, const FaultSchedule& schedule);

}  // namespace consensus40::check

#endif  // CONSENSUS40_CHECK_FAULT_SCHEDULE_H_
