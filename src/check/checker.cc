#include "check/checker.h"

#include <algorithm>
#include <utility>

namespace consensus40::check {

namespace {

std::string NodeStr(sim::NodeId id) { return std::to_string(id); }

}  // namespace

std::vector<std::string> CheckInvariants(const Observation& o) {
  std::vector<std::string> out;

  // Agreement: one decided value per instance.
  for (const auto& [inst, per_node] : o.decided) {
    if (per_node.empty()) continue;
    const auto& first = *per_node.begin();
    for (const auto& [node, val] : per_node) {
      if (val != first.second) {
        out.push_back("agreement: instance " + inst + ": node " +
                      NodeStr(first.first) + " decided \"" + first.second +
                      "\" but node " + NodeStr(node) + " decided \"" + val +
                      "\"");
        break;
      }
    }
  }

  // Validity: decided values come from the proposed universe.
  if (!o.allowed.empty()) {
    for (const auto& [inst, per_node] : o.decided) {
      for (const auto& [node, val] : per_node) {
        if (std::find(o.allowed.begin(), o.allowed.end(), val) ==
            o.allowed.end()) {
          out.push_back("validity: instance " + inst + ": node " +
                        NodeStr(node) + " decided unproposed value \"" + val +
                        "\"");
        }
      }
    }
  }

  // Prefix consistency: committed logs never diverge, they only trail.
  for (size_t i = 0; i < o.logs.size(); ++i) {
    for (size_t j = i + 1; j < o.logs.size(); ++j) {
      const auto& a = o.logs[i];
      const auto& b = o.logs[j];
      size_t common = std::min(a.size(), b.size());
      for (size_t k = 0; k < common; ++k) {
        if (a[k] != b[k]) {
          out.push_back("prefix: logs " + std::to_string(i) + " and " +
                        std::to_string(j) + " diverge at index " +
                        std::to_string(k) + ": \"" + a[k] + "\" vs \"" + b[k] +
                        "\"");
          break;
        }
      }
    }
  }

  // Atomicity: no transaction both committed and aborted.
  for (const auto& [tx, per_node] : o.verdicts) {
    sim::NodeId committed_at = sim::kInvalidNode;
    sim::NodeId aborted_at = sim::kInvalidNode;
    for (const auto& [node, verdict] : per_node) {
      if (verdict == 'C') committed_at = node;
      if (verdict == 'A') aborted_at = node;
    }
    if (committed_at != sim::kInvalidNode && aborted_at != sim::kInvalidNode) {
      out.push_back("atomicity: tx " + std::to_string(tx) +
                    " committed at node " + NodeStr(committed_at) +
                    " but aborted at node " + NodeStr(aborted_at));
    }
  }

  for (const auto& s : o.self_reported) {
    out.push_back("self-reported: " + s);
  }
  return out;
}

RunResult RunSchedule(const AdapterFactory& factory, uint64_t seed,
                      const FaultSchedule& schedule) {
  std::unique_ptr<ProtocolAdapter> adapter = factory(seed);
  RunResult result;

  if (adapter->RunsDirect()) {
    Observation o = adapter->RunDirect(schedule);
    result.violations = CheckInvariants(o);
    result.completed = true;
    return result;
  }

  const FaultBounds bounds = adapter->bounds();
  ProtocolAdapter* a = adapter.get();
  std::unique_ptr<sim::Simulation> sim_owner =
      sim::Simulation::Builder(seed)
          .Setup([a](sim::Simulation& s) { a->Build(&s); })
          .Setup([&schedule](sim::Simulation& s) {
            InjectSchedule(&s, schedule);
          })
          .AutoStart(false)  // The probe cadence is armed below first.
          .Build();
  sim::Simulation& sim = *sim_owner;

  // Integrity probe: remember the first value each (instance, node) pair
  // decided; any later snapshot showing a different value is a violation
  // even if the end state looks consistent again.
  std::map<std::pair<std::string, sim::NodeId>, std::string> first_decided;
  std::vector<std::string> integrity;
  auto probe = [&] {
    Observation o = adapter->Observe();
    for (const auto& [inst, per_node] : o.decided) {
      for (const auto& [node, val] : per_node) {
        auto key = std::make_pair(inst, node);
        auto [it, inserted] = first_decided.emplace(key, val);
        if (!inserted && it->second != val) {
          integrity.push_back("integrity: instance " + inst + ": node " +
                              NodeStr(node) + " decided \"" + it->second +
                              "\" then re-decided \"" + val + "\"");
          it->second = val;
        }
      }
    }
  };

  const sim::Duration kProbeEvery = 50 * sim::kMillisecond;
  const sim::Time deadline = bounds.horizon + bounds.quiesce;
  std::function<void()> tick = [&] {
    adapter->OnProbe(&sim);
    probe();
    if (sim.now() + kProbeEvery <= deadline) {
      sim.ScheduleAfter(kProbeEvery, tick);
    }
  };
  sim.ScheduleAfter(kProbeEvery, tick);

  sim.Start();
  sim.RunUntil([&] { return adapter->Done(); }, deadline);
  probe();

  Observation o = adapter->Observe();
  result.violations = CheckInvariants(o);
  result.violations.insert(result.violations.end(), integrity.begin(),
                           integrity.end());
  result.completed = adapter->Done();
  if (adapter->ExpectTermination() && !result.completed) {
    result.violations.push_back(
        "liveness: workload incomplete after faults healed (deadline " +
        std::to_string(deadline / sim::kMillisecond) + "ms)");
  }
  return result;
}

RunResult RunSeed(const AdapterFactory& factory, uint64_t seed,
                  FaultSchedule* schedule_out) {
  std::unique_ptr<ProtocolAdapter> probe_adapter = factory(seed);
  FaultSchedule schedule = GenerateSchedule(seed, probe_adapter->bounds());
  probe_adapter.reset();
  if (schedule_out != nullptr) *schedule_out = schedule;
  return RunSchedule(factory, seed, schedule);
}

}  // namespace consensus40::check
