#include "check/parallel_sweep.h"

#include <utility>

#include "check/shrink.h"
#include "common/table.h"

namespace consensus40::check {

namespace {

/// Everything one (protocol, seed) task records. Slots are pre-sized and
/// written by exactly one worker, then merged in index order — this is
/// what makes the report independent of execution order.
struct SeedOutcome {
  bool violated = false;
  bool completed = false;
  uint32_t actions = 0;
  std::vector<std::string> violations;
  std::string repro;  ///< Formatted repro line; empty unless violated.
};

/// "agreement: instance 0: ..." -> "agreement".
std::string InvariantFamily(const std::string& violation) {
  const size_t colon = violation.find(':');
  return colon == std::string::npos ? violation : violation.substr(0, colon);
}

}  // namespace

uint64_t SweepReport::total_schedules() const {
  uint64_t n = 0;
  for (const ProtocolSweepResult& p : protocols) n += p.schedules;
  return n;
}

uint64_t SweepReport::total_violations() const {
  uint64_t n = 0;
  for (const ProtocolSweepResult& p : protocols) n += p.violations;
  return n;
}

std::string SweepReport::ToString() const {
  TextTable t({"protocol", "schedules", "actions", "violations", "incomplete",
               "invariants hit"});
  for (const ProtocolSweepResult& p : protocols) {
    std::string families;
    for (const auto& [family, count] : p.by_invariant) {
      if (!families.empty()) families += " ";
      families += family + "=" + std::to_string(count);
    }
    if (families.empty()) families = "-";
    t.AddRow({p.protocol, TextTable::Int(static_cast<int64_t>(p.schedules)),
              TextTable::Int(static_cast<int64_t>(p.actions)),
              TextTable::Int(static_cast<int64_t>(p.violations)),
              TextTable::Int(static_cast<int64_t>(p.incomplete)), families});
  }
  std::string s = t.ToString();
  for (const ProtocolSweepResult& p : protocols) {
    for (const std::string& repro : p.repros) {
      s += p.protocol + " " + repro + "\n";
    }
  }
  return s;
}

SweepReport RunSweep(
    const std::vector<std::pair<const char*, AdapterFactory>>& roster,
    const SweepOptions& options, ThreadPool* pool) {
  const uint64_t per_protocol = options.seeds;
  const uint64_t total = roster.size() * per_protocol;
  std::vector<SeedOutcome> outcomes(total);

  auto task = [&](int /*worker*/, uint64_t idx) {
    const size_t p = static_cast<size_t>(idx / per_protocol);
    const uint64_t seed = options.first_seed + (idx % per_protocol);
    const AdapterFactory& factory = roster[p].second;

    FaultSchedule schedule;
    RunResult r = RunSeed(factory, seed, &schedule);

    SeedOutcome& o = outcomes[idx];
    o.violated = r.violated();
    o.completed = r.completed;
    o.actions = static_cast<uint32_t>(schedule.actions.size());
    o.violations = r.violations;
    if (!r.violated()) return;

    FaultSchedule repro = schedule;
    if (options.shrink_repros) {
      // The shrink replays run inside this task, so the pool's lanes stay
      // busy with whole seeds; determinism of the result only needs the
      // (factory, seed) pair.
      auto replay = [&](const FaultSchedule& candidate) {
        return RunSchedule(factory, seed, candidate).violated();
      };
      const FaultBounds bounds = factory(seed)->bounds();
      repro = ShrinkSchedule(std::move(repro), bounds, replay,
                             options.shrink_max_runs);
      repro = CanonicalizeSchedule(std::move(repro), bounds, replay);
    }
    o.repro = "seed " + std::to_string(seed) + ": " + r.violations[0] +
              " | " + repro.ToString();
  };

  if (pool != nullptr) {
    pool->ParallelFor(total, task);
  } else {
    for (uint64_t i = 0; i < total; ++i) task(0, i);
  }

  // Merge in roster-then-seed order: deterministic regardless of which
  // worker ran which slot.
  SweepReport report;
  report.protocols.resize(roster.size());
  for (size_t p = 0; p < roster.size(); ++p) {
    ProtocolSweepResult& out = report.protocols[p];
    out.protocol = roster[p].first;
    for (uint64_t k = 0; k < per_protocol; ++k) {
      const SeedOutcome& o = outcomes[p * per_protocol + k];
      ++out.schedules;
      out.actions += o.actions;
      if (!o.completed) ++out.incomplete;
      if (o.violated) {
        ++out.violations;
        for (const std::string& v : o.violations) {
          ++out.by_invariant[InvariantFamily(v)];
        }
        out.repros.push_back(o.repro);
      }
    }
  }
  return report;
}

}  // namespace consensus40::check
