#include "check/fault_schedule.h"

#include <algorithm>
#include <cassert>
#include <set>

#include "common/rng.h"
#include "sim/byzantine.h"

namespace consensus40::check {

namespace {

std::string FormatMs(sim::Time t) {
  // Sub-millisecond times show as fractional ms so distinct injection
  // points never collapse to the same label in a dump.
  std::string s = std::to_string(t / sim::kMillisecond);
  sim::Time frac = t % sim::kMillisecond;
  if (frac != 0) {
    std::string f = std::to_string(frac);
    s += "." + std::string(3 - f.size(), '0') + f;
  }
  return s + "ms";
}

std::string FormatGroup(const std::vector<sim::NodeId>& g) {
  std::string s = "{";
  for (size_t i = 0; i < g.size(); ++i) {
    if (i) s += ",";
    s += std::to_string(g[i]);
  }
  return s + "}";
}

}  // namespace

const char* FaultKindName(FaultKind k) {
  switch (k) {
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kRestart:
      return "restart";
    case FaultKind::kPartition:
      return "partition";
    case FaultKind::kHeal:
      return "heal";
    case FaultKind::kDelaySpike:
      return "spike";
    case FaultKind::kDelayRestore:
      return "unspike";
    case FaultKind::kCoordinatorCrash:
      return "coord-crash";
    case FaultKind::kShardPartition:
      return "shard-partition";
    case FaultKind::kEquivocate:
      return "equivocate";
    case FaultKind::kWithhold:
      return "withhold";
    case FaultKind::kMutateDigest:
      return "mutate";
    case FaultKind::kReplayStale:
      return "replay";
    case FaultKind::kMoverCrash:
      return "mover-crash";
    case FaultKind::kOwnerPartition:
      return "owner-partition";
  }
  return "?";
}

std::string FaultSchedule::ToString() const {
  std::string s = "schedule --seed=" + std::to_string(seed) + ": [";
  for (const FaultAction& a : actions) {
    s += " " + std::string(FaultKindName(a.kind));
    switch (a.kind) {
      case FaultKind::kCrash:
      case FaultKind::kRestart:
      case FaultKind::kCoordinatorCrash:
      case FaultKind::kMoverCrash:
        s += "(" + std::to_string(a.node) + ")";
        break;
      case FaultKind::kPartition:
        s += "(" + FormatGroup(a.group_a) + "|" + FormatGroup(a.group_b) + ")";
        break;
      case FaultKind::kShardPartition:
      case FaultKind::kOwnerPartition:
        s += "(" + FormatGroup(a.group_b) + ")";
        break;
      case FaultKind::kDelaySpike:
        s += "(" + FormatMs(a.spike_min) + ".." + FormatMs(a.spike_max) + ")";
        break;
      case FaultKind::kEquivocate:
      case FaultKind::kWithhold:
      case FaultKind::kMutateDigest:
      case FaultKind::kReplayStale:
        s += "(" + std::to_string(a.node) + "," + FormatMs(a.window) + ")";
        break;
      case FaultKind::kHeal:
      case FaultKind::kDelayRestore:
        break;
    }
    s += "@" + FormatMs(a.at);
  }
  return s + " ]";
}

FaultSchedule GenerateSchedule(uint64_t seed, const FaultBounds& bounds) {
  // Decorrelate from the simulation rng (which protocols seed the same
  // way) so schedule shape and message delays are independent draws.
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0x45c1e3a8u);
  FaultSchedule schedule;
  schedule.seed = seed;

  // View-change-heavy burst: repeatedly silence the round-robin primary so
  // each silence forces a view change while the client burst is in flight.
  // The branch (and its rng draws) only exists for bounds that opt in, so
  // every pre-existing bounds shape keeps its schedule stream unchanged.
  if (bounds.view_change_period > 0 && bounds.restartable &&
      bounds.nodes > 0 && rng.NextBounded(2) == 0) {
    const sim::Duration period = bounds.view_change_period;
    const int kills = 2 + static_cast<int>(rng.NextBounded(3));
    sim::Time t = bounds.horizon / 20 +
                  static_cast<sim::Time>(rng.NextBounded(
                      static_cast<uint64_t>(bounds.horizon / 4)));
    for (int k = 0; k < kills && t + period <= bounds.horizon; ++k) {
      // Views advance one primary at a time, so round-robin victims track
      // the primary rotation: killing 0 forces view 1 (primary 1), etc.
      const sim::NodeId victim = bounds.first_node + k % bounds.nodes;
      const uint64_t aux = rng.Next();
      const bool in_byz_window =
          victim >= bounds.byz_first_node &&
          victim < bounds.byz_first_node + bounds.byz_nodes;
      if (bounds.byz_withhold && bounds.max_byzantine > 0 && in_byz_window &&
          (k & 1) != 0) {
        // Odd rounds go Byzantine-silent instead of crashing: same view
        // change from the backups' perspective, different mechanism.
        FaultAction a;
        a.at = t;
        a.kind = FaultKind::kWithhold;
        a.node = victim;
        a.window = period * 9 / 10;
        a.aux = aux;
        schedule.actions.push_back(std::move(a));
      } else {
        FaultAction crash;
        crash.at = t;
        crash.kind = FaultKind::kCrash;
        crash.node = victim;
        crash.aux = aux;
        schedule.actions.push_back(std::move(crash));
        FaultAction restart;
        restart.at = t + period * 9 / 10;
        restart.kind = FaultKind::kRestart;
        restart.node = victim;
        schedule.actions.push_back(std::move(restart));
      }
      t += period;
    }
    // Burst schedules carry nothing else: at most one node is ever faulty
    // at a time, so the fault budget holds by construction, and the plain
    // crash/restart/withhold actions shrink like any other schedule.
    return schedule;
  }

  const int num_events = 1 + static_cast<int>(rng.NextBounded(6));
  std::vector<sim::Time> times;
  times.reserve(num_events);
  const sim::Time lo = bounds.horizon / 20;
  const sim::Time hi = bounds.horizon * 9 / 10;
  for (int i = 0; i < num_events; ++i) {
    times.push_back(lo + static_cast<sim::Time>(
                             rng.NextBounded(static_cast<uint64_t>(hi - lo))));
  }
  std::sort(times.begin(), times.end());

  std::vector<bool> crashed(static_cast<size_t>(std::max(bounds.nodes, 1)),
                            false);
  int crashed_count = 0;
  bool partitioned = false;
  bool spiked = false;
  bool coordinator_crashed = false;
  bool mover_crashed = false;
  // Nodes that ever went Byzantine: they stay charged against the fault
  // budget for the whole run (a lying replica does not "recover" when its
  // window closes) and are never also crashed by this schedule.
  std::set<sim::NodeId> byz_set;
  const int fault_cap = std::max(bounds.max_crashed, bounds.max_byzantine);
  auto is_byz = [&byz_set](sim::NodeId id) { return byz_set.count(id) > 0; };

  for (sim::Time t : times) {
    const int total_faulty = crashed_count + static_cast<int>(byz_set.size());
    int crash_eligible = 0;
    for (int i = 0; i < bounds.nodes; ++i) {
      if (!crashed[i] && !is_byz(bounds.first_node + i)) ++crash_eligible;
    }
    // Byzantine victims: a node already Byzantine can be re-targeted for
    // free; a fresh one needs headroom in both the Byzantine count and the
    // combined budget.
    std::vector<sim::NodeId> byz_eligible;
    if (bounds.max_byzantine > 0) {
      const bool budget =
          static_cast<int>(byz_set.size()) < bounds.max_byzantine &&
          total_faulty < fault_cap;
      for (int i = 0; i < bounds.byz_nodes; ++i) {
        const sim::NodeId id = bounds.byz_first_node + i;
        const int ci = static_cast<int>(id - bounds.first_node);
        const bool is_crashed = ci >= 0 && ci < bounds.nodes && crashed[ci];
        if (is_byz(id) || (budget && !is_crashed)) byz_eligible.push_back(id);
      }
    }

    std::vector<FaultKind> feasible;
    if (bounds.nodes > 0 && crashed_count < bounds.max_crashed &&
        crash_eligible > 0 && total_faulty < fault_cap) {
      feasible.push_back(FaultKind::kCrash);
      // Crashes are the bread and butter; double their weight relative to
      // the single-shot topology toggles.
      feasible.push_back(FaultKind::kCrash);
    }
    if (bounds.restartable && crashed_count > 0) {
      feasible.push_back(FaultKind::kRestart);
    }
    if (bounds.partitionable && !partitioned) {
      feasible.push_back(FaultKind::kPartition);
    }
    if (partitioned) feasible.push_back(FaultKind::kHeal);
    if (bounds.delay_spikes && !spiked) {
      feasible.push_back(FaultKind::kDelaySpike);
    }
    if (spiked) feasible.push_back(FaultKind::kDelayRestore);
    // The commitment-layer kinds only enter the pool when their bounds
    // fields are set, so schedules for every pre-existing bounds shape
    // (and their pinned repro strings) are bit-for-bit unchanged.
    if (bounds.coordinator != sim::kInvalidNode && !coordinator_crashed) {
      feasible.push_back(FaultKind::kCoordinatorCrash);
      feasible.push_back(FaultKind::kCoordinatorCrash);  // Weight like kCrash.
    }
    if (!bounds.shard_groups.empty() && !partitioned) {
      feasible.push_back(FaultKind::kShardPartition);
    }
    // Resharding kinds, under the same stream-stability contract: the
    // pool only changes for bounds that set the new fields.
    if (bounds.mover != sim::kInvalidNode && !mover_crashed) {
      feasible.push_back(FaultKind::kMoverCrash);
      feasible.push_back(FaultKind::kMoverCrash);  // Weight like kCrash.
    }
    if (bounds.move_source >= 0 && bounds.move_dest >= 0 &&
        static_cast<size_t>(std::max(bounds.move_source, bounds.move_dest)) <
            bounds.shard_groups.size() &&
        !partitioned) {
      feasible.push_back(FaultKind::kOwnerPartition);
    }
    // Byzantine kinds enter the pool only for bounds that set
    // max_byzantine, under the same stream-stability contract.
    if (!byz_eligible.empty()) {
      if (bounds.byz_equivocate) feasible.push_back(FaultKind::kEquivocate);
      if (bounds.byz_withhold) feasible.push_back(FaultKind::kWithhold);
      if (bounds.byz_mutate) feasible.push_back(FaultKind::kMutateDigest);
      if (bounds.byz_replay) feasible.push_back(FaultKind::kReplayStale);
    }
    if (feasible.empty()) continue;

    FaultAction a;
    a.at = t;
    a.kind = feasible[rng.NextBounded(feasible.size())];
    a.aux = rng.Next();
    switch (a.kind) {
      case FaultKind::kCrash: {
        int pick = static_cast<int>(
            rng.NextBounded(static_cast<uint64_t>(crash_eligible)));
        for (int i = 0; i < bounds.nodes; ++i) {
          if (crashed[i] || is_byz(bounds.first_node + i)) continue;
          if (pick-- == 0) {
            a.node = bounds.first_node + i;
            crashed[i] = true;
            ++crashed_count;
            break;
          }
        }
        break;
      }
      case FaultKind::kRestart: {
        int pick = static_cast<int>(
            rng.NextBounded(static_cast<uint64_t>(crashed_count)));
        for (int i = 0; i < bounds.nodes; ++i) {
          if (!crashed[i]) continue;
          if (pick-- == 0) {
            a.node = bounds.first_node + i;
            crashed[i] = false;
            --crashed_count;
            break;
          }
        }
        break;
      }
      case FaultKind::kPartition: {
        // Random two-group cut over the fault window; the injector folds
        // every node outside the window into group A.
        for (int i = 0; i < bounds.nodes; ++i) {
          sim::NodeId id = bounds.first_node + i;
          if (rng.Next() & 1) {
            a.group_a.push_back(id);
          } else {
            a.group_b.push_back(id);
          }
        }
        if (a.group_a.empty()) {
          a.group_a.push_back(a.group_b.back());
          a.group_b.pop_back();
        } else if (a.group_b.empty()) {
          a.group_b.push_back(a.group_a.back());
          a.group_a.pop_back();
        }
        partitioned = true;
        break;
      }
      case FaultKind::kHeal:
        partitioned = false;
        break;
      case FaultKind::kDelaySpike:
        a.spike_min =
            (5 + static_cast<sim::Duration>(rng.NextBounded(20))) *
            sim::kMillisecond;
        a.spike_max = a.spike_min +
                      (10 + static_cast<sim::Duration>(rng.NextBounded(80))) *
                          sim::kMillisecond;
        spiked = true;
        break;
      case FaultKind::kDelayRestore:
        spiked = false;
        break;
      case FaultKind::kCoordinatorCrash: {
        a.node = bounds.coordinator;
        // Land inside the configured window — derived from the aux draw
        // (already consumed for every action) so the rng stream stays
        // identical whether or not this kind is enabled.
        if (bounds.coordinator_window_hi > bounds.coordinator_window_lo) {
          a.at = bounds.coordinator_window_lo +
                 static_cast<sim::Time>(
                     a.aux % static_cast<uint64_t>(
                                 bounds.coordinator_window_hi -
                                 bounds.coordinator_window_lo));
        }
        coordinator_crashed = true;
        break;
      }
      case FaultKind::kShardPartition: {
        // Cut one whole shard group off; the injector folds every other
        // process into group A.
        a.group_b = bounds.shard_groups[a.aux % bounds.shard_groups.size()];
        partitioned = true;
        break;
      }
      case FaultKind::kMoverCrash: {
        a.node = bounds.mover;
        // Land inside the move window, derived from the aux draw (already
        // consumed for every action) so the rng stream stays identical
        // whether or not this kind is enabled.
        if (bounds.mover_window_hi > bounds.mover_window_lo) {
          a.at = bounds.mover_window_lo +
                 static_cast<sim::Time>(
                     a.aux % static_cast<uint64_t>(bounds.mover_window_hi -
                                                   bounds.mover_window_lo));
        }
        mover_crashed = true;
        break;
      }
      case FaultKind::kOwnerPartition: {
        // Cut the move's old or new owner (aux picks which) off from the
        // rest of the world; the injector folds everyone else into A.
        const int side =
            (a.aux & 1) != 0 ? bounds.move_source : bounds.move_dest;
        a.group_b = bounds.shard_groups[static_cast<size_t>(side)];
        partitioned = true;
        break;
      }
      case FaultKind::kEquivocate:
      case FaultKind::kWithhold:
      case FaultKind::kMutateDigest:
      case FaultKind::kReplayStale: {
        a.node = byz_eligible[rng.NextBounded(byz_eligible.size())];
        a.window = (100 + static_cast<sim::Duration>(rng.NextBounded(500))) *
                   sim::kMillisecond;
        // Windows close by the horizon so the quiesce phase measures
        // recovery, not live misbehaviour.
        a.window = std::min(a.window, bounds.horizon - a.at);
        byz_set.insert(a.node);
        break;
      }
    }
    schedule.actions.push_back(std::move(a));
  }

  // Tail: put the world back together at the horizon so the quiesce phase
  // measures the protocol, not a still-broken network. Crash-stop
  // protocols keep their crashed nodes down — that is their fault model.
  if (partitioned) {
    FaultAction a;
    a.at = bounds.horizon;
    a.kind = FaultKind::kHeal;
    schedule.actions.push_back(std::move(a));
  }
  if (spiked) {
    FaultAction a;
    a.at = bounds.horizon;
    a.kind = FaultKind::kDelayRestore;
    schedule.actions.push_back(std::move(a));
  }
  if (bounds.restartable) {
    for (int i = 0; i < bounds.nodes; ++i) {
      if (!crashed[i]) continue;
      FaultAction a;
      a.at = bounds.horizon;
      a.kind = FaultKind::kRestart;
      a.node = bounds.first_node + i;
      schedule.actions.push_back(std::move(a));
    }
  }
  if (coordinator_crashed && bounds.coordinator_restartable) {
    FaultAction a;
    a.at = bounds.horizon;
    a.kind = FaultKind::kRestart;
    a.node = bounds.coordinator;
    schedule.actions.push_back(std::move(a));
  }
  if (mover_crashed && bounds.mover_restartable) {
    FaultAction a;
    a.at = bounds.horizon;
    a.kind = FaultKind::kRestart;
    a.node = bounds.mover;
    schedule.actions.push_back(std::move(a));
  }
  return schedule;
}

FaultSchedule RestoreScheduleTail(FaultSchedule schedule,
                                  const FaultBounds& bounds) {
  // Replay the surviving actions in time order (the vector may interleave
  // tail restores with injected faults after partial deletion) to find the
  // end-of-schedule world state.
  std::vector<const FaultAction*> order;
  order.reserve(schedule.actions.size());
  for (const FaultAction& a : schedule.actions) order.push_back(&a);
  std::stable_sort(order.begin(), order.end(),
                   [](const FaultAction* x, const FaultAction* y) {
                     return x->at < y->at;
                   });
  bool partitioned = false;
  bool spiked = false;
  bool coordinator_crashed = false;
  bool mover_crashed = false;
  std::set<sim::NodeId> crashed;
  for (const FaultAction* a : order) {
    switch (a->kind) {
      case FaultKind::kCrash:
        crashed.insert(a->node);
        break;
      case FaultKind::kCoordinatorCrash:
        crashed.insert(a->node);
        coordinator_crashed = true;
        break;
      case FaultKind::kMoverCrash:
        crashed.insert(a->node);
        mover_crashed = true;
        break;
      case FaultKind::kRestart:
        crashed.erase(a->node);
        break;
      case FaultKind::kPartition:
      case FaultKind::kShardPartition:
      case FaultKind::kOwnerPartition:
        partitioned = true;
        break;
      case FaultKind::kHeal:
        partitioned = false;
        break;
      case FaultKind::kDelaySpike:
        spiked = true;
        break;
      case FaultKind::kDelayRestore:
        spiked = false;
        break;
      case FaultKind::kEquivocate:
      case FaultKind::kWithhold:
      case FaultKind::kMutateDigest:
      case FaultKind::kReplayStale:
        break;  // Windowed: expires on its own, no tail restore needed.
    }
  }

  // Mirror GenerateSchedule's tail exactly (same kinds, same times).
  auto append = [&schedule](FaultKind kind, sim::Time at, sim::NodeId node) {
    FaultAction a;
    a.at = at;
    a.kind = kind;
    a.node = node;
    schedule.actions.push_back(std::move(a));
  };
  if (partitioned) append(FaultKind::kHeal, bounds.horizon, sim::kInvalidNode);
  if (spiked) {
    append(FaultKind::kDelayRestore, bounds.horizon, sim::kInvalidNode);
  }
  for (sim::NodeId id : crashed) {
    const bool is_coordinator =
        coordinator_crashed && id == bounds.coordinator;
    const bool is_mover = mover_crashed && id == bounds.mover;
    const bool restart = is_coordinator ? bounds.coordinator_restartable
                        : is_mover     ? bounds.mover_restartable
                                       : bounds.restartable;
    if (restart) append(FaultKind::kRestart, bounds.horizon, id);
  }
  return schedule;
}

void InjectSchedule(sim::Simulation* sim, const FaultSchedule& schedule) {
  // Captured before the run starts: delay-restore always returns to the
  // pre-fault network, even if the spike action itself was shrunk away.
  const sim::NetworkOptions base = sim->options();
  for (const FaultAction& a : schedule.actions) {
    sim->ScheduleAt(a.at, [sim, a, base] {
      switch (a.kind) {
        case FaultKind::kCrash:
        case FaultKind::kCoordinatorCrash:
        case FaultKind::kMoverCrash:
          if (!sim->IsCrashed(a.node)) sim->Crash(a.node);
          break;
        case FaultKind::kRestart:
          if (sim->IsCrashed(a.node)) sim->Restart(a.node);
          break;
        case FaultKind::kShardPartition:
        case FaultKind::kOwnerPartition:
        case FaultKind::kPartition: {
          std::vector<sim::NodeId> group_a = a.group_a;
          for (sim::NodeId id = 0; id < sim->num_processes(); ++id) {
            bool in_b = std::find(a.group_b.begin(), a.group_b.end(), id) !=
                        a.group_b.end();
            bool in_a = std::find(group_a.begin(), group_a.end(), id) !=
                        group_a.end();
            if (!in_a && !in_b) group_a.push_back(id);
          }
          sim->Partition({group_a, a.group_b});
          break;
        }
        case FaultKind::kHeal:
          sim->Heal();
          break;
        case FaultKind::kDelaySpike: {
          sim::NetworkOptions o = sim->options();
          o.min_delay = a.spike_min;
          o.max_delay = a.spike_max;
          sim->SetNetworkOptions(o);
          break;
        }
        case FaultKind::kDelayRestore:
          sim->SetNetworkOptions(base);
          break;
        case FaultKind::kEquivocate:
        case FaultKind::kWithhold:
        case FaultKind::kMutateDigest:
        case FaultKind::kReplayStale: {
          // Armed through the adapter-attached interposer; without one the
          // action degrades to a no-op (like restarting a live node), which
          // keeps the shrinker's subset-removal sound.
          sim::ByzantineInterposer* byz = sim->byzantine_interposer();
          if (byz == nullptr) break;
          sim->MarkByzantine(a.node);
          const sim::Time until = a.at + a.window;
          if (a.kind == FaultKind::kEquivocate) {
            byz->BeginEquivocate(a.node, until, a.aux);
          } else if (a.kind == FaultKind::kWithhold) {
            byz->BeginWithhold(a.node, until, a.aux);
          } else if (a.kind == FaultKind::kMutateDigest) {
            byz->BeginMutate(a.node, until, a.aux);
          } else {
            byz->BeginReplay(a.node, until, a.aux);
          }
          break;
        }
      }
    });
  }
}

}  // namespace consensus40::check
