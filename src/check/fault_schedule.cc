#include "check/fault_schedule.h"

#include <algorithm>
#include <cassert>

#include "common/rng.h"

namespace consensus40::check {

namespace {

std::string FormatMs(sim::Time t) {
  // Sub-millisecond times show as fractional ms so distinct injection
  // points never collapse to the same label in a dump.
  std::string s = std::to_string(t / sim::kMillisecond);
  sim::Time frac = t % sim::kMillisecond;
  if (frac != 0) {
    std::string f = std::to_string(frac);
    s += "." + std::string(3 - f.size(), '0') + f;
  }
  return s + "ms";
}

std::string FormatGroup(const std::vector<sim::NodeId>& g) {
  std::string s = "{";
  for (size_t i = 0; i < g.size(); ++i) {
    if (i) s += ",";
    s += std::to_string(g[i]);
  }
  return s + "}";
}

}  // namespace

const char* FaultKindName(FaultKind k) {
  switch (k) {
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kRestart:
      return "restart";
    case FaultKind::kPartition:
      return "partition";
    case FaultKind::kHeal:
      return "heal";
    case FaultKind::kDelaySpike:
      return "spike";
    case FaultKind::kDelayRestore:
      return "unspike";
    case FaultKind::kCoordinatorCrash:
      return "coord-crash";
    case FaultKind::kShardPartition:
      return "shard-partition";
  }
  return "?";
}

std::string FaultSchedule::ToString() const {
  std::string s = "schedule --seed=" + std::to_string(seed) + ": [";
  for (const FaultAction& a : actions) {
    s += " " + std::string(FaultKindName(a.kind));
    switch (a.kind) {
      case FaultKind::kCrash:
      case FaultKind::kRestart:
      case FaultKind::kCoordinatorCrash:
        s += "(" + std::to_string(a.node) + ")";
        break;
      case FaultKind::kPartition:
        s += "(" + FormatGroup(a.group_a) + "|" + FormatGroup(a.group_b) + ")";
        break;
      case FaultKind::kShardPartition:
        s += "(" + FormatGroup(a.group_b) + ")";
        break;
      case FaultKind::kDelaySpike:
        s += "(" + FormatMs(a.spike_min) + ".." + FormatMs(a.spike_max) + ")";
        break;
      case FaultKind::kHeal:
      case FaultKind::kDelayRestore:
        break;
    }
    s += "@" + FormatMs(a.at);
  }
  return s + " ]";
}

FaultSchedule GenerateSchedule(uint64_t seed, const FaultBounds& bounds) {
  // Decorrelate from the simulation rng (which protocols seed the same
  // way) so schedule shape and message delays are independent draws.
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0x45c1e3a8u);
  FaultSchedule schedule;
  schedule.seed = seed;

  const int num_events = 1 + static_cast<int>(rng.NextBounded(6));
  std::vector<sim::Time> times;
  times.reserve(num_events);
  const sim::Time lo = bounds.horizon / 20;
  const sim::Time hi = bounds.horizon * 9 / 10;
  for (int i = 0; i < num_events; ++i) {
    times.push_back(lo + static_cast<sim::Time>(
                             rng.NextBounded(static_cast<uint64_t>(hi - lo))));
  }
  std::sort(times.begin(), times.end());

  std::vector<bool> crashed(static_cast<size_t>(std::max(bounds.nodes, 1)),
                            false);
  int crashed_count = 0;
  bool partitioned = false;
  bool spiked = false;
  bool coordinator_crashed = false;

  for (sim::Time t : times) {
    std::vector<FaultKind> feasible;
    if (bounds.nodes > 0 && crashed_count < bounds.max_crashed) {
      feasible.push_back(FaultKind::kCrash);
      // Crashes are the bread and butter; double their weight relative to
      // the single-shot topology toggles.
      feasible.push_back(FaultKind::kCrash);
    }
    if (bounds.restartable && crashed_count > 0) {
      feasible.push_back(FaultKind::kRestart);
    }
    if (bounds.partitionable && !partitioned) {
      feasible.push_back(FaultKind::kPartition);
    }
    if (partitioned) feasible.push_back(FaultKind::kHeal);
    if (bounds.delay_spikes && !spiked) {
      feasible.push_back(FaultKind::kDelaySpike);
    }
    if (spiked) feasible.push_back(FaultKind::kDelayRestore);
    // The commitment-layer kinds only enter the pool when their bounds
    // fields are set, so schedules for every pre-existing bounds shape
    // (and their pinned repro strings) are bit-for-bit unchanged.
    if (bounds.coordinator != sim::kInvalidNode && !coordinator_crashed) {
      feasible.push_back(FaultKind::kCoordinatorCrash);
      feasible.push_back(FaultKind::kCoordinatorCrash);  // Weight like kCrash.
    }
    if (!bounds.shard_groups.empty() && !partitioned) {
      feasible.push_back(FaultKind::kShardPartition);
    }
    if (feasible.empty()) continue;

    FaultAction a;
    a.at = t;
    a.kind = feasible[rng.NextBounded(feasible.size())];
    a.aux = rng.Next();
    switch (a.kind) {
      case FaultKind::kCrash: {
        int pick = static_cast<int>(
            rng.NextBounded(static_cast<uint64_t>(bounds.nodes - crashed_count)));
        for (int i = 0; i < bounds.nodes; ++i) {
          if (crashed[i]) continue;
          if (pick-- == 0) {
            a.node = bounds.first_node + i;
            crashed[i] = true;
            ++crashed_count;
            break;
          }
        }
        break;
      }
      case FaultKind::kRestart: {
        int pick = static_cast<int>(
            rng.NextBounded(static_cast<uint64_t>(crashed_count)));
        for (int i = 0; i < bounds.nodes; ++i) {
          if (!crashed[i]) continue;
          if (pick-- == 0) {
            a.node = bounds.first_node + i;
            crashed[i] = false;
            --crashed_count;
            break;
          }
        }
        break;
      }
      case FaultKind::kPartition: {
        // Random two-group cut over the fault window; the injector folds
        // every node outside the window into group A.
        for (int i = 0; i < bounds.nodes; ++i) {
          sim::NodeId id = bounds.first_node + i;
          if (rng.Next() & 1) {
            a.group_a.push_back(id);
          } else {
            a.group_b.push_back(id);
          }
        }
        if (a.group_a.empty()) {
          a.group_a.push_back(a.group_b.back());
          a.group_b.pop_back();
        } else if (a.group_b.empty()) {
          a.group_b.push_back(a.group_a.back());
          a.group_a.pop_back();
        }
        partitioned = true;
        break;
      }
      case FaultKind::kHeal:
        partitioned = false;
        break;
      case FaultKind::kDelaySpike:
        a.spike_min =
            (5 + static_cast<sim::Duration>(rng.NextBounded(20))) *
            sim::kMillisecond;
        a.spike_max = a.spike_min +
                      (10 + static_cast<sim::Duration>(rng.NextBounded(80))) *
                          sim::kMillisecond;
        spiked = true;
        break;
      case FaultKind::kDelayRestore:
        spiked = false;
        break;
      case FaultKind::kCoordinatorCrash: {
        a.node = bounds.coordinator;
        // Land inside the configured window — derived from the aux draw
        // (already consumed for every action) so the rng stream stays
        // identical whether or not this kind is enabled.
        if (bounds.coordinator_window_hi > bounds.coordinator_window_lo) {
          a.at = bounds.coordinator_window_lo +
                 static_cast<sim::Time>(
                     a.aux % static_cast<uint64_t>(
                                 bounds.coordinator_window_hi -
                                 bounds.coordinator_window_lo));
        }
        coordinator_crashed = true;
        break;
      }
      case FaultKind::kShardPartition: {
        // Cut one whole shard group off; the injector folds every other
        // process into group A.
        a.group_b = bounds.shard_groups[a.aux % bounds.shard_groups.size()];
        partitioned = true;
        break;
      }
    }
    schedule.actions.push_back(std::move(a));
  }

  // Tail: put the world back together at the horizon so the quiesce phase
  // measures the protocol, not a still-broken network. Crash-stop
  // protocols keep their crashed nodes down — that is their fault model.
  if (partitioned) {
    FaultAction a;
    a.at = bounds.horizon;
    a.kind = FaultKind::kHeal;
    schedule.actions.push_back(std::move(a));
  }
  if (spiked) {
    FaultAction a;
    a.at = bounds.horizon;
    a.kind = FaultKind::kDelayRestore;
    schedule.actions.push_back(std::move(a));
  }
  if (bounds.restartable) {
    for (int i = 0; i < bounds.nodes; ++i) {
      if (!crashed[i]) continue;
      FaultAction a;
      a.at = bounds.horizon;
      a.kind = FaultKind::kRestart;
      a.node = bounds.first_node + i;
      schedule.actions.push_back(std::move(a));
    }
  }
  if (coordinator_crashed && bounds.coordinator_restartable) {
    FaultAction a;
    a.at = bounds.horizon;
    a.kind = FaultKind::kRestart;
    a.node = bounds.coordinator;
    schedule.actions.push_back(std::move(a));
  }
  return schedule;
}

void InjectSchedule(sim::Simulation* sim, const FaultSchedule& schedule) {
  // Captured before the run starts: delay-restore always returns to the
  // pre-fault network, even if the spike action itself was shrunk away.
  const sim::NetworkOptions base = sim->options();
  for (const FaultAction& a : schedule.actions) {
    sim->ScheduleAt(a.at, [sim, a, base] {
      switch (a.kind) {
        case FaultKind::kCrash:
        case FaultKind::kCoordinatorCrash:
          if (!sim->IsCrashed(a.node)) sim->Crash(a.node);
          break;
        case FaultKind::kRestart:
          if (sim->IsCrashed(a.node)) sim->Restart(a.node);
          break;
        case FaultKind::kShardPartition:
        case FaultKind::kPartition: {
          std::vector<sim::NodeId> group_a = a.group_a;
          for (sim::NodeId id = 0; id < sim->num_processes(); ++id) {
            bool in_b = std::find(a.group_b.begin(), a.group_b.end(), id) !=
                        a.group_b.end();
            bool in_a = std::find(group_a.begin(), group_a.end(), id) !=
                        group_a.end();
            if (!in_a && !in_b) group_a.push_back(id);
          }
          sim->Partition({group_a, a.group_b});
          break;
        }
        case FaultKind::kHeal:
          sim->Heal();
          break;
        case FaultKind::kDelaySpike: {
          sim::NetworkOptions o = sim->options();
          o.min_delay = a.spike_min;
          o.max_delay = a.spike_max;
          sim->SetNetworkOptions(o);
          break;
        }
        case FaultKind::kDelayRestore:
          sim->SetNetworkOptions(base);
          break;
      }
    });
  }
}

}  // namespace consensus40::check
