/// \file
/// Cross-protocol safety checker. Each protocol implements ProtocolAdapter
/// to expose its safety-relevant observables in one normal form; the
/// checker then runs the protocol under a seeded fault schedule
/// (fault_schedule.h) and evaluates pluggable invariants:
///
///   - Agreement: per consensus instance, no two nodes decide differently.
///   - Validity: every decided value was actually proposed.
///   - Integrity: a node never changes a value it already decided
///     (probed repeatedly during the run, not just at the end).
///   - Prefix consistency: committed SMR logs are prefixes of one another.
///   - Atomicity: no transaction is committed at one node and aborted at
///     another (2PC / 3PC).
///
/// Self-reported violations (protocols' own `violations()` counters) are
/// folded in as well, so checker sweeps subsume the ad-hoc per-protocol
/// assertions.

#ifndef CONSENSUS40_CHECK_CHECKER_H_
#define CONSENSUS40_CHECK_CHECKER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "check/fault_schedule.h"
#include "sim/simulation.h"

namespace consensus40::check {

/// A snapshot of everything safety-relevant a protocol can say about
/// itself. Empty containers mean "this protocol has no such observable"
/// and the corresponding invariant vacuously holds.
struct Observation {
  /// instance label -> (node id -> decided value). Single-decree
  /// protocols use one instance ("0"); leader-election observables can
  /// use labels like "term/3". Crashed nodes may legitimately appear:
  /// a decision made before crashing still binds the protocol.
  std::map<std::string, std::map<sim::NodeId, std::string>> decided;

  /// If non-empty: the universe of proposed values; every decided value
  /// must be one of them (Validity).
  std::vector<std::string> allowed;

  /// Committed command sequences, one per replica (SMR protocols). Any
  /// two must be prefix-compatible.
  std::vector<std::vector<std::string>> logs;

  /// tx id -> (node id -> verdict) where the verdict is one of
  /// 'C' (committed), 'A' (aborted), 'P' (prepared/in doubt),
  /// 'U' (unknown). 'C' and 'A' for the same tx is an atomicity
  /// violation; 'P'/'U' conflict with nothing.
  std::map<uint64_t, std::map<sim::NodeId, char>> verdicts;

  /// Violations the protocol detected itself; passed through verbatim.
  std::vector<std::string> self_reported;
};

/// What each protocol implements to plug into the checker. Factories live
/// next to the protocol (e.g. src/raft/raft_check.cc) and are declared in
/// check/adapters.h; the adapter owns everything the protocol needs
/// beyond the simulation (key registries, clients, adversaries).
class ProtocolAdapter {
 public:
  virtual ~ProtocolAdapter() = default;

  virtual const char* name() const = 0;

  /// The fault envelope this protocol claims safety under.
  virtual FaultBounds bounds() const = 0;

  /// Spawns the cluster and its workload into `sim` (called once, before
  /// the run starts).
  virtual void Build(sim::Simulation* sim) = 0;

  /// True once the workload has finished (all client ops done / all
  /// values decided). Used for early exit and the liveness check.
  virtual bool Done() const = 0;

  /// Whether in-bounds schedules must also terminate: after the schedule
  /// tail restores the world, Done() must become true within the quiesce
  /// budget. Off for protocols that block by design under their fault
  /// model (e.g. 2PC with a crashed coordinator).
  virtual bool ExpectTermination() const { return true; }

  /// Periodic hook during the run (the checker's probe cadence). Lets an
  /// adapter model client-side recovery — e.g. re-proposing after the
  /// original proposer crashed — without touching protocol code.
  virtual void OnProbe(sim::Simulation* sim) { (void)sim; }

  /// Snapshot of the safety observables.
  virtual Observation Observe() const = 0;

  /// Non-simulation protocols (FloodSet's lockstep rounds) bypass the
  /// event loop: they map the schedule onto their own fault model and
  /// return the final observation directly.
  virtual bool RunsDirect() const { return false; }
  virtual Observation RunDirect(const FaultSchedule& schedule) {
    (void)schedule;
    return {};
  }
};

using AdapterFactory =
    std::function<std::unique_ptr<ProtocolAdapter>(uint64_t seed)>;

/// Evaluates all end-state invariants over one observation. Returns
/// human-readable violation descriptions (empty = all invariants hold).
std::vector<std::string> CheckInvariants(const Observation& o);

struct RunResult {
  std::vector<std::string> violations;
  /// Whether the workload finished within horizon + quiesce.
  bool completed = false;

  bool violated() const { return !violations.empty(); }
};

/// Runs one protocol instance under one fault schedule and checks every
/// invariant, including the Integrity probe (decisions must never change
/// once made) sampled throughout the run. Deterministic in (factory
/// behaviour, seed, schedule).
RunResult RunSchedule(const AdapterFactory& factory, uint64_t seed,
                      const FaultSchedule& schedule);

/// Convenience: generate the schedule for `seed` from the adapter's own
/// bounds, run it, and return both.
RunResult RunSeed(const AdapterFactory& factory, uint64_t seed,
                  FaultSchedule* schedule_out = nullptr);

}  // namespace consensus40::check

#endif  // CONSENSUS40_CHECK_CHECKER_H_
