/// \file
/// Factory declarations for every protocol's checker adapter. The
/// definitions live next to the protocols they wrap (src/raft/
/// raft_check.cc, src/pbft/pbft_check.cc, ...), so protocol authors keep
/// ownership of their observables; this header is the checker-side
/// roster.
///
/// Factories named *OutOfBounds* configure the protocol outside its
/// stated fault/quorum model and exist so tests can assert the checker
/// finds the violations the paper predicts (non-intersecting Paxos
/// quorums, FloodSet with only f rounds, PBFT at n = 3f).

#ifndef CONSENSUS40_CHECK_ADAPTERS_H_
#define CONSENSUS40_CHECK_ADAPTERS_H_

#include <string>
#include <utility>
#include <vector>

#include "check/checker.h"

namespace consensus40::check {

/// Generic SMR adapter over the consensus::ReplicaGroup registry:
/// `protocol` is a registry key ("raft", "multi_paxos", or anything a
/// test registered). MakeRaftAdapter / MakeMultiPaxosAdapter below are
/// now thin wrappers around this.
/// `num_ops` sizes the client workload. The default 6 finishes within
/// ~100 ms of virtual time — before the schedule generator's first fault
/// slot — so it exercises recovery of *persisted* state. Protocols whose
/// failure mode only shows when commits straddle a fault (e.g. Crossword's
/// coded entries dying with the leader) pass a larger count so the
/// workload spans the whole fault window.
AdapterFactory MakeGroupAdapter(std::string protocol, int num_ops = 6);

/// The same group adapter with the hot-path optimisations on: leader-side
/// batching (batch_size 4, 1ms linger) and a windowed client (4 ops in
/// flight). The sweep proof that batched log entries and out-of-order
/// client arrivals stay inside the safety envelope.
AdapterFactory MakeBatchedGroupAdapter(std::string protocol);

// --- In-bounds adapters (safety must hold for every schedule) ---
AdapterFactory MakePaxosAdapter();          ///< single-decree, n=5
AdapterFactory MakeMultiPaxosAdapter();     ///< SMR, n=5 + client
AdapterFactory MakeFastPaxosAdapter();      ///< n=4, coordinator shielded
AdapterFactory MakeRaftAdapter();           ///< SMR, n=5 + client
AdapterFactory MakePbftAdapter();           ///< n=4, f=1
AdapterFactory MakeMinBftAdapter();         ///< n=3, f=1 (USIG)
AdapterFactory MakeHotStuffAdapter();       ///< n=4, f=1
AdapterFactory MakeXftAdapter();            ///< n=5, crash faults only
AdapterFactory MakeZyzzyvaAdapter();        ///< n=4, primary shielded
AdapterFactory MakeCheapBftAdapter();       ///< f=1, passive activation
AdapterFactory MakeTwoPhaseCommitAdapter();   ///< blocking: no liveness claim
AdapterFactory MakeThreePhaseCommitAdapter(); ///< crash-only, synchronous
AdapterFactory MakeBenOrAdapter();          ///< n=5, f=2, randomized
AdapterFactory MakeFloodSetAdapter();       ///< f+1 rounds (runs direct)

/// The sharded state machine (src/shard/): 2 shards x 3 replicas plus a
/// 3-replica decision group, cross-shard transactions committed by
/// 2PC-over-consensus. In bounds even for coordinator crashes in the
/// prepare/commit window and whole-shard partitions: atomicity must hold
/// and — because the decision is a replicated record — the workload must
/// still terminate.
AdapterFactory MakeShardAdapter();

/// The shard composition with batching + windowed clients throughout
/// (see MakeBatchedGroupAdapter); same fault bounds and expectations.
AdapterFactory MakeShardBatchedAdapter();

/// Crossword: adaptive erasure-coded Multi-Paxos (n=5). The adaptive
/// variant slides between full copies and coded shards; the _rs variant
/// pins one shard per acceptor, which maximises the reconstruction and
/// fragment-recovery machinery the sweep needs to stress. Both are in
/// bounds for the usual crash/restart/partition envelope because the
/// widened accept quorum q2(c) = max(n+1-c, majority) keeps every
/// phase-1 majority able to reassemble any possibly-chosen value.
AdapterFactory MakeCrosswordAdapter();
AdapterFactory MakeCrosswordRsAdapter();

/// Elastic resharding: 2 shards + 1 spare group with one live range move
/// racing the transactions, under mover-crash and owner-partition faults
/// on top of the usual envelope. Must stay atomic AND terminate: every
/// move transition is a write-once decision-group record.
AdapterFactory MakeShardReshardAdapter();

/// Typed read-write transactions (GET/PUT/DELETE/CAS with prepare-time
/// shared/exclusive locking) plus repeated read-only snapshots, racing a
/// live range move under the reshard fault envelope. On top of the
/// atomicity verdicts the adapter audits serializability: every
/// schedule's committed reads must admit a serial order.
AdapterFactory MakeShardTxnAdapter();

// --- In-bounds Byzantine variants (sim::ByzantineInterposer-driven) ---
//
// Each BFT adapter's Byzantine twin keeps the protocol inside its stated
// fault model (|crashed ∪ byzantine| <= f) but lets the schedule turn one
// node into a liar for seed-chosen windows: equivocation (where the
// protocol has a forge hook), withheld or corrupted outbound traffic, and
// replayed stale captures. Safety must hold for every schedule.
AdapterFactory MakePbftByzantineAdapter();      ///< full hooks + view storms
AdapterFactory MakeZyzzyvaByzantineAdapter();   ///< backups only lie
AdapterFactory MakeMinBftByzantineAdapter();    ///< USIG bounds the lying
AdapterFactory MakeHotStuffByzantineAdapter();  ///< pacemaker absorbs it
AdapterFactory MakeXftByzantineAdapter();       ///< non-anarchy slice
AdapterFactory MakeCheapBftByzantineAdapter();  ///< PANIC/CheapSwitch path

// --- Out-of-bounds adapters (violations must be discoverable) ---

/// Paxos with q1 = q2 = 2 at n = 4: quorums need not intersect, so a
/// partition lets two proposers decide different values.
AdapterFactory MakePaxosOutOfBoundsAdapter();

/// FloodSet cut one round short (f rounds for f crashes): a crash chain
/// can hide a value from part of the cluster in every round.
AdapterFactory MakeFloodSetOutOfBoundsAdapter();

/// PBFT at n = 3, f = 1 (i.e. n = 3f): the quorum math degenerates
/// (computed f' = 0, replicas commit straight from a pre-prepare), so an
/// equivocating primary — f'+1 liars for the quorum math in force,
/// schedule-driven through the reusable Byzantine interposer — forks the
/// two honest backups into a pinned, shrinkable prefix violation.
AdapterFactory MakePbftOutOfBoundsAdapter();

/// Plain 2PC (src/commit/) under the coordinator-crash-between-prepare-
/// and-commit window with no restart — the blocking scenario the shard
/// layer's replicated decision record exists to eliminate. Termination
/// is (deliberately, wrongly) expected, so every schedule that fires the
/// coordinator crash yields a discoverable liveness violation while
/// safety still holds.
AdapterFactory MakeTwoPhaseCommitBlockingAdapter();

/// Crossword with the coded-accept quorum cut to a bare majority
/// (unsafe_majority_quorum): a 1-shard entry can be "chosen" with only
/// majority-many distinct shards outstanding, fewer than the k needed to
/// reconstruct. Crash the right acceptors and the value is either
/// unrecoverable (liveness violation: the group stalls on a slot nobody
/// can reassemble) or a new leader no-op-fills a decided slot (prefix
/// divergence). Escalation is disabled so the schedule's crashes land.
AdapterFactory MakeCrosswordOutOfBoundsAdapter();

/// The typed-transaction composition with GET ops' shared locks
/// switched off (unsafe_no_read_locks) and two concurrent write-skew
/// clients: both commit having read the initial versions of each
/// other's write targets, so no serial order explains the history — the
/// serializability audit must find it.
AdapterFactory MakeShardTxnNoReadLocksAdapter();

/// The live-move ladder with the flip made BEFORE freeze + drain: a
/// transaction still in flight at the old owner applies its writes
/// behind the copy snapshot and the routing fence, so a committed write
/// exists at no owner — the lost-write violation the safe phase order
/// (claim -> freeze -> drain -> copy -> flip -> unfreeze) prevents.
AdapterFactory MakeShardReshardOutOfBoundsAdapter();

/// The full in-bounds roster, as (name, factory) pairs, for sweeping.
std::vector<std::pair<const char*, AdapterFactory>> AllInBoundsAdapters();

}  // namespace consensus40::check

#endif  // CONSENSUS40_CHECK_ADAPTERS_H_
