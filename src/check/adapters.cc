#include "check/adapters.h"

namespace consensus40::check {

std::vector<std::pair<const char*, AdapterFactory>> AllInBoundsAdapters() {
  return {
      {"paxos", MakePaxosAdapter()},
      {"multi_paxos", MakeMultiPaxosAdapter()},
      {"fast_paxos", MakeFastPaxosAdapter()},
      {"raft", MakeRaftAdapter()},
      {"pbft", MakePbftAdapter()},
      {"minbft", MakeMinBftAdapter()},
      {"hotstuff", MakeHotStuffAdapter()},
      {"xft", MakeXftAdapter()},
      {"zyzzyva", MakeZyzzyvaAdapter()},
      {"cheapbft", MakeCheapBftAdapter()},
      {"2pc", MakeTwoPhaseCommitAdapter()},
      {"3pc", MakeThreePhaseCommitAdapter()},
      {"benor", MakeBenOrAdapter()},
      {"floodset", MakeFloodSetAdapter()},
  };
}

}  // namespace consensus40::check
