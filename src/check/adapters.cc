#include "check/adapters.h"

#include <memory>
#include <string>
#include <utility>

#include "consensus/replica_group.h"

namespace consensus40::check {
namespace {

/// Protocol-agnostic SMR checker adapter: builds a replication group
/// through the consensus::ReplicaGroup registry and drives it with one
/// closed-loop GroupClient mixing writes and linearizable reads.
/// Observables are the per-replica committed prefixes plus whatever the
/// group self-reports (RaftGroup's Probe tracks Election Safety, for
/// instance). One implementation covers every registered SMR protocol —
/// the per-protocol adapter files this replaces were near-duplicates.
class GroupCheckAdapter : public ProtocolAdapter {
 public:
  GroupCheckAdapter(std::string label, std::string protocol,
                    consensus::GroupTuning tuning, int client_window,
                    int num_ops = kOps)
      : label_(std::move(label)),
        protocol_(std::move(protocol)),
        tuning_(tuning),
        client_window_(client_window),
        num_ops_(num_ops) {}

  const char* name() const override { return label_.c_str(); }

  FaultBounds bounds() const override {
    FaultBounds b;
    b.nodes = kN;
    b.max_crashed = (kN - 1) / 2;
    b.restartable = true;  // SMR protocols here persist across OnRestart.
    b.partitionable = true;
    return b;
  }

  void Build(sim::Simulation* sim) override {
    group_ = consensus::MakeGroup(protocol_);
    group_->Configure(tuning_);
    group_->Create(sim, kN);
    client_ = sim->Spawn<consensus::GroupClient>(
        group_.get(), 300 * sim::kMillisecond, client_window_);
    client_->SetCallback(
        [this](uint64_t, const std::string&, bool) { ++completed_; });
    // The whole workload queues up front; the client keeps at most its
    // window on the wire (one, by default) and drains the rest as
    // replies come back. The operations are mutually independent, so a
    // window > 1 (the batched variant) is within the windowing contract.
    // The mix covers the write path and the protocol's read path (Raft
    // answers the reads via read-index, Multi-Paxos through the log).
    for (int i = 0; i < num_ops_; ++i) {
      if (i % 3 == 2) {
        client_->Read("x" + std::to_string(i % 2));
      } else {
        client_->Submit("PUT x" + std::to_string(i % 2) + " v" +
                        std::to_string(i));
      }
    }
  }

  bool Done() const override { return completed_ >= num_ops_; }

  void OnProbe(sim::Simulation*) override { group_->Probe(); }

  Observation Observe() const override {
    Observation o;
    for (int i = 0; i < kN; ++i) {
      std::vector<std::string> log;
      for (const smr::Command& cmd : group_->CommittedPrefix(i)) {
        log.push_back(cmd.ToString());
      }
      o.logs.push_back(std::move(log));
    }
    for (const std::string& v : group_->Violations()) {
      o.self_reported.push_back(protocol_ + ": " + v);
    }
    return o;
  }

 private:
  static constexpr int kN = 5;
  static constexpr int kOps = 6;
  std::string label_;
  std::string protocol_;
  consensus::GroupTuning tuning_;
  int client_window_ = 1;
  int num_ops_ = kOps;
  std::unique_ptr<consensus::ReplicaGroup> group_;
  consensus::GroupClient* client_ = nullptr;
  int completed_ = 0;
};

}  // namespace

AdapterFactory MakeGroupAdapter(std::string protocol, int num_ops) {
  return [protocol = std::move(protocol), num_ops](uint64_t) {
    return std::make_unique<GroupCheckAdapter>(protocol, protocol,
                                               consensus::GroupTuning{},
                                               /*client_window=*/1, num_ops);
  };
}

AdapterFactory MakeBatchedGroupAdapter(std::string protocol) {
  // Snapshotting stays off here: after a snapshot install a replica's
  // committed prefix is suffix-only, which the pairwise prefix invariant
  // would misread as divergence. Snapshot+window interplay is covered by
  // dedicated regression tests instead.
  consensus::GroupTuning tuning;
  tuning.batch_size = 4;
  tuning.batch_delay = 1 * sim::kMillisecond;
  return [protocol = std::move(protocol), tuning](uint64_t) {
    return std::make_unique<GroupCheckAdapter>(protocol + "_batched", protocol,
                                               tuning, /*client_window=*/4);
  };
}

AdapterFactory MakeRaftAdapter() { return MakeGroupAdapter("raft"); }

// The Crossword adapters run 40 ops instead of the default 6: coded
// entries are only under-replicated while followers hold fragments, so
// the dangerous state exists between a sharded commit and its
// reconstruction — the workload must still be in flight when the
// schedule's first fault lands (>= horizon/20) to exercise it.
AdapterFactory MakeCrosswordAdapter() {
  return MakeGroupAdapter("crossword", /*num_ops=*/40);
}

AdapterFactory MakeCrosswordRsAdapter() {
  return MakeGroupAdapter("crossword_rs", /*num_ops=*/40);
}

AdapterFactory MakeCrosswordOutOfBoundsAdapter() {
  return MakeGroupAdapter("crossword_unsafe", /*num_ops=*/40);
}

AdapterFactory MakeMultiPaxosAdapter() {
  return MakeGroupAdapter("multi_paxos");
}

std::vector<std::pair<const char*, AdapterFactory>> AllInBoundsAdapters() {
  return {
      {"paxos", MakePaxosAdapter()},
      {"multi_paxos", MakeMultiPaxosAdapter()},
      {"fast_paxos", MakeFastPaxosAdapter()},
      {"raft", MakeRaftAdapter()},
      {"pbft", MakePbftAdapter()},
      {"minbft", MakeMinBftAdapter()},
      {"hotstuff", MakeHotStuffAdapter()},
      {"xft", MakeXftAdapter()},
      {"zyzzyva", MakeZyzzyvaAdapter()},
      {"cheapbft", MakeCheapBftAdapter()},
      {"2pc", MakeTwoPhaseCommitAdapter()},
      {"3pc", MakeThreePhaseCommitAdapter()},
      {"benor", MakeBenOrAdapter()},
      {"floodset", MakeFloodSetAdapter()},
      {"crossword", MakeCrosswordAdapter()},
      {"crossword_rs", MakeCrosswordRsAdapter()},
      {"shard", MakeShardAdapter()},
      {"raft_batched", MakeBatchedGroupAdapter("raft")},
      {"multi_paxos_batched", MakeBatchedGroupAdapter("multi_paxos")},
      {"shard_batched", MakeShardBatchedAdapter()},
      {"shard_reshard", MakeShardReshardAdapter()},
      {"shard_txn", MakeShardTxnAdapter()},
      {"pbft_byz", MakePbftByzantineAdapter()},
      {"zyzzyva_byz", MakeZyzzyvaByzantineAdapter()},
      {"minbft_byz", MakeMinBftByzantineAdapter()},
      {"hotstuff_byz", MakeHotStuffByzantineAdapter()},
      {"xft_byz", MakeXftByzantineAdapter()},
      {"cheapbft_byz", MakeCheapBftByzantineAdapter()},
  };
}

}  // namespace consensus40::check
