/// \file
/// Greedy delta-debugging shrinker for fault schedules. Given a schedule
/// that triggers a violation, finds a (locally) minimal sub-schedule that
/// still triggers one, so the repro recipe printed to the user is a
/// handful of actions instead of a wall of them.

#ifndef CONSENSUS40_CHECK_SHRINK_H_
#define CONSENSUS40_CHECK_SHRINK_H_

#include <functional>

#include "check/fault_schedule.h"

namespace consensus40::check {

/// Returns true if the candidate schedule still exhibits the violation.
/// Must be deterministic (re-running the same candidate gives the same
/// answer) — which the simulator guarantees as long as the test replays
/// with the same seed.
using ScheduleTestFn = std::function<bool(const FaultSchedule&)>;

struct ShrinkStats {
  int runs = 0;      ///< candidate schedules evaluated
  int removed = 0;   ///< actions shrunk away
};

/// ddmin-style greedy minimization: repeatedly tries to delete chunks of
/// actions (halving the chunk size down to 1) and keeps any deletion that
/// preserves the violation, until a fixed point or `max_runs` candidate
/// evaluations. `schedule` must already violate; the result is 1-minimal
/// w.r.t. single-action removal when the budget was not exhausted.
FaultSchedule ShrinkSchedule(FaultSchedule schedule,
                             const ScheduleTestFn& still_violates,
                             int max_runs = 400,
                             ShrinkStats* stats = nullptr);

}  // namespace consensus40::check

#endif  // CONSENSUS40_CHECK_SHRINK_H_
