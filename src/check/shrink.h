/// \file
/// Greedy delta-debugging shrinker for fault schedules. Given a schedule
/// that triggers a violation, finds a (locally) minimal sub-schedule that
/// still triggers one, so the repro recipe printed to the user is a
/// handful of actions instead of a wall of them. A post-shrink
/// canonicalization pass then snaps the surviving action times to round
/// numbers and zeroes unused generator randomness, so repro lines stay
/// byte-stable across schedule-generator refactors.

#ifndef CONSENSUS40_CHECK_SHRINK_H_
#define CONSENSUS40_CHECK_SHRINK_H_

#include <functional>

#include "check/fault_schedule.h"

namespace consensus40 {
class ThreadPool;
}

namespace consensus40::check {

/// Returns true if the candidate schedule still exhibits the violation.
/// Must be deterministic (re-running the same candidate gives the same
/// answer) — which the simulator guarantees as long as the test replays
/// with the same seed — and, when a pool is passed to ShrinkSchedule,
/// safe to invoke from several threads at once (each invocation runs its
/// own Simulation, so the stock RunSchedule-based closures qualify).
using ScheduleTestFn = std::function<bool(const FaultSchedule&)>;

struct ShrinkStats {
  int runs = 0;         ///< Candidate schedules evaluated (committed).
  int removed = 0;      ///< Actions shrunk away.
  int snapped = 0;      ///< Canonicalization edits accepted.
  int speculative = 0;  ///< Parallel-only: evaluations discarded because an
                        ///< earlier candidate in the batch already hit.
};

/// ddmin-style greedy minimization: repeatedly tries to delete chunks of
/// actions (halving the chunk size down to 1) and keeps any deletion that
/// preserves the violation, until a fixed point or `max_runs` candidate
/// evaluations. `schedule` must already violate; the result is 1-minimal
/// w.r.t. single-action removal when the budget was not exhausted.
///
/// Every candidate is repaired with RestoreScheduleTail(bounds) before it
/// is replayed, so the shrinker only ever proposes schedules the
/// generator could have emitted. Deleting the tail heal of a partition
/// would otherwise "preserve" any liveness violation trivially — the
/// cluster can never finish behind a permanent partition — and the
/// printed repro would mask the real bug. A deletion whose repair merely
/// re-appends what was deleted is rejected without a replay (it cannot
/// shrink the schedule).
///
/// With a `pool`, candidate evaluation is speculative: up to workers()
/// deletion candidates are evaluated concurrently against the current
/// schedule, then committed in scan order, keeping only the first hit.
/// The committed decision sequence — and therefore the result, and
/// `stats->runs` — is byte-identical to the serial scan; discarded
/// evaluations are tallied in `stats->speculative` instead.
FaultSchedule ShrinkSchedule(FaultSchedule schedule, const FaultBounds& bounds,
                             const ScheduleTestFn& still_violates,
                             int max_runs = 400, ShrinkStats* stats = nullptr,
                             ThreadPool* pool = nullptr);

/// Canonicalization pass, run after ddmin: for each surviving action,
/// zero its generator-drawn `aux` randomness and snap its time to the
/// coarsest round granularity (100/50/20/10/5/1 ms, nearest multiple)
/// that still violates. Each trial costs one `still_violates` run,
/// accumulated into `stats` (which is NOT reset — pass the same struct
/// as ShrinkSchedule to get a combined budget picture). Candidates that
/// break the closed-world tail (e.g. a heal snapped before its partition)
/// are rejected outright, same rule as ShrinkSchedule.
FaultSchedule CanonicalizeSchedule(FaultSchedule schedule,
                                   const FaultBounds& bounds,
                                   const ScheduleTestFn& still_violates,
                                   ShrinkStats* stats = nullptr);

}  // namespace consensus40::check

#endif  // CONSENSUS40_CHECK_SHRINK_H_
