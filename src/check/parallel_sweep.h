/// \file
/// Parallel fault-schedule sweep engine. Shards (adapter factory, seed)
/// pairs across a work-stealing thread pool (common/thread_pool.h), runs
/// each pair in its own Simulation on whichever worker picks it up, and
/// merges the per-seed outcomes into a deterministic, seed-ordered report.
///
/// Determinism contract: the merged SweepReport — including its exact
/// ToString() rendering — is a pure function of (roster, SweepOptions).
/// It is byte-identical whether the sweep ran on 1 worker or N, because
/// every task writes into a pre-sized per-seed slot and the merge walks
/// the slots in roster-then-seed order; nothing observable depends on
/// execution order. This only holds because nothing in the simulator or
/// checker path shares mutable state across Simulation instances (RNG,
/// string interner, slab queues, key registries, and USIG counters are
/// all per-instance) — the TSan preset runs the sweep tests to keep that
/// audit enforced.
///
/// Concurrency contract for adapters: a roster factory may be invoked
/// from several threads at once (one invocation per in-flight seed), so
/// factories must be stateless or internally synchronized. Every factory
/// in check/adapters.h is a stateless lambda; the adapter instances they
/// return are used by exactly one worker.

#ifndef CONSENSUS40_CHECK_PARALLEL_SWEEP_H_
#define CONSENSUS40_CHECK_PARALLEL_SWEEP_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "check/checker.h"
#include "common/thread_pool.h"

namespace consensus40::check {

struct SweepOptions {
  /// Seeds swept per protocol: [first_seed, first_seed + seeds).
  uint64_t first_seed = 1;
  uint64_t seeds = 200;

  /// On violation, ddmin-shrink the schedule and canonicalize the
  /// survivors (shrink.h) so the report carries a minimal, stable repro.
  bool shrink_repros = true;
  int shrink_max_runs = 400;
};

/// Per-protocol slice of a sweep, merged in seed order.
struct ProtocolSweepResult {
  std::string protocol;
  uint64_t schedules = 0;        ///< Seeds run.
  uint64_t actions = 0;          ///< Fault actions across all schedules.
  uint64_t violations = 0;       ///< Seeds with >= 1 violation.
  uint64_t incomplete = 0;       ///< Seeds whose workload missed Done().
  /// Violation count per invariant family — the text before the first
  /// ':' of each violation line ("agreement", "prefix", "liveness", ...).
  std::map<std::string, uint64_t> by_invariant;
  /// One line per violating seed, in seed order:
  ///   "seed 7: agreement: ... | schedule --seed=7: [ ... ]"
  /// Shrunk + canonicalized when SweepOptions::shrink_repros is set.
  std::vector<std::string> repros;
};

struct SweepReport {
  std::vector<ProtocolSweepResult> protocols;  ///< Roster order.

  uint64_t total_schedules() const;
  uint64_t total_violations() const;

  /// Deterministic rendering: protocol table plus every repro line.
  /// Byte-identical across worker counts for the same (roster, options).
  std::string ToString() const;
};

/// Sweeps every (factory, seed) pair of the roster. `pool` may be null
/// (or single-worker), which runs the identical code path inline — the
/// serial reference the equivalence tests compare against.
SweepReport RunSweep(
    const std::vector<std::pair<const char*, AdapterFactory>>& roster,
    const SweepOptions& options, ThreadPool* pool = nullptr);

}  // namespace consensus40::check

#endif  // CONSENSUS40_CHECK_PARALLEL_SWEEP_H_
