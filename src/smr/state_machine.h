#ifndef CONSENSUS40_SMR_STATE_MACHINE_H_
#define CONSENSUS40_SMR_STATE_MACHINE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "crypto/sha256.h"
#include "smr/command.h"

namespace consensus40::smr {

/// Deterministic state machine interface: the paper's "add jmp mov shl"
/// boxes. Replicas apply the same commands in the same order and must
/// produce identical states and outputs.
class StateMachine {
 public:
  virtual ~StateMachine() = default;

  /// Applies one command and returns its output.
  virtual std::string Apply(const Command& cmd) = 0;

  /// Digest of the full current state, used by checkpointing (PBFT) and by
  /// the test suite's replica-equivalence checks.
  virtual crypto::Digest StateDigest() const = 0;
};

/// An in-memory key-value store understanding:
///   "PUT <key> <value>"          -> "OK"
///   "GET <key>"                  -> value or "NIL"
///   "DEL <key>"                  -> "OK" or "NIL"
///   "SETNX <key> <value>"        -> "OK" if absent, else existing value
///   "CAS <key> <old> <new>"      -> "OK" or "FAIL"
///   "INC <key>"                  -> new integer value (missing key = 0)
///   "DISOWN <lo> <hi> <epoch>"   -> "OK"; fences the FNV-1a hash range
///   "MIGRATE <lo> <hi> <epoch>"  -> DISOWN + snapshot of the range's keys
///   "INSTALL <lo> <hi> <epoch> <pairs>" -> "OK <n>"; bulk-sets migrated
///                                   pairs and records range ownership
///   anything else                -> "ERR"
///
/// SETNX is the write-once primitive behind replicated transaction-commit
/// records (Gray & Lamport's "Consensus on Transaction Commit"): the first
/// SETNX on a decision key wins and every later proposal — a recovering
/// participant proposing abort, a duplicate coordinator decision — gets
/// the established decision back instead. CAS cannot express this (it
/// fails on a missing key).
///
/// DISOWN/MIGRATE/INSTALL are the shard layer's live-migration data
/// plane. A disowned range [lo, hi) over the 64-bit FNV-1a key-hash space
/// (hi == 0 means 2^64) is fenced: every later point op on a key hashing
/// into it returns "MOVED <epoch>" instead of executing, so a client or
/// transaction manager routing by a stale table is bounced toward the
/// new owner rather than silently mutating orphaned state. MIGRATE is
/// the atomic stop-and-copy primitive — ONE log entry that both fences
/// the range and returns the exact set of its key/value pairs (encoded
/// with EncodeKvPairs), so no write can slip between the snapshot and
/// the fence. INSTALL stamps the destination with an ownership record
/// for the installed range; an ownership record at or above a fence's
/// epoch outranks it, so a range moved back to a previous owner
/// (A->B->A) serves again instead of bouncing on the stale fence.
/// Fence and ownership records live inside data_ under the reserved
/// "__" prefix (ops on "__*" keys are never fenced), riding snapshots,
/// digests, and state transfer for free.
class KvStore : public StateMachine {
 public:
  std::string Apply(const Command& cmd) override;
  crypto::Digest StateDigest() const override;

  /// Direct read access for tests.
  std::optional<std::string> Get(const std::string& key) const;
  size_t size() const { return data_.size(); }

  /// The routing epoch that fenced `key` away, if any — the same check
  /// Apply performs, exposed for read paths that bypass the log (Raft
  /// read-index serves reads straight from the store).
  std::optional<uint64_t> MovedEpoch(const std::string& key) const;

  /// Snapshot support (Raft log compaction, state transfer).
  std::map<std::string, std::string> Snapshot() const { return data_; }
  void Restore(std::map<std::string, std::string> data) {
    data_ = std::move(data);
  }

 private:
  std::map<std::string, std::string> data_;
};

/// Length-prefixed key/value framing for MIGRATE results and INSTALL
/// payloads ("<klen>:<key><vlen>:<value>" repeated — keys and values may
/// contain anything). DecodeKvPairs returns nullopt on malformed input,
/// distinct from the legal empty payload.
std::string EncodeKvPairs(
    const std::vector<std::pair<std::string, std::string>>& pairs);
std::optional<std::vector<std::pair<std::string, std::string>>> DecodeKvPairs(
    const std::string& payload);

/// At-most-once execution filter: a client command that reaches the log
/// twice (e.g. retried across a leader change) must only be applied once.
/// All replicas run the same deterministic filter, so replicated state stays
/// identical.
///
/// Each client issues sequence numbers 1, 2, 3, ... but — because clients
/// keep a transmission WINDOW of operations in flight — the seqs may reach
/// the log out of order within that window, and a reply-lost operation may
/// be retried long after later seqs executed. The session keeps the exact
/// per-seq result of every operation the client could still retry, and
/// discards a result only once the client has ACKNOWLEDGED the operation
/// (via the cumulative `Command::acked` field every command piggybacks):
/// the floor tracks the acked prefix, so a retry of any unacked seq is
/// answered with ITS OWN cached result, never a neighbour's. Per-client
/// memory is bounded by the client's executed-but-unacked operations —
/// the in-flight window in steady state.
class DedupingExecutor {
 public:
  /// One client's execution record.
  struct Session {
    /// Every seq in [1, floor] has been executed AND acked by the client
    /// (floor never outruns `acked`), so its result can no longer be
    /// consumed; retries of such seqs get an empty placeholder reply.
    uint64_t floor = 0;
    /// Highest cumulative acknowledgement seen from this client.
    uint64_t acked = 0;
    /// Exact results of executed seqs > floor (in-flight window arrivals,
    /// reply-lost operations awaiting a retry) and any seq-0
    /// protocol-internal commands (kept forever; at most one).
    std::map<uint64_t, std::string> above;
  };

  /// Applies `cmd` to `sm` unless this (client, client_seq) was already
  /// executed, in which case the cached result is returned.
  std::string Apply(StateMachine* sm, const Command& cmd);

  /// Cached result of an already-executed (client, seq), or nullptr.
  /// Leaders use this as the duplicate-request fast path. Seqs at or
  /// below the session floor return a (non-null) empty placeholder: the
  /// client acked them, so the exact result was discarded and the reply
  /// can never be consumed — but the leader must still not re-propose.
  const std::string* Lookup(int32_t client, uint64_t seq) const;

  /// Session table snapshot/restore, shipped alongside state-machine
  /// snapshots so duplicate suppression survives log compaction.
  using Sessions = std::map<int32_t, Session>;
  const Sessions& sessions() const { return sessions_; }
  void Restore(Sessions sessions) { sessions_ = std::move(sessions); }

 private:
  Sessions sessions_;
};

/// A replicated log: the sequence of commands a replica has accepted, with
/// an explicit commit frontier. Slots may be filled out of order (Paxos);
/// Apply only consumes the committed prefix. A checkpointed prefix may be
/// truncated away (TruncatePrefix), after which the state machine itself
/// stands in for the dropped slots.
class ReplicatedLog {
 public:
  /// Stores `cmd` at `index` (0-based). Overwriting an existing slot with a
  /// different command is recorded as a safety violation (protocols must
  /// never do it once committed). Indices below start() — already folded
  /// into a checkpoint — are ignored.
  void Set(uint64_t index, Command cmd);

  /// The command at `index`, if any (nullptr below start()).
  const Command* Get(uint64_t index) const;

  bool Has(uint64_t index) const { return Get(index) != nullptr; }

  /// Marks everything up to and including `index` as committed.
  void CommitThrough(uint64_t index);

  /// First index not yet committed (== number of committed slots when the
  /// committed prefix is dense).
  uint64_t commit_frontier() const { return commit_frontier_; }

  /// Largest occupied index + 1, or start() when empty.
  uint64_t Size() const;

  /// Applies newly committed, contiguous commands to `sm` starting at the
  /// apply cursor; returns outputs in order. With a non-null `dedup`,
  /// duplicate client commands are skipped (their cached result is
  /// returned in place of re-execution). Batch entries are flattened, so
  /// outputs align with slots only in batch-free logs; batch-cutting
  /// protocols use the callback overload below.
  std::vector<std::string> ApplyCommitted(StateMachine* sm,
                                          DedupingExecutor* dedup = nullptr);

  /// Callback form: invokes `fn(slot_index, cmd, result)` once per applied
  /// CLIENT command, decoding batch entries into their sub-commands (each
  /// sub-command reports its batch's slot index).
  using ApplyFn = std::function<void(uint64_t index, const Command& cmd,
                                     const std::string& result)>;
  void ApplyCommitted(StateMachine* sm, DedupingExecutor* dedup,
                      const ApplyFn& fn);

  /// Index the apply cursor has reached.
  uint64_t applied_frontier() const { return applied_frontier_; }

  /// Safety problems the apply path detected — today: a committed batch
  /// entry whose framing failed to decode (applying zero commands for the
  /// slot would otherwise silently drop the whole batch). Protocol
  /// Violations() reports fold these in.
  const std::vector<std::string>& violations() const { return violations_; }

  /// First index still held (everything below was checkpoint-truncated).
  uint64_t start() const { return start_; }

  /// Drops the applied slots below `end` — they are folded into the state
  /// machine the caller snapshot/checkpoints alongside. Requires
  /// end <= applied_frontier().
  void TruncatePrefix(uint64_t end);

  /// Re-bases a lagging log onto an installed snapshot covering [0, end):
  /// drops retained slots below `end` and advances start, commit, and
  /// apply frontiers to at least `end`.
  void ResetToSnapshot(uint64_t end);

  /// All committed client commands in order, batch entries flattened
  /// (dense retained prefix only: starts at start(), stops at a gap).
  std::vector<Command> CommittedPrefix() const;

 private:
  std::map<uint64_t, Command> slots_;
  uint64_t start_ = 0;            ///< Slots [0, start_) truncated away.
  uint64_t commit_frontier_ = 0;  ///< Committed slots are [0, commit_frontier_).
  uint64_t applied_frontier_ = 0;
  std::vector<std::string> violations_;
};

/// Checks that every log agrees with every other on the overlap of their
/// committed prefixes (the SMR safety property). Returns an empty string on
/// success or a description of the first divergence.
std::string CheckPrefixConsistency(const std::vector<const ReplicatedLog*>& logs);

}  // namespace consensus40::smr

#endif  // CONSENSUS40_SMR_STATE_MACHINE_H_
