#ifndef CONSENSUS40_SMR_STATE_MACHINE_H_
#define CONSENSUS40_SMR_STATE_MACHINE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "crypto/sha256.h"
#include "smr/command.h"

namespace consensus40::smr {

/// Deterministic state machine interface: the paper's "add jmp mov shl"
/// boxes. Replicas apply the same commands in the same order and must
/// produce identical states and outputs.
class StateMachine {
 public:
  virtual ~StateMachine() = default;

  /// Applies one command and returns its output.
  virtual std::string Apply(const Command& cmd) = 0;

  /// Digest of the full current state, used by checkpointing (PBFT) and by
  /// the test suite's replica-equivalence checks.
  virtual crypto::Digest StateDigest() const = 0;
};

/// An in-memory key-value store understanding:
///   "PUT <key> <value>"          -> "OK"
///   "GET <key>"                  -> value or "NIL"
///   "DEL <key>"                  -> "OK" or "NIL"
///   "SETNX <key> <value>"        -> "OK" if absent, else existing value
///   "CAS <key> <old> <new>"      -> "OK" or "FAIL"
///   "INC <key>"                  -> new integer value (missing key = 0)
///   anything else                -> "ERR"
///
/// SETNX is the write-once primitive behind replicated transaction-commit
/// records (Gray & Lamport's "Consensus on Transaction Commit"): the first
/// SETNX on a decision key wins and every later proposal — a recovering
/// participant proposing abort, a duplicate coordinator decision — gets
/// the established decision back instead. CAS cannot express this (it
/// fails on a missing key).
class KvStore : public StateMachine {
 public:
  std::string Apply(const Command& cmd) override;
  crypto::Digest StateDigest() const override;

  /// Direct read access for tests.
  std::optional<std::string> Get(const std::string& key) const;
  size_t size() const { return data_.size(); }

  /// Snapshot support (Raft log compaction, state transfer).
  std::map<std::string, std::string> Snapshot() const { return data_; }
  void Restore(std::map<std::string, std::string> data) {
    data_ = std::move(data);
  }

 private:
  std::map<std::string, std::string> data_;
};

/// At-most-once execution filter: a client command that reaches the log
/// twice (e.g. retried across a leader change) must only be applied once.
/// All replicas run the same deterministic filter, so replicated state stays
/// identical. Assumes each client issues sequence numbers in order (closed
/// loop), the standard RSM session assumption.
class DedupingExecutor {
 public:
  /// Applies `cmd` to `sm` unless this (client, client_seq) was already
  /// executed, in which case the cached result is returned.
  std::string Apply(StateMachine* sm, const Command& cmd);

  /// Session table snapshot/restore, shipped alongside state-machine
  /// snapshots so duplicate suppression survives log compaction.
  using Sessions = std::map<int32_t, std::pair<uint64_t, std::string>>;
  const Sessions& sessions() const { return sessions_; }
  void Restore(Sessions sessions) { sessions_ = std::move(sessions); }

 private:
  /// client -> (last executed seq, its result).
  Sessions sessions_;
};

/// A replicated log: the sequence of commands a replica has accepted, with
/// an explicit commit frontier. Slots may be filled out of order (Paxos);
/// Apply only consumes the committed prefix.
class ReplicatedLog {
 public:
  /// Stores `cmd` at `index` (0-based). Overwriting an existing slot with a
  /// different command is recorded as a safety violation (protocols must
  /// never do it once committed).
  void Set(uint64_t index, Command cmd);

  /// The command at `index`, if any.
  const Command* Get(uint64_t index) const;

  bool Has(uint64_t index) const { return Get(index) != nullptr; }

  /// Marks everything up to and including `index` as committed.
  void CommitThrough(uint64_t index);

  /// First index not yet committed (== number of committed slots when the
  /// committed prefix is dense).
  uint64_t commit_frontier() const { return commit_frontier_; }

  /// Largest occupied index + 1, or 0 when empty.
  uint64_t Size() const;

  /// Applies newly committed, contiguous commands to `sm` starting at the
  /// apply cursor; returns outputs in order. With a non-null `dedup`,
  /// duplicate client commands are skipped (their cached result is
  /// returned in place of re-execution).
  std::vector<std::string> ApplyCommitted(StateMachine* sm,
                                          DedupingExecutor* dedup = nullptr);

  /// Index the apply cursor has reached.
  uint64_t applied_frontier() const { return applied_frontier_; }

  /// All committed commands in order (dense prefix only).
  std::vector<Command> CommittedPrefix() const;

 private:
  std::map<uint64_t, Command> slots_;
  uint64_t commit_frontier_ = 0;  ///< Committed slots are [0, commit_frontier_).
  uint64_t applied_frontier_ = 0;
};

/// Checks that every log agrees with every other on the overlap of their
/// committed prefixes (the SMR safety property). Returns an empty string on
/// success or a description of the first divergence.
std::string CheckPrefixConsistency(const std::vector<const ReplicatedLog*>& logs);

}  // namespace consensus40::smr

#endif  // CONSENSUS40_SMR_STATE_MACHINE_H_
