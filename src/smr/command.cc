#include "smr/command.h"

namespace consensus40::smr {

crypto::Digest Command::Hash() const {
  crypto::Sha256 h;
  h.Update(&client, sizeof(client));
  h.Update(&client_seq, sizeof(client_seq));
  h.Update(op);
  return h.Finish();
}

std::string Command::ToString() const {
  std::string out = "c";
  out += std::to_string(client);
  out += "#";
  out += std::to_string(client_seq);
  out += ":";
  out += op;
  return out;
}

}  // namespace consensus40::smr
