#include "smr/command.h"

#include <cstdlib>

namespace consensus40::smr {

crypto::Digest Command::Hash() const {
  crypto::Sha256 h;
  h.Update(&client, sizeof(client));
  h.Update(&client_seq, sizeof(client_seq));
  h.Update(op);
  return h.Finish();
}

std::string Command::ToString() const {
  std::string out = "c";
  out += std::to_string(client);
  out += "#";
  out += std::to_string(client_seq);
  out += ":";
  out += op;
  return out;
}

Command EncodeBatch(const std::vector<Command>& cmds) {
  // "<client> <seq> <acked> <oplen> <opbytes>" per sub-command;
  // whitespace-delimited headers, byte-exact payloads. `acked` rides
  // along so replicas applying the decoded batch advance their session
  // floors identically (see DedupingExecutor).
  std::string encoded;
  for (const Command& cmd : cmds) {
    encoded += std::to_string(cmd.client);
    encoded += ' ';
    encoded += std::to_string(cmd.client_seq);
    encoded += ' ';
    encoded += std::to_string(cmd.acked);
    encoded += ' ';
    encoded += std::to_string(cmd.op.size());
    encoded += ' ';
    encoded += cmd.op;
  }
  return Command{kBatchClient, 0, std::move(encoded)};
}

std::optional<std::vector<Command>> DecodeBatch(const Command& batch) {
  if (!IsBatch(batch)) return std::nullopt;
  std::vector<Command> cmds;
  const std::string& s = batch.op;
  size_t pos = 0;
  while (pos < s.size()) {
    char* end = nullptr;
    long client = std::strtol(s.c_str() + pos, &end, 10);
    if (end == nullptr || *end != ' ') return std::nullopt;
    pos = static_cast<size_t>(end - s.c_str()) + 1;
    unsigned long long seq = std::strtoull(s.c_str() + pos, &end, 10);
    if (end == nullptr || *end != ' ') return std::nullopt;
    pos = static_cast<size_t>(end - s.c_str()) + 1;
    unsigned long long acked = std::strtoull(s.c_str() + pos, &end, 10);
    if (end == nullptr || *end != ' ') return std::nullopt;
    pos = static_cast<size_t>(end - s.c_str()) + 1;
    unsigned long long len = std::strtoull(s.c_str() + pos, &end, 10);
    if (end == nullptr || *end != ' ') return std::nullopt;
    pos = static_cast<size_t>(end - s.c_str()) + 1;
    if (pos + len > s.size()) return std::nullopt;
    Command cmd{static_cast<int32_t>(client), static_cast<uint64_t>(seq),
                s.substr(pos, len)};
    cmd.acked = static_cast<uint64_t>(acked);
    cmds.push_back(std::move(cmd));
    pos += len;
  }
  return cmds;
}

std::vector<Command> FlattenCommand(const Command& cmd) {
  if (IsBatch(cmd)) {
    return DecodeBatch(cmd).value_or(std::vector<Command>{});
  }
  return {cmd};
}

uint64_t Fnv1a(const std::string& s) {
  uint64_t h = 14695981039346656037ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

uint64_t KeyHash(const std::string& s) {
  uint64_t h = Fnv1a(s);
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ull;
  h ^= h >> 33;
  return h;
}

}  // namespace consensus40::smr
