#ifndef CONSENSUS40_SMR_COMMAND_H_
#define CONSENSUS40_SMR_COMMAND_H_

#include <cstdint>
#include <string>

#include "crypto/sha256.h"

namespace consensus40::smr {

/// A deterministic client command, the unit all consensus protocols in this
/// library agree on. `op` is an opaque operation string interpreted by the
/// state machine (the KvStore understands "PUT k v", "GET k", "DEL k",
/// "CAS k old new"). (client, client_seq) uniquely identifies a command and
/// is used for duplicate suppression / reply matching.
struct Command {
  int32_t client = -1;
  uint64_t client_seq = 0;
  std::string op;

  bool operator==(const Command& other) const {
    return client == other.client && client_seq == other.client_seq &&
           op == other.op;
  }
  bool operator<(const Command& other) const {
    if (client != other.client) return client < other.client;
    if (client_seq != other.client_seq) return client_seq < other.client_seq;
    return op < other.op;
  }

  /// Canonical digest used wherever a protocol signs or hashes a request.
  crypto::Digest Hash() const;

  /// Compact rendering for traces, e.g. "c1#3:PUT x 7".
  std::string ToString() const;

  /// Approximate wire size.
  int ByteSize() const { return 16 + static_cast<int>(op.size()); }
};

}  // namespace consensus40::smr

#endif  // CONSENSUS40_SMR_COMMAND_H_
