#ifndef CONSENSUS40_SMR_COMMAND_H_
#define CONSENSUS40_SMR_COMMAND_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "crypto/sha256.h"

namespace consensus40::smr {

/// A deterministic client command, the unit all consensus protocols in this
/// library agree on. `op` is an opaque operation string interpreted by the
/// state machine (the KvStore understands "PUT k v", "GET k", "DEL k",
/// "CAS k old new"). (client, client_seq) uniquely identifies a command and
/// is used for duplicate suppression / reply matching.
struct Command {
  int32_t client = -1;
  uint64_t client_seq = 0;
  std::string op;
  /// Cumulative acknowledgement piggybacked by the client: every seq in
  /// [1, acked] has had its reply consumed. The deduping executor uses it
  /// to decide which per-seq cached results are safe to discard — a result
  /// may only be dropped once the client can no longer retry the op (see
  /// DedupingExecutor). Session metadata, not command identity: excluded
  /// from Hash and the comparison operators.
  uint64_t acked = 0;

  /// How the command wants to be executed, not what it does — routing
  /// metadata like `acked`, excluded from Hash and the comparison
  /// operators. Protocols with a dedicated read path (Raft read-index)
  /// divert kRead commands around the log; protocols without one log
  /// them like any other command, which is linearizable by construction.
  enum class Kind : uint8_t {
    kWrite = 0,  ///< Replicate through the log (the default).
    kRead = 1,   ///< Read-only; `op` is "GET <key>". May bypass the log.
  };
  Kind kind = Kind::kWrite;

  bool operator==(const Command& other) const {
    return client == other.client && client_seq == other.client_seq &&
           op == other.op;
  }
  bool operator<(const Command& other) const {
    if (client != other.client) return client < other.client;
    if (client_seq != other.client_seq) return client_seq < other.client_seq;
    return op < other.op;
  }

  /// Canonical digest used wherever a protocol signs or hashes a request.
  crypto::Digest Hash() const;

  /// Compact rendering for traces, e.g. "c1#3:PUT x 7".
  std::string ToString() const;

  /// Approximate wire size.
  int ByteSize() const { return 16 + static_cast<int>(op.size()); }
};

/// Reserved client id marking a protocol-internal no-op entry: Raft's
/// leader term-start entry, and the no-ops a newly elected Multi-Paxos
/// leader proposes to fill log holes below its proposal cursor. No-ops
/// never touch the state machine or the dedup sessions (the apply loop
/// skips them) and never produce a client reply.
constexpr int32_t kNoopClient = -3;

/// True if `cmd` is a protocol-internal no-op.
inline bool IsNoop(const Command& cmd) { return cmd.client == kNoopClient; }

/// Reserved client id marking a command as a leader-cut batch: its `op`
/// is the length-prefixed encoding of several client commands (see
/// EncodeBatch). Sits below the other reserved ids (-2 = Raft CONFIG,
/// -3 = protocol no-op).
constexpr int32_t kBatchClient = -4;

/// True if `cmd` is a batch entry produced by EncodeBatch.
inline bool IsBatch(const Command& cmd) { return cmd.client == kBatchClient; }

/// Reserved client id marking a command as an erasure-coded shard set: its
/// `op` is the frame encoding of one or more Reed–Solomon shards of some
/// underlying command (see smr/erasure.h). Acceptors in Crossword store
/// these in place of the full command; any k distinct shards reconstruct
/// the original. Sits below -4 = leader-cut batch.
constexpr int32_t kShardClient = -5;

/// True if `cmd` is an erasure-coded shard set.
inline bool IsShard(const Command& cmd) { return cmd.client == kShardClient; }

/// Folds several client commands into one log-entry-sized Command — the
/// leader-side batching primitive shared by Raft and Multi-Paxos. The
/// encoding is length-prefixed (ops may contain spaces), so DecodeBatch
/// inverts it exactly. A batch of batches is not supported (and never
/// produced: leaders only batch raw client commands).
Command EncodeBatch(const std::vector<Command>& cmds);

/// Inverse of EncodeBatch. nullopt for a non-batch or malformed command
/// — distinct from the (legal, never leader-cut) empty batch, so a
/// framing bug surfaces at the apply site instead of silently dropping a
/// whole batch.
std::optional<std::vector<Command>> DecodeBatch(const Command& batch);

/// The client commands `cmd` stands for: the decoded sub-commands of a
/// batch, or `cmd` itself. The flattening used everywhere a per-command
/// view of a log is needed (committed prefixes, apply loops, replay).
/// Lenient: a malformed batch flattens to nothing; apply paths that must
/// not drop commands silently call DecodeBatch and check for nullopt.
std::vector<Command> FlattenCommand(const Command& cmd);

/// 64-bit FNV-1a (deterministic across platforms, unlike std::hash).
uint64_t Fnv1a(const std::string& s);

/// The canonical key-routing hash of the whole stack: FNV-1a finalized
/// with a 64-bit avalanche mixer (murmur3 fmix64). The shard layer's
/// routing table partitions the [0, 2^64) hash space into ranges and
/// the KvStore's routing fence (DISOWN/MIGRATE) decides key ownership
/// with the same function — one definition so the data plane and the
/// control plane can never disagree about where a key hashes. The
/// finalizer matters: range routing consumes the TOP bits, and raw
/// FNV-1a leaves them badly skewed for short sequential keys (the old
/// modulo placement consumed the well-mixed bottom bits).
uint64_t KeyHash(const std::string& s);

}  // namespace consensus40::smr

#endif  // CONSENSUS40_SMR_COMMAND_H_
