#ifndef CONSENSUS40_SMR_COMMAND_H_
#define CONSENSUS40_SMR_COMMAND_H_

#include <cstdint>
#include <string>
#include <vector>

#include "crypto/sha256.h"

namespace consensus40::smr {

/// A deterministic client command, the unit all consensus protocols in this
/// library agree on. `op` is an opaque operation string interpreted by the
/// state machine (the KvStore understands "PUT k v", "GET k", "DEL k",
/// "CAS k old new"). (client, client_seq) uniquely identifies a command and
/// is used for duplicate suppression / reply matching.
struct Command {
  int32_t client = -1;
  uint64_t client_seq = 0;
  std::string op;

  bool operator==(const Command& other) const {
    return client == other.client && client_seq == other.client_seq &&
           op == other.op;
  }
  bool operator<(const Command& other) const {
    if (client != other.client) return client < other.client;
    if (client_seq != other.client_seq) return client_seq < other.client_seq;
    return op < other.op;
  }

  /// Canonical digest used wherever a protocol signs or hashes a request.
  crypto::Digest Hash() const;

  /// Compact rendering for traces, e.g. "c1#3:PUT x 7".
  std::string ToString() const;

  /// Approximate wire size.
  int ByteSize() const { return 16 + static_cast<int>(op.size()); }
};

/// Reserved client id marking a command as a leader-cut batch: its `op`
/// is the length-prefixed encoding of several client commands (see
/// EncodeBatch). Sits below the other reserved ids (-2 = Raft CONFIG,
/// -3 = Raft term-start NOOP).
constexpr int32_t kBatchClient = -4;

/// True if `cmd` is a batch entry produced by EncodeBatch.
inline bool IsBatch(const Command& cmd) { return cmd.client == kBatchClient; }

/// Folds several client commands into one log-entry-sized Command — the
/// leader-side batching primitive shared by Raft and Multi-Paxos. The
/// encoding is length-prefixed (ops may contain spaces), so DecodeBatch
/// inverts it exactly. A batch of batches is not supported (and never
/// produced: leaders only batch raw client commands).
Command EncodeBatch(const std::vector<Command>& cmds);

/// Inverse of EncodeBatch. Returns an empty vector for a non-batch or
/// malformed command.
std::vector<Command> DecodeBatch(const Command& batch);

/// The client commands `cmd` stands for: the decoded sub-commands of a
/// batch, or `cmd` itself. The flattening used everywhere a per-command
/// view of a log is needed (committed prefixes, apply loops, replay).
std::vector<Command> FlattenCommand(const Command& cmd);

}  // namespace consensus40::smr

#endif  // CONSENSUS40_SMR_COMMAND_H_
