#include "smr/state_machine.h"

#include <sstream>

namespace consensus40::smr {

namespace {

std::vector<std::string> Tokenize(const std::string& op) {
  std::vector<std::string> tokens;
  std::istringstream in(op);
  std::string tok;
  while (in >> tok) tokens.push_back(tok);
  return tokens;
}

/// Reserved prefix for store-internal records (prepare/decision/fence
/// keys). Never fenced, never migrated.
constexpr char kInternalPrefix[] = "__";
constexpr char kDisownPrefix[] = "__disown.";
constexpr char kOwnPrefix[] = "__own.";

bool IsInternalKey(const std::string& key) {
  return key.compare(0, 2, kInternalPrefix) == 0;
}

/// 16-digit fixed-width lowercase hex, so disown-record keys sort and
/// parse trivially.
std::string HexU64(uint64_t v) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[i] = kDigits[v & 0xf];
    v >>= 4;
  }
  return out;
}

std::string DisownKey(uint64_t lo, uint64_t hi) {
  return std::string(kDisownPrefix) + HexU64(lo) + "-" + HexU64(hi);
}

std::string OwnKey(uint64_t lo, uint64_t hi) {
  return std::string(kOwnPrefix) + HexU64(lo) + "-" + HexU64(hi);
}

/// True if hash `h` falls in [lo, hi), where hi == 0 means 2^64.
bool HashInRange(uint64_t h, uint64_t lo, uint64_t hi) {
  return h >= lo && (hi == 0 || h < hi);
}

bool ParseU64(const std::string& s, uint64_t* out, int base = 10) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtoull(s.c_str(), &end, base);
  return end != nullptr && *end == '\0';
}

}  // namespace

std::string EncodeKvPairs(
    const std::vector<std::pair<std::string, std::string>>& pairs) {
  std::string out;
  for (const auto& [k, v] : pairs) {
    out += std::to_string(k.size());
    out += ':';
    out += k;
    out += std::to_string(v.size());
    out += ':';
    out += v;
  }
  return out;
}

std::optional<std::vector<std::pair<std::string, std::string>>> DecodeKvPairs(
    const std::string& payload) {
  std::vector<std::pair<std::string, std::string>> pairs;
  size_t pos = 0;
  auto read_one = [&payload, &pos](std::string* out) {
    size_t colon = payload.find(':', pos);
    if (colon == std::string::npos || colon == pos) return false;
    uint64_t len = 0;
    if (!ParseU64(payload.substr(pos, colon - pos), &len)) return false;
    if (colon + 1 + len > payload.size()) return false;
    *out = payload.substr(colon + 1, len);
    pos = colon + 1 + len;
    return true;
  };
  while (pos < payload.size()) {
    std::string k, v;
    if (!read_one(&k) || !read_one(&v)) return std::nullopt;
    pairs.emplace_back(std::move(k), std::move(v));
  }
  return pairs;
}

namespace {

/// Highest epoch of any range record under `prefix` (length `plen`)
/// whose [lo, hi) covers hash `h`. Record shape:
/// "<prefix><lo_hex16>-<hi_hex16>" -> decimal epoch.
std::optional<uint64_t> MaxCoveringEpoch(
    const std::map<std::string, std::string>& data, const char* prefix,
    size_t plen, uint64_t h) {
  std::optional<uint64_t> best;
  for (auto it = data.lower_bound(prefix);
       it != data.end() && it->first.compare(0, plen, prefix) == 0; ++it) {
    uint64_t lo = 0, hi = 0, epoch = 0;
    if (it->first.size() != plen + 16 + 1 + 16) continue;
    if (!ParseU64(it->first.substr(plen, 16), &lo, 16)) continue;
    if (!ParseU64(it->first.substr(plen + 17, 16), &hi, 16)) continue;
    if (!ParseU64(it->second, &epoch)) continue;
    if (HashInRange(h, lo, hi) && (!best || epoch > *best)) best = epoch;
  }
  return best;
}

}  // namespace

std::optional<uint64_t> KvStore::MovedEpoch(const std::string& key) const {
  if (IsInternalKey(key)) return std::nullopt;
  uint64_t h = KeyHash(key);
  std::optional<uint64_t> fence =
      MaxCoveringEpoch(data_, kDisownPrefix, 9, h);
  if (!fence.has_value()) return std::nullopt;
  // A fence is only as fresh as its epoch stamp: an INSTALL at or above
  // that epoch means the range moved BACK here afterwards (A->B->A), and
  // the newer ownership record outranks the stale fence — without this,
  // the returning owner would bounce every op on the range forever.
  std::optional<uint64_t> own = MaxCoveringEpoch(data_, kOwnPrefix, 6, h);
  if (own.has_value() && *own >= *fence) return std::nullopt;
  return fence;
}

std::string KvStore::Apply(const Command& cmd) {
  // "INSTALL <lo> <hi> <epoch> <pairs>" carries a length-prefixed
  // payload that must not be whitespace-tokenized; handle it before the
  // token dispatch.
  if (cmd.op.compare(0, 8, "INSTALL ") == 0) {
    size_t pos = 8;
    uint64_t lo = 0, hi = 0, epoch = 0;
    for (uint64_t* field : {&lo, &hi, &epoch}) {
      size_t sp = cmd.op.find(' ', pos);
      if (sp == std::string::npos ||
          !ParseU64(cmd.op.substr(pos, sp - pos), field)) {
        return "ERR";
      }
      pos = sp + 1;
    }
    auto pairs = DecodeKvPairs(cmd.op.substr(pos));
    if (!pairs.has_value()) return "ERR";
    for (auto& [k, v] : *pairs) data_[std::move(k)] = std::move(v);
    // Ownership record: outranks any lower-epoch fence over the
    // installed range (see MovedEpoch), so a range returning to a
    // previous owner serves again instead of bouncing on its old fence.
    data_[OwnKey(lo, hi)] = std::to_string(epoch);
    return "OK " + std::to_string(pairs->size());
  }
  std::vector<std::string> t = Tokenize(cmd.op);
  if (t.empty()) return "ERR";
  const std::string& verb = t[0];
  if ((verb == "DISOWN" || verb == "MIGRATE") && t.size() >= 4) {
    uint64_t lo = 0, hi = 0, epoch = 0;
    if (!ParseU64(t[1], &lo) || !ParseU64(t[2], &hi) || !ParseU64(t[3], &epoch))
      return "ERR";
    std::string payload;
    if (verb == "MIGRATE") {
      // Snapshot the range BEFORE fencing: one atomic log entry, so the
      // copied set is exactly the set of writes that beat the fence.
      std::vector<std::pair<std::string, std::string>> pairs;
      for (const auto& [k, v] : data_) {
        if (IsInternalKey(k)) continue;
        if (HashInRange(KeyHash(k), lo, hi)) pairs.emplace_back(k, v);
      }
      payload = EncodeKvPairs(pairs);
    }
    data_[DisownKey(lo, hi)] = std::to_string(epoch);
    return verb == "MIGRATE" ? payload : "OK";
  }
  // Point ops on a migrated-away key bounce with the flip epoch instead
  // of executing (retries of ops that DID execute pre-fence are answered
  // from the dedup cache before reaching here, so exactly-once holds
  // across a move).
  if (t.size() >= 2 && (verb == "PUT" || verb == "GET" || verb == "DEL" ||
                        verb == "SETNX" || verb == "CAS" || verb == "INC")) {
    if (std::optional<uint64_t> epoch = MovedEpoch(t[1])) {
      return "MOVED " + std::to_string(*epoch);
    }
  }
  if (verb == "PUT" && t.size() >= 3) {
    data_[t[1]] = t[2];
    return "OK";
  }
  if (verb == "GET" && t.size() >= 2) {
    auto it = data_.find(t[1]);
    return it == data_.end() ? "NIL" : it->second;
  }
  if (verb == "DEL" && t.size() >= 2) {
    return data_.erase(t[1]) > 0 ? "OK" : "NIL";
  }
  if (verb == "SETNX" && t.size() >= 3) {
    auto [it, inserted] = data_.try_emplace(t[1], t[2]);
    return inserted ? "OK" : it->second;
  }
  if (verb == "CAS" && t.size() >= 4) {
    auto it = data_.find(t[1]);
    if (it != data_.end() && it->second == t[2]) {
      it->second = t[3];
      return "OK";
    }
    return "FAIL";
  }
  if (verb == "INC" && t.size() >= 2) {
    auto it = data_.find(t[1]);
    int64_t v = 0;
    if (it != data_.end()) v = std::strtoll(it->second.c_str(), nullptr, 10);
    ++v;
    data_[t[1]] = std::to_string(v);
    return data_[t[1]];
  }
  return "ERR";
}

crypto::Digest KvStore::StateDigest() const {
  crypto::Sha256 h;
  for (const auto& [key, value] : data_) {
    h.Update(key);
    h.Update("=", 1);
    h.Update(value);
    h.Update(";", 1);
  }
  return h.Finish();
}

std::optional<std::string> KvStore::Get(const std::string& key) const {
  auto it = data_.find(key);
  if (it == data_.end()) return std::nullopt;
  return it->second;
}

void ReplicatedLog::Set(uint64_t index, Command cmd) {
  if (index < start_) return;  // Already folded into a checkpoint.
  slots_[index] = std::move(cmd);
}

const Command* ReplicatedLog::Get(uint64_t index) const {
  auto it = slots_.find(index);
  return it == slots_.end() ? nullptr : &it->second;
}

void ReplicatedLog::CommitThrough(uint64_t index) {
  if (index + 1 > commit_frontier_) commit_frontier_ = index + 1;
}

uint64_t ReplicatedLog::Size() const {
  return slots_.empty() ? start_ : slots_.rbegin()->first + 1;
}

void ReplicatedLog::TruncatePrefix(uint64_t end) {
  if (end > applied_frontier_) end = applied_frontier_;
  slots_.erase(slots_.begin(), slots_.lower_bound(end));
  if (end > start_) start_ = end;
}

void ReplicatedLog::ResetToSnapshot(uint64_t end) {
  slots_.erase(slots_.begin(), slots_.lower_bound(end));
  if (end > start_) start_ = end;
  if (end > commit_frontier_) commit_frontier_ = end;
  if (end > applied_frontier_) applied_frontier_ = end;
}

namespace {

/// Advances the session floor over the client-acked prefix, discarding
/// the cached results it covers. An acked seq can never be retried, so
/// dropping its exact result is safe; seqs the floor skips without an
/// `above` entry were consumed off-log (e.g. read-index reads) or acked
/// duplicates — nothing to discard. The floor never passes `acked`, so
/// every executed-but-unacked seq keeps its own result.
void AdvanceFloor(DedupingExecutor::Session* s) {
  while (s->floor < s->acked) {
    ++s->floor;
    s->above.erase(s->floor);
  }
}

/// Placeholder reply for retries of acked (result-discarded) seqs.
const std::string kDiscardedResult;

}  // namespace

std::string DedupingExecutor::Apply(StateMachine* sm, const Command& cmd) {
  Session& s = sessions_[cmd.client];
  // Piggybacked cumulative ack: the client consumed every reply up to
  // cmd.acked, so those results are unreachable and can be discarded.
  // Applied commands are identical on every replica, so the floors
  // advance identically too.
  if (cmd.acked > s.acked) {
    s.acked = cmd.acked;
    AdvanceFloor(&s);
  }
  // Seq 0 is only used by protocol-internal commands; it sits outside the
  // 1-based session numbering, so it is tracked in `above` forever rather
  // than confused with the pristine floor == 0.
  if (cmd.client_seq != 0 && cmd.client_seq <= s.floor) {
    return kDiscardedResult;  // Duplicate of an acked operation.
  }
  auto it = s.above.find(cmd.client_seq);
  if (it != s.above.end()) return it->second;  // Duplicate: exact result.
  std::string result = sm->Apply(cmd);
  s.above[cmd.client_seq] = result;
  return result;
}

const std::string* DedupingExecutor::Lookup(int32_t client,
                                            uint64_t seq) const {
  auto it = sessions_.find(client);
  if (it == sessions_.end()) return nullptr;
  const Session& s = it->second;
  if (seq != 0 && seq <= s.floor) return &kDiscardedResult;
  auto above = s.above.find(seq);
  return above == s.above.end() ? nullptr : &above->second;
}

std::vector<std::string> ReplicatedLog::ApplyCommitted(
    StateMachine* sm, DedupingExecutor* dedup) {
  std::vector<std::string> outputs;
  ApplyCommitted(sm, dedup,
                 [&outputs](uint64_t, const Command&, const std::string& out) {
                   outputs.push_back(out);
                 });
  return outputs;
}

void ReplicatedLog::ApplyCommitted(StateMachine* sm, DedupingExecutor* dedup,
                                   const ApplyFn& fn) {
  while (applied_frontier_ < commit_frontier_) {
    const Command* cmd = Get(applied_frontier_);
    if (cmd == nullptr) break;  // Gap: cannot apply past it yet.
    uint64_t index = applied_frontier_;
    if (IsNoop(*cmd)) {
      // Protocol-internal filler (e.g. a new leader closing a log hole):
      // occupies the slot but carries no operation and gets no reply.
      ++applied_frontier_;
      continue;
    }
    std::vector<Command> subs;
    if (IsBatch(*cmd)) {
      // Decode explicitly: a batch whose framing fails to parse must
      // surface as a safety violation, not silently apply zero commands
      // for the slot.
      std::optional<std::vector<Command>> decoded = DecodeBatch(*cmd);
      if (!decoded.has_value()) {
        violations_.push_back("malformed batch entry at slot " +
                              std::to_string(index) + " dropped on apply");
        ++applied_frontier_;  // Advance anyway: wedging here would livelock.
        continue;
      }
      subs = std::move(*decoded);
    } else {
      subs = {*cmd};
    }
    for (const Command& sub : subs) {
      std::string result =
          dedup != nullptr ? dedup->Apply(sm, sub) : sm->Apply(sub);
      if (fn) fn(index, sub, result);
    }
    ++applied_frontier_;
  }
}

std::vector<Command> ReplicatedLog::CommittedPrefix() const {
  std::vector<Command> out;
  for (uint64_t i = start_; i < commit_frontier_; ++i) {
    const Command* cmd = Get(i);
    if (cmd == nullptr) break;
    for (const Command& sub : FlattenCommand(*cmd)) out.push_back(sub);
  }
  return out;
}

std::string CheckPrefixConsistency(
    const std::vector<const ReplicatedLog*>& logs) {
  for (size_t a = 0; a < logs.size(); ++a) {
    for (size_t b = a + 1; b < logs.size(); ++b) {
      uint64_t overlap =
          std::min(logs[a]->commit_frontier(), logs[b]->commit_frontier());
      for (uint64_t i = 0; i < overlap; ++i) {
        const Command* ca = logs[a]->Get(i);
        const Command* cb = logs[b]->Get(i);
        if (ca == nullptr || cb == nullptr) continue;  // Sparse slot.
        if (!(*ca == *cb)) {
          return "logs " + std::to_string(a) + " and " + std::to_string(b) +
                 " diverge at index " + std::to_string(i) + ": '" +
                 ca->ToString() + "' vs '" + cb->ToString() + "'";
        }
      }
    }
  }
  return "";
}

}  // namespace consensus40::smr
