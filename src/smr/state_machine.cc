#include "smr/state_machine.h"

#include <sstream>

namespace consensus40::smr {

namespace {

std::vector<std::string> Tokenize(const std::string& op) {
  std::vector<std::string> tokens;
  std::istringstream in(op);
  std::string tok;
  while (in >> tok) tokens.push_back(tok);
  return tokens;
}

}  // namespace

std::string KvStore::Apply(const Command& cmd) {
  std::vector<std::string> t = Tokenize(cmd.op);
  if (t.empty()) return "ERR";
  const std::string& verb = t[0];
  if (verb == "PUT" && t.size() >= 3) {
    data_[t[1]] = t[2];
    return "OK";
  }
  if (verb == "GET" && t.size() >= 2) {
    auto it = data_.find(t[1]);
    return it == data_.end() ? "NIL" : it->second;
  }
  if (verb == "DEL" && t.size() >= 2) {
    return data_.erase(t[1]) > 0 ? "OK" : "NIL";
  }
  if (verb == "SETNX" && t.size() >= 3) {
    auto [it, inserted] = data_.try_emplace(t[1], t[2]);
    return inserted ? "OK" : it->second;
  }
  if (verb == "CAS" && t.size() >= 4) {
    auto it = data_.find(t[1]);
    if (it != data_.end() && it->second == t[2]) {
      it->second = t[3];
      return "OK";
    }
    return "FAIL";
  }
  if (verb == "INC" && t.size() >= 2) {
    auto it = data_.find(t[1]);
    int64_t v = 0;
    if (it != data_.end()) v = std::strtoll(it->second.c_str(), nullptr, 10);
    ++v;
    data_[t[1]] = std::to_string(v);
    return data_[t[1]];
  }
  return "ERR";
}

crypto::Digest KvStore::StateDigest() const {
  crypto::Sha256 h;
  for (const auto& [key, value] : data_) {
    h.Update(key);
    h.Update("=", 1);
    h.Update(value);
    h.Update(";", 1);
  }
  return h.Finish();
}

std::optional<std::string> KvStore::Get(const std::string& key) const {
  auto it = data_.find(key);
  if (it == data_.end()) return std::nullopt;
  return it->second;
}

void ReplicatedLog::Set(uint64_t index, Command cmd) {
  slots_[index] = std::move(cmd);
}

const Command* ReplicatedLog::Get(uint64_t index) const {
  auto it = slots_.find(index);
  return it == slots_.end() ? nullptr : &it->second;
}

void ReplicatedLog::CommitThrough(uint64_t index) {
  if (index + 1 > commit_frontier_) commit_frontier_ = index + 1;
}

uint64_t ReplicatedLog::Size() const {
  return slots_.empty() ? 0 : slots_.rbegin()->first + 1;
}

std::string DedupingExecutor::Apply(StateMachine* sm, const Command& cmd) {
  auto it = sessions_.find(cmd.client);
  if (it != sessions_.end() && cmd.client_seq <= it->second.first) {
    return it->second.second;  // Duplicate: cached result.
  }
  std::string result = sm->Apply(cmd);
  sessions_[cmd.client] = {cmd.client_seq, result};
  return result;
}

std::vector<std::string> ReplicatedLog::ApplyCommitted(
    StateMachine* sm, DedupingExecutor* dedup) {
  std::vector<std::string> outputs;
  while (applied_frontier_ < commit_frontier_) {
    const Command* cmd = Get(applied_frontier_);
    if (cmd == nullptr) break;  // Gap: cannot apply past it yet.
    outputs.push_back(dedup != nullptr ? dedup->Apply(sm, *cmd)
                                       : sm->Apply(*cmd));
    ++applied_frontier_;
  }
  return outputs;
}

std::vector<Command> ReplicatedLog::CommittedPrefix() const {
  std::vector<Command> out;
  for (uint64_t i = 0; i < commit_frontier_; ++i) {
    const Command* cmd = Get(i);
    if (cmd == nullptr) break;
    out.push_back(*cmd);
  }
  return out;
}

std::string CheckPrefixConsistency(
    const std::vector<const ReplicatedLog*>& logs) {
  for (size_t a = 0; a < logs.size(); ++a) {
    for (size_t b = a + 1; b < logs.size(); ++b) {
      uint64_t overlap =
          std::min(logs[a]->commit_frontier(), logs[b]->commit_frontier());
      for (uint64_t i = 0; i < overlap; ++i) {
        const Command* ca = logs[a]->Get(i);
        const Command* cb = logs[b]->Get(i);
        if (ca == nullptr || cb == nullptr) continue;  // Sparse slot.
        if (!(*ca == *cb)) {
          return "logs " + std::to_string(a) + " and " + std::to_string(b) +
                 " diverge at index " + std::to_string(i) + ": '" +
                 ca->ToString() + "' vs '" + cb->ToString() + "'";
        }
      }
    }
  }
  return "";
}

}  // namespace consensus40::smr
