#ifndef CONSENSUS40_SMR_ERASURE_H_
#define CONSENSUS40_SMR_ERASURE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "smr/command.h"

namespace consensus40::smr {

/// Reed–Solomon (k, n) erasure coding over command payloads, the codec
/// under the Crossword protocol (see paxos/crossword.h).
///
/// The payload is split byte-wise into k data stripes (zero-padded to a
/// common length) and shard i is the evaluation of the stripe polynomial
/// at x = i over GF(256): shard_i[b] = Σ_j stripe_j[b]·i^j. Any k shards
/// with distinct indices form a Vandermonde system, which is always
/// invertible, so ANY k of the n shards reconstruct the payload exactly
/// — the property Crossword's quorum math leans on. Each shard carries
/// an FNV-1a checksum (corrupt shards are detected and discarded) and
/// the frame carries a whole-payload checksum as an end-to-end guard.
///
/// Limits: 1 <= k <= n <= 255. k == 1 degenerates to full replication
/// (every shard is the payload itself).

/// GF(256) helpers, exposed for tests.
uint8_t GfMul(uint8_t a, uint8_t b);
uint8_t GfInv(uint8_t a);  ///< a must be nonzero.

/// Splits `payload` into n shards, any k of which reconstruct it.
std::vector<std::string> ErasureEncode(const std::string& payload, int k,
                                       int n);

/// Inverse: `shards` maps shard index -> shard bytes; needs >= k entries
/// with valid indices and equal lengths. Returns nullopt when
/// reconstruction is impossible (too few shards, bad shapes).
std::optional<std::string> ErasureDecode(
    const std::map<int, std::string>& shards, int k, int n,
    uint64_t payload_len);

/// A command erasure-coded for distribution: the original identity plus
/// all n shards, leader-side. Subset() cuts the per-acceptor shard-set
/// Command (client = kShardClient) carrying shards [first, first+count)
/// mod n — Crossword's rotated assignment windows.
struct ShardedCommand {
  int32_t client = 0;       ///< Original command identity.
  uint64_t client_seq = 0;
  uint64_t acked = 0;
  int k = 0;
  int n = 0;
  uint64_t payload_len = 0;
  uint64_t payload_check = 0;  ///< Fnv1a of the original op bytes.
  std::vector<std::string> shards;

  Command Subset(int first, int count) const;
};

/// Encodes `cmd`'s op into n shards. Requires 1 <= k <= n <= 255.
ShardedCommand ShardCommand(const Command& cmd, int k, int n);

/// Accumulates shard-set Commands for ONE underlying command until k
/// distinct valid shards are on hand, then reconstructs. Followers keep
/// one per unapplied slot; a recovering leader feeds it the shard sets
/// carried by promises. Corrupt shards (checksum mismatch) and frames
/// for a different command/geometry are rejected at Add.
class ShardAssembler {
 public:
  /// Folds one shard-set command in. Returns false (and changes nothing)
  /// if `shard_set` is not a shard command, fails to parse, or disagrees
  /// with previously added frames on identity or geometry. Individual
  /// corrupt shards inside an otherwise valid frame are skipped and
  /// counted in corrupt().
  bool Add(const Command& shard_set);

  bool Complete() const { return k_ > 0 && static_cast<int>(shards_.size()) >= k_; }
  int distinct() const { return static_cast<int>(shards_.size()); }
  int needed() const { return k_; }
  uint64_t corrupt() const { return corrupt_; }

  /// The reconstructed original command, once Complete(). nullopt before
  /// that, or if the reconstructed payload fails the end-to-end checksum
  /// (possible only if >= k shards were corrupted consistently with
  /// their per-shard checksums — vanishing, but checked anyway).
  std::optional<Command> Reconstruct() const;

  /// One shard-set Command carrying every valid shard gathered so far —
  /// what a catch-up reply forwards when the replica itself holds only
  /// fragments.
  Command Merged() const;

 private:
  int32_t client_ = 0;
  uint64_t client_seq_ = 0;
  uint64_t acked_ = 0;
  int k_ = 0;
  int n_ = 0;
  uint64_t payload_len_ = 0;
  uint64_t payload_check_ = 0;
  uint64_t corrupt_ = 0;
  std::map<int, std::string> shards_;
};

}  // namespace consensus40::smr

#endif  // CONSENSUS40_SMR_ERASURE_H_
