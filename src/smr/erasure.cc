#include "smr/erasure.h"

#include <cassert>
#include <cstdlib>

namespace consensus40::smr {

namespace {

/// GF(256) log/exp tables over the 0x11d polynomial, generator 0x02.
/// Built once; every table access after that is branch-free.
struct GfTables {
  uint8_t exp[512];
  uint8_t log[256];
  GfTables() {
    int x = 1;
    for (int i = 0; i < 255; ++i) {
      exp[i] = static_cast<uint8_t>(x);
      log[x] = static_cast<uint8_t>(i);
      x <<= 1;
      if (x & 0x100) x ^= 0x11d;
    }
    for (int i = 255; i < 512; ++i) exp[i] = exp[i - 255];
    log[0] = 0;  // Undefined; callers guard zero.
  }
};

const GfTables& Tables() {
  static const GfTables t;
  return t;
}

/// x^e for shard index x (0 means: 1 when e == 0, else 0).
uint8_t GfPow(int x, int e) {
  if (e == 0) return 1;
  if (x == 0) return 0;
  const GfTables& t = Tables();
  return t.exp[(t.log[x] * e) % 255];
}

/// Solves the k x k Vandermonde system for the given shard indices:
/// returns the inverse of A where A[r][j] = x_r^j, or empty on a
/// singular matrix (impossible for distinct indices; kept as a guard).
std::vector<uint8_t> InvertVandermonde(const std::vector<int>& xs, int k) {
  // Gauss–Jordan over GF(256) on [A | I].
  std::vector<uint8_t> a(static_cast<size_t>(k) * k);
  std::vector<uint8_t> inv(static_cast<size_t>(k) * k, 0);
  for (int r = 0; r < k; ++r) {
    for (int j = 0; j < k; ++j) a[r * k + j] = GfPow(xs[r], j);
    inv[r * k + r] = 1;
  }
  for (int col = 0; col < k; ++col) {
    int pivot = -1;
    for (int r = col; r < k; ++r) {
      if (a[r * k + col] != 0) {
        pivot = r;
        break;
      }
    }
    if (pivot < 0) return {};
    if (pivot != col) {
      for (int j = 0; j < k; ++j) {
        std::swap(a[pivot * k + j], a[col * k + j]);
        std::swap(inv[pivot * k + j], inv[col * k + j]);
      }
    }
    const uint8_t d = GfInv(a[col * k + col]);
    for (int j = 0; j < k; ++j) {
      a[col * k + j] = GfMul(a[col * k + j], d);
      inv[col * k + j] = GfMul(inv[col * k + j], d);
    }
    for (int r = 0; r < k; ++r) {
      if (r == col) continue;
      const uint8_t f = a[r * k + col];
      if (f == 0) continue;
      for (int j = 0; j < k; ++j) {
        a[r * k + j] = static_cast<uint8_t>(a[r * k + j] ^
                                            GfMul(f, a[col * k + j]));
        inv[r * k + j] = static_cast<uint8_t>(inv[r * k + j] ^
                                              GfMul(f, inv[col * k + j]));
      }
    }
  }
  return inv;
}

/// Reads one base-10 integer followed by a single space. Returns false on
/// malformed input (same idiom as DecodeBatch).
bool ReadNum(const std::string& s, size_t* pos, unsigned long long* out) {
  if (*pos >= s.size()) return false;
  char* end = nullptr;
  *out = std::strtoull(s.c_str() + *pos, &end, 10);
  if (end == nullptr || *end != ' ') return false;
  *pos = static_cast<size_t>(end - s.c_str()) + 1;
  return true;
}

bool ReadSigned(const std::string& s, size_t* pos, long long* out) {
  if (*pos >= s.size()) return false;
  char* end = nullptr;
  *out = std::strtoll(s.c_str() + *pos, &end, 10);
  if (end == nullptr || *end != ' ') return false;
  *pos = static_cast<size_t>(end - s.c_str()) + 1;
  return true;
}

/// Parsed form of a shard-set Command's op (see EncodeFrame below).
struct Frame {
  int32_t client;
  uint64_t client_seq;
  uint64_t acked;
  int k;
  int n;
  uint64_t payload_len;
  uint64_t payload_check;
  std::vector<std::pair<int, std::string>> shards;  ///< Checksum-valid only.
  uint64_t corrupt = 0;
};

/// "<client> <seq> <acked> <k> <n> <plen> <pcheck> <m> " then per shard
/// "<index> <len> <check> <bytes>" — whitespace headers, byte-exact shard
/// payloads, matching the EncodeBatch framing idiom.
std::string EncodeFrame(int32_t client, uint64_t client_seq, uint64_t acked,
                        int k, int n, uint64_t payload_len,
                        uint64_t payload_check,
                        const std::vector<std::pair<int, const std::string*>>&
                            shards) {
  std::string out;
  out += std::to_string(client);
  out += ' ';
  out += std::to_string(client_seq);
  out += ' ';
  out += std::to_string(acked);
  out += ' ';
  out += std::to_string(k);
  out += ' ';
  out += std::to_string(n);
  out += ' ';
  out += std::to_string(payload_len);
  out += ' ';
  out += std::to_string(payload_check);
  out += ' ';
  out += std::to_string(shards.size());
  out += ' ';
  for (const auto& [index, data] : shards) {
    out += std::to_string(index);
    out += ' ';
    out += std::to_string(data->size());
    out += ' ';
    out += std::to_string(Fnv1a(*data));
    out += ' ';
    out += *data;
  }
  return out;
}

std::optional<Frame> DecodeFrame(const Command& cmd) {
  if (!IsShard(cmd)) return std::nullopt;
  const std::string& s = cmd.op;
  size_t pos = 0;
  long long client;
  unsigned long long seq, acked, k, n, plen, pcheck, m;
  if (!ReadSigned(s, &pos, &client) || !ReadNum(s, &pos, &seq) ||
      !ReadNum(s, &pos, &acked) || !ReadNum(s, &pos, &k) ||
      !ReadNum(s, &pos, &n) || !ReadNum(s, &pos, &plen) ||
      !ReadNum(s, &pos, &pcheck) || !ReadNum(s, &pos, &m)) {
    return std::nullopt;
  }
  if (k < 1 || n < static_cast<unsigned long long>(k) || n > 255) {
    return std::nullopt;
  }
  Frame f{static_cast<int32_t>(client), seq, acked, static_cast<int>(k),
          static_cast<int>(n),          plen, pcheck, {}, 0};
  for (unsigned long long i = 0; i < m; ++i) {
    unsigned long long index, len, check;
    if (!ReadNum(s, &pos, &index) || !ReadNum(s, &pos, &len) ||
        !ReadNum(s, &pos, &check)) {
      return std::nullopt;
    }
    if (index >= n || pos + len > s.size()) return std::nullopt;
    std::string data = s.substr(pos, len);
    pos += len;
    if (Fnv1a(data) != check) {
      ++f.corrupt;  // Detected bit-rot: drop the shard, keep the frame.
      continue;
    }
    f.shards.emplace_back(static_cast<int>(index), std::move(data));
  }
  return f;
}

}  // namespace

uint8_t GfMul(uint8_t a, uint8_t b) {
  if (a == 0 || b == 0) return 0;
  const GfTables& t = Tables();
  return t.exp[t.log[a] + t.log[b]];
}

uint8_t GfInv(uint8_t a) {
  assert(a != 0);
  const GfTables& t = Tables();
  return t.exp[255 - t.log[a]];
}

std::vector<std::string> ErasureEncode(const std::string& payload, int k,
                                       int n) {
  assert(1 <= k && k <= n && n <= 255);
  const size_t stripe = (payload.size() + static_cast<size_t>(k) - 1) /
                        static_cast<size_t>(k);
  std::vector<std::string> shards(static_cast<size_t>(n),
                                  std::string(stripe, '\0'));
  for (int i = 0; i < n; ++i) {
    std::string& out = shards[static_cast<size_t>(i)];
    for (int j = 0; j < k; ++j) {
      const uint8_t coef = GfPow(i, j);
      if (coef == 0) continue;
      const size_t base = static_cast<size_t>(j) * stripe;
      const size_t end =
          base < payload.size()
              ? (payload.size() - base < stripe ? payload.size() - base
                                                : stripe)
              : 0;
      for (size_t b = 0; b < end; ++b) {
        out[b] = static_cast<char>(
            static_cast<uint8_t>(out[b]) ^
            GfMul(static_cast<uint8_t>(payload[base + b]), coef));
      }
    }
  }
  return shards;
}

std::optional<std::string> ErasureDecode(
    const std::map<int, std::string>& shards, int k, int n,
    uint64_t payload_len) {
  if (k < 1 || n < k || static_cast<int>(shards.size()) < k) {
    return std::nullopt;
  }
  const size_t stripe = (static_cast<size_t>(payload_len) +
                         static_cast<size_t>(k) - 1) /
                        static_cast<size_t>(k);
  std::vector<int> xs;
  std::vector<const std::string*> rows;
  for (const auto& [index, data] : shards) {
    if (index < 0 || index >= n || data.size() != stripe) return std::nullopt;
    xs.push_back(index);
    rows.push_back(&data);
    if (static_cast<int>(xs.size()) == k) break;
  }
  const std::vector<uint8_t> inv = InvertVandermonde(xs, k);
  if (inv.empty()) return std::nullopt;
  std::string payload(static_cast<size_t>(payload_len), '\0');
  for (int j = 0; j < k; ++j) {
    const size_t base = static_cast<size_t>(j) * stripe;
    if (base >= payload.size()) break;
    const size_t end =
        payload.size() - base < stripe ? payload.size() - base : stripe;
    for (int r = 0; r < k; ++r) {
      const uint8_t coef = inv[static_cast<size_t>(j) * k + r];
      if (coef == 0) continue;
      const std::string& row = *rows[static_cast<size_t>(r)];
      for (size_t b = 0; b < end; ++b) {
        payload[base + b] = static_cast<char>(
            static_cast<uint8_t>(payload[base + b]) ^
            GfMul(static_cast<uint8_t>(row[b]), coef));
      }
    }
  }
  return payload;
}

Command ShardedCommand::Subset(int first, int count) const {
  std::vector<std::pair<int, const std::string*>> picked;
  for (int i = 0; i < count && i < n; ++i) {
    const int index = (first + i) % n;
    picked.emplace_back(index, &shards[static_cast<size_t>(index)]);
  }
  Command cmd{kShardClient, client_seq,
              EncodeFrame(client, client_seq, acked, k, n, payload_len,
                          payload_check, picked)};
  cmd.acked = acked;
  return cmd;
}

ShardedCommand ShardCommand(const Command& cmd, int k, int n) {
  ShardedCommand sc;
  sc.client = cmd.client;
  sc.client_seq = cmd.client_seq;
  sc.acked = cmd.acked;
  sc.k = k;
  sc.n = n;
  sc.payload_len = cmd.op.size();
  sc.payload_check = Fnv1a(cmd.op);
  sc.shards = ErasureEncode(cmd.op, k, n);
  return sc;
}

bool ShardAssembler::Add(const Command& shard_set) {
  std::optional<Frame> f = DecodeFrame(shard_set);
  if (!f.has_value()) return false;
  if (k_ == 0) {
    client_ = f->client;
    client_seq_ = f->client_seq;
    acked_ = f->acked;
    k_ = f->k;
    n_ = f->n;
    payload_len_ = f->payload_len;
    payload_check_ = f->payload_check;
  } else if (client_ != f->client || client_seq_ != f->client_seq ||
             k_ != f->k || n_ != f->n || payload_len_ != f->payload_len ||
             payload_check_ != f->payload_check) {
    return false;  // A frame for a different command or geometry.
  }
  corrupt_ += f->corrupt;
  if (f->acked > acked_) acked_ = f->acked;
  for (auto& [index, data] : f->shards) {
    shards_.emplace(index, std::move(data));  // First copy of an index wins.
  }
  return true;
}

std::optional<Command> ShardAssembler::Reconstruct() const {
  if (!Complete()) return std::nullopt;
  std::optional<std::string> payload =
      ErasureDecode(shards_, k_, n_, payload_len_);
  if (!payload.has_value() || Fnv1a(*payload) != payload_check_) {
    return std::nullopt;
  }
  Command cmd{client_, client_seq_, std::move(*payload)};
  cmd.acked = acked_;
  return cmd;
}

Command ShardAssembler::Merged() const {
  std::vector<std::pair<int, const std::string*>> picked;
  for (const auto& [index, data] : shards_) picked.emplace_back(index, &data);
  Command cmd{kShardClient, client_seq_,
              EncodeFrame(client_, client_seq_, acked_, k_, n_, payload_len_,
                          payload_check_, picked)};
  cmd.acked = acked_;
  return cmd;
}

}  // namespace consensus40::smr
