/// \file
/// Raft's ReplicaGroup facade (see consensus/replica_group.h). Lives next
/// to the protocol so the message-type mapping stays with its owner.

#include <map>
#include <string>

#include "consensus/replica_group.h"
#include "raft/raft.h"

namespace consensus40::raft {
namespace {

/// Must match the sentinel in raft.cc (protocol wire constant).
const char kRedirect[] = "\x01REDIRECT";

class RaftGroup : public consensus::ReplicaGroup {
 public:
  const char* protocol() const override { return "raft"; }

  void Create(sim::Simulation* sim, int replicas) override {
    sim::NodeId base = sim->num_processes();
    for (int i = 0; i < replicas; ++i) {
      members_.push_back(base + i);
    }
    RaftOptions options;
    options.initial_config = members_;
    options.batch_size = tuning_.batch_size;
    options.batch_delay = tuning_.batch_delay;
    options.snapshot_threshold = tuning_.snapshot_threshold;
    for (int i = 0; i < replicas; ++i) {
      replicas_.push_back(sim->Spawn<RaftReplica>(options));
    }
  }

  sim::MessagePtr MakeRequest(const smr::Command& cmd) const override {
    // Reads and writes share RequestMsg; the replica diverts
    // kind == kRead commands into the read-index path (no log entry —
    // the ack frontier rides on the next logged command instead).
    return std::make_shared<RaftReplica::RequestMsg>(cmd);
  }

  std::optional<Reply> ParseReply(const sim::Message& msg) const override {
    const auto* m = dynamic_cast<const RaftReplica::ReplyMsg*>(&msg);
    if (m == nullptr) return std::nullopt;
    Reply reply;
    reply.client_seq = m->client_seq;
    reply.leader_hint = m->leader_hint;
    if (m->result == kRedirect) {
      reply.redirected = true;
    } else {
      reply.result = m->result;
    }
    return reply;
  }

  sim::NodeId LeaderHint() const override {
    // Omniscient introspection: the leader of the highest term wins (an
    // isolated stale leader may still believe in an older term).
    sim::NodeId hint = sim::kInvalidNode;
    int64_t best_term = -1;
    for (const RaftReplica* r : replicas_) {
      if (r->IsLeader() && r->current_term() > best_term) {
        best_term = r->current_term();
        hint = r->id();
      }
    }
    return hint;
  }

  std::vector<smr::Command> CommittedPrefix(int replica) const override {
    return replicas_[static_cast<size_t>(replica)]->CommittedCommands();
  }

  void Probe() override {
    // Election Safety: at most one leader per term, across the group's
    // whole history (kept here, not in the checker, so every layer built
    // on RaftGroup gets the invariant for free).
    for (const RaftReplica* r : replicas_) {
      if (!r->IsLeader()) continue;
      auto [it, inserted] = term_leaders_.try_emplace(r->current_term(), r->id());
      if (!inserted && it->second != r->id()) {
        probe_violations_.push_back(
            "two leaders in term " + std::to_string(r->current_term()) + ": " +
            std::to_string(it->second) + " and " + std::to_string(r->id()));
      }
    }
  }

  std::vector<std::string> Violations() const override {
    std::vector<std::string> all = probe_violations_;
    for (const RaftReplica* r : replicas_) {
      for (const std::string& v : r->violations()) {
        all.push_back("replica " + std::to_string(r->id()) + ": " + v);
      }
    }
    return all;
  }

 private:
  std::vector<RaftReplica*> replicas_;
  std::map<int64_t, sim::NodeId> term_leaders_;
  std::vector<std::string> probe_violations_;
};

}  // namespace
}  // namespace consensus40::raft

namespace consensus40::consensus {

std::unique_ptr<ReplicaGroup> NewRaftGroup() {
  return std::make_unique<raft::RaftGroup>();
}

}  // namespace consensus40::consensus
