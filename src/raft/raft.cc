#include "raft/raft.h"

#include <algorithm>
#include <cassert>

namespace consensus40::raft {

namespace {
const char kRedirect[] = "\x01REDIRECT";
}  // namespace

// ---------------------------------------------------------------------------
// Messages
// ---------------------------------------------------------------------------

struct RaftReplica::RequestVoteMsg : sim::Message {
  const char* TypeName() const override { return "request-vote"; }
  int ByteSize() const override { return 32; }
  int64_t term = 0;
  sim::NodeId candidate = sim::kInvalidNode;
  uint64_t last_log_index = 0;  ///< Number of entries (0 = empty log).
  int64_t last_log_term = 0;
};

struct RaftReplica::VoteReplyMsg : sim::Message {
  const char* TypeName() const override { return "vote-reply"; }
  int ByteSize() const override { return 24; }
  int64_t term = 0;
  bool granted = false;
};

struct RaftReplica::AppendEntriesMsg : sim::Message {
  const char* TypeName() const override { return "append-entries"; }
  int ByteSize() const override {
    int size = 48;
    for (const LogEntry& e : entries) size += 8 + e.cmd.ByteSize();
    return size;
  }
  int64_t term = 0;
  sim::NodeId leader = sim::kInvalidNode;
  uint64_t prev_log_index = 0;  ///< Entries before this index must match.
  int64_t prev_log_term = 0;
  std::vector<LogEntry> entries;
  uint64_t leader_commit = 0;
  uint64_t round = 0;  ///< Leader broadcast round, echoed in the reply.
};

struct RaftReplica::AppendReplyMsg : sim::Message {
  const char* TypeName() const override { return "append-reply"; }
  int ByteSize() const override { return 40; }
  int64_t term = 0;
  bool success = false;
  uint64_t match_index = 0;  ///< On success: entries now known replicated.
  uint64_t round = 0;  ///< Echo of the AppendEntries round (0: snapshot
                       ///< replies — they never confirm a read).
};

struct RaftReplica::InstallSnapshotMsg : sim::Message {
  const char* TypeName() const override { return "install-snapshot"; }
  int ByteSize() const override {
    // True framed size: actual key/value bytes plus cached session
    // results, not a per-entry constant (values can be megabytes).
    int size = 64 + static_cast<int>(config.size()) * 8;
    for (const auto& [k, v] : data) {
      size += 16 + static_cast<int>(k.size()) + static_cast<int>(v.size());
    }
    for (const auto& [client, s] : sessions) {
      size += 24;
      for (const auto& [seq, result] : s.above) {
        size += 16 + static_cast<int>(result.size());
      }
    }
    return size;
  }
  int64_t term = 0;
  sim::NodeId leader = sim::kInvalidNode;
  uint64_t last_index = 0;  ///< Global index the snapshot covers through.
  int64_t last_term = 0;
  std::map<std::string, std::string> data;  ///< KV state.
  smr::DedupingExecutor::Sessions sessions;
  std::vector<sim::NodeId> config;  ///< Configuration at last_index.
};

// ---------------------------------------------------------------------------
// Replica
// ---------------------------------------------------------------------------

RaftReplica::RaftReplica(RaftOptions options) : options_(options) {
  if (options_.initial_config.empty()) {
    assert(options_.n > 0);
    for (int i = 0; i < options_.n; ++i) {
      options_.initial_config.push_back(i);
    }
  }
  config_ = options_.initial_config;
  snapshot_config_ = options_.initial_config;
}

std::vector<sim::NodeId> RaftReplica::Peers() const {
  std::vector<sim::NodeId> peers;
  for (sim::NodeId member : config_) {
    if (member != id()) peers.push_back(member);
  }
  return peers;
}

bool RaftReplica::IsVoter(sim::NodeId node) const {
  for (sim::NodeId member : config_) {
    if (member == node) return true;
  }
  return false;
}

smr::Command RaftReplica::MakeConfigCommand(
    const std::vector<sim::NodeId>& config) {
  std::string op = "CONFIG";
  for (sim::NodeId member : config) op += " " + std::to_string(member);
  return smr::Command{-2, 0, op};
}

std::optional<std::vector<sim::NodeId>> RaftReplica::ParseConfig(
    const smr::Command& cmd) {
  if (cmd.client != -2 || cmd.op.rfind("CONFIG", 0) != 0) return std::nullopt;
  std::vector<sim::NodeId> config;
  size_t pos = 6;
  while (pos < cmd.op.size()) {
    config.push_back(
        static_cast<sim::NodeId>(std::strtol(cmd.op.c_str() + pos, nullptr, 10)));
    pos = cmd.op.find(' ', pos + 1);
    if (pos == std::string::npos) break;
    ++pos;
  }
  return config;
}

void RaftReplica::RecomputeConfig() {
  config_ = snapshot_config_;
  for (const LogEntry& entry : log_) {
    auto parsed = ParseConfig(entry.cmd);
    if (parsed) config_ = *parsed;
  }
}

Status RaftReplica::ChangeConfig(std::vector<sim::NodeId> new_config) {
  if (role_ != Role::kLeader) {
    return Status::FailedPrecondition("not the leader");
  }
  if (new_config.empty()) {
    return Status::InvalidArgument("empty configuration");
  }
  // One change at a time: any uncommitted config entry blocks the next.
  for (uint64_t i = commit_index_; i < LogEnd(); ++i) {
    if (ParseConfig(EntryAt(i + 1).cmd)) {
      return Status::FailedPrecondition("a config change is in flight");
    }
  }
  log_.push_back(LogEntry{current_term_, MakeConfigCommand(new_config)});
  config_ = std::move(new_config);  // Effective when appended.
  BroadcastAppendEntries();
  return Status::Ok();
}

int64_t RaftReplica::LastLogTerm() const {
  return log_.empty() ? snapshot_term_ : log_.back().term;
}

int64_t RaftReplica::TermOfEntry(uint64_t index) const {
  if (index == 0) return 0;
  if (index == log_start_) return snapshot_term_;
  return EntryAt(index).term;
}

void RaftReplica::OnStart() { ResetElectionTimer(); }

void RaftReplica::OnRestart() {
  // current_term_, voted_for_, log_, snapshot state are persistent.
  role_ = Role::kFollower;
  leader_hint_ = sim::kInvalidNode;
  votes_.clear();
  next_index_.clear();
  match_index_.clear();
  awaiting_client_.clear();
  proposed_.clear();
  batch_queue_.clear();  // Volatile: clients re-transmit unlogged commands.
  batch_timer_ = 0;
  pending_reads_.clear();  // Volatile: clients re-issue reads.
  waiting_reads_.clear();
  ae_round_ = 0;  // Safe: regaining leadership requires a higher term.
  ResetElectionTimer();
}

void RaftReplica::ResetElectionTimer() {
  CancelTimer(election_timer_);
  sim::Duration t = options_.election_timeout +
                    static_cast<sim::Duration>(
                        rng().NextBounded(options_.election_timeout));
  election_timer_ = SetTimer(t, [this] { StartElection(); });
}

void RaftReplica::BecomeFollower(int64_t term) {
  if (term > current_term_) {
    current_term_ = term;
    voted_for_ = sim::kInvalidNode;
  }
  if (role_ == Role::kLeader) {
    CancelTimer(heartbeat_timer_);
    CancelTimer(batch_timer_);
    batch_queue_.clear();  // Unlogged commands: clients retry elsewhere.
    proposed_.clear();
    FailPendingReads();  // Leadership lost: reads must go to the new leader.
  }
  role_ = Role::kFollower;
  votes_.clear();
  ResetElectionTimer();
}

void RaftReplica::StartElection() {
  if (role_ == Role::kLeader) return;
  if (!IsVoter(id()) || (options_.join_passive && !heard_from_leader_)) {
    // Not (yet) a voting member: stay quiet rather than disrupt the
    // incumbents with doomed candidacies.
    ResetElectionTimer();
    return;
  }
  role_ = Role::kCandidate;
  ++current_term_;
  ++elections_started_;
  voted_for_ = id();
  votes_ = {id()};
  leader_hint_ = sim::kInvalidNode;
  auto rv = std::make_shared<RequestVoteMsg>();
  rv->term = current_term_;
  rv->candidate = id();
  rv->last_log_index = LogEnd();
  rv->last_log_term = LastLogTerm();
  Multicast(Peers(), rv);
  ResetElectionTimer();  // Retry with a new term if this election splits.
  if (static_cast<int>(votes_.size()) >= Majority()) BecomeLeader();
}

void RaftReplica::BecomeLeader() {
  role_ = Role::kLeader;
  leader_hint_ = id();
  CancelTimer(election_timer_);
  for (sim::NodeId peer : Peers()) {
    next_index_[peer] = LogEnd();
    match_index_[peer] = 0;
  }
  RebuildProposed();
  // AdvanceCommitIndex may only count replicas for entries of the
  // current term, so a leader whose log ends in an uncommitted
  // prior-term tail can never commit it without new traffic — and a
  // retried client command already present in that tail appends
  // nothing. Commit a no-op in our own term to pull the tail through
  // (Raft paper §8). Every uncommitted entry here is prior-term: the
  // candidate bumped its term before winning.
  if (LogEnd() > commit_index_) {
    log_.push_back(
        LogEntry{current_term_, smr::Command{smr::kNoopClient, 0, "NOOP"}});
  }
  BroadcastAppendEntries();  // Immediate heartbeat asserts leadership.
}

void RaftReplica::RebuildProposed() {
  proposed_.clear();
  for (uint64_t i = last_applied_; i < LogEnd(); ++i) {
    for (const smr::Command& cmd : smr::FlattenCommand(EntryAt(i + 1).cmd)) {
      if (cmd.client >= 0) proposed_.insert({cmd.client, cmd.client_seq});
    }
  }
}

void RaftReplica::FlushBatch() {
  CancelTimer(batch_timer_);
  batch_timer_ = 0;
  if (role_ != Role::kLeader || batch_queue_.empty()) return;
  size_t max_take = static_cast<size_t>(std::max(1, options_.batch_size));
  while (!batch_queue_.empty()) {
    size_t take = std::min(batch_queue_.size(), max_take);
    if (take == 1) {
      // A lone command ships raw, keeping the untuned log shape.
      log_.push_back(LogEntry{current_term_, batch_queue_.front()});
    } else {
      std::vector<smr::Command> cmds(batch_queue_.begin(),
                                     batch_queue_.begin() +
                                         static_cast<long>(take));
      log_.push_back(LogEntry{current_term_, smr::EncodeBatch(cmds)});
      ++batches_cut_;
    }
    batch_queue_.erase(batch_queue_.begin(),
                       batch_queue_.begin() + static_cast<long>(take));
  }
  BroadcastAppendEntries();
}

void RaftReplica::SendAppendEntries(sim::NodeId peer) {
  uint64_t next = next_index_[peer];
  if (next < log_start_) {
    // The follower needs entries we have compacted away: ship the
    // snapshot instead (Raft's InstallSnapshot RPC).
    auto snap = std::make_shared<InstallSnapshotMsg>();
    snap->term = current_term_;
    snap->leader = id();
    snap->last_index = log_start_;
    snap->last_term = snapshot_term_;
    snap->data = kv_.Snapshot();
    snap->sessions = dedup_.sessions();
    snap->config = snapshot_config_;
    Send(peer, snap);
    return;
  }
  auto ae = std::make_shared<AppendEntriesMsg>();
  ae->term = current_term_;
  ae->leader = id();
  ae->prev_log_index = next;
  ae->prev_log_term = TermOfEntry(next);
  for (uint64_t i = next; i < LogEnd(); ++i) {
    ae->entries.push_back(EntryAt(i + 1));
  }
  ae->leader_commit = commit_index_;
  ae->round = ae_round_;
  Send(peer, ae);
}

void RaftReplica::BroadcastAppendEntries() {
  if (role_ != Role::kLeader) return;
  ++ae_round_;  // Replies echoing this round confirm leadership *now*.
  for (sim::NodeId peer : Peers()) SendAppendEntries(peer);
  CancelTimer(heartbeat_timer_);
  heartbeat_timer_ = SetTimer(options_.heartbeat_interval,
                              [this] { BroadcastAppendEntries(); });
}

void RaftReplica::AdvanceCommitIndex() {
  // Find the highest N > commit_index_ replicated on a majority with
  // TermOfEntry(N) == current_term_ (the Raft commit rule).
  for (uint64_t n = LogEnd(); n > commit_index_ && n > log_start_; --n) {
    if (TermOfEntry(n) != current_term_) break;
    // Count only the votes of the CURRENT configuration.
    int count = IsVoter(id()) ? 1 : 0;
    for (sim::NodeId member : config_) {
      if (member == id()) continue;
      auto it = match_index_.find(member);
      count += (it != match_index_.end() && it->second >= n);
    }
    if (count >= Majority()) {
      commit_index_ = n;
      break;
    }
  }
  ApplyCommitted();
  MaybeServeReads();
  // Committing the term-start entry opens the read barrier: reads that
  // arrived too early can now be registered.
  if (role_ == Role::kLeader && ReadBarrierPassed() && !waiting_reads_.empty()) {
    std::vector<WaitingRead> waiting;
    waiting.swap(waiting_reads_);
    for (const WaitingRead& w : waiting) {
      RegisterRead(w.client_node, w.client_seq, w.key);
    }
  }
}

void RaftReplica::ApplyCommitted() {
  while (last_applied_ < commit_index_) {
    const LogEntry& entry = EntryAt(last_applied_ + 1);
    ++last_applied_;
    if (smr::IsNoop(entry.cmd)) continue;  // Leader term-start no-op.
    auto config = ParseConfig(entry.cmd);
    if (config) {
      // A committed configuration that no longer contains us (leader
      // removed itself) means we must step down.
      if (role_ == Role::kLeader && !IsVoter(id())) {
        BecomeFollower(current_term_);
      }
      continue;  // Config entries do not touch the state machine.
    }
    // Batch entries fan out: each client command is deduped, recorded,
    // and answered individually. A batch that fails to decode must
    // surface, not silently apply zero commands for the entry.
    std::vector<smr::Command> subs;
    if (smr::IsBatch(entry.cmd)) {
      std::optional<std::vector<smr::Command>> decoded =
          smr::DecodeBatch(entry.cmd);
      if (!decoded.has_value()) {
        violations_.push_back("malformed batch entry at index " +
                              std::to_string(last_applied_) +
                              " dropped on apply");
        continue;
      }
      subs = std::move(*decoded);
    } else {
      subs = {entry.cmd};
    }
    for (const smr::Command& cmd : subs) {
      std::string result = dedup_.Apply(&kv_, cmd);
      executed_commands_.push_back(cmd);
      auto cmd_key = std::make_pair(cmd.client, cmd.client_seq);
      proposed_.erase(cmd_key);
      auto it = awaiting_client_.find(cmd_key);
      if (it != awaiting_client_.end()) {
        Send(it->second,
             std::make_shared<ReplyMsg>(cmd.client_seq, result, id()));
        awaiting_client_.erase(it);
      }
    }
  }
  MaybeTakeSnapshot();
}

void RaftReplica::MaybeTakeSnapshot() {
  if (options_.snapshot_threshold == 0) return;
  if (last_applied_ - log_start_ < options_.snapshot_threshold) return;
  // The applied state machine IS the snapshot: record the boundary term
  // and the configuration in effect at the boundary, drop the prefix.
  snapshot_term_ = TermOfEntry(last_applied_);
  for (uint64_t i = log_start_; i < last_applied_; ++i) {
    auto config = ParseConfig(EntryAt(i + 1).cmd);
    if (config) snapshot_config_ = *config;
  }
  log_.erase(log_.begin(),
             log_.begin() + static_cast<long>(last_applied_ - log_start_));
  log_start_ = last_applied_;
  ++snapshots_taken_;
}

// ---------------------------------------------------------------------------
// Read-index reads (Raft dissertation §6.4)
// ---------------------------------------------------------------------------

bool RaftReplica::ReadBarrierPassed() const {
  // A fresh leader's commit_index may trail the cluster frontier until it
  // commits an entry of its own term. BecomeLeader appends a no-op
  // whenever an uncommitted tail exists, so either the whole log was
  // committed at election (first disjunct) or the barrier entry commits
  // and satisfies the second.
  return commit_index_ == LogEnd() ||
         TermOfEntry(commit_index_) == current_term_;
}

void RaftReplica::HandleRead(sim::NodeId from, int32_t /*client*/,
                             uint64_t seq, const std::string& key) {
  if (!ReadBarrierPassed()) {
    waiting_reads_.push_back(WaitingRead{from, seq, key});
    return;
  }
  RegisterRead(from, seq, key);
}

void RaftReplica::RegisterRead(sim::NodeId from, uint64_t seq,
                               const std::string& key) {
  PendingRead read;
  read.read_index = commit_index_;
  // Only acks to AppendEntries sent AFTER this point prove we are still
  // the leader; a stale in-flight ack must not count.
  read.round = ae_round_ + 1;
  read.client_node = from;
  read.client_seq = seq;
  read.key = key;
  read.confirmed = 1 >= Majority();  // Singleton group: self-ack suffices.
  pending_reads_.push_back(std::move(read));
  if (pending_reads_.back().confirmed) {
    MaybeServeReads();
  } else {
    BroadcastAppendEntries();  // Bumps ae_round_ to read.round and fans out.
  }
}

void RaftReplica::MaybeServeReads() {
  size_t i = 0;
  while (i < pending_reads_.size()) {
    const PendingRead& read = pending_reads_[i];
    if (!read.confirmed || read.read_index > last_applied_) {
      ++i;
      continue;
    }
    // Read-index reads bypass the log, so the shard layer's routing
    // fence must be consulted explicitly: a migrated-away key bounces
    // with "MOVED <epoch>" exactly as the logged GET would.
    std::string result;
    if (std::optional<uint64_t> moved = kv_.MovedEpoch(read.key)) {
      result = "MOVED " + std::to_string(*moved);
    } else {
      std::optional<std::string> value = kv_.Get(read.key);
      result = value.has_value() ? *value : "NIL";
    }
    Send(read.client_node,
         std::make_shared<ReplyMsg>(read.client_seq, result, id()));
    ++reads_served_;
    pending_reads_.erase(pending_reads_.begin() + static_cast<long>(i));
  }
}

void RaftReplica::FailPendingReads() {
  for (const PendingRead& read : pending_reads_) {
    Send(read.client_node,
         std::make_shared<ReplyMsg>(read.client_seq, kRedirect, leader_hint_));
  }
  for (const WaitingRead& read : waiting_reads_) {
    Send(read.client_node,
         std::make_shared<ReplyMsg>(read.client_seq, kRedirect, leader_hint_));
  }
  pending_reads_.clear();
  waiting_reads_.clear();
}

void RaftReplica::OnMessage(sim::NodeId from, const sim::Message& msg) {
  if (const auto* m = dynamic_cast<const RequestMsg*>(&msg)) {
    if (role_ != Role::kLeader) {
      Send(from, std::make_shared<ReplyMsg>(m->cmd.client_seq, kRedirect,
                                            leader_hint_));
      return;
    }
    if (m->cmd.kind == smr::Command::Kind::kRead) {
      // Read-index path: never logged, never touches the dedup sessions
      // (those are replicated state, and a non-logged read mutating them
      // would diverge the replicas). `op` is "GET <key>" by the
      // MakeRequest contract.
      HandleRead(from, m->cmd.client, m->cmd.client_seq, m->cmd.op.substr(4));
      return;
    }
    // Already executed (possibly compacted away): answer from cache.
    if (const std::string* cached =
            dedup_.Lookup(m->cmd.client, m->cmd.client_seq)) {
      Send(from, std::make_shared<ReplyMsg>(m->cmd.client_seq, *cached, id()));
      return;
    }
    auto key = std::make_pair(m->cmd.client, m->cmd.client_seq);
    awaiting_client_[key] = from;
    if (proposed_.count(key) > 0) return;  // In flight: reply lands on apply.
    proposed_.insert(key);
    batch_queue_.push_back(m->cmd);
    // PBFT-style cut-or-linger: cut immediately when batching is off or
    // the batch is full; otherwise arm the linger timer on first enqueue.
    if (options_.batch_delay == 0 ||
        batch_queue_.size() >= static_cast<size_t>(options_.batch_size)) {
      FlushBatch();
    } else if (batch_queue_.size() == 1) {
      batch_timer_ = SetTimer(options_.batch_delay, [this] { FlushBatch(); });
    }
    return;
  }

  if (const auto* m = dynamic_cast<const RequestVoteMsg*>(&msg)) {
    if (m->term > current_term_) BecomeFollower(m->term);
    bool granted = false;
    if (m->term == current_term_ &&
        (voted_for_ == sim::kInvalidNode || voted_for_ == m->candidate)) {
      // Election restriction: candidate's log must be at least as
      // up-to-date as ours.
      bool up_to_date =
          m->last_log_term > LastLogTerm() ||
          (m->last_log_term == LastLogTerm() &&
           m->last_log_index >= LogEnd());
      if (up_to_date) {
        granted = true;
        voted_for_ = m->candidate;
        ResetElectionTimer();
      }
    }
    auto reply = std::make_shared<VoteReplyMsg>();
    reply->term = current_term_;
    reply->granted = granted;
    Send(from, reply);
    return;
  }

  if (const auto* m = dynamic_cast<const VoteReplyMsg*>(&msg)) {
    if (m->term > current_term_) {
      BecomeFollower(m->term);
      return;
    }
    if (role_ != Role::kCandidate || m->term != current_term_ || !m->granted) {
      return;
    }
    votes_.insert(from);
    if (static_cast<int>(votes_.size()) >= Majority()) BecomeLeader();
    return;
  }

  if (const auto* m = dynamic_cast<const AppendEntriesMsg*>(&msg)) {
    auto reply = std::make_shared<AppendReplyMsg>();
    reply->round = m->round;
    if (m->term < current_term_) {
      reply->term = current_term_;
      reply->success = false;
      Send(from, reply);
      return;
    }
    BecomeFollower(m->term);
    leader_hint_ = m->leader;
    heard_from_leader_ = true;
    reply->term = current_term_;

    uint64_t prev = m->prev_log_index;
    size_t skip = 0;
    if (prev < log_start_) {
      // Our snapshot already covers (prev, log_start_]; those entries are
      // committed, hence identical — skip them.
      skip = std::min<size_t>(log_start_ - prev, m->entries.size());
      prev += skip;
    }
    if (prev > LogEnd() ||
        (prev > log_start_ && TermOfEntry(prev) != m->prev_log_term &&
         skip == 0)) {
      // Log mismatch: leader will back up nextIndex.
      reply->success = false;
      reply->match_index = 0;
      Send(from, reply);
      return;
    }
    // Append, truncating any conflicting suffix.
    uint64_t index = prev;  // Global index of the entry about to land.
    bool log_changed = false;
    for (size_t k = skip; k < m->entries.size(); ++k) {
      const LogEntry& entry = m->entries[k];
      if (index < LogEnd()) {
        if (TermOfEntry(index + 1) != entry.term) {
          if (index < commit_index_) {
            violations_.push_back("truncating committed entry " +
                                  std::to_string(index));
          }
          log_.resize(index - log_start_);
          log_.push_back(entry);
          log_changed = true;
        }
      } else {
        log_.push_back(entry);
        log_changed = true;
      }
      ++index;
    }
    if (log_changed) RecomputeConfig();
    if (m->leader_commit > commit_index_) {
      commit_index_ = std::min<uint64_t>(m->leader_commit, LogEnd());
      ApplyCommitted();
    }
    reply->success = true;
    reply->match_index = m->prev_log_index + m->entries.size();
    Send(from, reply);
    return;
  }

  if (const auto* m = dynamic_cast<const InstallSnapshotMsg*>(&msg)) {
    auto reply = std::make_shared<AppendReplyMsg>();
    if (m->term < current_term_) {
      reply->term = current_term_;
      reply->success = false;
      Send(from, reply);
      return;
    }
    BecomeFollower(m->term);
    leader_hint_ = m->leader;
    heard_from_leader_ = true;
    reply->term = current_term_;
    if (m->last_index <= last_applied_) {
      // Our state is already at least as fresh.
      reply->success = true;
      reply->match_index = last_applied_;
      Send(from, reply);
      return;
    }
    kv_.Restore(m->data);
    dedup_.Restore(m->sessions);
    if (m->last_index >= LogEnd()) {
      log_.clear();
    } else {
      log_.erase(log_.begin(),
                 log_.begin() + static_cast<long>(m->last_index - log_start_));
    }
    log_start_ = m->last_index;
    snapshot_term_ = m->last_term;
    if (!m->config.empty()) snapshot_config_ = m->config;
    RecomputeConfig();
    commit_index_ = std::max(commit_index_, m->last_index);
    last_applied_ = m->last_index;
    ++snapshots_installed_;
    reply->success = true;
    reply->match_index = m->last_index;
    Send(from, reply);
    ApplyCommitted();
    return;
  }

  if (const auto* m = dynamic_cast<const AppendReplyMsg*>(&msg)) {
    if (m->term > current_term_) {
      BecomeFollower(m->term);
      return;
    }
    if (role_ != Role::kLeader || m->term != current_term_) return;
    if (m->success) {
      match_index_[from] = std::max(match_index_[from], m->match_index);
      next_index_[from] = std::max(next_index_[from], m->match_index);
      if (m->round > 0) {
        for (PendingRead& read : pending_reads_) {
          if (read.confirmed || m->round < read.round) continue;
          read.acks.insert(from);
          if (static_cast<int>(read.acks.size()) + 1 >= Majority()) {
            read.confirmed = true;
          }
        }
      }
      AdvanceCommitIndex();  // Also serves newly confirmed reads.
    } else {
      // Back up and retry immediately.
      if (next_index_[from] > 0) --next_index_[from];
      SendAppendEntries(from);
    }
    return;
  }
}

std::vector<smr::Command> RaftReplica::CommittedCommands() const {
  return executed_commands_;
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

RaftClient::RaftClient(int n, int ops, std::string key, sim::Duration retry)
    : n_(n), ops_(ops), key_(std::move(key)), retry_(retry) {}

void RaftClient::OnStart() {
  seq_ = 1;
  SendCurrent();
}

void RaftClient::SendCurrent() {
  if (done()) return;
  smr::Command cmd{id(), seq_, "INC " + key_};
  cmd.acked = seq_ - 1;  // Closed loop: every earlier reply was consumed.
  Send(target_, std::make_shared<RaftReplica::RequestMsg>(cmd));
  CancelTimer(retry_timer_);
  retry_timer_ = SetTimer(retry_, [this] {
    target_ = (target_ + 1) % n_;
    SendCurrent();
  });
}

void RaftClient::OnMessage(sim::NodeId from, const sim::Message& msg) {
  const auto* m = dynamic_cast<const RaftReplica::ReplyMsg*>(&msg);
  if (m == nullptr || m->client_seq != seq_ || done()) return;
  if (m->result == kRedirect) {
    if (m->leader_hint >= 0 && m->leader_hint < n_ && m->leader_hint != from) {
      target_ = m->leader_hint;
      SendCurrent();
    }
    return;
  }
  target_ = from;
  results_.push_back(m->result);
  ++completed_;
  ++seq_;
  if (done()) {
    CancelTimer(retry_timer_);
  } else {
    SendCurrent();
  }
}

}  // namespace consensus40::raft
