/// Checker adapter for Raft: n=5 replicas plus a retrying client. Beyond
/// the shared log-prefix invariant, the probe tracks Election Safety (at
/// most one leader per term) — the invariant that vote durability across
/// crash/restart protects.

#include <memory>
#include <string>

#include "check/adapters.h"
#include "raft/raft.h"

namespace consensus40::check {
namespace {

class RaftCheckAdapter : public ProtocolAdapter {
 public:
  const char* name() const override { return "raft"; }

  FaultBounds bounds() const override {
    FaultBounds b;
    b.nodes = kN;
    b.max_crashed = (kN - 1) / 2;
    b.restartable = true;  // term/votedFor/log survive OnRestart.
    b.partitionable = true;
    return b;
  }

  void Build(sim::Simulation* sim) override {
    raft::RaftOptions opts;
    opts.n = kN;
    for (int i = 0; i < kN; ++i) {
      replicas_.push_back(sim->Spawn<raft::RaftReplica>(opts));
    }
    client_ = sim->Spawn<raft::RaftClient>(kN, kOps);
  }

  bool Done() const override { return client_->done(); }

  void OnProbe(sim::Simulation*) override {
    for (const raft::RaftReplica* r : replicas_) {
      if (r->crashed() || !r->IsLeader()) continue;
      auto [it, inserted] = term_leaders_.emplace(r->current_term(), r->id());
      if (!inserted && it->second != r->id()) {
        election_violations_.push_back(
            "election safety: term " + std::to_string(r->current_term()) +
            " has leaders " + std::to_string(it->second) + " and " +
            std::to_string(r->id()));
      }
    }
  }

  Observation Observe() const override {
    Observation o;
    for (const raft::RaftReplica* r : replicas_) {
      std::vector<std::string> log;
      for (const smr::Command& cmd : r->CommittedCommands()) {
        log.push_back(cmd.ToString());
      }
      o.logs.push_back(std::move(log));
      for (const std::string& v : r->violations()) {
        o.self_reported.push_back("raft replica " + std::to_string(r->id()) +
                                  ": " + v);
      }
    }
    o.self_reported.insert(o.self_reported.end(), election_violations_.begin(),
                           election_violations_.end());
    return o;
  }

 private:
  static constexpr int kN = 5;
  static constexpr int kOps = 5;
  std::vector<raft::RaftReplica*> replicas_;
  raft::RaftClient* client_ = nullptr;
  std::map<int64_t, sim::NodeId> term_leaders_;
  std::vector<std::string> election_violations_;
};

}  // namespace

AdapterFactory MakeRaftAdapter() {
  return [](uint64_t) { return std::make_unique<RaftCheckAdapter>(); };
}

}  // namespace consensus40::check
