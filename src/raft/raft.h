#ifndef CONSENSUS40_RAFT_RAFT_H_
#define CONSENSUS40_RAFT_RAFT_H_

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"

#include "sim/simulation.h"
#include "smr/command.h"
#include "smr/state_machine.h"

namespace consensus40::smr {
class KvStore;
}

namespace consensus40::raft {

/// Configuration for a Raft replica.
struct RaftOptions {
  /// Cluster size; replicas must be processes 0..n-1.
  int n = 0;

  /// Heartbeat (empty AppendEntries) period.
  sim::Duration heartbeat_interval = 20 * sim::kMillisecond;

  /// Election timeout base; actual timeout uniform in [base, 2*base] —
  /// Raft's randomized timeouts are what keep split votes rare.
  sim::Duration election_timeout = 150 * sim::kMillisecond;

  /// Log compaction: once this many entries are applied beyond the last
  /// snapshot, fold them into a state snapshot and truncate the log.
  /// Followers too far behind receive InstallSnapshot. 0 disables.
  uint64_t snapshot_threshold = 0;

  /// Leader-side batching (mirrors PBFT's batch_size/batch_delay): max
  /// client commands the leader folds into one log entry, and how long
  /// it lingers for a batch to fill. The defaults (1, 0) keep the
  /// one-command-per-entry behaviour bit-for-bit.
  int batch_size = 1;
  sim::Duration batch_delay = 0;

  /// Initial voting configuration; empty = processes 0..n-1.
  std::vector<sim::NodeId> initial_config;

  /// A server being added to an existing cluster starts passive: it does
  /// not campaign until it has heard from a leader (prevents a fresh,
  /// empty server from disrupting the incumbents with election storms).
  bool join_passive = false;
};

/// A Raft replica (Ongaro & Ousterhout 2014): the deck presents Raft as the
/// understandability-first equivalent of Multi-Paxos — terms instead of
/// ballots, leader-integrated log management, randomized elections.
class RaftReplica : public sim::Process {
 public:
  enum class Role { kFollower, kCandidate, kLeader };

  explicit RaftReplica(RaftOptions options);

  struct LogEntry {
    int64_t term = 0;
    smr::Command cmd;
  };

  // --- Client-facing messages ---
  struct RequestMsg : sim::Message {
    explicit RequestMsg(smr::Command c) : cmd(std::move(c)) {}
    const char* TypeName() const override { return "request"; }
    int ByteSize() const override { return 8 + cmd.ByteSize(); }
    smr::Command cmd;
  };
  struct ReplyMsg : sim::Message {
    ReplyMsg(uint64_t s, std::string r, sim::NodeId hint)
        : client_seq(s), result(std::move(r)), leader_hint(hint) {}
    const char* TypeName() const override { return "reply"; }
    int ByteSize() const override {
      return 16 + static_cast<int>(result.size());
    }
    uint64_t client_seq;
    std::string result;
    sim::NodeId leader_hint;
  };
  Role role() const { return role_; }
  bool IsLeader() const { return role_ == Role::kLeader; }
  int64_t current_term() const { return current_term_; }
  /// Who this replica voted for in current_term() (kInvalidNode if nobody).
  /// Persistent: must survive Crash()/Restart(), or a node could grant two
  /// votes in one term and elect two leaders.
  sim::NodeId voted_for() const { return voted_for_; }
  sim::NodeId LeaderHint() const { return leader_hint_; }
  uint64_t commit_index() const { return commit_index_; }
  const std::vector<LogEntry>& raft_log() const { return log_; }
  const smr::KvStore& kv() const { return kv_; }
  int elections_started() const { return elections_started_; }
  /// Multi-command log entries cut by this replica while leader.
  int batches_cut() const { return batches_cut_; }
  const std::vector<std::string>& violations() const { return violations_; }
  /// First global index still held in the log (compaction frontier).
  uint64_t log_start() const { return log_start_; }
  /// Entries currently held in memory (compaction shrinks this).
  size_t LogEntriesHeld() const { return log_.size(); }
  int snapshots_taken() const { return snapshots_taken_; }
  int snapshots_installed() const { return snapshots_installed_; }
  /// Read-index reads answered by this replica while leader.
  int reads_served() const { return reads_served_; }

  /// Commands this replica applied, in order (for shared checkers; a
  /// replica that bootstrapped from a snapshot only knows its suffix).
  std::vector<smr::Command> CommittedCommands() const;

  // --- Membership reconfiguration (single-server-change rule) ---

  /// The voting configuration currently in effect (config entries take
  /// effect as soon as they are APPENDED, per the Raft dissertation).
  const std::vector<sim::NodeId>& config() const { return config_; }

  /// Leader-only: appends a configuration-change entry. Fails if this
  /// replica is not the leader or a config change is still uncommitted
  /// (changes must be applied one at a time).
  Status ChangeConfig(std::vector<sim::NodeId> new_config);

  /// Encodes/decodes configuration log entries.
  static smr::Command MakeConfigCommand(
      const std::vector<sim::NodeId>& config);
  static std::optional<std::vector<sim::NodeId>> ParseConfig(
      const smr::Command& cmd);

  void OnStart() override;
  void OnMessage(sim::NodeId from, const sim::Message& msg) override;
  void OnRestart() override;

 private:
  struct RequestVoteMsg;
  struct VoteReplyMsg;
  struct AppendEntriesMsg;
  struct AppendReplyMsg;
  struct InstallSnapshotMsg;

  void BecomeFollower(int64_t term);
  void StartElection();
  void BecomeLeader();
  void ResetElectionTimer();
  /// Cuts the queued client commands into log entries (one raw entry for
  /// a single command, a batch entry otherwise) and replicates them.
  void FlushBatch();
  /// Re-derives proposed_ from the unapplied log suffix (new leader).
  void RebuildProposed();
  /// Read-index machinery (read-index, no leader lease): the leader
  /// records commit_index as the read index, confirms it is still the
  /// leader with one round of AppendEntries acks, waits until the read
  /// index is applied, and answers from its state machine — no log
  /// entry, no clock assumption (Raft dissertation §6.4). Reads arrive
  /// as kind == kRead commands inside RequestMsg. A read may only be
  /// *registered* once the leader has committed an entry of its own
  /// term (or its log was fully committed at election) — before that,
  /// commit_index may trail the cluster-wide frontier and a read-index
  /// read could miss committed writes. Gated reads wait in
  /// waiting_reads_ for the barrier.
  bool ReadBarrierPassed() const;
  void HandleRead(sim::NodeId from, int32_t client, uint64_t seq,
                  const std::string& key);
  void RegisterRead(sim::NodeId from, uint64_t seq, const std::string& key);
  void MaybeServeReads();
  /// Fails every pending/gated read with a redirect (leadership lost).
  void FailPendingReads();
  /// Re-derives config_ from the snapshot config + latest log entry;
  /// called after any log mutation (append, truncate, snapshot install).
  void RecomputeConfig();
  int Majority() const { return static_cast<int>(config_.size()) / 2 + 1; }
  bool IsVoter(sim::NodeId node) const;
  void SendAppendEntries(sim::NodeId peer);
  void BroadcastAppendEntries();
  void AdvanceCommitIndex();
  void ApplyCommitted();
  void MaybeTakeSnapshot();
  int64_t LastLogTerm() const;
  /// Global end of the log (== number of entries ever appended).
  uint64_t LogEnd() const { return log_start_ + log_.size(); }
  /// Term of the 1-based global entry index (0 -> 0; the snapshot
  /// boundary -> the snapshot's term).
  int64_t TermOfEntry(uint64_t index) const;
  /// Entry at a 1-based global index (must be > log_start_).
  const LogEntry& EntryAt(uint64_t index) const {
    return log_[index - 1 - log_start_];
  }
  std::vector<sim::NodeId> Peers() const;

  RaftOptions options_;

  // Persistent state (survives crash/restart).
  int64_t current_term_ = 0;
  sim::NodeId voted_for_ = sim::kInvalidNode;
  std::vector<LogEntry> log_;  ///< Suffix after log_start_ global entries.
  uint64_t log_start_ = 0;     ///< Global entries folded into the snapshot.
  int64_t snapshot_term_ = 0;  ///< Term of the last compacted entry.
  std::vector<sim::NodeId> config_;           ///< Effective configuration.
  std::vector<sim::NodeId> snapshot_config_;  ///< Config at log_start_.
  bool heard_from_leader_ = false;  ///< For join_passive servers.

  // Volatile state.
  Role role_ = Role::kFollower;
  sim::NodeId leader_hint_ = sim::kInvalidNode;
  uint64_t commit_index_ = 0;  ///< Count of committed entries.
  uint64_t last_applied_ = 0;
  std::set<sim::NodeId> votes_;

  // Leader volatile state.
  std::map<sim::NodeId, uint64_t> next_index_;
  std::map<sim::NodeId, uint64_t> match_index_;
  /// (client, client_seq) -> client node awaiting a reply.
  std::map<std::pair<int32_t, uint64_t>, sim::NodeId> awaiting_client_;
  /// Client commands accepted into the batch queue or the unapplied log
  /// suffix; a retried request already here just re-registers its reply
  /// address instead of appending again. Erased on apply, so the set is
  /// bounded by the in-flight pipeline.
  std::set<std::pair<int32_t, uint64_t>> proposed_;
  /// Client commands waiting for the next batch cut.
  std::deque<smr::Command> batch_queue_;

  /// One registered read-index read awaiting leadership confirmation.
  struct PendingRead {
    uint64_t read_index = 0;  ///< commit_index at registration.
    uint64_t round = 0;       ///< AppendEntries round whose acks count.
    sim::NodeId client_node = sim::kInvalidNode;
    uint64_t client_seq = 0;
    std::string key;
    std::set<sim::NodeId> acks;
    bool confirmed = false;
  };
  /// A read received before the term-start barrier committed.
  struct WaitingRead {
    sim::NodeId client_node = sim::kInvalidNode;
    uint64_t client_seq = 0;
    std::string key;
  };
  std::vector<PendingRead> pending_reads_;
  std::vector<WaitingRead> waiting_reads_;
  /// Monotone AppendEntries round counter; bumped per broadcast and
  /// echoed in replies so a read can demand post-registration acks.
  uint64_t ae_round_ = 0;

  smr::KvStore kv_;
  smr::DedupingExecutor dedup_;
  std::vector<smr::Command> executed_commands_;

  uint64_t election_timer_ = 0;
  uint64_t heartbeat_timer_ = 0;
  uint64_t batch_timer_ = 0;
  int elections_started_ = 0;
  int batches_cut_ = 0;
  int snapshots_taken_ = 0;
  int snapshots_installed_ = 0;
  int reads_served_ = 0;
  std::vector<std::string> violations_;
};

/// Closed-loop Raft client, mirroring MultiPaxosClient.
class RaftClient : public sim::Process {
 public:
  RaftClient(int n, int ops, std::string key = "x",
             sim::Duration retry = 300 * sim::kMillisecond);

  int completed() const { return completed_; }
  bool done() const { return completed_ >= ops_; }
  const std::vector<std::string>& results() const { return results_; }

  void OnStart() override;
  void OnMessage(sim::NodeId from, const sim::Message& msg) override;

 private:
  void SendCurrent();

  int n_;
  int ops_;
  std::string key_;
  sim::Duration retry_;
  int completed_ = 0;
  uint64_t seq_ = 0;
  sim::NodeId target_ = 0;
  uint64_t retry_timer_ = 0;
  std::vector<std::string> results_;
};

}  // namespace consensus40::raft

#endif  // CONSENSUS40_RAFT_RAFT_H_
