#ifndef CONSENSUS40_HOTSTUFF_HOTSTUFF_H_
#define CONSENSUS40_HOTSTUFF_HOTSTUFF_H_

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "crypto/sha256.h"
#include "crypto/signatures.h"
#include "sim/simulation.h"
#include "smr/command.h"
#include "smr/state_machine.h"

namespace consensus40::hotstuff {

/// A quorum certificate: 2f+1 vote shares over one block, modelled as a
/// combined threshold signature (O(1) bytes on the wire).
struct QuorumCert {
  crypto::Digest block_hash{};
  uint64_t view = 0;
  crypto::AggregateCertificate cert;

  /// Genesis QC (view 0, zero hash) verifies trivially.
  bool Verify(const crypto::KeyRegistry& registry, int quorum) const;
};

/// A block in the HotStuff chain. height == the view that proposed it.
struct Block {
  uint64_t height = 0;
  crypto::Digest parent{};
  std::vector<smr::Command> cmds;
  std::vector<crypto::Signature> cmd_sigs;
  QuorumCert justify;

  crypto::Digest Hash() const;
  int ByteSize() const;
};

/// Configuration shared by all replicas of a HotStuff cluster.
struct HotStuffOptions {
  /// Cluster size; must be 3f+1. Leader of view v is v % n — the deck's
  /// "leader rotation: a leader is rotated after a single attempt".
  int n = 4;
  const crypto::KeyRegistry* registry = nullptr;

  /// Pacemaker timeout: view change is part of normal operation.
  sim::Duration view_timeout = 300 * sim::kMillisecond;

  /// Max commands batched into one block.
  int batch_size = 8;
};

/// A chained HotStuff replica (Yin et al. 2019): one generic phase per
/// view; each phase of the 4-phase basic protocol is carried by a
/// different block of the pipeline (the deck's pipeline figure). Linear
/// message complexity: leader -> all proposals, all -> next-leader votes,
/// vote aggregation via threshold certificates.
class HotStuffReplica : public sim::Process {
 public:
  explicit HotStuffReplica(HotStuffOptions options);

  struct RequestMsg : sim::Message {
    RequestMsg(smr::Command c, crypto::Signature s)
        : cmd(std::move(c)), client_sig(s) {}
    const char* TypeName() const override { return "hs-request"; }
    int ByteSize() const override { return 48 + cmd.ByteSize(); }
    smr::Command cmd;
    crypto::Signature client_sig;
  };
  struct ReplyMsg : sim::Message {
    const char* TypeName() const override { return "hs-reply"; }
    int ByteSize() const override {
      return 24 + static_cast<int>(result.size());
    }
    uint64_t client_seq = 0;
    int32_t replica = -1;
    std::string result;
  };
  struct ProposalMsg : sim::Message {
    const char* TypeName() const override { return "hs-proposal"; }
    int ByteSize() const override { return block.ByteSize(); }
    Block block;
  };
  struct VoteMsg : sim::Message {
    const char* TypeName() const override { return "hs-vote"; }
    int ByteSize() const override { return 88; }
    crypto::Digest block_hash{};
    uint64_t view = 0;
    crypto::Signature share;
  };
  struct NewViewMsg : sim::Message {
    const char* TypeName() const override { return "hs-new-view"; }
    int ByteSize() const override {
      return 24 + crypto::AggregateCertificate::kCombinedByteSize;
    }
    uint64_t view = 0;  ///< The view the sender is entering.
    QuorumCert high_qc;
  };

  uint64_t current_view() const { return cur_view_; }
  sim::NodeId LeaderOf(uint64_t view) const { return view % options_.n; }
  uint64_t last_committed_height() const { return last_committed_height_; }
  const smr::KvStore& kv() const { return kv_; }
  const std::vector<smr::Command>& executed_commands() const {
    return executed_commands_;
  }
  const std::vector<std::string>& violations() const { return violations_; }
  int blocks_proposed() const { return blocks_proposed_; }

  void OnStart() override;
  void OnMessage(sim::NodeId from, const sim::Message& msg) override;

 private:
  bool SafeNode(const Block& block) const;
  void TryPropose();
  void ProcessBlock(const Block& block);
  void CommitChainUpTo(const crypto::Digest& hash);
  /// True iff `hash` is the committed head or one of its ancestors.
  /// `height` bounds the walk: blocks strictly descend in height, so once
  /// the cursor is at or below `hash`'s height without matching, it never
  /// will.
  bool IsCommittedAncestor(const crypto::Digest& hash, uint64_t height) const;
  void AdvanceView(uint64_t view);
  void ResetViewTimer();
  const Block* GetBlock(const crypto::Digest& hash) const;
  std::vector<sim::NodeId> Everyone() const;

  HotStuffOptions options_;
  int f_;
  int quorum_;

  uint64_t cur_view_ = 1;
  uint64_t last_voted_height_ = 0;
  QuorumCert high_qc_;    ///< Highest known QC (one-chain head).
  QuorumCert locked_qc_;  ///< Two-chain head: the lock.
  std::map<crypto::Digest, Block> blocks_;
  crypto::Digest last_committed_hash_{};  ///< Genesis initially.
  uint64_t last_committed_height_ = 0;

  /// Leader-side vote collection: (view, block hash) -> shares.
  std::map<std::pair<uint64_t, crypto::Digest>,
           std::map<sim::NodeId, crypto::Signature>>
      votes_;
  /// New-view collection per view.
  std::map<uint64_t, std::map<sim::NodeId, QuorumCert>> new_views_;
  std::set<uint64_t> proposed_views_;

  std::deque<std::pair<smr::Command, crypto::Signature>> pending_;
  std::set<std::pair<int32_t, uint64_t>> pending_keys_;
  smr::KvStore kv_;
  smr::DedupingExecutor dedup_;
  std::vector<smr::Command> executed_commands_;
  std::map<std::pair<int32_t, uint64_t>, std::string> results_;

  uint64_t view_timer_ = 0;
  int blocks_proposed_ = 0;
  std::vector<std::string> violations_;
};

/// HotStuff client: broadcasts requests (the leader rotates constantly),
/// accepts f+1 matching replies.
class HotStuffClient : public sim::Process {
 public:
  HotStuffClient(int n, const crypto::KeyRegistry* registry, int ops,
                 std::string key = "x",
                 sim::Duration retry = 800 * sim::kMillisecond);

  int completed() const { return completed_; }
  bool done() const { return completed_ >= ops_; }
  const std::vector<std::string>& results() const { return results_; }

  void OnStart() override;
  void OnMessage(sim::NodeId from, const sim::Message& msg) override;

 private:
  void SendCurrent();

  int n_;
  const crypto::KeyRegistry* registry_;
  int f_;
  int ops_;
  std::string key_;
  sim::Duration retry_;
  int completed_ = 0;
  uint64_t seq_ = 0;
  uint64_t retry_timer_ = 0;
  std::map<std::string, std::set<sim::NodeId>> reply_votes_;
  std::vector<std::string> results_;
};

}  // namespace consensus40::hotstuff

#endif  // CONSENSUS40_HOTSTUFF_HOTSTUFF_H_
