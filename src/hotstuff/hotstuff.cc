#include "hotstuff/hotstuff.h"

#include <algorithm>
#include <cassert>

#include "pbft/pbft.h"

namespace consensus40::hotstuff {

namespace {

bool ValidRequest(const smr::Command& cmd, const crypto::Signature& sig,
                  const crypto::KeyRegistry& registry) {
  return pbft::PbftReplica::ValidRequest(cmd, sig, registry);
}

}  // namespace

bool QuorumCert::Verify(const crypto::KeyRegistry& registry,
                        int quorum) const {
  if (view == 0 && block_hash == crypto::Digest{}) return true;  // Genesis.
  if (cert.value != block_hash) return false;
  return cert.Verify(registry, quorum);
}

crypto::Digest Block::Hash() const {
  crypto::Sha256 h;
  h.Update(&height, sizeof(height));
  h.Update(parent.data(), parent.size());
  for (const smr::Command& cmd : cmds) {
    crypto::Digest d = cmd.Hash();
    h.Update(d.data(), d.size());
  }
  h.Update(justify.block_hash.data(), justify.block_hash.size());
  h.Update(&justify.view, sizeof(justify.view));
  return h.Finish();
}

int Block::ByteSize() const {
  int size = 80 + crypto::AggregateCertificate::kCombinedByteSize;
  for (const smr::Command& cmd : cmds) size += 40 + cmd.ByteSize();
  return size;
}

HotStuffReplica::HotStuffReplica(HotStuffOptions options) : options_(options) {
  assert(options_.n >= 4 && (options_.n - 1) % 3 == 0);
  assert(options_.registry != nullptr);
  f_ = (options_.n - 1) / 3;
  quorum_ = 2 * f_ + 1;
  // Genesis block at height 0 with zero hash.
  Block genesis;
  genesis.height = 0;
  blocks_[crypto::Digest{}] = genesis;
  // Note: genesis.Hash() != Digest{}, but the chain refers to genesis by
  // the zero digest by convention.
}

std::vector<sim::NodeId> HotStuffReplica::Everyone() const {
  std::vector<sim::NodeId> all;
  for (int i = 0; i < options_.n; ++i) all.push_back(i);
  return all;
}

const Block* HotStuffReplica::GetBlock(const crypto::Digest& hash) const {
  auto it = blocks_.find(hash);
  return it == blocks_.end() ? nullptr : &it->second;
}

void HotStuffReplica::OnStart() {
  // Pacemaker bootstrap: everyone reports its (genesis) high QC to the
  // leader of view 1.
  auto nv = std::make_shared<NewViewMsg>();
  nv->view = cur_view_;
  nv->high_qc = high_qc_;
  Send(LeaderOf(cur_view_), nv);
  ResetViewTimer();
}

void HotStuffReplica::ResetViewTimer() {
  CancelTimer(view_timer_);
  sim::Duration t =
      options_.view_timeout +
      static_cast<sim::Duration>(rng().NextBounded(options_.view_timeout / 2));
  view_timer_ = SetTimer(t, [this] {
    // Pacemaker: give up on this view.
    AdvanceView(cur_view_ + 1);
    auto nv = std::make_shared<NewViewMsg>();
    nv->view = cur_view_;
    nv->high_qc = high_qc_;
    Send(LeaderOf(cur_view_), nv);
    ResetViewTimer();
  });
}

void HotStuffReplica::AdvanceView(uint64_t view) {
  if (view <= cur_view_) return;
  cur_view_ = view;
  ResetViewTimer();
  if (LeaderOf(cur_view_) == id()) TryPropose();
}

bool HotStuffReplica::SafeNode(const Block& block) const {
  // Liveness rule: the justify is newer than our lock.
  if (block.justify.view > locked_qc_.view) return true;
  // Safety rule: the block extends the locked block.
  const Block* b = GetBlock(block.parent);
  while (b != nullptr) {
    crypto::Digest h = b->height == 0 ? crypto::Digest{} : b->Hash();
    if (h == locked_qc_.block_hash) return true;
    if (b->height == 0) break;
    b = GetBlock(b->parent);
  }
  return false;
}

void HotStuffReplica::TryPropose() {
  if (LeaderOf(cur_view_) != id()) return;
  if (proposed_views_.count(cur_view_) > 0) return;
  // Propose when there is work: fresh commands, or an uncommitted
  // command-bearing block that still needs descendants to complete its
  // three-chain (empty filler blocks drive such commits; once only empty
  // blocks trail, the pipeline is drained and we go quiet).
  bool chain_unflushed = false;
  crypto::Digest cursor = high_qc_.block_hash;
  while (cursor != last_committed_hash_) {
    const Block* b = GetBlock(cursor);
    if (b == nullptr || b->height <= last_committed_height_) break;
    if (!b->cmds.empty()) {
      chain_unflushed = true;
      break;
    }
    cursor = b->parent;
  }
  if (pending_.empty() && !chain_unflushed) return;

  proposed_views_.insert(cur_view_);
  ++blocks_proposed_;
  Block block;
  block.height = cur_view_;
  block.parent = high_qc_.block_hash;
  block.justify = high_qc_;
  int batched = 0;
  while (!pending_.empty() && batched < options_.batch_size) {
    auto [cmd, sig] = pending_.front();
    pending_.pop_front();
    pending_keys_.erase({cmd.client, cmd.client_seq});
    if (results_.count({cmd.client, cmd.client_seq}) > 0) continue;
    block.cmds.push_back(std::move(cmd));
    block.cmd_sigs.push_back(sig);
    ++batched;
  }
  auto proposal = std::make_shared<ProposalMsg>();
  proposal->block = std::move(block);
  Multicast(Everyone(), proposal);
}

bool HotStuffReplica::IsCommittedAncestor(const crypto::Digest& hash,
                                          uint64_t height) const {
  crypto::Digest cursor = last_committed_hash_;
  while (true) {
    if (cursor == hash) return true;
    const Block* b = GetBlock(cursor);
    if (b == nullptr || b->height <= height) return false;
    cursor = b->parent;
  }
}

void HotStuffReplica::CommitChainUpTo(const crypto::Digest& hash) {
  // Collect the uncommitted chain ending at `hash`, then execute in order.
  std::vector<const Block*> chain;
  crypto::Digest cursor = hash;
  while (cursor != last_committed_hash_) {
    const Block* b = GetBlock(cursor);
    if (b == nullptr) return;  // Missing ancestry; cannot commit yet.
    if (b->height <= last_committed_height_) {
      // Dropping at-or-below the committed height without having passed
      // through the committed head. If the commit TARGET itself is an
      // already-committed ancestor, this is just a stale decision — QCs
      // arrive out of order under delay spikes and withhold windows — and
      // there is nothing to do. Anything else (a chain that bypasses the
      // head and merges below it) is a real fork of committed state.
      if (chain.empty() && IsCommittedAncestor(cursor, b->height)) return;
      violations_.push_back("commit of block at height " +
                            std::to_string(b->height) +
                            " below committed height " +
                            std::to_string(last_committed_height_));
      return;
    }
    chain.push_back(b);
    cursor = b->parent;
  }
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    const Block& b = **it;
    for (const smr::Command& cmd : b.cmds) {
      auto key = std::make_pair(cmd.client, cmd.client_seq);
      std::string result;
      if (results_.count(key) > 0) {
        result = results_[key];
      } else {
        result = dedup_.Apply(&kv_, cmd);
        results_[key] = result;
        executed_commands_.push_back(cmd);
      }
      auto reply = std::make_shared<ReplyMsg>();
      reply->client_seq = cmd.client_seq;
      reply->replica = id();
      reply->result = result;
      Send(cmd.client, reply);
    }
    last_committed_hash_ = b.Hash();
    last_committed_height_ = b.height;
  }
}

void HotStuffReplica::ProcessBlock(const Block& block) {
  // One-chain: update high QC.
  if (block.justify.view > high_qc_.view) {
    high_qc_ = block.justify;
    if (LeaderOf(cur_view_) == id()) TryPropose();
  }
  // Two-chain: update the lock. b1 = justify target of block's parent QC.
  const Block* b2 = GetBlock(block.justify.block_hash);
  if (b2 == nullptr) return;
  if (b2->justify.view > locked_qc_.view) locked_qc_ = b2->justify;
  // Three-chain: commit. b2 <- b1 <- b0 via justify links with direct
  // parent edges.
  const Block* b1 = GetBlock(b2->justify.block_hash);
  if (b1 == nullptr) return;
  const Block* b0 = GetBlock(b1->justify.block_hash);
  if (b0 == nullptr) return;
  bool direct2 = b2->parent == b2->justify.block_hash;
  bool direct1 = b1->parent == b1->justify.block_hash;
  if (direct2 && direct1 && b0->height > 0) {
    CommitChainUpTo(b1->justify.block_hash);
  }
}

void HotStuffReplica::OnMessage(sim::NodeId from, const sim::Message& msg) {
  if (const auto* m = dynamic_cast<const RequestMsg*>(&msg)) {
    if (!ValidRequest(m->cmd, m->client_sig, *options_.registry)) return;
    auto key = std::make_pair(m->cmd.client, m->cmd.client_seq);
    auto done = results_.find(key);
    if (done != results_.end()) {
      auto reply = std::make_shared<ReplyMsg>();
      reply->client_seq = m->cmd.client_seq;
      reply->replica = id();
      reply->result = done->second;
      Send(m->cmd.client, reply);
      return;
    }
    if (pending_keys_.insert(key).second) {
      pending_.push_back({m->cmd, m->client_sig});
    }
    if (LeaderOf(cur_view_) == id()) TryPropose();
    return;
  }

  if (const auto* m = dynamic_cast<const ProposalMsg*>(&msg)) {
    const Block& block = m->block;
    if (from != LeaderOf(block.height)) return;
    if (!block.justify.Verify(*options_.registry, quorum_)) return;
    for (size_t i = 0; i < block.cmds.size(); ++i) {
      if (!ValidRequest(block.cmds[i],
                        i < block.cmd_sigs.size() ? block.cmd_sigs[i]
                                                  : crypto::Signature{},
                        *options_.registry)) {
        return;
      }
    }
    crypto::Digest hash = block.Hash();
    blocks_[hash] = block;
    if (block.height > cur_view_) AdvanceView(block.height);
    ResetViewTimer();  // The view made progress.

    ProcessBlock(block);

    if (block.height >= cur_view_ && block.height > last_voted_height_ &&
        SafeNode(block)) {
      last_voted_height_ = block.height;
      auto vote = std::make_shared<VoteMsg>();
      vote->block_hash = hash;
      vote->view = block.height;
      vote->share = options_.registry->Sign(id(), hash);
      Send(LeaderOf(block.height + 1), vote);
    }
    return;
  }

  if (const auto* m = dynamic_cast<const VoteMsg*>(&msg)) {
    if (LeaderOf(m->view + 1) != id()) return;
    if (m->share.signer != from ||
        !options_.registry->Verify(m->share, m->block_hash)) {
      return;
    }
    auto& shares = votes_[{m->view, m->block_hash}];
    shares[from] = m->share;
    if (static_cast<int>(shares.size()) == quorum_) {
      QuorumCert qc;
      qc.block_hash = m->block_hash;
      qc.view = m->view;
      qc.cert.value = m->block_hash;
      for (const auto& [replica, share] : shares) {
        qc.cert.shares.push_back(share);
      }
      if (qc.view >= high_qc_.view) high_qc_ = qc;
      AdvanceView(m->view + 1);
      TryPropose();
    }
    return;
  }

  if (const auto* m = dynamic_cast<const NewViewMsg*>(&msg)) {
    if (LeaderOf(m->view) != id()) return;
    if (!m->high_qc.Verify(*options_.registry, quorum_)) return;
    if (m->high_qc.view > high_qc_.view) high_qc_ = m->high_qc;
    new_views_[m->view][from] = m->high_qc;
    if (static_cast<int>(new_views_[m->view].size()) >= quorum_ &&
        m->view >= cur_view_) {
      AdvanceView(m->view);
      TryPropose();
    }
    return;
  }
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

HotStuffClient::HotStuffClient(int n, const crypto::KeyRegistry* registry,
                               int ops, std::string key, sim::Duration retry)
    : n_(n),
      registry_(registry),
      f_((n - 1) / 3),
      ops_(ops),
      key_(std::move(key)),
      retry_(retry) {}

void HotStuffClient::OnStart() {
  seq_ = 1;
  SendCurrent();
}

void HotStuffClient::SendCurrent() {
  if (done()) return;
  smr::Command cmd{id(), seq_, "INC " + key_};
  crypto::Signature sig = registry_->Sign(id(), cmd.Hash());
  for (int i = 0; i < n_; ++i) {
    Send(i, std::make_shared<HotStuffReplica::RequestMsg>(cmd, sig));
  }
  CancelTimer(retry_timer_);
  retry_timer_ = SetTimer(retry_, [this] { SendCurrent(); });
}

void HotStuffClient::OnMessage(sim::NodeId from, const sim::Message& msg) {
  const auto* m = dynamic_cast<const HotStuffReplica::ReplyMsg*>(&msg);
  if (m == nullptr || m->client_seq != seq_ || done()) return;
  reply_votes_[m->result].insert(from);
  if (static_cast<int>(reply_votes_[m->result].size()) >= f_ + 1) {
    results_.push_back(m->result);
    reply_votes_.clear();
    ++completed_;
    ++seq_;
    if (done()) {
      CancelTimer(retry_timer_);
    } else {
      SendCurrent();
    }
  }
}

}  // namespace consensus40::hotstuff
