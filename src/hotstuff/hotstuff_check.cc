/// Checker adapter for HotStuff: n=3f+1=4 with rotating leaders. Crash-stop
/// faults plus delay spikes (the pacemaker absorbs asynchrony bursts by
/// rotating views).

#include <memory>
#include <string>

#include "check/adapters.h"
#include "crypto/signatures.h"
#include "hotstuff/hotstuff.h"

namespace consensus40::check {
namespace {

class HotStuffCheckAdapter : public ProtocolAdapter {
 public:
  explicit HotStuffCheckAdapter(uint64_t seed) : registry_(seed, kN + 4) {}

  const char* name() const override { return "hotstuff"; }

  FaultBounds bounds() const override {
    FaultBounds b;
    b.nodes = kN;
    b.max_crashed = (kN - 1) / 3;
    return b;
  }

  void Build(sim::Simulation* sim) override {
    hotstuff::HotStuffOptions opts;
    opts.n = kN;
    opts.registry = &registry_;
    for (int i = 0; i < kN; ++i) {
      replicas_.push_back(sim->Spawn<hotstuff::HotStuffReplica>(opts));
    }
    client_ = sim->Spawn<hotstuff::HotStuffClient>(kN, &registry_, kOps);
  }

  bool Done() const override { return client_->done(); }

  Observation Observe() const override {
    Observation o;
    for (const hotstuff::HotStuffReplica* r : replicas_) {
      std::vector<std::string> log;
      for (const smr::Command& cmd : r->executed_commands()) {
        log.push_back(cmd.ToString());
      }
      o.logs.push_back(std::move(log));
      for (const std::string& v : r->violations()) {
        o.self_reported.push_back("hotstuff replica " +
                                  std::to_string(r->id()) + ": " + v);
      }
    }
    return o;
  }

 private:
  static constexpr int kN = 4;
  static constexpr int kOps = 4;
  crypto::KeyRegistry registry_;
  std::vector<hotstuff::HotStuffReplica*> replicas_;
  hotstuff::HotStuffClient* client_ = nullptr;
};

}  // namespace

AdapterFactory MakeHotStuffAdapter() {
  return [](uint64_t seed) {
    return std::make_unique<HotStuffCheckAdapter>(seed);
  };
}

}  // namespace consensus40::check
