/// Checker adapter for HotStuff: n=3f+1=4 with rotating leaders. Crash-stop
/// faults plus delay spikes (the pacemaker absorbs asynchrony bursts by
/// rotating views).

#include <memory>
#include <string>

#include "check/adapters.h"
#include "crypto/signatures.h"
#include "hotstuff/hotstuff.h"
#include "sim/byzantine.h"

namespace consensus40::check {
namespace {

class HotStuffCheckAdapter : public ProtocolAdapter {
 public:
  explicit HotStuffCheckAdapter(uint64_t seed, int ops = 4)
      : registry_(seed, kN + 4), ops_(ops) {}

  const char* name() const override { return "hotstuff"; }

  FaultBounds bounds() const override {
    FaultBounds b;
    b.nodes = kN;
    b.max_crashed = (kN - 1) / 3;
    return b;
  }

  void Build(sim::Simulation* sim) override {
    hotstuff::HotStuffOptions opts;
    opts.n = kN;
    opts.registry = &registry_;
    for (int i = 0; i < kN; ++i) {
      replicas_.push_back(sim->Spawn<hotstuff::HotStuffReplica>(opts));
    }
    client_ = sim->Spawn<hotstuff::HotStuffClient>(kN, &registry_, ops_);
  }

  bool Done() const override { return client_->done(); }

  Observation Observe() const override {
    Observation o;
    for (const hotstuff::HotStuffReplica* r : replicas_) {
      std::vector<std::string> log;
      for (const smr::Command& cmd : r->executed_commands()) {
        log.push_back(cmd.ToString());
      }
      o.logs.push_back(std::move(log));
      for (const std::string& v : r->violations()) {
        o.self_reported.push_back("hotstuff replica " +
                                  std::to_string(r->id()) + ": " + v);
      }
    }
    return o;
  }

 protected:
  static constexpr int kN = 4;
  crypto::KeyRegistry registry_;
  int ops_;
  std::vector<hotstuff::HotStuffReplica*> replicas_;
  hotstuff::HotStuffClient* client_ = nullptr;
};

/// In-bounds Byzantine HotStuff: any one of the four replicas may
/// withhold, corrupt (generic degradation: dropped), or replay outbound
/// traffic. A silent or lying leader is absorbed by the pacemaker — views
/// rotate past it — and the three-chain commit rule plus the
/// replica-level SafeNode checks (self-reported as violations) must hold
/// for every schedule.
class HotStuffByzantineAdapter : public HotStuffCheckAdapter {
 public:
  explicit HotStuffByzantineAdapter(uint64_t seed)
      : HotStuffCheckAdapter(seed, /*ops=*/12) {}

  const char* name() const override { return "hotstuff_byz"; }

  FaultBounds bounds() const override {
    FaultBounds b = HotStuffCheckAdapter::bounds();
    b.max_byzantine = 1;
    b.byz_first_node = 0;
    b.byz_nodes = kN;
    b.byz_withhold = true;
    b.byz_mutate = true;
    b.byz_replay = true;
    return b;
  }

  void Build(sim::Simulation* sim) override {
    HotStuffCheckAdapter::Build(sim);
    byz_.Attach(sim);
  }

 private:
  sim::ByzantineInterposer byz_;
};

}  // namespace

AdapterFactory MakeHotStuffAdapter() {
  return [](uint64_t seed) {
    return std::make_unique<HotStuffCheckAdapter>(seed);
  };
}

AdapterFactory MakeHotStuffByzantineAdapter() {
  return [](uint64_t seed) {
    return std::make_unique<HotStuffByzantineAdapter>(seed);
  };
}

}  // namespace consensus40::check
