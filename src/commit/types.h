#ifndef CONSENSUS40_COMMIT_TYPES_H_
#define CONSENSUS40_COMMIT_TYPES_H_

#include <cstdint>
#include <string>
#include <vector>

namespace consensus40::commit {

/// One participant's share of a distributed transaction: the operation it
/// must apply if the transaction commits. An op equal to "FAIL" makes the
/// participant vote No (models a local integrity violation).
struct TxOp {
  int32_t participant = -1;
  std::string op;  ///< KvStore operation, e.g. "PUT x 1".
};

/// A distributed transaction spanning multiple participants. 2PC/3PC decide
/// commit-or-abort atomically across all of them.
struct Transaction {
  uint64_t tx_id = 0;
  std::vector<TxOp> ops;

  std::vector<int32_t> Participants() const {
    std::vector<int32_t> out;
    for (const TxOp& op : ops) {
      bool seen = false;
      for (int32_t p : out) seen |= (p == op.participant);
      if (!seen) out.push_back(op.participant);
    }
    return out;
  }
};

/// Participant-visible transaction outcome / progress states.
enum class TxState {
  kUnknown,      ///< Never heard of the transaction.
  kPrepared,     ///< Voted Yes; in the uncertainty window (2PC blocking zone).
  kPreCommitted, ///< 3PC only: decision is commit, not yet applied.
  kCommitted,
  kAborted,
};

const char* ToString(TxState s);

}  // namespace consensus40::commit

#endif  // CONSENSUS40_COMMIT_TYPES_H_
