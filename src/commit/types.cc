#include "commit/types.h"

namespace consensus40::commit {

const char* ToString(TxState s) {
  switch (s) {
    case TxState::kUnknown:
      return "unknown";
    case TxState::kPrepared:
      return "prepared";
    case TxState::kPreCommitted:
      return "pre-committed";
    case TxState::kCommitted:
      return "committed";
    case TxState::kAborted:
      return "aborted";
  }
  return "?";
}

}  // namespace consensus40::commit
