/// Checker adapters for atomic commitment: 2PC (blocking — safety under
/// any faults, no liveness claim) and 3PC with the FT termination protocol
/// (non-blocking, but only under its stated model: crash-stop faults, no
/// partitions, bounded delays).

#include <memory>
#include <string>
#include <vector>

#include "check/adapters.h"
#include "commit/three_phase_commit.h"
#include "commit/two_phase_commit.h"
#include "commit/types.h"

namespace consensus40::check {
namespace {

char VerdictChar(commit::TxState s) {
  switch (s) {
    case commit::TxState::kCommitted:
      return 'C';
    case commit::TxState::kAborted:
      return 'A';
    case commit::TxState::kPrepared:
    case commit::TxState::kPreCommitted:
      return 'P';
    case commit::TxState::kUnknown:
      break;
  }
  return 'U';
}

/// Three transactions: an all-yes commit, a forced abort (one "FAIL" op),
/// and a two-participant commit, staggered across the fault window so
/// crashes land in every phase.
struct TxWorkload {
  static std::vector<commit::Transaction> Transactions() {
    commit::Transaction tx1;
    tx1.tx_id = 1;
    tx1.ops = {{0, "PUT a 1"}, {1, "PUT b 1"}, {2, "PUT c 1"}};
    commit::Transaction tx2;
    tx2.tx_id = 2;
    tx2.ops = {{0, "PUT a 2"}, {1, "FAIL"}, {2, "PUT c 2"}};
    commit::Transaction tx3;
    tx3.tx_id = 3;
    tx3.ops = {{0, "PUT a 3"}, {2, "PUT c 3"}};
    return {tx1, tx2, tx3};
  }
  static constexpr sim::Time kBeginAt[3] = {20 * sim::kMillisecond,
                                            120 * sim::kMillisecond,
                                            400 * sim::kMillisecond};
};

class TwoPhaseCommitCheckAdapter : public ProtocolAdapter {
 public:
  const char* name() const override { return "2pc"; }

  FaultBounds bounds() const override {
    FaultBounds b;
    b.nodes = kParticipants + 1;  // Coordinator included.
    b.max_crashed = 2;
    b.restartable = true;  // Tx tables model stable storage.
    b.partitionable = true;
    return b;
  }

  void Build(sim::Simulation* sim) override {
    sim_ = sim;
    for (int i = 0; i < kParticipants; ++i) {
      participants_.push_back(sim->Spawn<commit::TwoPcParticipant>());
    }
    coordinator_ = sim->Spawn<commit::TwoPcCoordinator>();
    const auto txs = TxWorkload::Transactions();
    for (size_t i = 0; i < txs.size(); ++i) {
      const commit::Transaction tx = txs[i];
      sim->ScheduleAt(TxWorkload::kBeginAt[i], [this, tx] {
        if (sim_->IsCrashed(coordinator_->id())) return;
        coordinator_->Begin(tx);
        begun_.push_back(tx.tx_id);
      });
    }
  }

  bool Done() const override {
    for (uint64_t tx : begun_) {
      if (!coordinator_->Finished(tx)) return false;
    }
    return begun_.size() == 3;
  }

  /// 2PC blocks by design when the coordinator dies in the decision
  /// window; safety is the whole claim.
  bool ExpectTermination() const override { return false; }

  Observation Observe() const override {
    Observation o;
    for (uint64_t tx : begun_) {
      for (const commit::TwoPcParticipant* p : participants_) {
        o.verdicts[tx][p->id()] = VerdictChar(p->state(tx));
      }
      if (coordinator_->outcome(tx).has_value()) {
        o.verdicts[tx][coordinator_->id()] =
            *coordinator_->outcome(tx) ? 'C' : 'A';
      }
    }
    return o;
  }

 protected:
  static constexpr int kParticipants = 3;
  sim::Simulation* sim_ = nullptr;
  std::vector<commit::TwoPcParticipant*> participants_;
  commit::TwoPcCoordinator* coordinator_ = nullptr;
  std::vector<uint64_t> begun_;
};

/// Out-of-bounds variant: the generator may ONLY crash the coordinator,
/// inside the prepare/commit decision window, and never restarts it. The
/// adapter (deliberately, wrongly) claims termination, so every schedule
/// that fires the crash exposes plain 2PC's blocking as a liveness
/// violation — the contrast case for the shard layer's replicated
/// decision record, which terminates under the same fault.
class TwoPhaseCommitBlockingAdapter : public TwoPhaseCommitCheckAdapter {
 public:
  const char* name() const override { return "2pc-blocking"; }

  FaultBounds bounds() const override {
    FaultBounds b;
    b.nodes = kParticipants;  // Participants stay up: the coordinator is
    b.max_crashed = 0;        // the only thing allowed to fail.
    b.delay_spikes = false;
    // Participants spawn first, so the coordinator is node kParticipants.
    b.coordinator = kParticipants;
    // tx1 begins at 20ms; its votes are in flight by ~25ms and the
    // decision lands by ~35ms. Crashing in [24ms, 34ms) reliably hits
    // the in-doubt window where participants are prepared.
    b.coordinator_window_lo = 24 * sim::kMillisecond;
    b.coordinator_window_hi = 34 * sim::kMillisecond;
    b.coordinator_restartable = false;
    return b;
  }

  bool ExpectTermination() const override { return true; }
};

class ThreePhaseCommitCheckAdapter : public ProtocolAdapter {
 public:
  const char* name() const override { return "3pc"; }

  FaultBounds bounds() const override {
    // 3PC's stated model: synchronous network, crash-stop faults. The
    // out-of-bounds behaviours (partitions, unbounded delay) are exactly
    // what makes 3PC famous for being unsafe in practice, and exactly
    // what the generator must not inject here.
    FaultBounds b;
    b.nodes = kParticipants + 1;
    b.max_crashed = 1;
    b.delay_spikes = false;
    return b;
  }

  void Build(sim::Simulation* sim) override {
    sim_ = sim;
    for (int i = 0; i < kParticipants; ++i) {
      participants_.push_back(sim->Spawn<commit::ThreePcParticipant>());
    }
    coordinator_ = sim->Spawn<commit::ThreePcCoordinator>();
    const auto txs = TxWorkload::Transactions();
    for (size_t i = 0; i < txs.size(); ++i) {
      const commit::Transaction tx = txs[i];
      sim->ScheduleAt(TxWorkload::kBeginAt[i], [this, tx] {
        if (sim_->IsCrashed(coordinator_->id())) return;
        coordinator_->Begin(tx);
        begun_.push_back(tx.tx_id);
      });
    }
  }

  bool Done() const override {
    // Non-blocking claim: every live participant leaves the uncertainty
    // window for every transaction that was started.
    for (uint64_t tx : begun_) {
      for (const commit::ThreePcParticipant* p : participants_) {
        if (sim_->IsCrashed(p->id())) continue;
        commit::TxState s = p->state(tx);
        if (s == commit::TxState::kPrepared ||
            s == commit::TxState::kPreCommitted) {
          return false;
        }
      }
    }
    return sim_->now() >= TxWorkload::kBeginAt[2];
  }

  Observation Observe() const override {
    Observation o;
    for (uint64_t tx : begun_) {
      // Crashed nodes' verdicts count: a participant that committed and
      // then died still committed.
      for (const commit::ThreePcParticipant* p : participants_) {
        o.verdicts[tx][p->id()] = VerdictChar(p->state(tx));
      }
      if (coordinator_->outcome(tx).has_value()) {
        o.verdicts[tx][coordinator_->id()] =
            *coordinator_->outcome(tx) ? 'C' : 'A';
      }
    }
    return o;
  }

 private:
  static constexpr int kParticipants = 3;
  sim::Simulation* sim_ = nullptr;
  std::vector<commit::ThreePcParticipant*> participants_;
  commit::ThreePcCoordinator* coordinator_ = nullptr;
  std::vector<uint64_t> begun_;
};

}  // namespace

AdapterFactory MakeTwoPhaseCommitAdapter() {
  return [](uint64_t) {
    return std::make_unique<TwoPhaseCommitCheckAdapter>();
  };
}

AdapterFactory MakeTwoPhaseCommitBlockingAdapter() {
  return [](uint64_t) {
    return std::make_unique<TwoPhaseCommitBlockingAdapter>();
  };
}

AdapterFactory MakeThreePhaseCommitAdapter() {
  return [](uint64_t) {
    return std::make_unique<ThreePhaseCommitCheckAdapter>();
  };
}

}  // namespace consensus40::check
