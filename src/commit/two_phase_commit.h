#ifndef CONSENSUS40_COMMIT_TWO_PHASE_COMMIT_H_
#define CONSENSUS40_COMMIT_TWO_PHASE_COMMIT_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "commit/types.h"
#include "sim/simulation.h"
#include "smr/command.h"
#include "smr/state_machine.h"

namespace consensus40::commit {

/// 2PC participant (cohort): votes on prepare, holds the transaction in the
/// *uncertainty window* after voting Yes, and applies/aborts on the
/// coordinator's decision. A participant that voted Yes can NEVER decide
/// unilaterally — that is 2PC's blocking property, observable through
/// state() while the coordinator is crashed.
class TwoPcParticipant : public sim::Process {
 public:
  struct PrepareMsg : sim::Message {
    const char* TypeName() const override { return "2pc-prepare"; }
    int ByteSize() const override { return 24 + static_cast<int>(op.size()); }
    uint64_t tx_id = 0;
    std::string op;
  };
  struct VoteMsg : sim::Message {
    const char* TypeName() const override { return "2pc-vote"; }
    int ByteSize() const override { return 24; }
    uint64_t tx_id = 0;
    bool yes = false;
  };
  struct DecisionMsg : sim::Message {
    const char* TypeName() const override { return "2pc-decision"; }
    int ByteSize() const override { return 24; }
    uint64_t tx_id = 0;
    bool commit = false;
  };
  struct AckMsg : sim::Message {
    const char* TypeName() const override { return "2pc-ack"; }
    int ByteSize() const override { return 16; }
    uint64_t tx_id = 0;
  };

  TxState state(uint64_t tx_id) const;
  const smr::KvStore& kv() const { return kv_; }

  void OnMessage(sim::NodeId from, const sim::Message& msg) override;

 private:
  struct TxInfo {
    TxState state = TxState::kUnknown;
    std::string op;
  };

  std::map<uint64_t, TxInfo> txs_;
  smr::KvStore kv_;
  uint64_t op_seq_ = 0;
};

/// 2PC coordinator: drives prepare -> collect votes -> decide -> ack.
/// Transactions are submitted with Begin(); outcomes are observable via
/// outcome(). Crash the coordinator between vote collection and decision
/// broadcast to reproduce the blocking window.
class TwoPcCoordinator : public sim::Process {
 public:
  struct Options {
    /// Votes not received within this window abort the transaction
    /// (participant failure before voting is the non-blocking direction).
    sim::Duration vote_timeout = 100 * sim::kMillisecond;
  };

  TwoPcCoordinator();
  explicit TwoPcCoordinator(Options options);

  /// Starts 2PC for `tx`. Participant ids are simulation node ids.
  void Begin(const Transaction& tx);

  /// Decision, when reached: true = committed.
  std::optional<bool> outcome(uint64_t tx_id) const;

  /// True once every participant acknowledged the decision.
  bool Finished(uint64_t tx_id) const;

  void OnMessage(sim::NodeId from, const sim::Message& msg) override;

 private:
  struct TxRun {
    Transaction tx;
    std::set<sim::NodeId> yes_votes;
    std::set<sim::NodeId> acks;
    std::optional<bool> decision;
    bool decided_sent = false;
    uint64_t timer = 0;
  };

  void Decide(TxRun& run, bool commit);

  Options options_;
  std::map<uint64_t, TxRun> runs_;
};

}  // namespace consensus40::commit

#endif  // CONSENSUS40_COMMIT_TWO_PHASE_COMMIT_H_
