#include "commit/three_phase_commit.h"

namespace consensus40::commit {

// ---------------------------------------------------------------------------
// Participant
// ---------------------------------------------------------------------------

ThreePcParticipant::ThreePcParticipant()
    : ThreePcParticipant(Options()) {}
ThreePcParticipant::ThreePcParticipant(Options options) : options_(options) {}

TxState ThreePcParticipant::state(uint64_t tx_id) const {
  auto it = txs_.find(tx_id);
  return it == txs_.end() ? TxState::kUnknown : it->second.state;
}

void ThreePcParticipant::Commit(uint64_t tx_id, TxInfo& info) {
  if (info.state == TxState::kCommitted) return;
  info.state = TxState::kCommitted;
  CancelTimer(info.decision_timer);
  kv_.Apply(smr::Command{id(), ++op_seq_, info.op});
  (void)tx_id;
}

void ThreePcParticipant::Abort(TxInfo& info) {
  if (info.state == TxState::kCommitted) return;  // Never undo a commit.
  info.state = TxState::kAborted;
  CancelTimer(info.decision_timer);
}

void ThreePcParticipant::ArmDecisionTimer(uint64_t tx_id) {
  if (!options_.enable_termination) return;
  TxInfo& info = txs_[tx_id];
  CancelTimer(info.decision_timer);
  // Stagger by id so the lowest-id survivor acts first (its timer fires
  // earliest) — a deterministic "elect the lowest alive participant".
  sim::Duration t = options_.decision_timeout +
                    id() * 10 * sim::kMillisecond +
                    static_cast<sim::Duration>(
                        rng().NextBounded(5 * sim::kMillisecond));
  info.decision_timer = SetTimer(t, [this, tx_id] { StartTermination(tx_id); });
}

void ThreePcParticipant::StartTermination(uint64_t tx_id) {
  TxInfo& info = txs_[tx_id];
  if (info.state == TxState::kCommitted || info.state == TxState::kAborted) {
    return;
  }
  // Become the new coordinator and query everyone's state.
  info.leading_termination = true;
  info.peer_states.clear();
  info.peer_states[id()] = info.state;
  ++terminations_led_;
  auto req = std::make_shared<StateReqMsg>();
  req->tx_id = tx_id;
  for (sim::NodeId p : info.participants) {
    if (p != id()) Send(p, req);
  }
  // Evaluate after a response window (crashed peers simply don't answer).
  SetTimer(100 * sim::kMillisecond, [this, tx_id] {
    auto it = txs_.find(tx_id);
    if (it != txs_.end() && it->second.leading_termination) {
      EvaluateTermination(tx_id, it->second);
    }
  });
}

void ThreePcParticipant::EvaluateTermination(uint64_t tx_id, TxInfo& info) {
  if (info.state == TxState::kCommitted || info.state == TxState::kAborted) {
    info.leading_termination = false;
    return;
  }
  bool any_committed = false;
  bool any_precommitted = false;
  bool any_aborted = false;
  for (const auto& [peer, state] : info.peer_states) {
    any_committed |= (state == TxState::kCommitted);
    any_precommitted |= (state == TxState::kPreCommitted);
    any_aborted |= (state == TxState::kAborted);
  }
  info.leading_termination = false;

  if (any_committed || any_precommitted) {
    // The decision was commit; finish it everywhere.
    auto commit = std::make_shared<DoCommitMsg>();
    commit->tx_id = tx_id;
    for (sim::NodeId p : info.participants) {
      if (p != id()) Send(p, commit);
    }
    Commit(tx_id, info);
  } else {
    // Nobody is past prepared: the old coordinator cannot have sent
    // DoCommit (it requires every pre-commit ack), so abort is safe.
    (void)any_aborted;
    auto abort = std::make_shared<AbortMsg>();
    abort->tx_id = tx_id;
    for (sim::NodeId p : info.participants) {
      if (p != id()) Send(p, abort);
    }
    Abort(info);
  }
}

void ThreePcParticipant::OnMessage(sim::NodeId from, const sim::Message& msg) {
  if (const auto* m = dynamic_cast<const CanCommitMsg*>(&msg)) {
    TxInfo& info = txs_[m->tx_id];
    info.op = m->op;
    info.participants = m->participants;
    auto vote = std::make_shared<VoteMsg>();
    vote->tx_id = m->tx_id;
    if (m->op == "FAIL") {
      info.state = TxState::kAborted;
      vote->yes = false;
    } else {
      info.state = TxState::kPrepared;
      vote->yes = true;
      ArmDecisionTimer(m->tx_id);
    }
    Send(from, vote);
    return;
  }

  if (const auto* m = dynamic_cast<const PreCommitMsg*>(&msg)) {
    auto it = txs_.find(m->tx_id);
    if (it == txs_.end()) return;
    TxInfo& info = it->second;
    if (info.state == TxState::kPrepared) {
      info.state = TxState::kPreCommitted;
      ArmDecisionTimer(m->tx_id);
    }
    auto ack = std::make_shared<PreCommitAckMsg>();
    ack->tx_id = m->tx_id;
    Send(from, ack);
    return;
  }

  if (const auto* m = dynamic_cast<const DoCommitMsg*>(&msg)) {
    auto it = txs_.find(m->tx_id);
    if (it == txs_.end()) return;
    Commit(m->tx_id, it->second);
    return;
  }

  if (const auto* m = dynamic_cast<const AbortMsg*>(&msg)) {
    auto it = txs_.find(m->tx_id);
    if (it == txs_.end()) return;
    Abort(it->second);
    return;
  }

  if (const auto* m = dynamic_cast<const StateReqMsg*>(&msg)) {
    auto resp = std::make_shared<StateRespMsg>();
    resp->tx_id = m->tx_id;
    resp->state = state(m->tx_id);
    Send(from, resp);
    // Someone is running termination; give them time before we try.
    auto it = txs_.find(m->tx_id);
    if (it != txs_.end() &&
        (it->second.state == TxState::kPrepared ||
         it->second.state == TxState::kPreCommitted)) {
      ArmDecisionTimer(m->tx_id);
    }
    return;
  }

  if (const auto* m = dynamic_cast<const StateRespMsg*>(&msg)) {
    auto it = txs_.find(m->tx_id);
    if (it != txs_.end() && it->second.leading_termination) {
      it->second.peer_states[from] = m->state;
    }
    return;
  }
}

// ---------------------------------------------------------------------------
// Coordinator
// ---------------------------------------------------------------------------

ThreePcCoordinator::ThreePcCoordinator()
    : ThreePcCoordinator(Options()) {}
ThreePcCoordinator::ThreePcCoordinator(Options options) : options_(options) {}

void ThreePcCoordinator::Begin(const Transaction& tx) {
  TxRun& run = runs_[tx.tx_id];
  run.tx = tx;
  std::vector<sim::NodeId> participants;
  for (int32_t p : tx.Participants()) participants.push_back(p);
  for (const TxOp& op : tx.ops) {
    auto can = std::make_shared<ThreePcParticipant::CanCommitMsg>();
    can->tx_id = tx.tx_id;
    can->op = op.op;
    can->participants = participants;
    Send(op.participant, can);
  }
  uint64_t tx_id = tx.tx_id;
  run.timer = SetTimer(options_.vote_timeout, [this, tx_id] {
    auto it = runs_.find(tx_id);
    if (it != runs_.end() && !it->second.decision) Abort(it->second);
  });
}

std::optional<bool> ThreePcCoordinator::outcome(uint64_t tx_id) const {
  auto it = runs_.find(tx_id);
  return it == runs_.end() ? std::nullopt : it->second.decision;
}

void ThreePcCoordinator::Abort(TxRun& run) {
  if (run.decision) return;
  run.decision = false;
  CancelTimer(run.timer);
  for (int32_t p : run.tx.Participants()) {
    auto abort = std::make_shared<ThreePcParticipant::AbortMsg>();
    abort->tx_id = run.tx.tx_id;
    Send(p, abort);
  }
}

void ThreePcCoordinator::OnMessage(sim::NodeId from, const sim::Message& msg) {
  if (const auto* m = dynamic_cast<const ThreePcParticipant::VoteMsg*>(&msg)) {
    auto it = runs_.find(m->tx_id);
    if (it == runs_.end() || it->second.decision) return;
    TxRun& run = it->second;
    if (!m->yes) {
      Abort(run);
      return;
    }
    run.yes_votes.insert(from);
    if (run.yes_votes.size() == run.tx.Participants().size()) {
      // Phase 2: replicate the commit decision before anyone commits.
      for (int32_t p : run.tx.Participants()) {
        auto pre = std::make_shared<ThreePcParticipant::PreCommitMsg>();
        pre->tx_id = run.tx.tx_id;
        Send(p, pre);
      }
    }
    return;
  }

  if (const auto* m =
          dynamic_cast<const ThreePcParticipant::PreCommitAckMsg*>(&msg)) {
    auto it = runs_.find(m->tx_id);
    if (it == runs_.end() || it->second.decision) return;
    TxRun& run = it->second;
    run.pre_acks.insert(from);
    if (run.pre_acks.size() == run.tx.Participants().size()) {
      run.decision = true;
      CancelTimer(run.timer);
      for (int32_t p : run.tx.Participants()) {
        auto commit = std::make_shared<ThreePcParticipant::DoCommitMsg>();
        commit->tx_id = run.tx.tx_id;
        Send(p, commit);
      }
    }
    return;
  }
}

}  // namespace consensus40::commit
