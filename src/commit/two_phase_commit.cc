#include "commit/two_phase_commit.h"

namespace consensus40::commit {

// ---------------------------------------------------------------------------
// Participant
// ---------------------------------------------------------------------------

TxState TwoPcParticipant::state(uint64_t tx_id) const {
  auto it = txs_.find(tx_id);
  return it == txs_.end() ? TxState::kUnknown : it->second.state;
}

void TwoPcParticipant::OnMessage(sim::NodeId from, const sim::Message& msg) {
  if (const auto* m = dynamic_cast<const PrepareMsg*>(&msg)) {
    TxInfo& info = txs_[m->tx_id];
    info.op = m->op;
    auto vote = std::make_shared<VoteMsg>();
    vote->tx_id = m->tx_id;
    if (m->op == "FAIL") {
      // Local validation failed: vote No and abort unilaterally (allowed
      // before voting Yes).
      info.state = TxState::kAborted;
      vote->yes = false;
    } else {
      // Vote Yes: from here on we are in the uncertainty window and must
      // wait for the coordinator's decision.
      info.state = TxState::kPrepared;
      vote->yes = true;
    }
    Send(from, vote);
    return;
  }

  if (const auto* m = dynamic_cast<const DecisionMsg*>(&msg)) {
    auto it = txs_.find(m->tx_id);
    if (it == txs_.end()) return;
    TxInfo& info = it->second;
    if (info.state == TxState::kPrepared || info.state == TxState::kUnknown) {
      if (m->commit) {
        info.state = TxState::kCommitted;
        kv_.Apply(smr::Command{id(), ++op_seq_, info.op});
      } else {
        info.state = TxState::kAborted;
      }
    }
    auto ack = std::make_shared<AckMsg>();
    ack->tx_id = m->tx_id;
    Send(from, ack);
    return;
  }
}

// ---------------------------------------------------------------------------
// Coordinator
// ---------------------------------------------------------------------------

TwoPcCoordinator::TwoPcCoordinator() : TwoPcCoordinator(Options()) {}
TwoPcCoordinator::TwoPcCoordinator(Options options) : options_(options) {}

void TwoPcCoordinator::Begin(const Transaction& tx) {
  TxRun& run = runs_[tx.tx_id];
  run.tx = tx;
  for (const TxOp& op : tx.ops) {
    auto prepare = std::make_shared<TwoPcParticipant::PrepareMsg>();
    prepare->tx_id = tx.tx_id;
    prepare->op = op.op;
    Send(op.participant, prepare);
  }
  uint64_t tx_id = tx.tx_id;
  run.timer = SetTimer(options_.vote_timeout, [this, tx_id] {
    auto it = runs_.find(tx_id);
    if (it != runs_.end() && !it->second.decision) {
      Decide(it->second, false);  // Missing votes => abort.
    }
  });
}

std::optional<bool> TwoPcCoordinator::outcome(uint64_t tx_id) const {
  auto it = runs_.find(tx_id);
  return it == runs_.end() ? std::nullopt : it->second.decision;
}

bool TwoPcCoordinator::Finished(uint64_t tx_id) const {
  auto it = runs_.find(tx_id);
  if (it == runs_.end() || !it->second.decision) return false;
  return it->second.acks.size() == it->second.tx.Participants().size();
}

void TwoPcCoordinator::Decide(TxRun& run, bool commit) {
  if (run.decision) return;
  run.decision = commit;
  CancelTimer(run.timer);
  for (int32_t p : run.tx.Participants()) {
    auto decision = std::make_shared<TwoPcParticipant::DecisionMsg>();
    decision->tx_id = run.tx.tx_id;
    decision->commit = commit;
    Send(p, decision);
  }
}

void TwoPcCoordinator::OnMessage(sim::NodeId from, const sim::Message& msg) {
  if (const auto* m = dynamic_cast<const TwoPcParticipant::VoteMsg*>(&msg)) {
    auto it = runs_.find(m->tx_id);
    if (it == runs_.end() || it->second.decision) return;
    TxRun& run = it->second;
    if (!m->yes) {
      Decide(run, false);
      return;
    }
    run.yes_votes.insert(from);
    if (run.yes_votes.size() == run.tx.Participants().size()) {
      Decide(run, true);
    }
    return;
  }

  if (const auto* m = dynamic_cast<const TwoPcParticipant::AckMsg*>(&msg)) {
    auto it = runs_.find(m->tx_id);
    if (it != runs_.end()) it->second.acks.insert(from);
    return;
  }
}

}  // namespace consensus40::commit
