#ifndef CONSENSUS40_COMMIT_THREE_PHASE_COMMIT_H_
#define CONSENSUS40_COMMIT_THREE_PHASE_COMMIT_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "commit/types.h"
#include "sim/simulation.h"
#include "smr/command.h"
#include "smr/state_machine.h"

namespace consensus40::commit {

/// 3PC participant. The extra pre-commit phase replicates the decision to
/// the cohorts before anyone commits (deck: "Replicate decision to cohorts
/// (like Paxos)"), which removes 2PC's blocking window: if the coordinator
/// fails, the surviving participants elect a new coordinator (lowest alive
/// id) and run the termination protocol:
///   - someone committed            -> commit everywhere
///   - someone pre-committed        -> pre-commit, then commit
///   - nobody past prepared         -> abort (provably safe: DoCommit is
///     only ever sent after *all* participants acked pre-commit)
class ThreePcParticipant : public sim::Process {
 public:
  struct Options {
    /// Enables the termination protocol (FT-3PC). Without it, a coordinator
    /// crash leaves participants stuck just like 2PC.
    bool enable_termination = true;
    /// Patience before suspecting the coordinator.
    sim::Duration decision_timeout = 200 * sim::kMillisecond;
  };

  struct CanCommitMsg : sim::Message {
    const char* TypeName() const override { return "3pc-can-commit"; }
    int ByteSize() const override {
      return 32 + static_cast<int>(op.size()) +
             static_cast<int>(participants.size()) * 4;
    }
    uint64_t tx_id = 0;
    std::string op;
    std::vector<sim::NodeId> participants;  ///< For the termination protocol.
  };
  struct VoteMsg : sim::Message {
    const char* TypeName() const override { return "3pc-vote"; }
    int ByteSize() const override { return 24; }
    uint64_t tx_id = 0;
    bool yes = false;
  };
  struct PreCommitMsg : sim::Message {
    const char* TypeName() const override { return "3pc-pre-commit"; }
    int ByteSize() const override { return 16; }
    uint64_t tx_id = 0;
  };
  struct PreCommitAckMsg : sim::Message {
    const char* TypeName() const override { return "3pc-pre-commit-ack"; }
    int ByteSize() const override { return 16; }
    uint64_t tx_id = 0;
  };
  struct DoCommitMsg : sim::Message {
    const char* TypeName() const override { return "3pc-do-commit"; }
    int ByteSize() const override { return 16; }
    uint64_t tx_id = 0;
  };
  struct AbortMsg : sim::Message {
    const char* TypeName() const override { return "3pc-abort"; }
    int ByteSize() const override { return 16; }
    uint64_t tx_id = 0;
  };
  struct StateReqMsg : sim::Message {
    const char* TypeName() const override { return "3pc-state-req"; }
    int ByteSize() const override { return 16; }
    uint64_t tx_id = 0;
  };
  struct StateRespMsg : sim::Message {
    const char* TypeName() const override { return "3pc-state-resp"; }
    int ByteSize() const override { return 20; }
    uint64_t tx_id = 0;
    TxState state = TxState::kUnknown;
  };

  ThreePcParticipant();
  explicit ThreePcParticipant(Options options);

  TxState state(uint64_t tx_id) const;
  const smr::KvStore& kv() const { return kv_; }
  /// Number of termination rounds this node started (new-coordinator role).
  int terminations_led() const { return terminations_led_; }

  void OnMessage(sim::NodeId from, const sim::Message& msg) override;

 private:
  struct TxInfo {
    TxState state = TxState::kUnknown;
    std::string op;
    std::vector<sim::NodeId> participants;
    uint64_t decision_timer = 0;
    // Termination-coordinator bookkeeping.
    bool leading_termination = false;
    std::map<sim::NodeId, TxState> peer_states;
    std::set<sim::NodeId> term_acks;
  };

  void Commit(uint64_t tx_id, TxInfo& info);
  void Abort(TxInfo& info);
  void ArmDecisionTimer(uint64_t tx_id);
  void StartTermination(uint64_t tx_id);
  void EvaluateTermination(uint64_t tx_id, TxInfo& info);

  Options options_;
  std::map<uint64_t, TxInfo> txs_;
  smr::KvStore kv_;
  uint64_t op_seq_ = 0;
  int terminations_led_ = 0;
};

/// 3PC coordinator: can-commit -> pre-commit -> do-commit.
class ThreePcCoordinator : public sim::Process {
 public:
  struct Options {
    sim::Duration vote_timeout = 100 * sim::kMillisecond;
  };

  ThreePcCoordinator();
  explicit ThreePcCoordinator(Options options);

  void Begin(const Transaction& tx);
  std::optional<bool> outcome(uint64_t tx_id) const;

  void OnMessage(sim::NodeId from, const sim::Message& msg) override;

 private:
  struct TxRun {
    Transaction tx;
    std::set<sim::NodeId> yes_votes;
    std::set<sim::NodeId> pre_acks;
    std::optional<bool> decision;
    uint64_t timer = 0;
  };

  void Abort(TxRun& run);

  Options options_;
  std::map<uint64_t, TxRun> runs_;
};

}  // namespace consensus40::commit

#endif  // CONSENSUS40_COMMIT_THREE_PHASE_COMMIT_H_
