#include "core/cnc.h"

namespace consensus40::core {

const char* ToString(CncPhase p) {
  switch (p) {
    case CncPhase::kLeaderElection:
      return "LeaderElection";
    case CncPhase::kValueDiscovery:
      return "ValueDiscovery";
    case CncPhase::kFaultTolerantAgreement:
      return "FaultTolerantAgreement";
    case CncPhase::kDecision:
      return "Decision";
    case CncPhase::kOther:
      return "Other";
  }
  return "?";
}

void CncPhaseMap::Tag(const std::string& type_name, CncPhase phase) {
  map_[type_name] = phase;
}

CncPhase CncPhaseMap::PhaseOf(const std::string& type_name) const {
  auto it = map_.find(type_name);
  return it == map_.end() ? CncPhase::kOther : it->second;
}

void CncTracer::Attach(sim::Simulation* sim) {
  sim->SetTraceFn([this](const sim::Envelope& env, sim::Time deliver_time) {
    entries_.push_back(CncTraceEntry{deliver_time, env.from, env.to,
                                     env.msg->TypeName(),
                                     map_.PhaseOf(env.msg->TypeName())});
  });
}

std::vector<CncPhase> CncTracer::PhaseSequence() const {
  std::vector<CncPhase> seq;
  for (const CncTraceEntry& e : entries_) {
    if (e.phase == CncPhase::kOther) continue;
    if (seq.empty() || seq.back() != e.phase) {
      bool seen = false;
      for (CncPhase p : seq) {
        if (p == e.phase) {
          seen = true;
          break;
        }
      }
      if (!seen) seq.push_back(e.phase);
    }
  }
  return seq;
}

std::string CncTracer::ToString() const {
  std::string out;
  for (const CncTraceEntry& e : entries_) {
    out += "t=" + std::to_string(e.time) + "us  " + std::to_string(e.from) +
           " -> " + std::to_string(e.to) + "  " + e.type + "  [" +
           consensus40::core::ToString(e.phase) + "]\n";
  }
  return out;
}

}  // namespace consensus40::core
