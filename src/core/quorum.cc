#include "core/quorum.h"

#include <cassert>

namespace consensus40::core {

namespace {

int CountInRange(const NodeSet& nodes, int n) {
  int count = 0;
  for (int id : nodes) {
    if (id >= 0 && id < n) ++count;
  }
  return count;
}

}  // namespace

MajorityQuorum::MajorityQuorum(int n) : n_(n) { assert(n > 0); }

bool MajorityQuorum::IsElectionQuorum(const NodeSet& nodes) const {
  return CountInRange(nodes, n_) >= ElectionQuorumSize();
}

bool MajorityQuorum::IsReplicationQuorum(const NodeSet& nodes) const {
  return CountInRange(nodes, n_) >= ReplicationQuorumSize();
}

std::string MajorityQuorum::Describe() const {
  return "majority(n=" + std::to_string(n_) +
         ", q=" + std::to_string(ElectionQuorumSize()) + ")";
}

ByzantineQuorum::ByzantineQuorum(int n) : n_(n) { assert(n >= 4); }

bool ByzantineQuorum::IsElectionQuorum(const NodeSet& nodes) const {
  return CountInRange(nodes, n_) >= QuorumSize();
}

bool ByzantineQuorum::IsReplicationQuorum(const NodeSet& nodes) const {
  return CountInRange(nodes, n_) >= QuorumSize();
}

std::string ByzantineQuorum::Describe() const {
  return "byzantine(n=" + std::to_string(n_) + ", f=" +
         std::to_string(MaxFaults()) + ", q=" + std::to_string(QuorumSize()) +
         ")";
}

Result<std::unique_ptr<FlexibleQuorum>> FlexibleQuorum::Make(int n, int q1,
                                                             int q2) {
  if (n <= 0 || q1 <= 0 || q2 <= 0 || q1 > n || q2 > n) {
    return Status::InvalidArgument("quorum sizes must be in (0, n]");
  }
  if (q1 + q2 <= n) {
    return Status::InvalidArgument(
        "flexible paxos requires q1 + q2 > n (quorums must intersect)");
  }
  return std::unique_ptr<FlexibleQuorum>(new FlexibleQuorum(n, q1, q2));
}

bool FlexibleQuorum::IsElectionQuorum(const NodeSet& nodes) const {
  return CountInRange(nodes, n_) >= q1_;
}

bool FlexibleQuorum::IsReplicationQuorum(const NodeSet& nodes) const {
  return CountInRange(nodes, n_) >= q2_;
}

std::string FlexibleQuorum::Describe() const {
  return "flexible(n=" + std::to_string(n_) + ", q1=" + std::to_string(q1_) +
         ", q2=" + std::to_string(q2_) + ")";
}

GridQuorum::GridQuorum(int rows, int cols) : rows_(rows), cols_(cols) {
  assert(rows > 0 && cols > 0);
}

// Node id layout: row-major, id = r * cols + c.
bool GridQuorum::IsElectionQuorum(const NodeSet& nodes) const {
  // One full column: for some c, all r in [0, rows) with id r*cols+c present.
  for (int c = 0; c < cols_; ++c) {
    bool full = true;
    for (int r = 0; r < rows_; ++r) {
      if (nodes.count(r * cols_ + c) == 0) {
        full = false;
        break;
      }
    }
    if (full) return true;
  }
  return false;
}

bool GridQuorum::IsReplicationQuorum(const NodeSet& nodes) const {
  // One full row.
  for (int r = 0; r < rows_; ++r) {
    bool full = true;
    for (int c = 0; c < cols_; ++c) {
      if (nodes.count(r * cols_ + c) == 0) {
        full = false;
        break;
      }
    }
    if (full) return true;
  }
  return false;
}

std::string GridQuorum::Describe() const {
  return "grid(" + std::to_string(rows_) + "x" + std::to_string(cols_) + ")";
}

HybridQuorum::HybridQuorum(int m, int c) : m_(m), c_(c) {
  assert(m >= 0 && c >= 0 && m + c > 0);
}

bool HybridQuorum::IsElectionQuorum(const NodeSet& nodes) const {
  return CountInRange(nodes, n()) >= QuorumSize();
}

bool HybridQuorum::IsReplicationQuorum(const NodeSet& nodes) const {
  return CountInRange(nodes, n()) >= QuorumSize();
}

std::string HybridQuorum::Describe() const {
  return "hybrid(m=" + std::to_string(m_) + ", c=" + std::to_string(c_) +
         ", n=" + std::to_string(n()) + ", q=" + std::to_string(QuorumSize()) +
         ")";
}

bool CheckQuorumIntersection(const QuorumSystem& qs, int min_overlap) {
  int n = qs.n();
  assert(n <= 14);
  uint32_t limit = 1u << n;

  auto to_set = [n](uint32_t mask) {
    NodeSet s;
    for (int i = 0; i < n; ++i) {
      if (mask & (1u << i)) s.insert(i);
    }
    return s;
  };

  // It suffices to check *minimal* quorums: shrinking either side can only
  // shrink the intersection, so the minimum over all quorum pairs is
  // attained at a pair of minimal quorums.
  auto is_minimal = [&](uint32_t mask, auto&& pred) {
    if (!pred(to_set(mask))) return false;
    for (int i = 0; i < n; ++i) {
      if ((mask & (1u << i)) && pred(to_set(mask & ~(1u << i)))) return false;
    }
    return true;
  };

  std::vector<uint32_t> election, replication;
  auto e_pred = [&qs](const NodeSet& s) { return qs.IsElectionQuorum(s); };
  auto r_pred = [&qs](const NodeSet& s) { return qs.IsReplicationQuorum(s); };
  for (uint32_t mask = 0; mask < limit; ++mask) {
    if (is_minimal(mask, e_pred)) election.push_back(mask);
    if (is_minimal(mask, r_pred)) replication.push_back(mask);
  }
  for (uint32_t e : election) {
    for (uint32_t r : replication) {
      if (__builtin_popcount(e & r) < min_overlap) return false;
    }
  }
  return true;
}

}  // namespace consensus40::core
