#include "core/traits.h"

namespace consensus40::core {

const char* ToString(Synchrony s) {
  switch (s) {
    case Synchrony::kSynchronous:
      return "synchronous";
    case Synchrony::kAsynchronous:
      return "asynchronous";
    case Synchrony::kPartiallySynchronous:
      return "partially-synchronous";
  }
  return "?";
}

const char* ToString(FailureModel f) {
  switch (f) {
    case FailureModel::kCrash:
      return "crash";
    case FailureModel::kByzantine:
      return "Byzantine";
    case FailureModel::kHybrid:
      return "hybrid";
  }
  return "?";
}

const char* ToString(Strategy s) {
  switch (s) {
    case Strategy::kPessimistic:
      return "pessimistic";
    case Strategy::kOptimistic:
      return "optimistic";
  }
  return "?";
}

const char* ToString(Awareness a) {
  switch (a) {
    case Awareness::kKnown:
      return "known";
    case Awareness::kUnknown:
      return "unknown";
  }
  return "?";
}

namespace {

int TwoFPlusOne(int f, int /*c*/) { return 2 * f + 1; }
int ThreeFPlusOne(int f, int /*c*/) { return 3 * f + 1; }
int FPlusOneActive(int f, int /*c*/) { return f + 1; }
int HybridNodes(int m, int c) { return 3 * m + 2 * c + 1; }
int Unbounded(int /*f*/, int /*c*/) { return -1; }

const std::vector<ProtocolTraits>& BuildTable() {
  static const std::vector<ProtocolTraits>* kTable =
      new std::vector<ProtocolTraits>{
          {"Paxos", Synchrony::kPartiallySynchronous, FailureModel::kCrash,
           Strategy::kPessimistic, Awareness::kKnown, "2f+1", &TwoFPlusOne,
           "2", "O(N)", "Lamport 98; leader-based, majority quorums"},
          {"Raft", Synchrony::kPartiallySynchronous, FailureModel::kCrash,
           Strategy::kPessimistic, Awareness::kKnown, "2f+1", &TwoFPlusOne,
           "2", "O(N)", "Ongaro & Ousterhout 14; log-integrated Paxos twin"},
          {"Fast Paxos", Synchrony::kPartiallySynchronous,
           FailureModel::kCrash, Strategy::kPessimistic, Awareness::kKnown,
           "3f+1", &ThreeFPlusOne, "1 or 3", "O(N)",
           "Lamport 06; 2 message delays, fast quorums, collision recovery"},
          {"Flexible Paxos", Synchrony::kPartiallySynchronous,
           FailureModel::kCrash, Strategy::kPessimistic, Awareness::kKnown,
           "2f+1", &TwoFPlusOne, "2", "O(N)",
           "Howard et al. 17; only Q1 x Q2 must intersect"},
          {"PBFT", Synchrony::kPartiallySynchronous, FailureModel::kByzantine,
           Strategy::kPessimistic, Awareness::kKnown, "3f+1", &ThreeFPlusOne,
           "3", "O(N^2)", "Castro & Liskov 99; O(N^3) view change"},
          {"Zyzzyva", Synchrony::kPartiallySynchronous,
           FailureModel::kByzantine, Strategy::kOptimistic, Awareness::kKnown,
           "3f+1", &ThreeFPlusOne, "1 or 2", "O(N)",
           "Kotla et al. 07; speculative execution, client commits"},
          {"HotStuff", Synchrony::kPartiallySynchronous,
           FailureModel::kByzantine, Strategy::kPessimistic, Awareness::kKnown,
           "3f+1", &ThreeFPlusOne, "7", "O(N)",
           "Yin et al. 19; threshold sigs, leader rotation, pipelining"},
          {"MinBFT", Synchrony::kPartiallySynchronous,
           FailureModel::kByzantine, Strategy::kPessimistic, Awareness::kKnown,
           "2f+1", &TwoFPlusOne, "2", "O(N)",
           "Veronese et al. 13; USIG trusted counter"},
          {"CheapBFT", Synchrony::kPartiallySynchronous,
           FailureModel::kByzantine, Strategy::kOptimistic, Awareness::kKnown,
           "f+1 (2f+1)", &FPlusOneActive, "2", "O(N)",
           "Kapitza et al. 12; f+1 active, CheapSwitch to MinBFT"},
          {"UpRight", Synchrony::kPartiallySynchronous, FailureModel::kHybrid,
           Strategy::kOptimistic, Awareness::kKnown, "3m+2c+1", &HybridNodes,
           "2 or 3", "O(N^2)",
           "Clement et al. 09; m malicious + c crash faults"},
          {"SeeMoRe", Synchrony::kPartiallySynchronous, FailureModel::kHybrid,
           Strategy::kPessimistic, Awareness::kKnown, "3m+2c+1", &HybridNodes,
           "2 or 3", "O(N)/O(N^2)",
           "Amiri et al. 19; hybrid private/public cloud, 3 modes"},
          {"XFT", Synchrony::kPartiallySynchronous, FailureModel::kHybrid,
           Strategy::kOptimistic, Awareness::kKnown, "2f+1", &TwoFPlusOne,
           "2", "O(N)", "Liu et al. 16; safe outside anarchy"},
          {"PoW (Bitcoin)", Synchrony::kSynchronous, FailureModel::kByzantine,
           Strategy::kOptimistic, Awareness::kUnknown, "?", &Unbounded, "1",
           "O(N)", "Nakamoto 08; replace communication with computation"},
      };
  return *kTable;
}

}  // namespace

const std::vector<ProtocolTraits>& AllProtocolTraits() { return BuildTable(); }

const ProtocolTraits* FindProtocolTraits(const std::string& name) {
  for (const ProtocolTraits& t : AllProtocolTraits()) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

}  // namespace consensus40::core
