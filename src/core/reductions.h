#ifndef CONSENSUS40_CORE_REDUCTIONS_H_
#define CONSENSUS40_CORE_REDUCTIONS_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace consensus40::core {

/// The deck's "equivalent problems" slide made executable: atomic
/// broadcast and consensus are mutually reducible (Chandra & Toueg 1996).
/// These adapters express each reduction against abstract service
/// interfaces so the equivalences can be tested with any implementation
/// from this library plugged in.

/// Abstract consensus box: each call decides one value among proposals.
/// Implementations are expected to be one-shot per instance id.
class ConsensusService {
 public:
  virtual ~ConsensusService() = default;

  /// Runs instance `instance` with `proposal` as this caller's input and
  /// returns the decided value (the same for every caller of the
  /// instance).
  virtual std::string Decide(uint64_t instance, const std::string& proposal) = 0;
};

/// Abstract atomic broadcast box: messages go in, a totally-ordered
/// delivery sequence comes out (identical at every node).
class AtomicBroadcastService {
 public:
  virtual ~AtomicBroadcastService() = default;

  virtual void Broadcast(const std::string& message) = 0;

  /// The delivery sequence so far (a prefix of the eventual total order).
  virtual std::vector<std::string> Delivered() = 0;
};

/// Reduction 1 — consensus FROM atomic broadcast: broadcast your proposal
/// and decide the first delivered message. Trivially satisfies agreement
/// (identical delivery order) and validity (only broadcast messages are
/// delivered).
class ConsensusFromAtomicBroadcast : public ConsensusService {
 public:
  explicit ConsensusFromAtomicBroadcast(AtomicBroadcastService* ab)
      : ab_(ab) {}

  std::string Decide(uint64_t instance, const std::string& proposal) override;

 private:
  AtomicBroadcastService* ab_;
};

/// Reduction 2 — atomic broadcast FROM consensus: collect pending
/// messages, and for k = 1, 2, ... run consensus instance k on the
/// pending batch; deliver the decided batch in a deterministic order.
/// Agreement of consensus gives identical delivery sequences everywhere.
class AtomicBroadcastFromConsensus : public AtomicBroadcastService {
 public:
  explicit AtomicBroadcastFromConsensus(ConsensusService* consensus)
      : consensus_(consensus) {}

  void Broadcast(const std::string& message) override;
  std::vector<std::string> Delivered() override;

 private:
  /// Serializes a batch of messages into one consensus value and back.
  static std::string EncodeBatch(const std::vector<std::string>& batch);
  static std::vector<std::string> DecodeBatch(const std::string& value);

  ConsensusService* consensus_;
  std::vector<std::string> pending_;
  std::vector<std::string> delivered_;
  uint64_t next_instance_ = 1;
};

}  // namespace consensus40::core

#endif  // CONSENSUS40_CORE_REDUCTIONS_H_
