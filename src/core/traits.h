#ifndef CONSENSUS40_CORE_TRAITS_H_
#define CONSENSUS40_CORE_TRAITS_H_

#include <string>
#include <vector>

namespace consensus40::core {

/// First aspect: synchrony mode.
enum class Synchrony {
  kSynchronous,
  kAsynchronous,
  kPartiallySynchronous,
};

/// Second aspect: failure model.
enum class FailureModel {
  kCrash,
  kByzantine,
  kHybrid,
};

/// Third aspect: processing strategy.
enum class Strategy {
  kPessimistic,
  kOptimistic,
};

/// Fourth aspect: participant awareness.
enum class Awareness {
  kKnown,
  kUnknown,
};

const char* ToString(Synchrony s);
const char* ToString(FailureModel f);
const char* ToString(Strategy s);
const char* ToString(Awareness a);

/// The taxonomy card the tutorial attaches to every protocol: the five
/// aspects (complexity metrics split into nodes / phases / messages).
struct ProtocolTraits {
  std::string name;
  Synchrony synchrony;
  FailureModel failure_model;
  Strategy strategy;
  Awareness awareness;
  /// Node-count formula as printed in the deck, e.g. "2f+1", "3m+2c+1".
  std::string nodes_formula;
  /// Number of nodes required to tolerate f (or m Byzantine + c crash)
  /// faults. For hybrid protocols c is meaningful; otherwise pass c = 0.
  int (*nodes_required)(int f, int c);
  /// Common-case communication phases as printed, e.g. "2", "1 or 3", "7".
  std::string phases;
  /// Message complexity as printed, e.g. "O(N)", "O(N^2)".
  std::string complexity;
  /// Deck slide reference / note.
  std::string note;
};

/// All taxonomy cards the tutorial presents, in presentation order:
/// Paxos, Raft, Fast Paxos, Flexible Paxos, PBFT, Zyzzyva, HotStuff,
/// MinBFT, CheapBFT, UpRight, SeeMoRe, XFT, PoW.
const std::vector<ProtocolTraits>& AllProtocolTraits();

/// Looks up a card by name; returns nullptr if absent.
const ProtocolTraits* FindProtocolTraits(const std::string& name);

}  // namespace consensus40::core

#endif  // CONSENSUS40_CORE_TRAITS_H_
