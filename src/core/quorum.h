#ifndef CONSENSUS40_CORE_QUORUM_H_
#define CONSENSUS40_CORE_QUORUM_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"

namespace consensus40::core {

using NodeSet = std::set<int>;

/// A quorum system over nodes {0..n-1}: decides which response sets suffice
/// for each of the two roles the paper distinguishes — leader election
/// (Paxos phase 1) and replication (phase 2). For classic systems the two
/// coincide; Flexible Paxos decouples them.
class QuorumSystem {
 public:
  virtual ~QuorumSystem() = default;

  /// Total number of nodes.
  virtual int n() const = 0;

  /// True iff `nodes` contains a leader-election (phase-1) quorum.
  virtual bool IsElectionQuorum(const NodeSet& nodes) const = 0;

  /// True iff `nodes` contains a replication (phase-2) quorum.
  virtual bool IsReplicationQuorum(const NodeSet& nodes) const = 0;

  /// Count-based shortcuts for threshold systems (the common case). For
  /// set-structured systems (grids) these return the minimum cardinality
  /// that could possibly be a quorum; protocols built on such systems must
  /// use the set-based predicates.
  virtual int ElectionQuorumSize() const = 0;
  virtual int ReplicationQuorumSize() const = 0;

  /// Human-readable description for tables.
  virtual std::string Describe() const = 0;
};

/// Classic majority quorums (Paxos/Raft): n = 2f+1, quorum = f+1 ... i.e.
/// strictly more than half; any two quorums intersect in >= 1 node.
class MajorityQuorum : public QuorumSystem {
 public:
  explicit MajorityQuorum(int n);
  int n() const override { return n_; }
  bool IsElectionQuorum(const NodeSet& nodes) const override;
  bool IsReplicationQuorum(const NodeSet& nodes) const override;
  int ElectionQuorumSize() const override { return n_ / 2 + 1; }
  int ReplicationQuorumSize() const override { return n_ / 2 + 1; }
  std::string Describe() const override;

  /// Max crash faults tolerated.
  int MaxFaults() const { return (n_ - 1) / 2; }

 private:
  int n_;
};

/// Byzantine quorums (PBFT/HotStuff): n = 3f+1, quorum = 2f+1; any two
/// quorums intersect in >= f+1 nodes, at least one of which is correct.
class ByzantineQuorum : public QuorumSystem {
 public:
  explicit ByzantineQuorum(int n);
  int n() const override { return n_; }
  bool IsElectionQuorum(const NodeSet& nodes) const override;
  bool IsReplicationQuorum(const NodeSet& nodes) const override;
  int ElectionQuorumSize() const override { return QuorumSize(); }
  int ReplicationQuorumSize() const override { return QuorumSize(); }
  std::string Describe() const override;

  /// Max Byzantine faults tolerated: f = (n-1)/3.
  int MaxFaults() const { return (n_ - 1) / 3; }
  /// 2f+1 given this n.
  int QuorumSize() const { return n_ - MaxFaults(); }
  /// Guaranteed intersection of two quorums: f+1.
  int Intersection() const { return 2 * QuorumSize() - n_; }

 private:
  int n_;
};

/// Flexible Paxos threshold quorums: election quorums of size q1 and
/// replication quorums of size q2 with q1 + q2 > n. Majority quorums are
/// the special case q1 = q2 = floor(n/2)+1.
class FlexibleQuorum : public QuorumSystem {
 public:
  /// Returns InvalidArgument unless 0 < q1,q2 <= n and q1 + q2 > n.
  static Result<std::unique_ptr<FlexibleQuorum>> Make(int n, int q1, int q2);

  int n() const override { return n_; }
  bool IsElectionQuorum(const NodeSet& nodes) const override;
  bool IsReplicationQuorum(const NodeSet& nodes) const override;
  int ElectionQuorumSize() const override { return q1_; }
  int ReplicationQuorumSize() const override { return q2_; }
  std::string Describe() const override;

 private:
  FlexibleQuorum(int n, int q1, int q2) : n_(n), q1_(q1), q2_(q2) {}
  int n_, q1_, q2_;
};

/// Flexible Paxos grid quorums over a rows x cols grid: a replication
/// quorum is one full row; an election quorum is one full column. Every
/// column intersects every row in exactly one node, and |row| + |col| can be
/// far below a majority pair.
class GridQuorum : public QuorumSystem {
 public:
  GridQuorum(int rows, int cols);
  int n() const override { return rows_ * cols_; }
  bool IsElectionQuorum(const NodeSet& nodes) const override;
  bool IsReplicationQuorum(const NodeSet& nodes) const override;
  int ElectionQuorumSize() const override { return rows_; }
  int ReplicationQuorumSize() const override { return cols_; }
  std::string Describe() const override;

  int rows() const { return rows_; }
  int cols() const { return cols_; }

 private:
  int rows_, cols_;
};

/// Hybrid (UpRight / SeeMoRe) quorums tolerating at most m Byzantine and
/// c crash faults: network 3m+2c+1, quorum 2m+c+1, intersection m+1.
class HybridQuorum : public QuorumSystem {
 public:
  HybridQuorum(int m, int c);
  int n() const override { return 3 * m_ + 2 * c_ + 1; }
  bool IsElectionQuorum(const NodeSet& nodes) const override;
  bool IsReplicationQuorum(const NodeSet& nodes) const override;
  int ElectionQuorumSize() const override { return QuorumSize(); }
  int ReplicationQuorumSize() const override { return QuorumSize(); }
  std::string Describe() const override;

  int m() const { return m_; }
  int c() const { return c_; }
  /// 2m+c+1.
  int QuorumSize() const { return 2 * m_ + c_ + 1; }
  /// Guaranteed overlap of two quorums: m+1 (>= 1 correct node).
  int Intersection() const { return 2 * QuorumSize() - n(); }

 private:
  int m_, c_;
};

/// Exhaustively verifies the defining intersection property of a quorum
/// system for all subsets of {0..n-1} (n <= ~16): every election quorum
/// intersects every replication quorum in at least `min_overlap` nodes.
/// Used by the property-test suite.
bool CheckQuorumIntersection(const QuorumSystem& qs, int min_overlap);

}  // namespace consensus40::core

#endif  // CONSENSUS40_CORE_QUORUM_H_
