#ifndef CONSENSUS40_CORE_CNC_H_
#define CONSENSUS40_CORE_CNC_H_

#include <map>
#include <string>
#include <vector>

#include "sim/simulation.h"

namespace consensus40::core {

/// The Consensus & Commitment (C&C) framework: the paper's observation that
/// leader-based agreement protocols decompose into four phases. Protocols
/// in this library tag their message types with the phase they implement;
/// the framework turns executions into phase-annotated traces (figure F9)
/// and lets tests assert that the expected phases occur in order.
enum class CncPhase {
  kLeaderElection,
  kValueDiscovery,
  kFaultTolerantAgreement,
  kDecision,
  kOther,
};

const char* ToString(CncPhase p);

/// Maps a protocol's message type names to C&C phases.
class CncPhaseMap {
 public:
  /// Registers `type_name` (Message::TypeName()) as belonging to `phase`.
  void Tag(const std::string& type_name, CncPhase phase);

  /// Phase for a message type; kOther when untagged.
  CncPhase PhaseOf(const std::string& type_name) const;

 private:
  std::map<std::string, CncPhase> map_;
};

/// One delivered message, annotated.
struct CncTraceEntry {
  sim::Time time = 0;
  sim::NodeId from = sim::kInvalidNode;
  sim::NodeId to = sim::kInvalidNode;
  std::string type;
  CncPhase phase = CncPhase::kOther;
};

/// Records every delivery in a simulation, annotated with C&C phases.
/// Install with Attach() before running; read `entries()` afterwards.
class CncTracer {
 public:
  explicit CncTracer(CncPhaseMap map) : map_(std::move(map)) {}

  /// Registers this tracer as the simulation's trace hook.
  void Attach(sim::Simulation* sim);

  const std::vector<CncTraceEntry>& entries() const { return entries_; }

  /// Distinct phases in first-occurrence order — the deck's phase arrow
  /// "Leader Election -> Value Discovery -> FT Agreement -> Decision".
  std::vector<CncPhase> PhaseSequence() const;

  /// Multi-line rendering of the annotated flow.
  std::string ToString() const;

 private:
  CncPhaseMap map_;
  std::vector<CncTraceEntry> entries_;
};

}  // namespace consensus40::core

#endif  // CONSENSUS40_CORE_CNC_H_
