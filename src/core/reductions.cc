#include "core/reductions.h"

#include <algorithm>
#include <set>

namespace consensus40::core {

std::string ConsensusFromAtomicBroadcast::Decide(uint64_t /*instance*/,
                                                 const std::string& proposal) {
  ab_->Broadcast(proposal);
  // Decide the first delivered message. In an asynchronous deployment the
  // caller would block on delivery; our service interface is pull-based,
  // so callers invoke Decide after running the underlying system.
  std::vector<std::string> delivered = ab_->Delivered();
  return delivered.empty() ? std::string() : delivered.front();
}

void AtomicBroadcastFromConsensus::Broadcast(const std::string& message) {
  pending_.push_back(message);
}

std::string AtomicBroadcastFromConsensus::EncodeBatch(
    const std::vector<std::string>& batch) {
  // Length-prefixed concatenation: "<len>:<msg>" repeated.
  std::string out;
  for (const std::string& message : batch) {
    out += std::to_string(message.size());
    out += ':';
    out += message;
  }
  return out;
}

std::vector<std::string> AtomicBroadcastFromConsensus::DecodeBatch(
    const std::string& value) {
  std::vector<std::string> batch;
  size_t pos = 0;
  while (pos < value.size()) {
    size_t colon = value.find(':', pos);
    if (colon == std::string::npos) break;
    size_t len = std::strtoull(value.substr(pos, colon - pos).c_str(),
                               nullptr, 10);
    batch.push_back(value.substr(colon + 1, len));
    pos = colon + 1 + len;
  }
  return batch;
}

std::vector<std::string> AtomicBroadcastFromConsensus::Delivered() {
  // Drive consensus instances while we hold undelivered messages.
  std::set<std::string> already(delivered_.begin(), delivered_.end());
  while (true) {
    std::vector<std::string> fresh;
    for (const std::string& message : pending_) {
      if (already.count(message) == 0) fresh.push_back(message);
    }
    if (fresh.empty()) break;
    // Propose the fresh batch in deterministic order; the DECIDED batch
    // (possibly another node's) is what gets delivered.
    std::sort(fresh.begin(), fresh.end());
    std::string decided =
        consensus_->Decide(next_instance_++, EncodeBatch(fresh));
    for (const std::string& message : DecodeBatch(decided)) {
      if (already.insert(message).second) delivered_.push_back(message);
    }
  }
  return delivered_;
}

}  // namespace consensus40::core
