#include "shard/routing.h"

#include <algorithm>
#include <cstdlib>
#include <limits>

#include "smr/command.h"

namespace consensus40::shard {

namespace {

std::string HexU64(uint64_t v) {
  if (v == 0) return "0";
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  while (v != 0) {
    out.insert(out.begin(), kDigits[v & 0xf]);
    v >>= 4;
  }
  return out;
}

}  // namespace

RoutingTable RoutingTable::Initial(int shards) {
  RoutingTable t;
  t.entries_.clear();
  if (shards < 1) shards = 1;
  for (int i = 0; i < shards; ++i) {
    uint64_t lo = static_cast<uint64_t>(
        (static_cast<unsigned __int128>(i) << 64) / shards);
    t.entries_.push_back({lo, i});
  }
  return t;
}

int RoutingTable::GroupFor(uint64_t h) const {
  // Last entry with lo <= h.
  auto it = std::upper_bound(
      entries_.begin(), entries_.end(), h,
      [](uint64_t v, const Entry& e) { return v < e.lo; });
  return std::prev(it)->group;
}

int RoutingTable::GroupForKey(const std::string& key) const {
  return GroupFor(smr::KeyHash(key));
}

void RoutingTable::RangeFor(uint64_t h, uint64_t* lo, uint64_t* hi) const {
  auto it = std::upper_bound(
      entries_.begin(), entries_.end(), h,
      [](uint64_t v, const Entry& e) { return v < e.lo; });
  *hi = it == entries_.end() ? 0 : it->lo;
  *lo = std::prev(it)->lo;
}

bool RoutingTable::SoleOwner(uint64_t lo, uint64_t hi, int* owner) const {
  if (hi != 0 && hi <= lo) return false;
  int g = GroupFor(lo);
  for (const Entry& e : entries_) {
    if (e.lo > lo && (hi == 0 || e.lo < hi) && e.group != g) return false;
  }
  *owner = g;
  return true;
}

void RoutingTable::ApplyMove(uint64_t lo, uint64_t hi, int group) {
  // Group resuming at hi (the old owner of the hash just past the moved
  // range); irrelevant when the move runs to the end of the space.
  int after = hi == 0 ? -1 : GroupFor(hi);
  std::vector<Entry> next;
  for (const Entry& e : entries_) {
    if (e.lo < lo || (hi != 0 && e.lo >= hi)) next.push_back(e);
  }
  next.push_back({lo, group});
  if (hi != 0) next.push_back({hi, after});
  std::sort(next.begin(), next.end(),
            [](const Entry& a, const Entry& b) { return a.lo < b.lo; });
  // Normalize: collapse adjacent same-group ranges (this is what makes a
  // move back to the neighbour's owner a merge).
  entries_.clear();
  for (const Entry& e : next) {
    if (!entries_.empty() && entries_.back().group == e.group) continue;
    entries_.push_back(e);
  }
  ++epoch_;
}

std::string RoutingTable::Encode() const {
  std::string out = "e" + std::to_string(epoch_) + "|";
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (i != 0) out += ',';
    out += HexU64(entries_[i].lo);
    out += ':';
    out += std::to_string(entries_[i].group);
  }
  return out;
}

std::optional<RoutingTable> RoutingTable::Decode(const std::string& encoded) {
  if (encoded.empty() || encoded[0] != 'e') return std::nullopt;
  size_t bar = encoded.find('|');
  if (bar == std::string::npos) return std::nullopt;
  RoutingTable t;
  {
    char* end = nullptr;
    t.epoch_ = std::strtoull(encoded.c_str() + 1, &end, 10);
    if (end != encoded.c_str() + bar) return std::nullopt;
  }
  t.entries_.clear();
  size_t pos = bar + 1;
  while (pos < encoded.size()) {
    size_t colon = encoded.find(':', pos);
    if (colon == std::string::npos) return std::nullopt;
    size_t comma = encoded.find(',', colon);
    if (comma == std::string::npos) comma = encoded.size();
    Entry e;
    char* end = nullptr;
    e.lo = std::strtoull(encoded.c_str() + pos, &end, 16);
    if (end != encoded.c_str() + colon) return std::nullopt;
    // The group token must parse in full and be a non-negative int:
    // adopters index per-group arrays with it, so a torn or corrupt
    // record must fail decoding, not become an out-of-bounds access.
    const char* gbegin = encoded.c_str() + colon + 1;
    long group = std::strtol(gbegin, &end, 10);
    if (end == gbegin || end != encoded.c_str() + comma || group < 0 ||
        group > std::numeric_limits<int>::max()) {
      return std::nullopt;
    }
    e.group = static_cast<int>(group);
    t.entries_.push_back(e);
    pos = comma + 1;
  }
  if (t.entries_.empty() || t.entries_[0].lo != 0) return std::nullopt;
  for (size_t i = 1; i < t.entries_.size(); ++i) {
    if (t.entries_[i].lo <= t.entries_[i - 1].lo) return std::nullopt;
  }
  return t;
}

bool RoutingTable::MaybeAdopt(const RoutingTable& other) {
  if (other.epoch_ <= epoch_) return false;
  *this = other;
  return true;
}

bool RoutingTable::WithinGroups(int total_groups) const {
  for (const Entry& e : entries_) {
    if (e.group < 0 || e.group >= total_groups) return false;
  }
  return true;
}

std::string RoutingTable::RtKey(uint64_t epoch) {
  return "__rt." + std::to_string(epoch);
}

}  // namespace consensus40::shard
