#include "shard/shard.h"

#include <cassert>

#include "shard/reshard.h"
#include "smr/command.h"

namespace consensus40::shard {

namespace {

/// How often a frozen TM nudges the mover (stalled-move recovery) and
/// re-announces drain completion.
constexpr sim::Duration kNudgePeriod = 500 * sim::kMillisecond;

bool InRange(uint64_t h, uint64_t lo, uint64_t hi) {
  return h >= lo && (hi == 0 || h < hi);
}

}  // namespace

std::string DecisionKey(uint64_t tx_id) {
  return "__d." + std::to_string(tx_id);
}

std::string PrepareKey(uint64_t tx_id) {
  return "__p." + std::to_string(tx_id);
}

// ---------------------------------------------------------------------------
// TxManager
// ---------------------------------------------------------------------------

TxManager::TxManager(ShardedStateMachine* owner, int shard)
    : owner_(owner), shard_(shard), table_(owner->InitialTable()) {}

bool TxManager::KeyFrozen(const std::string& key) const {
  uint64_t h = ShardedStateMachine::HashKey(key);
  for (const auto& [id, f] : frozen_) {
    if (InRange(h, f.lo, f.hi)) return true;
  }
  return false;
}

void TxManager::NoteTxGone(uint64_t tx_id) {
  for (auto& [id, f] : frozen_) {
    if (f.draining.erase(tx_id) > 0 && f.draining.empty()) {
      f.drained_sent = true;
      auto m = std::make_shared<MoveDrainedMsg>();
      m->move_id = id;
      Send(f.mover, m);
    }
  }
}

void TxManager::OnMoveFreeze(sim::NodeId from, const MoveFreezeMsg& m) {
  FrozenRange& f = frozen_[m.move_id];
  f.lo = m.lo;
  f.hi = m.hi;
  f.mover = from;
  // In-flight transactions that must drain at the old owner: anything
  // still in the table with a write in the range. New arrivals are
  // refused from now on, so this set only shrinks. Recomputed on every
  // (re-)freeze — safe, since refusals keep new range-txs out of txs_.
  f.draining.clear();
  for (const auto& [tx_id, tx] : txs_) {
    for (const TxOp& op : tx.writes) {
      if (InRange(ShardedStateMachine::HashKey(op.key), m.lo, m.hi)) {
        f.draining.insert(tx_id);
        break;
      }
    }
  }
  if (f.nudge_timer == 0) ArmNudge(m.move_id);
  auto ack = std::make_shared<MoveFreezeAckMsg>();
  ack->move_id = m.move_id;
  ack->drained = f.draining.empty();
  Send(from, ack);
}

void TxManager::ArmNudge(const std::string& move_id) {
  auto it = frozen_.find(move_id);
  if (it == frozen_.end()) return;
  it->second.nudge_timer = SetTimer(kNudgePeriod, [this, move_id] {
    auto f = frozen_.find(move_id);
    if (f == frozen_.end()) return;
    // The nudge doubles as retransmission of the drained signal (the
    // raw TM<->mover messages have no other retry path) and as the
    // recovery trigger for a crashed-and-restarted mover: the mover
    // re-reads the move's claim/flip records and resumes the ladder.
    auto nudge = std::make_shared<MoveNudgeMsg>();
    nudge->move_id = move_id;
    Send(f->second.mover, nudge);
    if (f->second.draining.empty()) {
      auto drained = std::make_shared<MoveDrainedMsg>();
      drained->move_id = move_id;
      Send(f->second.mover, drained);
    }
    ArmNudge(move_id);
  });
}

void TxManager::OnMoveInstall(sim::NodeId from, const MoveInstallMsg& m) {
  std::optional<RoutingTable> t = RoutingTable::Decode(m.table);
  if (t.has_value() && t->WithinGroups(owner_->total_groups())) {
    if (!table_.MaybeAdopt(*t) && m.force && t->epoch() == table_.epoch()) {
      // A mover standing down at the flip pushes the ESTABLISHED table,
      // which replaces the same-epoch table its losing pre-flip install
      // taught us (epoch-gated adoption alone would keep the loser and
      // this TM would accept writes for a range it does not own).
      table_ = *t;
    }
  }
  auto ack = std::make_shared<MoveInstallAckMsg>();
  ack->move_id = m.move_id;
  Send(from, ack);
}

void TxManager::OnMoveUnfreeze(sim::NodeId from, const MoveUnfreezeMsg& m) {
  if (std::optional<RoutingTable> t = RoutingTable::Decode(m.table)) {
    if (t->WithinGroups(owner_->total_groups())) table_.MaybeAdopt(*t);
  }
  auto it = frozen_.find(m.move_id);
  if (it != frozen_.end()) {
    if (it->second.nudge_timer != 0) CancelTimer(it->second.nudge_timer);
    frozen_.erase(it);
  }
  auto ack = std::make_shared<MoveUnfreezeAckMsg>();
  ack->move_id = m.move_id;
  Send(from, ack);
}

void TxManager::Vote(uint64_t tx_id, const Tx& tx, bool yes) {
  auto vote = std::make_shared<TmVoteMsg>();
  vote->tx_id = tx_id;
  vote->shard = shard_;
  vote->yes = yes;
  Send(tx.coordinator, vote);
}

void TxManager::OnMessage(sim::NodeId from, const sim::Message& msg) {
  if (const auto* m = dynamic_cast<const TmPrepareMsg*>(&msg)) {
    auto it = txs_.find(m->tx_id);
    if (it != txs_.end()) {
      // Duplicate prepare (coordinator restarted or the vote was slow):
      // re-vote where a vote is already determined, otherwise let the
      // in-flight step answer when it lands.
      Tx& tx = it->second;
      tx.coordinator = from;
      if (tx.phase == Phase::kPrepared) Vote(m->tx_id, tx, true);
      return;
    }
    for (const TxOp& op : m->writes) {
      // Routing check: a key this TM's table assigns elsewhere means the
      // coordinator routed by a stale epoch — bounce with our table so
      // it can re-split the retry at the new owner. (A TM only ever
      // knows MORE than the coordinator about its own ranges: moves in
      // and out of this shard always teach this TM before unfreezing.)
      if (table_.GroupForKey(op.key) != shard_) {
        ++redirects_;
        auto redirect = std::make_shared<TmRedirectMsg>();
        redirect->tx_id = m->tx_id;
        redirect->table = table_.Encode();
        Send(from, redirect);
        return;
      }
    }
    for (const TxOp& op : m->writes) {
      // Mid-migration: the range is frozen while its data moves. Vote
      // NO — the transaction retries after the flip (it is never split
      // across epochs).
      if (KeyFrozen(op.key)) {
        Tx doomed;
        doomed.coordinator = from;
        Vote(m->tx_id, doomed, false);
        return;
      }
      auto lock = lock_table_.find(op.key);
      if (lock != lock_table_.end() && lock->second != m->tx_id) {
        // Conflict: vote NO without waiting (no deadlocks, ever). The
        // transaction is not recorded; a later re-prepare re-checks.
        Tx doomed;
        doomed.coordinator = from;
        Vote(m->tx_id, doomed, false);
        return;
      }
    }
    ++prepares_;
    Tx& tx = txs_[m->tx_id];
    tx.writes = m->writes;
    tx.coordinator = from;
    tx.one_phase = m->one_phase;
    for (const TxOp& op : tx.writes) lock_table_[op.key] = m->tx_id;
    if (m->one_phase) {
      // Sole participant: skip the prepare record and the decision key,
      // apply directly (the shard group's log is the only authority).
      tx.phase = Phase::kCommitting;
      tx.writes_outstanding = static_cast<int>(tx.writes.size());
      for (const TxOp& op : tx.writes) {
        uint64_t seq =
            owner_->shard_client(shard_)->Submit("PUT " + op.key + " " +
                                                 op.value);
        shard_seq_tx_[seq] = m->tx_id;
      }
      if (tx.writes_outstanding == 0) Finish(m->tx_id, true);
      return;
    }
    // Durable prepare: the vote only goes out once the prepare record is
    // committed in the shard's replicated log.
    uint64_t seq =
        owner_->shard_client(shard_)->Submit("PUT " + PrepareKey(m->tx_id) +
                                             " P");
    shard_seq_tx_[seq] = m->tx_id;
    return;
  }

  if (const auto* m = dynamic_cast<const TmDecisionMsg*>(&msg)) {
    ApplyDecision(m->tx_id, m->commit);
    return;
  }

  if (const auto* m = dynamic_cast<const MoveFreezeMsg*>(&msg)) {
    OnMoveFreeze(from, *m);
    return;
  }
  if (const auto* m = dynamic_cast<const MoveInstallMsg*>(&msg)) {
    OnMoveInstall(from, *m);
    return;
  }
  if (const auto* m = dynamic_cast<const MoveUnfreezeMsg*>(&msg)) {
    OnMoveUnfreeze(from, *m);
    return;
  }
  (void)from;
}

void TxManager::OnShardResult(uint64_t seq, const std::string& result) {
  if (crashed()) return;
  (void)result;
  auto seq_it = shard_seq_tx_.find(seq);
  if (seq_it == shard_seq_tx_.end()) return;
  uint64_t tx_id = seq_it->second;
  shard_seq_tx_.erase(seq_it);
  auto it = txs_.find(tx_id);
  if (it == txs_.end()) return;  // Aborted while the op was in flight.
  Tx& tx = it->second;
  if (tx.phase == Phase::kPreparing) {
    // Prepare record committed: vote YES and start the decision clock.
    tx.phase = Phase::kPrepared;
    Vote(tx_id, tx, true);
    tx.recovery_timer =
        SetTimer(owner_->options().recovery_timeout, [this, tx_id] {
          auto rec = txs_.find(tx_id);
          if (rec == txs_.end() || rec->second.phase != Phase::kPrepared) {
            return;
          }
          // Participant-driven termination (Gray & Lamport): a prepared
          // participant asks the decision group directly, proposing
          // ABORT. Whatever the group already holds wins.
          rec->second.phase = Phase::kRecovering;
          ++recoveries_;
          uint64_t rseq = owner_->tm_decision_client(shard_)->Submit(
              "SETNX " + DecisionKey(tx_id) + " A");
          decision_seq_tx_[rseq] = tx_id;
        });
    return;
  }
  if (tx.phase == Phase::kCommitting && --tx.writes_outstanding == 0) {
    Finish(tx_id, true);
  }
}

void TxManager::OnDecisionResult(uint64_t seq, const std::string& result) {
  if (crashed()) return;
  auto seq_it = decision_seq_tx_.find(seq);
  if (seq_it == decision_seq_tx_.end()) return;
  uint64_t tx_id = seq_it->second;
  decision_seq_tx_.erase(seq_it);
  auto it = txs_.find(tx_id);
  if (it == txs_.end() || it->second.phase != Phase::kRecovering) return;
  // "OK" = our abort proposal won; otherwise the established decision.
  ApplyDecision(tx_id, result == "C");
}

void TxManager::ApplyDecision(uint64_t tx_id, bool commit) {
  auto it = txs_.find(tx_id);
  if (it == txs_.end()) {
    // Already finished (or never prepared): ack so the coordinator can
    // garbage-collect.
    auto ack = std::make_shared<TmAckMsg>();
    ack->tx_id = tx_id;
    ack->shard = shard_;
    Send(owner_->coordinator_id(), ack);
    return;
  }
  Tx& tx = it->second;
  if (tx.phase == Phase::kCommitting) return;  // Duplicate decision.
  CancelTimer(tx.recovery_timer);
  if (!commit) {
    Finish(tx_id, false);
    return;
  }
  tx.phase = Phase::kCommitting;
  tx.writes_outstanding = static_cast<int>(tx.writes.size());
  for (const TxOp& op : tx.writes) {
    uint64_t seq =
        owner_->shard_client(shard_)->Submit("PUT " + op.key + " " + op.value);
    shard_seq_tx_[seq] = tx_id;
  }
  if (tx.writes_outstanding == 0) Finish(tx_id, true);
}

void TxManager::ReleaseLocks(uint64_t tx_id) {
  for (auto it = lock_table_.begin(); it != lock_table_.end();) {
    it = it->second == tx_id ? lock_table_.erase(it) : std::next(it);
  }
}

void TxManager::Finish(uint64_t tx_id, bool committed) {
  Tx& tx = txs_.at(tx_id);
  if (tx.one_phase) {
    // For one-phase transactions the vote doubles as the outcome.
    Vote(tx_id, tx, committed);
  } else {
    auto ack = std::make_shared<TmAckMsg>();
    ack->tx_id = tx_id;
    ack->shard = shard_;
    Send(tx.coordinator, ack);
  }
  ReleaseLocks(tx_id);
  txs_.erase(tx_id);
  NoteTxGone(tx_id);
}

// ---------------------------------------------------------------------------
// TxCoordinator
// ---------------------------------------------------------------------------

TxCoordinator::TxCoordinator(ShardedStateMachine* owner)
    : owner_(owner), table_(owner->InitialTable()) {}

void TxCoordinator::OnRestart() {
  // Everything here is volatile BY DESIGN: the decision group is the
  // only durable commit state. Clients re-submit; every step downstream
  // is idempotent. The routing cache resets to epoch 1 too — post-move
  // prepares routed by the stale table bounce off the TMs' redirects
  // and re-teach it.
  txs_.clear();
  decision_seq_tx_.clear();
  table_ = owner_->InitialTable();
}

void TxCoordinator::OnMessage(sim::NodeId from, const sim::Message& msg) {
  if (const auto* m = dynamic_cast<const BeginTxMsg*>(&msg)) {
    auto it = txs_.find(m->tx_id);
    if (it != txs_.end()) {
      it->second.client = from;
      if (it->second.decided) {
        Send(from,
             std::make_shared<TxOutcomeMsg>(m->tx_id, it->second.commit));
      }
      return;  // In flight: the outcome will be sent when decided.
    }
    ++started_;
    Tx& tx = txs_[m->tx_id];
    tx.client = from;
    for (const TxOp& op : m->ops) {
      tx.by_shard[table_.GroupForKey(op.key)].push_back(op);
    }
    tx.one_phase = tx.by_shard.size() == 1;
    for (const auto& [shard, writes] : tx.by_shard) {
      auto prep = std::make_shared<TmPrepareMsg>();
      prep->tx_id = m->tx_id;
      prep->one_phase = tx.one_phase;
      prep->writes = writes;
      Send(owner_->tm_id(shard), prep);
    }
    if (!tx.one_phase) {
      uint64_t tx_id = m->tx_id;
      tx.vote_timer = SetTimer(owner_->options().vote_timeout, [this, tx_id] {
        auto late = txs_.find(tx_id);
        if (late == txs_.end() || late->second.decided ||
            late->second.decision_pending) {
          return;
        }
        Decide(tx_id, false);  // A missing vote is a NO (presumed abort).
      });
    }
    return;
  }

  if (const auto* m = dynamic_cast<const TmVoteMsg*>(&msg)) {
    auto it = txs_.find(m->tx_id);
    if (it == txs_.end()) return;  // Forgotten (restart): client re-submits.
    Tx& tx = it->second;
    if (tx.decided || tx.decision_pending) return;
    if (tx.one_phase) {
      // The sole participant already applied (or refused) the
      // transaction; its vote IS the outcome.
      tx.decided = true;
      tx.commit = m->yes;
      (m->yes ? committed_ : aborted_)++;
      Send(tx.client, std::make_shared<TxOutcomeMsg>(m->tx_id, m->yes));
      txs_.erase(it);
      return;
    }
    if (!m->yes) {
      Decide(m->tx_id, false);
      return;
    }
    tx.yes_votes.insert(m->shard);
    if (tx.yes_votes.size() == tx.by_shard.size()) Decide(m->tx_id, true);
    return;
  }

  if (const auto* m = dynamic_cast<const TmAckMsg*>(&msg)) {
    auto it = txs_.find(m->tx_id);
    if (it == txs_.end()) return;
    it->second.acked.insert(m->shard);
    FinishIfAcked(m->tx_id);
    return;
  }

  if (const auto* m = dynamic_cast<const TmRedirectMsg*>(&msg)) {
    // A TM refused a key we routed to it: adopt its (newer) table, then
    // abort the transaction — never split it across routing epochs. The
    // client's retry re-splits against the adopted table.
    if (std::optional<RoutingTable> t = RoutingTable::Decode(m->table)) {
      if (t->WithinGroups(owner_->total_groups())) table_.MaybeAdopt(*t);
    }
    auto it = txs_.find(m->tx_id);
    if (it == txs_.end()) return;
    Tx& tx = it->second;
    if (tx.decided || tx.decision_pending) return;
    ++redirected_;
    if (tx.one_phase) {
      // The sole TM refused before recording anything: no prepare, no
      // locks, no decision record needed. Answer abort directly.
      if (tx.vote_timer != 0) CancelTimer(tx.vote_timer);
      tx.decided = true;
      tx.commit = false;
      ++aborted_;
      Send(tx.client, std::make_shared<TxOutcomeMsg>(m->tx_id, false));
      txs_.erase(it);
      return;
    }
    Decide(m->tx_id, false);
    return;
  }
  (void)from;
}

void TxCoordinator::Decide(uint64_t tx_id, bool commit) {
  Tx& tx = txs_.at(tx_id);
  CancelTimer(tx.vote_timer);
  tx.decision_pending = true;
  tx.commit = commit;
  // The decision is a write-once record in the DECISION GROUP's log —
  // this is the "commit decision as consensus log entry" core of the
  // design. SETNX: first proposal wins, later proposals read it back.
  uint64_t seq = owner_->coord_decision_client()->Submit(
      "SETNX " + DecisionKey(tx_id) + (commit ? " C" : " A"));
  decision_seq_tx_[seq] = tx_id;
}

void TxCoordinator::OnDecisionResult(uint64_t seq, const std::string& result) {
  if (crashed()) return;
  auto seq_it = decision_seq_tx_.find(seq);
  if (seq_it == decision_seq_tx_.end()) return;
  uint64_t tx_id = seq_it->second;
  decision_seq_tx_.erase(seq_it);
  auto it = txs_.find(tx_id);
  if (it == txs_.end()) return;
  Tx& tx = it->second;
  // "OK": our proposal was first. Anything else is the decision some
  // earlier proposer (us pre-restart, or a recovering TM) established.
  bool commit = result == "OK" ? tx.commit : result == "C";
  tx.commit = commit;
  tx.decided = true;
  tx.decision_pending = false;
  (commit ? committed_ : aborted_)++;
  for (const auto& [shard, writes] : tx.by_shard) {
    auto decision = std::make_shared<TmDecisionMsg>();
    decision->tx_id = tx_id;
    decision->commit = commit;
    Send(owner_->tm_id(shard), decision);
  }
  Send(tx.client, std::make_shared<TxOutcomeMsg>(tx_id, commit));
}

void TxCoordinator::FinishIfAcked(uint64_t tx_id) {
  auto it = txs_.find(tx_id);
  if (it == txs_.end() || !it->second.decided) return;
  if (it->second.acked.size() < it->second.by_shard.size()) return;
  txs_.erase(it);
}

// ---------------------------------------------------------------------------
// ShardedStateMachine
// ---------------------------------------------------------------------------

ShardedStateMachine::ShardedStateMachine(ShardOptions options)
    : options_(options),
      initial_table_(RoutingTable::Initial(options.shards)) {
  assert(options_.shards >= 1);
  assert(options_.spare_groups >= 0);
}

ShardedStateMachine::~ShardedStateMachine() = default;

uint64_t ShardedStateMachine::HashKey(const std::string& key) {
  // FNV-1a: deterministic across platforms/compilers (std::hash is not).
  return smr::KeyHash(key);
}

int ShardedStateMachine::ShardOf(const std::string& key) const {
  return initial_table_.GroupFor(HashKey(key));
}

sim::NodeId ShardedStateMachine::mover_id() const { return mover_->id(); }

std::string ShardedStateMachine::KeyForShard(int shard, int i) const {
  int found = 0;
  for (int n = 0;; ++n) {
    std::string key = "k" + std::to_string(n);
    if (ShardOf(key) == shard && found++ == i) return key;
  }
}

void ShardedStateMachine::Build(sim::Simulation* sim) {
  // Consensus nodes first, at a contiguous id range starting wherever
  // the simulation currently ends — fault bounds target this range.
  consensus::GroupTuning tuning;
  tuning.batch_size = options_.batch_size;
  tuning.batch_delay = options_.batch_delay;
  tuning.snapshot_threshold = options_.snapshot_threshold;
  for (int s = 0; s < total_groups(); ++s) {
    auto group = consensus::MakeGroup(options_.protocol);
    assert(group != nullptr && "unknown ReplicaGroup protocol");
    group->Configure(tuning);
    group->Create(sim, options_.replicas_per_shard);
    shard_groups_.push_back(std::move(group));
  }
  decision_group_ = consensus::MakeGroup(options_.protocol);
  assert(decision_group_ != nullptr);
  decision_group_->Configure(tuning);
  decision_group_->Create(sim, options_.decision_replicas);

  // Infrastructure processes, after every consensus node. Spare groups
  // get the same TM + clients as serving groups: they own ranges as
  // soon as a move flips to them.
  for (int s = 0; s < total_groups(); ++s) {
    tms_.push_back(sim->Spawn<TxManager>(this, s));
  }
  const sim::Duration client_retry = 300 * sim::kMillisecond;
  for (int s = 0; s < total_groups(); ++s) {
    consensus::GroupClient* client = sim->Spawn<consensus::GroupClient>(
        shard_groups_[s].get(), client_retry, options_.client_window);
    TxManager* tm = tms_[s];
    client->SetCallback(
        [tm](uint64_t seq, const std::string& result, bool /*read*/) {
          tm->OnShardResult(seq, result);
        });
    shard_clients_.push_back(client);
  }
  for (int s = 0; s < total_groups(); ++s) {
    consensus::GroupClient* client = sim->Spawn<consensus::GroupClient>(
        decision_group_.get(), client_retry, options_.client_window);
    TxManager* tm = tms_[s];
    client->SetCallback(
        [tm](uint64_t seq, const std::string& result, bool /*read*/) {
          tm->OnDecisionResult(seq, result);
        });
    tm_decision_clients_.push_back(client);
  }
  coordinator_ = sim->Spawn<TxCoordinator>(this);
  coord_decision_client_ = sim->Spawn<consensus::GroupClient>(
      decision_group_.get(), client_retry, options_.client_window);
  TxCoordinator* coordinator = coordinator_;
  coord_decision_client_->SetCallback(
      [coordinator](uint64_t seq, const std::string& result, bool /*read*/) {
        coordinator->OnDecisionResult(seq, result);
      });

  // The move coordinator, last — after the 2PC coordinator, so the
  // pre-resharding node-id layout (and the checker bounds pinned to it)
  // is unchanged. Its clients use window 1: the move ladder is strictly
  // sequential and relies on submission order.
  mover_ = sim->Spawn<ShardMover>(this);
  ShardMover* mover = mover_;
  for (int s = 0; s < total_groups(); ++s) {
    consensus::GroupClient* client = sim->Spawn<consensus::GroupClient>(
        shard_groups_[s].get(), client_retry, 1);
    int group = s;
    client->SetCallback(
        [mover, group](uint64_t seq, const std::string& result, bool) {
          mover->OnGroupResult(group, seq, result);
        });
    mover_group_clients_.push_back(client);
  }
  mover_decision_client_ = sim->Spawn<consensus::GroupClient>(
      decision_group_.get(), client_retry, 1);
  mover_decision_client_->SetCallback(
      [mover](uint64_t seq, const std::string& result, bool) {
        mover->OnDecisionResult(seq, result);
      });
}

std::vector<sim::NodeId> ShardedStateMachine::ConsensusNodes() const {
  std::vector<sim::NodeId> nodes;
  for (const auto& group : shard_groups_) {
    for (sim::NodeId id : group->members()) nodes.push_back(id);
  }
  for (sim::NodeId id : decision_group_->members()) nodes.push_back(id);
  return nodes;
}

void ShardedStateMachine::Probe() {
  for (const auto& group : shard_groups_) group->Probe();
  if (decision_group_ != nullptr) decision_group_->Probe();
}

std::vector<std::string> ShardedStateMachine::Violations() const {
  std::vector<std::string> all;
  for (int s = 0; s < static_cast<int>(shard_groups_.size()); ++s) {
    for (const std::string& v : shard_groups_[s]->Violations()) {
      all.push_back("shard " + std::to_string(s) + ": " + v);
    }
  }
  if (decision_group_ != nullptr) {
    for (const std::string& v : decision_group_->Violations()) {
      all.push_back("decision group: " + v);
    }
  }
  return all;
}

}  // namespace consensus40::shard
