#include "shard/shard.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>

#include "shard/reshard.h"
#include "smr/command.h"

namespace consensus40::shard {

namespace {

/// How often a frozen TM nudges the mover (stalled-move recovery) and
/// re-announces drain completion.
constexpr sim::Duration kNudgePeriod = 500 * sim::kMillisecond;

bool InRange(uint64_t h, uint64_t lo, uint64_t hi) {
  return h >= lo && (hi == 0 || h < hi);
}

}  // namespace

std::string DecisionKey(uint64_t tx_id) {
  return "__d." + std::to_string(tx_id);
}

std::string PrepareKey(uint64_t tx_id) {
  return "__p." + std::to_string(tx_id);
}

const char* TxAbortReasonName(TxAbortReason reason) {
  switch (reason) {
    case TxAbortReason::kNone:
      return "none";
    case TxAbortReason::kLockConflict:
      return "lock-conflict";
    case TxAbortReason::kFrozenRange:
      return "frozen-range";
    case TxAbortReason::kCasMismatch:
      return "cas-mismatch";
    case TxAbortReason::kMoved:
      return "moved";
    case TxAbortReason::kDecisionTimeout:
      return "decision-timeout";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// TxManager
// ---------------------------------------------------------------------------

TxManager::TxManager(ShardedStateMachine* owner, int shard)
    : owner_(owner), shard_(shard), table_(owner->InitialTable()) {}

bool TxManager::KeyFrozen(const std::string& key) const {
  uint64_t h = ShardedStateMachine::HashKey(key);
  for (const auto& [id, f] : frozen_) {
    if (InRange(h, f.lo, f.hi)) return true;
  }
  return false;
}

void TxManager::NoteTxGone(uint64_t tx_id) {
  for (auto& [id, f] : frozen_) {
    if (f.draining.erase(tx_id) > 0 && f.draining.empty()) {
      f.drained_sent = true;
      auto m = std::make_shared<MoveDrainedMsg>();
      m->move_id = id;
      Send(f.mover, m);
    }
  }
}

void TxManager::OnMoveFreeze(sim::NodeId from, const MoveFreezeMsg& m) {
  FrozenRange& f = frozen_[m.move_id];
  f.lo = m.lo;
  f.hi = m.hi;
  f.mover = from;
  // In-flight transactions that must drain at the old owner: anything
  // still in the table with a write in the range. New arrivals are
  // refused from now on, so this set only shrinks. Recomputed on every
  // (re-)freeze — safe, since refusals keep new range-txs out of txs_.
  f.draining.clear();
  for (const auto& [tx_id, tx] : txs_) {
    for (const TxShardOp& sop : tx.ops) {
      if (InRange(ShardedStateMachine::HashKey(sop.op.key), m.lo, m.hi)) {
        f.draining.insert(tx_id);
        break;
      }
    }
  }
  if (f.nudge_timer == 0) ArmNudge(m.move_id);
  auto ack = std::make_shared<MoveFreezeAckMsg>();
  ack->move_id = m.move_id;
  ack->drained = f.draining.empty();
  Send(from, ack);
}

void TxManager::ArmNudge(const std::string& move_id) {
  auto it = frozen_.find(move_id);
  if (it == frozen_.end()) return;
  it->second.nudge_timer = SetTimer(kNudgePeriod, [this, move_id] {
    auto f = frozen_.find(move_id);
    if (f == frozen_.end()) return;
    // The nudge doubles as retransmission of the drained signal (the
    // raw TM<->mover messages have no other retry path) and as the
    // recovery trigger for a crashed-and-restarted mover: the mover
    // re-reads the move's claim/flip records and resumes the ladder.
    auto nudge = std::make_shared<MoveNudgeMsg>();
    nudge->move_id = move_id;
    Send(f->second.mover, nudge);
    if (f->second.draining.empty()) {
      auto drained = std::make_shared<MoveDrainedMsg>();
      drained->move_id = move_id;
      Send(f->second.mover, drained);
    }
    ArmNudge(move_id);
  });
}

void TxManager::OnMoveInstall(sim::NodeId from, const MoveInstallMsg& m) {
  std::optional<RoutingTable> t = RoutingTable::Decode(m.table);
  if (t.has_value() && t->WithinGroups(owner_->total_groups())) {
    if (!table_.MaybeAdopt(*t) && m.force && t->epoch() == table_.epoch()) {
      // A mover standing down at the flip pushes the ESTABLISHED table,
      // which replaces the same-epoch table its losing pre-flip install
      // taught us (epoch-gated adoption alone would keep the loser and
      // this TM would accept writes for a range it does not own).
      table_ = *t;
    }
  }
  auto ack = std::make_shared<MoveInstallAckMsg>();
  ack->move_id = m.move_id;
  Send(from, ack);
}

void TxManager::OnMoveUnfreeze(sim::NodeId from, const MoveUnfreezeMsg& m) {
  if (std::optional<RoutingTable> t = RoutingTable::Decode(m.table)) {
    if (t->WithinGroups(owner_->total_groups())) table_.MaybeAdopt(*t);
  }
  auto it = frozen_.find(m.move_id);
  if (it != frozen_.end()) {
    if (it->second.nudge_timer != 0) CancelTimer(it->second.nudge_timer);
    frozen_.erase(it);
  }
  auto ack = std::make_shared<MoveUnfreezeAckMsg>();
  ack->move_id = m.move_id;
  Send(from, ack);
}

void TxManager::Vote(uint64_t tx_id, const Tx& tx, bool yes,
                     TxAbortReason reason) {
  auto vote = std::make_shared<TmVoteMsg>();
  vote->tx_id = tx_id;
  vote->shard = shard_;
  vote->yes = yes;
  vote->reason = reason;
  if (yes) vote->reads = tx.reads;
  Send(tx.coordinator, vote);
}

void TxManager::OnMessage(sim::NodeId from, const sim::Message& msg) {
  if (const auto* m = dynamic_cast<const TmPrepareMsg*>(&msg)) {
    auto it = txs_.find(m->tx_id);
    if (it != txs_.end()) {
      // Duplicate prepare (coordinator restarted or the vote was slow):
      // re-vote where a vote is already determined, otherwise let the
      // in-flight step answer when it lands.
      Tx& tx = it->second;
      tx.coordinator = from;
      if (tx.phase == Phase::kPrepared) Vote(m->tx_id, tx, true);
      return;
    }
    for (const TxShardOp& sop : m->ops) {
      // Routing check: a key this TM's table assigns elsewhere means the
      // coordinator routed by a stale epoch — bounce with our table so
      // it can re-split the retry at the new owner. (A TM only ever
      // knows MORE than the coordinator about its own ranges: moves in
      // and out of this shard always teach this TM before unfreezing.)
      if (table_.GroupForKey(sop.op.key) != shard_) {
        ++redirects_;
        auto redirect = std::make_shared<TmRedirectMsg>();
        redirect->tx_id = m->tx_id;
        redirect->table = table_.Encode();
        Send(from, redirect);
        return;
      }
    }
    for (const TxShardOp& sop : m->ops) {
      // Mid-migration: the range is frozen while its data moves. Vote
      // NO — the transaction retries after the flip (it is never split
      // across epochs).
      if (KeyFrozen(sop.op.key)) {
        Tx doomed;
        doomed.coordinator = from;
        Vote(m->tx_id, doomed, false, TxAbortReason::kFrozenRange);
        return;
      }
      // No-wait conflict check: writes need the key exclusive (no other
      // reader or writer), reads only refuse a foreign writer. Refused
      // transactions are not recorded; a later re-prepare re-checks.
      auto lock = lock_table_.find(sop.op.key);
      if (lock == lock_table_.end()) continue;
      const LockEntry& l = lock->second;
      bool conflict = l.exclusive != 0 && l.exclusive != m->tx_id;
      if (sop.op.IsWrite()) {
        for (uint64_t holder : l.shared) {
          if (holder != m->tx_id) conflict = true;
        }
      } else if (owner_->options().unsafe_no_read_locks) {
        conflict = false;  // OUT-OF-BOUNDS: reads ignore writers entirely.
      }
      if (conflict) {
        Tx doomed;
        doomed.coordinator = from;
        Vote(m->tx_id, doomed, false, TxAbortReason::kLockConflict);
        return;
      }
    }
    ++prepares_;
    Tx& tx = txs_[m->tx_id];
    tx.ops = m->ops;
    tx.coordinator = from;
    tx.one_phase = m->one_phase;
    for (const TxShardOp& sop : tx.ops) {
      if (sop.op.IsWrite()) {
        lock_table_[sop.op.key].exclusive = m->tx_id;
      } else if (!owner_->options().unsafe_no_read_locks) {
        lock_table_[sop.op.key].shared.insert(m->tx_id);
      }
    }
    // Ops that evaluate the stored value (GET, CAS) trigger one
    // read-index read per distinct key; the prepare continues in
    // EvaluateReads once they land. Locks are already held, so the
    // values are stable until the decision is applied. Blind-write
    // transactions skip straight ahead — no reads, no extra messages.
    std::set<std::string> read_keys;
    for (const TxShardOp& sop : tx.ops) {
      if (sop.op.NeedsRead()) read_keys.insert(sop.op.key);
    }
    if (read_keys.empty()) {
      for (const TxShardOp& sop : tx.ops) {
        tx.effects.push_back(sop.op.type == TxOp::Type::kDelete
                                 ? "DEL " + sop.op.key
                                 : "PUT " + sop.op.key + " " + sop.op.value);
      }
      Proceed(m->tx_id);
      return;
    }
    tx.reads_outstanding = static_cast<int>(read_keys.size());
    for (const std::string& key : read_keys) {
      uint64_t seq = owner_->shard_client(shard_)->Read(key);
      shard_read_seq_[seq] = {m->tx_id, key};
    }
    return;
  }

  if (const auto* m = dynamic_cast<const TmDecisionMsg*>(&msg)) {
    ApplyDecision(m->tx_id, m->commit);
    return;
  }

  if (const auto* m = dynamic_cast<const MoveFreezeMsg*>(&msg)) {
    OnMoveFreeze(from, *m);
    return;
  }
  if (const auto* m = dynamic_cast<const MoveInstallMsg*>(&msg)) {
    OnMoveInstall(from, *m);
    return;
  }
  if (const auto* m = dynamic_cast<const MoveUnfreezeMsg*>(&msg)) {
    OnMoveUnfreeze(from, *m);
    return;
  }
  (void)from;
}

void TxManager::OnShardResult(uint64_t seq, const std::string& result,
                              bool read) {
  if (crashed()) return;
  if (read) {
    // A prepare-time read landed.
    auto read_it = shard_read_seq_.find(seq);
    if (read_it == shard_read_seq_.end()) return;
    auto [read_tx, key] = read_it->second;
    shard_read_seq_.erase(read_it);
    auto tx_it = txs_.find(read_tx);
    if (tx_it == txs_.end()) return;  // Aborted while the read was in flight.
    tx_it->second.read_values[key] = result;
    if (--tx_it->second.reads_outstanding == 0) EvaluateReads(read_tx);
    return;
  }
  auto seq_it = shard_seq_tx_.find(seq);
  if (seq_it == shard_seq_tx_.end()) return;
  uint64_t tx_id = seq_it->second;
  shard_seq_tx_.erase(seq_it);
  auto it = txs_.find(tx_id);
  if (it == txs_.end()) return;  // Aborted while the op was in flight.
  Tx& tx = it->second;
  if (tx.phase == Phase::kPreparing) {
    // Prepare record committed: vote YES and start the decision clock.
    tx.phase = Phase::kPrepared;
    Vote(tx_id, tx, true);
    tx.recovery_timer =
        SetTimer(owner_->options().recovery_timeout, [this, tx_id] {
          auto rec = txs_.find(tx_id);
          if (rec == txs_.end() || rec->second.phase != Phase::kPrepared) {
            return;
          }
          // Participant-driven termination (Gray & Lamport): a prepared
          // participant asks the decision group directly, proposing
          // ABORT. Whatever the group already holds wins.
          rec->second.phase = Phase::kRecovering;
          ++recoveries_;
          uint64_t rseq = owner_->tm_decision_client(shard_)->Submit(
              "SETNX " + DecisionKey(tx_id) + " A");
          decision_seq_tx_[rseq] = tx_id;
        });
    return;
  }
  if (tx.phase == Phase::kCommitting && --tx.writes_outstanding == 0) {
    Finish(tx_id, true);
  }
}

void TxManager::EvaluateReads(uint64_t tx_id) {
  Tx& tx = txs_.at(tx_id);
  // A read bounced off the KV's routing fence: this TM's table was
  // stale in a way the prepare-time check could not see (e.g. a
  // restart dropped its adopted tables). Refuse; the retry re-routes.
  for (const auto& [key, value] : tx.read_values) {
    if (value.rfind("MOVED ", 0) == 0) {
      Refuse(tx_id, TxAbortReason::kMoved);
      return;
    }
  }
  // Evaluate ops in list order against the stored values, overlaying
  // this transaction's own earlier writes (read-your-writes). The
  // overlay never touches the KV: effects apply only on commit.
  std::map<std::string, std::optional<std::string>> overlay;
  auto current = [&](const std::string& key) -> std::optional<std::string> {
    auto ov = overlay.find(key);
    if (ov != overlay.end()) return ov->second;
    auto rv = tx.read_values.find(key);
    if (rv == tx.read_values.end() || rv->second == "NIL") return std::nullopt;
    return rv->second;
  };
  for (const TxShardOp& sop : tx.ops) {
    const TxOp& op = sop.op;
    switch (op.type) {
      case TxOp::Type::kGet: {
        std::optional<std::string> v = current(op.key);
        TxReadResult r;
        r.op_index = sop.index;
        r.found = v.has_value();
        if (v.has_value()) r.value = *v;
        tx.reads.push_back(r);
        break;
      }
      case TxOp::Type::kPut:
        overlay[op.key] = op.value;
        tx.effects.push_back("PUT " + op.key + " " + op.value);
        break;
      case TxOp::Type::kDelete:
        overlay[op.key] = std::nullopt;
        tx.effects.push_back("DEL " + op.key);
        break;
      case TxOp::Type::kCas: {
        std::optional<std::string> v = current(op.key);
        if (!v.has_value() || *v != op.expected) {
          Refuse(tx_id, TxAbortReason::kCasMismatch);
          return;
        }
        // Validated under the exclusive lock, which is held until the
        // decision applies — nothing else can write the key in between,
        // so the commit-time effect is a plain PUT.
        overlay[op.key] = op.value;
        tx.effects.push_back("PUT " + op.key + " " + op.value);
        break;
      }
    }
  }
  Proceed(tx_id);
}

void TxManager::Proceed(uint64_t tx_id) {
  Tx& tx = txs_.at(tx_id);
  if (tx.one_phase) {
    // Sole participant: skip the prepare record and the decision key,
    // apply directly (the shard group's log is the only authority).
    tx.phase = Phase::kCommitting;
    tx.writes_outstanding = static_cast<int>(tx.effects.size());
    for (const std::string& cmd : tx.effects) {
      uint64_t seq = owner_->shard_client(shard_)->Submit(cmd);
      shard_seq_tx_[seq] = tx_id;
    }
    if (tx.writes_outstanding == 0) Finish(tx_id, true);
    return;
  }
  // Durable prepare: the vote only goes out once the prepare record is
  // committed in the shard's replicated log.
  uint64_t seq =
      owner_->shard_client(shard_)->Submit("PUT " + PrepareKey(tx_id) + " P");
  shard_seq_tx_[seq] = tx_id;
}

void TxManager::Refuse(uint64_t tx_id, TxAbortReason reason) {
  auto it = txs_.find(tx_id);
  if (it == txs_.end()) return;
  Vote(tx_id, it->second, false, reason);
  ReleaseLocks(tx_id);
  txs_.erase(it);
  NoteTxGone(tx_id);
}

void TxManager::OnDecisionResult(uint64_t seq, const std::string& result) {
  if (crashed()) return;
  auto seq_it = decision_seq_tx_.find(seq);
  if (seq_it == decision_seq_tx_.end()) return;
  uint64_t tx_id = seq_it->second;
  decision_seq_tx_.erase(seq_it);
  auto it = txs_.find(tx_id);
  if (it == txs_.end() || it->second.phase != Phase::kRecovering) return;
  // "OK" = our abort proposal won; otherwise the established decision.
  ApplyDecision(tx_id, result == "C");
}

void TxManager::ApplyDecision(uint64_t tx_id, bool commit) {
  auto it = txs_.find(tx_id);
  if (it == txs_.end()) {
    // Already finished (or never prepared): ack so the coordinator can
    // garbage-collect.
    auto ack = std::make_shared<TmAckMsg>();
    ack->tx_id = tx_id;
    ack->shard = shard_;
    Send(owner_->coordinator_id(), ack);
    return;
  }
  Tx& tx = it->second;
  if (tx.phase == Phase::kCommitting) return;  // Duplicate decision.
  CancelTimer(tx.recovery_timer);
  if (!commit) {
    Finish(tx_id, false);
    return;
  }
  tx.phase = Phase::kCommitting;
  tx.writes_outstanding = static_cast<int>(tx.effects.size());
  for (const std::string& cmd : tx.effects) {
    uint64_t seq = owner_->shard_client(shard_)->Submit(cmd);
    shard_seq_tx_[seq] = tx_id;
  }
  if (tx.writes_outstanding == 0) Finish(tx_id, true);
}

void TxManager::ReleaseLocks(uint64_t tx_id) {
  for (auto it = lock_table_.begin(); it != lock_table_.end();) {
    LockEntry& l = it->second;
    if (l.exclusive == tx_id) l.exclusive = 0;
    l.shared.erase(tx_id);
    it = (l.exclusive == 0 && l.shared.empty()) ? lock_table_.erase(it)
                                                : std::next(it);
  }
}

void TxManager::Finish(uint64_t tx_id, bool committed) {
  Tx& tx = txs_.at(tx_id);
  if (tx.one_phase) {
    // For one-phase transactions the vote doubles as the outcome.
    Vote(tx_id, tx, committed);
  } else {
    auto ack = std::make_shared<TmAckMsg>();
    ack->tx_id = tx_id;
    ack->shard = shard_;
    Send(tx.coordinator, ack);
  }
  ReleaseLocks(tx_id);
  txs_.erase(tx_id);
  NoteTxGone(tx_id);
}

// ---------------------------------------------------------------------------
// TxCoordinator
// ---------------------------------------------------------------------------

TxCoordinator::TxCoordinator(ShardedStateMachine* owner)
    : owner_(owner), table_(owner->InitialTable()) {}

void TxCoordinator::OnRestart() {
  // Everything here is volatile BY DESIGN: the decision group is the
  // only durable commit state. Clients re-submit; every step downstream
  // is idempotent. The routing cache resets to epoch 1 too — post-move
  // prepares routed by the stale table bounce off the TMs' redirects
  // and re-teach it.
  txs_.clear();
  decision_seq_tx_.clear();
  snapshot_seq_.clear();
  rt_seq_epoch_.clear();
  rt_epochs_inflight_.clear();
  parked_snapshots_.clear();
  table_ = owner_->InitialTable();
}

void TxCoordinator::OnMessage(sim::NodeId from, const sim::Message& msg) {
  if (const auto* m = dynamic_cast<const BeginTxMsg*>(&msg)) {
    auto it = txs_.find(m->tx_id);
    if (it != txs_.end()) {
      it->second.client = from;
      if (it->second.decided) {
        auto out = std::make_shared<TxOutcomeMsg>(m->tx_id, it->second.commit);
        out->reason = it->second.reason;
        out->reads = it->second.reads;
        Send(from, out);
      }
      return;  // In flight: the outcome will be sent when decided.
    }
    ++started_;
    Tx& tx = txs_[m->tx_id];
    tx.client = from;
    tx.ops = m->ops;
    // All-GET transactions take the lock-free snapshot path: no
    // participant, no lock, no prepare or decision record.
    bool all_reads = !m->ops.empty();
    for (const TxOp& op : m->ops) {
      if (op.type != TxOp::Type::kGet) all_reads = false;
    }
    if (all_reads) {
      tx.snapshot = true;
      StartSnapshot(m->tx_id);
      return;
    }
    bool has_cas = false;
    for (int i = 0; i < static_cast<int>(m->ops.size()); ++i) {
      has_cas = has_cas || m->ops[i].type == TxOp::Type::kCas;
      tx.by_shard[table_.GroupForKey(m->ops[i].key)].push_back(
          TxShardOp{i, m->ops[i]});
    }
    // One-phase is only sound for transactions whose re-execution cannot
    // flip the verdict: a re-submitted, already-committed CAS re-evaluates
    // against post-commit state (its own write included), mismatches, and
    // would report a false ABORT for an applied transaction. CAS therefore
    // always takes the decision-record path — the established "C" record
    // makes any re-run converge on the committed outcome.
    tx.one_phase = tx.by_shard.size() == 1 && !has_cas;
    for (const auto& [shard, ops] : tx.by_shard) {
      auto prep = std::make_shared<TmPrepareMsg>();
      prep->tx_id = m->tx_id;
      prep->one_phase = tx.one_phase;
      prep->ops = ops;
      Send(owner_->tm_id(shard), prep);
    }
    if (!tx.one_phase) {
      uint64_t tx_id = m->tx_id;
      tx.vote_timer = SetTimer(owner_->options().vote_timeout, [this, tx_id] {
        auto late = txs_.find(tx_id);
        if (late == txs_.end() || late->second.decided ||
            late->second.decision_pending) {
          return;
        }
        // A missing vote is a NO (presumed abort).
        Decide(tx_id, false, TxAbortReason::kDecisionTimeout);
      });
    }
    return;
  }

  if (const auto* m = dynamic_cast<const TmVoteMsg*>(&msg)) {
    auto it = txs_.find(m->tx_id);
    if (it == txs_.end()) return;  // Forgotten (restart): client re-submits.
    Tx& tx = it->second;
    if (tx.decided || tx.decision_pending) return;
    if (tx.one_phase) {
      // The sole participant already applied (or refused) the
      // transaction; its vote IS the outcome.
      tx.decided = true;
      tx.commit = m->yes;
      tx.reason = m->reason;
      tx.reads = m->reads;
      (m->yes ? committed_ : aborted_)++;
      auto out = std::make_shared<TxOutcomeMsg>(m->tx_id, m->yes);
      out->reason = m->reason;
      out->reads = m->reads;
      Send(tx.client, out);
      txs_.erase(it);
      return;
    }
    if (!m->yes) {
      Decide(m->tx_id, false, m->reason);
      return;
    }
    if (tx.yes_votes.insert(m->shard).second) {
      // First YES from this shard: merge its read results (a re-vote
      // after a duplicate prepare must not double them).
      for (const TxReadResult& r : m->reads) tx.reads.push_back(r);
    }
    if (tx.yes_votes.size() == tx.by_shard.size()) {
      Decide(m->tx_id, true, TxAbortReason::kNone);
    }
    return;
  }

  if (const auto* m = dynamic_cast<const TmAckMsg*>(&msg)) {
    auto it = txs_.find(m->tx_id);
    if (it == txs_.end()) return;
    it->second.acked.insert(m->shard);
    FinishIfAcked(m->tx_id);
    return;
  }

  if (const auto* m = dynamic_cast<const TmRedirectMsg*>(&msg)) {
    // A TM refused a key we routed to it: adopt its (newer) table, then
    // abort the transaction — never split it across routing epochs. The
    // client's retry re-splits against the adopted table.
    if (std::optional<RoutingTable> t = RoutingTable::Decode(m->table)) {
      if (t->WithinGroups(owner_->total_groups())) table_.MaybeAdopt(*t);
    }
    auto it = txs_.find(m->tx_id);
    if (it == txs_.end()) return;
    Tx& tx = it->second;
    if (tx.decided || tx.decision_pending) return;
    ++redirected_;
    if (tx.one_phase) {
      // The sole TM refused before recording anything: no prepare, no
      // locks, no decision record needed. Answer abort directly.
      if (tx.vote_timer != 0) CancelTimer(tx.vote_timer);
      tx.decided = true;
      tx.commit = false;
      tx.reason = TxAbortReason::kMoved;
      ++aborted_;
      auto out = std::make_shared<TxOutcomeMsg>(m->tx_id, false);
      out->reason = TxAbortReason::kMoved;
      Send(tx.client, out);
      txs_.erase(it);
      return;
    }
    Decide(m->tx_id, false, TxAbortReason::kMoved);
    return;
  }
  (void)from;
}

void TxCoordinator::Decide(uint64_t tx_id, bool commit, TxAbortReason reason) {
  Tx& tx = txs_.at(tx_id);
  CancelTimer(tx.vote_timer);
  tx.decision_pending = true;
  tx.commit = commit;
  tx.reason = reason;
  // The decision is a write-once record in the DECISION GROUP's log —
  // this is the "commit decision as consensus log entry" core of the
  // design. SETNX: first proposal wins, later proposals read it back.
  uint64_t seq = owner_->coord_decision_client()->Submit(
      "SETNX " + DecisionKey(tx_id) + (commit ? " C" : " A"));
  decision_seq_tx_[seq] = tx_id;
}

void TxCoordinator::OnDecisionResult(uint64_t seq, const std::string& result) {
  if (crashed()) return;
  auto rt_it = rt_seq_epoch_.find(seq);
  if (rt_it != rt_seq_epoch_.end()) {
    // A routing-table fetch for the snapshot path came back.
    uint64_t epoch = rt_it->second;
    rt_seq_epoch_.erase(rt_it);
    rt_epochs_inflight_.erase(epoch);
    std::optional<RoutingTable> t = RoutingTable::Decode(result);
    if (t.has_value() && t->WithinGroups(owner_->total_groups())) {
      table_.MaybeAdopt(*t);
      RestartParkedSnapshots();
      return;
    }
    if (parked_snapshots_.empty()) return;
    // The record was not readable yet (e.g. a laggard served NIL):
    // re-fetch after a beat — unless a redirect taught us a newer table
    // in the meantime, in which case the parked snapshots can just run.
    SetTimer(300 * sim::kMillisecond, [this, epoch] {
      if (parked_snapshots_.empty()) return;
      if (table_.epoch() >= epoch) {
        RestartParkedSnapshots();
      } else {
        FetchTable(epoch);
      }
    });
    return;
  }
  auto seq_it = decision_seq_tx_.find(seq);
  if (seq_it == decision_seq_tx_.end()) return;
  uint64_t tx_id = seq_it->second;
  decision_seq_tx_.erase(seq_it);
  auto it = txs_.find(tx_id);
  if (it == txs_.end()) return;
  Tx& tx = it->second;
  // "OK": our proposal was first. Anything else is the decision some
  // earlier proposer (us pre-restart, or a recovering TM) established.
  bool commit = result == "OK" ? tx.commit : result == "C";
  if (result != "OK" && commit != tx.commit) {
    // An earlier proposer's decision overrode ours; our reason is
    // fiction now. A foreign ABORT can only come from a recovering TM.
    tx.reason = commit ? TxAbortReason::kNone : TxAbortReason::kDecisionTimeout;
  }
  tx.commit = commit;
  tx.decided = true;
  tx.decision_pending = false;
  (commit ? committed_ : aborted_)++;
  for (const auto& [shard, ops] : tx.by_shard) {
    auto decision = std::make_shared<TmDecisionMsg>();
    decision->tx_id = tx_id;
    decision->commit = commit;
    Send(owner_->tm_id(shard), decision);
  }
  auto out = std::make_shared<TxOutcomeMsg>(tx_id, commit);
  if (commit && result != "OK") {
    // The decision record pre-existed (a re-run of a transaction some
    // earlier incarnation already committed). This attempt's reads were
    // re-evaluated against POST-commit state — including the
    // transaction's own writes — so they are not the committed reads.
    // Drop them; the outcome still reports the commit.
    tx.reads.clear();
  }
  if (commit) {
    std::sort(tx.reads.begin(), tx.reads.end(),
              [](const TxReadResult& a, const TxReadResult& b) {
                return a.op_index < b.op_index;
              });
    out->reads = tx.reads;
  } else {
    tx.reads.clear();  // Abort: no reads were decided.
    out->reason = tx.reason;
  }
  Send(tx.client, out);
}

void TxCoordinator::FinishIfAcked(uint64_t tx_id) {
  auto it = txs_.find(tx_id);
  if (it == txs_.end() || !it->second.decided) return;
  if (it->second.acked.size() < it->second.by_shard.size()) return;
  txs_.erase(it);
}

// --- Snapshot path -----------------------------------------------------

void TxCoordinator::StartSnapshot(uint64_t tx_id) {
  Tx& tx = txs_.at(tx_id);
  // Invalidate any reads of a previous attempt: their results must not
  // mix with the new epoch's (that mix is exactly a torn snapshot).
  for (auto it = snapshot_seq_.begin(); it != snapshot_seq_.end();) {
    it = it->second.first == tx_id ? snapshot_seq_.erase(it) : std::next(it);
  }
  parked_snapshots_.erase(tx_id);
  tx.reads.clear();
  tx.snapshot_epoch = table_.epoch();
  tx.reads_outstanding = static_cast<int>(tx.ops.size());
  for (int i = 0; i < static_cast<int>(tx.ops.size()); ++i) {
    int group = table_.GroupForKey(tx.ops[i].key);
    uint64_t seq = owner_->snapshot_client(group)->Read(tx.ops[i].key);
    snapshot_seq_[{group, seq}] = {tx_id, i};
  }
}

void TxCoordinator::OnSnapshotResult(int group, uint64_t seq,
                                     const std::string& result) {
  if (crashed()) return;
  auto it = snapshot_seq_.find({group, seq});
  if (it == snapshot_seq_.end()) return;  // Stale attempt or restarted tx.
  auto [tx_id, op_index] = it->second;
  snapshot_seq_.erase(it);
  auto tx_it = txs_.find(tx_id);
  if (tx_it == txs_.end()) return;
  Tx& tx = tx_it->second;
  if (result.rfind("MOVED ", 0) == 0) {
    OnSnapshotMoved(tx_id, std::strtoull(result.c_str() + 6, nullptr, 10));
    return;
  }
  TxReadResult r;
  r.op_index = op_index;
  r.found = result != "NIL";
  if (r.found) r.value = result;
  tx.reads.push_back(r);
  if (--tx.reads_outstanding == 0) FinishSnapshot(tx_id);
}

void TxCoordinator::OnSnapshotMoved(uint64_t tx_id, uint64_t epoch) {
  auto it = txs_.find(tx_id);
  if (it == txs_.end()) return;
  ++snapshot_restarts_;
  if (table_.epoch() >= epoch) {
    // A redirect (or an earlier fetch) already taught us a table at
    // least as new as the fence: re-split and re-read immediately.
    StartSnapshot(tx_id);
    return;
  }
  parked_snapshots_.insert(tx_id);
  FetchTable(epoch);
}

void TxCoordinator::FetchTable(uint64_t epoch) {
  if (epoch <= table_.epoch()) return;
  if (!rt_epochs_inflight_.insert(epoch).second) return;
  uint64_t seq = owner_->coord_decision_client()->Read(
      "__rt." + std::to_string(epoch));
  rt_seq_epoch_[seq] = epoch;
}

void TxCoordinator::RestartParkedSnapshots() {
  std::set<uint64_t> parked;
  parked.swap(parked_snapshots_);
  for (uint64_t tx_id : parked) {
    if (txs_.count(tx_id) > 0) StartSnapshot(tx_id);
  }
}

void TxCoordinator::FinishSnapshot(uint64_t tx_id) {
  Tx& tx = txs_.at(tx_id);
  std::sort(tx.reads.begin(), tx.reads.end(),
            [](const TxReadResult& a, const TxReadResult& b) {
              return a.op_index < b.op_index;
            });
  ++snapshots_;
  auto out = std::make_shared<TxOutcomeMsg>(tx_id, true);
  out->reads = tx.reads;
  out->snapshot_epoch = tx.snapshot_epoch;
  Send(tx.client, out);
  // Forget the tx outright: a re-submitted snapshot simply runs again
  // (read-only, so re-running is harmless).
  txs_.erase(tx_id);
}

// ---------------------------------------------------------------------------
// ShardedStateMachine
// ---------------------------------------------------------------------------

ShardedStateMachine::ShardedStateMachine(ShardOptions options)
    : options_(options),
      initial_table_(RoutingTable::Initial(options.shards)) {
  assert(options_.shards >= 1);
  assert(options_.spare_groups >= 0);
}

ShardedStateMachine::~ShardedStateMachine() = default;

uint64_t ShardedStateMachine::HashKey(const std::string& key) {
  // FNV-1a: deterministic across platforms/compilers (std::hash is not).
  return smr::KeyHash(key);
}

int ShardedStateMachine::ShardOf(const std::string& key) const {
  return initial_table_.GroupFor(HashKey(key));
}

sim::NodeId ShardedStateMachine::mover_id() const { return mover_->id(); }

std::string ShardedStateMachine::KeyForShard(int shard, int i) const {
  int found = 0;
  for (int n = 0;; ++n) {
    std::string key = "k" + std::to_string(n);
    if (ShardOf(key) == shard && found++ == i) return key;
  }
}

void ShardedStateMachine::Build(sim::Simulation* sim) {
  sim_ = sim;  // Kept for the lazily spawned snapshot readers.
  // Consensus nodes first, at a contiguous id range starting wherever
  // the simulation currently ends — fault bounds target this range.
  consensus::GroupTuning tuning;
  tuning.batch_size = options_.batch_size;
  tuning.batch_delay = options_.batch_delay;
  tuning.snapshot_threshold = options_.snapshot_threshold;
  for (int s = 0; s < total_groups(); ++s) {
    auto group = consensus::MakeGroup(options_.protocol);
    assert(group != nullptr && "unknown ReplicaGroup protocol");
    group->Configure(tuning);
    group->Create(sim, options_.replicas_per_shard);
    shard_groups_.push_back(std::move(group));
  }
  decision_group_ = consensus::MakeGroup(options_.protocol);
  assert(decision_group_ != nullptr);
  decision_group_->Configure(tuning);
  decision_group_->Create(sim, options_.decision_replicas);

  // Infrastructure processes, after every consensus node. Spare groups
  // get the same TM + clients as serving groups: they own ranges as
  // soon as a move flips to them.
  for (int s = 0; s < total_groups(); ++s) {
    tms_.push_back(sim->Spawn<TxManager>(this, s));
  }
  const sim::Duration client_retry = 300 * sim::kMillisecond;
  for (int s = 0; s < total_groups(); ++s) {
    consensus::GroupClient* client = sim->Spawn<consensus::GroupClient>(
        shard_groups_[s].get(), client_retry, options_.client_window);
    TxManager* tm = tms_[s];
    client->SetCallback(
        [tm](uint64_t seq, const std::string& result, bool read) {
          tm->OnShardResult(seq, result, read);
        });
    shard_clients_.push_back(client);
  }
  for (int s = 0; s < total_groups(); ++s) {
    consensus::GroupClient* client = sim->Spawn<consensus::GroupClient>(
        decision_group_.get(), client_retry, options_.client_window);
    TxManager* tm = tms_[s];
    client->SetCallback(
        [tm](uint64_t seq, const std::string& result, bool /*read*/) {
          tm->OnDecisionResult(seq, result);
        });
    tm_decision_clients_.push_back(client);
  }
  coordinator_ = sim->Spawn<TxCoordinator>(this);
  coord_decision_client_ = sim->Spawn<consensus::GroupClient>(
      decision_group_.get(), client_retry, options_.client_window);
  TxCoordinator* coordinator = coordinator_;
  coord_decision_client_->SetCallback(
      [coordinator](uint64_t seq, const std::string& result, bool /*read*/) {
        coordinator->OnDecisionResult(seq, result);
      });

  // The move coordinator, last — after the 2PC coordinator, so the
  // pre-resharding node-id layout (and the checker bounds pinned to it)
  // is unchanged. Its clients use window 1: the move ladder is strictly
  // sequential and relies on submission order.
  mover_ = sim->Spawn<ShardMover>(this);
  ShardMover* mover = mover_;
  for (int s = 0; s < total_groups(); ++s) {
    consensus::GroupClient* client = sim->Spawn<consensus::GroupClient>(
        shard_groups_[s].get(), client_retry, 1);
    int group = s;
    client->SetCallback(
        [mover, group](uint64_t seq, const std::string& result, bool) {
          mover->OnGroupResult(group, seq, result);
        });
    mover_group_clients_.push_back(client);
  }
  mover_decision_client_ = sim->Spawn<consensus::GroupClient>(
      decision_group_.get(), client_retry, 1);
  mover_decision_client_->SetCallback(
      [mover](uint64_t seq, const std::string& result, bool) {
        mover->OnDecisionResult(seq, result);
      });
}

consensus::GroupClient* ShardedStateMachine::snapshot_client(int group) {
  // Lazy spawn, first snapshot read only: Spawn forks the root rng and
  // shifts every subsequent delay draw, so eagerly spawning readers in
  // Build would perturb ALL runs — including ones that never issue a
  // read-only transaction — and break pinned fault-schedule repros.
  // GroupClient has no OnStart, so a mid-run spawn needs no start call.
  if (snapshot_clients_.empty()) {
    snapshot_clients_.resize(static_cast<size_t>(total_groups()), nullptr);
  }
  if (snapshot_clients_[group] == nullptr) {
    consensus::GroupClient* client = sim_->Spawn<consensus::GroupClient>(
        shard_groups_[group].get(), 300 * sim::kMillisecond,
        options_.client_window);
    TxCoordinator* coordinator = coordinator_;
    client->SetCallback(
        [coordinator, group](uint64_t seq, const std::string& result, bool) {
          coordinator->OnSnapshotResult(group, seq, result);
        });
    snapshot_clients_[group] = client;
  }
  return snapshot_clients_[group];
}

std::vector<sim::NodeId> ShardedStateMachine::ConsensusNodes() const {
  std::vector<sim::NodeId> nodes;
  for (const auto& group : shard_groups_) {
    for (sim::NodeId id : group->members()) nodes.push_back(id);
  }
  for (sim::NodeId id : decision_group_->members()) nodes.push_back(id);
  return nodes;
}

void ShardedStateMachine::Probe() {
  for (const auto& group : shard_groups_) group->Probe();
  if (decision_group_ != nullptr) decision_group_->Probe();
}

std::vector<std::string> ShardedStateMachine::Violations() const {
  std::vector<std::string> all;
  for (int s = 0; s < static_cast<int>(shard_groups_.size()); ++s) {
    for (const std::string& v : shard_groups_[s]->Violations()) {
      all.push_back("shard " + std::to_string(s) + ": " + v);
    }
  }
  if (decision_group_ != nullptr) {
    for (const std::string& v : decision_group_->Violations()) {
      all.push_back("decision group: " + v);
    }
  }
  return all;
}

}  // namespace consensus40::shard
