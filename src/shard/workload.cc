#include "shard/workload.h"

#include "shard/routing.h"

namespace consensus40::shard {

namespace {

/// Backoff before re-fetching a routing table the decision group does
/// not hold yet (fence observed before the flip record committed).
constexpr sim::Duration kRtRetry = 100 * sim::kMillisecond;

}  // namespace

WorkloadDriver::WorkloadDriver(ShardedStateMachine* ssm,
                               WorkloadOptions options,
                               std::vector<consensus::GroupClient*> readers,
                               consensus::GroupClient* rt_reader)
    : ssm_(ssm),
      options_(options),
      readers_(std::move(readers)),
      rt_reader_(rt_reader),
      table_(ssm->InitialTable()) {}

void WorkloadDriver::OnStart() {
  int initial = options_.concurrency < options_.ops ? options_.concurrency
                                                    : options_.ops;
  for (int i = 0; i < initial; ++i) IssueNext();
}

std::string WorkloadDriver::RandomKey(int space) {
  return "k" + std::to_string(rng().NextBounded(
                   static_cast<uint64_t>(space > 0 ? space : 1)));
}

void WorkloadDriver::IssueNext() {
  if (issued_ >= options_.ops) return;
  ++issued_;
  if (rng().NextDouble() < options_.read_fraction) {
    // The snapshot draw only happens when the knob is on, so runs with
    // the historical options replay bit-identically.
    if (options_.snapshot_fraction > 0 &&
        rng().NextDouble() < options_.snapshot_fraction) {
      IssueSnapshot();
    } else {
      IssueRead();
    }
    return;
  }
  bool cross = ssm_->options().shards > 1 &&
               rng().NextDouble() < options_.cross_shard_fraction;
  IssueTx(cross);
}

void WorkloadDriver::IssueRead() {
  ++stats_.reads.issued;
  SendRead(RandomKey(options_.key_space), Now());
}

void WorkloadDriver::SendRead(const std::string& key, sim::Time start) {
  int group = table_.GroupForKey(key);
  uint64_t seq = readers_[static_cast<size_t>(group)]->Read(key);
  pending_reads_[{group, seq}] = PendingRead{key, start};
}

std::string WorkloadDriver::MakeValue(uint64_t tx_id) {
  std::string value = "v" + std::to_string(tx_id);
  if (options_.value_dist == WorkloadOptions::ValueDist::kDefault) {
    return value;  // No rng draw: pre-existing runs replay bit-identically.
  }
  constexpr size_t kMaxValue = 1 << 20;
  size_t max = options_.value_size < kMaxValue ? options_.value_size
                                               : kMaxValue;
  size_t min = options_.value_size_min < max ? options_.value_size_min : max;
  size_t target = max;
  switch (options_.value_dist) {
    case WorkloadOptions::ValueDist::kDefault:
    case WorkloadOptions::ValueDist::kFixed:
      break;
    case WorkloadOptions::ValueDist::kUniform:
      target = min + rng().NextBounded(max - min + 1);
      break;
    case WorkloadOptions::ValueDist::kZipf: {
      // Bounded Pareto (alpha = 1): inverse-transform of
      // P(X > x) ~ 1/x truncated to [min, max]. Most draws land near
      // min; the tail reaches max — the mixed small/large regime an
      // adaptive replication path has to get right.
      double u = rng().NextDouble();
      double lo = static_cast<double>(min > 0 ? min : 1);
      double hi = static_cast<double>(max > 0 ? max : 1);
      double x = (hi * lo) / (hi - u * (hi - lo));
      target = static_cast<size_t>(x);
      if (target < min) target = min;
      if (target > max) target = max;
      break;
    }
  }
  // Keep the unique id prefix (atomicity checkers match writers by
  // value) and pad deterministically to the drawn size.
  value += ".";
  if (value.size() < target) {
    value.append(target - value.size(),
                 static_cast<char>('a' + tx_id % 26));
  }
  return value;
}

void WorkloadDriver::IssueTx(bool cross) {
  uint64_t tx_id = ++next_tx_;
  PendingTx& tx = pending_txs_[tx_id];
  tx.cross = cross;
  tx.start = Now();
  std::string value = MakeValue(tx_id);
  std::string k1 = RandomKey(options_.write_space);
  tx.ops.push_back(TxOp{k1, value});
  if (cross) {
    // A second key on a different group (per the driver's current routing
    // view); bounded probing keeps the loop deterministic even for
    // pathological write spaces.
    int group1 = table_.GroupForKey(k1);
    for (int attempt = 0; attempt < 64; ++attempt) {
      std::string k2 = RandomKey(options_.write_space);
      if (k2 != k1 && table_.GroupForKey(k2) != group1) {
        tx.ops.push_back(TxOp{k2, value});
        break;
      }
    }
    if (tx.ops.size() == 1) tx.cross = false;  // Fallback: single-shard.
  }
  if (options_.txn_read_fraction > 0 &&
      rng().NextDouble() < options_.txn_read_fraction) {
    // Read-write transaction: a leading GET that shares a lock with the
    // writes and whose evaluated value rides back in the outcome.
    tx.ops.insert(tx.ops.begin(),
                  TxOp::Get(RandomKey(options_.write_space)));
  }
  (tx.cross ? stats_.cross : stats_.single).issued++;
  SendTx(tx_id);
}

void WorkloadDriver::IssueSnapshot() {
  uint64_t tx_id = ++next_tx_;
  PendingTx& tx = pending_txs_[tx_id];
  tx.snapshot = true;
  tx.start = Now();
  int want = options_.snapshot_keys > 1 ? options_.snapshot_keys : 1;
  // Bounded probing for distinct keys, as in the cross-shard writer.
  for (int attempt = 0;
       attempt < 64 && static_cast<int>(tx.ops.size()) < want; ++attempt) {
    std::string key = RandomKey(options_.key_space);
    bool dup = false;
    for (const TxOp& op : tx.ops) dup = dup || op.key == key;
    if (!dup) tx.ops.push_back(TxOp::Get(key));
  }
  ++stats_.snapshots.issued;
  SendTx(tx_id);
}

void WorkloadDriver::SendTx(uint64_t tx_id) {
  PendingTx& tx = pending_txs_.at(tx_id);
  Send(ssm_->coordinator_id(), std::make_shared<BeginTxMsg>(tx_id, tx.ops));
  CancelTimer(tx.retry_timer);
  tx.retry_timer = SetTimer(options_.retry, [this, tx_id] {
    if (pending_txs_.count(tx_id) == 0) return;
    ++stats_.retries;  // Coordinator lost it (crash) or is slow: re-submit.
    SendTx(tx_id);
  });
}

void WorkloadDriver::OnMessage(sim::NodeId from, const sim::Message& msg) {
  (void)from;
  const auto* m = dynamic_cast<const TxOutcomeMsg*>(&msg);
  if (m == nullptr) return;
  auto it = pending_txs_.find(m->tx_id);
  if (it == pending_txs_.end()) return;  // Duplicate outcome.
  PendingTx& tx = it->second;
  CancelTimer(tx.retry_timer);
  tx.retry_timer = 0;
  if (!m->committed) {
    ++stats_.aborts_by_reason[static_cast<size_t>(m->reason) < 6
                                 ? static_cast<size_t>(m->reason)
                                 : 0];
    // Reason-aware retry: transient aborts get a fresh attempt (a NEW
    // tx id — the old id's decision record is already aborted, so
    // re-submitting it would just replay the abort). A CAS mismatch is
    // semantic: retrying reproduces it, so it stays terminal.
    if (options_.reason_aware_retry &&
        m->reason != TxAbortReason::kCasMismatch &&
        tx.attempts < options_.max_tx_attempts) {
      uint64_t new_id = ++next_tx_;
      PendingTx moved = std::move(tx);
      pending_txs_.erase(it);
      ++moved.attempts;
      pending_txs_[new_id] = std::move(moved);
      ++stats_.reason_retries;
      SetTimer(options_.abort_backoff, [this, new_id] {
        if (pending_txs_.count(new_id)) SendTx(new_id);
      });
      return;
    }
  }
  OpStats& s = tx.snapshot ? stats_.snapshots
                           : (tx.cross ? stats_.cross : stats_.single);
  ++s.completed;
  (m->committed ? s.committed : s.aborted)++;
  sim::Duration latency = Now() - tx.start;
  s.latency_sum += latency;
  if (latency > s.latency_max) s.latency_max = latency;
  outcomes_[m->tx_id] = m->committed;
  pending_txs_.erase(it);
  IssueNext();
}

void WorkloadDriver::OnReadResult(int group, uint64_t seq,
                                  const std::string& result) {
  if (crashed()) return;
  auto it = pending_reads_.find({group, seq});
  if (it == pending_reads_.end()) return;
  PendingRead read = it->second;
  pending_reads_.erase(it);
  if (result.compare(0, 6, "MOVED ") == 0) {
    // The key's range was migrated away. Learn the flip epoch's table
    // from the decision group, then re-route; the read keeps its original
    // start time, so migration stalls show up in the latency tail.
    ++stats_.moved;
    uint64_t epoch = std::strtoull(result.c_str() + 6, nullptr, 10);
    if (table_.epoch() >= epoch) {
      if (table_.GroupForKey(read.key) != group) {
        SendRead(read.key, read.start);  // A newer table routes elsewhere.
      } else {
        // Our table covers the fence's epoch yet still routes to the
        // bouncing group (a re-flip landed at a higher epoch than the
        // fence advertises): wait a beat for the newer flip to reach us
        // instead of hot-looping bounce/re-send against the fence.
        PendingRead parked = read;
        SetTimer(kRtRetry,
                 [this, parked] { SendRead(parked.key, parked.start); });
      }
    } else {
      parked_reads_.push_back(std::move(read));
      FetchTable(epoch);
    }
    return;
  }
  ++stats_.reads.completed;
  if (result == "NIL") ++stats_.reads.misses;
  sim::Duration latency = Now() - read.start;
  stats_.reads.latency_sum += latency;
  if (latency > stats_.reads.latency_max) stats_.reads.latency_max = latency;
  IssueNext();
}

void WorkloadDriver::FetchTable(uint64_t epoch) {
  if (rt_epoch_inflight_ >= epoch) return;
  rt_epoch_inflight_ = epoch;
  uint64_t seq = rt_reader_->Read(RoutingTable::RtKey(epoch));
  rt_fetches_[seq] = epoch;
}

void WorkloadDriver::OnRtResult(uint64_t seq, const std::string& result) {
  if (crashed()) return;
  auto it = rt_fetches_.find(seq);
  if (it == rt_fetches_.end()) return;
  uint64_t epoch = it->second;
  rt_fetches_.erase(it);
  std::optional<RoutingTable> t;
  if (result != "NIL") t = RoutingTable::Decode(result);
  if (t.has_value() && !t->WithinGroups(ssm_->total_groups())) t.reset();
  if (!t.has_value()) {
    // Fence observed before the flip record landed (the fence commits one
    // phase earlier in the move ladder), or a torn record: retry shortly.
    SetTimer(kRtRetry, [this, epoch] {
      if (rt_epoch_inflight_ == epoch) {
        uint64_t retry_seq = rt_reader_->Read(RoutingTable::RtKey(epoch));
        rt_fetches_[retry_seq] = epoch;
      }
    });
    return;
  }
  if (table_.MaybeAdopt(*t)) ++stats_.table_refreshes;
  if (rt_epoch_inflight_ <= epoch) rt_epoch_inflight_ = 0;
  // Re-route everything that was parked behind the fence. A re-routed
  // read can bounce again (chained moves); it just parks again.
  std::vector<PendingRead> parked = std::move(parked_reads_);
  parked_reads_.clear();
  for (PendingRead& read : parked) SendRead(read.key, read.start);
}

WorkloadDriver* SpawnWorkload(sim::Simulation* sim, ShardedStateMachine* ssm,
                              const WorkloadOptions& options) {
  std::vector<consensus::GroupClient*> readers;
  for (int g = 0; g < ssm->total_groups(); ++g) {
    // Readers share the layer-wide window: concurrent reads of distinct
    // keys are independent, so reordering within the window is harmless.
    // Spare groups get readers too — after a move they serve live ranges.
    readers.push_back(sim->Spawn<consensus::GroupClient>(
        ssm->shard_group(g), 300 * sim::kMillisecond,
        ssm->options().client_window));
  }
  consensus::GroupClient* rt_reader = sim->Spawn<consensus::GroupClient>(
      ssm->decision_group(), 300 * sim::kMillisecond, 1);
  WorkloadDriver* driver =
      sim->Spawn<WorkloadDriver>(ssm, options, readers, rt_reader);
  for (int g = 0; g < ssm->total_groups(); ++g) {
    int group = g;
    readers[static_cast<size_t>(g)]->SetCallback(
        [driver, group](uint64_t seq, const std::string& result,
                        bool /*read*/) {
          driver->OnReadResult(group, seq, result);
        });
  }
  rt_reader->SetCallback(
      [driver](uint64_t seq, const std::string& result, bool /*read*/) {
        driver->OnRtResult(seq, result);
      });
  return driver;
}

}  // namespace consensus40::shard
