#include "shard/workload.h"

namespace consensus40::shard {

WorkloadDriver::WorkloadDriver(ShardedStateMachine* ssm,
                               WorkloadOptions options,
                               std::vector<consensus::GroupClient*> readers)
    : ssm_(ssm), options_(options), readers_(std::move(readers)) {}

void WorkloadDriver::OnStart() {
  int initial = options_.concurrency < options_.ops ? options_.concurrency
                                                    : options_.ops;
  for (int i = 0; i < initial; ++i) IssueNext();
}

std::string WorkloadDriver::RandomKey(int space) {
  return "k" + std::to_string(rng().NextBounded(
                   static_cast<uint64_t>(space > 0 ? space : 1)));
}

void WorkloadDriver::IssueNext() {
  if (issued_ >= options_.ops) return;
  ++issued_;
  if (rng().NextDouble() < options_.read_fraction) {
    IssueRead();
    return;
  }
  bool cross = ssm_->options().shards > 1 &&
               rng().NextDouble() < options_.cross_shard_fraction;
  IssueTx(cross);
}

void WorkloadDriver::IssueRead() {
  std::string key = RandomKey(options_.key_space);
  int shard = ssm_->ShardOf(key);
  uint64_t seq = readers_[static_cast<size_t>(shard)]->Read(key);
  pending_reads_[{shard, seq}] = PendingRead{Now()};
  ++stats_.reads.issued;
}

void WorkloadDriver::IssueTx(bool cross) {
  uint64_t tx_id = ++next_tx_;
  PendingTx& tx = pending_txs_[tx_id];
  tx.cross = cross;
  tx.start = Now();
  std::string value = "v" + std::to_string(tx_id);
  std::string k1 = RandomKey(options_.write_space);
  tx.ops.push_back(TxOp{k1, value});
  if (cross) {
    // A second key on a different shard; bounded probing keeps the loop
    // deterministic even for pathological write spaces.
    int shard1 = ssm_->ShardOf(k1);
    for (int attempt = 0; attempt < 64; ++attempt) {
      std::string k2 = RandomKey(options_.write_space);
      if (k2 != k1 && ssm_->ShardOf(k2) != shard1) {
        tx.ops.push_back(TxOp{k2, value});
        break;
      }
    }
    if (tx.ops.size() == 1) tx.cross = false;  // Fallback: single-shard.
  }
  (tx.cross ? stats_.cross : stats_.single).issued++;
  SendTx(tx_id);
}

void WorkloadDriver::SendTx(uint64_t tx_id) {
  PendingTx& tx = pending_txs_.at(tx_id);
  Send(ssm_->coordinator_id(), std::make_shared<BeginTxMsg>(tx_id, tx.ops));
  CancelTimer(tx.retry_timer);
  tx.retry_timer = SetTimer(options_.retry, [this, tx_id] {
    if (pending_txs_.count(tx_id) == 0) return;
    ++stats_.retries;  // Coordinator lost it (crash) or is slow: re-submit.
    SendTx(tx_id);
  });
}

void WorkloadDriver::OnMessage(sim::NodeId from, const sim::Message& msg) {
  (void)from;
  const auto* m = dynamic_cast<const TxOutcomeMsg*>(&msg);
  if (m == nullptr) return;
  auto it = pending_txs_.find(m->tx_id);
  if (it == pending_txs_.end()) return;  // Duplicate outcome.
  PendingTx& tx = it->second;
  CancelTimer(tx.retry_timer);
  OpStats& s = tx.cross ? stats_.cross : stats_.single;
  ++s.completed;
  (m->committed ? s.committed : s.aborted)++;
  sim::Duration latency = Now() - tx.start;
  s.latency_sum += latency;
  if (latency > s.latency_max) s.latency_max = latency;
  outcomes_[m->tx_id] = m->committed;
  pending_txs_.erase(it);
  IssueNext();
}

void WorkloadDriver::OnReadResult(int shard, uint64_t seq,
                                  const std::string& result) {
  if (crashed()) return;
  auto it = pending_reads_.find({shard, seq});
  if (it == pending_reads_.end()) return;
  ++stats_.reads.completed;
  if (result == "NIL") ++stats_.reads.misses;
  sim::Duration latency = Now() - it->second.start;
  stats_.reads.latency_sum += latency;
  if (latency > stats_.reads.latency_max) stats_.reads.latency_max = latency;
  pending_reads_.erase(it);
  IssueNext();
}

WorkloadDriver* SpawnWorkload(sim::Simulation* sim, ShardedStateMachine* ssm,
                              const WorkloadOptions& options) {
  std::vector<consensus::GroupClient*> readers;
  for (int s = 0; s < ssm->options().shards; ++s) {
    // Readers share the layer-wide window: concurrent reads of distinct
    // keys are independent, so reordering within the window is harmless.
    readers.push_back(sim->Spawn<consensus::GroupClient>(
        ssm->shard_group(s), 300 * sim::kMillisecond,
        ssm->options().client_window));
  }
  WorkloadDriver* driver =
      sim->Spawn<WorkloadDriver>(ssm, options, readers);
  for (int s = 0; s < ssm->options().shards; ++s) {
    int shard = s;
    readers[static_cast<size_t>(s)]->SetCallback(
        [driver, shard](uint64_t seq, const std::string& result,
                        bool /*read*/) {
          driver->OnReadResult(shard, seq, result);
        });
  }
  return driver;
}

}  // namespace consensus40::shard
