#include "shard/txn_audit.h"

#include <map>
#include <set>
#include <utility>

namespace consensus40::shard {
namespace {

/// The KV state a prefix of the serial order has produced. A missing
/// entry and a nullopt entry both mean "absent" (initial vs deleted is
/// indistinguishable to a reader).
using State = std::map<std::string, std::optional<std::string>>;

bool ReadsMatch(const AuditTx& tx, const State& state) {
  for (const AuditRead& r : tx.reads) {
    auto it = state.find(r.key);
    bool present = it != state.end() && it->second.has_value();
    if (present != r.found) return false;
    if (present && *it->second != r.value) return false;
  }
  return true;
}

std::string EncodeState(const State& state) {
  std::string s;
  for (const auto& [key, value] : state) {
    s += key;
    s += '=';
    s += value.has_value() ? *value : "\x01";
    s += '\x02';
  }
  return s;
}

/// DFS over serial orders. `used` is a bitmask of placed transactions;
/// `dead` memoizes (used, state) pairs that cannot be completed, which
/// collapses the factorial search when many orders converge to the same
/// state (blind writes commute).
bool Search(const std::vector<AuditTx>& txs, uint64_t used, State* state,
            std::set<std::pair<uint64_t, std::string>>* dead) {
  if (used + 1 == (uint64_t{1} << txs.size())) return true;
  std::pair<uint64_t, std::string> memo{used, EncodeState(*state)};
  if (dead->count(memo) > 0) return false;
  for (size_t i = 0; i < txs.size(); ++i) {
    if ((used >> i) & 1) continue;
    if (!ReadsMatch(txs[i], *state)) continue;
    State saved;
    for (const AuditWrite& w : txs[i].writes) {
      auto it = state->find(w.key);
      if (saved.count(w.key) == 0) {
        saved[w.key] = it != state->end() ? it->second : std::nullopt;
      }
      (*state)[w.key] = w.value;
    }
    if (Search(txs, used | (uint64_t{1} << i), state, dead)) return true;
    for (auto& [key, value] : saved) (*state)[key] = value;
  }
  dead->insert(std::move(memo));
  return false;
}

}  // namespace

std::vector<std::string> AuditSerializability(
    const std::vector<AuditTx>& txs) {
  std::vector<std::string> violations;
  if (txs.empty()) return violations;
  if (txs.size() > 16) {
    // The exhaustive search is for planned checker histories; refuse
    // loudly rather than run forever on something larger.
    violations.push_back("txn audit: history too large for the exhaustive "
                         "search (" +
                         std::to_string(txs.size()) + " transactions)");
    return violations;
  }
  State state;
  std::set<std::pair<uint64_t, std::string>> dead;
  if (!Search(txs, 0, &state, &dead)) {
    std::string ids;
    for (const AuditTx& tx : txs) {
      if (!ids.empty()) ids += ",";
      ids += std::to_string(tx.tx_id);
    }
    violations.push_back(
        "txn audit: no serial order of the committed transactions {" + ids +
        "} explains the observed reads");
  }
  return violations;
}

std::vector<std::string> AuditSnapshotMembership(
    const std::vector<AuditTx>& committed,
    const std::vector<AuditTx>& snapshots) {
  std::map<std::string, std::set<std::string>> written;
  for (const AuditTx& tx : committed) {
    for (const AuditWrite& w : tx.writes) {
      if (w.value.has_value()) written[w.key].insert(*w.value);
    }
  }
  std::vector<std::string> violations;
  for (const AuditTx& snap : snapshots) {
    for (const AuditRead& r : snap.reads) {
      if (!r.found) continue;  // Absent is always a member.
      auto it = written.find(r.key);
      if (it == written.end() || it->second.count(r.value) == 0) {
        violations.push_back("snapshot audit: tx " +
                             std::to_string(snap.tx_id) + " read " + r.key +
                             " = \"" + r.value +
                             "\" which no committed transaction wrote");
      }
    }
  }
  return violations;
}

}  // namespace consensus40::shard
