#include "shard/reshard.h"

#include <cstdlib>

#include "shard/shard.h"

namespace consensus40::shard {

namespace {

std::string HexU64(uint64_t v) {
  if (v == 0) return "0";
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  while (v != 0) {
    out.insert(out.begin(), kDigits[v & 0xf]);
    v >>= 4;
  }
  return out;
}

/// How often the mover re-sends an unacked TM message (and a frozen TM
/// re-nudges a silent mover). Plain retransmission: every step is
/// idempotent on both sides.
constexpr sim::Duration kResendPeriod = 300 * sim::kMillisecond;

}  // namespace

const char kActiveMoveKey[] = "__mv.active";

std::string MoveId(uint64_t epoch, uint64_t lo, uint64_t hi) {
  return "e" + std::to_string(epoch) + "." + HexU64(lo) + "-" + HexU64(hi);
}

bool ParseMoveId(const std::string& id, uint64_t* epoch, uint64_t* lo,
                 uint64_t* hi) {
  if (id.empty() || id[0] != 'e') return false;
  size_t dot = id.find('.');
  size_t dash = id.find('-', dot == std::string::npos ? 0 : dot);
  if (dot == std::string::npos || dash == std::string::npos) return false;
  char* end = nullptr;
  *epoch = std::strtoull(id.c_str() + 1, &end, 10);
  if (end != id.c_str() + dot) return false;
  *lo = std::strtoull(id.c_str() + dot + 1, &end, 16);
  if (end != id.c_str() + dash) return false;
  *hi = std::strtoull(id.c_str() + dash + 1, &end, 16);
  return end == id.c_str() + id.size();
}

std::string MoveClaimKey(const std::string& move_id) {
  return "__mv." + move_id;
}

std::string MovePhaseKey(const std::string& move_id, const char* phase) {
  return "__mvp." + move_id + "." + phase;
}

ShardMover::ShardMover(ShardedStateMachine* owner)
    : owner_(owner), table_(owner->InitialTable()) {
  base_ = table_;
  new_table_ = table_;
}

void ShardMover::OnRestart() {
  // Fully volatile by design: forget the in-flight move and every
  // pending completion (stale client callbacks no longer match the
  // await seqs). Recovery is data-driven — the active-move hint in the
  // decision group, or a nudge from the frozen TM, restarts the ladder.
  step_ = Step::kIdle;
  sub_ = 0;
  max_step_ = 0;
  drained_ = false;
  resuming_ = false;
  reject_at_flip_ = false;
  decision_waiting_ = false;
  await_group_ = -1;
  resend_timer_ = 0;
  queue_.clear();
  table_ = owner_->InitialTable();
  // Ask the decision group whether a move was in progress. GET of an
  // internal "__" key is never fenced.
  sub_ = -1;  // Marks the recovery probe (handled in OnDecisionResult).
  AwaitDecision(std::string("GET ") + kActiveMoveKey);
}

bool ShardMover::StartMove(const MoveSpec& spec) {
  if (crashed()) return false;
  if (step_ != Step::kIdle) {
    queue_.push_back(spec);
    return true;
  }
  int owner = -1;
  if (spec.to < 0 || spec.to >= owner_->total_groups() ||
      !table_.SoleOwner(spec.lo, spec.hi, &owner) || owner == spec.to) {
    ++moves_rejected_;
    rejections_.push_back("invalid move spec");
    return false;
  }
  Begin(spec);
  return true;
}

void ShardMover::Begin(const MoveSpec& spec) {
  spec_ = spec;
  base_ = table_;
  int owner = -1;
  base_.SoleOwner(spec.lo, spec.hi, &owner);
  from_ = owner;
  move_id_ = MoveId(base_.epoch(), spec.lo, spec.hi);
  drained_ = false;
  resuming_ = false;
  reject_at_flip_ = false;
  max_step_ = 0;
  Enter(Step::kClaim);
  sub_ = 0;
  AwaitDecision("SETNX " + MoveClaimKey(move_id_) + " " +
                std::to_string(from_) + "," + std::to_string(spec_.to));
}

void ShardMover::Resume(const std::string& move_id) {
  if (step_ != Step::kIdle) return;  // Already driving a move.
  uint64_t epoch = 0, lo = 0, hi = 0;
  if (!ParseMoveId(move_id, &epoch, &lo, &hi)) return;
  move_id_ = move_id;
  spec_.lo = lo;
  spec_.hi = hi;
  drained_ = false;
  resuming_ = true;
  reject_at_flip_ = false;
  max_step_ = 0;
  Enter(Step::kClaim);
  if (epoch == 1) {
    base_ = owner_->InitialTable();
    sub_ = 2;  // Base known; read the claim next.
    AwaitDecision("GET " + MoveClaimKey(move_id_));
  } else {
    sub_ = 1;  // Fetch the base table for the claimed epoch first.
    AwaitDecision("GET " + RoutingTable::RtKey(epoch));
  }
}

void ShardMover::Enter(Step step) {
  step_ = step;
  sub_ = 0;
  if (static_cast<int>(step) > max_step_) max_step_ = static_cast<int>(step);
  if (resend_timer_ != 0) {
    CancelTimer(resend_timer_);
    resend_timer_ = 0;
  }
}

void ShardMover::AwaitDecision(const std::string& op) {
  decision_waiting_ = true;
  await_decision_seq_ = owner_->mover_decision_client()->Submit(op);
}

void ShardMover::AwaitGroup(int group, const std::string& op) {
  await_group_ = group;
  await_group_seq_ = owner_->mover_group_client(group)->Submit(op);
}

void ShardMover::SendStepMsg() {
  if (step_ == Step::kFreeze || step_ == Step::kDrain) {
    auto m = std::make_shared<MoveFreezeMsg>();
    m->move_id = move_id_;
    m->lo = spec_.lo;
    m->hi = spec_.hi;
    Send(owner_->tm_id(from_), m);
  } else if (step_ == Step::kInstallTm) {
    auto m = std::make_shared<MoveInstallMsg>();
    m->move_id = move_id_;
    m->table = new_table_.Encode();
    Send(owner_->tm_id(spec_.to), m);
  } else if (step_ == Step::kUnfreeze) {
    auto m = std::make_shared<MoveUnfreezeMsg>();
    m->move_id = move_id_;
    m->table = new_table_.Encode();
    Send(owner_->tm_id(from_), m);
    if (reject_at_flip_) {
      // Stand-down: the flip lost the SETNX race, so new_table_ is the
      // ESTABLISHED table at our epoch — force-feed it to the
      // destination TM, which adopted our losing table pre-flip and
      // would otherwise keep accepting writes for a range the
      // authoritative table assigns elsewhere.
      auto fix = std::make_shared<MoveInstallMsg>();
      fix->move_id = move_id_;
      fix->table = new_table_.Encode();
      fix->force = true;
      Send(owner_->tm_id(spec_.to), fix);
    }
  }
}

void ShardMover::ArmResend() {
  resend_timer_ = SetTimer(kResendPeriod, [this] {
    resend_timer_ = 0;
    if (step_ == Step::kFreeze || step_ == Step::kDrain ||
        step_ == Step::kInstallTm || step_ == Step::kUnfreeze) {
      SendStepMsg();
      ArmResend();
    }
  });
}

void ShardMover::GoFreeze() {
  Enter(Step::kFreeze);
  SendStepMsg();
  ArmResend();
}

void ShardMover::GoCopy() {
  Enter(Step::kCopy);
  sub_ = 0;
  // One atomic log entry at the source: fence + exact range snapshot.
  // The advisory fence epoch points readers at the table the flip will
  // publish (a CAS-loop re-flip may land higher; they converge by
  // re-chasing).
  AwaitGroup(from_, "MIGRATE " + std::to_string(spec_.lo) + " " +
                        std::to_string(spec_.hi) + " " +
                        std::to_string(base_.epoch() + 1));
}

void ShardMover::GoInstallTm() {
  new_table_ = base_;
  new_table_.ApplyMove(spec_.lo, spec_.hi, spec_.to);
  Enter(Step::kInstallTm);
  SendStepMsg();
  ArmResend();
}

void ShardMover::GoFlip() {
  Enter(Step::kFlip);
  sub_ = 0;
  AwaitDecision("SETNX " + RoutingTable::RtKey(new_table_.epoch()) + " " +
                new_table_.Encode());
}

void ShardMover::GoUnfreeze() {
  Enter(Step::kUnfreeze);
  SendStepMsg();
  ArmResend();
}

void ShardMover::FinishMove(bool done) {
  table_.MaybeAdopt(new_table_);
  if (done) {
    ++moves_done_;
  } else {
    ++moves_rejected_;
  }
  Enter(Step::kIdle);
  if (!queue_.empty()) {
    MoveSpec next = queue_.front();
    queue_.pop_front();
    StartMove(next);
  }
}

void ShardMover::Reject(const std::string& why) {
  rejections_.push_back(why);
  ++moves_rejected_;
  Enter(Step::kIdle);
  if (!queue_.empty()) {
    MoveSpec next = queue_.front();
    queue_.pop_front();
    StartMove(next);
  }
}

void ShardMover::OnDecisionResult(uint64_t seq, const std::string& result) {
  if (crashed()) return;
  if (!decision_waiting_ || seq != await_decision_seq_) return;
  decision_waiting_ = false;

  if (sub_ == -1) {
    // Recovery probe of the active-move hint (post-restart).
    sub_ = 0;
    if (result != "NIL" && result != "-" && !result.empty()) Resume(result);
    return;
  }

  switch (step_) {
    case Step::kClaim:
      if (sub_ == 0) {
        // SETNX claim result: "OK" = ours; an equal record = co-driving
        // the same established move; anything else = a DIFFERENT move
        // already claimed this (epoch, range) — write-once rejection.
        std::string ours =
            std::to_string(from_) + "," + std::to_string(spec_.to);
        if (result != "OK" && result != ours) {
          Reject("move record exists: " + result);
          return;
        }
        sub_ = 3;
        AwaitDecision(std::string("PUT ") + kActiveMoveKey + " " + move_id_);
        return;
      }
      if (sub_ == 1) {
        // Resume: base table for the claimed epoch.
        std::optional<RoutingTable> t = RoutingTable::Decode(result);
        if (!t.has_value() || !t->WithinGroups(owner_->total_groups())) {
          Reject("resume: missing base table");
          return;
        }
        base_ = *t;
        table_.MaybeAdopt(*t);
        sub_ = 2;
        AwaitDecision("GET " + MoveClaimKey(move_id_));
        return;
      }
      if (sub_ == 2) {
        // Resume: the claim record holds "<from>,<to>".
        size_t comma = result.find(',');
        if (comma == std::string::npos) {
          // No claim: the nudge (or hint) outlived the move. Nothing to
          // recover.
          Enter(Step::kIdle);
          return;
        }
        from_ = std::atoi(result.substr(0, comma).c_str());
        spec_.to = std::atoi(result.substr(comma + 1).c_str());
        sub_ = 3;
        AwaitDecision(std::string("PUT ") + kActiveMoveKey + " " + move_id_);
        return;
      }
      // sub_ == 3: active-move hint written; check for a completed flip
      // (recovery skip-ahead: post-flip the destination may already be
      // live, so the copy MUST NOT re-run).
      Enter(Step::kCheckFlipped);
      AwaitDecision("GET " + MovePhaseKey(move_id_, "flipped"));
      return;

    case Step::kCheckFlipped: {
      std::optional<RoutingTable> t = RoutingTable::Decode(result);
      if (t.has_value() && t->WithinGroups(owner_->total_groups())) {
        new_table_ = *t;
        GoUnfreeze();
        return;
      }
      if (owner_->options().unsafe_flip_before_drain) {
        // OUT-OF-BOUNDS mode for the checker: skip freeze AND drain, so
        // the routing epoch flips while transactions are still landing
        // writes at the old owner — the lost-write bug the safe
        // protocol's drain exists to prevent.
        GoCopy();
        return;
      }
      GoFreeze();
      return;
    }

    case Step::kFreeze:
      // Marker write ("frozen") completed.
      if (drained_) {
        Enter(Step::kDrain);
        sub_ = 1;
        AwaitDecision("SETNX " + MovePhaseKey(move_id_, "drained") + " 1");
      } else {
        Enter(Step::kDrain);
        SendStepMsg();  // Keep the freeze fresh; ack carries drain state.
        ArmResend();
      }
      return;

    case Step::kDrain:
      // Marker write ("drained") completed.
      GoCopy();
      return;

    case Step::kFlip:
      if (sub_ == 0) {
        std::string enc = new_table_.Encode();
        if (result == "OK" || result == enc) {
          sub_ = 1;
          AwaitDecision("SETNX " + MovePhaseKey(move_id_, "flipped") + " " +
                        enc);
          return;
        }
        // Epoch collision: someone published this epoch first. Re-base
        // and retry — the single-mover design makes this a stale-base
        // case (e.g. a restarted mover claiming against an old table).
        std::optional<RoutingTable> t = RoutingTable::Decode(result);
        if (!t.has_value() || !t->WithinGroups(owner_->total_groups())) {
          Reject("flip: unparseable table at epoch");
          return;
        }
        int owner = -1;
        if (t->SoleOwner(spec_.lo, spec_.hi, &owner) && owner == spec_.to) {
          // The established table already contains our assignment.
          new_table_ = *t;
          sub_ = 1;
          AwaitDecision("SETNX " + MovePhaseKey(move_id_, "flipped") + " " +
                        t->Encode());
          return;
        }
        if (t->SoleOwner(spec_.lo, spec_.hi, &owner) && owner == from_) {
          base_ = *t;
          GoInstallTm();  // Recompute on the newer base and re-flip.
          return;
        }
        // The range's ownership changed under us: stand down and thaw.
        reject_at_flip_ = true;
        new_table_ = *t;
        GoUnfreeze();
        return;
      }
      // sub_ == 1: flip marker written.
      GoUnfreeze();
      return;

    case Step::kUnfreeze:
      if (sub_ == 1) {
        // Active-move hint cleared; write the final done marker.
        sub_ = 2;
        AwaitDecision("SETNX " + MovePhaseKey(move_id_, "done") + " 1");
        return;
      }
      if (sub_ == 2) {
        FinishMove(!reject_at_flip_);
        return;
      }
      return;

    default:
      return;
  }
}

void ShardMover::OnGroupResult(int group, uint64_t seq,
                               const std::string& result) {
  if (crashed()) return;
  if (group != await_group_ || seq != await_group_seq_) return;
  await_group_ = -1;
  if (step_ != Step::kCopy) return;
  if (sub_ == 0) {
    // MIGRATE returned the range contents (possibly empty). INSTALL
    // carries the range and the same epoch the fence advertises, so the
    // destination's ownership record outranks any stale fence it kept
    // from an earlier move away (A->B->A).
    payload_ = result;
    sub_ = 1;
    AwaitGroup(spec_.to, "INSTALL " + std::to_string(spec_.lo) + " " +
                             std::to_string(spec_.hi) + " " +
                             std::to_string(base_.epoch() + 1) + " " +
                             payload_);
    return;
  }
  // INSTALL done at the destination.
  payload_.clear();
  GoInstallTm();
}

void ShardMover::OnMessage(sim::NodeId from, const sim::Message& msg) {
  (void)from;
  if (const auto* m = dynamic_cast<const MoveFreezeAckMsg*>(&msg)) {
    if (m->move_id != move_id_ || step_ != Step::kFreeze || sub_ != 0) return;
    drained_ = m->drained;
    sub_ = 1;
    // Record the frozen transition, then wait for (or skip) the drain.
    AwaitDecision("SETNX " + MovePhaseKey(move_id_, "frozen") + " 1");
    return;
  }
  if (const auto* m = dynamic_cast<const MoveDrainedMsg*>(&msg)) {
    if (m->move_id != move_id_) return;
    drained_ = true;
    if (step_ == Step::kDrain && sub_ == 0) {
      sub_ = 1;
      AwaitDecision("SETNX " + MovePhaseKey(move_id_, "drained") + " 1");
    }
    return;
  }
  if (const auto* m = dynamic_cast<const MoveInstallAckMsg*>(&msg)) {
    if (m->move_id != move_id_ || step_ != Step::kInstallTm) return;
    GoFlip();
    return;
  }
  if (const auto* m = dynamic_cast<const MoveUnfreezeAckMsg*>(&msg)) {
    if (m->move_id != move_id_ || step_ != Step::kUnfreeze || sub_ != 0)
      return;
    sub_ = 1;
    AwaitDecision(std::string("PUT ") + kActiveMoveKey + " -");
    return;
  }
  if (const auto* m = dynamic_cast<const MoveNudgeMsg*>(&msg)) {
    Resume(m->move_id);
    return;
  }
}

}  // namespace consensus40::shard
