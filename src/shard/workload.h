/// \file
/// Deterministic workload driver for the sharded state machine: replays
/// a configurable read / single-shard-write / cross-shard-write mix with
/// a miss-heavy key distribution, and reports throughput, latency, and
/// abort rate per operation class. All randomness flows from the
/// driver's per-process Rng, so a (seed, options) pair fully determines
/// the run — the property every checker and benchmark here relies on.

#ifndef CONSENSUS40_SHARD_WORKLOAD_H_
#define CONSENSUS40_SHARD_WORKLOAD_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "shard/shard.h"
#include "sim/simulation.h"

namespace consensus40::shard {

struct WorkloadOptions {
  /// How transaction value sizes are drawn. kDefault keeps the original
  /// tiny "v<tx_id>" values AND draws no extra randomness, so every
  /// pre-existing (seed, options) run replays bit-identically. The other
  /// modes size values for data-heavy experiments (the regime where
  /// payload-aware replication such as Crossword pays off); values keep
  /// a unique "v<tx_id>." prefix so atomicity checkers still tell
  /// writers apart.
  enum class ValueDist {
    kDefault,  ///< "v<tx_id>", no rng draw.
    kFixed,    ///< Exactly value_size bytes.
    kUniform,  ///< Uniform in [value_size_min, value_size].
    kZipf,     ///< Bounded Pareto on [value_size_min, value_size]:
               ///< mostly-small, heavy tail — the mixed regime an
               ///< adaptive coder must handle.
  };
  ValueDist value_dist = ValueDist::kDefault;
  /// Target (kFixed) or maximum (kUniform/kZipf) value size in bytes.
  /// Capped at 1 MiB; sizes below the id prefix are padded up to it.
  size_t value_size = 0;
  /// Lower bound for kUniform/kZipf draws.
  size_t value_size_min = 16;
  /// Total operations (reads + transactions) to issue.
  int ops = 500;
  /// Operations kept outstanding at once (closed loop per slot).
  int concurrency = 4;
  /// Fraction of operations that are linearizable single-key reads
  /// (served by the protocol's read path, e.g. Raft read-index).
  double read_fraction = 0.5;
  /// Fraction of WRITE transactions that span two shards (2PC).
  double cross_shard_fraction = 0.2;
  /// Reads draw keys from [0, key_space); writes from [0, write_space).
  /// key_space > write_space makes the read mix miss-heavy: most reads
  /// hit keys no transaction ever wrote.
  int key_space = 400;
  int write_space = 100;
  /// Transaction re-submission timeout (covers coordinator crashes).
  sim::Duration retry = 2 * sim::kSecond;

  /// Read-mix knobs. All default OFF and draw no randomness when off,
  /// so every pre-existing (seed, options) run replays bit-identically.
  /// Fraction of read operations issued as multi-key read-only
  /// transactions (the coordinator's lock-free snapshot path) instead
  /// of single-key read-index reads.
  double snapshot_fraction = 0.0;
  /// Distinct keys per snapshot transaction.
  int snapshot_keys = 2;
  /// Fraction of write transactions that carry a leading GET op — a
  /// read-write transaction: the GET takes a shared lock at prepare and
  /// its evaluated result rides back in the outcome.
  double txn_read_fraction = 0.0;
  /// Reason-aware abort handling (off = historical behaviour, every
  /// abort is terminal): transient aborts — lock conflict, frozen
  /// range, stale route, decision timeout — re-submit as a fresh
  /// attempt after `abort_backoff`; semantic aborts (CAS mismatch) stay
  /// terminal, because retrying one reproduces the mismatch.
  bool reason_aware_retry = false;
  sim::Duration abort_backoff = 50 * sim::kMillisecond;
  /// Attempts per logical transaction under reason_aware_retry.
  int max_tx_attempts = 3;
};

/// Counters for one operation class, in virtual time.
struct OpStats {
  int issued = 0;
  int completed = 0;  ///< Reads answered / transactions resolved.
  int committed = 0;  ///< Transactions only.
  int aborted = 0;    ///< Transactions only.
  int misses = 0;     ///< Reads only: result was NIL.
  sim::Duration latency_sum = 0;
  sim::Duration latency_max = 0;

  double MeanLatencyMs() const {
    return completed == 0
               ? 0.0
               : static_cast<double>(latency_sum) / completed / 1000.0;
  }
};

struct WorkloadStats {
  OpStats reads;
  OpStats single;  ///< Single-shard (one-phase) transactions.
  OpStats cross;   ///< Cross-shard (full 2PC) transactions.
  OpStats snapshots;  ///< Read-only snapshot transactions.
  int retries = 0;  ///< Transaction re-submissions (timeouts).
  int moved = 0;    ///< Reads bounced by a routing fence ("MOVED <epoch>").
  int table_refreshes = 0;  ///< Routing tables adopted from the decision group.
  /// Aborts by TxAbortReason (indexed by the enum's numeric value).
  /// Counted on every abort outcome, retried or not.
  int aborts_by_reason[6] = {0, 0, 0, 0, 0, 0};
  /// Fresh attempts issued by the reason-aware retry policy.
  int reason_retries = 0;

  int completed() const {
    return reads.completed + single.completed + cross.completed +
           snapshots.completed;
  }
};

/// The driver process. Construct via SpawnWorkload, which wires the
/// per-shard reader clients.
class WorkloadDriver : public sim::Process {
 public:
  WorkloadDriver(ShardedStateMachine* ssm, WorkloadOptions options,
                 std::vector<consensus::GroupClient*> readers,
                 consensus::GroupClient* rt_reader);

  void OnStart() override;
  void OnMessage(sim::NodeId from, const sim::Message& msg) override;
  void OnReadResult(int group, uint64_t seq, const std::string& result);
  void OnRtResult(uint64_t seq, const std::string& result);

  bool done() const { return stats_.completed() >= options_.ops; }
  const WorkloadStats& stats() const { return stats_; }
  /// Outcome the driver observed per transaction id (for checkers).
  const std::map<uint64_t, bool>& outcomes() const { return outcomes_; }
  /// The driver's current routing view (for tests).
  const RoutingTable& table() const { return table_; }

 private:
  struct PendingTx {
    std::vector<TxOp> ops;
    bool cross = false;
    bool snapshot = false;  ///< All-GET read-only transaction.
    int attempts = 1;       ///< Submissions under reason_aware_retry.
    sim::Time start = 0;
    uint64_t retry_timer = 0;
  };
  struct PendingRead {
    std::string key;
    sim::Time start = 0;
  };

  void IssueNext();
  std::string MakeValue(uint64_t tx_id);
  void IssueRead();
  void SendRead(const std::string& key, sim::Time start);
  void IssueTx(bool cross);
  void IssueSnapshot();
  void SendTx(uint64_t tx_id);
  void FetchTable(uint64_t epoch);
  std::string RandomKey(int space);

  ShardedStateMachine* ssm_;
  WorkloadOptions options_;
  std::vector<consensus::GroupClient*> readers_;
  consensus::GroupClient* rt_reader_;
  /// The driver's local routing view. Starts at the initial placement and
  /// advances only via tables fetched from the decision group after a
  /// "MOVED <epoch>" bounce — the same adoption rule every other routing
  /// consumer follows.
  RoutingTable table_;
  WorkloadStats stats_;
  int issued_ = 0;
  uint64_t next_tx_ = 0;
  std::map<uint64_t, PendingTx> pending_txs_;
  std::map<std::pair<int, uint64_t>, PendingRead> pending_reads_;
  /// Reads bounced by a fence, waiting for a newer table to re-route.
  std::vector<PendingRead> parked_reads_;
  /// Outstanding "__rt.<epoch>" fetches at the decision group (seq -> epoch).
  std::map<uint64_t, uint64_t> rt_fetches_;
  /// Highest epoch a fetch is in flight for (suppresses duplicates).
  uint64_t rt_epoch_inflight_ = 0;
  std::map<uint64_t, bool> outcomes_;
};

/// Spawns one reader GroupClient per shard plus the driver, and wires
/// the read callbacks. Must run after ssm->Build (the driver's node id
/// lands after all of the system's — fault bounds stay contiguous).
WorkloadDriver* SpawnWorkload(sim::Simulation* sim, ShardedStateMachine* ssm,
                              const WorkloadOptions& options);

}  // namespace consensus40::shard

#endif  // CONSENSUS40_SHARD_WORKLOAD_H_
