/// Checker adapter for the sharded state machine: 2 shards x 3 Raft
/// replicas plus a 3-replica decision group, driven by three cross-shard
/// transactions on disjoint keys. The fault envelope includes the two
/// commitment-layer faults the subsystem exists to survive — the
/// coordinator crashing inside the prepare/commit window, and a whole
/// shard (or the decision group) being cut off — and still expects both
/// atomicity AND termination: because the commit decision is a
/// replicated write-once record, prepared participants finish the
/// protocol without the coordinator.

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "check/adapters.h"
#include "shard/reshard.h"
#include "shard/shard.h"
#include "shard/txn_audit.h"
#include "smr/state_machine.h"

namespace consensus40::check {
namespace {

using shard::ShardedStateMachine;
using shard::TxOp;

/// Minimal transaction client: begins each planned transaction at its
/// scheduled time and re-submits on timeout, which is what rides out
/// coordinator crashes. Lives outside the fault bounds.
class ShardTxClient : public sim::Process {
 public:
  struct Planned {
    uint64_t tx_id = 0;
    std::vector<TxOp> ops;
    sim::Time at = 0;
  };

  ShardTxClient(sim::NodeId coordinator, std::vector<Planned> plan)
      : coordinator_(coordinator), plan_(std::move(plan)) {}

  void OnStart() override {
    for (const Planned& p : plan_) {
      SetTimer(p.at, [this, &p] { Begin(p); });
    }
  }

  void OnMessage(sim::NodeId, const sim::Message& msg) override {
    const auto* m = dynamic_cast<const shard::TxOutcomeMsg*>(&msg);
    if (m == nullptr || outcomes.count(m->tx_id) > 0) return;
    outcomes[m->tx_id] = m->committed;
    Outcome& d = details[m->tx_id];
    d.committed = m->committed;
    d.reason = m->reason;
    d.reads = m->reads;
    CancelTimer(retry_timers_[m->tx_id]);
  }

  /// Full outcome, for the serializability audit.
  struct Outcome {
    bool committed = false;
    shard::TxAbortReason reason = shard::TxAbortReason::kNone;
    std::vector<shard::TxReadResult> reads;
  };

  std::map<uint64_t, bool> outcomes;
  std::map<uint64_t, Outcome> details;
  /// Transactions this client re-submitted at least once. Their GET
  /// results may come from a re-run of an already-committed transaction
  /// (post-commit state), so the audit must not trust them.
  std::set<uint64_t> retried;

 private:
  void Begin(const Planned& p) {
    if (outcomes.count(p.tx_id) > 0) return;
    Send(coordinator_, std::make_shared<shard::BeginTxMsg>(p.tx_id, p.ops));
    retry_timers_[p.tx_id] = SetTimer(2 * sim::kSecond, [this, &p] {
      retried.insert(p.tx_id);
      Begin(p);
    });
  }

  sim::NodeId coordinator_;
  std::vector<Planned> plan_;
  std::map<uint64_t, uint64_t> retry_timers_;
};

class ShardCheckAdapter : public ProtocolAdapter {
 public:
  explicit ShardCheckAdapter(const char* label = "shard",
                             const shard::ShardOptions& options = Options())
      : label_(label), ssm_(std::make_unique<ShardedStateMachine>(options)) {
    // Three cross-shard transactions on disjoint key pairs, staggered so
    // generated faults land in every protocol phase.
    for (uint64_t tx = 1; tx <= kTxs; ++tx) {
      ShardTxClient::Planned p;
      p.tx_id = tx;
      int i = static_cast<int>(tx) - 1;
      std::string value = "t" + std::to_string(tx);
      p.ops = {TxOp{ssm_->KeyForShard(0, i), value},
               TxOp{ssm_->KeyForShard(1, i), value}};
      p.at = (300 + 200 * i) * sim::kMillisecond;
      plan_.push_back(std::move(p));
    }
  }

  const char* name() const override { return label_; }

  FaultBounds bounds() const override {
    // Node-id layout is fixed by ShardedStateMachine::Build's documented
    // spawn order: shard replicas [0,6), decision replicas [6,9), then
    // TMs (2), shard clients (2), TM decision clients (2), coordinator.
    FaultBounds b;
    b.first_node = 0;
    b.nodes = kConsensusNodes;
    b.max_crashed = 1;  // Any single group keeps a majority of its 3.
    b.restartable = true;
    b.partitionable = true;
    b.coordinator = kCoordinatorId;
    // The transactions run between 300ms and roughly 1.2s; a coordinator
    // crash anywhere in this window hits prepare/vote/decide in flight.
    b.coordinator_window_lo = 250 * sim::kMillisecond;
    b.coordinator_window_hi = 1300 * sim::kMillisecond;
    b.coordinator_restartable = true;  // Restarts (volatile) at the horizon.
    b.shard_groups = {{0, 1, 2}, {3, 4, 5}, {6, 7, 8}};
    return b;
  }

  void Build(sim::Simulation* sim) override {
    ssm_->Build(sim);
    if (ssm_->coordinator_id() != kCoordinatorId) {
      layout_error_ = "shard adapter: coordinator id " +
                      std::to_string(ssm_->coordinator_id()) +
                      " does not match the declared fault bounds (" +
                      std::to_string(kCoordinatorId) + ")";
    }
    client_ = sim->Spawn<ShardTxClient>(ssm_->coordinator_id(), plan_);
  }

  bool Done() const override {
    return client_ != nullptr && client_->outcomes.size() >= kTxs;
  }

  /// The whole point: unlike plain 2PC, this composition must terminate
  /// even when the coordinator dies between prepare and commit.
  bool ExpectTermination() const override { return true; }

  void OnProbe(sim::Simulation*) override { ssm_->Probe(); }

  Observation Observe() const override {
    Observation o;
    if (!layout_error_.empty()) o.self_reported.push_back(layout_error_);
    if (client_ == nullptr) return o;

    // Client-visible outcomes.
    for (const auto& [tx, committed] : client_->outcomes) {
      o.verdicts[tx][client_->id()] = committed ? 'C' : 'A';
    }

    // The replicated decision records.
    smr::KvStore decisions = Replay(ssm_->decision_group());
    for (uint64_t tx = 1; tx <= kTxs; ++tx) {
      auto d = decisions.Get(shard::DecisionKey(tx));
      if (d.has_value()) {
        o.verdicts[tx][ssm_->decision_group()->members()[0]] =
            *d == "C" ? 'C' : 'A';
      }
    }

    // Applied state per shard. A key holding the transaction's value is
    // a commit; a prepare record without the write is in-doubt ('P',
    // conflicts with nothing — an aborted transaction's prepare record
    // legitimately outlives the abort); anything else contributes no
    // verdict. So atomicity violations surface as e.g. a write applied
    // on one shard for a transaction whose decision record says abort.
    for (int s = 0; s < 2; ++s) {
      smr::KvStore kv = Replay(ssm_->shard_group(s));
      sim::NodeId at = ssm_->ShardMembers(s)[0];
      for (uint64_t tx = 1; tx <= kTxs; ++tx) {
        const TxOp& op = plan_[tx - 1].ops[static_cast<size_t>(s)];
        auto v = kv.Get(op.key);
        if (v.has_value() && *v == op.value) {
          o.verdicts[tx][at] = 'C';
        } else if (kv.Get(shard::PrepareKey(tx)).has_value()) {
          o.verdicts[tx][at] = 'P';
        }
      }
    }

    // Per-group prefix consistency (groups have unrelated logs, so they
    // cannot share Observation::logs — that invariant compares all
    // pairs). Report divergences through the self-reported channel.
    for (int s = 0; s < 2; ++s) {
      PrefixCheck(ssm_->shard_group(s), "shard " + std::to_string(s), &o);
    }
    PrefixCheck(ssm_->decision_group(), "decision group", &o);

    for (const std::string& v : ssm_->Violations()) {
      o.self_reported.push_back("shard system: " + v);
    }
    return o;
  }

 private:
  static constexpr int kConsensusNodes = 9;  // 2 shards x 3 + 3 decision.
  static constexpr sim::NodeId kCoordinatorId = 15;
  static constexpr uint64_t kTxs = 3;

  static shard::ShardOptions Options() {
    shard::ShardOptions so;  // Defaults: 2 shards x 3, 3 decision, raft.
    return so;
  }

  /// Replays the longest committed prefix across the group's replicas
  /// into a KvStore — the group's authoritative end state even when some
  /// replicas trail (crashed late, restarted at the horizon).
  static smr::KvStore Replay(const consensus::ReplicaGroup* group) {
    std::vector<smr::Command> best;
    for (size_t i = 0; i < group->members().size(); ++i) {
      std::vector<smr::Command> prefix =
          group->CommittedPrefix(static_cast<int>(i));
      if (prefix.size() > best.size()) best = std::move(prefix);
    }
    smr::KvStore kv;
    smr::DedupingExecutor dedup;
    for (const smr::Command& cmd : best) dedup.Apply(&kv, cmd);
    return kv;
  }

  static void PrefixCheck(const consensus::ReplicaGroup* group,
                          const std::string& label, Observation* o) {
    std::vector<std::vector<smr::Command>> prefixes;
    for (size_t i = 0; i < group->members().size(); ++i) {
      prefixes.push_back(group->CommittedPrefix(static_cast<int>(i)));
    }
    for (size_t i = 0; i < prefixes.size(); ++i) {
      for (size_t j = i + 1; j < prefixes.size(); ++j) {
        size_t common = std::min(prefixes[i].size(), prefixes[j].size());
        for (size_t k = 0; k < common; ++k) {
          if (!(prefixes[i][k] == prefixes[j][k])) {
            o->self_reported.push_back(
                label + ": replicas " + std::to_string(i) + " and " +
                std::to_string(j) + " diverge at log index " +
                std::to_string(k));
            break;
          }
        }
      }
    }
  }

  const char* label_;
  std::unique_ptr<ShardedStateMachine> ssm_;
  std::vector<ShardTxClient::Planned> plan_;
  ShardTxClient* client_ = nullptr;
  std::string layout_error_;
};

/// Keeps requesting the live range move until the mover takes it.
/// StartMove's queue is volatile, so a mover crashed before its claim
/// record committed forgets the request entirely — the re-request is the
/// client-side half of move recovery (the TM nudge is the server-side
/// half, and only exists once a freeze happened).
class MoveDriver : public sim::Process {
 public:
  MoveDriver(ShardedStateMachine* ssm, shard::MoveSpec spec, sim::Time at)
      : ssm_(ssm), spec_(spec), at_(at) {}

  void OnStart() override {
    SetTimer(at_, [this] { Tick(); });
  }
  void OnMessage(sim::NodeId, const sim::Message&) override {}

 private:
  void Tick() {
    shard::ShardMover* mover = ssm_->mover();
    if (mover->moves_done() > 0) return;
    if (!mover->crashed() && mover->idle()) mover->StartMove(spec_);
    SetTimer(400 * sim::kMillisecond, [this] { Tick(); });
  }

  ShardedStateMachine* ssm_;
  shard::MoveSpec spec_;
  sim::Time at_;
};

/// The elastic-resharding composition: 2 serving shards + 1 spare group,
/// with one live move (shard 0's whole initial range -> the spare)
/// racing three staggered cross-shard transactions. The fault envelope
/// adds the two migration-specific faults — the mover crashing inside
/// the move window (every phase boundary of the ladder) and the old or
/// new owner group partitioned mid-copy — on top of the usual replica
/// crashes, coordinator crash, and shard cuts. Expected to terminate AND
/// stay atomic: every transition of the move is a write-once record in
/// the decision group, so any participant can finish a dead mover's move.
class ReshardCheckAdapter : public ProtocolAdapter {
 public:
  explicit ReshardCheckAdapter(const char* label = "shard_reshard",
                               bool unsafe_flip = false)
      : label_(label) {
    shard::ShardOptions so;  // 2 shards x 3 replicas, 3 decision replicas.
    so.spare_groups = 1;
    so.unsafe_flip_before_drain = unsafe_flip;
    ssm_ = std::make_unique<ShardedStateMachine>(so);
    for (uint64_t tx = 1; tx <= kTxs; ++tx) {
      ShardTxClient::Planned p;
      p.tx_id = tx;
      int i = static_cast<int>(tx) - 1;
      std::string value = "t" + std::to_string(tx);
      p.ops = {TxOp{ssm_->KeyForShard(0, i), value},
               TxOp{ssm_->KeyForShard(1, i), value}};
      p.at = (300 + 200 * i) * sim::kMillisecond;
      plan_.push_back(std::move(p));
    }
  }

  const char* name() const override { return label_; }

  FaultBounds bounds() const override {
    // Spawn order: 3 groups x 3 replicas [0,9), decision replicas [9,12),
    // TMs (3), shard clients (3), TM decision clients (3), coordinator
    // (21), its decision client, mover (23), mover clients (4).
    FaultBounds b;
    b.first_node = 0;
    b.nodes = kConsensusNodes;
    b.max_crashed = 1;
    b.restartable = true;
    b.partitionable = true;
    b.coordinator = kCoordinatorId;
    b.coordinator_window_lo = 250 * sim::kMillisecond;
    b.coordinator_window_hi = 1300 * sim::kMillisecond;
    b.coordinator_restartable = true;
    b.shard_groups = {{0, 1, 2}, {3, 4, 5}, {6, 7, 8}, {9, 10, 11}};
    // The migration-specific envelope: mover crashes landing anywhere in
    // the move's phase ladder, and old/new-owner cuts mid-migration.
    b.mover = kMoverId;
    b.mover_window_lo = 300 * sim::kMillisecond;
    b.mover_window_hi = 1500 * sim::kMillisecond;
    b.mover_restartable = true;
    b.move_source = 0;
    b.move_dest = 2;
    return b;
  }

  void Build(sim::Simulation* sim) override {
    ssm_->Build(sim);
    if (ssm_->coordinator_id() != kCoordinatorId ||
        ssm_->mover_id() != kMoverId) {
      layout_error_ = "reshard adapter: coordinator/mover ids " +
                      std::to_string(ssm_->coordinator_id()) + "/" +
                      std::to_string(ssm_->mover_id()) +
                      " do not match the declared fault bounds";
    }
    client_ = sim->Spawn<ShardTxClient>(ssm_->coordinator_id(), plan_);
    // The move: shard 0's whole initial range to the spare group, kicked
    // off while the transactions are in flight.
    shard::MoveSpec spec;
    spec.lo = 0;
    spec.hi = ssm_->InitialTable().entries()[1].lo;
    spec.to = 2;
    sim->Spawn<MoveDriver>(ssm_.get(), spec, 350 * sim::kMillisecond);
  }

  bool Done() const override {
    return client_ != nullptr && client_->outcomes.size() >= kTxs &&
           ssm_->mover()->moves_done() >= 1 && ssm_->mover()->idle();
  }

  /// Termination is the point: a crashed mover's move is finished by any
  /// participant from the write-once records, and the transactions ride
  /// the old owner or retry at the new one — nobody blocks.
  bool ExpectTermination() const override { return true; }

  void OnProbe(sim::Simulation*) override { ssm_->Probe(); }

  Observation Observe() const override {
    Observation o;
    if (!layout_error_.empty()) o.self_reported.push_back(layout_error_);
    if (client_ == nullptr) return o;

    for (const auto& [tx, committed] : client_->outcomes) {
      o.verdicts[tx][client_->id()] = committed ? 'C' : 'A';
    }

    smr::KvStore decisions = Replay(ssm_->decision_group());
    std::map<uint64_t, bool> decided;
    for (uint64_t tx = 1; tx <= kTxs; ++tx) {
      auto d = decisions.Get(shard::DecisionKey(tx));
      if (d.has_value()) {
        decided[tx] = *d == "C";
        o.verdicts[tx][ssm_->decision_group()->members()[0]] =
            *d == "C" ? 'C' : 'A';
      }
    }

    // The authoritative routing table at end of run: the initial
    // placement plus every flip record the decision group holds.
    shard::RoutingTable table = ssm_->InitialTable();
    for (uint64_t e = 2; e <= 8; ++e) {
      auto rt = decisions.Get(shard::RoutingTable::RtKey(e));
      if (!rt.has_value()) break;
      if (auto t = shard::RoutingTable::Decode(*rt)) table.MaybeAdopt(*t);
    }

    // Applied state, judged at each key's AUTHORITATIVE owner under that
    // table: a committed transaction's write must have either been
    // migrated with its range or landed at the new owner directly. A
    // commit decision whose write was LOGGED at the old owner yet made it
    // into neither owner's state is a lost write — it applied behind the
    // routing fence and was dropped, the violation the flip-before-drain
    // out-of-bounds variant must produce. (The log-presence condition
    // keeps decided-but-still-in-flight writes — the run ends the moment
    // the client hears the outcome — from being miscalled as lost.)
    std::vector<smr::KvStore> kvs;
    std::vector<std::vector<smr::Command>> logs;
    for (int g = 0; g < ssm_->total_groups(); ++g) {
      logs.push_back(BestPrefix(ssm_->shard_group(g)));
      kvs.push_back(Replay(logs.back()));
    }
    for (uint64_t tx = 1; tx <= kTxs; ++tx) {
      for (const TxOp& op : plan_[tx - 1].ops) {
        int owner = table.GroupForKey(op.key);
        int initial_owner = ssm_->InitialTable().GroupForKey(op.key);
        sim::NodeId at = ssm_->ShardMembers(owner)[0];
        auto v = kvs[static_cast<size_t>(owner)].Get(op.key);
        bool present = v.has_value() && *v == op.value;
        if (present) {
          o.verdicts[tx][at] = 'C';
        } else if (kvs[static_cast<size_t>(owner)]
                       .Get(shard::PrepareKey(tx))
                       .has_value() ||
                   kvs[static_cast<size_t>(initial_owner)]
                       .Get(shard::PrepareKey(tx))
                       .has_value()) {
          o.verdicts[tx][at] = 'P';
        }
        if (!present && decided.count(tx) > 0 && decided[tx]) {
          auto old_v = kvs[static_cast<size_t>(initial_owner)].Get(op.key);
          const std::string put = "PUT " + op.key + " " + op.value;
          bool logged_old = false;
          for (const smr::Command& cmd :
               logs[static_cast<size_t>(initial_owner)]) {
            for (const smr::Command& c : smr::FlattenCommand(cmd)) {
              logged_old |= c.op == put;
            }
          }
          if ((!old_v.has_value() || *old_v != op.value) && logged_old) {
            o.self_reported.push_back(
                "reshard: lost write: tx " + std::to_string(tx) +
                " decided commit and logged its write at the pre-move owner "
                "(group " +
                std::to_string(initial_owner) + ") but key " + op.key +
                " holds its value at neither owner (authoritative: group " +
                std::to_string(owner) + ")");
          }
        }
      }
    }

    for (int g = 0; g < ssm_->total_groups(); ++g) {
      PrefixCheck(ssm_->shard_group(g), "group " + std::to_string(g), &o);
    }
    PrefixCheck(ssm_->decision_group(), "decision group", &o);

    for (const std::string& v : ssm_->Violations()) {
      o.self_reported.push_back("shard system: " + v);
    }
    return o;
  }

 private:
  static constexpr int kConsensusNodes = 12;  // 3 groups x 3 + 3 decision.
  static constexpr sim::NodeId kCoordinatorId = 21;
  static constexpr sim::NodeId kMoverId = 23;
  static constexpr uint64_t kTxs = 3;

  /// The longest committed prefix across the group's replicas.
  static std::vector<smr::Command> BestPrefix(
      const consensus::ReplicaGroup* group) {
    std::vector<smr::Command> best;
    for (size_t i = 0; i < group->members().size(); ++i) {
      std::vector<smr::Command> prefix =
          group->CommittedPrefix(static_cast<int>(i));
      if (prefix.size() > best.size()) best = std::move(prefix);
    }
    return best;
  }

  static smr::KvStore Replay(const std::vector<smr::Command>& prefix) {
    smr::KvStore kv;
    smr::DedupingExecutor dedup;
    for (const smr::Command& cmd : prefix) dedup.Apply(&kv, cmd);
    return kv;
  }

  static smr::KvStore Replay(const consensus::ReplicaGroup* group) {
    return Replay(BestPrefix(group));
  }

  static void PrefixCheck(const consensus::ReplicaGroup* group,
                          const std::string& label, Observation* o) {
    std::vector<std::vector<smr::Command>> prefixes;
    for (size_t i = 0; i < group->members().size(); ++i) {
      prefixes.push_back(group->CommittedPrefix(static_cast<int>(i)));
    }
    for (size_t i = 0; i < prefixes.size(); ++i) {
      for (size_t j = i + 1; j < prefixes.size(); ++j) {
        size_t common = std::min(prefixes[i].size(), prefixes[j].size());
        for (size_t k = 0; k < common; ++k) {
          if (!(prefixes[i][k] == prefixes[j][k])) {
            o->self_reported.push_back(
                label + ": replicas " + std::to_string(i) + " and " +
                std::to_string(j) + " diverge at log index " +
                std::to_string(k));
            break;
          }
        }
      }
    }
  }

  const char* label_;
  std::unique_ptr<ShardedStateMachine> ssm_;
  std::vector<ShardTxClient::Planned> plan_;
  ShardTxClient* client_ = nullptr;
  std::string layout_error_;
};

/// Builds the audit inputs from the client's recorded outcomes: one
/// AuditTx per committed read-write transaction (GET observations
/// dropped for re-submitted transactions; a successful CAS contributes
/// its expected value as a proven read), and one per completed
/// snapshot (all-GET) transaction.
void BuildAuditTxs(const std::vector<ShardTxClient::Planned>& plan,
                   const ShardTxClient& client,
                   std::vector<shard::AuditTx>* committed,
                   std::vector<shard::AuditTx>* snapshots) {
  for (const ShardTxClient::Planned& p : plan) {
    auto it = client.details.find(p.tx_id);
    if (it == client.details.end() || !it->second.committed) continue;
    bool all_get = true;
    for (const TxOp& op : p.ops) all_get = all_get && !op.IsWrite();
    shard::AuditTx a;
    a.tx_id = p.tx_id;
    bool trust_reads = all_get || client.retried.count(p.tx_id) == 0;
    if (trust_reads) {
      for (const shard::TxReadResult& r : it->second.reads) {
        if (r.op_index < 0 ||
            r.op_index >= static_cast<int>(p.ops.size())) {
          continue;
        }
        a.reads.push_back(shard::AuditRead{
            p.ops[static_cast<size_t>(r.op_index)].key, r.found, r.value});
      }
    }
    if (all_get) {
      snapshots->push_back(std::move(a));
      continue;
    }
    for (const TxOp& op : p.ops) {
      switch (op.type) {
        case TxOp::Type::kGet:
          break;
        case TxOp::Type::kPut:
          a.writes.push_back(shard::AuditWrite{op.key, op.value});
          break;
        case TxOp::Type::kDelete:
          a.writes.push_back(shard::AuditWrite{op.key, std::nullopt});
          break;
        case TxOp::Type::kCas:
          // Commit proves the prepare-time match, whichever attempt
          // decided — this read is trustworthy even after a re-submit.
          a.reads.push_back(shard::AuditRead{op.key, true, op.expected});
          a.writes.push_back(shard::AuditWrite{op.key, op.value});
          break;
      }
    }
    committed->push_back(std::move(a));
  }
}

/// The read-write transaction composition under the reshard topology:
/// typed GET/PUT/DELETE/CAS transactions — including a write-skew-prone
/// pair that shared locks must serialize — plus repeated read-only
/// snapshots, all racing one live range move under the mover-crash and
/// owner-partition envelope. On top of the usual atomicity verdicts the
/// adapter runs the serializability audit over the client-observed
/// reads: with prepare-time shared/exclusive locking no schedule may
/// produce a history with no serial explanation.
class TxnCheckAdapter : public ProtocolAdapter {
 public:
  explicit TxnCheckAdapter(const char* label = "shard_txn") : label_(label) {
    shard::ShardOptions so;  // 2 shards x 3 replicas, 3 decision replicas.
    so.spare_groups = 1;
    ssm_ = std::make_unique<ShardedStateMachine>(so);
    const std::string a0 = ssm_->KeyForShard(0, 0);
    const std::string a1 = ssm_->KeyForShard(0, 1);
    const std::string a2 = ssm_->KeyForShard(0, 2);
    const std::string b0 = ssm_->KeyForShard(1, 0);
    const std::string b1 = ssm_->KeyForShard(1, 1);
    auto plan = [this](uint64_t tx, sim::Time at, std::vector<TxOp> ops) {
      ShardTxClient::Planned p;
      p.tx_id = tx;
      p.at = at;
      p.ops = std::move(ops);
      plan_.push_back(std::move(p));
    };
    // Blind cross-shard PUT pair (the historical workload shape).
    plan(1, 300 * sim::kMillisecond,
         {TxOp::Put(a0, "t1"), TxOp::Put(b0, "t1")});
    // Concurrent write-skew-prone pair: each reads the key the other
    // writes. Shared locks force one to abort or a serial order.
    plan(2, 420 * sim::kMillisecond,
         {TxOp::Get(a1), TxOp::Put(b1, "t2")});
    plan(3, 420 * sim::kMillisecond,
         {TxOp::Get(b1), TxOp::Put(a1, "t3")});
    // Single-shard one-phase CAS: succeeds only over tx 1's value.
    plan(4, 650 * sim::kMillisecond, {TxOp::Cas(a0, "t1", "t4")});
    // Cross-shard with a delete.
    plan(5, 700 * sim::kMillisecond,
         {TxOp::Del(b0), TxOp::Put(a2, "t5")});
    // Read-only snapshots: one inside the move window, one late.
    plan(6, 500 * sim::kMillisecond, {TxOp::Get(a0), TxOp::Get(b0)});
    plan(7, 1000 * sim::kMillisecond,
         {TxOp::Get(a0), TxOp::Get(a1), TxOp::Get(b1)});
  }

  const char* name() const override { return label_; }

  FaultBounds bounds() const override {
    // Same layout as the reshard adapter: 3 groups x 3 replicas [0,9),
    // decision replicas [9,12), TMs, clients, coordinator (21), mover
    // (23).
    FaultBounds b;
    b.first_node = 0;
    b.nodes = kConsensusNodes;
    b.max_crashed = 1;
    b.restartable = true;
    b.partitionable = true;
    b.coordinator = kCoordinatorId;
    b.coordinator_window_lo = 250 * sim::kMillisecond;
    b.coordinator_window_hi = 1300 * sim::kMillisecond;
    b.coordinator_restartable = true;
    b.shard_groups = {{0, 1, 2}, {3, 4, 5}, {6, 7, 8}, {9, 10, 11}};
    b.mover = kMoverId;
    b.mover_window_lo = 300 * sim::kMillisecond;
    b.mover_window_hi = 1500 * sim::kMillisecond;
    b.mover_restartable = true;
    b.move_source = 0;
    b.move_dest = 2;
    return b;
  }

  void Build(sim::Simulation* sim) override {
    ssm_->Build(sim);
    if (ssm_->coordinator_id() != kCoordinatorId ||
        ssm_->mover_id() != kMoverId) {
      layout_error_ = "txn adapter: coordinator/mover ids " +
                      std::to_string(ssm_->coordinator_id()) + "/" +
                      std::to_string(ssm_->mover_id()) +
                      " do not match the declared fault bounds";
    }
    client_ = sim->Spawn<ShardTxClient>(ssm_->coordinator_id(), plan_);
    shard::MoveSpec spec;
    spec.lo = 0;
    spec.hi = ssm_->InitialTable().entries()[1].lo;
    spec.to = 2;
    sim->Spawn<MoveDriver>(ssm_.get(), spec, 350 * sim::kMillisecond);
  }

  bool Done() const override {
    return client_ != nullptr && client_->outcomes.size() >= plan_.size() &&
           ssm_->mover()->moves_done() >= 1 && ssm_->mover()->idle();
  }

  bool ExpectTermination() const override { return true; }

  void OnProbe(sim::Simulation*) override { ssm_->Probe(); }

  Observation Observe() const override {
    Observation o;
    if (!layout_error_.empty()) o.self_reported.push_back(layout_error_);
    if (client_ == nullptr) return o;

    for (const auto& [tx, committed] : client_->outcomes) {
      o.verdicts[tx][client_->id()] = committed ? 'C' : 'A';
    }
    smr::KvStore decisions = Replay(ssm_->decision_group());
    for (const ShardTxClient::Planned& p : plan_) {
      auto d = decisions.Get(shard::DecisionKey(p.tx_id));
      if (d.has_value()) {
        o.verdicts[p.tx_id][ssm_->decision_group()->members()[0]] =
            *d == "C" ? 'C' : 'A';
      }
    }

    std::vector<shard::AuditTx> committed, snapshots;
    BuildAuditTxs(plan_, *client_, &committed, &snapshots);
    for (const std::string& v : shard::AuditSerializability(committed)) {
      o.self_reported.push_back(v);
    }
    for (const std::string& v :
         shard::AuditSnapshotMembership(committed, snapshots)) {
      o.self_reported.push_back(v);
    }

    for (int g = 0; g < ssm_->total_groups(); ++g) {
      PrefixCheck(ssm_->shard_group(g), "group " + std::to_string(g), &o);
    }
    PrefixCheck(ssm_->decision_group(), "decision group", &o);
    for (const std::string& v : ssm_->Violations()) {
      o.self_reported.push_back("shard system: " + v);
    }
    return o;
  }

 private:
  static constexpr int kConsensusNodes = 12;
  static constexpr sim::NodeId kCoordinatorId = 21;
  static constexpr sim::NodeId kMoverId = 23;

  static smr::KvStore Replay(const consensus::ReplicaGroup* group) {
    std::vector<smr::Command> best;
    for (size_t i = 0; i < group->members().size(); ++i) {
      std::vector<smr::Command> prefix =
          group->CommittedPrefix(static_cast<int>(i));
      if (prefix.size() > best.size()) best = std::move(prefix);
    }
    smr::KvStore kv;
    smr::DedupingExecutor dedup;
    for (const smr::Command& cmd : best) dedup.Apply(&kv, cmd);
    return kv;
  }

  static void PrefixCheck(const consensus::ReplicaGroup* group,
                          const std::string& label, Observation* o) {
    std::vector<std::vector<smr::Command>> prefixes;
    for (size_t i = 0; i < group->members().size(); ++i) {
      prefixes.push_back(group->CommittedPrefix(static_cast<int>(i)));
    }
    for (size_t i = 0; i < prefixes.size(); ++i) {
      for (size_t j = i + 1; j < prefixes.size(); ++j) {
        size_t common = std::min(prefixes[i].size(), prefixes[j].size());
        for (size_t k = 0; k < common; ++k) {
          if (!(prefixes[i][k] == prefixes[j][k])) {
            o->self_reported.push_back(
                label + ": replicas " + std::to_string(i) + " and " +
                std::to_string(j) + " diverge at log index " +
                std::to_string(k));
            break;
          }
        }
      }
    }
  }

  const char* label_;
  std::unique_ptr<ShardedStateMachine> ssm_;
  std::vector<ShardTxClient::Planned> plan_;
  ShardTxClient* client_ = nullptr;
  std::string layout_error_;
};

/// OUT-OF-BOUNDS: the same typed-transaction machinery with the shared
/// locks GET ops normally take switched off (unsafe_no_read_locks), and
/// two concurrent write-skew clients — tx 1 reads x and writes y, tx 2
/// reads y and writes x. Without read locks neither prepare conflicts,
/// both commit having read the initial (absent) versions, and no serial
/// order explains the history: the serializability audit must flag it
/// on essentially every schedule, and the sweep pins a canonical
/// shrunken repro. Plain shard topology (no mover) keeps the repro
/// minimal.
class TxnNoReadLocksAdapter : public ProtocolAdapter {
 public:
  TxnNoReadLocksAdapter() {
    shard::ShardOptions so;
    so.unsafe_no_read_locks = true;
    ssm_ = std::make_unique<ShardedStateMachine>(so);
    const std::string x = ssm_->KeyForShard(0, 0);
    const std::string y = ssm_->KeyForShard(1, 0);
    ShardTxClient::Planned p1;
    p1.tx_id = 1;
    p1.at = 300 * sim::kMillisecond;
    p1.ops = {TxOp::Get(x), TxOp::Put(y, "t1")};
    ShardTxClient::Planned p2;
    p2.tx_id = 2;
    p2.at = 300 * sim::kMillisecond;
    p2.ops = {TxOp::Get(y), TxOp::Put(x, "t2")};
    plan_ = {std::move(p1), std::move(p2)};
  }

  const char* name() const override { return "shard_txn_unsafe"; }

  FaultBounds bounds() const override {
    // Same layout as ShardCheckAdapter: 2 shards x 3 + 3 decision
    // replicas, coordinator at 15.
    FaultBounds b;
    b.first_node = 0;
    b.nodes = kConsensusNodes;
    b.max_crashed = 1;
    b.restartable = true;
    b.partitionable = true;
    b.coordinator = kCoordinatorId;
    b.coordinator_window_lo = 250 * sim::kMillisecond;
    b.coordinator_window_hi = 1300 * sim::kMillisecond;
    b.coordinator_restartable = true;
    b.shard_groups = {{0, 1, 2}, {3, 4, 5}, {6, 7, 8}};
    return b;
  }

  void Build(sim::Simulation* sim) override {
    ssm_->Build(sim);
    client_ = sim->Spawn<ShardTxClient>(ssm_->coordinator_id(), plan_);
  }

  bool Done() const override {
    return client_ != nullptr && client_->outcomes.size() >= plan_.size();
  }

  bool ExpectTermination() const override { return true; }

  void OnProbe(sim::Simulation*) override { ssm_->Probe(); }

  Observation Observe() const override {
    Observation o;
    if (client_ == nullptr) return o;
    for (const auto& [tx, committed] : client_->outcomes) {
      o.verdicts[tx][client_->id()] = committed ? 'C' : 'A';
    }
    std::vector<shard::AuditTx> committed, snapshots;
    BuildAuditTxs(plan_, *client_, &committed, &snapshots);
    for (const std::string& v : shard::AuditSerializability(committed)) {
      o.self_reported.push_back(v);
    }
    return o;
  }

 private:
  static constexpr int kConsensusNodes = 9;
  static constexpr sim::NodeId kCoordinatorId = 15;

  std::unique_ptr<ShardedStateMachine> ssm_;
  std::vector<ShardTxClient::Planned> plan_;
  ShardTxClient* client_ = nullptr;
};

}  // namespace

AdapterFactory MakeShardAdapter() {
  return [](uint64_t) { return std::make_unique<ShardCheckAdapter>(); };
}

AdapterFactory MakeShardBatchedAdapter() {
  // Batching + windowing on every group and client; snapshotting stays
  // off (see MakeBatchedGroupAdapter for why the prefix invariant needs
  // full prefixes). Node layout is unchanged — tuning adds no processes
  // — so the declared fault bounds still hold.
  return [](uint64_t) {
    shard::ShardOptions so;
    so.client_window = 4;
    so.batch_size = 4;
    so.batch_delay = 1 * sim::kMillisecond;
    return std::make_unique<ShardCheckAdapter>("shard_batched", so);
  };
}

AdapterFactory MakeShardReshardAdapter() {
  return [](uint64_t) { return std::make_unique<ReshardCheckAdapter>(); };
}

AdapterFactory MakeShardTxnAdapter() {
  return [](uint64_t) { return std::make_unique<TxnCheckAdapter>(); };
}

AdapterFactory MakeShardTxnNoReadLocksAdapter() {
  return [](uint64_t) { return std::make_unique<TxnNoReadLocksAdapter>(); };
}

AdapterFactory MakeShardReshardOutOfBoundsAdapter() {
  // The mover flips the routing epoch BEFORE freezing/draining the old
  // owner: transactions still in flight there apply their writes after
  // the copy snapshot and behind the fence — a committed write that
  // exists at no owner. The checker must find and shrink this.
  return [](uint64_t) {
    return std::make_unique<ReshardCheckAdapter>("shard_reshard_unsafe",
                                                 /*unsafe_flip=*/true);
  };
}

}  // namespace consensus40::check
