/// \file
/// Live shard reconfiguration: the ShardMove state machine.
///
/// A move migrates one key-hash range between replica groups while
/// traffic flows, driven through the decision group so it is
/// exactly-once recoverable (the same Gray–Lamport write-once-record
/// discipline as the 2PC commit decision). The happy path:
///
///   claim    SETNX "__mv.e<E>.<lo>-<hi>" — the write-once move record.
///            A second mover proposing a DIFFERENT move for the same
///            (epoch, range) reads the established spec back and is
///            rejected; the SAME spec makes it a co-driver of one move.
///   freeze   The source TM stops admitting new transactions on the
///            range (prepare votes NO; the client retries later).
///   drain    Every in-flight transaction touching the range runs to
///            its 2PC completion at the old owner — straddling
///            transactions are never split across epochs.
///   copy     One atomic MIGRATE log entry at the source both fences
///            the range ("MOVED <epoch>" to stale routes) and returns
///            its exact contents; INSTALL bulk-loads the destination.
///   flip     SETNX "__rt.<E+1>" publishes the new routing table —
///            the commit point of the move.
///   unfreeze The source TM adopts the new table and starts redirecting.
///
/// Every transition lands a write-once record in the decision group, so
/// a crashed mover is recoverable BY ANY PARTICIPANT: the frozen TM
/// nudges the restarted mover, which re-reads the claim + flip records
/// and resumes idempotently — re-running any pre-flip step is harmless
/// (MIGRATE/INSTALL are deterministic re-copies of drained data), and a
/// post-flip resume skips straight to unfreeze.

#ifndef CONSENSUS40_SHARD_RESHARD_H_
#define CONSENSUS40_SHARD_RESHARD_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "shard/routing.h"
#include "sim/simulation.h"

namespace consensus40::shard {

class ShardedStateMachine;

/// One requested range move: reassign hash range [lo, hi) (hi == 0
/// means 2^64) to replica group `to`.
struct MoveSpec {
  uint64_t lo = 0;
  uint64_t hi = 0;
  int to = 0;
};

/// Mover -> source TM: stop admitting transactions on the range.
struct MoveFreezeMsg : sim::Message {
  const char* TypeName() const override { return "move-freeze"; }
  int ByteSize() const override { return 40; }
  std::string move_id;
  uint64_t lo = 0;
  uint64_t hi = 0;
};

/// Source TM -> mover: frozen; `drained` if no in-flight transaction
/// still touches the range.
struct MoveFreezeAckMsg : sim::Message {
  const char* TypeName() const override { return "move-freeze-ack"; }
  int ByteSize() const override { return 25; }
  std::string move_id;
  bool drained = false;
};

/// Source TM -> mover: the last in-flight transaction on the range
/// finished; the range is quiescent at the old owner.
struct MoveDrainedMsg : sim::Message {
  const char* TypeName() const override { return "move-drained"; }
  int ByteSize() const override { return 24; }
  std::string move_id;
};

/// Mover -> destination TM: adopt the post-move routing table (sent
/// before the flip, so the new owner routes correctly from the first
/// redirected transaction).
struct MoveInstallMsg : sim::Message {
  const char* TypeName() const override { return "move-install"; }
  int ByteSize() const override {
    return 25 + static_cast<int>(table.size());
  }
  std::string move_id;
  std::string table;  ///< RoutingTable::Encode of the post-move table.
  /// Set when a mover stands down at the flip: `table` is then the
  /// ESTABLISHED table for its epoch and replaces a same-epoch table the
  /// TM adopted from the losing pre-flip install (plain adoption is
  /// strictly epoch-gated and would keep the loser forever).
  bool force = false;
};

struct MoveInstallAckMsg : sim::Message {
  const char* TypeName() const override { return "move-install-ack"; }
  int ByteSize() const override { return 24; }
  std::string move_id;
};

/// Mover -> source TM: move committed; adopt the new table, thaw the
/// range, redirect stale routes from now on.
struct MoveUnfreezeMsg : sim::Message {
  const char* TypeName() const override { return "move-unfreeze"; }
  int ByteSize() const override {
    return 24 + static_cast<int>(table.size());
  }
  std::string move_id;
  std::string table;
};

struct MoveUnfreezeAckMsg : sim::Message {
  const char* TypeName() const override { return "move-unfreeze-ack"; }
  int ByteSize() const override { return 24; }
  std::string move_id;
};

/// Frozen TM -> mover: "a move over my range is stalled" — the recovery
/// trigger that lets a restarted (memoryless) mover find and finish an
/// interrupted move.
struct MoveNudgeMsg : sim::Message {
  const char* TypeName() const override { return "move-nudge"; }
  int ByteSize() const override { return 24; }
  std::string move_id;
};

/// Write-once decision-group keys of a move.
std::string MoveId(uint64_t epoch, uint64_t lo, uint64_t hi);
bool ParseMoveId(const std::string& id, uint64_t* epoch, uint64_t* lo,
                 uint64_t* hi);
std::string MoveClaimKey(const std::string& move_id);
std::string MovePhaseKey(const std::string& move_id, const char* phase);
/// Last-writer-wins recovery hint: the move currently in progress ("-"
/// when none). A hint, not a correctness record — correctness rides the
/// write-once claim/flip records.
extern const char kActiveMoveKey[];

/// The move coordinator. Fully volatile (OnRestart forgets everything);
/// every durable fact lives in the decision group. One move runs at a
/// time; StartMove requests queue behind the active one.
class ShardMover : public sim::Process {
 public:
  /// Linear progress ladder of the active move, exposed so tests can
  /// crash the mover at every phase boundary. Values only grow within
  /// one move (max_step_reached()).
  enum class Step {
    kIdle = 0,
    kClaim = 1,        ///< SETNX move record in flight.
    kCheckFlipped = 2, ///< Reading the flip marker (recovery skip-ahead).
    kFreeze = 3,       ///< Awaiting the source TM's freeze ack.
    kDrain = 4,        ///< Awaiting quiescence of in-flight transactions.
    kCopy = 5,         ///< MIGRATE/INSTALL data transfer in flight.
    kInstallTm = 6,    ///< Teaching the destination TM the new table.
    kFlip = 7,         ///< SETNX of the new routing epoch in flight.
    kUnfreeze = 8,     ///< Awaiting the source TM's unfreeze ack.
  };

  explicit ShardMover(ShardedStateMachine* owner);

  /// Requests a move. False (and a recorded rejection) if the spec is
  /// invalid against the mover's current table: the range is not wholly
  /// owned by one group, or already owned by `to`, or `to` is out of
  /// range. Queues behind an active move.
  bool StartMove(const MoveSpec& spec);

  void OnMessage(sim::NodeId from, const sim::Message& msg) override;
  void OnRestart() override;

  /// Completion callbacks from the mover's GroupClients.
  void OnDecisionResult(uint64_t seq, const std::string& result);
  void OnGroupResult(int group, uint64_t seq, const std::string& result);

  Step step() const { return step_; }
  /// Highest step the active (or last) move reached.
  int max_step_reached() const { return max_step_; }
  int moves_done() const { return moves_done_; }
  int moves_rejected() const { return moves_rejected_; }
  bool idle() const { return step_ == Step::kIdle && queue_.empty(); }
  const RoutingTable& table() const { return table_; }

 private:
  void Begin(const MoveSpec& spec);
  void Resume(const std::string& move_id);
  void Enter(Step step);
  /// Submits a decision-group op whose result resumes the ladder.
  void AwaitDecision(const std::string& op);
  /// Submits a data-group op whose result resumes the ladder.
  void AwaitGroup(int group, const std::string& op);
  /// (Re)sends the TM message of the current step; re-armed by a resend
  /// timer until the matching ack advances the ladder.
  void SendStepMsg();
  void ArmResend();
  void GoFreeze();
  void GoCopy();
  void GoInstallTm();
  void GoFlip();
  void GoUnfreeze();
  void FinishMove(bool done);
  void Reject(const std::string& why);

  ShardedStateMachine* owner_;
  Step step_ = Step::kIdle;
  int max_step_ = 0;
  /// Sub-position inside a step for multi-op steps (kClaim: claim ->
  /// active-pointer; kCopy: migrate -> install; ...).
  int sub_ = 0;
  MoveSpec spec_;
  int from_ = -1;
  std::string move_id_;
  RoutingTable base_;       ///< Table the claim was made against.
  RoutingTable new_table_;  ///< base_ + the move (valid from kInstallTm).
  RoutingTable table_;      ///< Mover's current adopted table.
  std::string payload_;     ///< MIGRATE result awaiting INSTALL.
  bool drained_ = false;
  bool resuming_ = false;
  bool reject_at_flip_ = false;
  uint64_t await_decision_seq_ = 0;
  bool decision_waiting_ = false;
  int await_group_ = -1;
  uint64_t await_group_seq_ = 0;
  uint64_t resend_timer_ = 0;
  std::deque<MoveSpec> queue_;
  int moves_done_ = 0;
  int moves_rejected_ = 0;
  std::vector<std::string> rejections_;
};

}  // namespace consensus40::shard

#endif  // CONSENSUS40_SHARD_RESHARD_H_
