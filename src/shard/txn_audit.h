/// \file
/// Post-hoc serializability audit for the typed-transaction checker
/// adapters. The input is the client's-eye view of a finished run: for
/// every committed read-write transaction, the values its GETs returned
/// (and the pre-values its successful CAS ops proved) plus the writes it
/// installed. The audit searches for a serial order in which every read
/// observes the latest preceding write — the definition of (view)
/// serializability for this workload shape. Exhaustive over
/// permutations with dead-state memoization, so it is meant for the
/// checker's small planned histories (~10 transactions), not production
/// traces.
///
/// Read-only snapshot transactions get a separate, weaker audit:
/// snapshots are per-key linearizable reads at a pinned routing epoch,
/// not a single serial point, so a snapshot may legally interleave with
/// a multi-shard commit. What must still hold is membership — every
/// value a snapshot observed was written by some committed transaction
/// (or the key was absent).

#ifndef CONSENSUS40_SHARD_TXN_AUDIT_H_
#define CONSENSUS40_SHARD_TXN_AUDIT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace consensus40::shard {

/// One observed read: the key and what the client saw. A successful CAS
/// contributes one of these with `value` = its expected value (the
/// prepare-time validation proved the match). Callers must OMIT the GET
/// observations of transactions they re-submitted: a re-run of an
/// already-committed transaction re-evaluates its reads against
/// post-commit state, so those values are not the committed reads.
struct AuditRead {
  std::string key;
  bool found = false;
  std::string value;
};

/// One installed write; `value == nullopt` is a delete.
struct AuditWrite {
  std::string key;
  std::optional<std::string> value;
};

/// One committed transaction as the client observed it.
struct AuditTx {
  uint64_t tx_id = 0;
  std::vector<AuditRead> reads;
  std::vector<AuditWrite> writes;
};

/// Searches for a serial order of `txs` in which every read observes the
/// latest preceding write (all keys start absent). Returns violation
/// strings; empty means an order exists. Write values should be unique
/// per transaction (the planned workloads write "t<tx_id>"), which is
/// what makes the observed reads pin the order down.
std::vector<std::string> AuditSerializability(const std::vector<AuditTx>& txs);

/// Membership audit for read-only snapshots: every value a snapshot
/// observed must have been written to that key by some committed
/// transaction. An absent read is always legal (the initial version is
/// a member, and the snapshot may predate every writer).
std::vector<std::string> AuditSnapshotMembership(
    const std::vector<AuditTx>& committed,
    const std::vector<AuditTx>& snapshots);

}  // namespace consensus40::shard

#endif  // CONSENSUS40_SHARD_TXN_AUDIT_H_
