#ifndef CONSENSUS40_SHARD_ROUTING_H_
#define CONSENSUS40_SHARD_ROUTING_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace consensus40::shard {

/// The shard layer's key-range routing table: a partition of the 64-bit
/// FNV-1a key-hash space into contiguous ranges, each owned by one
/// replica group, stamped with a monotonically increasing epoch.
///
/// Epoch 1 is the static initial table (the hash space divided equally
/// across the first `shards` groups — the successor of the old FNV-1a
/// modulo placement). Every later epoch exists only as a write-once
/// "__rt.<epoch>" SETNX record in the decision group, produced by a
/// ShardMove flip, so the table's history is itself replicated and any
/// participant can recover the current routing by reading the decision
/// log. Caches of the table (clients, transaction managers, the 2PC
/// coordinator) are brought up to date by redirect replies carrying a
/// newer encoding; adoption is gated on the epoch, never backwards.
///
/// Representation: sorted range starts. Entry i owns [lo_i, lo_{i+1})
/// and the last entry owns [lo_last, 2^64). Range bounds elsewhere use
/// hi == 0 as the "2^64" sentinel (matching the KvStore fence records).
class RoutingTable {
 public:
  struct Entry {
    uint64_t lo = 0;  ///< First hash owned by this range.
    int group = 0;    ///< Owning replica group.
  };

  /// The epoch-1 table: 2^64 divided equally across groups 0..shards-1.
  static RoutingTable Initial(int shards);

  /// The group owning hash `h`.
  int GroupFor(uint64_t h) const;

  /// The group owning `key` (FNV-1a of the key).
  int GroupForKey(const std::string& key) const;

  /// The [lo, hi) bounds (hi == 0 means 2^64) of the range containing
  /// hash `h`.
  void RangeFor(uint64_t h, uint64_t* lo, uint64_t* hi) const;

  /// True if [lo, hi) (hi == 0 means 2^64) is wholly owned by one group,
  /// returned in *owner. A move may only claim such a range.
  bool SoleOwner(uint64_t lo, uint64_t hi, int* owner) const;

  /// Reassigns [lo, hi) (hi == 0 means 2^64) to `group`, bumps the
  /// epoch, and normalizes away adjacent same-group boundaries — which
  /// is why split, merge, and move are all this one operation: moving a
  /// sub-range splits its parent, and moving a range to its neighbour's
  /// owner merges the boundary.
  void ApplyMove(uint64_t lo, uint64_t hi, int group);

  /// Whitespace-free wire form "e<epoch>|<lo_hex>:<group>,..." — safe to
  /// store as a KvStore value and to carry in redirect replies.
  std::string Encode() const;
  static std::optional<RoutingTable> Decode(const std::string& encoded);

  /// Adopts `other` if it is strictly newer; returns true on adoption.
  bool MaybeAdopt(const RoutingTable& other);

  /// True if every entry's group is a valid index below `total_groups`.
  /// Adoption sites check this before trusting a decoded table: entries
  /// index per-group arrays (clients, TMs, shard groups), so a record
  /// naming a nonexistent group must be dropped, not indexed with.
  bool WithinGroups(int total_groups) const;

  uint64_t epoch() const { return epoch_; }
  const std::vector<Entry>& entries() const { return entries_; }

  /// The decision-group key holding the table for `epoch` (>= 2).
  static std::string RtKey(uint64_t epoch);

 private:
  uint64_t epoch_ = 1;
  std::vector<Entry> entries_{{0, 0}};  ///< Sorted by lo; first lo == 0.
};

}  // namespace consensus40::shard

#endif  // CONSENSUS40_SHARD_ROUTING_H_
