/// \file
/// Sharded state machine: a key space partitioned across N independent
/// replication groups, with cross-shard transactions committed by 2PC
/// whose commit decisions are THEMSELVES replicated log entries.
///
/// This is the composition the paper's modern-systems section describes
/// (Spanner, DynamoDB): per-shard consensus below, a commitment protocol
/// above. Classic 2PC blocks when the coordinator fails between prepare
/// and commit; here the decision is a write-once record (SETNX) in a
/// replicated coordination group, so any prepared participant can
/// terminate the protocol on its own — Gray & Lamport's "Consensus on
/// Transaction Commit". The coordinator front-end is a convenience, not
/// a single point of failure: crash it at the worst moment and the
/// participants still converge on one decision.
///
/// Roles:
///   - `TxManager` (one per shard): conflict-checks a lock table, writes
///     a durable prepare record into its shard's log, votes, applies the
///     decision, and — on decision timeout — proposes ABORT to the
///     decision group itself (participant-driven termination).
///   - `TxCoordinator`: collects votes, writes the decision record,
///     broadcasts it, answers the client. Stateless across restarts;
///     clients re-submit and every step is idempotent.
///   - `ShardedStateMachine`: assembles shard groups, the decision
///     group, TMs, and the coordinator inside one simulation. Built on
///     the protocol-agnostic consensus::ReplicaGroup registry, so the
///     whole layer runs unchanged over Raft or Multi-Paxos.

#ifndef CONSENSUS40_SHARD_SHARD_H_
#define CONSENSUS40_SHARD_SHARD_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "consensus/replica_group.h"
#include "shard/routing.h"
#include "sim/simulation.h"

namespace consensus40::shard {

class ShardMover;
struct MoveFreezeMsg;
struct MoveInstallMsg;
struct MoveUnfreezeMsg;

/// One write of a transaction.
struct TxOp {
  std::string key;
  std::string value;
};

/// Client -> coordinator: start (or re-submit) transaction `tx_id`.
/// Re-submission with the same id is safe at any point: prepares,
/// decision records, and writes are all idempotent.
struct BeginTxMsg : sim::Message {
  BeginTxMsg(uint64_t id, std::vector<TxOp> o) : tx_id(id), ops(std::move(o)) {}
  const char* TypeName() const override { return "begin-tx"; }
  int ByteSize() const override {
    int size = 16;
    for (const TxOp& op : ops) {
      size += static_cast<int>(op.key.size() + op.value.size()) + 8;
    }
    return size;
  }
  uint64_t tx_id;
  std::vector<TxOp> ops;
};

/// Coordinator -> client: final transaction outcome.
struct TxOutcomeMsg : sim::Message {
  TxOutcomeMsg(uint64_t id, bool c) : tx_id(id), committed(c) {}
  const char* TypeName() const override { return "tx-outcome"; }
  int ByteSize() const override { return 17; }
  uint64_t tx_id;
  bool committed;
};

/// Coordinator -> TM: prepare `tx_id` (or, when this shard is the only
/// participant, commit it one-phase — no prepare record, no decision key).
struct TmPrepareMsg : sim::Message {
  const char* TypeName() const override { return "tm-prepare"; }
  int ByteSize() const override {
    int size = 17;
    for (const TxOp& op : writes) {
      size += static_cast<int>(op.key.size() + op.value.size()) + 8;
    }
    return size;
  }
  uint64_t tx_id = 0;
  bool one_phase = false;
  std::vector<TxOp> writes;  ///< This shard's slice of the transaction.
};

/// TM -> coordinator: vote. For one-phase transactions `yes` already
/// means "applied and committed".
struct TmVoteMsg : sim::Message {
  const char* TypeName() const override { return "tm-vote"; }
  int ByteSize() const override { return 21; }
  uint64_t tx_id = 0;
  int shard = -1;
  bool yes = false;
};

/// Coordinator -> TM: the (replicated) decision.
struct TmDecisionMsg : sim::Message {
  const char* TypeName() const override { return "tm-decision"; }
  int ByteSize() const override { return 17; }
  uint64_t tx_id = 0;
  bool commit = false;
};

/// TM -> coordinator: decision applied, locks released.
struct TmAckMsg : sim::Message {
  const char* TypeName() const override { return "tm-ack"; }
  int ByteSize() const override { return 20; }
  uint64_t tx_id = 0;
  int shard = -1;
};

/// TM -> coordinator: "a key of this transaction is not mine — here is
/// my (newer) routing table". The coordinator adopts the table (epoch-
/// gated, never backwards) and aborts the transaction; the client
/// retries and the re-split lands at the new owner. This is how routing
/// epochs propagate after a move: nobody is told proactively, stale
/// routes bounce.
struct TmRedirectMsg : sim::Message {
  const char* TypeName() const override { return "tm-redirect"; }
  int ByteSize() const override { return 16 + static_cast<int>(table.size()); }
  uint64_t tx_id = 0;
  std::string table;  ///< RoutingTable::Encode of the TM's table.
};

struct ShardOptions {
  int shards = 2;
  int replicas_per_shard = 3;
  /// Extra replica groups that own no key range at epoch 1 — migration
  /// destinations for live splits. They get the same replicas, TM, and
  /// clients as serving groups.
  int spare_groups = 0;
  /// OUT-OF-BOUNDS knob for the safety checker: the mover skips the
  /// freeze/drain phases and flips the routing epoch while transactions
  /// are still writing to the old owner. Violates exactly-once (lost
  /// writes); exists so the checker can prove the drain is load-bearing.
  bool unsafe_flip_before_drain = false;
  /// Replicas of the decision group (the "Paxos registrar" of Gray &
  /// Lamport's commit protocol).
  int decision_replicas = 3;
  /// consensus::ReplicaGroup registry key for every group.
  std::string protocol = "raft";
  /// Coordinator patience for votes before it decides ABORT.
  sim::Duration vote_timeout = 250 * sim::kMillisecond;
  /// Prepared-TM patience for the decision before it asks the decision
  /// group itself (participant-driven termination).
  sim::Duration recovery_timeout = 1 * sim::kSecond;

  /// Hot-path tuning, applied uniformly to every group (shards and the
  /// decision group) and to every GroupClient the layer spawns. The
  /// defaults keep the untuned serialize-everything behaviour.
  /// In-flight window per GroupClient (TM shard/decision clients and
  /// workload readers). Safe here: each transaction's steps are already
  /// serialized by its own callbacks, and distinct transactions are
  /// independent, so only independent operations ever share the window.
  int client_window = 1;
  /// Leader-side batching knobs (see consensus::GroupTuning).
  int batch_size = 1;
  sim::Duration batch_delay = 0;
  /// Checkpoint/snapshot threshold (see consensus::GroupTuning).
  uint64_t snapshot_threshold = 0;
};

class ShardedStateMachine;

/// Per-shard transaction manager. Owns the shard's lock table; talks to
/// its shard group and to the decision group through GroupClients.
class TxManager : public sim::Process {
 public:
  TxManager(ShardedStateMachine* owner, int shard);

  void OnMessage(sim::NodeId from, const sim::Message& msg) override;

  /// Completion callback from the shard-group client.
  void OnShardResult(uint64_t seq, const std::string& result);
  /// Completion callback from the decision-group client (recovery path).
  void OnDecisionResult(uint64_t seq, const std::string& result);

  int prepares() const { return prepares_; }
  int recoveries() const { return recoveries_; }
  int redirects() const { return redirects_; }
  const RoutingTable& table() const { return table_; }
  bool has_frozen_range() const { return !frozen_.empty(); }

 private:
  enum class Phase {
    kPreparing,   ///< Locks held, prepare record in flight.
    kPrepared,    ///< Voted yes; awaiting the decision.
    kCommitting,  ///< Commit decided; writes in flight.
    kRecovering,  ///< Decision timed out; asking the decision group.
  };
  struct Tx {
    Phase phase = Phase::kPreparing;
    std::vector<TxOp> writes;
    sim::NodeId coordinator = sim::kInvalidNode;
    bool one_phase = false;
    int writes_outstanding = 0;
    uint64_t recovery_timer = 0;
  };
  /// A range frozen by an in-progress ShardMove: new transactions on it
  /// are refused (vote NO), in-flight ones drain to completion, and a
  /// repeating nudge timer keeps the mover honest (it is the recovery
  /// trigger when the mover crashes mid-move).
  struct FrozenRange {
    uint64_t lo = 0;
    uint64_t hi = 0;
    sim::NodeId mover = sim::kInvalidNode;
    std::set<uint64_t> draining;  ///< In-flight txs touching the range.
    bool drained_sent = false;
    uint64_t nudge_timer = 0;
  };

  void Vote(uint64_t tx_id, const Tx& tx, bool yes);
  void ApplyDecision(uint64_t tx_id, bool commit);
  void ReleaseLocks(uint64_t tx_id);
  void Finish(uint64_t tx_id, bool committed);
  bool KeyFrozen(const std::string& key) const;
  /// Removes a finished tx from every drain set; announces quiescence.
  void NoteTxGone(uint64_t tx_id);
  /// Repeating mover nudge while a range stays frozen.
  void ArmNudge(const std::string& move_id);
  void OnMoveFreeze(sim::NodeId from, const MoveFreezeMsg& m);
  void OnMoveInstall(sim::NodeId from, const MoveInstallMsg& m);
  void OnMoveUnfreeze(sim::NodeId from, const MoveUnfreezeMsg& m);

  ShardedStateMachine* owner_;
  int shard_;
  RoutingTable table_;  ///< This TM's view of the routing (epoch-gated).
  std::map<uint64_t, Tx> txs_;
  std::map<std::string, FrozenRange> frozen_;   ///< move_id -> range.
  std::map<std::string, uint64_t> lock_table_;  ///< key -> owning tx.
  std::map<uint64_t, uint64_t> shard_seq_tx_;   ///< client seq -> tx.
  std::map<uint64_t, uint64_t> decision_seq_tx_;
  int prepares_ = 0;
  int recoveries_ = 0;
  int redirects_ = 0;
};

/// 2PC front-end: drives prepare/decide/ack rounds. All state is
/// volatile; durability lives in the decision group.
class TxCoordinator : public sim::Process {
 public:
  explicit TxCoordinator(ShardedStateMachine* owner);

  void OnMessage(sim::NodeId from, const sim::Message& msg) override;
  void OnRestart() override;

  /// Completion callback from the decision-group client.
  void OnDecisionResult(uint64_t seq, const std::string& result);

  int started() const { return started_; }
  int committed() const { return committed_; }
  int aborted() const { return aborted_; }
  int redirected() const { return redirected_; }
  const RoutingTable& table() const { return table_; }

 private:
  struct Tx {
    sim::NodeId client = sim::kInvalidNode;
    std::map<int, std::vector<TxOp>> by_shard;
    std::set<int> yes_votes;
    bool one_phase = false;
    bool decision_pending = false;  ///< SETNX in flight.
    bool decided = false;
    bool commit = false;
    std::set<int> acked;
    uint64_t vote_timer = 0;
  };

  void Decide(uint64_t tx_id, bool commit);
  void FinishIfAcked(uint64_t tx_id);

  ShardedStateMachine* owner_;
  RoutingTable table_;  ///< Routing cache; refreshed by TM redirects.
  std::map<uint64_t, Tx> txs_;
  std::map<uint64_t, uint64_t> decision_seq_tx_;  ///< client seq -> tx.
  int started_ = 0;
  int committed_ = 0;
  int aborted_ = 0;
  int redirected_ = 0;
};

/// The assembled sharded system. Spawn order (and therefore node-id
/// layout) is fixed: shard-group replicas first, then decision-group
/// replicas, then the infrastructure processes — so fault bounds can
/// target exactly the consensus nodes by id range.
class ShardedStateMachine {
 public:
  explicit ShardedStateMachine(ShardOptions options);
  ~ShardedStateMachine();

  /// Spawns every group and process into `sim`. Call exactly once,
  /// before Simulation::Start (or via Simulation::Builder::Setup).
  void Build(sim::Simulation* sim);

  /// Which shard owns `key` at EPOCH 1 (the static initial table, equal
  /// FNV-1a hash ranges across the first `shards` groups). Live routing
  /// may differ after a move; the routed components (coordinator, TMs,
  /// workload driver) each hold an epoch-gated RoutingTable cache.
  int ShardOf(const std::string& key) const;
  static uint64_t HashKey(const std::string& key);

  /// The epoch-1 routing table every cache starts from.
  const RoutingTable& InitialTable() const { return initial_table_; }

  /// Serving groups + spare groups.
  int total_groups() const { return options_.shards + options_.spare_groups; }

  /// The i-th key (by probe order) that hashes to `shard` — for tests
  /// and workloads that need keys with a known placement. Only valid
  /// for serving shards (< options().shards).
  std::string KeyForShard(int shard, int i) const;

  const ShardOptions& options() const { return options_; }
  sim::NodeId coordinator_id() const { return coordinator_->id(); }
  TxCoordinator* coordinator() const { return coordinator_; }
  TxManager* tx_manager(int shard) const { return tms_[shard]; }
  sim::NodeId tm_id(int shard) const { return tms_[shard]->id(); }
  ShardMover* mover() const { return mover_; }
  sim::NodeId mover_id() const;

  const consensus::ReplicaGroup* shard_group(int shard) const {
    return shard_groups_[shard].get();
  }
  const consensus::ReplicaGroup* decision_group() const {
    return decision_group_.get();
  }
  /// Every consensus node id, shard groups then decision group — the
  /// crash/partition surface for fault injection.
  std::vector<sim::NodeId> ConsensusNodes() const;
  /// Replica ids of one shard group (for targeted partitions).
  const std::vector<sim::NodeId>& ShardMembers(int shard) const {
    return shard_groups_[shard]->members();
  }

  /// Runs every group's invariant probe (e.g. Raft Election Safety).
  void Probe();
  /// Group-level invariant violations, aggregated across all groups.
  std::vector<std::string> Violations() const;

  // --- internal wiring (used by TxManager / TxCoordinator) ---
  consensus::GroupClient* shard_client(int shard) const {
    return shard_clients_[shard];
  }
  consensus::GroupClient* tm_decision_client(int shard) const {
    return tm_decision_clients_[shard];
  }
  consensus::GroupClient* coord_decision_client() const {
    return coord_decision_client_;
  }
  consensus::GroupClient* mover_group_client(int group) const {
    return mover_group_clients_[group];
  }
  consensus::GroupClient* mover_decision_client() const {
    return mover_decision_client_;
  }

 private:
  ShardOptions options_;
  RoutingTable initial_table_;
  std::vector<std::unique_ptr<consensus::ReplicaGroup>> shard_groups_;
  std::unique_ptr<consensus::ReplicaGroup> decision_group_;
  std::vector<TxManager*> tms_;
  std::vector<consensus::GroupClient*> shard_clients_;
  std::vector<consensus::GroupClient*> tm_decision_clients_;
  TxCoordinator* coordinator_ = nullptr;
  consensus::GroupClient* coord_decision_client_ = nullptr;
  ShardMover* mover_ = nullptr;
  std::vector<consensus::GroupClient*> mover_group_clients_;
  consensus::GroupClient* mover_decision_client_ = nullptr;
};

/// Decision-record key for `tx_id` in the decision group's KV state.
std::string DecisionKey(uint64_t tx_id);
/// Durable prepare-record key for `tx_id` in a shard group's KV state.
std::string PrepareKey(uint64_t tx_id);

}  // namespace consensus40::shard

#endif  // CONSENSUS40_SHARD_SHARD_H_
