/// \file
/// Sharded state machine: a key space partitioned across N independent
/// replication groups, with cross-shard transactions committed by 2PC
/// whose commit decisions are THEMSELVES replicated log entries.
///
/// This is the composition the paper's modern-systems section describes
/// (Spanner, DynamoDB): per-shard consensus below, a commitment protocol
/// above. Classic 2PC blocks when the coordinator fails between prepare
/// and commit; here the decision is a write-once record (SETNX) in a
/// replicated coordination group, so any prepared participant can
/// terminate the protocol on its own — Gray & Lamport's "Consensus on
/// Transaction Commit". The coordinator front-end is a convenience, not
/// a single point of failure: crash it at the worst moment and the
/// participants still converge on one decision.
///
/// Transactions are typed op lists (GET/PUT/DELETE/CAS). Read-write
/// transactions run strict two-phase locking, no-wait flavour: each
/// participant takes shared locks for reads and exclusive locks for
/// writes, evaluates GETs and CAS compares against its shard's KV at
/// prepare time (read-your-writes within the transaction), and holds
/// the locks until the decision is applied. Read-only transactions
/// never lock at all — see TxCoordinator's snapshot path.
///
/// Roles:
///   - `TxManager` (one per shard): conflict-checks a lock table, writes
///     a durable prepare record into its shard's log, votes, applies the
///     decision, and — on decision timeout — proposes ABORT to the
///     decision group itself (participant-driven termination).
///   - `TxCoordinator`: collects votes, writes the decision record,
///     broadcasts it, answers the client. Stateless across restarts;
///     clients re-submit and every step is idempotent.
///   - `ShardedStateMachine`: assembles shard groups, the decision
///     group, TMs, and the coordinator inside one simulation. Built on
///     the protocol-agnostic consensus::ReplicaGroup registry, so the
///     whole layer runs unchanged over Raft or Multi-Paxos.

#ifndef CONSENSUS40_SHARD_SHARD_H_
#define CONSENSUS40_SHARD_SHARD_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "consensus/replica_group.h"
#include "shard/routing.h"
#include "sim/simulation.h"

namespace consensus40::shard {

class ShardMover;
struct MoveFreezeMsg;
struct MoveInstallMsg;
struct MoveUnfreezeMsg;

/// One typed operation of a transaction. A transaction is an ordered
/// list of these; reads and CAS compares are evaluated at prepare time
/// against the shard's KV (with read-your-writes: earlier ops of the
/// same transaction overlay the stored state). Transaction ids must be
/// nonzero (0 is the lock table's "no owner" sentinel).
struct TxOp {
  enum class Type : uint8_t {
    kGet = 0,     ///< Read the key; result returned in the outcome.
    kPut = 1,     ///< Blind write.
    kDelete = 2,  ///< Blind delete.
    kCas = 3,     ///< Write `value` iff the current value == `expected`.
  };
  // Field order keeps `TxOp{key, value}` aggregate-initializable as a
  // blind PUT, the historical (write-only) shape of this struct.
  std::string key;
  std::string value;     ///< New value (kPut / kCas).
  std::string expected;  ///< Compare value (kCas only).
  Type type = Type::kPut;

  static TxOp Get(std::string k) {
    return TxOp{std::move(k), "", "", Type::kGet};
  }
  static TxOp Put(std::string k, std::string v) {
    return TxOp{std::move(k), std::move(v), "", Type::kPut};
  }
  static TxOp Del(std::string k) {
    return TxOp{std::move(k), "", "", Type::kDelete};
  }
  static TxOp Cas(std::string k, std::string expect, std::string v) {
    return TxOp{std::move(k), std::move(v), std::move(expect), Type::kCas};
  }

  /// Writes take an exclusive lock; pure reads take a shared lock.
  bool IsWrite() const { return type != Type::kGet; }
  /// Ops whose evaluation needs the key's current value.
  bool NeedsRead() const { return type == Type::kGet || type == Type::kCas; }

  int ByteSize() const {
    return 9 + static_cast<int>(key.size() + value.size() + expected.size());
  }
};

/// Why a transaction aborted. Structured so the client's retry policy
/// can distinguish transient conflicts (retry) from semantic failures
/// like a CAS mismatch (retrying reproduces the abort).
enum class TxAbortReason : uint8_t {
  kNone = 0,          ///< Committed.
  kLockConflict = 1,  ///< No-wait conflict in a participant's lock table.
  kFrozenRange = 2,   ///< A key's range is frozen by an in-progress move.
  kCasMismatch = 3,   ///< A CAS op's expected value did not match.
  kMoved = 4,         ///< Routed by a stale epoch; a retry re-splits.
  kDecisionTimeout = 5,  ///< Votes missing at the deadline; presumed abort.
};
const char* TxAbortReasonName(TxAbortReason reason);

/// One evaluated read of a committed transaction, keyed by the op's
/// position in the BeginTx op list. `found == false` means the key had
/// no value (reads of absent keys are legal and participate in
/// conflict checking like any other read).
struct TxReadResult {
  int op_index = -1;
  bool found = false;
  std::string value;

  int ByteSize() const { return 13 + static_cast<int>(value.size()); }
};

/// Client -> coordinator: start (or re-submit) transaction `tx_id`.
/// Re-submission with the same id is safe at any point: prepares,
/// decision records, and writes are all idempotent. (Read results are
/// only guaranteed on the attempt that first observes the decision; a
/// re-submitted, already-committed transaction may report `committed`
/// with no read results.)
///
/// A transaction whose ops are ALL reads takes the lock-free snapshot
/// path: the coordinator pins its routing epoch, issues a read-index
/// read per key straight to the owning shard groups, and restarts the
/// whole snapshot if any read bounces MOVED — no lock-table entry, no
/// prepare record, no decision record.
struct BeginTxMsg : sim::Message {
  BeginTxMsg(uint64_t id, std::vector<TxOp> o) : tx_id(id), ops(std::move(o)) {}
  const char* TypeName() const override { return "begin-tx"; }
  int ByteSize() const override {
    int size = 16;
    for (const TxOp& op : ops) size += op.ByteSize();
    return size;
  }
  uint64_t tx_id;
  std::vector<TxOp> ops;
};

/// Coordinator -> client: final transaction outcome — the commit/abort
/// verdict, a structured abort reason, and (on commit) the evaluated
/// per-op read results.
struct TxOutcomeMsg : sim::Message {
  TxOutcomeMsg(uint64_t id, bool c) : tx_id(id), committed(c) {}
  const char* TypeName() const override { return "tx-outcome"; }
  int ByteSize() const override {
    int size = 18;
    for (const TxReadResult& r : reads) size += r.ByteSize();
    return size;
  }
  uint64_t tx_id;
  bool committed;
  TxAbortReason reason = TxAbortReason::kNone;
  std::vector<TxReadResult> reads;  ///< Sorted by op_index (commit only).
  /// Snapshot path only: the routing epoch every read was served under.
  uint64_t snapshot_epoch = 0;
};

/// One op of a shard's slice, tagged with its position in the client's
/// op list so read results keep their global indices across the split.
struct TxShardOp {
  int index = -1;
  TxOp op;
};

/// Coordinator -> TM: prepare `tx_id` (or, when this shard is the only
/// participant, commit it one-phase — no prepare record, no decision key).
struct TmPrepareMsg : sim::Message {
  const char* TypeName() const override { return "tm-prepare"; }
  int ByteSize() const override {
    int size = 17;
    for (const TxShardOp& sop : ops) size += 4 + sop.op.ByteSize();
    return size;
  }
  uint64_t tx_id = 0;
  bool one_phase = false;
  std::vector<TxShardOp> ops;  ///< This shard's slice of the transaction.
};

/// TM -> coordinator: vote. For one-phase transactions `yes` already
/// means "applied and committed". A YES vote carries the shard's
/// evaluated read results; a NO vote carries the refusal reason.
struct TmVoteMsg : sim::Message {
  const char* TypeName() const override { return "tm-vote"; }
  int ByteSize() const override {
    int size = 22;
    for (const TxReadResult& r : reads) size += r.ByteSize();
    return size;
  }
  uint64_t tx_id = 0;
  int shard = -1;
  bool yes = false;
  TxAbortReason reason = TxAbortReason::kNone;
  std::vector<TxReadResult> reads;
};

/// Coordinator -> TM: the (replicated) decision.
struct TmDecisionMsg : sim::Message {
  const char* TypeName() const override { return "tm-decision"; }
  int ByteSize() const override { return 17; }
  uint64_t tx_id = 0;
  bool commit = false;
};

/// TM -> coordinator: decision applied, locks released.
struct TmAckMsg : sim::Message {
  const char* TypeName() const override { return "tm-ack"; }
  int ByteSize() const override { return 20; }
  uint64_t tx_id = 0;
  int shard = -1;
};

/// TM -> coordinator: "a key of this transaction is not mine — here is
/// my (newer) routing table". The coordinator adopts the table (epoch-
/// gated, never backwards) and aborts the transaction; the client
/// retries and the re-split lands at the new owner. This is how routing
/// epochs propagate after a move: nobody is told proactively, stale
/// routes bounce.
struct TmRedirectMsg : sim::Message {
  const char* TypeName() const override { return "tm-redirect"; }
  int ByteSize() const override { return 16 + static_cast<int>(table.size()); }
  uint64_t tx_id = 0;
  std::string table;  ///< RoutingTable::Encode of the TM's table.
};

struct ShardOptions {
  int shards = 2;
  int replicas_per_shard = 3;
  /// Extra replica groups that own no key range at epoch 1 — migration
  /// destinations for live splits. They get the same replicas, TM, and
  /// clients as serving groups.
  int spare_groups = 0;
  /// OUT-OF-BOUNDS knob for the safety checker: the mover skips the
  /// freeze/drain phases and flips the routing epoch while transactions
  /// are still writing to the old owner. Violates exactly-once (lost
  /// writes); exists so the checker can prove the drain is load-bearing.
  bool unsafe_flip_before_drain = false;
  /// OUT-OF-BOUNDS knob for the safety checker: TMs skip the shared
  /// locks that GET ops normally take, so two transactions can each
  /// read a key the other is writing and both commit — textbook write
  /// skew. Violates the serializability audit; exists so the checker
  /// can prove the shared locks are load-bearing.
  bool unsafe_no_read_locks = false;
  /// Replicas of the decision group (the "Paxos registrar" of Gray &
  /// Lamport's commit protocol).
  int decision_replicas = 3;
  /// consensus::ReplicaGroup registry key for every group.
  std::string protocol = "raft";
  /// Coordinator patience for votes before it decides ABORT.
  sim::Duration vote_timeout = 250 * sim::kMillisecond;
  /// Prepared-TM patience for the decision before it asks the decision
  /// group itself (participant-driven termination).
  sim::Duration recovery_timeout = 1 * sim::kSecond;

  /// Hot-path tuning, applied uniformly to every group (shards and the
  /// decision group) and to every GroupClient the layer spawns. The
  /// defaults keep the untuned serialize-everything behaviour.
  /// In-flight window per GroupClient (TM shard/decision clients and
  /// workload readers). Safe here: each transaction's steps are already
  /// serialized by its own callbacks, and distinct transactions are
  /// independent, so only independent operations ever share the window.
  int client_window = 1;
  /// Leader-side batching knobs (see consensus::GroupTuning).
  int batch_size = 1;
  sim::Duration batch_delay = 0;
  /// Checkpoint/snapshot threshold (see consensus::GroupTuning).
  uint64_t snapshot_threshold = 0;
};

class ShardedStateMachine;

/// Per-shard transaction manager. Owns the shard's lock table; talks to
/// its shard group and to the decision group through GroupClients.
class TxManager : public sim::Process {
 public:
  TxManager(ShardedStateMachine* owner, int shard);

  void OnMessage(sim::NodeId from, const sim::Message& msg) override;

  /// Completion callback from the shard-group client. `read` marks
  /// read-index results (prepare-time read evaluation).
  void OnShardResult(uint64_t seq, const std::string& result, bool read);
  /// Completion callback from the decision-group client (recovery path).
  void OnDecisionResult(uint64_t seq, const std::string& result);

  int prepares() const { return prepares_; }
  int recoveries() const { return recoveries_; }
  int redirects() const { return redirects_; }
  /// Keys currently locked (shared or exclusive) — snapshot reads must
  /// never show up here.
  size_t lock_table_size() const { return lock_table_.size(); }
  const RoutingTable& table() const { return table_; }
  bool has_frozen_range() const { return !frozen_.empty(); }

 private:
  enum class Phase {
    kPreparing,   ///< Locks held; reads and/or prepare record in flight.
    kPrepared,    ///< Voted yes; awaiting the decision.
    kCommitting,  ///< Commit decided; writes in flight.
    kRecovering,  ///< Decision timed out; asking the decision group.
  };
  struct Tx {
    Phase phase = Phase::kPreparing;
    std::vector<TxShardOp> ops;
    sim::NodeId coordinator = sim::kInvalidNode;
    bool one_phase = false;
    int writes_outstanding = 0;
    int reads_outstanding = 0;
    /// Raw read-index results, key -> KvStore reply ("NIL" = absent).
    std::map<std::string, std::string> read_values;
    /// Evaluated GET results for the vote (globally indexed).
    std::vector<TxReadResult> reads;
    /// KV commands to apply on commit, one per write op in op order
    /// (a validated CAS becomes a plain PUT: its compare already
    /// happened under the exclusive lock, and nothing else can write
    /// the key before the lock is released).
    std::vector<std::string> effects;
    uint64_t recovery_timer = 0;
  };
  /// Strict-2PL lock state of one key, no-wait flavour: conflicting
  /// prepares are refused outright (vote NO), never queued — no
  /// deadlocks, ever. `exclusive == 0` means no writer (tx ids are
  /// nonzero by contract).
  struct LockEntry {
    uint64_t exclusive = 0;
    std::set<uint64_t> shared;
  };
  /// A range frozen by an in-progress ShardMove: new transactions on it
  /// are refused (vote NO), in-flight ones drain to completion, and a
  /// repeating nudge timer keeps the mover honest (it is the recovery
  /// trigger when the mover crashes mid-move).
  struct FrozenRange {
    uint64_t lo = 0;
    uint64_t hi = 0;
    sim::NodeId mover = sim::kInvalidNode;
    std::set<uint64_t> draining;  ///< In-flight txs touching the range.
    bool drained_sent = false;
    uint64_t nudge_timer = 0;
  };

  void Vote(uint64_t tx_id, const Tx& tx, bool yes,
            TxAbortReason reason = TxAbortReason::kNone);
  void ApplyDecision(uint64_t tx_id, bool commit);
  void ReleaseLocks(uint64_t tx_id);
  void Finish(uint64_t tx_id, bool committed);
  /// Refuse a prepared-but-undecided tx: vote NO, drop locks and state.
  /// (Safe only before the prepare record is proposed.)
  void Refuse(uint64_t tx_id, TxAbortReason reason);
  /// All reads arrived: evaluate ops in order with a read-your-writes
  /// overlay, validate CAS compares, then proceed to prepare/apply.
  void EvaluateReads(uint64_t tx_id);
  /// Reads evaluated (or none needed): one-phase apply or durable
  /// prepare record.
  void Proceed(uint64_t tx_id);
  bool KeyFrozen(const std::string& key) const;
  /// Removes a finished tx from every drain set; announces quiescence.
  void NoteTxGone(uint64_t tx_id);
  /// Repeating mover nudge while a range stays frozen.
  void ArmNudge(const std::string& move_id);
  void OnMoveFreeze(sim::NodeId from, const MoveFreezeMsg& m);
  void OnMoveInstall(sim::NodeId from, const MoveInstallMsg& m);
  void OnMoveUnfreeze(sim::NodeId from, const MoveUnfreezeMsg& m);

  ShardedStateMachine* owner_;
  int shard_;
  RoutingTable table_;  ///< This TM's view of the routing (epoch-gated).
  std::map<uint64_t, Tx> txs_;
  std::map<std::string, FrozenRange> frozen_;    ///< move_id -> range.
  std::map<std::string, LockEntry> lock_table_;  ///< key -> lock state.
  std::map<uint64_t, uint64_t> shard_seq_tx_;    ///< client seq -> tx.
  /// Prepare-time read-index reads in flight: client seq -> (tx, key).
  std::map<uint64_t, std::pair<uint64_t, std::string>> shard_read_seq_;
  std::map<uint64_t, uint64_t> decision_seq_tx_;
  int prepares_ = 0;
  int recoveries_ = 0;
  int redirects_ = 0;
};

/// 2PC front-end: drives prepare/decide/ack rounds for read-write
/// transactions, and serves read-only transactions off a lock-free
/// snapshot path. All state is volatile; durability lives in the
/// decision group.
///
/// SNAPSHOT PATH. A transaction whose ops are all GETs never touches a
/// lock table, prepare record, or decision record. The coordinator
/// pins the routing epoch of its table, issues one read-index read per
/// key to the owning shard group (linearizable per key), and returns
/// the batch stamped with that epoch. If any read bounces "MOVED e"
/// the coordinator fetches the "__rt.e" record from the decision
/// group, adopts the newer table, and restarts the WHOLE snapshot at
/// the new epoch — partial results are discarded, which is what makes
/// the result non-torn across a live move: every returned value was
/// served under one routing epoch, and the mover's freeze-then-drain
/// ladder guarantees a moved range is write-quiesced between the two
/// epochs' serving windows.
class TxCoordinator : public sim::Process {
 public:
  explicit TxCoordinator(ShardedStateMachine* owner);

  void OnMessage(sim::NodeId from, const sim::Message& msg) override;
  void OnRestart() override;

  /// Completion callback from the decision-group client.
  void OnDecisionResult(uint64_t seq, const std::string& result);
  /// Completion callback from a (lazily spawned) snapshot reader.
  void OnSnapshotResult(int group, uint64_t seq, const std::string& result);

  int started() const { return started_; }
  int committed() const { return committed_; }
  int aborted() const { return aborted_; }
  int redirected() const { return redirected_; }
  /// Completed read-only snapshot transactions.
  int snapshots() const { return snapshots_; }
  /// Whole-snapshot restarts forced by MOVED bounces.
  int snapshot_restarts() const { return snapshot_restarts_; }
  const RoutingTable& table() const { return table_; }

 private:
  struct Tx {
    sim::NodeId client = sim::kInvalidNode;
    std::vector<TxOp> ops;  ///< Full op list (snapshot restarts re-split).
    std::map<int, std::vector<TxShardOp>> by_shard;
    std::set<int> yes_votes;
    bool one_phase = false;
    bool snapshot = false;  ///< All-GET: lock-free epoch-consistent path.
    uint64_t snapshot_epoch = 0;  ///< Epoch the current attempt is pinned to.
    int reads_outstanding = 0;
    std::vector<TxReadResult> reads;  ///< Merged results (by op_index).
    TxAbortReason reason = TxAbortReason::kNone;
    bool decision_pending = false;  ///< SETNX in flight.
    bool decided = false;
    bool commit = false;
    std::set<int> acked;
    uint64_t vote_timer = 0;
  };

  void Decide(uint64_t tx_id, bool commit, TxAbortReason reason);
  void FinishIfAcked(uint64_t tx_id);
  /// (Re-)issues every read of a snapshot tx, pinned to table_.epoch().
  void StartSnapshot(uint64_t tx_id);
  /// All snapshot reads landed: answer the client, forget the tx.
  void FinishSnapshot(uint64_t tx_id);
  /// A snapshot read bounced MOVED: adopt/fetch the newer table, then
  /// restart the whole snapshot.
  void OnSnapshotMoved(uint64_t tx_id, uint64_t epoch);
  /// Read the "__rt.<epoch>" record from the decision group (at most
  /// one fetch per epoch in flight).
  void FetchTable(uint64_t epoch);
  /// Restarts every snapshot parked on a table fetch.
  void RestartParkedSnapshots();

  ShardedStateMachine* owner_;
  RoutingTable table_;  ///< Routing cache; refreshed by TM redirects.
  std::map<uint64_t, Tx> txs_;
  std::map<uint64_t, uint64_t> decision_seq_tx_;  ///< client seq -> tx.
  /// Snapshot reads in flight: (group, reader seq) -> (tx, op_index).
  std::map<std::pair<int, uint64_t>, std::pair<uint64_t, int>> snapshot_seq_;
  /// Routing-table fetches in flight: decision-client seq -> epoch.
  std::map<uint64_t, uint64_t> rt_seq_epoch_;
  std::set<uint64_t> rt_epochs_inflight_;
  std::set<uint64_t> parked_snapshots_;  ///< Awaiting a table fetch.
  int started_ = 0;
  int committed_ = 0;
  int aborted_ = 0;
  int redirected_ = 0;
  int snapshots_ = 0;
  int snapshot_restarts_ = 0;
};

/// The assembled sharded system. Spawn order (and therefore node-id
/// layout) is fixed: shard-group replicas first, then decision-group
/// replicas, then the infrastructure processes — so fault bounds can
/// target exactly the consensus nodes by id range.
class ShardedStateMachine {
 public:
  explicit ShardedStateMachine(ShardOptions options);
  ~ShardedStateMachine();

  /// Spawns every group and process into `sim`. Call exactly once,
  /// before Simulation::Start (or via Simulation::Builder::Setup).
  void Build(sim::Simulation* sim);

  /// Which shard owns `key` at EPOCH 1 (the static initial table, equal
  /// FNV-1a hash ranges across the first `shards` groups). Live routing
  /// may differ after a move; the routed components (coordinator, TMs,
  /// workload driver) each hold an epoch-gated RoutingTable cache.
  int ShardOf(const std::string& key) const;
  static uint64_t HashKey(const std::string& key);

  /// The epoch-1 routing table every cache starts from.
  const RoutingTable& InitialTable() const { return initial_table_; }

  /// Serving groups + spare groups.
  int total_groups() const { return options_.shards + options_.spare_groups; }

  /// The i-th key (by probe order) that hashes to `shard` — for tests
  /// and workloads that need keys with a known placement. Only valid
  /// for serving shards (< options().shards).
  std::string KeyForShard(int shard, int i) const;

  const ShardOptions& options() const { return options_; }
  sim::NodeId coordinator_id() const { return coordinator_->id(); }
  TxCoordinator* coordinator() const { return coordinator_; }
  TxManager* tx_manager(int shard) const { return tms_[shard]; }
  sim::NodeId tm_id(int shard) const { return tms_[shard]->id(); }
  ShardMover* mover() const { return mover_; }
  sim::NodeId mover_id() const;

  const consensus::ReplicaGroup* shard_group(int shard) const {
    return shard_groups_[shard].get();
  }
  const consensus::ReplicaGroup* decision_group() const {
    return decision_group_.get();
  }
  /// Every consensus node id, shard groups then decision group — the
  /// crash/partition surface for fault injection.
  std::vector<sim::NodeId> ConsensusNodes() const;
  /// Replica ids of one shard group (for targeted partitions).
  const std::vector<sim::NodeId>& ShardMembers(int shard) const {
    return shard_groups_[shard]->members();
  }

  /// Runs every group's invariant probe (e.g. Raft Election Safety).
  void Probe();
  /// Group-level invariant violations, aggregated across all groups.
  std::vector<std::string> Violations() const;

  // --- internal wiring (used by TxManager / TxCoordinator) ---
  consensus::GroupClient* shard_client(int shard) const {
    return shard_clients_[shard];
  }
  consensus::GroupClient* tm_decision_client(int shard) const {
    return tm_decision_clients_[shard];
  }
  consensus::GroupClient* coord_decision_client() const {
    return coord_decision_client_;
  }
  consensus::GroupClient* mover_group_client(int group) const {
    return mover_group_clients_[group];
  }
  consensus::GroupClient* mover_decision_client() const {
    return mover_decision_client_;
  }
  /// Snapshot reader for `group`, spawned LAZILY on first use: spawning
  /// forks the root rng and shifts every later delay draw, so runs that
  /// never issue a read-only transaction must not pay for the readers
  /// (keeps pre-snapshot seeds and pinned repros bit-identical).
  consensus::GroupClient* snapshot_client(int group);

 private:
  ShardOptions options_;
  RoutingTable initial_table_;
  sim::Simulation* sim_ = nullptr;  ///< For lazy snapshot-reader spawns.
  std::vector<std::unique_ptr<consensus::ReplicaGroup>> shard_groups_;
  std::unique_ptr<consensus::ReplicaGroup> decision_group_;
  std::vector<TxManager*> tms_;
  std::vector<consensus::GroupClient*> shard_clients_;
  std::vector<consensus::GroupClient*> tm_decision_clients_;
  TxCoordinator* coordinator_ = nullptr;
  consensus::GroupClient* coord_decision_client_ = nullptr;
  ShardMover* mover_ = nullptr;
  std::vector<consensus::GroupClient*> mover_group_clients_;
  consensus::GroupClient* mover_decision_client_ = nullptr;
  std::vector<consensus::GroupClient*> snapshot_clients_;
};

/// Decision-record key for `tx_id` in the decision group's KV state.
std::string DecisionKey(uint64_t tx_id);
/// Durable prepare-record key for `tx_id` in a shard group's KV state.
std::string PrepareKey(uint64_t tx_id);

}  // namespace consensus40::shard

#endif  // CONSENSUS40_SHARD_SHARD_H_
