#ifndef CONSENSUS40_CRYPTO_SHA256_H_
#define CONSENSUS40_CRYPTO_SHA256_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace consensus40::crypto {

/// A 256-bit digest.
using Digest = std::array<uint8_t, 32>;

/// Incremental SHA-256 (FIPS 180-4), implemented from scratch: the
/// blockchain module mines against real SHA-256 at low difficulty and the
/// signature scheme is built on it.
class Sha256 {
 public:
  Sha256();

  /// Absorbs `len` bytes.
  void Update(const void* data, size_t len);
  void Update(std::string_view s) { Update(s.data(), s.size()); }

  /// Finalizes and returns the digest. The object must not be reused after
  /// Finish without re-construction.
  Digest Finish();

  /// One-shot convenience.
  static Digest Hash(std::string_view data);
  static Digest Hash(const void* data, size_t len);

  /// SHA-256d (double hash), as used by Bitcoin block headers.
  static Digest DoubleHash(const void* data, size_t len);

 private:
  void ProcessBlock(const uint8_t* block);

  uint32_t state_[8];
  uint64_t bit_count_;
  uint8_t buffer_[64];
  size_t buffer_len_;
};

/// Lowercase hex rendering of a digest.
std::string DigestToHex(const Digest& d);

/// Number of leading zero bits of the digest interpreted big-endian. Used by
/// proof-of-work difficulty checks.
int LeadingZeroBits(const Digest& d);

/// Big-endian lexicographic comparison: true iff a < b. Used to compare a
/// block hash against a difficulty target.
bool DigestLess(const Digest& a, const Digest& b);

}  // namespace consensus40::crypto

#endif  // CONSENSUS40_CRYPTO_SHA256_H_
