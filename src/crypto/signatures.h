#ifndef CONSENSUS40_CRYPTO_SIGNATURES_H_
#define CONSENSUS40_CRYPTO_SIGNATURES_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "crypto/sha256.h"

namespace consensus40::crypto {

/// A signature over a digest. In this simulation a signature is an
/// HMAC-style tag computed from the signer's registry secret: honest
/// verification goes through the shared KeyRegistry, so a Byzantine node can
/// refuse to sign, sign garbage, or sign conflicting statements, but can
/// never forge another node's signature — exactly the "authenticated
/// Byzantine" model the paper's BFT protocols assume.
struct Signature {
  int32_t signer = -1;
  Digest tag{};

  bool operator==(const Signature& other) const {
    return signer == other.signer && tag == other.tag;
  }
};

/// Shared "PKI" for a cluster. Secrets are derived deterministically from a
/// master seed, so simulations remain reproducible.
class KeyRegistry {
 public:
  /// Creates a registry for `num_nodes` signers from `seed`.
  KeyRegistry(uint64_t seed, int num_nodes);

  int num_nodes() const { return static_cast<int>(secrets_.size()); }

  /// Signs `digest` on behalf of `signer`. The signer id is embedded in the
  /// returned signature.
  Signature Sign(int signer, const Digest& digest) const;

  /// Convenience: sign arbitrary bytes (hashed first).
  Signature Sign(int signer, std::string_view data) const;

  /// Verifies a signature over the given digest.
  bool Verify(const Signature& sig, const Digest& digest) const;
  bool Verify(const Signature& sig, std::string_view data) const;

  /// MAC for point-to-point authenticators (cheaper than signatures in the
  /// real world; identical here but kept as a distinct type name in APIs).
  Digest Mac(int from, int to, const Digest& digest) const;
  bool VerifyMac(int from, int to, const Digest& digest,
                 const Digest& mac) const;

 private:
  Digest TagFor(int signer, const Digest& digest) const;

  std::vector<Digest> secrets_;
};

/// An aggregate certificate standing in for a (k,n)-threshold signature:
/// the value digest plus the set of distinct signers whose shares were
/// combined. HotStuff's quorum certificates are instances of this. Verify
/// checks every share against the registry and the distinct-signer count
/// against the threshold.
struct AggregateCertificate {
  Digest value{};
  std::vector<Signature> shares;

  /// True iff `shares` holds >= threshold valid, distinct-signer signatures
  /// over `value`.
  bool Verify(const KeyRegistry& registry, int threshold) const;

  /// Size model: a combined threshold signature is O(1), independent of the
  /// number of shares — this is the size benches use for HotStuff.
  static constexpr int kCombinedByteSize = 96;
};

/// Unique Sequential Identifier Generator: the trusted monotonic counter of
/// MinBFT / CheapBFT. The counter state lives in this object (conceptually
/// inside the tamper-proof hardware), so even a Byzantine replica cannot
/// obtain two certified identifiers with the same counter value.
class Usig {
 public:
  /// Certified identifier: (counter value, authenticator).
  struct UI {
    int32_t signer = -1;
    uint64_t counter = 0;
    Digest tag{};
  };

  explicit Usig(const KeyRegistry* registry) : registry_(registry) {}

  /// Creates the next identifier for `signer` bound to `digest`. Counter
  /// values are assigned strictly sequentially per signer.
  UI CreateUi(int signer, const Digest& digest);

  /// Verifies that `ui` certifies (signer, counter, digest).
  bool VerifyUi(const UI& ui, const Digest& digest) const;

  /// Counter value most recently issued to `signer` (0 if none).
  uint64_t LastCounter(int signer) const;

 private:
  Digest UiTag(int signer, uint64_t counter, const Digest& digest) const;

  const KeyRegistry* registry_;
  std::map<int, uint64_t> counters_;
};

}  // namespace consensus40::crypto

#endif  // CONSENSUS40_CRYPTO_SIGNATURES_H_
