#include "crypto/signatures.h"

#include <set>

#include "common/rng.h"

namespace consensus40::crypto {

KeyRegistry::KeyRegistry(uint64_t seed, int num_nodes) {
  secrets_.resize(num_nodes);
  uint64_t state = seed ^ 0xc0ffee1234567890ULL;
  for (int i = 0; i < num_nodes; ++i) {
    uint64_t a = SplitMix64(&state);
    uint64_t b = SplitMix64(&state);
    Sha256 h;
    h.Update(&a, sizeof(a));
    h.Update(&b, sizeof(b));
    h.Update(&i, sizeof(i));
    secrets_[i] = h.Finish();
  }
}

Digest KeyRegistry::TagFor(int signer, const Digest& digest) const {
  Sha256 h;
  h.Update(secrets_[signer].data(), secrets_[signer].size());
  h.Update(digest.data(), digest.size());
  return h.Finish();
}

Signature KeyRegistry::Sign(int signer, const Digest& digest) const {
  return Signature{signer, TagFor(signer, digest)};
}

Signature KeyRegistry::Sign(int signer, std::string_view data) const {
  return Sign(signer, Sha256::Hash(data));
}

bool KeyRegistry::Verify(const Signature& sig, const Digest& digest) const {
  if (sig.signer < 0 || sig.signer >= num_nodes()) return false;
  return TagFor(sig.signer, digest) == sig.tag;
}

bool KeyRegistry::Verify(const Signature& sig, std::string_view data) const {
  return Verify(sig, Sha256::Hash(data));
}

Digest KeyRegistry::Mac(int from, int to, const Digest& digest) const {
  Sha256 h;
  h.Update(secrets_[from].data(), secrets_[from].size());
  h.Update(secrets_[to].data(), secrets_[to].size());
  h.Update(digest.data(), digest.size());
  return h.Finish();
}

bool KeyRegistry::VerifyMac(int from, int to, const Digest& digest,
                            const Digest& mac) const {
  if (from < 0 || from >= num_nodes() || to < 0 || to >= num_nodes()) {
    return false;
  }
  return Mac(from, to, digest) == mac;
}

bool AggregateCertificate::Verify(const KeyRegistry& registry,
                                  int threshold) const {
  std::set<int32_t> distinct;
  for (const Signature& share : shares) {
    if (!registry.Verify(share, value)) return false;
    distinct.insert(share.signer);
  }
  return static_cast<int>(distinct.size()) >= threshold;
}

Digest Usig::UiTag(int signer, uint64_t counter, const Digest& digest) const {
  Sha256 h;
  Digest base = digest;
  h.Update(&signer, sizeof(signer));
  h.Update(&counter, sizeof(counter));
  h.Update(base.data(), base.size());
  Digest inner = h.Finish();
  // Bind to the signer's secret via the registry's signing primitive.
  return registry_->Sign(signer, inner).tag;
}

Usig::UI Usig::CreateUi(int signer, const Digest& digest) {
  uint64_t next = ++counters_[signer];
  return UI{signer, next, UiTag(signer, next, digest)};
}

bool Usig::VerifyUi(const UI& ui, const Digest& digest) const {
  if (ui.signer < 0 || ui.signer >= registry_->num_nodes()) return false;
  if (ui.counter == 0) return false;
  return UiTag(ui.signer, ui.counter, digest) == ui.tag;
}

uint64_t Usig::LastCounter(int signer) const {
  auto it = counters_.find(signer);
  return it == counters_.end() ? 0 : it->second;
}

}  // namespace consensus40::crypto
