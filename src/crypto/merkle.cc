#include "crypto/merkle.h"

namespace consensus40::crypto {

namespace {

Digest HashPair(const Digest& left, const Digest& right) {
  Sha256 h;
  h.Update(left.data(), left.size());
  h.Update(right.data(), right.size());
  return h.Finish();
}

}  // namespace

Digest MerkleRoot(const std::vector<Digest>& leaves) {
  if (leaves.empty()) return Digest{};
  std::vector<Digest> level = leaves;
  while (level.size() > 1) {
    std::vector<Digest> next;
    next.reserve((level.size() + 1) / 2);
    for (size_t i = 0; i < level.size(); i += 2) {
      const Digest& left = level[i];
      const Digest& right = (i + 1 < level.size()) ? level[i + 1] : level[i];
      next.push_back(HashPair(left, right));
    }
    level = std::move(next);
  }
  return level[0];
}

MerkleProof BuildMerkleProof(const std::vector<Digest>& leaves, size_t index) {
  MerkleProof proof;
  std::vector<Digest> level = leaves;
  size_t pos = index;
  while (level.size() > 1) {
    size_t sibling = (pos % 2 == 0) ? pos + 1 : pos - 1;
    if (sibling >= level.size()) sibling = pos;  // Odd tail pairs with itself.
    proof.siblings.push_back(level[sibling]);
    proof.sibling_on_left.push_back(pos % 2 == 1);

    std::vector<Digest> next;
    next.reserve((level.size() + 1) / 2);
    for (size_t i = 0; i < level.size(); i += 2) {
      const Digest& left = level[i];
      const Digest& right = (i + 1 < level.size()) ? level[i + 1] : level[i];
      next.push_back(HashPair(left, right));
    }
    level = std::move(next);
    pos /= 2;
  }
  return proof;
}

bool VerifyMerkleProof(const Digest& leaf, const MerkleProof& proof,
                       const Digest& root) {
  if (proof.siblings.size() != proof.sibling_on_left.size()) return false;
  Digest acc = leaf;
  for (size_t i = 0; i < proof.siblings.size(); ++i) {
    acc = proof.sibling_on_left[i] ? HashPair(proof.siblings[i], acc)
                                   : HashPair(acc, proof.siblings[i]);
  }
  return acc == root;
}

}  // namespace consensus40::crypto
