#ifndef CONSENSUS40_CRYPTO_MERKLE_H_
#define CONSENSUS40_CRYPTO_MERKLE_H_

#include <vector>

#include "crypto/sha256.h"

namespace consensus40::crypto {

/// Computes the Merkle root of a list of leaf digests using the Bitcoin
/// convention: the last element of an odd-sized level is paired with itself;
/// the root of an empty tree is the all-zero digest.
Digest MerkleRoot(const std::vector<Digest>& leaves);

/// An inclusion proof for one leaf: sibling digests from leaf to root plus
/// the position bits (false = sibling on the right).
struct MerkleProof {
  std::vector<Digest> siblings;
  std::vector<bool> sibling_on_left;
};

/// Builds the inclusion proof for leaves[index]. index must be in range.
MerkleProof BuildMerkleProof(const std::vector<Digest>& leaves, size_t index);

/// Verifies that `leaf` is included under `root` via `proof`.
bool VerifyMerkleProof(const Digest& leaf, const MerkleProof& proof,
                       const Digest& root);

}  // namespace consensus40::crypto

#endif  // CONSENSUS40_CRYPTO_MERKLE_H_
