#include "paxos/multi_paxos.h"

#include <algorithm>
#include <cassert>

namespace consensus40::paxos {

namespace {
/// Sentinel result telling a client to retry against the hinted leader.
const char kRedirect[] = "\x01REDIRECT";
}  // namespace

// ---------------------------------------------------------------------------
// Messages
// ---------------------------------------------------------------------------

struct MultiPaxosReplica::PrepareMsg : sim::Message {
  explicit PrepareMsg(Ballot b) : ballot(b) {}
  const char* TypeName() const override { return "prepare"; }
  int ByteSize() const override { return 24; }
  Ballot ballot;
};

struct MultiPaxosReplica::PromiseMsg : sim::Message {
  const char* TypeName() const override { return "promise"; }
  int ByteSize() const override {
    // Each carried slot ships its full accepted command (index + ballot
    // framing + payload), not a fixed stub — the bandwidth model divides
    // latency by these bytes, so under-counting would make recovery free.
    int size = 32;
    for (const auto& [index, entry] : accepted) {
      size += 32 + entry.second.ByteSize();
    }
    return size;
  }
  Ballot ballot;
  /// index -> (AcceptNum, AcceptVal) for every unchosen accepted slot.
  std::map<uint64_t, std::pair<Ballot, smr::Command>> accepted;
};

struct MultiPaxosReplica::AcceptMsg : sim::Message {
  AcceptMsg(Ballot b, uint64_t i, smr::Command c)
      : ballot(b), index(i), cmd(std::move(c)) {}
  const char* TypeName() const override { return "accept"; }
  int ByteSize() const override { return 32 + cmd.ByteSize(); }
  Ballot ballot;
  uint64_t index;
  smr::Command cmd;
};

struct MultiPaxosReplica::AcceptedMsg : sim::Message {
  AcceptedMsg(Ballot b, uint64_t i) : ballot(b), index(i) {}
  const char* TypeName() const override { return "accepted"; }
  int ByteSize() const override { return 32; }
  Ballot ballot;
  uint64_t index;
};

struct MultiPaxosReplica::CommitMsg : sim::Message {
  const char* TypeName() const override { return "commit"; }
  int ByteSize() const override {
    return 40 + (has_entry ? cmd.ByteSize() + 8 : 0);
  }
  Ballot ballot;
  bool has_entry = false;  ///< False = pure heartbeat.
  uint64_t index = 0;
  smr::Command cmd;
  /// Leader's commit frontier: a follower that trails it asks to catch up.
  uint64_t frontier = 0;
};

struct MultiPaxosReplica::CatchupRequestMsg : sim::Message {
  explicit CatchupRequestMsg(uint64_t f) : from_index(f) {}
  const char* TypeName() const override { return "catchup-request"; }
  int ByteSize() const override { return 16; }
  uint64_t from_index;  ///< Requester's commit frontier.
};

struct MultiPaxosReplica::CatchupReplyMsg : sim::Message {
  const char* TypeName() const override { return "catchup-reply"; }
  int ByteSize() const override {
    int size = 16;
    for (const auto& [index, cmd] : entries) size += 16 + cmd.ByteSize();
    return size;
  }
  std::vector<std::pair<uint64_t, smr::Command>> entries;  ///< Chosen slots.
};

/// Full-state transfer for a follower whose gap was checkpoint-truncated
/// away on the leader (the Multi-Paxos analogue of Raft's InstallSnapshot).
struct MultiPaxosReplica::SnapshotMsg : sim::Message {
  const char* TypeName() const override { return "snapshot"; }
  int ByteSize() const override {
    // True framed size: actual key/value bytes plus cached session
    // results, not a per-entry constant (values can be megabytes).
    int size = 64;
    for (const auto& [k, v] : data) {
      size += 16 + static_cast<int>(k.size()) + static_cast<int>(v.size());
    }
    for (const auto& [client, s] : sessions) {
      size += 24;
      for (const auto& [seq, result] : s.above) {
        size += 16 + static_cast<int>(result.size());
      }
    }
    return size;
  }
  uint64_t end = 0;  ///< The snapshot covers slots [0, end).
  std::map<std::string, std::string> data;  ///< KV state.
  smr::DedupingExecutor::Sessions sessions;
};

// ---------------------------------------------------------------------------
// Replica
// ---------------------------------------------------------------------------

MultiPaxosReplica::MultiPaxosReplica(MultiPaxosOptions options)
    : options_(options) {
  if (options_.members.empty()) {
    assert(options_.n > 0);
    for (int i = 0; i < options_.n; ++i) options_.members.push_back(i);
  }
  int n = static_cast<int>(options_.members.size());
  q1_ = options_.q1 > 0 ? options_.q1 : n / 2 + 1;
  q2_ = options_.q2 > 0 ? options_.q2 : n / 2 + 1;
}

std::vector<sim::NodeId> MultiPaxosReplica::Everyone() const {
  return options_.members;
}

MultiPaxosReplica::SlotState& MultiPaxosReplica::Slot(uint64_t index) {
  return slots_[index];
}

void MultiPaxosReplica::OnStart() {
  if (id() == options_.members.front()) {
    // Bootstrap: node 0 volunteers; any later failure goes through the
    // regular timeout path.
    StartPhase1();
  } else {
    ResetLeaderTimer();
  }
}

void MultiPaxosReplica::ResetLeaderTimer() {
  CancelTimer(leader_timer_);
  sim::Duration t =
      options_.leader_timeout +
      static_cast<sim::Duration>(rng().NextBounded(options_.leader_timeout));
  leader_timer_ = SetTimer(t, [this] {
    if (!leader_active_) StartPhase1();
  });
}

void MultiPaxosReplica::StartPhase1() {
  my_ballot_ = Ballot::Successor(ballot_num_, id());
  phase1_pending_ = true;
  leader_active_ = false;
  promisers_.clear();
  recovered_.clear();
  ++phase1_rounds_;
  Multicast(Everyone(), std::make_shared<PrepareMsg>(my_ballot_));
  ResetLeaderTimer();  // Retry if this attempt stalls.
}

void MultiPaxosReplica::OnLeadershipAcquired() {
  phase1_pending_ = false;
  leader_active_ = true;
  CancelTimer(leader_timer_);

  // Re-propose every value learned during phase 1 ("learn outcome of all
  // smaller ballots"): the value accepted in the highest ballot might have
  // been decided.
  uint64_t max_idx = next_index_;
  for (const auto& [index, entry] : recovered_) {
    // Slots below our own truncation frontier are already applied (their
    // chosen value is baked into the checkpoint); re-proposing there
    // would recreate erased slot state and draw refusals.
    if (index < log_.start()) continue;
    if (!Slot(index).chosen) AcceptSlot(index, entry.second);
    if (index + 1 > max_idx) max_idx = index + 1;
  }
  next_index_ = std::max(next_index_, max_idx);
  next_index_ = std::max(next_index_, log_.commit_frontier());

  // Close every hole below the proposal cursor with a no-op (the classic
  // new-leader obligation): without this, a leader that recovered a high
  // accepted slot but not the slots beneath it can never advance its
  // commit frontier — and a laggard elected after the rest of the group
  // checkpoint-truncated would stall instead of drawing the snapshot
  // refusals that re-base it. Acceptors answer each no-op with an ack
  // (genuinely unchosen), the decided value (chosen elsewhere), or a
  // snapshot (truncated away), so one round settles the whole gap.
  for (uint64_t index = log_.commit_frontier(); index < next_index_; ++index) {
    if (recovered_.count(index) > 0) continue;  // Re-proposed above.
    if (Slot(index).chosen) continue;
    AcceptSlot(index, smr::Command{smr::kNoopClient, 0, "NOOP"});
  }

  SendHeartbeat();  // Also self-reschedules while leader.

  if (!options_.skip_phase1_when_stable && slot_in_flight_ &&
      !pending_.empty()) {
    // Per-command phase-1 mode: this phase 1 was run for the head command;
    // now send its accept.
    smr::Command cmd = std::move(pending_.front());
    pending_.pop_front();
    uint64_t index = next_index_++;
    queued_.erase({cmd.client, cmd.client_seq});
    assigned_[{cmd.client, cmd.client_seq}] = index;
    AcceptSlot(index, cmd);
    return;
  }
  slot_in_flight_ = false;
  ProposeNext();
}

void MultiPaxosReplica::Deposed() {
  // Mirrors Raft's BecomeFollower: a higher ballot exists, so nothing we
  // queued will be proposed by us — drop it (clients re-transmit to the
  // new leader) instead of re-proposing stale duplicates if we ever
  // regain leadership, and stop the linger timer that would otherwise
  // keep firing. In-flight assignment tracking goes too: a stale entry
  // would make a later retry look "in flight" forever and never re-enqueue.
  leader_active_ = false;
  CancelTimer(heartbeat_timer_);
  CancelTimer(batch_timer_);
  batch_timer_ = 0;
  pending_.clear();
  queued_.clear();
  assigned_.clear();
  slot_in_flight_ = false;
}

void MultiPaxosReplica::SendHeartbeat() {
  auto hb = std::make_shared<CommitMsg>();
  hb->ballot = my_ballot_;
  hb->frontier = log_.commit_frontier();
  Multicast(Everyone(), hb);
  if (leader_active_) {
    CancelTimer(heartbeat_timer_);
    heartbeat_timer_ =
        SetTimer(options_.heartbeat_interval, [this] { SendHeartbeat(); });
  }
}

void MultiPaxosReplica::ProposeNext() {
  if (!leader_active_) return;
  if (options_.skip_phase1_when_stable) {
    // Steady state: cut the pending queue into slots (batch_size commands
    // per slot), pipelined.
    CancelTimer(batch_timer_);
    batch_timer_ = 0;
    size_t max_take = static_cast<size_t>(std::max(1, options_.batch_size));
    while (!pending_.empty()) {
      size_t take = std::min(pending_.size(), max_take);
      uint64_t index = next_index_++;
      smr::Command entry;
      if (take == 1) {
        // A lone command ships raw, keeping the untuned log shape.
        entry = std::move(pending_.front());
        pending_.pop_front();
        queued_.erase({entry.client, entry.client_seq});
        assigned_[{entry.client, entry.client_seq}] = index;
      } else {
        std::vector<smr::Command> cmds(pending_.begin(),
                                       pending_.begin() +
                                           static_cast<long>(take));
        pending_.erase(pending_.begin(),
                       pending_.begin() + static_cast<long>(take));
        for (const smr::Command& cmd : cmds) {
          queued_.erase({cmd.client, cmd.client_seq});
          assigned_[{cmd.client, cmd.client_seq}] = index;
        }
        entry = smr::EncodeBatch(cmds);
        ++batches_cut_;
      }
      AcceptSlot(index, entry);
    }
  } else {
    // Ablation: full Basic Paxos per entry — re-run phase 1 first; the
    // accept for the head command is sent from OnLeadershipAcquired.
    if (slot_in_flight_ || pending_.empty()) return;
    slot_in_flight_ = true;
    StartPhase1();
  }
}

void MultiPaxosReplica::AcceptSlot(uint64_t index, const smr::Command& cmd) {
  Multicast(Everyone(), std::make_shared<AcceptMsg>(my_ballot_, index, cmd));
}

void MultiPaxosReplica::Chosen(uint64_t index, const smr::Command& cmd) {
  if (index < log_.start()) return;  // Already folded into a checkpoint.
  SlotState& slot = Slot(index);
  if (slot.chosen) {
    if (slot.has_value && !(slot.value == cmd)) {
      violations_.push_back("slot " + std::to_string(index) +
                            " chosen twice with different values");
    }
    return;
  }
  slot.chosen = true;
  slot.has_value = true;
  slot.value = cmd;
  log_.Set(index, cmd);

  // Advance the commit frontier over the contiguous chosen prefix.
  uint64_t frontier = log_.commit_frontier();
  while (true) {
    auto it = slots_.find(frontier);
    if (it == slots_.end() || !it->second.chosen) break;
    log_.CommitThrough(frontier);
    ++frontier;
  }
  ApplyAndReply();
}

void MultiPaxosReplica::ApplyAndReply() {
  // Batch slots fan out: each client command is deduped, recorded, and
  // answered individually.
  log_.ApplyCommitted(
      &kv_, &dedup_,
      [this](uint64_t, const smr::Command& cmd, const std::string& result) {
        executed_commands_.push_back(cmd);
        auto key = std::make_pair(cmd.client, cmd.client_seq);
        assigned_.erase(key);  // The dedup session covers it from here on.
        auto it = awaiting_client_.find(key);
        if (it != awaiting_client_.end()) {
          Send(it->second,
               std::make_shared<ReplyMsg>(cmd.client_seq, result, id()));
          awaiting_client_.erase(it);
        }
      });
  MaybeCheckpoint();
}

void MultiPaxosReplica::MaybeCheckpoint() {
  if (options_.checkpoint_interval == 0) return;
  uint64_t applied = log_.applied_frontier();
  if (applied - log_.start() < options_.checkpoint_interval) return;
  // The applied state machine (plus its dedup sessions) IS the
  // checkpoint: truncate the log prefix and the matching acceptor slots.
  log_.TruncatePrefix(applied);
  slots_.erase(slots_.begin(), slots_.lower_bound(applied));
  ++checkpoints_taken_;
}

void MultiPaxosReplica::OnMessage(sim::NodeId from, const sim::Message& msg) {
  if (const auto* m = dynamic_cast<const RequestMsg*>(&msg)) {
    if (!leader_active_ && !phase1_pending_) {
      Send(from, std::make_shared<ReplyMsg>(m->cmd.client_seq, kRedirect,
                                            LeaderHint()));
      return;
    }
    // Already executed (possibly checkpoint-truncated): answer from cache.
    if (const std::string* cached =
            dedup_.Lookup(m->cmd.client, m->cmd.client_seq)) {
      Send(from,
           std::make_shared<ReplyMsg>(m->cmd.client_seq, *cached, id()));
      return;
    }
    auto key = std::make_pair(m->cmd.client, m->cmd.client_seq);
    awaiting_client_[key] = from;
    if (assigned_.count(key) > 0 || queued_.count(key) > 0) {
      return;  // In flight: the apply path replies.
    }
    queued_.insert(key);
    pending_.push_back(m->cmd);
    // PBFT-style cut-or-linger: cut immediately when batching is off or
    // the batch is full; otherwise arm the linger timer on first enqueue.
    if (!leader_active_ || options_.batch_delay == 0 ||
        pending_.size() >= static_cast<size_t>(options_.batch_size)) {
      ProposeNext();
    } else if (pending_.size() == 1) {
      batch_timer_ = SetTimer(options_.batch_delay, [this] { ProposeNext(); });
    }
    return;
  }

  if (const auto* m = dynamic_cast<const PrepareMsg*>(&msg)) {
    if (m->ballot >= ballot_num_) {
      ballot_num_ = m->ballot;
      if (m->ballot.pid != id() && leader_active_) {
        Deposed();  // A higher ballot exists.
      }
      auto promise = std::make_shared<PromiseMsg>();
      promise->ballot = m->ballot;
      for (const auto& [index, slot] : slots_) {
        if (slot.has_value && !slot.chosen) {
          promise->accepted[index] = {slot.accept_num, slot.value};
        }
      }
      Send(from, promise);
      if (m->ballot.pid != id()) ResetLeaderTimer();
    }
    return;
  }

  if (const auto* m = dynamic_cast<const PromiseMsg*>(&msg)) {
    if (!phase1_pending_ || m->ballot != my_ballot_) return;
    promisers_.insert(from);
    for (const auto& [index, entry] : m->accepted) {
      auto it = recovered_.find(index);
      if (it == recovered_.end() || entry.first > it->second.first) {
        recovered_[index] = entry;
      }
    }
    if (static_cast<int>(promisers_.size()) >= q1_) OnLeadershipAcquired();
    return;
  }

  if (const auto* m = dynamic_cast<const AcceptMsg*>(&msg)) {
    if (m->ballot >= ballot_num_) {
      ballot_num_ = m->ballot;
      if (m->index < log_.start()) {
        // Checkpoint-truncated slot: a value was already chosen there and
        // folded into our checkpoint, and we can no longer compare it
        // against the proposal. Acking blind would let a laggard leader
        // "choose" a conflicting command for a decided slot — silent
        // divergence. Refuse, and ship our applied state instead so the
        // stale proposer re-bases past the truncation frontier before
        // proposing again.
        auto snap = std::make_shared<SnapshotMsg>();
        snap->end = log_.applied_frontier();
        snap->data = kv_.Snapshot();
        snap->sessions = dedup_.sessions();
        Send(from, snap);
        if (m->ballot.pid != id()) ResetLeaderTimer();
        return;
      }
      SlotState& slot = Slot(m->index);
      if (!slot.chosen) {
        slot.accept_num = m->ballot;
        slot.value = m->cmd;
        slot.has_value = true;
      } else if (smr::IsNoop(m->cmd) && !(slot.value == m->cmd)) {
        // A hole-filling no-op aimed at a slot we know is decided with a
        // real command: acking would help the new leader "choose" the
        // no-op over the decided value. Teach it the decision instead —
        // chosen values are final, so this is safe under any ballot.
        auto teach = std::make_shared<CommitMsg>();
        teach->ballot = m->ballot;
        teach->has_entry = true;
        teach->index = m->index;
        teach->cmd = slot.value;
        teach->frontier = log_.commit_frontier();
        Send(from, teach);
        if (m->ballot.pid != id()) ResetLeaderTimer();
        return;
      }
      Send(from, std::make_shared<AcceptedMsg>(m->ballot, m->index));
      if (m->ballot.pid != id()) ResetLeaderTimer();
    }
    return;
  }

  if (const auto* m = dynamic_cast<const AcceptedMsg*>(&msg)) {
    if (!leader_active_ || m->ballot != my_ballot_) return;
    SlotState& slot = Slot(m->index);
    slot.accepts.insert(from);
    if (!slot.chosen && static_cast<int>(slot.accepts.size()) >= q2_ &&
        slot.has_value) {
      smr::Command cmd = slot.value;
      // Propagate the decision to all, asynchronously.
      auto commit = std::make_shared<CommitMsg>();
      commit->ballot = my_ballot_;
      commit->has_entry = true;
      commit->index = m->index;
      commit->cmd = cmd;
      commit->frontier = log_.commit_frontier();
      Multicast(Everyone(), commit);
      Chosen(m->index, cmd);
      if (!options_.skip_phase1_when_stable) {
        // Per-command phase-1 mode: prepare again for the next command.
        slot_in_flight_ = false;
        ProposeNext();
      }
    }
    return;
  }

  if (const auto* m = dynamic_cast<const CommitMsg*>(&msg)) {
    if (m->ballot >= ballot_num_) {
      ballot_num_ = m->ballot;
      if (m->ballot.pid != id()) {
        if (leader_active_) Deposed();
        ResetLeaderTimer();
      }
      if (m->has_entry) Chosen(m->index, m->cmd);
      if (m->frontier > log_.commit_frontier() && from != id()) {
        // We trail the leader's commit frontier (e.g. healed partition, or
        // commits we missed): pull the gap. Re-requested every heartbeat
        // until closed, so a lost reply self-heals.
        Send(from,
             std::make_shared<CatchupRequestMsg>(log_.commit_frontier()));
      }
    }
    return;
  }

  if (const auto* m = dynamic_cast<const CatchupRequestMsg*>(&msg)) {
    if (!leader_active_) return;
    if (m->from_index < log_.start()) {
      // The requester's gap was checkpoint-truncated away: ship the full
      // applied state instead.
      auto snap = std::make_shared<SnapshotMsg>();
      snap->end = log_.applied_frontier();
      snap->data = kv_.Snapshot();
      snap->sessions = dedup_.sessions();
      Send(from, snap);
      return;
    }
    auto reply = std::make_shared<CatchupReplyMsg>();
    // Cap the transfer; the follower's next heartbeat round pulls more.
    constexpr size_t kMaxCatchupEntries = 128;
    for (uint64_t i = m->from_index; i < log_.commit_frontier() &&
                                     reply->entries.size() < kMaxCatchupEntries;
         ++i) {
      const smr::Command* cmd = log_.Get(i);
      if (cmd == nullptr) break;  // Gap within our own retained prefix.
      reply->entries.emplace_back(i, *cmd);
    }
    if (!reply->entries.empty()) Send(from, reply);
    return;
  }

  if (const auto* m = dynamic_cast<const CatchupReplyMsg*>(&msg)) {
    // Every entry is a chosen (committed) value, so learning it outright
    // is safe regardless of ballot.
    for (const auto& [index, cmd] : m->entries) Chosen(index, cmd);
    return;
  }

  if (const auto* m = dynamic_cast<const SnapshotMsg*>(&msg)) {
    if (m->end <= log_.applied_frontier()) return;  // Already as fresh.
    kv_.Restore(m->data);
    dedup_.Restore(m->sessions);
    log_.ResetToSnapshot(m->end);
    slots_.erase(slots_.begin(), slots_.lower_bound(m->end));
    ++snapshots_installed_;
    if (leader_active_) {
      // A snapshot reaching an ACTIVE leader is an acceptor's refusal of
      // an Accept below its truncation frontier: we won an election while
      // lagging and proposed into slots that were already decided and
      // checkpointed elsewhere. Those proposals are abandoned — the slot
      // bookkeeping below `end` is gone — and their commands must not be
      // resurrected at the dead indices, so drop the in-flight tracking
      // (client retries re-enqueue them above the frontier; retries of
      // commands the snapshot shows as executed hit the dedup cache) and
      // re-base the proposal cursor past the snapshot.
      for (auto it = assigned_.begin(); it != assigned_.end();) {
        if (it->second < m->end) {
          it = assigned_.erase(it);
        } else {
          ++it;
        }
      }
      next_index_ = std::max(next_index_, m->end);
    }
    ApplyAndReply();  // Retained chosen slots past `end` may now apply.
    return;
  }
}

void MultiPaxosReplica::OnRestart() {
  // Volatile leader/proposer state is lost; acceptor + log state is stable.
  leader_active_ = false;
  phase1_pending_ = false;
  promisers_.clear();
  recovered_.clear();
  pending_.clear();
  queued_.clear();  // Matches pending_: clients re-transmit.
  assigned_.clear();
  awaiting_client_.clear();
  slot_in_flight_ = false;
  batch_timer_ = 0;  // Timers died with the crash.
  ResetLeaderTimer();
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

MultiPaxosClient::MultiPaxosClient(int n, int ops, std::string key,
                                   sim::Duration retry)
    : ops_(ops), key_(std::move(key)), retry_(retry) {
  for (int i = 0; i < n; ++i) members_.push_back(i);
}

MultiPaxosClient::MultiPaxosClient(std::vector<sim::NodeId> members, int ops,
                                   std::string key, sim::Duration retry)
    : members_(std::move(members)),
      ops_(ops),
      key_(std::move(key)),
      retry_(retry) {}

void MultiPaxosClient::OnStart() {
  seq_ = 1;
  SendCurrent();
}

void MultiPaxosClient::SendCurrent() {
  if (done()) return;
  smr::Command cmd{id(), seq_, "INC " + key_};
  cmd.acked = seq_ - 1;  // Closed loop: every earlier reply was consumed.
  Send(members_[target_idx_],
       std::make_shared<MultiPaxosReplica::RequestMsg>(cmd));
  CancelTimer(retry_timer_);
  retry_timer_ = SetTimer(retry_, [this] {
    target_idx_ = (target_idx_ + 1) % members_.size();  // Try another.
    SendCurrent();
  });
}

void MultiPaxosClient::OnMessage(sim::NodeId from,
                                 const sim::Message& msg) {
  const auto* m = dynamic_cast<const MultiPaxosReplica::ReplyMsg*>(&msg);
  if (m == nullptr || m->client_seq != seq_ || done()) return;
  if (m->result == kRedirect) {
    for (size_t i = 0; i < members_.size(); ++i) {
      if (members_[i] == m->leader_hint && m->leader_hint != from) {
        target_idx_ = i;
        SendCurrent();
        break;
      }
    }
    return;
  }
  for (size_t i = 0; i < members_.size(); ++i) {
    if (members_[i] == from) target_idx_ = i;
  }
  results_.push_back(m->result);
  ++completed_;
  ++seq_;
  if (done()) {
    CancelTimer(retry_timer_);
  } else {
    SendCurrent();
  }
}

}  // namespace consensus40::paxos
