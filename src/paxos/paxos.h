#ifndef CONSENSUS40_PAXOS_PAXOS_H_
#define CONSENSUS40_PAXOS_PAXOS_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/quorum.h"
#include "paxos/ballot.h"
#include "sim/simulation.h"

namespace consensus40::paxos {

/// Configuration for a single-decree Paxos node.
struct PaxosOptions {
  /// Cluster size. Nodes 0..n-1 must be the first n processes spawned into
  /// the simulation.
  int n = 0;

  /// Phase-1 (leader election / prepare) quorum size. -1 = majority.
  /// Setting q1 and q2 independently turns this node into Flexible Paxos;
  /// the constructor does NOT validate q1+q2>n so tests can demonstrate
  /// what goes wrong with non-intersecting quorums.
  int q1 = -1;

  /// Phase-2 (replication / accept) quorum size. -1 = majority.
  int q2 = -1;

  /// Set-structured quorum system (e.g. core::GridQuorum). When non-null
  /// it overrides q1/q2: phase 1 completes when the promiser SET is an
  /// election quorum, phase 2 when the acceptor SET is a replication
  /// quorum. Must outlive the nodes.
  const core::QuorumSystem* quorum_system = nullptr;

  /// Delay before a preempted (nacked) proposer retries with a higher
  /// ballot. Zero = retry immediately (the livelock configuration).
  sim::Duration retry_delay = 10 * sim::kMillisecond;

  /// Timeout after which a stalled attempt (no quorum, no nack — e.g. the
  /// other side crashed) is restarted. Must be positive.
  sim::Duration attempt_timeout = 100 * sim::kMillisecond;

  /// If true, the retry delay is multiplied by Uniform[1, backoff_spread].
  /// The deck's livelock fix: "randomized delay before restarting".
  bool randomized_backoff = true;
  int backoff_spread = 10;
};

/// Single-decree Paxos (the deck's Phase I "prepare" / Phase II "accept"
/// pseudo-code, verbatim): every node is proposer + acceptor + learner.
///
/// Acceptor state (BallotNum, AcceptNum, AcceptVal) survives crashes — it
/// models stable storage; proposer state is volatile and reset on restart.
class PaxosNode : public sim::Process {
 public:
  explicit PaxosNode(PaxosOptions options);

  /// Starts proposing `value`. May be called on any node, any time before
  /// decision; concurrent proposers duel via ballots.
  void Propose(std::string value);

  /// The decided value, if this node has learned it.
  const std::optional<std::string>& decided() const { return decided_; }

  /// Safety violations observed locally (must stay empty).
  const std::vector<std::string>& violations() const { return violations_; }

  /// Acceptor state accessors for tests.
  const Ballot& promised() const { return ballot_num_; }
  const Ballot& accept_num() const { return accept_num_; }
  const std::optional<std::string>& accept_val() const { return accept_val_; }

  /// Number of phase-1 attempts this node started (duel counter).
  int prepare_attempts() const { return prepare_attempts_; }

  void OnStart() override {}
  void OnMessage(sim::NodeId from, const sim::Message& msg) override;
  void OnRestart() override;

 private:
  struct PrepareMsg;
  struct PrepareAckMsg;
  struct AcceptMsg;
  struct AcceptedMsg;
  struct NackMsg;
  struct DecideMsg;
  struct LearnMsg;

  void StartPhase1();
  void MaybeFinishPhase1();
  void Decide(const std::string& value);
  void ScheduleRetry(sim::Duration base_delay);
  std::vector<sim::NodeId> Everyone() const;

  PaxosOptions options_;
  int q1_, q2_;

  // --- Acceptor state (stable storage) ---
  Ballot ballot_num_;   ///< Latest ballot joined (phase 1 promise).
  Ballot accept_num_;   ///< Latest ballot a value was accepted in.
  std::optional<std::string> accept_val_;  ///< Latest accepted value.

  // --- Proposer state (volatile) ---
  bool proposing_ = false;
  std::optional<std::string> my_value_;
  Ballot my_ballot_;
  int phase_ = 0;  ///< 0 idle, 1 awaiting promises, 2 awaiting accepts.
  /// acceptor -> (AcceptNum, AcceptVal) from its promise.
  std::map<sim::NodeId, std::pair<Ballot, std::optional<std::string>>>
      promises_;
  std::set<sim::NodeId> accepts_;
  std::string proposal_value_;
  Ballot max_seen_;  ///< Highest ballot observed anywhere.
  uint64_t retry_timer_ = 0;
  int prepare_attempts_ = 0;

  // --- Learner state ---
  std::optional<std::string> decided_;

  std::vector<std::string> violations_;
};

}  // namespace consensus40::paxos

#endif  // CONSENSUS40_PAXOS_PAXOS_H_
