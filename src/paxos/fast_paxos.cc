#include "paxos/fast_paxos.h"

#include <algorithm>
#include <cassert>

namespace consensus40::paxos {

// ---------------------------------------------------------------------------
// Messages
// ---------------------------------------------------------------------------

struct FastPaxosAcceptor::AnyMsg : sim::Message {
  explicit AnyMsg(int r) : round(r) {}
  const char* TypeName() const override { return "any"; }
  int ByteSize() const override { return 16; }
  int round;
};

struct FastPaxosAcceptor::AcceptedMsg : sim::Message {
  AcceptedMsg(int r, std::string v) : round(r), value(std::move(v)) {}
  const char* TypeName() const override { return "accepted"; }
  int ByteSize() const override { return 20 + static_cast<int>(value.size()); }
  int round;
  std::string value;
};

struct FastPaxosAcceptor::ClassicAcceptMsg : sim::Message {
  ClassicAcceptMsg(int r, std::string v) : round(r), value(std::move(v)) {}
  const char* TypeName() const override { return "classic-accept"; }
  int ByteSize() const override { return 20 + static_cast<int>(value.size()); }
  int round;
  std::string value;
};

// ---------------------------------------------------------------------------
// Acceptor / coordinator
// ---------------------------------------------------------------------------

FastPaxosAcceptor::FastPaxosAcceptor(FastPaxosOptions options)
    : options_(options) {
  assert(options_.n >= 4 && (options_.n - 1) % 3 == 0);
  int f = (options_.n - 1) / 3;
  fast_quorum_ = 2 * f + 1;
  classic_quorum_ = 2 * f + 1;
}

std::vector<sim::NodeId> FastPaxosAcceptor::Acceptors() const {
  std::vector<sim::NodeId> all;
  for (int i = 0; i < options_.n; ++i) all.push_back(i);
  return all;
}

void FastPaxosAcceptor::OnStart() {
  if (IsCoordinator()) {
    // Open round 0 as a fast round: any client value may be accepted.
    current_round_ = 0;
    round_is_fast_ = true;
    Multicast(Acceptors(), std::make_shared<AnyMsg>(current_round_));
  }
}

void FastPaxosAcceptor::Choose(const std::string& value) {
  if (chosen_) return;
  chosen_ = value;
  chosen_at_ = Now();
  CancelTimer(collision_timer_);
  auto commit = std::make_shared<CommitMsg>(value);
  Multicast(Acceptors(), commit);
  for (sim::NodeId client : known_clients_) Send(client, commit);
}

void FastPaxosAcceptor::EvaluateFastRound() {
  if (chosen_ || !round_is_fast_) return;
  // Count the most frequent value among responses in this round.
  std::map<std::string, int> counts;
  int top = 0;
  std::string top_value;
  for (const auto& [acceptor, value] : responses_) {
    int c = ++counts[value];
    if (c > top) {
      top = c;
      top_value = value;
    }
  }
  if (top >= fast_quorum_) {
    Choose(top_value);
    return;
  }
  // Collision is certain once even unanimous remaining votes cannot lift
  // the leader to a fast quorum.
  int outstanding = options_.n - static_cast<int>(responses_.size());
  if (top + outstanding < fast_quorum_) {
    StartClassicRound();
  }
}

void FastPaxosAcceptor::StartClassicRound() {
  if (chosen_) return;
  CancelTimer(collision_timer_);
  // Coordinated recovery: among the values reported in the failed fast
  // round, pick the one with a majority of the responses if there is one
  // (it may have been chosen); otherwise any reported value works — we take
  // the one from the lowest acceptor id for determinism.
  std::map<std::string, int> counts;
  for (const auto& [acceptor, value] : responses_) ++counts[value];
  std::string pick;
  int majority = static_cast<int>(responses_.size()) / 2 + 1;
  for (const auto& [value, count] : counts) {
    if (count >= majority) pick = value;
  }
  if (pick.empty() && !responses_.empty()) {
    pick = responses_.begin()->second;
  }
  ++classic_rounds_;
  ++current_round_;
  round_is_fast_ = false;
  responses_.clear();
  Multicast(Acceptors(),
            std::make_shared<ClassicAcceptMsg>(current_round_, pick));
}

void FastPaxosAcceptor::OnMessage(sim::NodeId from, const sim::Message& msg) {
  if (const auto* m = dynamic_cast<const AnyMsg*>(&msg)) {
    if (m->round >= rnd_) {
      rnd_ = m->round;
      any_active_ = true;
    }
    return;
  }

  if (const auto* m = dynamic_cast<const ClientAcceptMsg*>(&msg)) {
    if (IsCoordinator()) known_clients_.insert(from);
    // Fast-round acceptance: with an open Any for rnd_, accept the first
    // client value to arrive in this round.
    if (any_active_ && vrnd_ < rnd_ && !chosen_) {
      vrnd_ = rnd_;
      vval_ = m->value;
      Send(0, std::make_shared<AcceptedMsg>(vrnd_, vval_));
    }
    return;
  }

  if (const auto* m = dynamic_cast<const ClassicAcceptMsg*>(&msg)) {
    if (m->round >= rnd_ && !chosen_) {
      rnd_ = m->round;
      any_active_ = false;  // Classic round: only the coordinator's value.
      vrnd_ = m->round;
      vval_ = m->value;
      Send(0, std::make_shared<AcceptedMsg>(vrnd_, vval_));
    }
    return;
  }

  if (const auto* m = dynamic_cast<const AcceptedMsg*>(&msg)) {
    if (!IsCoordinator() || chosen_ || m->round != current_round_) return;
    responses_[from] = m->value;
    if (round_is_fast_) {
      if (responses_.size() == 1) {
        // Arm the collision timeout on the first response.
        collision_timer_ = SetTimer(options_.collision_timeout, [this] {
          if (!chosen_ && round_is_fast_ &&
              static_cast<int>(responses_.size()) >= classic_quorum_) {
            StartClassicRound();
          }
        });
      }
      EvaluateFastRound();
    } else {
      // Classic round: a classic quorum of identical values decides.
      int count = 0;
      for (const auto& [acceptor, value] : responses_) {
        count += (value == m->value);
      }
      if (count >= classic_quorum_) Choose(m->value);
    }
    return;
  }

  if (const auto* m = dynamic_cast<const CommitMsg*>(&msg)) {
    if (!chosen_) {
      chosen_ = m->value;
      chosen_at_ = Now();
    }
    return;
  }
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

FastPaxosClient::FastPaxosClient(int n, std::string value,
                                 sim::Duration send_at)
    : n_(n), value_(std::move(value)), send_at_(send_at) {}

void FastPaxosClient::OnStart() {
  SetTimer(send_at_, [this] {
    for (int i = 0; i < n_; ++i) {
      Send(i, std::make_shared<FastPaxosAcceptor::ClientAcceptMsg>(value_));
    }
  });
}

void FastPaxosClient::OnMessage(sim::NodeId, const sim::Message& msg) {
  if (dynamic_cast<const FastPaxosAcceptor::CommitMsg*>(&msg) != nullptr &&
      done_at_ < 0) {
    done_at_ = Now();
  }
}

}  // namespace consensus40::paxos
