/// \file
/// Crossword's ReplicaGroup facade (see consensus/replica_group.h).
/// Four registry keys share one implementation:
///
///   "crossword"        adaptive assignment (the tentpole protocol),
///   "crossword_rs"     pinned at 1 shard per acceptor — RS-Paxos-like,
///                      maximally exercises reconstruction and recovery,
///   "crossword_full"   pinned at full copies — classic-Paxos baseline
///                      for the bench ladder,
///   "crossword_unsafe" OUT OF BOUNDS: sharded accepts committed at a
///                      bare majority, which under-replicates shard
///                      coverage — the checker must catch it.

#include <string>

#include "consensus/replica_group.h"
#include "paxos/crossword.h"

namespace consensus40::paxos {
namespace {

/// Must match the sentinel in crossword.cc (protocol wire constant).
const char kRedirect[] = "\x01REDIRECT";

class CrosswordGroup : public consensus::ReplicaGroup {
 public:
  enum class Variant { kAdaptive, kRs, kFull, kUnsafe };

  explicit CrosswordGroup(Variant variant) : variant_(variant) {}

  const char* protocol() const override {
    switch (variant_) {
      case Variant::kAdaptive:
        return "crossword";
      case Variant::kRs:
        return "crossword_rs";
      case Variant::kFull:
        return "crossword_full";
      case Variant::kUnsafe:
        return "crossword_unsafe";
    }
    return "crossword";
  }

  void Create(sim::Simulation* sim, int replicas) override {
    sim::NodeId base = sim->num_processes();
    for (int i = 0; i < replicas; ++i) {
      members_.push_back(base + i);
    }
    CrosswordOptions options;
    options.members = members_;
    options.batch_size = tuning_.batch_size;
    options.batch_delay = tuning_.batch_delay;
    options.checkpoint_interval = tuning_.snapshot_threshold;
    if (tuning_.heartbeat_interval > 0) {
      options.heartbeat_interval = tuning_.heartbeat_interval;
    }
    if (tuning_.leader_timeout > 0) {
      options.leader_timeout = tuning_.leader_timeout;
    }
    switch (variant_) {
      case Variant::kAdaptive:
        options.mode = CrosswordOptions::Mode::kAdaptive;
        break;
      case Variant::kRs:
        options.mode = CrosswordOptions::Mode::kFixedRs;
        options.fixed_shards = 1;
        break;
      case Variant::kFull:
        options.mode = CrosswordOptions::Mode::kFullCopy;
        break;
      case Variant::kUnsafe:
        options.mode = CrosswordOptions::Mode::kFixedRs;
        options.fixed_shards = 1;
        options.unsafe_majority_quorum = true;
        break;
    }
    for (int i = 0; i < replicas; ++i) {
      replicas_.push_back(sim->Spawn<CrosswordReplica>(options));
    }
  }

  sim::MessagePtr MakeRequest(const smr::Command& cmd) const override {
    return std::make_shared<CrosswordReplica::RequestMsg>(cmd);
  }

  std::optional<Reply> ParseReply(const sim::Message& msg) const override {
    const auto* m = dynamic_cast<const CrosswordReplica::ReplyMsg*>(&msg);
    if (m == nullptr) return std::nullopt;
    Reply reply;
    reply.client_seq = m->client_seq;
    reply.leader_hint = m->leader_hint;
    if (m->result == kRedirect) {
      reply.redirected = true;
    } else {
      reply.result = m->result;
    }
    return reply;
  }

  sim::NodeId LeaderHint() const override {
    for (const CrosswordReplica* r : replicas_) {
      if (r->IsLeader()) return r->id();
    }
    return sim::kInvalidNode;
  }

  std::vector<smr::Command> CommittedPrefix(int replica) const override {
    return replicas_[static_cast<size_t>(replica)]->CommittedCommands();
  }

  std::vector<std::string> Violations() const override {
    std::vector<std::string> all;
    for (const CrosswordReplica* r : replicas_) {
      for (const std::string& v : r->violations()) {
        all.push_back("replica " + std::to_string(r->id()) + ": " + v);
      }
      for (const std::string& v : r->log().violations()) {
        all.push_back("replica " + std::to_string(r->id()) + " log: " + v);
      }
    }
    return all;
  }

 private:
  Variant variant_;
  std::vector<CrosswordReplica*> replicas_;
};

}  // namespace
}  // namespace consensus40::paxos

namespace consensus40::consensus {

std::unique_ptr<ReplicaGroup> NewCrosswordGroup() {
  return std::make_unique<paxos::CrosswordGroup>(
      paxos::CrosswordGroup::Variant::kAdaptive);
}

std::unique_ptr<ReplicaGroup> NewCrosswordRsGroup() {
  return std::make_unique<paxos::CrosswordGroup>(
      paxos::CrosswordGroup::Variant::kRs);
}

std::unique_ptr<ReplicaGroup> NewCrosswordFullCopyGroup() {
  return std::make_unique<paxos::CrosswordGroup>(
      paxos::CrosswordGroup::Variant::kFull);
}

std::unique_ptr<ReplicaGroup> NewCrosswordUnsafeGroup() {
  return std::make_unique<paxos::CrosswordGroup>(
      paxos::CrosswordGroup::Variant::kUnsafe);
}

}  // namespace consensus40::consensus
