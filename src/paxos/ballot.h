#ifndef CONSENSUS40_PAXOS_BALLOT_H_
#define CONSENSUS40_PAXOS_BALLOT_H_

#include <cstdint>
#include <string>

namespace consensus40::paxos {

/// A Paxos ballot: the pair <num, process id> from the deck, totally ordered
/// by (num, pid). Ballot {0,0} is the initial "no ballot" value.
struct Ballot {
  int64_t num = 0;
  int32_t pid = 0;

  bool operator==(const Ballot& o) const {
    return num == o.num && pid == o.pid;
  }
  bool operator!=(const Ballot& o) const { return !(*this == o); }
  bool operator<(const Ballot& o) const {
    if (num != o.num) return num < o.num;
    return pid < o.pid;
  }
  bool operator<=(const Ballot& o) const { return *this < o || *this == o; }
  bool operator>(const Ballot& o) const { return o < *this; }
  bool operator>=(const Ballot& o) const { return o <= *this; }

  bool IsZero() const { return num == 0 && pid == 0; }

  /// The ballot a process p picks after seeing ballot b: <b.num+1, p>.
  static Ballot Successor(const Ballot& seen, int32_t pid) {
    return Ballot{seen.num + 1, pid};
  }

  std::string ToString() const {
    return "<" + std::to_string(num) + "," + std::to_string(pid) + ">";
  }
};

}  // namespace consensus40::paxos

#endif  // CONSENSUS40_PAXOS_BALLOT_H_
