#include "paxos/crossword.h"

#include <algorithm>
#include <cassert>

namespace consensus40::paxos {

namespace {
/// Sentinel result telling a client to retry against the hinted leader.
const char kRedirect[] = "\x01REDIRECT";
}  // namespace

// ---------------------------------------------------------------------------
// Messages
// ---------------------------------------------------------------------------

struct CrosswordReplica::PrepareMsg : sim::Message {
  explicit PrepareMsg(Ballot b) : ballot(b) {}
  const char* TypeName() const override { return "cw-prepare"; }
  int ByteSize() const override { return 24; }
  Ballot ballot;
};

struct CrosswordReplica::PromiseMsg : sim::Message {
  const char* TypeName() const override { return "cw-promise"; }
  int ByteSize() const override {
    int size = 40;
    for (const auto& [index, entry] : accepted) {
      size += 32 + entry.second.ByteSize();
    }
    size += static_cast<int>(chosen.size()) * 8;
    return size;
  }
  Ballot ballot;
  uint64_t frontier = 0;
  /// index -> (AcceptNum, AcceptVal): every accepted slot this replica
  /// retains, including chosen-but-unreconstructed ones (their shard
  /// fragments are exactly what a recovering leader must gather — see the
  /// safety note on PrepareMsg handling).
  std::map<uint64_t, std::pair<Ballot, smr::Command>> accepted;
  /// Slots this replica knows are decided. A new leader must never
  /// no-op-fill or re-propose into these, even when the fragments on hand
  /// don't reconstruct the value yet.
  std::set<uint64_t> chosen;
};

struct CrosswordReplica::AcceptMsg : sim::Message {
  AcceptMsg(Ballot b, uint64_t i, uint32_t r, smr::Command c)
      : ballot(b), index(i), round(r), cmd(std::move(c)) {}
  const char* TypeName() const override { return "cw-accept"; }
  int ByteSize() const override { return 40 + cmd.ByteSize(); }
  Ballot ballot;
  uint64_t index;
  /// Re-proposal counter within one ballot: a stalled sharded slot is
  /// escalated to full copies under the SAME ballot, and the leader must
  /// not count stale acks for the earlier framing toward the new round's
  /// (smaller) quorum.
  uint32_t round;
  smr::Command cmd;  ///< Full command (c = k) or this acceptor's shard set.
};

struct CrosswordReplica::AcceptedMsg : sim::Message {
  AcceptedMsg(Ballot b, uint64_t i, uint32_t r)
      : ballot(b), index(i), round(r) {}
  const char* TypeName() const override { return "cw-accepted"; }
  int ByteSize() const override { return 36; }
  Ballot ballot;
  uint64_t index;
  uint32_t round;
};

/// Deliberately payload-free: followers already hold their shard subset
/// (or the full value), so the decision notification costs O(1) bytes —
/// the asymmetry that lets Crossword's leader ship (n-1)/k payload copies
/// instead of n-1.
struct CrosswordReplica::CommitMsg : sim::Message {
  const char* TypeName() const override { return "cw-commit"; }
  int ByteSize() const override { return 48; }
  Ballot ballot;
  bool has_entry = false;  ///< False = pure heartbeat.
  uint64_t index = 0;
  uint64_t frontier = 0;
};

struct CrosswordReplica::PullMsg : sim::Message {
  explicit PullMsg(uint64_t i, bool full = false) : index(i), want_full(full) {}
  const char* TypeName() const override { return "cw-pull"; }
  int ByteSize() const override { return 17; }
  uint64_t index;
  /// Early pull attempts ask for fragments only — a full-value answer
  /// re-serializes the entire payload per puller, the egress bill coding
  /// exists to avoid. Set after repeated fragment pulls fail to assemble
  /// (mixed-ballot fragments, peers checkpointed past the slot): the
  /// repair of last resort.
  bool want_full;
};

/// Answer to a PullMsg, and the teach vehicle for proposals landing on a
/// slot the acceptor knows is decided. `cmd` is either the full chosen
/// command or a validated shard-set fragment of it.
struct CrosswordReplica::PullReplyMsg : sim::Message {
  PullReplyMsg(uint64_t i, smr::Command c) : index(i), cmd(std::move(c)) {}
  const char* TypeName() const override { return "cw-pull-reply"; }
  int ByteSize() const override { return 24 + cmd.ByteSize(); }
  uint64_t index;
  smr::Command cmd;
};

struct CrosswordReplica::CatchupRequestMsg : sim::Message {
  explicit CatchupRequestMsg(uint64_t f) : from_index(f) {}
  const char* TypeName() const override { return "cw-catchup-request"; }
  int ByteSize() const override { return 16; }
  uint64_t from_index;  ///< Requester's chosen-through frontier.
};

struct CrosswordReplica::CatchupReplyMsg : sim::Message {
  const char* TypeName() const override { return "cw-catchup-reply"; }
  int ByteSize() const override {
    int size = 16;
    for (const auto& [index, cmd] : entries) size += 16 + cmd.ByteSize();
    return size;
  }
  std::vector<std::pair<uint64_t, smr::Command>> entries;  ///< Chosen slots.
};

/// Full-state transfer for a follower whose gap was checkpoint-truncated
/// away on the leader, as in Multi-Paxos.
struct CrosswordReplica::SnapshotMsg : sim::Message {
  const char* TypeName() const override { return "cw-snapshot"; }
  int ByteSize() const override {
    int size = 64;
    for (const auto& [k, v] : data) {
      size += 16 + static_cast<int>(k.size()) + static_cast<int>(v.size());
    }
    for (const auto& [client, s] : sessions) {
      size += 24;
      for (const auto& [seq, result] : s.above) {
        size += 16 + static_cast<int>(result.size());
      }
    }
    return size;
  }
  uint64_t end = 0;  ///< The snapshot covers slots [0, end).
  std::map<std::string, std::string> data;
  smr::DedupingExecutor::Sessions sessions;
};

// ---------------------------------------------------------------------------
// Replica
// ---------------------------------------------------------------------------

CrosswordReplica::CrosswordReplica(CrosswordOptions options)
    : options_(options) {
  if (options_.members.empty()) {
    assert(options_.n > 0);
    for (int i = 0; i < options_.n; ++i) options_.members.push_back(i);
  }
  n_ = static_cast<int>(options_.members.size());
  k_ = n_ / 2 + 1;
  q1_ = k_;
  c_now_ = k_;  // Start classic; the controller earns its way down.
}

std::vector<sim::NodeId> CrosswordReplica::Everyone() const {
  return options_.members;
}

CrosswordReplica::SlotState& CrosswordReplica::Slot(uint64_t index) {
  return slots_[index];
}

int CrosswordReplica::Q2For(int c) const {
  if (options_.unsafe_majority_quorum) return k_;
  return std::max(n_ + 1 - c, k_);
}

void CrosswordReplica::OnStart() {
  if (id() == options_.members.front()) {
    StartPhase1();  // Bootstrap volunteer; later failures use the timeout.
  } else {
    ResetLeaderTimer();
  }
}

void CrosswordReplica::ResetLeaderTimer() {
  CancelTimer(leader_timer_);
  sim::Duration t =
      options_.leader_timeout +
      static_cast<sim::Duration>(rng().NextBounded(options_.leader_timeout));
  leader_timer_ = SetTimer(t, [this] {
    if (!leader_active_) StartPhase1();
  });
}

void CrosswordReplica::StartPhase1() {
  my_ballot_ = Ballot::Successor(ballot_num_, id());
  phase1_pending_ = true;
  leader_active_ = false;
  promisers_.clear();
  recovered_.clear();
  recovered_chosen_.clear();
  ++phase1_rounds_;
  Multicast(Everyone(), std::make_shared<PrepareMsg>(my_ballot_));
  ResetLeaderTimer();  // Retry if this attempt stalls.
}

int CrosswordReplica::ChooseShards(int payload) {
  switch (options_.mode) {
    case CrosswordOptions::Mode::kFullCopy:
      return k_;
    case CrosswordOptions::Mode::kFixedRs:
      return std::clamp(options_.fixed_shards, 1, k_);
    case CrosswordOptions::Mode::kAdaptive:
      break;
  }
  payload_ewma_ +=
      options_.ewma_alpha * (static_cast<double>(payload) - payload_ewma_);
  // Small commands always go full-copy: shard framing would cost more
  // bytes than it saves, and commit latency must track classic Paxos.
  if (payload < options_.min_payload_to_shard) return k_;
  if (backlog_ewma_ > static_cast<double>(options_.backlog_high)) {
    c_now_ = std::max(1, c_now_ - 1);  // Egress is queueing: code harder.
  } else if (backlog_ewma_ < static_cast<double>(options_.backlog_low)) {
    c_now_ = std::min(k_, c_now_ + 1);  // Headroom: favour latency.
  }
  return c_now_;
}

int CrosswordReplica::PositionOf(sim::NodeId node) const {
  for (size_t i = 0; i < options_.members.size(); ++i) {
    if (options_.members[i] == node) return static_cast<int>(i);
  }
  return 0;
}

void CrosswordReplica::AcceptSlot(uint64_t index, const smr::Command& cmd) {
  SlotState& slot = Slot(index);
  slot.accept_num = my_ballot_;
  slot.value = cmd;  // The leader always self-accepts the FULL command.
  slot.has_value = true;
  // No-ops ship full: recovery rounds should never depend on pulls.
  const int c =
      smr::IsNoop(cmd) ? k_ : ChooseShards(static_cast<int>(cmd.op.size()));
  StartRound(index, c);
  if (options_.mode == CrosswordOptions::Mode::kAdaptive &&
      !smr::IsNoop(cmd)) {
    // Sample the egress queue AFTER this round's sends, not at propose
    // time: a closed-loop client's next request only arrives once the
    // reply — itself queued behind the round's payloads — has drained the
    // port, so a pre-send sample under-reads the backlog as ~0 at any
    // client window. The post-send residue is exactly what this round
    // left unsent, the quantity the controller should react to.
    backlog_ewma_ +=
        options_.ewma_alpha *
        (static_cast<double>(sim().EgressBacklog(id())) - backlog_ewma_);
  }
}

void CrosswordReplica::StartRound(uint64_t index, int c) {
  SlotState& slot = Slot(index);
  slot.round += 1;
  slot.c = c;
  slot.q2 = Q2For(c);
  slot.accepts.clear();
  slot.accepts.insert(id());  // Self-accept of the full copy.
  slot.proposed_at = Now();
  SendRound(index, slot, /*resend_only=*/false);
  MaybeChoose(index);  // q2 may already be met (single-node cluster).
}

void CrosswordReplica::SendRound(uint64_t index, const SlotState& slot,
                                 bool resend_only) {
  if (slot.c >= k_) {
    if (resend_only) {
      for (sim::NodeId m : options_.members) {
        if (m == id() || slot.accepts.count(m) > 0) continue;
        Send(m, std::make_shared<AcceptMsg>(my_ballot_, index, slot.round,
                                            slot.value));
      }
    } else {
      std::vector<sim::NodeId> others;
      for (sim::NodeId m : options_.members) {
        if (m != id()) others.push_back(m);
      }
      if (!others.empty()) {
        Multicast(others, std::make_shared<AcceptMsg>(my_ballot_, index,
                                                      slot.round, slot.value));
      }
    }
    return;
  }
  // Diagonal assignment: the member at position p carries the c-shard
  // window starting at shard p. Any s distinct windows jointly cover
  // min(n, s + c - 1) distinct shards, which q2(c) turns into the
  // any-majority-reconstructs invariant.
  smr::ShardedCommand sc = smr::ShardCommand(slot.value, k_, n_);
  const int p0 = PositionOf(id());
  for (size_t p = 0; p < options_.members.size(); ++p) {
    sim::NodeId m = options_.members[p];
    if (m == id()) continue;
    if (resend_only && slot.accepts.count(m) > 0) continue;
    if (options_.unsafe_majority_quorum) {
      // THE FLAW UNDER TEST (RS-Paxos-style): serialize fragments only to
      // exactly enough acceptors to reach the (bare-majority) commit
      // quorum — the egress-minimal dissemination that makes coded
      // replication look free. The cluster then holds q2-1 distinct
      // fragments plus the leader's full copy, fewer than the k needed to
      // reconstruct, so the value dies with the leader.
      const int offset =
          (static_cast<int>(p) - p0 + n_) % n_;
      if (offset >= slot.q2) continue;
    }
    Send(m, std::make_shared<AcceptMsg>(my_ballot_, index, slot.round,
                                        sc.Subset(static_cast<int>(p),
                                                  slot.c)));
  }
}

void CrosswordReplica::MaybeChoose(uint64_t index) {
  if (!leader_active_) return;
  auto it = slots_.find(index);
  if (it == slots_.end()) return;
  SlotState& slot = it->second;
  if (slot.chosen || !slot.has_value) return;
  if (static_cast<int>(slot.accepts.size()) < slot.q2) return;
  slot.chosen = true;
  slot.chosen_ballot = my_ballot_;
  auto commit = std::make_shared<CommitMsg>();
  commit->ballot = my_ballot_;
  commit->has_entry = true;
  commit->index = index;
  commit->frontier = log_.commit_frontier();
  Multicast(Everyone(), commit);
  LearnChosen(index, slot.value);
}

void CrosswordReplica::ResendInFlight() {
  if (!leader_active_) return;
  // A round is not "stalled" while this port is still serializing what we
  // already queued — the unacked bytes may simply not have left the NIC.
  // Re-sending into a backed-up port is pure positive feedback: each
  // repair re-serializes the full fan-out behind the copy it duplicates,
  // and at payloads where fan-out exceeds stall_timeout the queue (and
  // virtual latency) grows without bound. Repair only from a drained port.
  if (sim().EgressBacklog(id()) > 0) return;
  const sim::Time now = Now();
  std::vector<uint64_t> stalled;
  for (const auto& [index, slot] : slots_) {
    if (index >= next_index_) break;
    if (index < log_.commit_frontier()) continue;
    if (slot.chosen || !slot.has_value || slot.accept_num != my_ballot_) {
      continue;
    }
    if (now - slot.proposed_at < options_.stall_timeout) continue;
    stalled.push_back(index);
    if (stalled.size() >= 8) break;  // Per-heartbeat repair budget.
  }
  for (uint64_t index : stalled) {
    auto it = slots_.find(index);
    if (it == slots_.end() || it->second.chosen) continue;
    if (it->second.c < k_ && !options_.unsafe_majority_quorum) {
      // A sharded round needs q2(c) > majority acceptors alive and
      // reachable; this one has waited long enough that some may not be.
      // Re-propose the SAME value as full copies under the same ballot:
      // q2 drops to a bare majority and liveness matches classic Paxos.
      ++escalations_;
      StartRound(index, k_);
    } else {
      SendRound(index, it->second, /*resend_only=*/true);
      it->second.proposed_at = now;
    }
  }
}

void CrosswordReplica::OnLeadershipAcquired() {
  phase1_pending_ = false;
  leader_active_ = true;
  CancelTimer(leader_timer_);

  uint64_t max_idx = next_index_;

  // Slots some promiser knows are decided: never re-propose, assemble the
  // value from the promise-carried fragments (any majority of the accept
  // quorum jointly holds >= k distinct shards) and pull whatever is
  // missing. Without the chosen flags a quorum of promisers that all
  // learned the decision — and therefore no longer report the slot as
  // merely "accepted" — would look identical to an unchosen slot, and
  // no-op filling it would overwrite a decided value.
  for (uint64_t index : recovered_chosen_) {
    // The unsafe variant drops this safeguard along with the widened
    // quorum: it assumes whatever phase 1 surfaced is reconstructable
    // and lets unresolvable slots fall through to the resolve-or-no-op
    // loop below — the classic recovery bug the chosen-flag machinery
    // exists to prevent, left in reach of the checker.
    if (options_.unsafe_majority_quorum) break;
    if (index < log_.start()) continue;
    if (index + 1 > max_idx) max_idx = index + 1;
    if (log_.Has(index)) continue;
    SlotState& slot = Slot(index);
    slot.chosen = true;
    auto rit = recovered_.find(index);
    std::optional<smr::Command> full;
    if (rit != recovered_.end()) full = ResolveRecovered(rit->second);
    if (full.has_value()) {
      ++reconstructions_;
      LearnChosen(index, *full);
      continue;
    }
    PendingRecon& p = pending_recon_[index];
    if (rit != recovered_.end()) {
      // Seed from the highest ballot down; incompatible frames (possible
      // only across ballots with different values) are rejected by the
      // assembler.
      std::vector<std::pair<Ballot, smr::Command>> sorted = rit->second;
      std::stable_sort(sorted.begin(), sorted.end(),
                       [](const auto& a, const auto& b) {
                         return b.first < a.first;
                       });
      for (const auto& [b, cmd] : sorted) {
        if (smr::IsShard(cmd)) p.assembler.Add(cmd);
      }
    }
    SchedulePull(index);
  }

  // Re-propose every undecided value learned during phase 1, resolving
  // shard fragments per ballot from highest down: a reconstructable
  // candidate might have been chosen; one that no quorum's worth of
  // fragments can rebuild provably was not (its accept set never reached
  // q2(c), or the fragments would be here).
  for (const auto& [index, cands] : recovered_) {
    if (index < log_.start()) continue;
    if (index + 1 > max_idx) max_idx = index + 1;
    if (Slot(index).chosen) continue;
    std::optional<smr::Command> resolved = ResolveRecovered(cands);
    AcceptSlot(index, resolved.has_value()
                          ? *resolved
                          : smr::Command{smr::kNoopClient, 0, "NOOP"});
  }

  next_index_ = std::max(next_index_, max_idx);
  next_index_ = std::max(next_index_, log_.commit_frontier());

  // Close the remaining holes below the cursor with no-ops, as in
  // Multi-Paxos. Decided slots (chosen flags above, or our own state)
  // are skipped; acceptors that know better teach us via PullReply.
  for (uint64_t index = log_.commit_frontier(); index < next_index_;
       ++index) {
    if (index < log_.start()) continue;
    if (recovered_.count(index) > 0) continue;  // Re-proposed above.
    if (Slot(index).chosen) continue;
    AcceptSlot(index, smr::Command{smr::kNoopClient, 0, "NOOP"});
  }

  SendHeartbeat();  // Also self-reschedules while leader.
  ProposeNext();
}

std::optional<smr::Command> CrosswordReplica::ResolveRecovered(
    const std::vector<std::pair<Ballot, smr::Command>>& candidates) const {
  std::vector<std::pair<Ballot, smr::Command>> sorted = candidates;
  std::stable_sort(
      sorted.begin(), sorted.end(),
      [](const auto& a, const auto& b) { return b.first < a.first; });
  for (size_t i = 0; i < sorted.size(); ++i) {
    const smr::Command& cmd = sorted[i].second;
    if (!smr::IsShard(cmd)) return cmd;  // A full copy settles it.
    smr::ShardAssembler assembler;
    if (!assembler.Add(cmd)) continue;
    for (size_t j = 0; j < sorted.size(); ++j) {
      if (j != i) assembler.Add(sorted[j].second);  // Compatible merge in.
    }
    if (assembler.Complete()) {
      if (std::optional<smr::Command> full = assembler.Reconstruct()) {
        return full;
      }
    }
  }
  return std::nullopt;
}

void CrosswordReplica::Deposed() {
  leader_active_ = false;
  CancelTimer(heartbeat_timer_);
  CancelTimer(batch_timer_);
  batch_timer_ = 0;
  pending_.clear();
  queued_.clear();
  assigned_.clear();
}

void CrosswordReplica::SendHeartbeat() {
  auto hb = std::make_shared<CommitMsg>();
  hb->ballot = my_ballot_;
  hb->frontier = log_.commit_frontier();
  Multicast(Everyone(), hb);
  if (leader_active_) {
    ResendInFlight();
    CancelTimer(heartbeat_timer_);
    heartbeat_timer_ =
        SetTimer(options_.heartbeat_interval, [this] { SendHeartbeat(); });
  }
}

void CrosswordReplica::ProposeNext() {
  if (!leader_active_) return;
  CancelTimer(batch_timer_);
  batch_timer_ = 0;
  size_t max_take = static_cast<size_t>(std::max(1, options_.batch_size));
  while (!pending_.empty()) {
    size_t take = std::min(pending_.size(), max_take);
    uint64_t index = next_index_++;
    smr::Command entry;
    if (take == 1) {
      entry = std::move(pending_.front());
      pending_.pop_front();
      queued_.erase({entry.client, entry.client_seq});
      assigned_[{entry.client, entry.client_seq}] = index;
    } else {
      std::vector<smr::Command> cmds(
          pending_.begin(), pending_.begin() + static_cast<long>(take));
      pending_.erase(pending_.begin(),
                     pending_.begin() + static_cast<long>(take));
      for (const smr::Command& cmd : cmds) {
        queued_.erase({cmd.client, cmd.client_seq});
        assigned_[{cmd.client, cmd.client_seq}] = index;
      }
      entry = smr::EncodeBatch(cmds);
      ++batches_cut_;
    }
    AcceptSlot(index, entry);
  }
}

void CrosswordReplica::MarkChosen(uint64_t index, Ballot ballot) {
  if (index < log_.start()) return;
  SlotState& slot = Slot(index);
  if (log_.Has(index)) {
    slot.chosen = true;
    if (slot.chosen_ballot.IsZero()) slot.chosen_ballot = ballot;
    return;
  }
  if (slot.chosen) return;  // Reconstruction already in progress.
  slot.chosen = true;
  slot.chosen_ballot = ballot;
  if (options_.unsafe_majority_quorum) {
    // THE FLAW UNDER TEST (continued): classic RS-Paxos learners are lazy —
    // a commit notification just marks the slot chosen; nobody reassembles
    // the value until a reader (or recovery) actually needs it.  Eager
    // commit-time pulls would re-spread the full value cluster-wide within
    // milliseconds of every commit and mask the under-replication, so the
    // unsafe variant skips the reconstruction machinery below.  A validated
    // full value on hand is still applied — that requires no peer traffic.
    if (slot.has_value && slot.accept_num == ballot &&
        !smr::IsShard(slot.value)) {
      LearnChosen(index, slot.value);
    }
    return;
  }
  if (slot.has_value && slot.accept_num == ballot) {
    if (!smr::IsShard(slot.value)) {
      LearnChosen(index, slot.value);
      return;
    }
    // Our own shard window, validated by accept_num == chosen ballot,
    // seeds the assembler; peers supply the rest.
    PendingRecon& p = pending_recon_[index];
    p.ballot = ballot;
    p.assembler.Add(slot.value);
    TryCompleteRecon(index);
    if (pending_recon_.count(index) > 0) SchedulePull(index);
    return;
  }
  // Nothing validated on hand (e.g. our accept never arrived): pull.
  pending_recon_[index].ballot = ballot;
  SchedulePull(index);
}

void CrosswordReplica::LearnChosen(uint64_t index, const smr::Command& cmd) {
  if (index < log_.start()) return;
  if (const smr::Command* existing = log_.Get(index)) {
    if (!(*existing == cmd)) {
      violations_.push_back("slot " + std::to_string(index) +
                            " chosen twice with different values");
    }
    return;
  }
  SlotState& slot = Slot(index);
  slot.chosen = true;
  slot.has_value = true;
  slot.value = cmd;  // Hold the full value: we can serve pulls from it.
  log_.Set(index, cmd);
  auto pit = pending_recon_.find(index);
  if (pit != pending_recon_.end()) {
    CancelTimer(pit->second.timer);
    pending_recon_.erase(pit);
  }
  // Advance the commit frontier over the contiguous learned prefix (log
  // slots are only ever Set with chosen values here).
  uint64_t frontier = log_.commit_frontier();
  while (log_.Has(frontier)) {
    log_.CommitThrough(frontier);
    ++frontier;
  }
  ApplyAndReply();
}

void CrosswordReplica::TryCompleteRecon(uint64_t index) {
  auto it = pending_recon_.find(index);
  if (it == pending_recon_.end() || !it->second.assembler.Complete()) return;
  std::optional<smr::Command> full = it->second.assembler.Reconstruct();
  if (!full.has_value()) return;  // End-to-end checksum failed; keep pulling.
  CancelTimer(it->second.timer);
  pending_recon_.erase(it);
  ++reconstructions_;
  LearnChosen(index, *full);
}

void CrosswordReplica::SchedulePull(uint64_t index) {
  auto it = pending_recon_.find(index);
  if (it == pending_recon_.end()) return;
  PendingRecon& p = it->second;
  const int selfpos = PositionOf(id());
  const sim::NodeId leader = ballot_num_.pid;
  // Two rotating peer targets per attempt. The leader is skipped on early
  // attempts: it holds the full value and would answer with the whole
  // payload, re-concentrating the egress load sharding just spread out.
  const bool want_full = p.attempt >= 4;  // Fragments failed; last resort.
  int sent = 0;
  for (int step = 1; step <= n_ && sent < 2; ++step) {
    int pos = (selfpos + p.attempt + step) % n_;
    sim::NodeId target = options_.members[static_cast<size_t>(pos)];
    if (target == id()) continue;
    if (target == leader && p.attempt < 2 && n_ > 2) continue;
    Send(target, std::make_shared<PullMsg>(index, want_full));
    ++sent;
  }
  ++p.attempt;
  CancelTimer(p.timer);
  // Exponential backoff: under finite bandwidth a shard reply can take
  // longer to serialize than the base retry interval, and a fixed-cadence
  // timer would re-request (and the peer re-send) data still sitting in
  // the peer's egress queue — every retry then ADDS to the very backlog
  // that delayed the first answer.
  const int shift = std::min(p.attempt, 6);
  p.timer = SetTimer(options_.reconstruct_retry << shift,
                     [this, index] { SchedulePull(index); });
}

void CrosswordReplica::DisplaceInFlight(uint64_t index,
                                        const smr::Command* decided) {
  if (!leader_active_) return;
  auto it = slots_.find(index);
  if (it == slots_.end()) return;
  const SlotState& slot = it->second;
  if (!slot.has_value || slot.chosen || slot.accept_num != my_ballot_) return;
  const smr::Command displaced = slot.value;  // Leaders hold full values.
  if (smr::IsNoop(displaced) || smr::IsShard(displaced)) return;
  if (decided != nullptr && displaced == *decided) return;
  // Our in-flight proposal lost this slot to an earlier decision we are
  // only now being taught: the client commands it carried must re-enter
  // the queue for a fresh slot instead of dying with the proposal.
  for (const smr::Command& cmd : smr::FlattenCommand(displaced)) {
    auto key = std::make_pair(cmd.client, cmd.client_seq);
    assigned_.erase(key);
    if (dedup_.Lookup(cmd.client, cmd.client_seq) != nullptr) continue;
    if (queued_.insert(key).second) pending_.push_back(cmd);
  }
}

void CrosswordReplica::ApplyAndReply() {
  log_.ApplyCommitted(
      &kv_, &dedup_,
      [this](uint64_t, const smr::Command& cmd, const std::string& result) {
        executed_commands_.push_back(cmd);
        auto key = std::make_pair(cmd.client, cmd.client_seq);
        assigned_.erase(key);  // The dedup session covers it from here on.
        auto it = awaiting_client_.find(key);
        if (it != awaiting_client_.end()) {
          Send(it->second,
               std::make_shared<ReplyMsg>(cmd.client_seq, result, id()));
          awaiting_client_.erase(it);
        }
      });
  MaybeCheckpoint();
}

void CrosswordReplica::MaybeCheckpoint() {
  if (options_.checkpoint_interval == 0) return;
  uint64_t applied = log_.applied_frontier();
  if (applied - log_.start() < options_.checkpoint_interval) return;
  log_.TruncatePrefix(applied);
  slots_.erase(slots_.begin(), slots_.lower_bound(applied));
  ++checkpoints_taken_;
}

uint64_t CrosswordReplica::ChosenThrough() const {
  uint64_t f = log_.commit_frontier();
  while (true) {
    if (log_.Has(f) || pending_recon_.count(f) > 0) {
      ++f;
      continue;
    }
    auto it = slots_.find(f);
    if (it != slots_.end() && it->second.chosen) {
      ++f;
      continue;
    }
    return f;
  }
}

void CrosswordReplica::OnMessage(sim::NodeId from, const sim::Message& msg) {
  if (const auto* m = dynamic_cast<const RequestMsg*>(&msg)) {
    if (!leader_active_ && !phase1_pending_) {
      Send(from, std::make_shared<ReplyMsg>(m->cmd.client_seq, kRedirect,
                                            LeaderHint()));
      return;
    }
    if (const std::string* cached =
            dedup_.Lookup(m->cmd.client, m->cmd.client_seq)) {
      Send(from,
           std::make_shared<ReplyMsg>(m->cmd.client_seq, *cached, id()));
      return;
    }
    auto key = std::make_pair(m->cmd.client, m->cmd.client_seq);
    awaiting_client_[key] = from;
    if (assigned_.count(key) > 0 || queued_.count(key) > 0) {
      return;  // In flight: the apply path replies.
    }
    queued_.insert(key);
    pending_.push_back(m->cmd);
    if (!leader_active_ || options_.batch_delay == 0 ||
        pending_.size() >= static_cast<size_t>(options_.batch_size)) {
      ProposeNext();
    } else if (pending_.size() == 1) {
      batch_timer_ = SetTimer(options_.batch_delay, [this] { ProposeNext(); });
    }
    return;
  }

  if (const auto* m = dynamic_cast<const PrepareMsg*>(&msg)) {
    if (m->ballot >= ballot_num_) {
      ballot_num_ = m->ballot;
      if (m->ballot.pid != id() && leader_active_) Deposed();
      auto promise = std::make_shared<PromiseMsg>();
      promise->ballot = m->ballot;
      promise->frontier = log_.commit_frontier();
      for (const auto& [index, slot] : slots_) {
        if (index < log_.start()) continue;
        if (slot.chosen) {
          promise->chosen.insert(index);
          if (log_.Has(index)) continue;  // Value served on pull/teach.
          // Ship the fragments we hold for the decided-but-unrebuilt
          // slot: gathered pulls if any, else our accepted window.
          auto pit = pending_recon_.find(index);
          if (pit != pending_recon_.end() &&
              pit->second.assembler.distinct() > 0) {
            promise->accepted[index] = {slot.chosen_ballot,
                                        pit->second.assembler.Merged()};
          } else if (slot.has_value) {
            promise->accepted[index] = {slot.accept_num, slot.value};
          }
          continue;
        }
        if (slot.has_value) {
          promise->accepted[index] = {slot.accept_num, slot.value};
        }
      }
      Send(from, promise);
      if (m->ballot.pid != id()) ResetLeaderTimer();
    }
    return;
  }

  if (const auto* m = dynamic_cast<const PromiseMsg*>(&msg)) {
    if (!phase1_pending_ || m->ballot != my_ballot_) return;
    promisers_.insert(from);
    for (const auto& [index, entry] : m->accepted) {
      recovered_[index].push_back(entry);  // Keep ALL fragments, not a max.
    }
    for (uint64_t index : m->chosen) recovered_chosen_.insert(index);
    if (static_cast<int>(promisers_.size()) >= q1_) OnLeadershipAcquired();
    return;
  }

  if (const auto* m = dynamic_cast<const AcceptMsg*>(&msg)) {
    if (m->ballot >= ballot_num_) {
      ballot_num_ = m->ballot;
      if (m->ballot.pid != id() && leader_active_) Deposed();
      if (m->index < log_.start()) {
        // Checkpoint-truncated slot: refuse and re-base the proposer.
        auto snap = std::make_shared<SnapshotMsg>();
        snap->end = log_.applied_frontier();
        snap->data = kv_.Snapshot();
        snap->sessions = dedup_.sessions();
        Send(from, snap);
        if (m->ballot.pid != id()) ResetLeaderTimer();
        return;
      }
      SlotState& slot = Slot(m->index);
      // The unsafe variant drops the whole chosen-slot defense suite —
      // acceptors behave like plain Paxos acceptors and blindly ack any
      // current-ballot proposal, as in RS-Paxos as published.
      if (slot.chosen && !options_.unsafe_majority_quorum) {
        // A proposal for a slot we know is decided. Teach the decision
        // (full value or our validated fragment) instead of acking —
        // acking would let a proposer that missed the decision count us
        // toward choosing a DIFFERENT value here.
        if (const smr::Command* cmd = log_.Get(m->index)) {
          Send(from, std::make_shared<PullReplyMsg>(m->index, *cmd));
          if (m->ballot.pid != id()) ResetLeaderTimer();
          return;
        }
        auto pit = pending_recon_.find(m->index);
        if (pit != pending_recon_.end() &&
            pit->second.assembler.distinct() > 0) {
          Send(from, std::make_shared<PullReplyMsg>(
                         m->index, pit->second.assembler.Merged()));
          // The incoming framing is the same value in bounds; fold it in.
          if (smr::IsShard(m->cmd)) {
            pit->second.assembler.Add(m->cmd);
            TryCompleteRecon(m->index);
          }
          if (m->ballot.pid != id()) ResetLeaderTimer();
          return;
        }
        // Decided but we hold nothing to teach with: accept. In bounds
        // the proposal carries the decided value (a leader that learned
        // the slot is chosen never proposes into it), so this only helps
        // the round finish.
        slot.accept_num = m->ballot;
        slot.value = m->cmd;
        slot.has_value = true;
        slot.round = m->round;
        if (pit != pending_recon_.end() && smr::IsShard(m->cmd)) {
          pit->second.assembler.Add(m->cmd);
          TryCompleteRecon(m->index);
        }
        Send(from, std::make_shared<AcceptedMsg>(m->ballot, m->index,
                                                 m->round));
        if (m->ballot.pid != id()) ResetLeaderTimer();
        return;
      }
      // Reordered rounds within one ballot: never regress to an earlier
      // framing of the slot.
      if (slot.has_value && slot.accept_num == m->ballot &&
          m->round < slot.round) {
        return;
      }
      slot.accept_num = m->ballot;
      slot.value = m->cmd;
      slot.has_value = true;
      slot.round = m->round;
      Send(from, std::make_shared<AcceptedMsg>(m->ballot, m->index, m->round));
      if (m->ballot.pid != id()) ResetLeaderTimer();
    }
    return;
  }

  if (const auto* m = dynamic_cast<const AcceptedMsg*>(&msg)) {
    if (!leader_active_ || m->ballot != my_ballot_) return;
    auto it = slots_.find(m->index);
    if (it == slots_.end()) return;
    if (m->round != it->second.round) return;  // Stale round's framing.
    it->second.accepts.insert(from);
    MaybeChoose(m->index);
    return;
  }

  if (const auto* m = dynamic_cast<const CommitMsg*>(&msg)) {
    if (m->ballot >= ballot_num_) {
      ballot_num_ = m->ballot;
      if (m->ballot.pid != id()) {
        if (leader_active_) Deposed();
        ResetLeaderTimer();
      }
      if (m->has_entry) MarkChosen(m->index, m->ballot);
      // Catch up on what we don't even know to be chosen. Slots pending
      // reconstruction are NOT a gap — pulling their payloads from the
      // leader would re-create the full-copy fan-out sharding removed.
      const uint64_t known = ChosenThrough();
      if (m->frontier > known && from != id()) {
        Send(from, std::make_shared<CatchupRequestMsg>(known));
      }
    }
    return;
  }

  if (const auto* m = dynamic_cast<const PullMsg*>(&msg)) {
    if (m->index < log_.start()) {
      // Truncated away: the puller is far behind — re-base it.
      auto snap = std::make_shared<SnapshotMsg>();
      snap->end = log_.applied_frontier();
      snap->data = kv_.Snapshot();
      snap->sessions = dedup_.sessions();
      Send(from, snap);
      ++pulls_served_;
      return;
    }
    // Retransmission suppression: if our previous answer to this exact
    // puller is still serializing at this port, a repeat pull is the
    // puller's impatience, not a loss — answering again queues a second
    // copy behind the first.
    const auto pull_key = std::make_pair(m->index, from);
    auto dit = pull_reply_draining_.find(pull_key);
    if (dit != pull_reply_draining_.end() && Now() < dit->second) return;
    auto serve = [&](smr::Command cmd) {
      Send(from, std::make_shared<PullReplyMsg>(m->index, std::move(cmd)));
      pull_reply_draining_[pull_key] = Now() + sim().EgressBacklog(id());
      ++pulls_served_;
    };
    if (const smr::Command* cmd = log_.Get(m->index)) {
      if (!m->want_full && !smr::IsNoop(*cmd) && n_ > 1) {
        // Serve the fragment at OUR diagonal position, not the whole
        // value: pullers reassemble from k distinct positions, and a
        // full-copy answer per puller would re-pay the entire egress
        // bill the coded accept round just avoided. The full value goes
        // out only on want_full — the puller's last resort.
        smr::ShardedCommand sc = smr::ShardCommand(*cmd, k_, n_);
        serve(sc.Subset(PositionOf(id()), 1));
      } else {
        serve(*cmd);
      }
      return;
    }
    auto pit = pending_recon_.find(m->index);
    if (pit != pending_recon_.end() &&
        pit->second.assembler.distinct() > 0) {
      serve(pit->second.assembler.Merged());
      return;
    }
    auto sit = slots_.find(m->index);
    if (sit != slots_.end() && sit->second.chosen && sit->second.has_value &&
        sit->second.accept_num == sit->second.chosen_ballot &&
        smr::IsShard(sit->second.value)) {
      serve(sit->second.value);
    }
    return;  // Nothing validated to serve; the puller's retry rotates on.
  }

  if (const auto* m = dynamic_cast<const PullReplyMsg*>(&msg)) {
    if (m->index < log_.start() || log_.Has(m->index)) return;
    if (!smr::IsShard(m->cmd)) {
      // A full chosen value (pull answer or teach). If we were proposing
      // something else into this slot, rescue those commands first.
      DisplaceInFlight(m->index, &m->cmd);
      Slot(m->index).chosen = true;
      LearnChosen(m->index, m->cmd);
      if (leader_active_) ProposeNext();
      return;
    }
    // A fragment. Taught mid-proposal, it also marks the slot decided.
    DisplaceInFlight(m->index, nullptr);
    Slot(m->index).chosen = true;
    const bool fresh = pending_recon_.count(m->index) == 0;
    PendingRecon& p = pending_recon_[m->index];  // Ballot unknown on teach.
    p.assembler.Add(m->cmd);
    TryCompleteRecon(m->index);
    if (fresh && pending_recon_.count(m->index) > 0) {
      SchedulePull(m->index);  // Existing entries already run a pull timer.
    }
    if (leader_active_) ProposeNext();
    return;
  }

  if (const auto* m = dynamic_cast<const CatchupRequestMsg*>(&msg)) {
    if (!leader_active_) return;
    if (m->from_index < log_.start()) {
      auto snap = std::make_shared<SnapshotMsg>();
      snap->end = log_.applied_frontier();
      snap->data = kv_.Snapshot();
      snap->sessions = dedup_.sessions();
      Send(from, snap);
      return;
    }
    auto reply = std::make_shared<CatchupReplyMsg>();
    constexpr size_t kMaxCatchupEntries = 128;
    for (uint64_t i = m->from_index;
         i < log_.commit_frontier() &&
         reply->entries.size() < kMaxCatchupEntries;
         ++i) {
      const smr::Command* cmd = log_.Get(i);
      if (cmd == nullptr) break;  // Gap within our own retained prefix.
      reply->entries.emplace_back(i, *cmd);
    }
    if (!reply->entries.empty()) Send(from, reply);
    return;
  }

  if (const auto* m = dynamic_cast<const CatchupReplyMsg*>(&msg)) {
    // Every entry is a chosen value; learning outright is safe.
    for (const auto& [index, cmd] : m->entries) LearnChosen(index, cmd);
    return;
  }

  if (const auto* m = dynamic_cast<const SnapshotMsg*>(&msg)) {
    if (m->end <= log_.applied_frontier()) return;  // Already as fresh.
    kv_.Restore(m->data);
    dedup_.Restore(m->sessions);
    log_.ResetToSnapshot(m->end);
    slots_.erase(slots_.begin(), slots_.lower_bound(m->end));
    for (auto it = pending_recon_.begin(); it != pending_recon_.end();) {
      if (it->first < m->end) {
        CancelTimer(it->second.timer);
        it = pending_recon_.erase(it);
      } else {
        ++it;
      }
    }
    ++snapshots_installed_;
    if (leader_active_) {
      // As in Multi-Paxos: a snapshot refusing our Accept means we won an
      // election while lagging; drop the dead in-flight tracking and
      // re-base the cursor.
      for (auto it = assigned_.begin(); it != assigned_.end();) {
        if (it->second < m->end) {
          it = assigned_.erase(it);
        } else {
          ++it;
        }
      }
      next_index_ = std::max(next_index_, m->end);
    }
    ApplyAndReply();  // Retained chosen slots past `end` may now apply.
    return;
  }
}

void CrosswordReplica::OnRestart() {
  // Volatile leader/proposer state is lost; acceptor + log state is stable.
  leader_active_ = false;
  phase1_pending_ = false;
  promisers_.clear();
  recovered_.clear();
  recovered_chosen_.clear();
  pending_.clear();
  queued_.clear();
  assigned_.clear();
  awaiting_client_.clear();
  batch_timer_ = 0;
  heartbeat_timer_ = 0;
  // The adaptive controller restarts conservative (full copies).
  c_now_ = k_;
  payload_ewma_ = 0.0;
  backlog_ewma_ = 0.0;
  // Reconstruction state (assemblers, pull timers) was volatile: re-seed
  // it for every slot the durable acceptor state knows is decided but the
  // log never received.
  pending_recon_.clear();
  pull_reply_draining_.clear();
  std::vector<uint64_t> unfilled;
  for (const auto& [index, slot] : slots_) {
    if (index < log_.start() || !slot.chosen || log_.Has(index)) continue;
    unfilled.push_back(index);
  }
  for (uint64_t index : unfilled) {
    SlotState& slot = Slot(index);
    const bool validated = slot.has_value && !slot.chosen_ballot.IsZero() &&
                           slot.accept_num == slot.chosen_ballot;
    if (validated && !smr::IsShard(slot.value)) {
      LearnChosen(index, slot.value);
      continue;
    }
    PendingRecon& p = pending_recon_[index];
    p.ballot = slot.chosen_ballot;
    if (validated) p.assembler.Add(slot.value);
    TryCompleteRecon(index);
    if (pending_recon_.count(index) > 0) SchedulePull(index);
  }
  ResetLeaderTimer();
}

}  // namespace consensus40::paxos
