/// Checker adapter for Multi-Paxos: n=5 replicas plus a retrying client;
/// safety observables are the per-replica committed log prefixes.

#include <memory>
#include <string>

#include "check/adapters.h"
#include "paxos/multi_paxos.h"

namespace consensus40::check {
namespace {

class MultiPaxosCheckAdapter : public ProtocolAdapter {
 public:
  const char* name() const override { return "multi_paxos"; }

  FaultBounds bounds() const override {
    FaultBounds b;
    b.nodes = kN;
    b.max_crashed = (kN - 1) / 2;
    b.restartable = true;
    b.partitionable = true;
    return b;
  }

  void Build(sim::Simulation* sim) override {
    paxos::MultiPaxosOptions opts;
    opts.n = kN;
    for (int i = 0; i < kN; ++i) {
      replicas_.push_back(sim->Spawn<paxos::MultiPaxosReplica>(opts));
    }
    client_ = sim->Spawn<paxos::MultiPaxosClient>(kN, kOps);
  }

  bool Done() const override { return client_->done(); }

  Observation Observe() const override {
    Observation o;
    for (const paxos::MultiPaxosReplica* r : replicas_) {
      std::vector<std::string> log;
      const smr::ReplicatedLog& rlog = r->log();
      for (uint64_t k = 0; k < rlog.commit_frontier(); ++k) {
        const smr::Command* cmd = rlog.Get(k);
        if (cmd == nullptr) break;
        log.push_back(cmd->ToString());
      }
      o.logs.push_back(std::move(log));
      for (const std::string& v : r->violations()) {
        o.self_reported.push_back("multi_paxos replica " +
                                  std::to_string(r->id()) + ": " + v);
      }
    }
    return o;
  }

 private:
  static constexpr int kN = 5;
  static constexpr int kOps = 5;
  std::vector<paxos::MultiPaxosReplica*> replicas_;
  paxos::MultiPaxosClient* client_ = nullptr;
};

}  // namespace

AdapterFactory MakeMultiPaxosAdapter() {
  return [](uint64_t) { return std::make_unique<MultiPaxosCheckAdapter>(); };
}

}  // namespace consensus40::check
