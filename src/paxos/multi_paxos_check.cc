/// Checker adapter for Multi-Paxos: n=5 replicas plus three retrying
/// clients on distinct keys, so several consensus instances (log slots)
/// are in flight concurrently; safety observables are the per-replica
/// committed log prefixes, and the prefix-consistency invariant checks
/// the interleaving of all concurrent instances across replicas.

#include <memory>
#include <string>

#include "check/adapters.h"
#include "paxos/multi_paxos.h"

namespace consensus40::check {
namespace {

class MultiPaxosCheckAdapter : public ProtocolAdapter {
 public:
  const char* name() const override { return "multi_paxos"; }

  FaultBounds bounds() const override {
    FaultBounds b;
    b.nodes = kN;
    b.max_crashed = (kN - 1) / 2;
    b.restartable = true;
    b.partitionable = true;
    return b;
  }

  void Build(sim::Simulation* sim) override {
    paxos::MultiPaxosOptions opts;
    opts.n = kN;
    for (int i = 0; i < kN; ++i) {
      replicas_.push_back(sim->Spawn<paxos::MultiPaxosReplica>(opts));
    }
    // Three concurrent clients on distinct keys keep >= 3 log instances
    // open at once (the ROADMAP's multi-instance probes): slot assignment,
    // recovery, and commit-frontier advance are exercised under real
    // inter-instance interleaving, not one-slot-at-a-time traffic.
    for (int c = 0; c < kClients; ++c) {
      clients_.push_back(sim->Spawn<paxos::MultiPaxosClient>(
          kN, kOpsPerClient, std::string(1, static_cast<char>('x' + c))));
    }
  }

  bool Done() const override {
    for (const paxos::MultiPaxosClient* c : clients_) {
      if (!c->done()) return false;
    }
    return true;
  }

  Observation Observe() const override {
    Observation o;
    for (const paxos::MultiPaxosReplica* r : replicas_) {
      std::vector<std::string> log;
      const smr::ReplicatedLog& rlog = r->log();
      for (uint64_t k = 0; k < rlog.commit_frontier(); ++k) {
        const smr::Command* cmd = rlog.Get(k);
        if (cmd == nullptr) break;
        log.push_back(cmd->ToString());
      }
      o.logs.push_back(std::move(log));
      for (const std::string& v : r->violations()) {
        o.self_reported.push_back("multi_paxos replica " +
                                  std::to_string(r->id()) + ": " + v);
      }
    }
    return o;
  }

 private:
  static constexpr int kN = 5;
  static constexpr int kClients = 3;
  static constexpr int kOpsPerClient = 3;
  std::vector<paxos::MultiPaxosReplica*> replicas_;
  std::vector<paxos::MultiPaxosClient*> clients_;
};

}  // namespace

AdapterFactory MakeMultiPaxosAdapter() {
  return [](uint64_t) { return std::make_unique<MultiPaxosCheckAdapter>(); };
}

}  // namespace consensus40::check
