#ifndef CONSENSUS40_PAXOS_CROSSWORD_H_
#define CONSENSUS40_PAXOS_CROSSWORD_H_

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "paxos/ballot.h"
#include "sim/simulation.h"
#include "smr/command.h"
#include "smr/erasure.h"
#include "smr/state_machine.h"

namespace consensus40::paxos {

/// Configuration for a Crossword replica (Hu & Arpaci-Dusseau, PAPERS.md):
/// Multi-Paxos with erasure-coded accept payloads. The leader Reed–Solomon
/// codes each log entry into n shards (k = majority reconstruct) and sends
/// acceptor j the c-shard window starting at j's member position — the
/// paper's diagonal assignment. c slides between k (classic full-copy,
/// minimal latency) and 1 (RS-Paxos-like, minimal bandwidth).
///
/// Quorum-reconstruction invariant: a slot proposed at c shards per
/// acceptor commits only after q2(c) = max(n + 1 - c, majority) accepts.
/// Any s distinct c-shard windows jointly cover >= min(n, s + c - 1)
/// distinct shards, so ANY majority of the cluster intersects the
/// accepted set in servers jointly holding >= k distinct shards — a new
/// leader's majority phase-1 quorum can always reconstruct a
/// possibly-chosen entry. c = k gives q2 = majority: classic Multi-Paxos.
struct CrosswordOptions {
  /// Cluster size; replicas are processes 0..n-1 unless `members` is set.
  int n = 0;
  std::vector<sim::NodeId> members;

  sim::Duration heartbeat_interval = 20 * sim::kMillisecond;
  sim::Duration leader_timeout = 150 * sim::kMillisecond;

  /// Leader-side batching and checkpointing, as in Multi-Paxos.
  int batch_size = 1;
  sim::Duration batch_delay = 0;
  uint64_t checkpoint_interval = 0;

  /// Assignment policy. kAdaptive slides c per slot on the EWMA signals
  /// below; the fixed modes pin it (the bench's baselines).
  enum class Mode { kAdaptive, kFullCopy, kFixedRs };
  Mode mode = Mode::kAdaptive;
  /// c for kFixedRs (clamped to [1, k]).
  int fixed_shards = 1;

  /// Adaptive controller: payloads below this never shard (framing
  /// overhead dominates and the latency gate wants classic behaviour).
  int min_payload_to_shard = 256;
  /// EWMA smoothing for payload size and egress backlog.
  double ewma_alpha = 0.25;
  /// Slide c down (more coding) when the smoothed egress backlog exceeds
  /// `backlog_high`; slide it back up when it falls below `backlog_low`.
  sim::Duration backlog_high = 2 * sim::kMillisecond;
  sim::Duration backlog_low = 500 * sim::kMicrosecond;

  /// A slot unchosen this long after its accept round is re-proposed at
  /// c = k (full copies, majority quorum): Crossword's follower-health
  /// adaptation, and what keeps sharded configs live through crashes and
  /// partitions that a q2(c) > majority quorum cannot ride out.
  sim::Duration stall_timeout = 60 * sim::kMillisecond;

  /// Follower-side reconstruction: retry cadence for shard pulls.
  sim::Duration reconstruct_retry = 25 * sim::kMillisecond;

  /// OUT OF BOUNDS: commit at a bare majority regardless of c. Under
  /// c < k a chosen entry may live on acceptors jointly holding fewer
  /// than k distinct shards once the leader dies — the under-replicated
  /// configuration the checker must catch.
  bool unsafe_majority_quorum = false;
};

/// A Crossword replica: Multi-Paxos control plane, erasure-coded data
/// plane. Followers ack shard subsets, reconstruct on apply by pulling
/// missing shards from peers (never the full payload from the leader),
/// and a recovering leader reassembles possibly-chosen entries from the
/// shard fragments its phase-1 promises carry.
class CrosswordReplica : public sim::Process {
 public:
  explicit CrosswordReplica(CrosswordOptions options);

  // --- Client-facing messages (public so clients can construct them) ---
  struct RequestMsg : sim::Message {
    explicit RequestMsg(smr::Command c) : cmd(std::move(c)) {}
    const char* TypeName() const override { return "cw-request"; }
    int ByteSize() const override { return 8 + cmd.ByteSize(); }
    smr::Command cmd;
  };
  struct ReplyMsg : sim::Message {
    ReplyMsg(uint64_t s, std::string r, sim::NodeId l)
        : client_seq(s), result(std::move(r)), leader_hint(l) {}
    const char* TypeName() const override { return "cw-reply"; }
    int ByteSize() const override {
      return 16 + static_cast<int>(result.size());
    }
    uint64_t client_seq;
    std::string result;
    sim::NodeId leader_hint;
  };

  bool IsLeader() const { return leader_active_; }
  sim::NodeId LeaderHint() const { return ballot_num_.pid; }

  const smr::ReplicatedLog& log() const { return log_; }
  const smr::KvStore& kv() const { return kv_; }
  const std::vector<std::string>& violations() const { return violations_; }
  const std::vector<smr::Command>& CommittedCommands() const {
    return executed_commands_;
  }
  int phase1_rounds() const { return phase1_rounds_; }
  /// Slots this replica applied via shard reconstruction (vs full copy).
  int reconstructions() const { return reconstructions_; }
  /// Shard-pull requests answered for peers.
  int pulls_served() const { return pulls_served_; }
  /// Stalled slots re-proposed at c = k.
  int escalations() const { return escalations_; }
  /// The controller's current shards-per-acceptor choice.
  int current_shards() const { return c_now_; }
  int checkpoints_taken() const { return checkpoints_taken_; }
  int snapshots_installed() const { return snapshots_installed_; }

  void OnStart() override;
  void OnMessage(sim::NodeId from, const sim::Message& msg) override;
  void OnRestart() override;

 private:
  struct PrepareMsg;
  struct PromiseMsg;
  struct AcceptMsg;
  struct AcceptedMsg;
  struct CommitMsg;
  struct PullMsg;
  struct PullReplyMsg;
  struct CatchupRequestMsg;
  struct CatchupReplyMsg;
  struct SnapshotMsg;

  struct SlotState {
    Ballot accept_num;
    smr::Command value;    ///< Full command (leader / c = k) or shard frame.
    bool has_value = false;
    bool chosen = false;
    Ballot chosen_ballot;  ///< Ballot the commit announced.
    // Leader-side proposal state.
    std::set<sim::NodeId> accepts;
    uint32_t round = 0;   ///< Bumped per (re-)proposal; acks echo it.
    int c = 0;            ///< Shards per acceptor this round.
    int q2 = 0;           ///< Accepts needed this round.
    sim::Time proposed_at = 0;
  };

  /// A committed slot awaiting shard reconstruction.
  struct PendingRecon {
    Ballot ballot;  ///< Chosen ballot (zero when learned via teach).
    smr::ShardAssembler assembler;
    int attempt = 0;
    uint64_t timer = 0;
  };

  void StartPhase1();
  void OnLeadershipAcquired();
  void Deposed();
  void ProposeNext();
  /// Chooses c for a payload of `payload` bytes (the adaptive controller).
  int ChooseShards(int payload);
  int Q2For(int c) const;
  int PositionOf(sim::NodeId node) const;
  /// Proposes `cmd` (a full command) at `index`: leader self-accepts the
  /// full copy and ships per-acceptor shard windows (or full copies).
  void AcceptSlot(uint64_t index, const smr::Command& cmd);
  /// Starts a fresh accept round for `index` at c shards per acceptor
  /// (the slot must already hold the full value).
  void StartRound(uint64_t index, int c);
  /// Ships the slot's current round — to everyone, or only to members
  /// that have not acked it yet.
  void SendRound(uint64_t index, const SlotState& slot, bool resend_only);
  /// Commits the slot if its current round has reached q2.
  void MaybeChoose(uint64_t index);
  /// Reconstructs and learns `index` if its assembler is complete.
  void TryCompleteRecon(uint64_t index);
  /// Re-queues the client commands of our unchosen in-flight proposal at
  /// `index` after being taught the slot was already decided (as
  /// `decided`, when known).
  void DisplaceInFlight(uint64_t index, const smr::Command* decided);
  /// Re-sends the current round to stragglers; escalates stalled sharded
  /// slots to full copies.
  void ResendInFlight();
  /// Resolves one recovered slot from promise-carried fragments; nullopt
  /// when no candidate reconstructs (provably unchosen in bounds).
  std::optional<smr::Command> ResolveRecovered(
      const std::vector<std::pair<Ballot, smr::Command>>& candidates) const;
  /// Records `index` as chosen at `ballot` and kicks off reconstruction
  /// or applies directly, depending on what this replica holds.
  void MarkChosen(uint64_t index, Ballot ballot);
  /// Installs the full chosen value into the log and applies.
  void LearnChosen(uint64_t index, const smr::Command& cmd);
  void SchedulePull(uint64_t index);
  void ApplyAndReply();
  void MaybeCheckpoint();
  void ResetLeaderTimer();
  void SendHeartbeat();
  std::vector<sim::NodeId> Everyone() const;
  SlotState& Slot(uint64_t index);
  /// First index this replica does not know to be chosen (committed,
  /// pending reconstruction, or marked chosen in acceptor state).
  uint64_t ChosenThrough() const;

  CrosswordOptions options_;
  int n_ = 0;
  int k_ = 0;   ///< Majority = data-shard count.
  int q1_ = 0;  ///< Phase-1 quorum (majority).

  // Acceptor state.
  Ballot ballot_num_;
  std::map<uint64_t, SlotState> slots_;

  // Leader state.
  bool leader_active_ = false;
  bool phase1_pending_ = false;
  std::set<sim::NodeId> promisers_;
  /// index -> every (ballot, value) any promise carried for it.
  std::map<uint64_t, std::vector<std::pair<Ballot, smr::Command>>> recovered_;
  /// Slots some promiser knows are decided.
  std::set<uint64_t> recovered_chosen_;
  Ballot my_ballot_;
  uint64_t next_index_ = 0;
  std::deque<smr::Command> pending_;
  std::map<std::pair<int32_t, uint64_t>, uint64_t> assigned_;
  std::set<std::pair<int32_t, uint64_t>> queued_;
  std::map<std::pair<int32_t, uint64_t>, sim::NodeId> awaiting_client_;

  // Learner / execution state.
  smr::ReplicatedLog log_;
  smr::KvStore kv_;
  smr::DedupingExecutor dedup_;
  std::vector<smr::Command> executed_commands_;
  std::map<uint64_t, PendingRecon> pending_recon_;
  /// (index, puller) -> time our last reply finishes serializing; repeat
  /// pulls before then are the puller's impatience, not a loss, and are
  /// dropped instead of queueing duplicate replies. Volatile by design.
  std::map<std::pair<uint64_t, sim::NodeId>, sim::Time> pull_reply_draining_;

  // Adaptive controller state.
  int c_now_ = 0;
  double payload_ewma_ = 0.0;
  double backlog_ewma_ = 0.0;

  uint64_t leader_timer_ = 0;
  uint64_t heartbeat_timer_ = 0;
  uint64_t batch_timer_ = 0;
  int phase1_rounds_ = 0;
  int batches_cut_ = 0;
  int reconstructions_ = 0;
  int pulls_served_ = 0;
  int escalations_ = 0;
  int checkpoints_taken_ = 0;
  int snapshots_installed_ = 0;
  std::vector<std::string> violations_;
};

}  // namespace consensus40::paxos

#endif  // CONSENSUS40_PAXOS_CROSSWORD_H_
