/// Checker adapter for Fast Paxos: n=4 acceptors (process 0 doubles as the
/// coordinator and is shielded from faults — the module has no coordinator
/// failover), two rival clients racing on the fast path.

#include <memory>
#include <string>

#include "check/adapters.h"
#include "paxos/fast_paxos.h"

namespace consensus40::check {
namespace {

class FastPaxosCheckAdapter : public ProtocolAdapter {
 public:
  const char* name() const override { return "fast_paxos"; }

  FaultBounds bounds() const override {
    FaultBounds b;
    // Only the non-coordinator acceptors are fault-injectable; crash-stop
    // (no OnRestart), no partitions (single-shot client proposals are
    // never retransmitted, so a cut would read as a liveness failure).
    b.first_node = 1;
    b.nodes = kN - 1;
    b.max_crashed = (kN - 1) / 3;
    return b;
  }

  void Build(sim::Simulation* sim) override {
    paxos::FastPaxosOptions opts;
    opts.n = kN;
    for (int i = 0; i < kN; ++i) {
      acceptors_.push_back(sim->Spawn<paxos::FastPaxosAcceptor>(opts));
    }
    sim->Spawn<paxos::FastPaxosClient>(kN, "A", 10 * sim::kMillisecond);
    sim->Spawn<paxos::FastPaxosClient>(kN, "B", 11 * sim::kMillisecond);
  }

  bool Done() const override {
    return acceptors_[0]->chosen().has_value();
  }

  Observation Observe() const override {
    Observation o;
    o.allowed = {"A", "B"};
    for (const paxos::FastPaxosAcceptor* a : acceptors_) {
      if (a->chosen().has_value()) {
        o.decided["0"][a->id()] = *a->chosen();
      }
    }
    return o;
  }

 private:
  static constexpr int kN = 4;
  std::vector<paxos::FastPaxosAcceptor*> acceptors_;
};

}  // namespace

AdapterFactory MakeFastPaxosAdapter() {
  return [](uint64_t) { return std::make_unique<FastPaxosCheckAdapter>(); };
}

}  // namespace consensus40::check
