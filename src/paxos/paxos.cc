#include "paxos/paxos.h"

#include <cassert>

namespace consensus40::paxos {

// ---------------------------------------------------------------------------
// Messages
// ---------------------------------------------------------------------------

struct PaxosNode::PrepareMsg : sim::Message {
  explicit PrepareMsg(Ballot b) : ballot(b) {}
  const char* TypeName() const override { return "prepare"; }
  int ByteSize() const override { return 24; }
  Ballot ballot;
};

struct PaxosNode::PrepareAckMsg : sim::Message {
  PrepareAckMsg(Ballot b, Ballot an, std::optional<std::string> av)
      : ballot(b), accept_num(an), accept_val(std::move(av)) {}
  const char* TypeName() const override { return "prepare-ack"; }
  int ByteSize() const override {
    return 40 + static_cast<int>(accept_val ? accept_val->size() : 0);
  }
  Ballot ballot;
  Ballot accept_num;
  std::optional<std::string> accept_val;
};

struct PaxosNode::AcceptMsg : sim::Message {
  AcceptMsg(Ballot b, std::string v) : ballot(b), value(std::move(v)) {}
  const char* TypeName() const override { return "accept"; }
  int ByteSize() const override { return 24 + static_cast<int>(value.size()); }
  Ballot ballot;
  std::string value;
};

struct PaxosNode::AcceptedMsg : sim::Message {
  explicit AcceptedMsg(Ballot b) : ballot(b) {}
  const char* TypeName() const override { return "accepted"; }
  int ByteSize() const override { return 24; }
  Ballot ballot;
};

struct PaxosNode::NackMsg : sim::Message {
  NackMsg(Ballot promised_ballot, Ballot rejected_ballot)
      : promised(promised_ballot), rejected(rejected_ballot) {}
  const char* TypeName() const override { return "nack"; }
  int ByteSize() const override { return 40; }
  Ballot promised;
  Ballot rejected;  ///< The proposer ballot this nack preempts.
};

struct PaxosNode::DecideMsg : sim::Message {
  explicit DecideMsg(std::string v) : value(std::move(v)) {}
  const char* TypeName() const override { return "decide"; }
  int ByteSize() const override { return 16 + static_cast<int>(value.size()); }
  std::string value;
};

struct PaxosNode::LearnMsg : sim::Message {
  const char* TypeName() const override { return "learn"; }
  int ByteSize() const override { return 8; }
};

// ---------------------------------------------------------------------------
// Node
// ---------------------------------------------------------------------------

PaxosNode::PaxosNode(PaxosOptions options) : options_(options) {
  assert(options_.n > 0);
  q1_ = options_.q1 > 0 ? options_.q1 : options_.n / 2 + 1;
  q2_ = options_.q2 > 0 ? options_.q2 : options_.n / 2 + 1;
}

std::vector<sim::NodeId> PaxosNode::Everyone() const {
  std::vector<sim::NodeId> all;
  all.reserve(options_.n);
  for (int i = 0; i < options_.n; ++i) all.push_back(i);
  return all;
}

void PaxosNode::Propose(std::string value) {
  my_value_ = std::move(value);
  if (decided_ || proposing_) return;
  proposing_ = true;
  StartPhase1();
}

void PaxosNode::StartPhase1() {
  if (decided_ || !proposing_) return;
  // Choose a ballot strictly above everything seen: <max.num+1, myId>.
  Ballot base = std::max(max_seen_, ballot_num_);
  my_ballot_ = Ballot::Successor(base, id());
  max_seen_ = my_ballot_;
  phase_ = 1;
  promises_.clear();
  accepts_.clear();
  ++prepare_attempts_;
  Multicast(Everyone(), std::make_shared<PrepareMsg>(my_ballot_));
  // Liveness fallback: if this attempt stalls entirely (e.g. quorum
  // unreachable), start over after the attempt timeout.
  CancelTimer(retry_timer_);
  retry_timer_ = SetTimer(options_.attempt_timeout, [this] {
    if (!decided_ && proposing_) StartPhase1();
  });
}

void PaxosNode::ScheduleRetry(sim::Duration base_delay) {
  CancelTimer(retry_timer_);
  sim::Duration d = base_delay;
  if (options_.randomized_backoff) {
    d *= 1 + static_cast<sim::Duration>(
                 rng().NextBounded(options_.backoff_spread));
  }
  retry_timer_ = SetTimer(d, [this] {
    if (!decided_ && proposing_) StartPhase1();
  });
}

void PaxosNode::MaybeFinishPhase1() {
  if (phase_ != 1) return;
  if (options_.quorum_system != nullptr) {
    core::NodeSet promisers;
    for (const auto& [from, promise] : promises_) promisers.insert(from);
    if (!options_.quorum_system->IsElectionQuorum(promisers)) return;
  } else if (static_cast<int>(promises_.size()) < q1_) {
    return;
  }
  // Propose the value accepted in the highest ballot, if any; otherwise our
  // own initial value ("the value accepted in the highest ballot might have
  // been decided, I better propose this value").
  Ballot best;
  std::optional<std::string> recovered;
  for (const auto& [from, promise] : promises_) {
    const auto& [an, av] = promise;
    if (av && an >= best) {
      best = an;
      recovered = av;
    }
  }
  proposal_value_ = recovered ? *recovered : *my_value_;
  phase_ = 2;
  accepts_.clear();
  Multicast(Everyone(),
            std::make_shared<AcceptMsg>(my_ballot_, proposal_value_));
}

void PaxosNode::Decide(const std::string& value) {
  if (decided_) {
    if (*decided_ != value) {
      violations_.push_back("decision changed from '" + *decided_ + "' to '" +
                            value + "'");
    }
    return;
  }
  decided_ = value;
  CancelTimer(retry_timer_);
  proposing_ = false;
  phase_ = 0;
}

void PaxosNode::OnMessage(sim::NodeId from, const sim::Message& msg) {
  if (decided_) {
    // A decided learner only answers with the decision (stable property).
    if (dynamic_cast<const PrepareMsg*>(&msg) != nullptr ||
        dynamic_cast<const LearnMsg*>(&msg) != nullptr) {
      Send(from, std::make_shared<DecideMsg>(*decided_));
    }
    if (const auto* d = dynamic_cast<const DecideMsg*>(&msg)) Decide(d->value);
    return;
  }

  if (const auto* m = dynamic_cast<const PrepareMsg*>(&msg)) {
    max_seen_ = std::max(max_seen_, m->ballot);
    if (m->ballot >= ballot_num_) {
      // Join the ballot: promise not to accept anything smaller.
      ballot_num_ = m->ballot;
      Send(from, std::make_shared<PrepareAckMsg>(m->ballot, accept_num_,
                                                 accept_val_));
    } else {
      Send(from, std::make_shared<NackMsg>(ballot_num_, m->ballot));
    }
    return;
  }

  if (const auto* m = dynamic_cast<const PrepareAckMsg*>(&msg)) {
    if (phase_ == 1 && m->ballot == my_ballot_) {
      promises_[from] = {m->accept_num, m->accept_val};
      MaybeFinishPhase1();
    }
    return;
  }

  if (const auto* m = dynamic_cast<const AcceptMsg*>(&msg)) {
    max_seen_ = std::max(max_seen_, m->ballot);
    if (m->ballot >= ballot_num_) {
      ballot_num_ = m->ballot;
      accept_num_ = m->ballot;
      accept_val_ = m->value;
      Send(from, std::make_shared<AcceptedMsg>(m->ballot));
    } else {
      Send(from, std::make_shared<NackMsg>(ballot_num_, m->ballot));
    }
    return;
  }

  if (const auto* m = dynamic_cast<const AcceptedMsg*>(&msg)) {
    if (phase_ == 2 && m->ballot == my_ballot_) {
      accepts_.insert(from);
      bool quorum;
      if (options_.quorum_system != nullptr) {
        quorum = options_.quorum_system->IsReplicationQuorum(
            core::NodeSet(accepts_.begin(), accepts_.end()));
      } else {
        quorum = static_cast<int>(accepts_.size()) >= q2_;
      }
      if (quorum) {
        // Chosen! Learn it and propagate the decision asynchronously.
        Multicast(Everyone(), std::make_shared<DecideMsg>(proposal_value_));
        Decide(proposal_value_);
      }
    }
    return;
  }

  if (const auto* m = dynamic_cast<const NackMsg*>(&msg)) {
    max_seen_ = std::max(max_seen_, m->promised);
    // Only a nack against the *current* attempt preempts; stale nacks from
    // earlier ballots are ignored.
    if (proposing_ && phase_ != 0 && m->rejected == my_ballot_) {
      phase_ = 0;
      ScheduleRetry(options_.retry_delay);
    }
    return;
  }

  if (const auto* m = dynamic_cast<const DecideMsg*>(&msg)) {
    Decide(m->value);
    return;
  }

  // LearnMsg from an undecided node: nothing to share (we are undecided too;
  // decided nodes answer from the early-return path above).
}

void PaxosNode::OnRestart() {
  // Acceptor state (ballot_num_, accept_num_, accept_val_) is stable and
  // survives; proposer bookkeeping is volatile.
  proposing_ = false;
  phase_ = 0;
  promises_.clear();
  accepts_.clear();
  // Catch up: ask the cluster whether a decision was reached while down.
  if (!decided_) Multicast(Everyone(), std::make_shared<LearnMsg>());
}

}  // namespace consensus40::paxos
