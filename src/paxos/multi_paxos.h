#ifndef CONSENSUS40_PAXOS_MULTI_PAXOS_H_
#define CONSENSUS40_PAXOS_MULTI_PAXOS_H_

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "paxos/ballot.h"
#include "sim/simulation.h"
#include "smr/command.h"
#include "smr/state_machine.h"

namespace consensus40::paxos {

/// Configuration for a Multi-Paxos replica.
struct MultiPaxosOptions {
  /// Cluster size; replicas are processes 0..n-1 unless `members` is set.
  int n = 0;

  /// Explicit member ids (e.g. one replication group of a sharded system,
  /// as in the Spanner architecture). When non-empty it overrides `n`; the
  /// first member bootstraps leadership.
  std::vector<sim::NodeId> members;

  /// Phase-1 / phase-2 quorum sizes; -1 = majority. Unequal values give
  /// Flexible (Multi-)Paxos.
  int q1 = -1;
  int q2 = -1;

  /// Leader heartbeat period (piggybacked commit-frontier broadcasts).
  sim::Duration heartbeat_interval = 20 * sim::kMillisecond;

  /// Follower patience before it suspects the leader and runs phase 1.
  /// Actual timeout is uniform in [leader_timeout, 2*leader_timeout].
  sim::Duration leader_timeout = 150 * sim::kMillisecond;

  /// The deck's optimization: "Run Phase 1 only when the leader changes."
  /// When false (the ablation), the leader re-runs phase 1 before every
  /// single command, i.e. full Basic Paxos per log entry.
  bool skip_phase1_when_stable = true;

  /// Leader-side batching (mirrors PBFT's and Raft's knobs): max client
  /// commands folded into one slot, and how long the leader lingers for a
  /// batch to fill. Defaults keep one-command-per-slot behaviour.
  int batch_size = 1;
  sim::Duration batch_delay = 0;

  /// Checkpointing: once this many applied slots accumulate past the last
  /// checkpoint, fold them into the state machine, truncate the log
  /// prefix, and drop the matching acceptor slots. Laggards that fell
  /// behind the truncation point receive a full state snapshot instead of
  /// slot-by-slot catch-up. 0 disables.
  uint64_t checkpoint_interval = 0;
};

/// A Multi-Paxos replica: a separate Basic Paxos instance per log entry
/// (Prepare/Accept carry an index), a stable leader elected via phase 1,
/// and a replicated KvStore applied in log order.
class MultiPaxosReplica : public sim::Process {
 public:
  explicit MultiPaxosReplica(MultiPaxosOptions options);

  // --- Client-facing messages (public so clients can construct them) ---
  struct RequestMsg : sim::Message {
    explicit RequestMsg(smr::Command c) : cmd(std::move(c)) {}
    const char* TypeName() const override { return "request"; }
    int ByteSize() const override { return 8 + cmd.ByteSize(); }
    smr::Command cmd;
  };
  struct ReplyMsg : sim::Message {
    ReplyMsg(uint64_t s, std::string r, sim::NodeId l)
        : client_seq(s), result(std::move(r)), leader_hint(l) {}
    const char* TypeName() const override { return "reply"; }
    int ByteSize() const override {
      return 16 + static_cast<int>(result.size());
    }
    uint64_t client_seq;
    std::string result;
    sim::NodeId leader_hint;
  };

  /// True if this replica currently believes it is the leader.
  bool IsLeader() const { return leader_active_; }

  /// Who this replica believes leads (pid of the highest promised ballot).
  sim::NodeId LeaderHint() const { return ballot_num_.pid; }

  const smr::ReplicatedLog& log() const { return log_; }
  const smr::KvStore& kv() const { return kv_; }
  const std::vector<std::string>& violations() const { return violations_; }
  int phase1_rounds() const { return phase1_rounds_; }
  /// Commands this replica executed, in order, batch entries flattened (a
  /// replica that bootstrapped from a snapshot only knows its suffix).
  const std::vector<smr::Command>& CommittedCommands() const {
    return executed_commands_;
  }
  /// In-flight duplicate-suppression entries (bounded: erased on apply).
  size_t assigned_entries() const { return assigned_.size(); }
  /// Commands queued awaiting a batch cut (cleared on deposition).
  size_t pending_ops() const { return pending_.size(); }
  /// Multi-command slots cut by this replica while leader.
  int batches_cut() const { return batches_cut_; }
  int checkpoints_taken() const { return checkpoints_taken_; }
  int snapshots_installed() const { return snapshots_installed_; }

  void OnStart() override;
  void OnMessage(sim::NodeId from, const sim::Message& msg) override;
  void OnRestart() override;

 private:
  struct PrepareMsg;
  struct PromiseMsg;
  struct AcceptMsg;
  struct AcceptedMsg;
  struct CommitMsg;
  struct CatchupRequestMsg;
  struct CatchupReplyMsg;
  struct SnapshotMsg;

  struct SlotState {
    Ballot accept_num;
    smr::Command value;
    bool has_value = false;
    bool chosen = false;
    std::set<sim::NodeId> accepts;  ///< Leader-side accepted counters.
  };

  void StartPhase1();
  void OnLeadershipAcquired();
  /// Leadership lost to a higher ballot: drop queued/in-flight proposer
  /// state and stop leader timers (clients re-transmit elsewhere).
  void Deposed();
  void ProposeNext();
  void AcceptSlot(uint64_t index, const smr::Command& cmd);
  void Chosen(uint64_t index, const smr::Command& cmd);
  void ApplyAndReply();
  /// Truncates the applied log prefix once checkpoint_interval is hit.
  void MaybeCheckpoint();
  void ResetLeaderTimer();
  void SendHeartbeat();
  std::vector<sim::NodeId> Everyone() const;
  SlotState& Slot(uint64_t index);

  MultiPaxosOptions options_;
  int q1_, q2_;

  // Acceptor state.
  Ballot ballot_num_;  ///< Promised leadership ballot.
  std::map<uint64_t, SlotState> slots_;

  // Leader state.
  bool leader_active_ = false;
  bool phase1_pending_ = false;
  std::set<sim::NodeId> promisers_;
  /// Highest-ballot accepted value per index, merged from promises.
  std::map<uint64_t, std::pair<Ballot, smr::Command>> recovered_;
  Ballot my_ballot_;
  uint64_t next_index_ = 0;
  std::deque<smr::Command> pending_;
  /// (client, client_seq) -> slot index for commands proposed but not yet
  /// applied (a retry just re-registers its reply address). Erased on
  /// apply — the dedup session covers the command from then on — so the
  /// map is bounded by the in-flight pipeline.
  std::map<std::pair<int32_t, uint64_t>, uint64_t> assigned_;
  /// Commands sitting in pending_ awaiting a batch cut.
  std::set<std::pair<int32_t, uint64_t>> queued_;
  /// (client, client_seq) -> client node awaiting a reply.
  std::map<std::pair<int32_t, uint64_t>, sim::NodeId> awaiting_client_;
  bool slot_in_flight_ = false;  ///< Used when re-preparing per command.

  // Learner / execution state.
  smr::ReplicatedLog log_;
  smr::KvStore kv_;
  smr::DedupingExecutor dedup_;
  std::vector<smr::Command> executed_commands_;

  uint64_t leader_timer_ = 0;
  uint64_t heartbeat_timer_ = 0;
  uint64_t batch_timer_ = 0;
  int phase1_rounds_ = 0;
  int batches_cut_ = 0;
  int checkpoints_taken_ = 0;
  int snapshots_installed_ = 0;
  std::vector<std::string> violations_;
};

/// A closed-loop client: sends the next command after the previous reply,
/// retrying (and following leader hints) on timeout.
class MultiPaxosClient : public sim::Process {
 public:
  /// Issues `ops` commands of the form "INC key". n = cluster size
  /// (replicas at process ids 0..n-1).
  MultiPaxosClient(int n, int ops, std::string key = "x",
                   sim::Duration retry = 200 * sim::kMillisecond);

  /// Same, against an explicit replication group.
  MultiPaxosClient(std::vector<sim::NodeId> members, int ops,
                   std::string key = "x",
                   sim::Duration retry = 200 * sim::kMillisecond);

  int completed() const { return completed_; }
  bool done() const { return completed_ >= ops_; }
  const std::vector<std::string>& results() const { return results_; }

  void OnStart() override;
  void OnMessage(sim::NodeId from, const sim::Message& msg) override;

 private:
  void SendCurrent();

  std::vector<sim::NodeId> members_;
  int ops_;
  std::string key_;
  sim::Duration retry_;
  int completed_ = 0;
  uint64_t seq_ = 0;
  size_t target_idx_ = 0;
  uint64_t retry_timer_ = 0;
  std::vector<std::string> results_;
};

}  // namespace consensus40::paxos

#endif  // CONSENSUS40_PAXOS_MULTI_PAXOS_H_
