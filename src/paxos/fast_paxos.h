#ifndef CONSENSUS40_PAXOS_FAST_PAXOS_H_
#define CONSENSUS40_PAXOS_FAST_PAXOS_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "sim/simulation.h"

namespace consensus40::paxos {

/// Configuration for a Fast Paxos ensemble (single decree).
struct FastPaxosOptions {
  /// Number of acceptors; must be 3f+1 for f tolerated crash faults.
  /// Acceptors are processes 0..n-1; process 0 is also the coordinator.
  int n = 4;

  /// Time the coordinator waits for further Accepted messages before
  /// declaring a collision that cannot reach a fast quorum.
  sim::Duration collision_timeout = 50 * sim::kMillisecond;
};

/// Fast Paxos acceptor (process 0 doubles as coordinator/leader):
///
///  - Coordinator opens the round with an "Any" message, delegating value
///    choice to the clients.
///  - Clients send Accept! directly to all acceptors: a fast round needs
///    only 2 message delays (client->acceptor->learner) instead of 3.
///  - If concurrent clients collide and no value reaches the fast quorum,
///    the coordinator recovers in a classic round: it picks the value with
///    a majority among the collected responses (if any) and runs a normal
///    accept phase.
///
/// With n = 3f+1, both the fast and the classic quorum are 2f+1: any two
/// fast quorums and any classic quorum share a node, which is what makes
/// coordinated recovery safe.
class FastPaxosAcceptor : public sim::Process {
 public:
  explicit FastPaxosAcceptor(FastPaxosOptions options);

  /// Message a client uses to propose its value directly to acceptors.
  struct ClientAcceptMsg : sim::Message {
    explicit ClientAcceptMsg(std::string v) : value(std::move(v)) {}
    const char* TypeName() const override { return "accept!"; }
    int ByteSize() const override {
      return 16 + static_cast<int>(value.size());
    }
    std::string value;
  };

  /// Broadcast when the value is chosen; also the client's completion
  /// signal.
  struct CommitMsg : sim::Message {
    explicit CommitMsg(std::string v) : value(std::move(v)) {}
    const char* TypeName() const override { return "commit"; }
    int ByteSize() const override {
      return 16 + static_cast<int>(value.size());
    }
    std::string value;
  };

  bool IsCoordinator() const { return id() == 0; }
  const std::optional<std::string>& chosen() const { return chosen_; }
  /// Simulation time at which the coordinator learned the chosen value.
  sim::Time chosen_at() const { return chosen_at_; }
  /// Number of classic (recovery) rounds the coordinator ran.
  int classic_rounds() const { return classic_rounds_; }

  void OnStart() override;
  void OnMessage(sim::NodeId from, const sim::Message& msg) override;

 private:
  struct AnyMsg;
  struct AcceptedMsg;
  struct ClassicAcceptMsg;

  void EvaluateFastRound();
  void StartClassicRound();
  void Choose(const std::string& value);
  std::vector<sim::NodeId> Acceptors() const;

  FastPaxosOptions options_;
  int fast_quorum_;
  int classic_quorum_;

  // Acceptor state.
  int rnd_ = 0;           ///< Highest round joined.
  int vrnd_ = -1;         ///< Round of last accepted value.
  std::string vval_;      ///< Last accepted value.
  bool any_active_ = false;  ///< An Any message opened the current round.

  // Coordinator state.
  int current_round_ = 0;
  bool round_is_fast_ = true;
  /// acceptor -> value accepted in current round.
  std::map<sim::NodeId, std::string> responses_;
  std::set<sim::NodeId> known_clients_;
  uint64_t collision_timer_ = 0;
  int classic_rounds_ = 0;

  std::optional<std::string> chosen_;
  sim::Time chosen_at_ = -1;
};

/// A Fast Paxos client: proposes one value straight to every acceptor at a
/// configurable time; records when it saw the commit.
class FastPaxosClient : public sim::Process {
 public:
  FastPaxosClient(int n, std::string value, sim::Duration send_at);

  bool done() const { return done_at_ >= 0; }
  sim::Time done_at() const { return done_at_; }

  void OnStart() override;
  void OnMessage(sim::NodeId from, const sim::Message& msg) override;

 private:
  int n_;
  std::string value_;
  sim::Duration send_at_;
  sim::Time done_at_ = -1;
};

}  // namespace consensus40::paxos

#endif  // CONSENSUS40_PAXOS_FAST_PAXOS_H_
