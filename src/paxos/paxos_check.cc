/// Checker adapters for single-decree Paxos: the in-bounds majority-quorum
/// configuration, and the out-of-bounds Flexible Paxos configuration with
/// non-intersecting quorums (q1 + q2 <= n) whose agreement violation the
/// checker must be able to find.

#include <memory>
#include <string>

#include "check/adapters.h"
#include "paxos/paxos.h"

namespace consensus40::check {
namespace {

/// n=5 cluster, two rival proposers. The probe models clients re-submitting
/// after a proposer crash: without it a schedule that kills both proposers
/// before phase 2 completes would stall forever (proposer state is
/// volatile by design) and read as a liveness failure.
class PaxosCheckAdapter : public ProtocolAdapter {
 public:
  PaxosCheckAdapter(int n, int q1, int q2, bool out_of_bounds)
      : n_(n), q1_(q1), q2_(q2), out_of_bounds_(out_of_bounds) {}

  const char* name() const override {
    return out_of_bounds_ ? "paxos-q1+q2<=n" : "paxos";
  }

  FaultBounds bounds() const override {
    FaultBounds b;
    b.nodes = n_;
    if (out_of_bounds_) {
      // No crashes: the point is that partitions alone break
      // non-intersecting quorums.
      b.max_crashed = 0;
      b.partitionable = true;
      b.restartable = false;
    } else {
      b.max_crashed = (n_ - 1) / 2;
      b.partitionable = true;
      b.restartable = true;  // Acceptor state survives OnRestart.
    }
    return b;
  }

  void Build(sim::Simulation* sim) override {
    sim_ = sim;
    paxos::PaxosOptions opts;
    opts.n = n_;
    opts.q1 = q1_;
    opts.q2 = q2_;
    for (int i = 0; i < n_; ++i) {
      nodes_.push_back(sim->Spawn<paxos::PaxosNode>(opts));
    }
    // In bounds the rivals race from t=0. Out of bounds the interesting
    // interleaving needs both proposals to land while a partition is up,
    // and generated partitions live in the middle of the horizon — two
    // proposers racing at t=1ms converge long before any cut appears.
    const sim::Time first_at =
        out_of_bounds_ ? bounds().horizon * 2 / 5 : 1 * sim::kMillisecond;
    const sim::Time second_at = first_at + 1 * sim::kMillisecond;
    const sim::NodeId second = out_of_bounds_ ? n_ - 1 : 1;
    sim->ScheduleAt(first_at, [this] {
      if (!sim_->IsCrashed(0)) nodes_[0]->Propose("red");
    });
    sim->ScheduleAt(second_at, [this, second] {
      if (!sim_->IsCrashed(second)) nodes_[second]->Propose("blue");
    });
  }

  bool Done() const override {
    for (const paxos::PaxosNode* node : nodes_) {
      if (!sim_->IsCrashed(node->id()) && !node->decided().has_value()) {
        return false;
      }
    }
    return true;
  }

  bool ExpectTermination() const override { return !out_of_bounds_; }

  void OnProbe(sim::Simulation* sim) override {
    // Every ~500ms of undecided time, the lowest live node re-proposes.
    if (++probes_ % 10 != 0) return;
    for (const paxos::PaxosNode* node : nodes_) {
      if (node->decided().has_value()) return;
    }
    for (paxos::PaxosNode* node : nodes_) {
      if (!sim->IsCrashed(node->id())) {
        node->Propose("red");
        return;
      }
    }
  }

  Observation Observe() const override {
    Observation o;
    o.allowed = {"red", "blue"};
    for (const paxos::PaxosNode* node : nodes_) {
      if (node->decided().has_value()) {
        o.decided["0"][node->id()] = *node->decided();
      }
      for (const std::string& v : node->violations()) {
        o.self_reported.push_back("paxos node " + std::to_string(node->id()) +
                                  ": " + v);
      }
    }
    return o;
  }

 private:
  int n_;
  int q1_;
  int q2_;
  bool out_of_bounds_;
  sim::Simulation* sim_ = nullptr;
  std::vector<paxos::PaxosNode*> nodes_;
  int probes_ = 0;
};

}  // namespace

AdapterFactory MakePaxosAdapter() {
  return [](uint64_t) {
    return std::make_unique<PaxosCheckAdapter>(5, -1, -1, false);
  };
}

AdapterFactory MakePaxosOutOfBoundsAdapter() {
  // n=4 with q1=q2=2: phase-1 and phase-2 quorums need not intersect, so
  // two proposers on either side of a partition can both decide.
  return [](uint64_t) {
    return std::make_unique<PaxosCheckAdapter>(4, 2, 2, true);
  };
}

}  // namespace consensus40::check
