/// \file
/// Multi-Paxos's ReplicaGroup facade (see consensus/replica_group.h).
/// kRead commands are logged like any other GET, which is linearizable
/// but pays a full consensus round — the contrast with Raft's
/// read-index path is itself a measurement the bench surfaces.

#include <string>

#include "consensus/replica_group.h"
#include "paxos/multi_paxos.h"

namespace consensus40::paxos {
namespace {

/// Must match the sentinel in multi_paxos.cc (protocol wire constant).
const char kRedirect[] = "\x01REDIRECT";

class MultiPaxosGroup : public consensus::ReplicaGroup {
 public:
  const char* protocol() const override { return "multi_paxos"; }

  void Create(sim::Simulation* sim, int replicas) override {
    sim::NodeId base = sim->num_processes();
    for (int i = 0; i < replicas; ++i) {
      members_.push_back(base + i);
    }
    MultiPaxosOptions options;
    options.members = members_;
    options.batch_size = tuning_.batch_size;
    options.batch_delay = tuning_.batch_delay;
    options.checkpoint_interval = tuning_.snapshot_threshold;
    for (int i = 0; i < replicas; ++i) {
      replicas_.push_back(sim->Spawn<MultiPaxosReplica>(options));
    }
  }

  sim::MessagePtr MakeRequest(const smr::Command& cmd) const override {
    return std::make_shared<MultiPaxosReplica::RequestMsg>(cmd);
  }

  std::optional<Reply> ParseReply(const sim::Message& msg) const override {
    const auto* m = dynamic_cast<const MultiPaxosReplica::ReplyMsg*>(&msg);
    if (m == nullptr) return std::nullopt;
    Reply reply;
    reply.client_seq = m->client_seq;
    reply.leader_hint = m->leader_hint;
    if (m->result == kRedirect) {
      reply.redirected = true;
    } else {
      reply.result = m->result;
    }
    return reply;
  }

  sim::NodeId LeaderHint() const override {
    for (const MultiPaxosReplica* r : replicas_) {
      if (r->IsLeader()) return r->id();
    }
    return sim::kInvalidNode;
  }

  std::vector<smr::Command> CommittedPrefix(int replica) const override {
    // Executed commands, not the raw log: batch slots arrive flattened and
    // a checkpoint-truncated log still reports what it applied.
    return replicas_[static_cast<size_t>(replica)]->CommittedCommands();
  }

  std::vector<std::string> Violations() const override {
    std::vector<std::string> all;
    for (const MultiPaxosReplica* r : replicas_) {
      for (const std::string& v : r->violations()) {
        all.push_back("replica " + std::to_string(r->id()) + ": " + v);
      }
      for (const std::string& v : r->log().violations()) {
        all.push_back("replica " + std::to_string(r->id()) + " log: " + v);
      }
    }
    return all;
  }

 private:
  std::vector<MultiPaxosReplica*> replicas_;
};

}  // namespace
}  // namespace consensus40::paxos

namespace consensus40::consensus {

std::unique_ptr<ReplicaGroup> NewMultiPaxosGroup() {
  return std::make_unique<paxos::MultiPaxosGroup>();
}

}  // namespace consensus40::consensus
