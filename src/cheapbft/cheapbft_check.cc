/// Checker adapter for CheapBFT: 2f+1=3 replicas, f+1 active. A crash
/// among the active set triggers PANIC -> CheapSwitch -> MinBFT fallback,
/// which is exactly the transition the sweep should hammer.

#include <memory>
#include <string>

#include "check/adapters.h"
#include "cheapbft/cheapbft.h"
#include "crypto/signatures.h"
#include "sim/byzantine.h"

namespace consensus40::check {
namespace {

class CheapBftCheckAdapter : public ProtocolAdapter {
 public:
  explicit CheapBftCheckAdapter(uint64_t seed, int ops = 4)
      : registry_(seed, kN + 4), usig_(&registry_), ops_(ops) {}

  const char* name() const override { return "cheapbft"; }

  FaultBounds bounds() const override {
    FaultBounds b;
    // The CheapSwitch fallback pins the primary at replica 0 (no view
    // change: Primary() is constant in both modes), so a primary crash is
    // unrecoverable BY CONSTRUCTION and outside the implemented model.
    // Crashing replica 1 (active) or 2 (passive) stays in-model and still
    // exercises the PANIC -> CheapSwitch -> MinBFT-fallback transition.
    b.first_node = 1;
    b.nodes = kN - 1;
    b.max_crashed = kF;
    return b;
  }

  void Build(sim::Simulation* sim) override {
    cheapbft::CheapBftOptions opts;
    opts.f = kF;
    opts.registry = &registry_;
    opts.usig = &usig_;
    for (int i = 0; i < kN; ++i) {
      replicas_.push_back(sim->Spawn<cheapbft::CheapBftReplica>(opts));
    }
    client_ = sim->Spawn<cheapbft::CheapBftClient>(kF, &registry_, ops_);
  }

  bool Done() const override { return client_->done(); }

  Observation Observe() const override {
    Observation o;
    for (const cheapbft::CheapBftReplica* r : replicas_) {
      std::vector<std::string> log;
      for (const smr::Command& cmd : r->executed_commands()) {
        log.push_back(cmd.ToString());
      }
      o.logs.push_back(std::move(log));
    }
    return o;
  }

 protected:
  static constexpr int kF = 1;
  static constexpr int kN = 2 * kF + 1;
  crypto::KeyRegistry registry_;
  crypto::Usig usig_;
  int ops_;
  std::vector<cheapbft::CheapBftReplica*> replicas_;
  cheapbft::CheapBftClient* client_ = nullptr;
};

/// In-bounds Byzantine CheapBFT: any one replica — active or passive —
/// may withhold, corrupt (generic degradation: dropped), or replay
/// outbound traffic. A silent active replica is the protocol's signature
/// fault: clients PANIC, the cluster runs CheapSwitch, and the MinBFT
/// fallback must pick up exactly where the optimistic f+1 quorum left
/// off. USIG counters keep replayed captures inert, as in MinBFT.
/// The pinned primary stays in the Byzantine pool even though it is
/// shielded from crashes: a Byzantine window ends, so the primary comes
/// back and liveness is recoverable — a crash is forever.
class CheapBftByzantineAdapter : public CheapBftCheckAdapter {
 public:
  explicit CheapBftByzantineAdapter(uint64_t seed)
      : CheapBftCheckAdapter(seed, /*ops=*/12) {}

  const char* name() const override { return "cheapbft_byz"; }

  FaultBounds bounds() const override {
    FaultBounds b = CheapBftCheckAdapter::bounds();
    b.max_byzantine = 1;
    b.byz_first_node = 0;
    b.byz_nodes = kN;
    b.byz_withhold = true;
    b.byz_mutate = true;
    b.byz_replay = true;
    return b;
  }

  void Build(sim::Simulation* sim) override {
    CheapBftCheckAdapter::Build(sim);
    byz_.Attach(sim);
  }

 private:
  sim::ByzantineInterposer byz_;
};

}  // namespace

AdapterFactory MakeCheapBftAdapter() {
  return [](uint64_t seed) {
    return std::make_unique<CheapBftCheckAdapter>(seed);
  };
}

AdapterFactory MakeCheapBftByzantineAdapter() {
  return [](uint64_t seed) {
    return std::make_unique<CheapBftByzantineAdapter>(seed);
  };
}

}  // namespace consensus40::check
