/// Checker adapter for CheapBFT: 2f+1=3 replicas, f+1 active. A crash
/// among the active set triggers PANIC -> CheapSwitch -> MinBFT fallback,
/// which is exactly the transition the sweep should hammer.

#include <memory>
#include <string>

#include "check/adapters.h"
#include "crypto/signatures.h"
#include "cheapbft/cheapbft.h"

namespace consensus40::check {
namespace {

class CheapBftCheckAdapter : public ProtocolAdapter {
 public:
  explicit CheapBftCheckAdapter(uint64_t seed)
      : registry_(seed, kN + 4), usig_(&registry_) {}

  const char* name() const override { return "cheapbft"; }

  FaultBounds bounds() const override {
    FaultBounds b;
    b.nodes = kN;
    b.max_crashed = kF;
    return b;
  }

  void Build(sim::Simulation* sim) override {
    cheapbft::CheapBftOptions opts;
    opts.f = kF;
    opts.registry = &registry_;
    opts.usig = &usig_;
    for (int i = 0; i < kN; ++i) {
      replicas_.push_back(sim->Spawn<cheapbft::CheapBftReplica>(opts));
    }
    client_ = sim->Spawn<cheapbft::CheapBftClient>(kF, &registry_, kOps);
  }

  bool Done() const override { return client_->done(); }

  Observation Observe() const override {
    Observation o;
    for (const cheapbft::CheapBftReplica* r : replicas_) {
      std::vector<std::string> log;
      for (const smr::Command& cmd : r->executed_commands()) {
        log.push_back(cmd.ToString());
      }
      o.logs.push_back(std::move(log));
    }
    return o;
  }

 private:
  static constexpr int kF = 1;
  static constexpr int kN = 2 * kF + 1;
  static constexpr int kOps = 4;
  crypto::KeyRegistry registry_;
  crypto::Usig usig_;
  std::vector<cheapbft::CheapBftReplica*> replicas_;
  cheapbft::CheapBftClient* client_ = nullptr;
};

}  // namespace

AdapterFactory MakeCheapBftAdapter() {
  return [](uint64_t seed) {
    return std::make_unique<CheapBftCheckAdapter>(seed);
  };
}

}  // namespace consensus40::check
