#include "cheapbft/cheapbft.h"

#include <algorithm>
#include <cassert>

#include "pbft/pbft.h"

namespace consensus40::cheapbft {

namespace {

bool ValidRequest(const smr::Command& cmd, const crypto::Signature& sig,
                  const crypto::KeyRegistry& registry) {
  return pbft::PbftReplica::ValidRequest(cmd, sig, registry);
}

}  // namespace

CheapBftReplica::CheapBftReplica(CheapBftOptions options) : options_(options) {
  assert(options_.f >= 1);
  assert(options_.registry != nullptr && options_.usig != nullptr);
}

std::vector<sim::NodeId> CheapBftReplica::ActiveSet() const {
  std::vector<sim::NodeId> active;
  if (mode_ == CheapMode::kCheapTiny) {
    for (int i = 0; i <= options_.f; ++i) active.push_back(i);
  } else {
    for (int i = 0; i < n(); ++i) active.push_back(i);
  }
  return active;
}

std::vector<sim::NodeId> CheapBftReplica::PassiveSet() const {
  std::vector<sim::NodeId> passive;
  if (mode_ == CheapMode::kCheapTiny) {
    for (int i = options_.f + 1; i < n(); ++i) passive.push_back(i);
  }
  return passive;
}

std::vector<sim::NodeId> CheapBftReplica::Everyone() const {
  std::vector<sim::NodeId> all;
  for (int i = 0; i < n(); ++i) all.push_back(i);
  return all;
}

crypto::Digest CheapBftReplica::BindingDigest(const smr::Command& cmd) const {
  crypto::Sha256 h;
  h.Update(&mode_epoch_, sizeof(mode_epoch_));
  crypto::Digest d = cmd.Hash();
  h.Update(d.data(), d.size());
  return h.Finish();
}

crypto::Digest CheapBftReplica::HistoryDigest(
    const std::vector<smr::Command>& cmds) const {
  crypto::Sha256 h;
  for (const smr::Command& cmd : cmds) {
    crypto::Digest d = cmd.Hash();
    h.Update(d.data(), d.size());
  }
  return h.Finish();
}

void CheapBftReplica::Execute(Slot& slot) {
  if (slot.executed) return;
  slot.executed = true;
  auto key = std::make_pair(slot.cmd.client, slot.cmd.client_seq);
  std::string result;
  if (results_.count(key) > 0) {
    result = results_[key];
  } else {
    result = dedup_.Apply(&kv_, slot.cmd);
    results_[key] = result;
    executed_commands_.push_back(slot.cmd);
  }
  auto it = request_timers_.find(key);
  if (it != request_timers_.end()) {
    CancelTimer(it->second);
    request_timers_.erase(it);
  }
  auto reply = std::make_shared<ReplyMsg>();
  reply->client_seq = slot.cmd.client_seq;
  reply->replica = id();
  reply->result = result;
  Send(slot.cmd.client, reply);

  // CheapTiny: propagate state to the passive replicas.
  if (mode_ == CheapMode::kCheapTiny) {
    auto update = std::make_shared<UpdateMsg>();
    update->seq = executed_commands_.size();
    update->cmd = slot.cmd;
    Multicast(PassiveSet(), update);
  }
}

void CheapBftReplica::MaybeExecuteTiny() {
  // Slots below the expected cursor are re-deliveries of commands this
  // replica already adopted through the switch history: answer from cache.
  for (auto& [seq, slot] : slots_) {
    if (seq < expected_counter_ && slot.prepared && !slot.executed &&
        static_cast<int>(slot.commits.size()) >= RequiredCommits()) {
      Execute(slot);
    }
  }
  while (true) {
    auto it = slots_.find(expected_counter_);
    if (it == slots_.end() || !it->second.prepared) break;
    if (static_cast<int>(it->second.commits.size()) < RequiredCommits()) break;
    Execute(it->second);
    ++expected_counter_;
  }
}

void CheapBftReplica::Panic() {
  if (mode_ != CheapMode::kCheapTiny || panicked_) return;
  panicked_ = true;
  mode_ = CheapMode::kSwitching;
  Multicast(Everyone(), std::make_shared<PanicMsg>());

  // Every (formerly) active replica publishes its history; in CheapTiny the
  // all-active commit rule keeps the histories identical prefixes.
  if (id() <= options_.f) {
    auto history = std::make_shared<HistoryMsg>();
    history->cmds = executed_commands_;
    history->ui = options_.usig->CreateUi(id(), HistoryDigest(history->cmds));
    Multicast(Everyone(), history);
  }
  proposed_history_ = executed_commands_;

  // Close the switch window after a beat: adopt the longest valid history
  // and hand over to MinBFT mode.
  SetTimer(100 * sim::kMillisecond, [this] { FinishSwitch(); });
}

void CheapBftReplica::AdoptHistory(const std::vector<smr::Command>& cmds) {
  // Valid histories extend our executed prefix; apply the missing suffix.
  for (size_t i = executed_commands_.size(); i < cmds.size(); ++i) {
    const smr::Command& cmd = cmds[i];
    auto key = std::make_pair(cmd.client, cmd.client_seq);
    if (results_.count(key) == 0) {
      results_[key] = dedup_.Apply(&kv_, cmd);
      executed_commands_.push_back(cmd);
    }
  }
}

void CheapBftReplica::FinishSwitch() {
  if (mode_ != CheapMode::kSwitching) return;
  AdoptHistory(proposed_history_);
  auto sw = std::make_shared<SwitchMsg>();
  sw->history_digest = HistoryDigest(executed_commands_);
  sw->ui = options_.usig->CreateUi(id(), sw->history_digest);
  Multicast(Everyone(), sw);

  mode_ = CheapMode::kMinBft;
  mode_epoch_ = 1;
  slots_.clear();
  expected_counter_ = executed_commands_.size() + 1;
  next_fallback_seq_ = executed_commands_.size() + 1;

  // Replay requests that arrived during the switch.
  if (id() == Primary()) {
    auto deferred = std::move(deferred_requests_);
    deferred_requests_.clear();
    for (const auto& [cmd, sig] : deferred) {
      OnMessage(id(), RequestMsg(cmd, sig));
    }
  }
}

void CheapBftReplica::OnMessage(sim::NodeId from, const sim::Message& msg) {
  if (const auto* m = dynamic_cast<const RequestMsg*>(&msg)) {
    if (!ValidRequest(m->cmd, m->client_sig, *options_.registry)) return;
    auto key = std::make_pair(m->cmd.client, m->cmd.client_seq);
    auto done = results_.find(key);
    if (done != results_.end()) {
      auto reply = std::make_shared<ReplyMsg>();
      reply->client_seq = m->cmd.client_seq;
      reply->replica = id();
      reply->result = done->second;
      Send(m->cmd.client, reply);
      return;
    }
    if (mode_ == CheapMode::kSwitching) {
      deferred_requests_.push_back({m->cmd, m->client_sig});
      return;
    }
    if (id() == Primary()) {
      for (const auto& [seq, slot] : slots_) {
        if (slot.cmd.client == m->cmd.client &&
            slot.cmd.client_seq == m->cmd.client_seq) {
          // In flight: retransmit the prepare (a recipient may have dropped
          // it while mid-switch).
          if (slot.prepare_msg != nullptr) {
            Multicast(ActiveSet(), slot.prepare_msg);
          }
          return;
        }
      }
      auto prepare = std::make_shared<PrepareMsg>();
      prepare->mode_epoch = mode_epoch_;
      prepare->cmd = m->cmd;
      prepare->client_sig = m->client_sig;
      prepare->ui = options_.usig->CreateUi(id(), BindingDigest(m->cmd));
      prepare->seq = mode_ == CheapMode::kCheapTiny ? prepare->ui.counter
                                                    : next_fallback_seq_++;
      slots_[prepare->seq].prepare_msg = prepare;
      Multicast(ActiveSet(), prepare);
    } else {
      Send(Primary(), std::make_shared<RequestMsg>(m->cmd, m->client_sig));
      if (request_timers_.count(key) == 0) {
        request_timers_[key] = SetTimer(options_.request_timeout,
                                        [this, key] {
                                          request_timers_.erase(key);
                                          Panic();
                                        });
      }
    }
    return;
  }

  if (const auto* m = dynamic_cast<const PrepareMsg*>(&msg)) {
    if (m->mode_epoch != mode_epoch_ || mode_ == CheapMode::kSwitching) return;
    if (from != Primary()) return;
    if (!ValidRequest(m->cmd, m->client_sig, *options_.registry)) return;
    if (!options_.usig->VerifyUi(m->ui, BindingDigest(m->cmd))) return;
    if (mode_ == CheapMode::kCheapTiny && m->seq != m->ui.counter) return;
    Slot& slot = slots_[m->seq];
    if (slot.prepared) return;
    slot.prepared = true;
    slot.cmd = m->cmd;
    slot.client_sig = m->client_sig;
    slot.primary_ui = m->ui;
    slot.commits.insert(from);
    if (!slot.sent_commit && id() != from) {
      slot.sent_commit = true;
      auto commit = std::make_shared<CommitMsg>();
      commit->mode_epoch = mode_epoch_;
      commit->seq = m->seq;
      commit->cmd = m->cmd;
      commit->client_sig = m->client_sig;
      commit->primary_ui = m->ui;
      commit->replica_ui =
          options_.usig->CreateUi(id(), BindingDigest(m->cmd));
      Multicast(ActiveSet(), commit);
      slot.commits.insert(id());
    }
    // Arm panic watchdog: if the slot never commits, someone is faulty.
    if (mode_ == CheapMode::kCheapTiny) {
      auto key = std::make_pair(m->cmd.client, m->cmd.client_seq);
      if (request_timers_.count(key) == 0) {
        request_timers_[key] = SetTimer(options_.request_timeout,
                                        [this, key] {
                                          request_timers_.erase(key);
                                          Panic();
                                        });
      }
    }
    MaybeExecuteTiny();
    return;
  }

  if (const auto* m = dynamic_cast<const CommitMsg*>(&msg)) {
    if (m->mode_epoch != mode_epoch_ || mode_ == CheapMode::kSwitching) return;
    if (!options_.usig->VerifyUi(m->primary_ui, BindingDigest(m->cmd)) ||
        !options_.usig->VerifyUi(m->replica_ui, BindingDigest(m->cmd))) {
      return;
    }
    if (m->replica_ui.signer != from) return;
    Slot& slot = slots_[m->seq];
    slot.commits.insert(from);
    if (!slot.prepared) {
      slot.prepared = true;
      slot.cmd = m->cmd;
      slot.client_sig = m->client_sig;
      slot.primary_ui = m->primary_ui;
      slot.commits.insert(m->primary_ui.signer);
      if (!slot.sent_commit && id() != Primary()) {
        slot.sent_commit = true;
        auto commit = std::make_shared<CommitMsg>();
        commit->mode_epoch = mode_epoch_;
        commit->seq = m->seq;
        commit->cmd = m->cmd;
        commit->client_sig = m->client_sig;
        commit->primary_ui = m->primary_ui;
        commit->replica_ui =
            options_.usig->CreateUi(id(), BindingDigest(m->cmd));
        Multicast(ActiveSet(), commit);
        slot.commits.insert(id());
      }
    }
    MaybeExecuteTiny();
    return;
  }

  if (dynamic_cast<const UpdateMsg*>(&msg) != nullptr) {
    const auto& m = static_cast<const UpdateMsg&>(msg);
    if (mode_ != CheapMode::kCheapTiny || id() <= options_.f) return;
    update_votes_[m.seq][m.cmd.Hash()].insert(from);
    update_cmds_[m.seq] = m.cmd;
    // Apply once all f+1 active replicas confirm, in order.
    while (true) {
      auto votes = update_votes_.find(next_update_to_apply_);
      if (votes == update_votes_.end()) break;
      const smr::Command& cmd = update_cmds_[next_update_to_apply_];
      auto per_digest = votes->second.find(cmd.Hash());
      if (per_digest == votes->second.end() ||
          static_cast<int>(per_digest->second.size()) < options_.f + 1) {
        break;
      }
      auto key = std::make_pair(cmd.client, cmd.client_seq);
      if (results_.count(key) == 0) {
        results_[key] = dedup_.Apply(&kv_, cmd);
        executed_commands_.push_back(cmd);
      }
      ++next_update_to_apply_;
    }
    return;
  }

  if (dynamic_cast<const PanicMsg*>(&msg) != nullptr) {
    Panic();
    return;
  }

  if (const auto* m = dynamic_cast<const HistoryMsg*>(&msg)) {
    if (mode_ != CheapMode::kSwitching) return;
    if (!options_.usig->VerifyUi(m->ui, HistoryDigest(m->cmds))) return;
    // Longest valid extension of our prefix wins.
    if (m->cmds.size() > proposed_history_.size()) {
      bool extends = true;
      for (size_t i = 0;
           i < std::min(proposed_history_.size(), m->cmds.size()); ++i) {
        if (!(m->cmds[i] == proposed_history_[i])) {
          extends = false;
          break;
        }
      }
      if (extends) proposed_history_ = m->cmds;
    }
    return;
  }

  if (const auto* m = dynamic_cast<const SwitchMsg*>(&msg)) {
    if (!options_.usig->VerifyUi(m->ui, m->history_digest)) return;
    switch_votes_.insert(from);
    return;
  }
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

CheapBftClient::CheapBftClient(int f, const crypto::KeyRegistry* registry,
                               int ops, std::string key, sim::Duration retry)
    : f_(f),
      n_(2 * f + 1),
      registry_(registry),
      ops_(ops),
      key_(std::move(key)),
      retry_(retry) {}

void CheapBftClient::OnStart() {
  seq_ = 1;
  SendCurrent(false);
}

void CheapBftClient::SendCurrent(bool broadcast) {
  if (done()) return;
  smr::Command cmd{id(), seq_, "INC " + key_};
  crypto::Signature sig = registry_->Sign(id(), cmd.Hash());
  if (broadcast) {
    for (int i = 0; i < n_; ++i) {
      Send(i, std::make_shared<CheapBftReplica::RequestMsg>(cmd, sig));
    }
  } else {
    Send(0, std::make_shared<CheapBftReplica::RequestMsg>(cmd, sig));
  }
  CancelTimer(retry_timer_);
  retry_timer_ = SetTimer(retry_, [this] {
    ++timeouts_;
    // A timed-out client panics the cluster: CheapTiny cannot mask faults.
    for (int i = 0; i < n_; ++i) {
      Send(i, std::make_shared<CheapBftReplica::PanicMsg>());
    }
    SendCurrent(true);
  });
}

void CheapBftClient::OnMessage(sim::NodeId from, const sim::Message& msg) {
  const auto* m = dynamic_cast<const CheapBftReplica::ReplyMsg*>(&msg);
  if (m == nullptr || m->client_seq != seq_ || done()) return;
  reply_votes_[m->result].insert(from);
  if (static_cast<int>(reply_votes_[m->result].size()) >= f_ + 1) {
    results_.push_back(m->result);
    reply_votes_.clear();
    ++completed_;
    ++seq_;
    if (done()) {
      CancelTimer(retry_timer_);
    } else {
      SendCurrent(false);
    }
  }
}

}  // namespace consensus40::cheapbft
