#ifndef CONSENSUS40_CHEAPBFT_CHEAPBFT_H_
#define CONSENSUS40_CHEAPBFT_CHEAPBFT_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "crypto/sha256.h"
#include "crypto/signatures.h"
#include "sim/simulation.h"
#include "smr/command.h"
#include "smr/state_machine.h"

namespace consensus40::cheapbft {

/// Configuration shared by all replicas of a CheapBFT cluster.
struct CheapBftOptions {
  /// Tolerated Byzantine faults. Cluster size is 2f+1; only f+1 replicas
  /// are ACTIVE in the optimistic CheapTiny protocol, the other f are
  /// PASSIVE and only apply state updates.
  int f = 1;

  const crypto::KeyRegistry* registry = nullptr;
  crypto::Usig* usig = nullptr;

  /// Patience before an active replica that saw a request panics.
  sim::Duration request_timeout = 300 * sim::kMillisecond;
};

/// Protocol the cluster is currently running.
enum class CheapMode {
  kCheapTiny,   ///< f+1 active replicas, all must participate.
  kSwitching,   ///< CheapSwitch: agreeing on the abort history.
  kMinBft,      ///< Fallback: all 2f+1 replicas, quorums of f+1.
};

/// A CheapBFT replica (Kapitza et al. 2012): runs CheapTiny with f+1
/// active replicas in the fault-free case, and falls back to MinBFT on the
/// full 2f+1 after a PANIC-triggered CheapSwitch. Both sub-protocols rely
/// on the USIG to prevent equivocation.
class CheapBftReplica : public sim::Process {
 public:
  explicit CheapBftReplica(CheapBftOptions options);

  struct RequestMsg : sim::Message {
    RequestMsg(smr::Command c, crypto::Signature s)
        : cmd(std::move(c)), client_sig(s) {}
    const char* TypeName() const override { return "cheap-request"; }
    int ByteSize() const override { return 48 + cmd.ByteSize(); }
    smr::Command cmd;
    crypto::Signature client_sig;
  };
  struct ReplyMsg : sim::Message {
    const char* TypeName() const override { return "cheap-reply"; }
    int ByteSize() const override {
      return 24 + static_cast<int>(result.size());
    }
    uint64_t client_seq = 0;
    int32_t replica = -1;
    std::string result;
  };
  struct PrepareMsg : sim::Message {
    const char* TypeName() const override { return "cheap-prepare"; }
    int ByteSize() const override { return 104 + cmd.ByteSize(); }
    int mode_epoch = 0;
    uint64_t seq = 0;  ///< In CheapTiny this must equal ui.counter.
    smr::Command cmd;
    crypto::Signature client_sig;
    crypto::Usig::UI ui;
  };
  struct CommitMsg : sim::Message {
    const char* TypeName() const override { return "cheap-commit"; }
    int ByteSize() const override { return 152 + cmd.ByteSize(); }
    int mode_epoch = 0;
    uint64_t seq = 0;
    smr::Command cmd;
    crypto::Signature client_sig;
    crypto::Usig::UI primary_ui;
    crypto::Usig::UI replica_ui;
  };
  /// Active -> passive state propagation in CheapTiny.
  struct UpdateMsg : sim::Message {
    const char* TypeName() const override { return "cheap-update"; }
    int ByteSize() const override { return 48 + cmd.ByteSize(); }
    uint64_t seq = 0;
    smr::Command cmd;
  };
  struct PanicMsg : sim::Message {
    const char* TypeName() const override { return "cheap-panic"; }
    int ByteSize() const override { return 16; }
  };
  /// New leader's abort history.
  struct HistoryMsg : sim::Message {
    const char* TypeName() const override { return "cheap-history"; }
    int ByteSize() const override {
      return 32 + static_cast<int>(cmds.size()) * 48;
    }
    std::vector<smr::Command> cmds;  ///< Executed prefix to adopt.
    crypto::Usig::UI ui;
  };
  struct SwitchMsg : sim::Message {
    const char* TypeName() const override { return "cheap-switch"; }
    int ByteSize() const override { return 48; }
    crypto::Digest history_digest{};
    crypto::Usig::UI ui;
  };

  CheapMode mode() const { return mode_; }
  int n() const { return 2 * options_.f + 1; }
  bool IsActive() const {
    return mode_ != CheapMode::kCheapTiny || id() <= options_.f;
  }
  uint64_t executed() const {
    return static_cast<uint64_t>(executed_commands_.size());
  }
  const smr::KvStore& kv() const { return kv_; }
  const std::vector<smr::Command>& executed_commands() const {
    return executed_commands_;
  }

  void OnMessage(sim::NodeId from, const sim::Message& msg) override;

 private:
  struct Slot {
    bool prepared = false;
    smr::Command cmd;
    crypto::Signature client_sig;
    crypto::Usig::UI primary_ui;
    std::set<sim::NodeId> commits;
    bool sent_commit = false;
    bool executed = false;
    /// Primary-side copy for retransmission on client retries.
    std::shared_ptr<const PrepareMsg> prepare_msg;
  };

  /// Replica 0 stays primary across the switch. Rotating a faulty primary
  /// away is the MinBFT view change's job (see src/minbft); the CheapSwitch
  /// scenario in the paper is a fault among the non-primary active replicas.
  sim::NodeId Primary() const { return 0; }
  int RequiredCommits() const {
    // CheapTiny cannot mask any fault among the f+1 active replicas; the
    // MinBFT fallback needs the usual f+1 of 2f+1.
    return options_.f + 1;
  }
  std::vector<sim::NodeId> ActiveSet() const;
  std::vector<sim::NodeId> PassiveSet() const;
  std::vector<sim::NodeId> Everyone() const;

  crypto::Digest BindingDigest(const smr::Command& cmd) const;
  crypto::Digest HistoryDigest(const std::vector<smr::Command>& cmds) const;
  void Execute(Slot& slot);
  void MaybeExecuteTiny();
  void Panic();
  void AdoptHistory(const std::vector<smr::Command>& cmds);
  void FinishSwitch();

  CheapBftOptions options_;
  CheapMode mode_ = CheapMode::kCheapTiny;
  int mode_epoch_ = 0;  ///< 0 = CheapTiny, 1 = MinBFT fallback.
  uint64_t expected_counter_ = 1;
  uint64_t next_fallback_seq_ = 1;  ///< Primary's seq counter after switch.
  std::map<uint64_t, Slot> slots_;

  smr::KvStore kv_;
  smr::DedupingExecutor dedup_;
  std::vector<smr::Command> executed_commands_;
  std::map<std::pair<int32_t, uint64_t>, std::string> results_;
  std::map<std::pair<int32_t, uint64_t>, uint64_t> request_timers_;

  // Passive-side update votes: seq -> digest -> senders.
  std::map<uint64_t, std::map<crypto::Digest, std::set<sim::NodeId>>>
      update_votes_;
  std::map<uint64_t, smr::Command> update_cmds_;
  uint64_t next_update_to_apply_ = 1;

  // Switch state.
  bool panicked_ = false;
  std::vector<smr::Command> proposed_history_;
  bool history_received_ = false;
  std::set<sim::NodeId> switch_votes_;
  std::vector<std::pair<smr::Command, crypto::Signature>> deferred_requests_;
};

/// CheapBFT client: sends to the primary, panics the cluster on timeout,
/// accepts f+1 matching replies.
class CheapBftClient : public sim::Process {
 public:
  CheapBftClient(int f, const crypto::KeyRegistry* registry, int ops,
                 std::string key = "x",
                 sim::Duration retry = 400 * sim::kMillisecond);

  int completed() const { return completed_; }
  bool done() const { return completed_ >= ops_; }
  const std::vector<std::string>& results() const { return results_; }

  void OnStart() override;
  void OnMessage(sim::NodeId from, const sim::Message& msg) override;

 private:
  void SendCurrent(bool broadcast);

  int f_;
  int n_;
  const crypto::KeyRegistry* registry_;
  int ops_;
  std::string key_;
  sim::Duration retry_;
  int completed_ = 0;
  uint64_t seq_ = 0;
  uint64_t retry_timer_ = 0;
  int timeouts_ = 0;
  std::map<std::string, std::set<sim::NodeId>> reply_votes_;
  std::vector<std::string> results_;
};

}  // namespace consensus40::cheapbft

#endif  // CONSENSUS40_CHEAPBFT_CHEAPBFT_H_
