/// \file
/// The uniform replication-group API the shard layer is built on.
///
/// The paper's framing of modern systems (Spanner, DynamoDB) is a
/// *composition*: per-group consensus below, a commitment layer above.
/// For the layers above to stay protocol-agnostic, every SMR-capable
/// protocol in this library exposes itself through one facade —
/// `ReplicaGroup` — that covers exactly the four things a client of a
/// replicated group needs:
///
///   1. create a roster of replicas inside a simulation,
///   2. submit a command (build the protocol's request message),
///   3. read the committed prefix (for invariant checks / introspection),
///   4. a leader hint (where to send the next request).
///
/// Groups are obtained from a name-keyed registry ("raft",
/// "multi_paxos", ...), so code layered on top — `src/shard/`, the
/// generic checker adapter in `src/check/adapters.cc`,
/// `examples/mini_spanner.cc` — never names a protocol type.
///
/// `GroupClient` is the matching transport helper: a simulated process
/// that submits commands/reads to one group, follows leader hints and
/// redirects, retries on timeout, and hands results to a callback. The
/// shard layer's transaction managers and workload drivers are built
/// from GroupClients, which is what keeps them protocol-free.

#ifndef CONSENSUS40_CONSENSUS_REPLICA_GROUP_H_
#define CONSENSUS40_CONSENSUS_REPLICA_GROUP_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/simulation.h"
#include "smr/command.h"

namespace consensus40::consensus {

/// Protocol-agnostic hot-path tuning, mapped by each group onto its
/// protocol's native options before Create. The defaults reproduce the
/// untuned behaviour exactly: one command per log entry, no linger, no
/// checkpointing.
struct GroupTuning {
  /// Max client commands the leader folds into one log entry.
  int batch_size = 1;
  /// How long the leader lingers for a batch to fill (0 = cut
  /// immediately; mirrors PBFT's batch_delay).
  sim::Duration batch_delay = 0;
  /// Applied entries per state checkpoint + log prefix truncation
  /// (Raft snapshot_threshold / Multi-Paxos checkpoint_interval).
  /// 0 disables.
  uint64_t snapshot_threshold = 0;
  /// Failure-detection overrides, 0 = protocol default. Honored by
  /// crossword: under a finite-bandwidth network a multi-hundred-ms
  /// payload fan-out queues heartbeats behind it at the leader's egress
  /// port, so data-heavy configs must scale the follower timeout with
  /// the payload serialization cost or elect spurious leaders mid-round.
  sim::Duration heartbeat_interval = 0;
  sim::Duration leader_timeout = 0;
};

/// A replication group of one protocol, as seen from above the consensus
/// layer. Implementations live next to their protocol (src/raft/
/// raft_group.cc, src/paxos/multi_paxos_group.cc) so protocol authors
/// keep ownership of the mapping.
class ReplicaGroup {
 public:
  /// A decoded client-visible reply, normalized across protocols.
  struct Reply {
    uint64_t client_seq = 0;
    std::string result;
    sim::NodeId leader_hint = sim::kInvalidNode;
    /// True when the replica declined because it is not the leader; the
    /// result carries no data and the request should be re-sent (to
    /// leader_hint when valid).
    bool redirected = false;
  };

  virtual ~ReplicaGroup() = default;

  /// Registry key, e.g. "raft".
  virtual const char* protocol() const = 0;

  /// Applies hot-path tuning. Must be called before Create; protocols
  /// without a matching knob ignore the fields they cannot map.
  virtual void Configure(const GroupTuning& tuning) { tuning_ = tuning; }
  const GroupTuning& tuning() const { return tuning_; }

  /// Spawns `replicas` processes into `sim`, occupying the next ids in
  /// spawn order. Called exactly once per group.
  virtual void Create(sim::Simulation* sim, int replicas) = 0;

  /// The node ids of the group's replicas (valid after Create).
  const std::vector<sim::NodeId>& members() const { return members_; }

  /// Builds the protocol's client request message carrying `cmd`.
  /// Reads and writes arrive through this one entry point: a
  /// linearizable read is a Command with `kind == Kind::kRead` and op
  /// "GET <key>", so dedup sessions, ack floors, and batch framing see
  /// one uniform request shape. Protocols with a dedicated read path
  /// (Raft read-index) divert kRead commands around the log inside
  /// their replicas; the rest log them, which is linearizable by
  /// construction but pays a full consensus round.
  virtual sim::MessagePtr MakeRequest(const smr::Command& cmd) const = 0;

  /// Decodes a reply from one of the group's replicas; nullopt when the
  /// message is not this protocol's client reply.
  virtual std::optional<Reply> ParseReply(const sim::Message& msg) const = 0;

  /// The member currently believed to lead, or kInvalidNode.
  virtual sim::NodeId LeaderHint() const = 0;

  /// Committed command prefix of replica `i` (introspection for
  /// checkers; excludes protocol-internal entries such as no-ops).
  virtual std::vector<smr::Command> CommittedPrefix(int replica) const = 0;

  /// Periodic invariant hook (the checker's probe cadence). Protocol
  /// implementations track their own invariants here — e.g. Raft's
  /// Election Safety — and report breaches through Violations().
  virtual void Probe() {}

  /// Everything the group's replicas (or Probe) self-reported.
  virtual std::vector<std::string> Violations() const { return {}; }

 protected:
  std::vector<sim::NodeId> members_;
  GroupTuning tuning_;
};

using GroupFactory = std::function<std::unique_ptr<ReplicaGroup>()>;

/// Registers a protocol under `name`. Registering an existing name
/// replaces the factory (tests use this to inject instrumented groups).
void RegisterGroupProtocol(const std::string& name, GroupFactory factory);

/// Instantiates a registered protocol; nullptr for unknown names. The
/// built-in protocols (raft, multi_paxos) are registered on first use.
std::unique_ptr<ReplicaGroup> MakeGroup(const std::string& name);

/// Sorted names of every registered protocol.
std::vector<std::string> RegisteredGroupProtocols();

/// Built-in factories (defined next to their protocols); exposed so
/// callers can construct a group directly without the registry.
std::unique_ptr<ReplicaGroup> NewRaftGroup();
std::unique_ptr<ReplicaGroup> NewMultiPaxosGroup();
/// Crossword (adaptive erasure-coded Multi-Paxos) and its pinned
/// variants; see paxos/crossword_group.cc for what each key means.
std::unique_ptr<ReplicaGroup> NewCrosswordGroup();
std::unique_ptr<ReplicaGroup> NewCrosswordRsGroup();
std::unique_ptr<ReplicaGroup> NewCrosswordFullCopyGroup();
std::unique_ptr<ReplicaGroup> NewCrosswordUnsafeGroup();

/// A client endpoint for one ReplicaGroup: submits commands and
/// linearizable reads, follows redirects and leader hints, retries on
/// timeout, and invokes the owner's callback exactly once per completed
/// operation.
///
/// Transmission keeps up to `window` operations on the wire at once, in
/// seq order; further submissions queue behind the window. The deduping
/// executor's session table tolerates reordering within that bounded
/// window (see DedupingExecutor), so window > 1 stays exactly-once end
/// to end. THE WINDOWING CONTRACT: operations inside the window may
/// commit — and therefore apply — in any order, so a caller must only
/// submit an operation that depends on another's effects after that
/// predecessor's callback has fired. The default window of 1 restores
/// strict serialization.
class GroupClient : public sim::Process {
 public:
  /// (seq, result, was_read) for every completed operation, in
  /// completion order.
  using ResultFn =
      std::function<void(uint64_t seq, const std::string& result, bool read)>;

  explicit GroupClient(const ReplicaGroup* group,
                       sim::Duration retry = 300 * sim::kMillisecond,
                       int window = 1);

  /// Must be set before the first Submit/Read completes.
  void SetCallback(ResultFn fn) { on_result_ = std::move(fn); }

  /// Submits `op` as a command through the group; returns the operation
  /// sequence number passed back to the callback.
  uint64_t Submit(const std::string& op);

  /// Issues a linearizable read of `key`.
  uint64_t Read(const std::string& key);

  /// Pending operations (in flight + queued behind the window).
  size_t inflight() const { return pending_.size(); }
  int window() const { return window_; }

  void OnMessage(sim::NodeId from, const sim::Message& msg) override;
  void OnRestart() override;

 private:
  struct Pending {
    sim::MessagePtr msg;
    uint64_t retry_timer = 0;
    bool read = false;
    bool sent = false;  ///< Occupies a window slot (transmitted at least once).
    sim::NodeId last_target = sim::kInvalidNode;
  };

  uint64_t Issue(sim::MessagePtr msg, bool read);
  /// Cumulative ack to piggyback on the op numbered `next`: the seq below
  /// the lowest pending operation (all earlier replies were consumed).
  uint64_t AckedFrontier(uint64_t next) const;
  void SendTo(uint64_t seq, sim::NodeId target);
  void ArmRetry(uint64_t seq);
  /// Transmits queued operations (in seq order) until `window_` are on
  /// the wire.
  void PumpWindow();
  sim::NodeId PickTarget();

  const ReplicaGroup* group_;
  sim::Duration retry_;
  int window_;
  ResultFn on_result_;
  uint64_t next_seq_ = 0;
  size_t rotate_ = 0;  ///< Round-robin cursor for leaderless retries.
  /// False after a retry timer fires until a successful (non-redirect)
  /// reply arrives: the group's leader hint led to a silent target — a
  /// crashed or partitioned leader whose omniscient hint may not have
  /// caught up — so new transmissions rotate instead of re-preferring it.
  bool trust_hint_ = true;
  size_t sent_count_ = 0;  ///< Pending operations currently on the wire.
  std::map<uint64_t, Pending> pending_;
};

}  // namespace consensus40::consensus

#endif  // CONSENSUS40_CONSENSUS_REPLICA_GROUP_H_
