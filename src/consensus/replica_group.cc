#include "consensus/replica_group.h"

#include <algorithm>
#include <mutex>

namespace consensus40::consensus {

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

namespace {

/// The registry is shared across threads (the parallel sweep builds
/// groups from several workers at once), so every access is mutexed.
struct Registry {
  std::mutex mu;
  std::map<std::string, GroupFactory> factories;
  bool builtins_registered = false;

  void EnsureBuiltins() {
    if (builtins_registered) return;
    builtins_registered = true;
    factories["raft"] = [] { return NewRaftGroup(); };
    factories["multi_paxos"] = [] { return NewMultiPaxosGroup(); };
    factories["crossword"] = [] { return NewCrosswordGroup(); };
    factories["crossword_rs"] = [] { return NewCrosswordRsGroup(); };
    factories["crossword_full"] = [] { return NewCrosswordFullCopyGroup(); };
    factories["crossword_unsafe"] = [] { return NewCrosswordUnsafeGroup(); };
  }

  static Registry& Instance() {
    static Registry* r = new Registry();  // Leaked: outlives static dtors.
    return *r;
  }
};

}  // namespace

void RegisterGroupProtocol(const std::string& name, GroupFactory factory) {
  Registry& r = Registry::Instance();
  std::lock_guard<std::mutex> lock(r.mu);
  r.EnsureBuiltins();
  r.factories[name] = std::move(factory);
}

std::unique_ptr<ReplicaGroup> MakeGroup(const std::string& name) {
  GroupFactory factory;
  {
    Registry& r = Registry::Instance();
    std::lock_guard<std::mutex> lock(r.mu);
    r.EnsureBuiltins();
    auto it = r.factories.find(name);
    if (it == r.factories.end()) return nullptr;
    factory = it->second;  // Copy: invoke outside the lock.
  }
  return factory();
}

std::vector<std::string> RegisteredGroupProtocols() {
  Registry& r = Registry::Instance();
  std::lock_guard<std::mutex> lock(r.mu);
  r.EnsureBuiltins();
  std::vector<std::string> names;
  names.reserve(r.factories.size());
  for (const auto& [name, factory] : r.factories) names.push_back(name);
  return names;  // std::map iteration is already sorted.
}

// ---------------------------------------------------------------------------
// GroupClient
// ---------------------------------------------------------------------------

GroupClient::GroupClient(const ReplicaGroup* group, sim::Duration retry,
                         int window)
    : group_(group), retry_(retry), window_(window > 0 ? window : 1) {}

sim::NodeId GroupClient::PickTarget() {
  const auto& members = group_->members();
  // Only trust the leader hint while it is earning its keep: after a
  // retry timer fires, the hint pointed (and, for an omniscient hint over
  // a crashed-but-not-restarted leader, may keep pointing) at a silent
  // node; re-preferring it would stall EVERY subsequently dispatched
  // operation for a full retry period. Distrust it until a successful
  // reply proves the group is answering again.
  if (trust_hint_) {
    sim::NodeId hint = group_->LeaderHint();
    for (sim::NodeId m : members) {
      if (m == hint) return hint;
    }
  }
  return members[rotate_ % members.size()];
}

uint64_t GroupClient::Submit(const std::string& op) {
  uint64_t seq = ++next_seq_;
  smr::Command cmd{id(), seq, op};
  cmd.acked = AckedFrontier(seq);
  return Issue(group_->MakeRequest(cmd), false);
}

uint64_t GroupClient::Read(const std::string& key) {
  uint64_t seq = ++next_seq_;
  smr::Command cmd{id(), seq, "GET " + key};
  cmd.acked = AckedFrontier(seq);
  cmd.kind = smr::Command::Kind::kRead;
  return Issue(group_->MakeRequest(cmd), true);
}

uint64_t GroupClient::AckedFrontier(uint64_t next) const {
  // Every seq below the lowest still-pending operation has had its reply
  // consumed by the callback; the session tables prune cached results up
  // to exactly this point, so any op we could still retry keeps its own
  // result server-side.
  return pending_.empty() ? next - 1 : pending_.begin()->first - 1;
}

uint64_t GroupClient::Issue(sim::MessagePtr msg, bool read) {
  uint64_t seq = next_seq_;
  Pending& p = pending_[seq];
  p.msg = std::move(msg);
  p.read = read;
  // Up to window_ operations ride the wire at once, transmitted in seq
  // order; the rest queue here. The deduping executor's session table
  // tolerates reordering within the window (it tracks executed seqs
  // above its contiguous floor), so none of the in-flight seqs can be
  // mistaken for a duplicate however the network interleaves them.
  PumpWindow();
  return seq;
}

void GroupClient::PumpWindow() {
  for (auto& [seq, p] : pending_) {
    if (sent_count_ >= static_cast<size_t>(window_)) break;
    if (p.sent) continue;
    p.sent = true;
    ++sent_count_;
    SendTo(seq, PickTarget());
  }
}

void GroupClient::SendTo(uint64_t seq, sim::NodeId target) {
  Pending& p = pending_[seq];
  p.last_target = target;
  Send(target, p.msg);
  ArmRetry(seq);
}

void GroupClient::ArmRetry(uint64_t seq) {
  Pending& p = pending_[seq];
  CancelTimer(p.retry_timer);
  p.retry_timer = SetTimer(retry_, [this, seq] {
    auto it = pending_.find(seq);
    if (it == pending_.end()) return;
    trust_hint_ = false;  // The hint led here; stop preferring it.
    ++rotate_;            // The last target was unresponsive: rotate away.
    const auto& members = group_->members();
    sim::NodeId next = members[rotate_ % members.size()];
    if (next == it->second.last_target && members.size() > 1) {
      // The cursor wrapped straight back onto the silent node; skip it.
      ++rotate_;
      next = members[rotate_ % members.size()];
    }
    SendTo(seq, next);
  });
}

void GroupClient::OnMessage(sim::NodeId from, const sim::Message& msg) {
  std::optional<ReplicaGroup::Reply> reply = group_->ParseReply(msg);
  if (!reply.has_value()) return;
  auto it = pending_.find(reply->client_seq);
  if (it == pending_.end()) return;  // Duplicate or stale reply.
  if (reply->redirected) {
    const auto& members = group_->members();
    if (reply->leader_hint != sim::kInvalidNode &&
        reply->leader_hint != from &&
        std::find(members.begin(), members.end(), reply->leader_hint) !=
            members.end()) {
      SendTo(reply->client_seq, reply->leader_hint);
    }
    return;  // No usable hint: the retry timer rotates.
  }
  CancelTimer(it->second.retry_timer);
  bool read = it->second.read;
  if (it->second.sent) --sent_count_;
  pending_.erase(it);
  trust_hint_ = true;  // A real reply: the group is answering again.
  // Dispatch queued operations before the callback runs, so a callback
  // that submits new work queues behind what is already here.
  PumpWindow();
  if (on_result_) on_result_(reply->client_seq, reply->result, read);
}

void GroupClient::OnRestart() {
  // Timers died with the crash; every formerly in-flight operation needs
  // re-transmission or queued work stalls forever. Retried requests are
  // idempotent end to end.
  sent_count_ = 0;
  for (auto& [seq, p] : pending_) p.sent = false;
  PumpWindow();
}

}  // namespace consensus40::consensus
