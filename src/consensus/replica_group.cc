#include "consensus/replica_group.h"

#include <algorithm>
#include <mutex>

namespace consensus40::consensus {

sim::MessagePtr ReplicaGroup::MakeRead(int32_t client, uint64_t seq,
                                       const std::string& key) const {
  return MakeRequest(smr::Command{client, seq, "GET " + key});
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

namespace {

/// The registry is shared across threads (the parallel sweep builds
/// groups from several workers at once), so every access is mutexed.
struct Registry {
  std::mutex mu;
  std::map<std::string, GroupFactory> factories;
  bool builtins_registered = false;

  void EnsureBuiltins() {
    if (builtins_registered) return;
    builtins_registered = true;
    factories["raft"] = [] { return NewRaftGroup(); };
    factories["multi_paxos"] = [] { return NewMultiPaxosGroup(); };
  }

  static Registry& Instance() {
    static Registry* r = new Registry();  // Leaked: outlives static dtors.
    return *r;
  }
};

}  // namespace

void RegisterGroupProtocol(const std::string& name, GroupFactory factory) {
  Registry& r = Registry::Instance();
  std::lock_guard<std::mutex> lock(r.mu);
  r.EnsureBuiltins();
  r.factories[name] = std::move(factory);
}

std::unique_ptr<ReplicaGroup> MakeGroup(const std::string& name) {
  GroupFactory factory;
  {
    Registry& r = Registry::Instance();
    std::lock_guard<std::mutex> lock(r.mu);
    r.EnsureBuiltins();
    auto it = r.factories.find(name);
    if (it == r.factories.end()) return nullptr;
    factory = it->second;  // Copy: invoke outside the lock.
  }
  return factory();
}

std::vector<std::string> RegisteredGroupProtocols() {
  Registry& r = Registry::Instance();
  std::lock_guard<std::mutex> lock(r.mu);
  r.EnsureBuiltins();
  std::vector<std::string> names;
  names.reserve(r.factories.size());
  for (const auto& [name, factory] : r.factories) names.push_back(name);
  return names;  // std::map iteration is already sorted.
}

// ---------------------------------------------------------------------------
// GroupClient
// ---------------------------------------------------------------------------

GroupClient::GroupClient(const ReplicaGroup* group, sim::Duration retry)
    : group_(group), retry_(retry) {}

sim::NodeId GroupClient::PickTarget() {
  sim::NodeId hint = group_->LeaderHint();
  const auto& members = group_->members();
  for (sim::NodeId m : members) {
    if (m == hint) return hint;
  }
  return members[rotate_ % members.size()];
}

uint64_t GroupClient::Submit(const std::string& op) {
  uint64_t seq = ++next_seq_;
  return Issue(group_->MakeRequest(smr::Command{id(), seq, op}), false);
}

uint64_t GroupClient::Read(const std::string& key) {
  uint64_t seq = ++next_seq_;
  return Issue(group_->MakeRead(id(), seq, key), true);
}

uint64_t GroupClient::Issue(sim::MessagePtr msg, bool read) {
  uint64_t seq = next_seq_;
  Pending& p = pending_[seq];
  p.msg = std::move(msg);
  p.read = read;
  // One operation on the wire at a time, in seq order. The deduping
  // executor's session table assumes each client's seqs reach the log in
  // order; if seq n+1 were transmitted while n is still in flight, the
  // network could reorder them and the executor would drop the lower seq
  // as a "duplicate". Later submissions queue here and are transmitted
  // as their predecessors complete.
  if (pending_.size() == 1) SendTo(seq, PickTarget());
  return seq;
}

void GroupClient::SendTo(uint64_t seq, sim::NodeId target) {
  Send(target, pending_[seq].msg);
  ArmRetry(seq);
}

void GroupClient::ArmRetry(uint64_t seq) {
  Pending& p = pending_[seq];
  CancelTimer(p.retry_timer);
  p.retry_timer = SetTimer(retry_, [this, seq] {
    auto it = pending_.find(seq);
    if (it == pending_.end()) return;
    ++rotate_;  // The last target was unresponsive: rotate away from it.
    const auto& members = group_->members();
    SendTo(seq, members[rotate_ % members.size()]);
  });
}

void GroupClient::OnMessage(sim::NodeId from, const sim::Message& msg) {
  std::optional<ReplicaGroup::Reply> reply = group_->ParseReply(msg);
  if (!reply.has_value()) return;
  auto it = pending_.find(reply->client_seq);
  if (it == pending_.end()) return;  // Duplicate or stale reply.
  if (reply->redirected) {
    const auto& members = group_->members();
    if (reply->leader_hint != sim::kInvalidNode &&
        reply->leader_hint != from &&
        std::find(members.begin(), members.end(), reply->leader_hint) !=
            members.end()) {
      SendTo(reply->client_seq, reply->leader_hint);
    }
    return;  // No usable hint: the retry timer rotates.
  }
  CancelTimer(it->second.retry_timer);
  bool read = it->second.read;
  pending_.erase(it);
  // Dispatch the next queued operation before the callback runs, so a
  // callback that submits new work queues behind what is already here.
  if (!pending_.empty()) SendTo(pending_.begin()->first, PickTarget());
  if (on_result_) on_result_(reply->client_seq, reply->result, read);
}

void GroupClient::OnRestart() {
  // Timers died with the crash; re-transmit the head so queued work
  // does not stall forever. Retried requests are idempotent end to end.
  if (!pending_.empty()) SendTo(pending_.begin()->first, PickTarget());
}

}  // namespace consensus40::consensus
