#ifndef CONSENSUS40_MINBFT_MINBFT_H_
#define CONSENSUS40_MINBFT_MINBFT_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "crypto/sha256.h"
#include "crypto/signatures.h"
#include "sim/simulation.h"
#include "smr/command.h"
#include "smr/state_machine.h"

namespace consensus40::minbft {

/// Configuration shared by all replicas of a MinBFT cluster.
struct MinBftOptions {
  /// Cluster size; must be 2f+1 (the protocol's headline: Byzantine fault
  /// tolerance with Paxos-sized clusters, thanks to the USIG).
  int n = 3;

  /// Shared key registry for client request signatures and USIG tags.
  const crypto::KeyRegistry* registry = nullptr;

  /// Shared trusted USIG component. Exactly one per cluster: the per-node
  /// counters inside it model each replica's tamper-proof hardware.
  crypto::Usig* usig = nullptr;

  /// Client-request patience before suspecting the primary.
  sim::Duration request_timeout = 300 * sim::kMillisecond;
};

/// A MinBFT replica (Veronese et al. 2013). The USIG's unique sequential
/// identifiers prevent a Byzantine primary from assigning two different
/// requests to one counter value, which removes PBFT's pre-prepare/prepare
/// distinction: 2 phases (prepare, commit), 2f+1 replicas, quorums of f+1.
class MinBftReplica : public sim::Process {
 public:
  explicit MinBftReplica(MinBftOptions options);

  struct RequestMsg : sim::Message {
    RequestMsg(smr::Command c, crypto::Signature s)
        : cmd(std::move(c)), client_sig(s) {}
    const char* TypeName() const override { return "minbft-request"; }
    int ByteSize() const override { return 48 + cmd.ByteSize(); }
    smr::Command cmd;
    crypto::Signature client_sig;
  };
  struct ReplyMsg : sim::Message {
    const char* TypeName() const override { return "minbft-reply"; }
    int ByteSize() const override {
      return 24 + static_cast<int>(result.size());
    }
    int64_t view = 0;
    uint64_t client_seq = 0;
    int32_t replica = -1;
    std::string result;
  };
  struct PrepareMsg : sim::Message {
    const char* TypeName() const override { return "minbft-prepare"; }
    int ByteSize() const override { return 96 + cmd.ByteSize(); }
    int64_t view = 0;
    smr::Command cmd;
    crypto::Signature client_sig;
    crypto::Usig::UI ui;  ///< Primary's UI; its counter is the seq number.
  };
  struct CommitMsg : sim::Message {
    const char* TypeName() const override { return "minbft-commit"; }
    int ByteSize() const override { return 144 + cmd.ByteSize(); }
    int64_t view = 0;
    smr::Command cmd;
    crypto::Signature client_sig;
    crypto::Usig::UI primary_ui;
    crypto::Usig::UI replica_ui;  ///< The committing replica's own UI.
  };
  struct ViewChangeMsg : sim::Message {
    const char* TypeName() const override { return "minbft-view-change"; }
    int ByteSize() const override {
      return 48 + static_cast<int>(entries.size()) * 160;
    }
    int64_t new_view = 0;
    int32_t replica = -1;
    /// Accepted prepares (primary counter, command, client sig).
    struct Entry {
      uint64_t counter;
      smr::Command cmd;
      crypto::Signature client_sig;
    };
    std::vector<Entry> entries;
    crypto::Usig::UI ui;  ///< Authenticates the view-change itself.
  };
  struct NewViewMsg : sim::Message {
    const char* TypeName() const override { return "minbft-new-view"; }
    int ByteSize() const override {
      return 56 + static_cast<int>(reissue.size()) * 120;
    }
    int64_t view = 0;
    std::vector<ViewChangeMsg::Entry> reissue;
    /// First USIG counter the new primary will use for prepares.
    uint64_t first_counter = 0;
    crypto::Usig::UI ui;
  };

  int64_t view() const { return view_; }
  bool IsPrimary() const { return view_ % options_.n == id(); }
  uint64_t last_executed() const { return last_executed_; }
  const smr::KvStore& kv() const { return kv_; }
  const std::vector<smr::Command>& executed_commands() const {
    return executed_commands_;
  }

  void OnMessage(sim::NodeId from, const sim::Message& msg) override;

 protected:
  /// Adversary hook: primary-side request hijack (returns true to skip
  /// honest handling).
  virtual bool MaybeActMaliciouslyOnRequest(const smr::Command& cmd,
                                            const crypto::Signature& sig);

  MinBftOptions options_;
  int f_;

 private:
  struct Slot {
    bool prepared = false;  ///< Valid prepare received.
    smr::Command cmd;
    crypto::Signature client_sig;
    crypto::Usig::UI primary_ui;
    std::set<sim::NodeId> commits;  ///< Replicas whose commit matched.
    bool sent_commit = false;
    bool executed = false;
  };

  crypto::Digest PrepareBindingDigest(int64_t view,
                                      const smr::Command& cmd) const;
  void MaybeExecute();
  void ArmRequestTimer(const smr::Command& cmd);
  void DisarmRequestTimer(int32_t client, uint64_t client_seq);
  void StartViewChange(int64_t new_view);
  std::vector<sim::NodeId> Everyone() const;

  int64_t view_ = 0;
  bool in_view_change_ = false;
  int64_t pending_view_ = 0;
  /// Highest primary counter accepted per view; prepares must arrive with
  /// strictly sequential counters.
  uint64_t expected_counter_ = 1;
  uint64_t last_executed_ = 0;  ///< Executed slots (logical seq).
  std::map<uint64_t, Slot> slots_;  ///< Keyed by logical sequence number.
  /// Maps the current view's primary counter to logical sequence.
  std::map<uint64_t, uint64_t> counter_to_seq_;
  uint64_t next_seq_ = 1;

  smr::KvStore kv_;
  smr::DedupingExecutor dedup_;
  std::vector<smr::Command> executed_commands_;
  std::map<std::pair<int32_t, uint64_t>, std::string> results_;
  std::map<std::pair<int32_t, uint64_t>, uint64_t> request_timers_;
  std::map<int64_t, std::map<sim::NodeId, std::vector<ViewChangeMsg::Entry>>>
      view_changes_;
  std::set<int64_t> built_new_views_;  ///< Guard against double NewView.
};

/// MinBFT client: identical interaction pattern to the PBFT client (f+1
/// matching replies), with f drawn from n = 2f+1.
class MinBftClient : public sim::Process {
 public:
  MinBftClient(int n, const crypto::KeyRegistry* registry, int ops,
               std::string key = "x",
               sim::Duration retry = 500 * sim::kMillisecond);

  int completed() const { return completed_; }
  bool done() const { return completed_ >= ops_; }
  const std::vector<std::string>& results() const { return results_; }

  void OnStart() override;
  void OnMessage(sim::NodeId from, const sim::Message& msg) override;

 private:
  void SendCurrent(bool broadcast);

  int n_;
  const crypto::KeyRegistry* registry_;
  int f_;
  int ops_;
  std::string key_;
  sim::Duration retry_;
  int completed_ = 0;
  uint64_t seq_ = 0;
  sim::NodeId primary_hint_ = 0;
  uint64_t retry_timer_ = 0;
  std::map<std::string, std::set<sim::NodeId>> reply_votes_;
  std::vector<std::string> results_;
};

}  // namespace consensus40::minbft

#endif  // CONSENSUS40_MINBFT_MINBFT_H_
