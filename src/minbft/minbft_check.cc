/// Checker adapter for MinBFT: n=2f+1=3 with the shared trusted USIG.
/// Crash-stop (no restart path) — the USIG counters make a restarted
/// replica's old incarnation indistinguishable from equivocation.

#include <memory>
#include <string>

#include "check/adapters.h"
#include "crypto/signatures.h"
#include "minbft/minbft.h"
#include "sim/byzantine.h"

namespace consensus40::check {
namespace {

class MinBftCheckAdapter : public ProtocolAdapter {
 public:
  explicit MinBftCheckAdapter(uint64_t seed, int ops = 4)
      : registry_(seed, kN + 4), usig_(&registry_), ops_(ops) {}

  const char* name() const override { return "minbft"; }

  FaultBounds bounds() const override {
    FaultBounds b;
    b.nodes = kN;
    b.max_crashed = (kN - 1) / 2;
    return b;
  }

  void Build(sim::Simulation* sim) override {
    minbft::MinBftOptions opts;
    opts.n = kN;
    opts.registry = &registry_;
    opts.usig = &usig_;
    for (int i = 0; i < kN; ++i) {
      replicas_.push_back(sim->Spawn<minbft::MinBftReplica>(opts));
    }
    client_ = sim->Spawn<minbft::MinBftClient>(kN, &registry_, ops_);
  }

  bool Done() const override { return client_->done(); }

  Observation Observe() const override {
    Observation o;
    for (const minbft::MinBftReplica* r : replicas_) {
      std::vector<std::string> log;
      for (const smr::Command& cmd : r->executed_commands()) {
        log.push_back(cmd.ToString());
      }
      o.logs.push_back(std::move(log));
    }
    return o;
  }

 protected:
  static constexpr int kN = 3;
  crypto::KeyRegistry registry_;
  crypto::Usig usig_;
  int ops_;
  std::vector<minbft::MinBftReplica*> replicas_;
  minbft::MinBftClient* client_ = nullptr;
};

/// In-bounds Byzantine MinBFT: any one of the three replicas may
/// withhold, corrupt (generic degradation: dropped), or replay outbound
/// traffic. No equivocation forge — that is the whole point of the USIG:
/// a twin message would need a second UI for the same counter, which the
/// trusted component refuses to mint. Replayed captures carry stale USIG
/// counters and must bounce off the monotonicity check.
class MinBftByzantineAdapter : public MinBftCheckAdapter {
 public:
  explicit MinBftByzantineAdapter(uint64_t seed)
      : MinBftCheckAdapter(seed, /*ops=*/12) {}

  const char* name() const override { return "minbft_byz"; }

  FaultBounds bounds() const override {
    FaultBounds b = MinBftCheckAdapter::bounds();
    b.max_byzantine = 1;
    b.byz_first_node = 0;
    b.byz_nodes = kN;
    b.byz_withhold = true;
    b.byz_mutate = true;
    b.byz_replay = true;
    return b;
  }

  void Build(sim::Simulation* sim) override {
    MinBftCheckAdapter::Build(sim);
    byz_.Attach(sim);
  }

 private:
  sim::ByzantineInterposer byz_;
};

}  // namespace

AdapterFactory MakeMinBftAdapter() {
  return [](uint64_t seed) {
    return std::make_unique<MinBftCheckAdapter>(seed);
  };
}

AdapterFactory MakeMinBftByzantineAdapter() {
  return [](uint64_t seed) {
    return std::make_unique<MinBftByzantineAdapter>(seed);
  };
}

}  // namespace consensus40::check
