/// Checker adapter for MinBFT: n=2f+1=3 with the shared trusted USIG.
/// Crash-stop (no restart path) — the USIG counters make a restarted
/// replica's old incarnation indistinguishable from equivocation.

#include <memory>
#include <string>

#include "check/adapters.h"
#include "crypto/signatures.h"
#include "minbft/minbft.h"

namespace consensus40::check {
namespace {

class MinBftCheckAdapter : public ProtocolAdapter {
 public:
  explicit MinBftCheckAdapter(uint64_t seed)
      : registry_(seed, kN + 4), usig_(&registry_) {}

  const char* name() const override { return "minbft"; }

  FaultBounds bounds() const override {
    FaultBounds b;
    b.nodes = kN;
    b.max_crashed = (kN - 1) / 2;
    return b;
  }

  void Build(sim::Simulation* sim) override {
    minbft::MinBftOptions opts;
    opts.n = kN;
    opts.registry = &registry_;
    opts.usig = &usig_;
    for (int i = 0; i < kN; ++i) {
      replicas_.push_back(sim->Spawn<minbft::MinBftReplica>(opts));
    }
    client_ = sim->Spawn<minbft::MinBftClient>(kN, &registry_, kOps);
  }

  bool Done() const override { return client_->done(); }

  Observation Observe() const override {
    Observation o;
    for (const minbft::MinBftReplica* r : replicas_) {
      std::vector<std::string> log;
      for (const smr::Command& cmd : r->executed_commands()) {
        log.push_back(cmd.ToString());
      }
      o.logs.push_back(std::move(log));
    }
    return o;
  }

 private:
  static constexpr int kN = 3;
  static constexpr int kOps = 4;
  crypto::KeyRegistry registry_;
  crypto::Usig usig_;
  std::vector<minbft::MinBftReplica*> replicas_;
  minbft::MinBftClient* client_ = nullptr;
};

}  // namespace

AdapterFactory MakeMinBftAdapter() {
  return [](uint64_t seed) {
    return std::make_unique<MinBftCheckAdapter>(seed);
  };
}

}  // namespace consensus40::check
