#include "minbft/minbft.h"

#include <algorithm>
#include <cassert>

#include "pbft/pbft.h"

namespace consensus40::minbft {

namespace {

bool ValidRequest(const smr::Command& cmd, const crypto::Signature& sig,
                  const crypto::KeyRegistry& registry) {
  return pbft::PbftReplica::ValidRequest(cmd, sig, registry);
}

}  // namespace

MinBftReplica::MinBftReplica(MinBftOptions options) : options_(options) {
  assert(options_.n >= 3 && options_.n % 2 == 1);
  assert(options_.registry != nullptr && options_.usig != nullptr);
  f_ = (options_.n - 1) / 2;
}

std::vector<sim::NodeId> MinBftReplica::Everyone() const {
  std::vector<sim::NodeId> all;
  for (int i = 0; i < options_.n; ++i) all.push_back(i);
  return all;
}

crypto::Digest MinBftReplica::PrepareBindingDigest(
    int64_t view, const smr::Command& cmd) const {
  crypto::Sha256 h;
  h.Update(&view, sizeof(view));
  crypto::Digest d = cmd.Hash();
  h.Update(d.data(), d.size());
  return h.Finish();
}

bool MinBftReplica::MaybeActMaliciouslyOnRequest(const smr::Command&,
                                                 const crypto::Signature&) {
  return false;
}

void MinBftReplica::ArmRequestTimer(const smr::Command& cmd) {
  auto key = std::make_pair(cmd.client, cmd.client_seq);
  if (request_timers_.count(key) > 0 || results_.count(key) > 0) return;
  request_timers_[key] = SetTimer(options_.request_timeout, [this, key] {
    request_timers_.erase(key);
    StartViewChange(view_ + 1);
  });
}

void MinBftReplica::DisarmRequestTimer(int32_t client, uint64_t client_seq) {
  auto key = std::make_pair(client, client_seq);
  auto it = request_timers_.find(key);
  if (it != request_timers_.end()) {
    CancelTimer(it->second);
    request_timers_.erase(it);
  }
}

void MinBftReplica::MaybeExecute() {
  while (true) {
    auto it = slots_.find(expected_counter_);
    if (it == slots_.end() || !it->second.prepared) break;
    Slot& slot = it->second;
    if (static_cast<int>(slot.commits.size()) < f_ + 1) break;
    if (!slot.executed) {
      slot.executed = true;
      auto key = std::make_pair(slot.cmd.client, slot.cmd.client_seq);
      std::string result;
      if (results_.count(key) > 0) {
        result = results_[key];  // Re-issued after view change: no re-apply.
      } else {
        result = dedup_.Apply(&kv_, slot.cmd);
        results_[key] = result;
        executed_commands_.push_back(slot.cmd);
        ++last_executed_;
      }
      DisarmRequestTimer(slot.cmd.client, slot.cmd.client_seq);
      auto reply = std::make_shared<ReplyMsg>();
      reply->view = view_;
      reply->client_seq = slot.cmd.client_seq;
      reply->replica = id();
      reply->result = result;
      Send(slot.cmd.client, reply);
    }
    ++expected_counter_;
  }
}

void MinBftReplica::StartViewChange(int64_t new_view) {
  if (new_view <= view_ || (in_view_change_ && new_view <= pending_view_)) {
    return;
  }
  in_view_change_ = true;
  pending_view_ = new_view;

  auto vc = std::make_shared<ViewChangeMsg>();
  vc->new_view = new_view;
  vc->replica = id();
  for (const auto& [counter, slot] : slots_) {
    if (!slot.prepared) continue;
    vc->entries.push_back({counter, slot.cmd, slot.client_sig});
  }
  crypto::Sha256 h;
  h.Update(&new_view, sizeof(new_view));
  vc->ui = options_.usig->CreateUi(id(), h.Finish());
  Multicast(Everyone(), vc);

  SetTimer(options_.request_timeout * 2, [this, new_view] {
    if (in_view_change_ && pending_view_ == new_view) {
      StartViewChange(new_view + 1);
    }
  });
}

void MinBftReplica::OnMessage(sim::NodeId from, const sim::Message& msg) {
  if (const auto* m = dynamic_cast<const RequestMsg*>(&msg)) {
    if (!ValidRequest(m->cmd, m->client_sig, *options_.registry)) return;
    auto key = std::make_pair(m->cmd.client, m->cmd.client_seq);
    auto done = results_.find(key);
    if (done != results_.end()) {
      auto reply = std::make_shared<ReplyMsg>();
      reply->view = view_;
      reply->client_seq = m->cmd.client_seq;
      reply->replica = id();
      reply->result = done->second;
      Send(m->cmd.client, reply);
      return;
    }
    if (IsPrimary() && !in_view_change_) {
      if (MaybeActMaliciouslyOnRequest(m->cmd, m->client_sig)) return;
      // Duplicate assignment guard.
      for (const auto& [counter, slot] : slots_) {
        if (slot.cmd.client == m->cmd.client &&
            slot.cmd.client_seq == m->cmd.client_seq) {
          return;
        }
      }
      auto prepare = std::make_shared<PrepareMsg>();
      prepare->view = view_;
      prepare->cmd = m->cmd;
      prepare->client_sig = m->client_sig;
      prepare->ui = options_.usig->CreateUi(
          id(), PrepareBindingDigest(view_, m->cmd));
      Multicast(Everyone(), prepare);
    } else if (!IsPrimary()) {
      Send(static_cast<sim::NodeId>(view_ % options_.n),
           std::make_shared<RequestMsg>(m->cmd, m->client_sig));
      ArmRequestTimer(m->cmd);
    }
    return;
  }

  if (const auto* m = dynamic_cast<const PrepareMsg*>(&msg)) {
    if (m->view != view_ || in_view_change_) return;
    if (from != view_ % options_.n) return;
    if (!ValidRequest(m->cmd, m->client_sig, *options_.registry)) return;
    // The USIG check is what stops primary equivocation: one counter value
    // can certify exactly one (view, command) binding.
    if (!options_.usig->VerifyUi(m->ui, PrepareBindingDigest(view_, m->cmd))) {
      return;
    }
    Slot& slot = slots_[m->ui.counter];
    if (slot.prepared) return;
    slot.prepared = true;
    slot.cmd = m->cmd;
    slot.client_sig = m->client_sig;
    slot.primary_ui = m->ui;
    slot.commits.insert(from);  // The prepare doubles as the primary's commit.
    DisarmRequestTimer(m->cmd.client, m->cmd.client_seq);
    ArmRequestTimer(m->cmd);  // Now it must commit within the timeout.
    if (!slot.sent_commit && id() != from) {
      slot.sent_commit = true;
      auto commit = std::make_shared<CommitMsg>();
      commit->view = view_;
      commit->cmd = m->cmd;
      commit->client_sig = m->client_sig;
      commit->primary_ui = m->ui;
      commit->replica_ui = options_.usig->CreateUi(
          id(), PrepareBindingDigest(view_, m->cmd));
      Multicast(Everyone(), commit);
      slot.commits.insert(id());
    }
    MaybeExecute();
    return;
  }

  if (const auto* m = dynamic_cast<const CommitMsg*>(&msg)) {
    if (m->view != view_ || in_view_change_) return;
    if (!options_.usig->VerifyUi(m->primary_ui,
                                 PrepareBindingDigest(view_, m->cmd)) ||
        !options_.usig->VerifyUi(m->replica_ui,
                                 PrepareBindingDigest(view_, m->cmd))) {
      return;
    }
    if (m->replica_ui.signer != from) return;
    Slot& slot = slots_[m->primary_ui.counter];
    slot.commits.insert(from);
    // A commit also proves the prepare's existence; adopt it if the
    // original prepare got here later/not yet.
    if (!slot.prepared) {
      slot.prepared = true;
      slot.cmd = m->cmd;
      slot.client_sig = m->client_sig;
      slot.primary_ui = m->primary_ui;
      slot.commits.insert(m->primary_ui.signer);
      if (!slot.sent_commit && id() != view_ % options_.n) {
        slot.sent_commit = true;
        auto commit = std::make_shared<CommitMsg>();
        commit->view = view_;
        commit->cmd = m->cmd;
        commit->client_sig = m->client_sig;
        commit->primary_ui = m->primary_ui;
        commit->replica_ui = options_.usig->CreateUi(
            id(), PrepareBindingDigest(view_, m->cmd));
        Multicast(Everyone(), commit);
        slot.commits.insert(id());
      }
    }
    MaybeExecute();
    return;
  }

  if (const auto* m = dynamic_cast<const ViewChangeMsg*>(&msg)) {
    crypto::Sha256 h;
    h.Update(&m->new_view, sizeof(m->new_view));
    if (!options_.usig->VerifyUi(m->ui, h.Finish()) ||
        m->ui.signer != from || m->new_view <= view_) {
      return;
    }
    view_changes_[m->new_view][from] = m->entries;

    if (static_cast<int>(view_changes_[m->new_view].size()) >= f_ + 1 &&
        (!in_view_change_ || pending_view_ < m->new_view)) {
      StartViewChange(m->new_view);  // Join.
    }

    if (m->new_view % options_.n == id() &&
        static_cast<int>(view_changes_[m->new_view].size()) >= f_ + 1 &&
        built_new_views_.insert(m->new_view).second) {
      // Build the new view: union of reported prepares, original order.
      std::map<uint64_t, ViewChangeMsg::Entry> merged;
      for (const auto& [r, entries] : view_changes_[m->new_view]) {
        for (const auto& entry : entries) {
          if (!ValidRequest(entry.cmd, entry.client_sig, *options_.registry)) {
            continue;
          }
          merged[entry.counter] = entry;
        }
      }
      auto nv = std::make_shared<NewViewMsg>();
      nv->view = m->new_view;
      for (const auto& [counter, entry] : merged) {
        nv->reissue.push_back(entry);
      }
      crypto::Sha256 nh;
      nh.Update(&nv->view, sizeof(nv->view));
      nv->ui = options_.usig->CreateUi(id(), nh.Finish());
      nv->first_counter = nv->ui.counter + 1;
      Multicast(Everyone(), nv);
    }
    return;
  }

  if (const auto* m = dynamic_cast<const NewViewMsg*>(&msg)) {
    crypto::Sha256 h;
    h.Update(&m->view, sizeof(m->view));
    if (!options_.usig->VerifyUi(m->ui, h.Finish())) return;
    if (m->ui.signer != m->view % options_.n || from != m->ui.signer) return;
    if (m->view < view_ || (m->view == view_ && !in_view_change_)) return;
    // Install the view.
    view_ = m->view;
    in_view_change_ = false;
    pending_view_ = view_;
    slots_.clear();
    expected_counter_ = m->first_counter;
    view_changes_.erase(view_);
    // Fresh patience for the new primary.
    for (auto& [key, timer] : request_timers_) CancelTimer(timer);
    request_timers_.clear();

    if (IsPrimary()) {
      // Re-issue every surviving prepare with fresh counters (execution
      // side dedups anything already applied).
      for (const auto& entry : m->reissue) {
        auto prepare = std::make_shared<PrepareMsg>();
        prepare->view = view_;
        prepare->cmd = entry.cmd;
        prepare->client_sig = entry.client_sig;
        prepare->ui = options_.usig->CreateUi(
            id(), PrepareBindingDigest(view_, entry.cmd));
        Multicast(Everyone(), prepare);
      }
    }
    return;
  }
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

MinBftClient::MinBftClient(int n, const crypto::KeyRegistry* registry,
                           int ops, std::string key, sim::Duration retry)
    : n_(n),
      registry_(registry),
      f_((n - 1) / 2),
      ops_(ops),
      key_(std::move(key)),
      retry_(retry) {}

void MinBftClient::OnStart() {
  seq_ = 1;
  SendCurrent(false);
}

void MinBftClient::SendCurrent(bool broadcast) {
  if (done()) return;
  smr::Command cmd{id(), seq_, "INC " + key_};
  crypto::Signature sig = registry_->Sign(id(), cmd.Hash());
  if (broadcast) {
    for (int i = 0; i < n_; ++i) {
      Send(i, std::make_shared<MinBftReplica::RequestMsg>(cmd, sig));
    }
  } else {
    Send(primary_hint_, std::make_shared<MinBftReplica::RequestMsg>(cmd, sig));
  }
  CancelTimer(retry_timer_);
  retry_timer_ = SetTimer(retry_, [this] { SendCurrent(true); });
}

void MinBftClient::OnMessage(sim::NodeId from, const sim::Message& msg) {
  const auto* m = dynamic_cast<const MinBftReplica::ReplyMsg*>(&msg);
  if (m == nullptr || m->client_seq != seq_ || done()) return;
  reply_votes_[m->result].insert(from);
  primary_hint_ = m->view % n_;
  if (static_cast<int>(reply_votes_[m->result].size()) >= f_ + 1) {
    results_.push_back(m->result);
    reply_votes_.clear();
    ++completed_;
    ++seq_;
    if (done()) {
      CancelTimer(retry_timer_);
    } else {
      SendCurrent(false);
    }
  }
}

}  // namespace consensus40::minbft
