#include "pbft/pbft.h"

#include <algorithm>
#include <cassert>

namespace consensus40::pbft {

crypto::Digest PbftReplica::PrePrepareDigest(int64_t view, uint64_t seq,
                                             const crypto::Digest& digest) {
  crypto::Sha256 h;
  h.Update(&view, sizeof(view));
  h.Update(&seq, sizeof(seq));
  h.Update(digest.data(), digest.size());
  return h.Finish();
}

crypto::Digest SignedVote::SigningDigest() const {
  crypto::Sha256 h;
  h.Update(&replica, sizeof(replica));
  h.Update(&view, sizeof(view));
  h.Update(&seq, sizeof(seq));
  h.Update(digest.data(), digest.size());
  return h.Finish();
}

bool SignedVote::Verify(const crypto::KeyRegistry& registry) const {
  return sig.signer == replica && registry.Verify(sig, SigningDigest());
}

bool PbftReplica::ValidRequest(const smr::Command& cmd,
                               const crypto::Signature& sig,
                               const crypto::KeyRegistry& registry) {
  if (cmd.client == -1 && cmd.op == "NOOP") return true;  // Filler.
  return sig.signer == cmd.client && registry.Verify(sig, cmd.Hash());
}

crypto::Digest PbftReplica::BatchDigest(
    const std::vector<smr::Command>& cmds) {
  crypto::Sha256 h;
  h.Update("batch", 5);
  for (const smr::Command& cmd : cmds) {
    crypto::Digest d = cmd.Hash();
    h.Update(d.data(), d.size());
  }
  return h.Finish();
}

bool PbftReplica::ValidBatch(const std::vector<smr::Command>& cmds,
                             const std::vector<crypto::Signature>& sigs,
                             const crypto::KeyRegistry& registry) {
  if (cmds.size() != sigs.size()) return false;
  for (size_t i = 0; i < cmds.size(); ++i) {
    if (!ValidRequest(cmds[i], sigs[i], registry)) return false;
  }
  return true;  // Note: the empty batch (view-change filler) is valid.
}

bool PbftReplica::PreparedProof::Verify(const crypto::KeyRegistry& registry,
                                        int n) const {
  int f = (n - 1) / 3;
  if (digest != BatchDigest(cmds)) return false;
  if (!ValidBatch(cmds, client_sigs, registry)) return false;
  // Primary's pre-prepare signature.
  if (primary_sig.signer != view % n ||
      !registry.Verify(primary_sig, PrePrepareDigest(view, seq, digest))) {
    return false;
  }
  // 2f matching prepares from distinct non-primary replicas.
  std::set<int32_t> distinct;
  for (const SignedVote& p : prepares) {
    if (p.view != view || p.seq != seq || p.digest != digest) return false;
    if (!p.Verify(registry)) return false;
    if (p.replica == view % n) continue;
    distinct.insert(p.replica);
  }
  return static_cast<int>(distinct.size()) >= 2 * f;
}

PbftReplica::PbftReplica(PbftOptions options) : options_(options) {
  assert(options_.n >= 4 && (options_.n - 1) % 3 == 0);
  assert(options_.registry != nullptr);
  f_ = (options_.n - 1) / 3;
}

std::vector<sim::NodeId> PbftReplica::Everyone() const {
  std::vector<sim::NodeId> all;
  for (int i = 0; i < options_.n; ++i) all.push_back(i);
  return all;
}

bool PbftReplica::MaybeActMaliciouslyOnRequest(const smr::Command&,
                                               const crypto::Signature&) {
  return false;
}

void PbftReplica::ArmRequestTimer(const smr::Command& cmd) {
  auto key = std::make_pair(cmd.client, cmd.client_seq);
  if (request_timers_.count(key) > 0 || results_.count(key) > 0) return;
  request_timers_[key] = SetTimer(options_.request_timeout, [this, key] {
    request_timers_.erase(key);
    StartViewChange(view_ + 1);
  });
}

void PbftReplica::DisarmRequestTimer(int32_t client, uint64_t client_seq) {
  auto key = std::make_pair(client, client_seq);
  auto it = request_timers_.find(key);
  if (it != request_timers_.end()) {
    CancelTimer(it->second);
    request_timers_.erase(it);
  }
}

void PbftReplica::HandleRequest(sim::NodeId /*from*/, const smr::Command& cmd,
                                const crypto::Signature& client_sig) {
  if (!ValidRequest(cmd, client_sig, *options_.registry)) return;
  auto key = std::make_pair(cmd.client, cmd.client_seq);
  auto done = results_.find(key);
  if (done != results_.end()) {
    // Already executed: re-send the reply.
    auto reply = std::make_shared<ReplyMsg>();
    reply->view = view_;
    reply->client_seq = cmd.client_seq;
    reply->replica = id();
    reply->result = done->second;
    Send(cmd.client, reply);
    return;
  }

  if (IsPrimary() && !in_view_change_) {
    if (MaybeActMaliciouslyOnRequest(cmd, client_sig)) return;
    // Already assigned a sequence number or queued? (client rebroadcast)
    for (const auto& [seq, slot] : slots_) {
      for (const smr::Command& assigned : slot.cmds) {
        if (assigned.client == cmd.client &&
            assigned.client_seq == cmd.client_seq) {
          return;
        }
      }
    }
    for (const auto& [queued, sig] : batch_queue_) {
      if (queued.client == cmd.client &&
          queued.client_seq == cmd.client_seq) {
        return;
      }
    }
    batch_queue_.push_back({cmd, client_sig});
    if (options_.batch_delay == 0 ||
        static_cast<int>(batch_queue_.size()) >= options_.batch_size) {
      FlushBatch();
    } else if (batch_queue_.size() == 1) {
      SetTimer(options_.batch_delay, [this] { FlushBatch(); });
    }
  } else if (!IsPrimary()) {
    // Forward to the primary and watch it: pre-prepare picks the order,
    // timers guard liveness.
    Send(PrimaryOf(view_), std::make_shared<RequestMsg>(cmd, client_sig));
    ArmRequestTimer(cmd);
  }
}

void PbftReplica::FlushBatch() {
  if (!IsPrimary() || in_view_change_ || batch_queue_.empty()) return;
  while (!batch_queue_.empty()) {
    auto pp = std::make_shared<PrePrepareMsg>();
    pp->view = view_;
    pp->seq = next_seq_++;
    int take = 0;
    while (!batch_queue_.empty() && take < options_.batch_size) {
      auto& [cmd, sig] = batch_queue_.front();
      pp->cmds.push_back(std::move(cmd));
      pp->client_sigs.push_back(sig);
      batch_queue_.pop_front();
      ++take;
    }
    pp->digest = BatchDigest(pp->cmds);
    pp->sig = options_.registry->Sign(
        id(), PrePrepareDigest(pp->view, pp->seq, pp->digest));
    Multicast(Everyone(), pp);
  }
}

void PbftReplica::MaybeSendCommit(uint64_t seq) {
  Slot& slot = slots_[seq];
  if (!slot.pre_prepared || slot.sent_commit) return;
  // prepared(m,v,n): pre-prepare + 2f prepares from distinct backups,
  // all in THIS slot's view and for this digest — a slot that survived a
  // view change may still hold stale votes from the old view, and mixing
  // views would both weaken the quorum and poison the prepared proof this
  // slot contributes to the next view change.
  std::set<sim::NodeId> backups;
  for (const auto& [r, vote] : slot.prepares) {
    if (vote.view != slot.view || !(vote.digest == slot.digest)) continue;
    if (r != PrimaryOf(slot.view)) backups.insert(r);
  }
  if (static_cast<int>(backups.size()) < 2 * f_) return;
  slot.prepared = true;
  slot.sent_commit = true;
  auto commit = std::make_shared<CommitMsg>();
  commit->vote.replica = id();
  commit->vote.view = slot.view;
  commit->vote.seq = seq;
  commit->vote.digest = slot.digest;
  commit->vote.sig = options_.registry->Sign(id(), commit->vote.SigningDigest());
  Multicast(Everyone(), commit);
}

void PbftReplica::MaybeExecute() {
  while (true) {
    auto it = slots_.find(last_executed_ + 1);
    if (it == slots_.end() || !it->second.committed) break;
    Slot& slot = it->second;
    if (!slot.executed) {
      slot.executed = true;
      for (const smr::Command& cmd : slot.cmds) {
        if (cmd.client == -1) continue;  // Skip no-op fillers.
        std::string result = dedup_.Apply(&kv_, cmd);
        executed_commands_.push_back(cmd);
        auto key = std::make_pair(cmd.client, cmd.client_seq);
        results_[key] = result;
        DisarmRequestTimer(cmd.client, cmd.client_seq);
        auto reply = std::make_shared<ReplyMsg>();
        reply->view = view_;
        reply->client_seq = cmd.client_seq;
        reply->replica = id();
        reply->result = result;
        Send(cmd.client, reply);
      }
    }
    ++last_executed_;
    if (last_executed_ % options_.checkpoint_interval == 0) TakeCheckpoint();
  }
}

crypto::Digest PbftReplica::CheckpointDigest(uint64_t seq) const {
  crypto::Sha256 h;
  h.Update(&seq, sizeof(seq));
  crypto::Digest state = kv_.StateDigest();
  h.Update(state.data(), state.size());
  return h.Finish();
}

void PbftReplica::MaybeRequestStateTransfer() {
  if (state_transfer_inflight_) return;
  state_transfer_inflight_ = true;
  state_offers_.clear();
  auto req = std::make_shared<StateRequestMsg>();
  req->have = executed_commands_.size();
  for (sim::NodeId peer : Everyone()) {
    if (peer != id()) Send(peer, req);
  }
  SetTimer(options_.request_timeout, [this] {
    // Give up on this round; the next checkpoint gap re-triggers it.
    state_transfer_inflight_ = false;
    state_offers_.clear();
  });
}

void PbftReplica::TakeCheckpoint() {
  auto cp = std::make_shared<CheckpointMsg>();
  cp->vote.replica = id();
  cp->vote.view = 0;
  cp->vote.seq = last_executed_;
  cp->vote.digest = CheckpointDigest(last_executed_);
  cp->vote.sig = options_.registry->Sign(id(), cp->vote.SigningDigest());
  Multicast(Everyone(), cp);
}

void PbftReplica::GarbageCollect(uint64_t stable_seq) {
  for (auto it = slots_.begin(); it != slots_.end();) {
    if (it->first <= stable_seq && it->second.executed) {
      it = slots_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = checkpoint_votes_.begin(); it != checkpoint_votes_.end();) {
    if (it->first < stable_seq) {
      it = checkpoint_votes_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = checkpoint_proofs_.begin(); it != checkpoint_proofs_.end();) {
    if (it->first < stable_seq) {
      it = checkpoint_proofs_.erase(it);
    } else {
      ++it;
    }
  }
}

void PbftReplica::StartViewChange(int64_t new_view) {
  if (new_view <= view_ || (in_view_change_ && new_view <= pending_view_)) {
    return;
  }
  in_view_change_ = true;
  pending_view_ = new_view;
  ++view_changes_sent_;

  auto vc = std::make_shared<ViewChangeMsg>();
  vc->new_view = new_view;
  vc->replica = id();
  vc->stable_seq = stable_checkpoint_;
  auto proof = checkpoint_proofs_.find(stable_checkpoint_);
  if (proof != checkpoint_proofs_.end()) vc->checkpoint_proof = proof->second;
  for (const auto& [seq, slot] : slots_) {
    if (seq <= stable_checkpoint_ || !slot.prepared) continue;
    PreparedProof p;
    p.view = slot.view;
    p.seq = seq;
    p.digest = slot.digest;
    p.cmds = slot.cmds;
    p.client_sigs = slot.client_sigs;
    p.primary_sig = slot.primary_sig;
    // Only votes for this slot's (view, digest): slots that lived through
    // a view change can hold stale votes, and one stale vote makes the
    // whole proof fail verification downstream.
    for (const auto& [r, vote] : slot.prepares) {
      if (vote.view == slot.view && vote.digest == slot.digest) {
        p.prepares.push_back(vote);
      }
    }
    // Ship only proofs that verify: slots adopted as executed through a
    // new-view (or state transfer) carry no prepare certificate — peers
    // cover them via their own proofs or state transfer, and an invalid
    // proof would make receivers discard our whole view-change.
    if (p.Verify(*options_.registry, options_.n)) {
      vc->prepared.push_back(std::move(p));
    }
  }
  crypto::Sha256 h;
  h.Update(&vc->new_view, sizeof(vc->new_view));
  h.Update(&vc->stable_seq, sizeof(vc->stable_seq));
  vc->sig = options_.registry->Sign(id(), h.Finish());
  Multicast(Everyone(), vc);

  // If the new view stalls (its primary is also faulty), escalate. Only
  // the newest watchdog stays armed: a stale one surviving a NewView
  // install would count its patience from the wrong (older) negotiation
  // and depose a healthy primary early.
  CancelTimer(view_change_timer_);
  view_change_timer_ = SetTimer(options_.request_timeout * 2, [this, new_view] {
    if (in_view_change_ && pending_view_ == new_view) {
      StartViewChange(new_view + 1);
    }
  });
}

void PbftReplica::ProcessNewView(const NewViewMsg& msg) {
  if (msg.view < view_ || (msg.view == view_ && !in_view_change_)) return;
  // Verify 2f+1 valid view-change messages for this view.
  std::set<int32_t> distinct;
  for (const auto& vc : msg.view_changes) {
    if (vc->new_view != msg.view) return;
    crypto::Sha256 h;
    h.Update(&vc->new_view, sizeof(vc->new_view));
    h.Update(&vc->stable_seq, sizeof(vc->stable_seq));
    if (vc->sig.signer != vc->replica ||
        !options_.registry->Verify(vc->sig, h.Finish())) {
      return;
    }
    distinct.insert(vc->replica);
  }
  if (static_cast<int>(distinct.size()) < 2 * f_ + 1) return;

  // Verify the re-issued pre-prepares match the highest-view prepared
  // proofs in the view-change set (the O computation). Invalid proofs are
  // SKIPPED, not fatal — the builder skips them when computing O, so a
  // receiver that instead rejected the whole message would disagree with
  // the builder about O and discard every new-view containing one bad
  // proof: the cluster then re-campaigns forever without ever installing
  // a view. Skipping is safe because a proof that does not verify cannot
  // bind any (seq, digest), and the digest cross-check below still
  // rejects a primary that reissues against a *valid* proof incorrectly.
  std::map<uint64_t, const PreparedProof*> best;
  for (const auto& vc : msg.view_changes) {
    for (const PreparedProof& p : vc->prepared) {
      if (!p.Verify(*options_.registry, options_.n)) continue;
      auto it = best.find(p.seq);
      if (it == best.end() || p.view > it->second->view) best[p.seq] = &p;
    }
  }
  for (const auto& pp : msg.pre_prepares) {
    if (pp->view != msg.view) return;
    if (!ValidBatch(pp->cmds, pp->client_sigs, *options_.registry)) return;
    auto it = best.find(pp->seq);
    if (it != best.end() && it->second->digest != pp->digest) return;
    if (pp->sig.signer != msg.view % options_.n ||
        !options_.registry->Verify(
            pp->sig, PrePrepareDigest(pp->view, pp->seq, pp->digest))) {
      return;
    }
  }

  // Install the view.
  view_ = msg.view;
  in_view_change_ = false;
  pending_view_ = view_;
  CancelTimer(view_change_timer_);
  view_change_timer_ = 0;
  // GC all view-change bookkeeping at or below the installed view, not
  // just the winner's entry: skipped views (we negotiated v+1 but v+2
  // won) and views that lost a race would otherwise accumulate forever
  // across a view-change storm. Entries for views above the installed one
  // stay — they may be tomorrow's quorum.
  view_change_msgs_.erase(view_change_msgs_.begin(),
                          view_change_msgs_.upper_bound(view_));
  built_new_views_.erase(built_new_views_.begin(),
                         built_new_views_.upper_bound(view_));
  last_new_view_ = std::make_shared<NewViewMsg>(msg);
  // Fresh patience: stale per-request watchdogs from the previous view
  // would depose the new primary before it can re-drive the requests.
  for (auto& [key, timer] : request_timers_) CancelTimer(timer);
  request_timers_.clear();

  // Adopt the re-issued pre-prepares (resetting per-slot vote state).
  for (const auto& pp : msg.pre_prepares) {
    Slot& slot = slots_[pp->seq];
    bool was_executed = slot.executed;
    if (was_executed && !(BatchDigest(slot.cmds) == pp->digest)) {
      violations_.push_back("new-view re-proposes different batch for "
                            "executed seq " +
                            std::to_string(pp->seq));
    }
    slot = Slot();
    slot.view = pp->view;
    slot.pre_prepared = true;
    slot.digest = pp->digest;
    slot.cmds = pp->cmds;
    slot.client_sigs = pp->client_sigs;
    slot.primary_sig = pp->sig;
    slot.executed = was_executed;
    if (was_executed) {
      slot.prepared = true;
      slot.committed = true;
    }
    if (!IsPrimary()) {
      auto prepare = std::make_shared<PrepareMsg>();
      prepare->vote.replica = id();
      prepare->vote.view = pp->view;
      prepare->vote.seq = pp->seq;
      prepare->vote.digest = pp->digest;
      prepare->vote.sig =
          options_.registry->Sign(id(), prepare->vote.SigningDigest());
      Multicast(Everyone(), prepare);
      slot.sent_prepare = true;
    }
  }
  if (IsPrimary()) {
    uint64_t max_seq = last_executed_;
    for (const auto& [seq, slot] : slots_) max_seq = std::max(max_seq, seq);
    next_seq_ = max_seq + 1;
  }
}

void PbftReplica::OnMessage(sim::NodeId from, const sim::Message& msg) {
  if (const auto* m = dynamic_cast<const RequestMsg*>(&msg)) {
    HandleRequest(from, m->cmd, m->client_sig);
    return;
  }

  if (const auto* m = dynamic_cast<const PrePrepareMsg*>(&msg)) {
    if (m->view > view_) {
      // We are behind (e.g. restarted through a view change): ask the
      // sender for the NewView proof so we can catch up safely.
      auto sync = std::make_shared<ViewSyncRequestMsg>();
      sync->have_view = view_;
      Send(from, sync);
      return;
    }
    if (m->view < view_ && last_new_view_ != nullptr) {
      Send(from, last_new_view_);  // The sender is the stale one.
      return;
    }
    if (m->view != view_ || in_view_change_) return;
    if (from != PrimaryOf(view_) && from != id()) return;
    if (!(m->digest == BatchDigest(m->cmds))) return;
    if (!ValidBatch(m->cmds, m->client_sigs, *options_.registry)) return;
    if (m->sig.signer != PrimaryOf(view_) ||
        !options_.registry->Verify(
            m->sig, PrePrepareDigest(m->view, m->seq, m->digest))) {
      return;
    }
    Slot& slot = slots_[m->seq];
    if (slot.pre_prepared && slot.view == m->view) {
      if (!(slot.digest == m->digest)) {
        // Equivocation evidence: same (view,seq), different digests. We
        // keep the first and let timeouts depose the primary.
        StartViewChange(view_ + 1);
      }
      return;
    }
    if (slot.pre_prepared && slot.view != m->view) {
      // Leftover slot from an older view that no new-view reissued: its
      // votes belong to the old view and must not count toward this one.
      const bool was_executed = slot.executed;
      slot = Slot();
      slot.executed = was_executed;
      if (was_executed) {
        slot.prepared = true;
        slot.committed = true;
      }
    }
    slot.view = m->view;
    slot.pre_prepared = true;
    slot.digest = m->digest;
    slot.cmds = m->cmds;
    slot.client_sigs = m->client_sigs;
    slot.primary_sig = m->sig;
    for (const smr::Command& cmd : m->cmds) {
      DisarmRequestTimer(cmd.client, cmd.client_seq);
      // Re-arm: from pre-prepare on, the request must commit within the
      // timeout or the primary is suspect.
      ArmRequestTimer(cmd);
    }
    if (!IsPrimary() && !slot.sent_prepare) {
      slot.sent_prepare = true;
      auto prepare = std::make_shared<PrepareMsg>();
      prepare->vote.replica = id();
      prepare->vote.view = m->view;
      prepare->vote.seq = m->seq;
      prepare->vote.digest = m->digest;
      prepare->vote.sig =
          options_.registry->Sign(id(), prepare->vote.SigningDigest());
      Multicast(Everyone(), prepare);
    }
    MaybeSendCommit(m->seq);
    return;
  }

  if (const auto* m = dynamic_cast<const PrepareMsg*>(&msg)) {
    if (m->vote.view > view_) {
      auto sync = std::make_shared<ViewSyncRequestMsg>();
      sync->have_view = view_;
      Send(from, sync);
      return;
    }
    if (m->vote.view != view_ || in_view_change_) return;
    if (!m->vote.Verify(*options_.registry) || m->vote.replica != from) return;
    Slot& slot = slots_[m->vote.seq];
    if (slot.pre_prepared && !(slot.digest == m->vote.digest)) return;
    slot.prepares[from] = m->vote;
    MaybeSendCommit(m->vote.seq);
    return;
  }

  if (const auto* m = dynamic_cast<const CommitMsg*>(&msg)) {
    if (m->vote.view != view_ || in_view_change_) return;
    if (!m->vote.Verify(*options_.registry) || m->vote.replica != from) return;
    Slot& slot = slots_[m->vote.seq];
    if (slot.pre_prepared && !(slot.digest == m->vote.digest)) return;
    slot.commits[from] = m->vote;
    // Same view/digest hygiene as the prepare quorum: stale commits from
    // a pre-view-change incarnation of this slot do not count.
    int matching = 0;
    for (const auto& [r, vote] : slot.commits) {
      if (vote.view == slot.view && vote.digest == slot.digest) ++matching;
    }
    if (slot.prepared && !slot.committed && matching >= 2 * f_ + 1) {
      slot.committed = true;
      MaybeExecute();
    }
    return;
  }

  if (const auto* m = dynamic_cast<const CheckpointMsg*>(&msg)) {
    if (!m->vote.Verify(*options_.registry) || m->vote.replica != from) return;
    auto& votes = checkpoint_votes_[m->vote.seq];
    votes[from] = m->vote;
    // Count votes with matching digest.
    std::map<crypto::Digest, int> counts;
    for (const auto& [r, vote] : votes) ++counts[vote.digest];
    for (const auto& [digest, count] : counts) {
      if (count >= 2 * f_ + 1 && m->vote.seq > stable_checkpoint_) {
        stable_checkpoint_ = m->vote.seq;
        std::vector<SignedVote> proof;
        for (const auto& [r, vote] : votes) {
          if (vote.digest == digest) proof.push_back(vote);
        }
        checkpoint_proofs_[m->vote.seq] = std::move(proof);
        GarbageCollect(stable_checkpoint_);
        if (stable_checkpoint_ > last_executed_) {
          // The cluster checkpointed past us: agreement messages for those
          // slots may be garbage-collected already, so catch up by state
          // transfer.
          MaybeRequestStateTransfer();
        }
      }
    }
    return;
  }

  if (const auto* m = dynamic_cast<const StateRequestMsg*>(&msg)) {
    if (m->have >= executed_commands_.size()) return;  // Nothing newer.
    auto reply = std::make_shared<StateReplyMsg>();
    reply->have = m->have;
    reply->last_executed = last_executed_;
    reply->cmds.assign(executed_commands_.begin() + m->have,
                       executed_commands_.end());
    reply->state_digest = kv_.StateDigest();
    Send(from, reply);
    return;
  }

  if (const auto* m = dynamic_cast<const StateReplyMsg*>(&msg)) {
    if (!state_transfer_inflight_ ||
        m->have != executed_commands_.size()) {
      return;
    }
    // Key offers by (post-state digest, frontier): f+1 agreeing peers
    // guarantee at least one is correct.
    crypto::Sha256 h;
    h.Update(m->state_digest.data(), m->state_digest.size());
    h.Update(&m->last_executed, sizeof(m->last_executed));
    size_t ncmds = m->cmds.size();
    h.Update(&ncmds, sizeof(ncmds));
    auto& offers = state_offers_[h.Finish()];
    offers[from] = std::make_shared<StateReplyMsg>(*m);
    if (static_cast<int>(offers.size()) < f_ + 1) return;

    // Adopt: replay the command suffix and jump the execution frontier.
    for (const smr::Command& cmd : m->cmds) {
      std::string result = dedup_.Apply(&kv_, cmd);
      executed_commands_.push_back(cmd);
      results_[{cmd.client, cmd.client_seq}] = result;
      DisarmRequestTimer(cmd.client, cmd.client_seq);
    }
    if (!(kv_.StateDigest() == m->state_digest)) {
      violations_.push_back("state transfer digest mismatch");
    }
    last_executed_ = std::max(last_executed_, m->last_executed);
    state_transfer_inflight_ = false;
    state_offers_.clear();
    // Anything still parked in slots_ at or below the new frontier is done.
    for (auto it = slots_.begin(); it != slots_.end();) {
      if (it->first <= last_executed_) {
        it = slots_.erase(it);
      } else {
        ++it;
      }
    }
    MaybeExecute();
    return;
  }

  if (const auto* m = dynamic_cast<const ViewChangeMsg*>(&msg)) {
    crypto::Sha256 h;
    h.Update(&m->new_view, sizeof(m->new_view));
    h.Update(&m->stable_seq, sizeof(m->stable_seq));
    if (m->sig.signer != m->replica || m->replica != from ||
        !options_.registry->Verify(m->sig, h.Finish())) {
      return;
    }
    if (m->new_view <= view_) return;
    auto copy = std::make_shared<ViewChangeMsg>(*m);
    view_change_msgs_[m->new_view][from] = copy;

    // Join a view change once f+1 replicas demand it (we cannot all be
    // wrong about the primary).
    if (static_cast<int>(view_change_msgs_[m->new_view].size()) >= f_ + 1 &&
        (!in_view_change_ || pending_view_ < m->new_view)) {
      StartViewChange(m->new_view);
    }

    if (PrimaryOf(m->new_view) == id() &&
        static_cast<int>(view_change_msgs_[m->new_view].size()) >=
            2 * f_ + 1 &&
        built_new_views_.insert(m->new_view).second) {
      // Build the new view.
      auto nv = std::make_shared<NewViewMsg>();
      nv->view = m->new_view;
      uint64_t min_s = 0;
      std::map<uint64_t, const PreparedProof*> best;
      for (const auto& [r, vc] : view_change_msgs_[m->new_view]) {
        nv->view_changes.push_back(vc);
        min_s = std::max(min_s, vc->stable_seq);
        for (const PreparedProof& p : vc->prepared) {
          if (!p.Verify(*options_.registry, options_.n)) continue;
          auto it = best.find(p.seq);
          if (it == best.end() || p.view > it->second->view) best[p.seq] = &p;
        }
      }
      uint64_t max_s = min_s;
      for (const auto& [seq, proof] : best) max_s = std::max(max_s, seq);
      for (uint64_t seq = min_s + 1; seq <= max_s; ++seq) {
        auto pp = std::make_shared<PrePrepareMsg>();
        pp->view = m->new_view;
        pp->seq = seq;
        auto it = best.find(seq);
        if (it != best.end()) {
          pp->cmds = it->second->cmds;
          pp->client_sigs = it->second->client_sigs;
        }
        // else: empty batch = the no-op filler.
        pp->digest = BatchDigest(pp->cmds);
        pp->sig = options_.registry->Sign(
            id(), PrePrepareDigest(pp->view, pp->seq, pp->digest));
        nv->pre_prepares.push_back(pp);
      }
      Multicast(Everyone(), nv);
    }
    return;
  }

  if (const auto* m = dynamic_cast<const NewViewMsg*>(&msg)) {
    // Accept a relayed NewView from any replica — its validity rests on
    // the 2f+1 embedded view-change signatures, not on the relayer.
    ProcessNewView(*m);
    return;
  }

  if (const auto* m = dynamic_cast<const ViewSyncRequestMsg*>(&msg)) {
    if (last_new_view_ != nullptr && last_new_view_->view > m->have_view) {
      Send(from, last_new_view_);
    }
    return;
  }
}

void PbftReplica::OnRestart() {
  // Stable state (view_, slots_, kv_, executed history) survives; we may
  // have missed view changes and checkpoints while down, so probe peers.
  in_view_change_ = false;
  pending_view_ = view_;
  state_transfer_inflight_ = false;
  state_offers_.clear();
  auto sync = std::make_shared<ViewSyncRequestMsg>();
  sync->have_view = view_;
  for (sim::NodeId peer : Everyone()) {
    if (peer != id()) Send(peer, sync);
  }
  MaybeRequestStateTransfer();
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

PbftClient::PbftClient(int n, const crypto::KeyRegistry* registry, int ops,
                       std::string key, sim::Duration retry)
    : n_(n),
      registry_(registry),
      f_((n - 1) / 3),
      ops_(ops),
      key_(std::move(key)),
      retry_(retry) {}

void PbftClient::OnStart() {
  seq_ = 1;
  SendCurrent(false);
}

void PbftClient::SendCurrent(bool broadcast) {
  if (done()) return;
  smr::Command cmd{id(), seq_, "INC " + key_};
  crypto::Signature sig = registry_->Sign(id(), cmd.Hash());
  if (broadcast) {
    for (int i = 0; i < n_; ++i) {
      Send(i, std::make_shared<PbftReplica::RequestMsg>(cmd, sig));
    }
  } else {
    Send(primary_hint_,
         std::make_shared<PbftReplica::RequestMsg>(cmd, sig));
  }
  CancelTimer(retry_timer_);
  retry_timer_ = SetTimer(retry_, [this] { SendCurrent(true); });
}

void PbftClient::OnMessage(sim::NodeId from, const sim::Message& msg) {
  const auto* m = dynamic_cast<const PbftReplica::ReplyMsg*>(&msg);
  if (m == nullptr || m->client_seq != seq_ || done()) return;
  reply_votes_[m->result].insert(from);
  primary_hint_ = m->view % n_;
  if (static_cast<int>(reply_votes_[m->result].size()) >= f_ + 1) {
    // f+1 matching replies: at least one is from a correct replica.
    results_.push_back(m->result);
    reply_votes_.clear();
    ++completed_;
    ++seq_;
    if (done()) {
      CancelTimer(retry_timer_);
    } else {
      SendCurrent(false);
    }
  }
}

}  // namespace consensus40::pbft
